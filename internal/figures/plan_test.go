package figures

import (
	"bytes"
	"testing"
)

func TestPlanIDsCoverSweepFigures(t *testing.T) {
	want := []string{"6.1", "6.2", "6.3", "6.4", "6.5", "6.6", "momentum", "faultmodel", "penalty", "svm", "robustloss", "graphlp", "eigen"}
	got := PlanIDs()
	if len(got) != len(want) {
		t.Fatalf("PlanIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PlanIDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range []string{"5.1", "5.2", "6.7", "flops"} {
		if PlanFor(id, Config{}) != nil {
			t.Errorf("non-sweep figure %q has a plan", id)
		}
	}
	if PlanFor("nope", Config{}) != nil {
		t.Error("unknown id has a plan")
	}
}

// TestPlanBuildMatchesFig pins the plan path to the public constructors:
// building a figure through its plan must render byte-identically.
func TestPlanBuildMatchesFig(t *testing.T) {
	cfg := Config{Quick: true, Seed: 6, Trials: 2}
	for _, tc := range []struct {
		id    string
		build Builder
	}{
		{"6.1", Fig61},
		{"6.6", Fig66},
		{"svm", SVMExtension},
	} {
		plan := PlanFor(tc.id, cfg)
		if plan == nil {
			t.Fatalf("no plan for %s", tc.id)
		}
		var direct, viaPlan bytes.Buffer
		if err := tc.build(cfg).Render(&direct); err != nil {
			t.Fatal(err)
		}
		if err := plan.Build().Render(&viaPlan); err != nil {
			t.Fatal(err)
		}
		if direct.String() != viaPlan.String() {
			t.Errorf("%s: plan build differs from figure build", tc.id)
		}
	}
}

func TestPlanStructure(t *testing.T) {
	for _, id := range PlanIDs() {
		plan := PlanFor(id, Config{Quick: true, Seed: 2})
		if plan.ID != id {
			t.Errorf("plan %q reports id %q", id, plan.ID)
		}
		if len(plan.Units) == 0 {
			t.Errorf("plan %q has no units", id)
		}
		if plan.Size() <= 0 {
			t.Errorf("plan %q size = %d", id, plan.Size())
		}
		for _, u := range plan.Units {
			if u.Series == "" || u.Fn == nil || len(u.Sweep.Rates) == 0 {
				t.Errorf("plan %q unit %+v malformed", id, u.Series)
			}
			if u.Agg != "mean" && u.Agg != "median" {
				t.Errorf("plan %q unit %q agg = %q", id, u.Series, u.Agg)
			}
		}
	}
}

func TestConfigWorkersOnlySchedules(t *testing.T) {
	a := Fig61(Config{Quick: true, Seed: 4, Workers: 1})
	b := Fig61(Config{Quick: true, Seed: 4, Workers: 3})
	var ra, rb bytes.Buffer
	if err := a.Render(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&rb); err != nil {
		t.Fatal(err)
	}
	if ra.String() != rb.String() {
		t.Error("worker count changed figure results")
	}
}
