package figures

import (
	"context"
	"fmt"

	"robustify/internal/harness"
)

// Unit is one series of a sweep-shaped figure: an independent rate×trial
// grid with its own aggregator. Units are the scheduling granularity of the
// campaign engine — every trial in a unit's grid is addressable as
// (unit index, rate index, trial index) and replayable from Sweep.TrialSeed.
type Unit struct {
	// Series is the name the unit's points carry in the finished table.
	Series string
	// Agg names the cell aggregator: "mean" or "median".
	Agg string
	// Sweep is the rate×trial grid (seed, rates, trials, workers).
	Sweep harness.Sweep
	// Fn runs one trial.
	Fn harness.TrialFunc
}

// Plan is the declarative decomposition of a figure into sweep units plus a
// table skeleton. A Plan exposes the figure's trial grid before any trial
// has run, so an external engine can execute, persist, and resume it; Build
// collapses it back to the eager path the Fig constructors use.
type Plan struct {
	// ID is the figure id ("6.1", "momentum", ...).
	ID string
	// Skeleton carries Title, XLabel, YLabel, and Notes; its Series are
	// filled from Units in order.
	Skeleton harness.Table
	// Units hold one grid per series, in presentation order.
	Units []Unit
}

// Size is the total number of trials across all units.
func (p *Plan) Size() int {
	n := 0
	for _, u := range p.Units {
		n += u.Sweep.Size()
	}
	return n
}

// Build executes every unit in order and returns the finished table. It is
// the reference execution: any engine that replays the same grids must
// reproduce Build's table exactly.
func (p *Plan) Build() *harness.Table {
	t := p.Skeleton
	t.Series = make([]harness.Series, len(p.Units))
	for i, u := range p.Units {
		agg, err := harness.AggregatorByName(u.Agg)
		if err != nil {
			panic(fmt.Sprintf("figures: plan %s unit %q: %v", p.ID, u.Series, err))
		}
		points, _ := u.Sweep.RunHooked(context.Background(), u.Fn, agg, harness.Hooks{})
		t.Series[i] = harness.Series{Name: u.Series, Points: points}
	}
	return &t
}

// planBuilders maps figure ids to plan constructors. Figures absent here
// (5.1, 5.2, 6.7, flops) are not sweep-shaped — they measure distributions,
// analytic curves, or FLOP counts — and can only be built eagerly.
func planBuilders() map[string]func(Config) *Plan {
	return map[string]func(Config) *Plan{
		"6.1":        plan61,
		"6.2":        plan62,
		"6.3":        plan63,
		"6.4":        plan64,
		"6.5":        plan65,
		"6.6":        plan66,
		"momentum":   planMomentum,
		"faultmodel": planFaultModel,
		"penalty":    planPenalty,
		"svm":        planSVM,
		"robustloss": planRobustLoss,
		"graphlp":    planGraphLP,
		"eigen":      planEigen,
	}
}

// PlanFor returns the sweep plan for a figure id, or nil when the figure is
// unknown or not sweep-shaped (use Lookup for the eager builder instead).
func PlanFor(id string, c Config) *Plan {
	b, ok := planBuilders()[id]
	if !ok {
		return nil
	}
	return b(c)
}

// HasPlan reports whether a figure id is sweep-shaped without building
// its (potentially full-size) plan.
func HasPlan(id string) bool {
	_, ok := planBuilders()[id]
	return ok
}

// PlanIDs lists the figure ids that expose sweep plans, in registry order.
func PlanIDs() []string {
	builders := planBuilders()
	var ids []string
	for _, f := range All() {
		if _, ok := builders[f.ID]; ok {
			ids = append(ids, f.ID)
		}
	}
	return ids
}
