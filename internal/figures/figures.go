// Package figures regenerates every table and figure of the paper's
// evaluation (Figs 5.1, 5.2, 6.1–6.7) plus the §6.2.2 momentum and §6.3
// solver-cost ablations, on the simulated stochastic-FPU substrate.
//
// Each constructor returns a harness.Table whose series mirror the paper's
// figure legend. Absolute values depend on the substrate; the reproduction
// targets are the curve shapes: who wins, by roughly what factor, and where
// the crossovers fall. EXPERIMENTS.md records paper-vs-measured for each.
package figures

import (
	"fmt"
	"math"
	"math/rand"

	"robustify/internal/apps/iir"
	"robustify/internal/apps/leastsq"
	"robustify/internal/apps/matching"
	"robustify/internal/apps/robsort"
	"robustify/internal/fpu"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
	"robustify/internal/solver"
)

// Config scales a figure run.
type Config struct {
	// Trials per cell; 0 picks the figure's default.
	Trials int
	// Seed makes the whole figure reproducible.
	Seed uint64
	// Quick shrinks problem sizes and grids for smoke tests and benches.
	Quick bool
	// Workers bounds sweep parallelism (0 = GOMAXPROCS); it never affects
	// results, only scheduling.
	Workers int
	// FaultModel selects the injection model every faulty trial unit runs
	// under (see fpu/faultmodel). Nil keeps the default model and is
	// bit-identical to the pre-faultmodel builders per seed. Builders that
	// pin a specific injector by design (the distribution ablation) ignore
	// it.
	FaultModel *faultmodel.Spec
}

func (c Config) trials(def, quick int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return quick
	}
	return def
}

// Unit builds one trial's FPU under the configured fault model — the one
// construction point every builder shares, so campaign specs select the
// model for all of them at once. Rate 0 yields a reliable unit under every
// model.
func (c Config) Unit(rate float64, seed uint64) *fpu.Unit {
	return c.FaultModel.Unit(rate, seed)
}

// Builder constructs one figure.
type Builder func(Config) *harness.Table

// All returns the figure registry in presentation order.
func All() []struct {
	ID    string
	Desc  string
	Build Builder
} {
	return []struct {
		ID    string
		Desc  string
		Build Builder
	}{
		{"5.1", "FPU fault bit-position distribution: measured vs emulated", Fig51},
		{"5.2", "FPU error rate vs supply voltage", Fig52},
		{"6.1", "Sorting success rate vs fault rate (10k iterations)", Fig61},
		{"6.2", "Least squares relative error vs fault rate (1k iterations)", Fig62},
		{"6.3", "IIR error-to-signal ratio vs fault rate (1k iterations)", Fig63},
		{"6.4", "Bipartite matching success rate vs fault rate (10k iterations)", Fig64},
		{"6.5", "Matching enhancement ladder vs fault rate", Fig65},
		{"6.6", "CG-based least squares accuracy vs fault rate", Fig66},
		{"6.7", "Least squares energy vs accuracy target", Fig67},
		{"momentum", "§6.2.2 momentum ablation on sorting and matching", MomentumAblation},
		{"flops", "§6.3 solver cost in FLOPs (least squares 100x10)", SolverFLOPs},
		{"faultmodel", "Ch.7 ablation: robust sort under different fault models", FaultModelAblation},
		{"penalty", "design ablation: l1 vs quadratic exact penalty on graph LPs", PenaltyAblation},
		{"svm", "§4.7 extension: robust SVM training vs perceptron", SVMExtension},
		{"robustloss", "robust-loss ablation: residual loss vs fault rate on least squares", RobustLossFigure},
		{"graphlp", "§4.5/§4.6: max-flow and APSP LPs vs conventional baselines", GraphLP},
		{"eigen", "§4.7 extension: dominant eigenpair vs power iteration", Eigenpairs},
	}
}

// Lookup returns the builder for a figure id, or nil.
func Lookup(id string) Builder {
	for _, f := range All() {
		if f.ID == id {
			return f.Build
		}
	}
	return nil
}

// Fig51 reproduces Fig 5.1: the measured bit-position fault histogram and
// the emulated mixture used by the injector, with an empirical sample check.
func Fig51(c Config) *harness.Table {
	measured := fpu.MeasuredDistribution()
	emulated := fpu.EmulatedDistribution()
	n := c.trials(2_000_000, 100_000)
	rng := fpu.NewLFSR(c.Seed + 51)
	counts := make([]int, fpu.WordBits)
	for i := 0; i < n; i++ {
		counts[emulated.Sample(rng.Float64())]++
	}
	var mSer, eSer, sSer harness.Series
	mSer.Name = "measured"
	eSer.Name = "emulated"
	sSer.Name = "emulated(sampled)"
	for bit := 0; bit < fpu.WordBits; bit++ {
		x := float64(bit)
		mSer.Points = append(mSer.Points, harness.Point{Rate: x, Value: measured.Prob(bit)})
		eSer.Points = append(eSer.Points, harness.Point{Rate: x, Value: emulated.Prob(bit)})
		sSer.Points = append(sSer.Points, harness.Point{Rate: x, Value: float64(counts[bit]) / float64(n)})
	}
	return &harness.Table{
		Title:  "Fig 5.1: distribution of FPU faults across result bits",
		XLabel: "bit (0=mantissa LSB, 51=mantissa MSB, 52-62=exp, 63=sign)",
		YLabel: "fault probability",
		Series: []harness.Series{mSer, eSer, sSer},
		Notes: []string{
			"bimodal: timing faults cluster in the upper mantissa (large but bounded errors) and the low-order bits (small errors)",
		},
	}
}

// Fig52 reproduces Fig 5.2: the voltage → error-rate curve of the FPU
// model used for all energy accounting.
func Fig52(c Config) *harness.Table {
	m := fpu.DefaultVoltageModel()
	var rate, power harness.Series
	rate.Name = "error rate (errors/op)"
	power.Name = "power (norm.)"
	for step := 0; step <= 24; step++ {
		v := 1.20 - 0.025*float64(step)
		rate.Points = append(rate.Points, harness.Point{Rate: v, Value: m.ErrorRate(v)})
		power.Points = append(power.Points, harness.Point{Rate: v, Value: m.Power(v)})
	}
	return &harness.Table{
		Title:  "Fig 5.2: FPU error rate as supply voltage is scaled",
		XLabel: "supply voltage (V)",
		YLabel: "errors per operation",
		Series: []harness.Series{rate, power},
		Notes: []string{
			fmt.Sprintf("knee at %.2fV (first errors, %.0e/op), one decade per %.0fmV, saturating at %.1f",
				m.Knee, m.KneeRate, m.DecadeStep*1000, m.MaxRate),
		},
	}
}

// sortRates is the Fig 6.1/6.4 fault-rate grid (fractions of FLOPs).
func sortRates(quick bool) []float64 {
	if quick {
		return []float64{0.001, 0.05, 0.5}
	}
	return []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50}
}

// Fig61 reproduces Fig 6.1: sorting success rate for the quicksort
// baseline and the SGD variants, 5-element arrays, 10 000 iterations.
func Fig61(c Config) *harness.Table { return plan61(c).Build() }

func plan61(c Config) *Plan {
	const n = 5
	iters := 10000
	if c.Quick {
		iters = 2000
	}
	trials := c.trials(100, 8)
	sweep := harness.Sweep{Rates: sortRates(c.Quick), Trials: trials, Seed: c.Seed + 61, Workers: c.Workers}

	dataFor := func(seed uint64) []float64 {
		rng := rand.New(rand.NewSource(int64(seed)))
		data := make([]float64, n)
		for i, p := range rng.Perm(n) {
			data[i] = float64(p+1) * 2.5
		}
		return data
	}
	runRobust := func(opts robsort.Options) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			data := dataFor(seed)
			u := c.Unit(rate, seed)
			out, _, err := robsort.Robust(u, data, opts)
			if err != nil {
				return 0
			}
			return b2f(robsort.Success(out, data))
		}
	}
	ls := solver.Linear(0.5 / n)
	sqs := solver.Sqrt(0.5 / n)
	units := []Unit{
		{Series: "Base", Agg: "mean", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			data := dataFor(seed)
			u := c.Unit(rate, seed)
			return b2f(robsort.Success(robsort.Baseline(u, data), data))
		}},
		{Series: "SGD", Agg: "mean", Sweep: sweep, Fn: runRobust(robsort.Options{Iters: iters, Schedule: ls})},
		{Series: "SGD+AS,LS", Agg: "mean", Sweep: sweep, Fn: runRobust(robsort.Options{
			Iters: iters, Schedule: ls, Aggressive: solver.DefaultAggressive()})},
		{Series: "SGD+AS,SQS", Agg: "mean", Sweep: sweep, Fn: runRobust(robsort.Options{
			Iters: iters, Schedule: sqs, Aggressive: solver.DefaultAggressive(), Tail: iters / 5})},
	}
	return &Plan{
		ID: "6.1",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.1: accuracy of sort, %d iterations (%d-element arrays)", iters, n),
			YLabel: "success rate",
			Notes: []string{
				"LS = 1/t step scaling, SQS = 1/sqrt(t); SQS series uses Polyak tail averaging (the Theorem 1 convex-case iterate)",
			},
		},
		Units: units,
	}
}

// lsqRates is the Fig 6.2/6.6 fault-rate grid.
func lsqRates(quick bool) []float64 {
	if quick {
		return []float64{1e-4, 0.01, 0.1}
	}
	return []float64{1e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05, 0.10}
}

// Fig62 reproduces Fig 6.2: least squares relative error for the SVD
// baseline and the SGD variants (A ∈ R^100×10, 1000 iterations).
func Fig62(c Config) *harness.Table { return plan62(c).Build() }

func plan62(c Config) *Plan {
	m, n, iters := 100, 10, 1000
	if c.Quick {
		m, n, iters = 40, 6, 300
	}
	trials := c.trials(25, 5)
	rng := rand.New(rand.NewSource(int64(c.Seed) + 62))
	inst, err := leastsq.Random(rng, m, n, 0.01)
	if err != nil {
		panic(fmt.Sprintf("figures: lsq instance: %v", err))
	}
	sweep := harness.Sweep{Rates: lsqRates(c.Quick), Trials: trials, Seed: c.Seed + 62, Workers: c.Workers}

	runSGD := func(o leastsq.SGDOptions) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			x, _, err := inst.SolveSGD(u, o)
			if err != nil {
				return 1e30
			}
			return capErr(inst.RelErr(x))
		}
	}
	units := []Unit{
		{Series: "Base: SVD", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			return capErr(inst.RelErr(inst.SolveSVD(u)))
		}},
		{Series: "SGD,LS", Agg: "median", Sweep: sweep, Fn: runSGD(leastsq.SGDOptions{
			Iters: iters, Schedule: inst.LinearSchedule(8)})},
		{Series: "SGD+AS,LS", Agg: "median", Sweep: sweep, Fn: runSGD(leastsq.SGDOptions{
			Iters: iters, Schedule: inst.LinearSchedule(8), Aggressive: solver.DefaultAggressive()})},
		// With the same η₀ as the LS series, the 1/√t schedule keeps the
		// step above the curvature stability bound through the early
		// iterations — the instability behind the paper's "SQS results in
		// errors larger than 1.0".
		{Series: "SGD,SQS", Agg: "median", Sweep: sweep, Fn: runSGD(leastsq.SGDOptions{
			Iters: iters, Schedule: inst.SqrtSchedule(8)})},
	}
	return &Plan{
		ID: "6.2",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.2: accuracy of least squares, %d iterations (A %dx%d)", iters, m, n),
			YLabel: "relative error w.r.t. ideal (median; lower is better)",
			Notes:  []string{"the SGD,SQS series reproduces the paper's remark that SQS errors exceed the useful range"},
		},
		Units: units,
	}
}

// Fig63 reproduces Fig 6.3: IIR error-to-signal ratio for the procedural
// baseline and SGD variants (10-tap filter, 500 samples, 1000 iterations).
func Fig63(c Config) *harness.Table { return plan63(c).Build() }

func plan63(c Config) *Plan {
	taps, samples, iters := 10, 500, 1000
	if c.Quick {
		taps, samples, iters = 6, 100, 300
	}
	trials := c.trials(15, 4)
	filter, err := iir.Lowpass(taps, 0.5)
	if err != nil {
		panic(fmt.Sprintf("figures: filter design: %v", err))
	}
	rng := rand.New(rand.NewSource(int64(c.Seed) + 63))
	signal := make([]float64, samples)
	for i := range signal {
		signal[i] = math.Sin(2*math.Pi*float64(i)/23) + 0.3*rng.NormFloat64()
	}
	ideal := filter.Ideal(signal)
	rates := []float64{1e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05}
	if c.Quick {
		rates = []float64{1e-3, 0.01}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 63, Workers: c.Workers}

	runRobust := func(o iir.Options) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			y, _, err := filter.Robust(u, signal, o)
			if err != nil {
				return 1e30
			}
			return capErr(iir.ErrorToSignal(y, ideal))
		}
	}
	units := []Unit{
		{Series: "Base", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			return capErr(iir.ErrorToSignal(filter.Feedforward(u, signal), ideal))
		}},
		{Series: "SGD,LS", Agg: "median", Sweep: sweep, Fn: runRobust(iir.Options{
			Iters: iters, Schedule: filter.LinearSchedule(samples, 8)})},
		{Series: "SGD+AS,LS", Agg: "median", Sweep: sweep, Fn: runRobust(iir.Options{
			Iters: iters, Schedule: filter.LinearSchedule(samples, 8), Aggressive: solver.DefaultAggressive()})},
		{Series: "SGD+AS,SQS", Agg: "median", Sweep: sweep, Fn: runRobust(iir.Options{
			Iters: iters, Schedule: filter.SqrtSchedule(samples, 4), Aggressive: solver.DefaultAggressive()})},
	}
	return &Plan{
		ID: "6.3",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.3: accuracy of IIR, %d iterations (%d taps, %d samples)", iters, taps, samples),
			YLabel: "error energy / signal energy (median; lower is better)",
		},
		Units: units,
	}
}

// Fig64 reproduces Fig 6.4: matching success rate for the Hungarian
// baseline and the basic SGD variants (11 nodes, 30 edges, 10 000
// iterations). The basic variants plateau below ~50%.
func Fig64(c Config) *harness.Table { return plan64(c).Build() }

func plan64(c Config) *Plan {
	iters := 10000
	if c.Quick {
		iters = 2000
	}
	trials := c.trials(40, 8)
	insts := matchingInstances(c.Seed+64, 8)
	sweep := harness.Sweep{Rates: sortRates(c.Quick), Trials: trials, Seed: c.Seed + 64, Workers: c.Workers}

	pick := func(seed uint64) *matching.Instance { return insts[int(seed%uint64(len(insts)))] }
	runRobust := func(opts matching.Options) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			inst := pick(seed)
			u := c.Unit(rate, seed)
			assign, _, err := inst.Robust(u, opts)
			if err != nil {
				return 0
			}
			return b2f(inst.Success(assign))
		}
	}
	const dim = 6
	ls := solver.Linear(0.5 / dim)
	sqs := solver.Sqrt(0.5 / dim)
	units := []Unit{
		{Series: "Base", Agg: "mean", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			inst := pick(seed)
			u := c.Unit(rate, seed)
			return b2f(inst.Success(inst.Baseline(u)))
		}},
		{Series: "SGD,LS", Agg: "mean", Sweep: sweep, Fn: runRobust(matching.Options{Iters: iters, Schedule: ls})},
		{Series: "SGD+AS,LS", Agg: "mean", Sweep: sweep, Fn: runRobust(matching.Options{
			Iters: iters, Schedule: ls, Aggressive: solver.DefaultAggressive()})},
		{Series: "SGD+AS,SQS", Agg: "mean", Sweep: sweep, Fn: runRobust(matching.Options{
			Iters: iters, Schedule: sqs, Aggressive: solver.DefaultAggressive()})},
	}
	return &Plan{
		ID: "6.4",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.4: accuracy of matching, %d iterations (5x6 nodes, 30 edges)", iters),
			YLabel: "success rate",
			Notes:  []string{"without the 6.2 enhancements the SGD variants plateau well below 100%"},
		},
		Units: units,
	}
}

// Fig65 reproduces Fig 6.5: the enhancement ladder on bipartite matching.
func Fig65(c Config) *harness.Table { return plan65(c).Build() }

func plan65(c Config) *Plan {
	iters := 10000
	if c.Quick {
		iters = 2000
	}
	trials := c.trials(40, 8)
	insts := matchingInstances(c.Seed+65, 8)
	rates := []float64{0, 0.02, 0.05, 0.10, 0.20, 0.50}
	if c.Quick {
		rates = []float64{0, 0.05, 0.5}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 65, Workers: c.Workers}
	pick := func(seed uint64) *matching.Instance { return insts[int(seed%uint64(len(insts)))] }

	units := []Unit{
		{Series: "Non-robust", Agg: "mean", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			inst := pick(seed)
			u := c.Unit(rate, seed)
			return b2f(inst.Success(inst.Baseline(u)))
		}},
	}
	for _, v := range matching.Variants(iters, 6) {
		opts := v.Opts
		units = append(units, Unit{
			Series: v.Name, Agg: "mean", Sweep: sweep,
			Fn: func(rate float64, seed uint64) float64 {
				inst := pick(seed)
				u := c.Unit(rate, seed)
				assign, _, err := inst.Robust(u, opts)
				if err != nil {
					return 0
				}
				return b2f(inst.Success(assign))
			},
		})
	}
	return &Plan{
		ID: "6.5",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.5: effect of gradient descent enhancements on matching (%d iterations)", iters),
			YLabel: "success rate",
			Notes: []string{
				"averaged over 8 random 5x6/30-edge instances (the paper used one hand-built instance)",
			},
		},
		Units: units,
	}
}

// Fig66 reproduces Fig 6.6: least squares accuracy of the three direct
// baselines against 10-iteration CG across fault rates.
func Fig66(c Config) *harness.Table { return plan66(c).Build() }

func plan66(c Config) *Plan {
	m, n := 100, 10
	if c.Quick {
		m, n = 40, 6
	}
	trials := c.trials(25, 5)
	rng := rand.New(rand.NewSource(int64(c.Seed) + 66))
	inst, err := leastsq.Random(rng, m, n, 0.01)
	if err != nil {
		panic(fmt.Sprintf("figures: lsq instance: %v", err))
	}
	sweep := harness.Sweep{Rates: lsqRates(c.Quick), Trials: trials, Seed: c.Seed + 66, Workers: c.Workers}
	base := func(solve func(*fpu.Unit) []float64) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			return capErr(inst.RelErr(solve(u)))
		}
	}
	units := []Unit{
		{Series: "Base: QR", Agg: "median", Sweep: sweep, Fn: base(inst.SolveQR)},
		{Series: "Base: SVD", Agg: "median", Sweep: sweep, Fn: base(inst.SolveSVD)},
		{Series: "Base: Cholesky", Agg: "median", Sweep: sweep, Fn: base(inst.SolveCholesky)},
		{Series: "CG, N=10", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			x, _, err := inst.SolveCG(u, 10, 5)
			if err != nil {
				return 1e30
			}
			return capErr(inst.RelErr(x))
		}},
	}
	return &Plan{
		ID: "6.6",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Fig 6.6: accuracy of least squares, CG vs direct baselines (A %dx%d)", m, n),
			YLabel: "relative error w.r.t. ideal (median; lower is better)",
		},
		Units: units,
	}
}

// Fig67 reproduces Fig 6.7: FPU energy (power × #FLOPs) versus accuracy
// target for voltage-overscaled CG against the Cholesky baseline pinned at
// nominal voltage. The FPU is single-precision, as on the Leon3.
func Fig67(c Config) *harness.Table {
	m, n := 100, 10
	if c.Quick {
		m, n = 40, 6
	}
	rng := rand.New(rand.NewSource(int64(c.Seed) + 67))
	inst, err := leastsq.Random(rng, m, n, 0)
	if err != nil {
		panic(fmt.Sprintf("figures: lsq instance: %v", err))
	}
	o := leastsq.DefaultEnergyOptions()
	o.Seed = c.Seed + 67
	o.Trials = c.trials(11, 3)
	if c.Quick {
		o.Rates = []float64{1e-6, 1e-3}
		o.Iters = []int{6, 12}
	}
	targets := []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	if c.Quick {
		targets = []float64{1e-4, 1e-1}
	}
	pts := inst.EnergySweep(targets, o)
	var baseSer, cgSer, voltSer harness.Series
	baseSer.Name = "Base: Cholesky"
	cgSer.Name = "CG"
	voltSer.Name = "CG voltage (V)"
	for _, p := range pts {
		baseSer.Points = append(baseSer.Points, harness.Point{Rate: p.Target, Value: p.BaselineEnergy})
		cgSer.Points = append(cgSer.Points, harness.Point{Rate: p.Target, Value: p.CGEnergy})
		voltSer.Points = append(voltSer.Points, harness.Point{Rate: p.Target, Value: p.CGVoltage})
	}
	return &harness.Table{
		Title:  fmt.Sprintf("Fig 6.7: least squares energy vs accuracy target (A %dx%d, single-precision FPU)", m, n),
		XLabel: "accuracy target (relative error)",
		YLabel: "energy (power x #FLOPs, normalized to nominal-voltage FLOP)",
		Series: []harness.Series{baseSer, cgSer, voltSer},
		Notes: []string{
			"+Inf energy marks infeasible targets (below the single-precision floor for CG)",
			"the baseline must run at nominal voltage: direct factorizations cannot tolerate FPU faults",
		},
	}
}

// MomentumAblation reproduces §6.2.2: momentum 0.5 against plain gradient
// descent on sorting and matching (LS schedule).
func MomentumAblation(c Config) *harness.Table { return planMomentum(c).Build() }

func planMomentum(c Config) *Plan {
	iters := 10000
	if c.Quick {
		iters = 2000
	}
	trials := c.trials(40, 8)
	rates := []float64{0.05, 0.10, 0.25, 0.50}
	if c.Quick {
		rates = []float64{0.05, 0.5}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 622, Workers: c.Workers}
	insts := matchingInstances(c.Seed+622, 8)
	pick := func(seed uint64) *matching.Instance { return insts[int(seed%uint64(len(insts)))] }

	sortRun := func(momentum float64) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			rng := rand.New(rand.NewSource(int64(seed)))
			data := make([]float64, 5)
			for i, p := range rng.Perm(5) {
				data[i] = float64(p+1) * 2.5
			}
			u := c.Unit(rate, seed)
			out, _, err := robsort.Robust(u, data, robsort.Options{
				Iters: iters, Schedule: solver.Linear(0.1), Momentum: momentum})
			if err != nil {
				return 0
			}
			return b2f(robsort.Success(out, data))
		}
	}
	matchRun := func(momentum float64) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			inst := pick(seed)
			u := c.Unit(rate, seed)
			assign, _, err := inst.Robust(u, matching.Options{
				Iters: iters, Schedule: solver.Linear(0.5 / 6), Momentum: momentum})
			if err != nil {
				return 0
			}
			return b2f(inst.Success(assign))
		}
	}
	return &Plan{
		ID: "momentum",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("§6.2.2: momentum ablation (LS schedule, %d iterations)", iters),
			YLabel: "success rate",
		},
		Units: []Unit{
			{Series: "sort", Agg: "mean", Sweep: sweep, Fn: sortRun(0)},
			{Series: "sort+mom0.5", Agg: "mean", Sweep: sweep, Fn: sortRun(0.5)},
			{Series: "match", Agg: "mean", Sweep: sweep, Fn: matchRun(0)},
			{Series: "match+mom0.5", Agg: "mean", Sweep: sweep, Fn: matchRun(0.5)},
		},
	}
}

// SolverFLOPs reproduces the §6.3 cost comparison: FLOPs per solve for the
// three direct baselines and CG budgets on the Fig 6.6 instance.
func SolverFLOPs(c Config) *harness.Table {
	m, n := 100, 10
	if c.Quick {
		m, n = 40, 6
	}
	rng := rand.New(rand.NewSource(int64(c.Seed) + 63))
	inst, err := leastsq.Random(rng, m, n, 0.01)
	if err != nil {
		panic(fmt.Sprintf("figures: lsq instance: %v", err))
	}
	count := func(run func(u *fpu.Unit)) float64 {
		u := fpu.New()
		run(u)
		return float64(u.FLOPs())
	}
	mk := func(name string, v float64) harness.Series {
		return harness.Series{Name: name, Points: []harness.Point{{Rate: 0, Value: v}}}
	}
	return &harness.Table{
		Title:  fmt.Sprintf("§6.3: solver cost in FLOPs (least squares A %dx%d)", m, n),
		XLabel: "-",
		YLabel: "FLOPs per solve",
		Series: []harness.Series{
			mk("Cholesky", count(func(u *fpu.Unit) { inst.SolveCholesky(u) })),
			mk("QR", count(func(u *fpu.Unit) { inst.SolveQR(u) })),
			mk("SVD", count(func(u *fpu.Unit) { inst.SolveSVD(u) })),
			mk("CG,N=5", count(func(u *fpu.Unit) { _, _, _ = inst.SolveCG(u, 5, 0) })),
			mk("CG,N=10", count(func(u *fpu.Unit) { _, _, _ = inst.SolveCG(u, 10, 0) })),
		},
		Notes: []string{
			"the paper reports wall-clock on the Leon3 (CG ~30% faster than QR/SVD); in raw FLOPs CG(10) lands between QR and SVD — see EXPERIMENTS.md",
		},
	}
}

// matchingInstances builds the shared instance pool for the matching
// figures (reliable setup).
func matchingInstances(seed uint64, k int) []*matching.Instance {
	insts := make([]*matching.Instance, k)
	for i := range insts {
		rng := rand.New(rand.NewSource(int64(seed) + int64(i)*97))
		insts[i] = matching.RandomInstance(rng, 5, 6, 30)
	}
	return insts
}

// capErr clips error metrics so means/medians stay plottable (shared
// convention: harness.CapErr).
func capErr(v float64) float64 { return harness.CapErr(v) }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
