package figures

import (
	"bytes"
	"math"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"5.1", "5.2", "6.1", "6.2", "6.3", "6.4", "6.5", "6.6", "6.7", "momentum", "flops", "faultmodel", "penalty", "svm", "robustloss", "graphlp", "eigen"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d figures, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("figure %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Build == nil {
			t.Errorf("figure %q has no builder", id)
		}
		if Lookup(id) == nil {
			t.Errorf("Lookup(%q) = nil", id)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown id should be nil")
	}
}

// TestAllFiguresQuick smoke-runs every figure in Quick mode and validates
// structural invariants: non-empty series, finite or sentinel values, and
// renderability.
func TestAllFiguresQuick(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			t.Parallel()
			table := f.Build(Config{Quick: true, Seed: 2})
			if table.Title == "" {
				t.Error("empty title")
			}
			if len(table.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range table.Series {
				if s.Name == "" {
					t.Error("unnamed series")
				}
				if len(s.Points) == 0 {
					t.Errorf("series %q empty", s.Name)
				}
				for _, p := range s.Points {
					if math.IsNaN(p.Value) {
						t.Errorf("series %q has NaN at rate %v", s.Name, p.Rate)
					}
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if err := table.CSV(&buf); err != nil {
				t.Fatalf("csv: %v", err)
			}
		})
	}
}

// TestFig61Shape checks the headline of Fig 6.1 in quick mode: the robust
// SQS sort beats the quicksort baseline at the highest fault rate.
func TestFig61Shape(t *testing.T) {
	table := Fig61(Config{Quick: true, Seed: 3})
	var base, sqs float64 = -1, -1
	for _, s := range table.Series {
		last := s.Points[len(s.Points)-1].Value
		switch s.Name {
		case "Base":
			base = last
		case "SGD+AS,SQS":
			sqs = last
		}
	}
	if base < 0 || sqs < 0 {
		t.Fatal("series missing")
	}
	if sqs <= base {
		t.Errorf("SQS (%v) should beat the baseline (%v) at the top fault rate", sqs, base)
	}
}

// TestFig66Shape checks that CG tolerates the mid fault rates that break
// the direct baselines. (At the extreme top rate every solver saturates;
// the paper's figure does not reach that regime.)
func TestFig66Shape(t *testing.T) {
	table := Fig66(Config{Quick: true, Seed: 4})
	var cg, chol float64 = -1, -1
	for _, s := range table.Series {
		v := s.Points[len(s.Points)/2].Value
		switch s.Name {
		case "CG, N=10":
			cg = v
		case "Base: Cholesky":
			chol = v
		}
	}
	if cg < 0 || chol < 0 {
		t.Fatal("series missing")
	}
	if cg >= chol {
		t.Errorf("CG error (%v) should undercut Cholesky (%v) at the mid fault rate", cg, chol)
	}
}

func TestConfigTrials(t *testing.T) {
	if got := (Config{}).trials(10, 2); got != 10 {
		t.Errorf("default trials = %d", got)
	}
	if got := (Config{Quick: true}).trials(10, 2); got != 2 {
		t.Errorf("quick trials = %d", got)
	}
	if got := (Config{Trials: 7, Quick: true}).trials(10, 2); got != 7 {
		t.Errorf("explicit trials = %d", got)
	}
}
