package figures

import (
	"fmt"
	"math"
	"math/rand"

	"robustify/internal/apps/apsp"
	"robustify/internal/apps/eigen"
	"robustify/internal/apps/maxflow"
	"robustify/internal/harness"
)

// GraphLP measures the §4.5/§4.6 transformations the paper describes but
// does not plot: max-flow and all-pairs shortest paths as penalized LPs
// against their conventional baselines, across fault rates.
func GraphLP(c Config) *harness.Table { return planGraphLP(c).Build() }

func planGraphLP(c Config) *Plan {
	iters := 20000
	if c.Quick {
		iters = 4000
	}
	trials := c.trials(15, 3)
	rates := []float64{1e-3, 0.01, 0.05}
	if c.Quick {
		rates = []float64{0.01}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 74, Workers: c.Workers}

	rngF := rand.New(rand.NewSource(int64(c.Seed) + 740))
	flowInst := maxflow.RandomInstance(rngF, 6, 2, 4)
	rngA := rand.New(rand.NewSource(int64(c.Seed) + 741))
	apspInst := apsp.RandomInstance(rngA, 6, 8, 5)

	return &Plan{
		ID: "graphlp",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("§4.5/§4.6: graph LPs vs conventional baselines (%d iterations)", iters),
			YLabel: "relative error (median; lower is better)",
		},
		Units: []Unit{
			{Series: "maxflow/FordFulkerson", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				return capErr(flowInst.RelErr(flowInst.Baseline(u)))
			}},
			{Series: "maxflow/robust-LP", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				value, _, err := flowInst.Robust(u, maxflow.Options{Iters: iters, Tail: iters / 5})
				if err != nil {
					return 1e6
				}
				return capErr(flowInst.RelErr(value))
			}},
			{Series: "apsp/FloydWarshall", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				return capErr(apspInst.MeanRelErr(apspInst.Baseline(u)))
			}},
			{Series: "apsp/robust-LP", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				d, _, err := apspInst.Robust(u, apsp.Options{Iters: iters, Tail: iters / 5})
				if err != nil {
					return 1e6
				}
				return capErr(apspInst.MeanRelErr(d))
			}},
		},
	}
}

// Eigenpairs measures the §4.7 Rayleigh-quotient transformation: absolute
// error of the dominant eigenvalue for robust gradient ascent vs the
// conventional power iteration, across fault rates.
func Eigenpairs(c Config) *harness.Table { return planEigen(c).Build() }

func planEigen(c Config) *Plan {
	n := 6
	iters := 2000
	powIters := 300
	if c.Quick {
		iters, powIters = 500, 100
	}
	trials := c.trials(20, 4)
	rates := []float64{1e-3, 0.01, 0.05}
	if c.Quick {
		rates = []float64{0.01}
	}
	rng := rand.New(rand.NewSource(int64(c.Seed) + 75))
	m := eigen.RandomSymmetric(rng, n)
	wantTop := float64(n) // by construction of RandomSymmetric
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 75, Workers: c.Workers}

	score := func(lambda float64) float64 {
		if lambda != lambda || math.IsInf(lambda, 0) {
			return 1e6
		}
		return capErr(math.Abs(lambda-wantTop) / wantTop)
	}
	return &Plan{
		ID: "eigen",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("§4.7: dominant eigenpair, robust Rayleigh ascent vs power iteration (n=%d)", n),
			YLabel: "relative eigenvalue error (median; lower is better)",
		},
		Units: []Unit{
			{Series: "power-iteration", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				lambda, _ := eigen.PowerIteration(u, m, powIters)
				return score(lambda)
			}},
			{Series: "robust-rayleigh", Agg: "median", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				lambda, _, err := eigen.TopEigen(u, m, eigen.Options{Iters: iters})
				if err != nil {
					return 1e6
				}
				return score(lambda)
			}},
		},
	}
}
