package figures

import (
	"fmt"
	"math/rand"

	"robustify/internal/apps/leastsq"
	"robustify/internal/harness"
	"robustify/internal/robust"
)

// RobustLossFigure measures the robust-loss design axis: least-squares SGD
// under FPU faults with the residual loss swept over the internal/robust
// registry. The quadratic series is the paper's objective (bit-identical to
// the pre-loss solver); the bounded-influence losses cap the pull of a
// residual a fault has blown up, which is exactly the failure mode that
// dominates at high fault rates.
func RobustLossFigure(c Config) *harness.Table { return planRobustLoss(c).Build() }

func planRobustLoss(c Config) *Plan {
	iters := 800
	if c.Quick {
		iters = 200
	}
	trials := c.trials(16, 3)
	rates := []float64{0, 0.01, 0.05, 0.2}
	if c.Quick {
		rates = []float64{0.01, 0.2}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 81, Workers: c.Workers}

	run := func(kind robust.Kind) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			rng := rand.New(rand.NewSource(int64(seed)))
			inst, err := leastsq.Random(rng, 30, 6, 0.01)
			if err != nil {
				return 1e6
			}
			// Per-trial loss: a Robustifier carries mutable shape state, so
			// parallel trials must not share one.
			var loss robust.Robustifier
			if kind != robust.Quadratic {
				if loss, err = robust.New(kind, 0); err != nil {
					return 1e6
				}
			}
			u := c.Unit(rate, seed)
			x, _, err := inst.SolveSGD(u, leastsq.SGDOptions{Iters: iters, Loss: loss})
			if err != nil {
				return 1e6
			}
			return capErr(inst.RelErr(x))
		}
	}

	units := make([]Unit, 0, len(robust.Kinds()))
	for _, kind := range robust.Kinds() {
		units = append(units, Unit{
			Series: string(kind), Agg: "median", Sweep: sweep, Fn: run(kind),
		})
	}
	return &Plan{
		ID: "robustloss",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Robust-loss ablation: least squares under FPU faults (%d iterations, default shapes)", iters),
			YLabel: "median relative error (lower is better)",
			Notes: []string{
				"quadratic is the paper's objective; bounded-influence losses (huber, pseudo-huber, geman-mcclure, smooth-l1) cap how hard one fault-corrupted residual can pull the gradient",
			},
		},
		Units: units,
	}
}
