package figures

import (
	"fmt"
	"math/rand"

	"robustify/internal/apps/apsp"
	"robustify/internal/apps/maxflow"
	"robustify/internal/apps/robsort"
	"robustify/internal/apps/svm"
	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/harness"
)

// FaultModelAblation addresses Ch. 7's open question — how the methodology
// fares under different fault models — by sweeping the four bit
// distributions on two workloads at each fault rate: robust sorting
// (success rate) and robust least-squares-free IIR-style SGD is already
// covered elsewhere, so the second workload here is the SVM trainer
// (held-out accuracy).
func FaultModelAblation(c Config) *harness.Table { return planFaultModel(c).Build() }

func planFaultModel(c Config) *Plan {
	iters := 10000
	if c.Quick {
		iters = 2000
	}
	trials := c.trials(40, 6)
	rates := []float64{0.05, 0.2, 0.5}
	if c.Quick {
		rates = []float64{0.05, 0.5}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 71, Workers: c.Workers}
	dists := []fpu.BitDistribution{
		fpu.EmulatedDistribution(),
		fpu.MeasuredDistribution(),
		fpu.LowOrderDistribution(),
		fpu.UniformDistribution(),
	}
	var units []Unit
	for _, d := range dists {
		dist := d
		units = append(units, Unit{
			Series: "sort/" + dist.Name(), Agg: "mean", Sweep: sweep,
			Fn: func(rate float64, seed uint64) float64 {
				rng := rand.New(rand.NewSource(int64(seed)))
				data := make([]float64, 5)
				for i, p := range rng.Perm(5) {
					data[i] = float64(p+1) * 2.5
				}
				inj := fpu.NewInjector(rate, seed, fpu.WithDistribution(dist))
				u := fpu.New(fpu.WithInjector(inj))
				out, _, err := robsort.Robust(u, data, robsort.Options{
					Iters: iters, Tail: iters / 5, Guard: 1e3,
				})
				if err != nil {
					return 0
				}
				return b2f(robsort.Success(out, data))
			},
		})
	}
	return &Plan{
		ID: "faultmodel",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Ch.7 ablation: robust sort success under different fault models (%d iterations)", iters),
			YLabel: "success rate",
			Notes: []string{
				"with the magnitude guard (reliable range check at 1e3), mantissa-dominated models stay correct; uniform faults (17% exponent-bit mass, unbounded errors) remain the worst case",
			},
		},
		Units: units,
	}
}

// PenaltyAblation measures the ℓ1-vs-quadratic exact penalty design choice
// on the two graph LPs, where the quadratic form's finite-μ bias is
// structural (it telescopes along shortest-path chains and flow paths).
func PenaltyAblation(c Config) *harness.Table { return planPenalty(c).Build() }

func planPenalty(c Config) *Plan {
	iters := 20000
	if c.Quick {
		iters = 4000
	}
	trials := c.trials(12, 3)
	rates := []float64{0, 0.01, 0.05}
	if c.Quick {
		rates = []float64{0, 0.05}
	}
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 72, Workers: c.Workers}

	rngA := rand.New(rand.NewSource(int64(c.Seed) + 720))
	apspInst := apsp.RandomInstance(rngA, 6, 8, 5)
	rngF := rand.New(rand.NewSource(int64(c.Seed) + 721))
	flowInst := maxflow.RandomInstance(rngF, 6, 2, 4)

	apspRun := func(kind core.PenaltyKind) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			d, _, err := apspInst.Robust(u, apsp.Options{Iters: iters, Kind: kind, Tail: iters / 5})
			if err != nil {
				return 1e6
			}
			return capErr(apspInst.MeanRelErr(d))
		}
	}
	flowRun := func(kind core.PenaltyKind) harness.TrialFunc {
		return func(rate float64, seed uint64) float64 {
			u := c.Unit(rate, seed)
			value, _, err := flowInst.Robust(u, maxflow.Options{Iters: iters, Kind: kind, Tail: iters / 5})
			if err != nil {
				return 1e6
			}
			return capErr(flowInst.RelErr(value))
		}
	}
	return &Plan{
		ID: "penalty",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("Design ablation: exact penalty form on the graph LPs (%d iterations)", iters),
			YLabel: "mean relative error (lower is better)",
			Notes: []string{
				"the quadratic penalty's finite-mu constraint overshoot telescopes along path/flow chains; the l1 penalty is exact at finite mu (Theorem 2)",
			},
		},
		Units: []Unit{
			{Series: "apsp/abs", Agg: "median", Sweep: sweep, Fn: apspRun(core.PenaltyAbs)},
			{Series: "apsp/quad", Agg: "median", Sweep: sweep, Fn: apspRun(core.PenaltyQuad)},
			{Series: "maxflow/abs", Agg: "median", Sweep: sweep, Fn: flowRun(core.PenaltyAbs)},
			{Series: "maxflow/quad", Agg: "median", Sweep: sweep, Fn: flowRun(core.PenaltyQuad)},
		},
	}
}

// SVMExtension measures the §4.7 SVM workload: robust Pegasos-style
// training against the mistake-driven perceptron baseline.
func SVMExtension(c Config) *harness.Table { return planSVM(c).Build() }

func planSVM(c Config) *Plan {
	iters := 2000
	if c.Quick {
		iters = 500
	}
	trials := c.trials(20, 4)
	rates := []float64{0.001, 0.01, 0.05, 0.2}
	if c.Quick {
		rates = []float64{0.01, 0.2}
	}
	rng := rand.New(rand.NewSource(int64(c.Seed) + 73))
	data := svm.TwoGaussians(rng, 200, 400, 8, 2.5)
	sweep := harness.Sweep{Rates: rates, Trials: trials, Seed: c.Seed + 73, Workers: c.Workers}
	return &Plan{
		ID: "svm",
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("§4.7 extension: SVM training accuracy under FPU faults (%d iterations)", iters),
			YLabel: "held-out accuracy",
		},
		Units: []Unit{
			{Series: "perceptron", Agg: "mean", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				return data.Accuracy(svm.Perceptron(u, data, 10))
			}},
			{Series: "robust-pegasos", Agg: "mean", Sweep: sweep, Fn: func(rate float64, seed uint64) float64 {
				u := c.Unit(rate, seed)
				w, _, err := svm.Train(u, data, svm.Options{Iters: iters})
				if err != nil {
					return 0
				}
				return data.Accuracy(w)
			}},
		},
	}
}
