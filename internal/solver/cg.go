package solver

import (
	"errors"
	"math"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// MulFunc computes dst ← M·x for the (symmetric positive definite) system
// matrix, with every FLOP on the caller's stochastic FPU. dst never aliases
// x.
type MulFunc func(x, dst []float64)

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	// Iters is the number of CG iterations (the paper's Fig 6.6 uses 10).
	Iters int
	// RestartEvery resets the search direction to the steepest-descent
	// direction every so many iterations, limiting how far accumulated
	// gradient noise can corrupt conjugacy (§3.3). 0 disables restarts.
	RestartEvery int
}

// CG solves M·x = b by the conjugate gradient method, tolerating noise in
// the matrix-vector products and vector recurrences (the data path, on u).
// Scalar step computation and the iterate update are reliable control
// steps, per the paper's assumption. x0 is not modified.
//
// On a reliable unit CG converges in at most dim(x) iterations for any SPD
// system.
func CG(u *fpu.Unit, mul MulFunc, b, x0 []float64, opts CGOptions) (Result, error) {
	n := len(b)
	if len(x0) != n {
		return Result{}, linalg.ErrShape
	}
	if opts.Iters <= 0 {
		return Result{}, errors.New("solver: CG needs a positive iteration count")
	}
	if mul == nil {
		return Result{}, errors.New("solver: CG needs a MulFunc")
	}

	x := make([]float64, n)
	copy(x, x0)
	r := make([]float64, n)
	p := make([]float64, n)
	w := make([]float64, n)

	res := Result{Value: math.NaN()}
	restart := func() bool {
		// r ← b − M·x on the stochastic unit; p ← r.
		mul(x, w)
		linalg.Sub(u, b, w, r)
		copy(p, r)
		return linalg.AllFinite(r)
	}
	if !restart() {
		// One retry: the fault stream advances, so a second evaluation
		// usually comes back clean.
		if !restart() {
			res.X = x
			res.Skipped++
			return res, nil
		}
	}
	rs := linalg.Dot(u, r, r)

	for k := 1; k <= opts.Iters; k++ {
		if opts.RestartEvery > 0 && k > 1 && (k-1)%opts.RestartEvery == 0 {
			if !restart() {
				res.Skipped++
				continue
			}
			rs = linalg.Dot(u, r, r)
		}
		mul(p, w)
		den := linalg.Dot(u, p, w)
		res.Iters++
		// Reliable control: step size and validity checks.
		if !(den > 0) || !linalg.AllFinite(w) || math.IsNaN(rs) || math.IsInf(rs, 0) {
			res.Skipped++
			if !restart() {
				continue
			}
			rs = linalg.Dot(u, r, r)
			continue
		}
		//lint:fpu-exempt scalar step computation is the paper's reliable control step (§3.3)
		alpha := rs / den
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			res.Skipped++
			continue
		}
		// Reliable iterate update.
		//lint:fpu-exempt the iterate update is the paper's reliable control step (§3.3): the data path is mul/Dot/Axpy on u
		for i := range x {
			x[i] += alpha * p[i]
		}
		// Residual and direction recurrences are data-path vector math.
		linalg.Axpy(u, -alpha, w, r)
		rsNew := linalg.Dot(u, r, r)
		if !linalg.AllFinite(r) || math.IsNaN(rsNew) || math.IsInf(rsNew, 0) || rsNew < 0 {
			res.Skipped++
			if restart() {
				rs = linalg.Dot(u, r, r)
			}
			continue
		}
		//lint:fpu-exempt scalar step computation is the paper's reliable control step (§3.3)
		beta := rsNew / rs
		linalg.Xpay(u, r, beta, p)
		if !linalg.AllFinite(p) {
			res.Skipped++
			if !restart() {
				continue
			}
			rsNew = linalg.Dot(u, r, r)
		}
		rs = rsNew
	}
	res.X = x
	return res, nil
}

// NormalEquationsMul returns a MulFunc computing (AᵀA)·x on u without
// forming AᵀA, the operator CG needs to solve the least squares problem
// min ‖Ax−b‖².
func NormalEquationsMul(u *fpu.Unit, a *linalg.Dense) MulFunc {
	tmp := make([]float64, a.Rows)
	return func(x, dst []float64) {
		a.MulVec(u, x, tmp)
		a.TMulVec(u, tmp, dst)
	}
}
