package solver

import (
	"errors"
	"math"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

// MulFunc computes dst ← M·x for the (symmetric positive definite) system
// matrix, with every FLOP on the caller's stochastic FPU. dst never aliases
// x.
type MulFunc func(x, dst []float64)

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	// Iters is the number of CG iterations (the paper's Fig 6.6 uses 10).
	Iters int
	// RestartEvery resets the search direction to the steepest-descent
	// direction every so many iterations, limiting how far accumulated
	// gradient noise can corrupt conjugacy (§3.3). 0 disables restarts.
	RestartEvery int
}

// CG solves M·x = b by the conjugate gradient method, tolerating noise in
// the matrix-vector products and vector recurrences (the data path, on u).
// Scalar step computation and the iterate update are reliable control
// steps, per the paper's assumption. x0 is not modified.
//
// On a reliable unit CG converges in at most dim(x) iterations for any SPD
// system.
func CG(u *fpu.Unit, mul MulFunc, b, x0 []float64, opts CGOptions) (Result, error) {
	n := len(b)
	if len(x0) != n {
		return Result{}, linalg.ErrShape
	}
	if opts.Iters <= 0 {
		return Result{}, errors.New("solver: CG needs a positive iteration count")
	}
	if mul == nil {
		return Result{}, errors.New("solver: CG needs a MulFunc")
	}

	x := make([]float64, n)
	copy(x, x0)
	r := make([]float64, n)
	p := make([]float64, n)
	w := make([]float64, n)

	res := Result{Value: math.NaN()}
	restart := func() bool {
		// r ← b − M·x on the stochastic unit; p ← r.
		mul(x, w)
		linalg.Sub(u, b, w, r)
		copy(p, r)
		return linalg.AllFinite(r)
	}
	if !restart() {
		// One retry: the fault stream advances, so a second evaluation
		// usually comes back clean.
		if !restart() {
			res.X = x
			res.Skipped++
			return res, nil
		}
	}
	rs := linalg.Dot(u, r, r)

	for k := 1; k <= opts.Iters; k++ {
		// The iterate, residual, and search direction persist across
		// iterations — the stored state memory-resident fault models
		// strike. Under every FLOP-level model the hooks are pinned
		// no-ops, so they cannot perturb existing per-seed results.
		u.CorruptSlice(x)
		u.CorruptSlice(r)
		u.CorruptSlice(p)
		if opts.RestartEvery > 0 && k > 1 && (k-1)%opts.RestartEvery == 0 {
			if !restart() {
				res.Skipped++
				continue
			}
			rs = linalg.Dot(u, r, r)
		}
		mul(p, w)
		den := linalg.Dot(u, p, w)
		res.Iters++
		// Reliable control: step size and validity checks.
		if !(den > 0) || !linalg.AllFinite(w) || math.IsNaN(rs) || math.IsInf(rs, 0) {
			res.Skipped++
			if !restart() {
				continue
			}
			rs = linalg.Dot(u, r, r)
			continue
		}
		//lint:fpu-exempt scalar step computation is the paper's reliable control step (§3.3)
		alpha := rs / den
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			res.Skipped++
			continue
		}
		// Reliable iterate update.
		//lint:fpu-exempt the iterate update is the paper's reliable control step (§3.3): the data path is mul/Dot/Axpy on u
		for i := range x {
			x[i] += alpha * p[i]
		}
		// Residual and direction recurrences are data-path vector math.
		linalg.Axpy(u, -alpha, w, r)
		rsNew := linalg.Dot(u, r, r)
		if !linalg.AllFinite(r) || math.IsNaN(rsNew) || math.IsInf(rsNew, 0) || rsNew < 0 {
			res.Skipped++
			if restart() {
				rs = linalg.Dot(u, r, r)
			}
			continue
		}
		//lint:fpu-exempt scalar step computation is the paper's reliable control step (§3.3)
		beta := rsNew / rs
		linalg.Xpay(u, r, beta, p)
		if !linalg.AllFinite(p) {
			res.Skipped++
			if !restart() {
				continue
			}
			rsNew = linalg.Dot(u, r, r)
		}
		rs = rsNew
	}
	res.X = x
	return res, nil
}

// NormalEquationsMul returns a MulFunc computing (AᵀA)·x on u without
// forming AᵀA, the operator CG needs to solve the least squares problem
// min ‖Ax−b‖².
func NormalEquationsMul(u *fpu.Unit, a *linalg.Dense) MulFunc {
	tmp := make([]float64, a.Rows)
	return func(x, dst []float64) {
		a.MulVec(u, x, tmp)
		a.TMulVec(u, tmp, dst)
	}
}

// WeightedNormalEquationsMul returns a MulFunc computing (AᵀWA)·x on u for a
// diagonal weight vector w, the operator of one IRLS inner solve.
func WeightedNormalEquationsMul(u *fpu.Unit, a *linalg.Dense, w []float64) MulFunc {
	tmp := make([]float64, a.Rows)
	return func(x, dst []float64) {
		a.MulVec(u, x, tmp)
		for i := range tmp {
			tmp[i] = u.Mul(w[i], tmp[i])
		}
		a.TMulVec(u, tmp, dst)
	}
}

// IRLSOptions configures the iteratively-reweighted least squares loop.
type IRLSOptions struct {
	// Outer is the number of reweighting rounds. The count is fixed, not
	// adaptive: every convergence decision IRLS could make would have to
	// read faulty values, so a deterministic schedule keeps runs replayable
	// per seed.
	Outer int
	// CG configures each round's inner conjugate-gradient solve.
	CG CGOptions
}

// IRLS minimizes Σρ(rᵢ) over residuals r = A·x − b by iteratively
// reweighted least squares: each round evaluates the residual on u, forms
// IRLS weights wᵢ = loss.Weight(rᵢ), and warm-starts CG on the weighted
// normal equations AᵀWA·x = AᵀWb. Matrix-vector products, residuals, and
// weights are the stochastic data path; weight sanitation and loop control
// are reliable.
//
// A nil or quadratic loss has the constant weight 1, so IRLS collapses to
// plain CG on the normal equations — taken as an explicit fast path whose
// op stream is identical to CG(u, NormalEquationsMul(u, a), Aᵀb, x0): the
// residual and weight passes are skipped entirely, so the fault stream is
// not advanced and per-seed outcomes match the pre-robust solver bit for
// bit. x0 is not modified.
func IRLS(u *fpu.Unit, a *linalg.Dense, b []float64, loss robust.Robustifier, x0 []float64, opts IRLSOptions) (Result, error) {
	if len(b) != a.Rows || len(x0) != a.Cols {
		return Result{}, linalg.ErrShape
	}
	if opts.Outer <= 0 {
		return Result{}, errors.New("solver: IRLS needs a positive outer round count")
	}
	rhs := make([]float64, a.Cols)
	if loss == nil || loss.Kind() == robust.Quadratic {
		a.TMulVec(u, b, rhs)
		return CG(u, NormalEquationsMul(u, a), rhs, x0, opts.CG)
	}

	x := make([]float64, a.Cols)
	copy(x, x0)
	r := make([]float64, a.Rows)
	w := make([]float64, a.Rows)
	wb := make([]float64, a.Rows)
	var total Result
	total.Value = math.NaN()
	for round := 0; round < opts.Outer; round++ {
		// The outer iterate is stored state between rounds; the inner CG
		// exposes its own vectors per iteration.
		u.CorruptSlice(x)
		// Residual and weights on the stochastic unit.
		a.MulVec(u, x, r)
		linalg.Sub(u, r, b, r)
		for i := range r {
			w[i] = loss.Weight(u, r[i])
		}
		// Reliable control: a weight corrupted to NaN/Inf (or knocked
		// negative) would poison the whole inner system; drop the row for
		// this round instead.
		for i, wi := range w {
			if math.IsNaN(wi) || math.IsInf(wi, 0) || wi < 0 {
				w[i] = 0
				total.Skipped++
			}
		}
		// Right-hand side AᵀWb on the stochastic unit.
		for i := range b {
			wb[i] = u.Mul(w[i], b[i])
		}
		a.TMulVec(u, wb, rhs)
		inner, err := CG(u, WeightedNormalEquationsMul(u, a, w), rhs, x, opts.CG)
		if err != nil {
			return Result{}, err
		}
		total.Iters += inner.Iters
		total.Skipped += inner.Skipped
		// Reliable guard: keep the previous iterate if the round collapsed.
		if linalg.AllFinite(inner.X) {
			copy(x, inner.X)
		}
	}
	total.X = x
	return total, nil
}
