package solver

import (
	"errors"
	"math"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// ErrBadOptions is returned when solver options are inconsistent.
var ErrBadOptions = errors.New("solver: invalid options")

// Aggressive configures the aggressive-stepping phase (§3.2): after the
// fixed-iteration SGD phase, the step size grows by SuccessFactor whenever a
// step decreases the (reliably evaluated) cost and shrinks by FailFactor
// whenever it increases it, until the relative cost change between two
// consecutive steps drops below Tol or MaxIters steps have been taken.
type Aggressive struct {
	SuccessFactor float64 // growth on improvement, e.g. 1.25
	FailFactor    float64 // shrinkage on regression, e.g. 0.6
	Tol           float64 // relative-change stop threshold, e.g. 1e-6
	MaxIters      int     // hard cap on the phase length
	InitStep      float64 // optional; defaults to the last SGD step size
}

// DefaultAggressive returns the aggressive-stepping setting used across the
// paper's "+AS" experiment series.
func DefaultAggressive() *Aggressive {
	return &Aggressive{SuccessFactor: 1.25, FailFactor: 0.6, Tol: 1e-7, MaxIters: 500}
}

// Anneal configures loss-parameter annealing (§6.2.4, generalized): every
// Every iterations the Annealable problem's parameter is multiplied by
// Factor, up to the limit Max in the direction of travel. With Factor > 1 it
// raises a penalty multiplier μ as the solver closes in, sharpening the
// constraint walls without swamping the true objective early on (Max is a
// ceiling). With Factor < 1 it shrinks a robust-loss shape parameter —
// Huber/pseudo-Huber δ, Geman–McClure σ — tightening the loss toward
// robustness in the graduated-non-convexity style (Max is a floor). A
// problem whose AnnealParam is 0 has nothing to anneal and is left alone.
type Anneal struct {
	Factor float64 // multiplicative change per firing; > 1 grows, < 1 shrinks
	Every  int     // iterations between changes
	Max    float64 // limit in the direction of travel (0 = unlimited)
}

// DefaultAnneal returns the annealing schedule used in the Fig 6.5
// enhancement study (a μ-raising schedule). The limit matters: quadratic-
// penalty gradients have curvature ∝ μ·λ·n, so μ must stay below the step
// schedule's stability bound or the solver oscillates out of the feasible
// region. Shape-shrinking schedules (Factor < 1) need a floor for the dual
// reason: a loss squeezed too tight treats every residual as an outlier and
// stops pulling toward the optimum at all.
func DefaultAnneal() *Anneal {
	return &Anneal{Factor: 2, Every: 1500, Max: 8}
}

// Options configures SGD.
type Options struct {
	// Iters is the fixed iteration count of the main SGD phase.
	Iters int
	// Schedule sets the step size per iteration (required).
	Schedule Schedule
	// Momentum, when nonzero, smooths the search direction (§3.2):
	// d ← Momentum·∇f + (1−Momentum)·d. The paper uses 0.5.
	Momentum float64
	// Aggressive, when non-nil, appends an aggressive-stepping phase.
	Aggressive *Aggressive
	// Anneal, when non-nil and the problem is Annealable, raises the
	// penalty weight on the given cadence.
	Anneal *Anneal
	// TailAverage, when positive, returns the average of the last
	// TailAverage main-phase iterates instead of the final iterate —
	// Polyak-Ruppert averaging, the form in which Theorem 1's convex-case
	// guarantee is actually stated (Nemirovski et al.'s robust SA). The
	// running average is reliable control arithmetic.
	TailAverage int
	// GuardThreshold, when positive, extends the reliable control guard
	// to skip steps whose gradient contains an entry of magnitude above
	// the threshold. Fault models that corrupt exponent bits produce
	// astronomically large but still finite gradients that the
	// non-finite guard cannot see; a sanity range check is the software
	// redundancy the paper's reliability assumption permits.
	GuardThreshold float64
	// DisableGuard turns off the reliable control-path guard that skips
	// steps whose gradient came back non-finite after a fault burst. The
	// guard is on by default; disabling it exposes the raw behaviour.
	DisableGuard bool
	// Callback, when non-nil, observes the iterate after every accepted
	// main-phase step (reliable path; must not modify x).
	Callback func(iter int, x []float64)
	// Unit, when non-nil, exposes the iterate to memory-resident fault
	// models between iterations (fpu.Unit.CorruptSlice): stored state is
	// where those models strike. Under every FLOP-level model — including
	// the default — the hook is a pinned no-op that charges nothing and
	// never advances the fault schedule, so wiring it cannot perturb
	// per-seed results.
	Unit *fpu.Unit
}

// Result reports the outcome of a solve.
type Result struct {
	// X is the final iterate.
	X []float64
	// Iters counts gradient evaluations across all phases.
	Iters int
	// Skipped counts steps rejected by the non-finite guard.
	Skipped int
	// Value is the final reliable objective value (NaN when never
	// evaluated, i.e. no aggressive phase and no Value calls needed).
	Value float64
	// Converged is set when the aggressive phase hit its tolerance.
	Converged bool
}

// SGD minimizes p from x0 with stochastic gradient descent per the paper's
// iteration (3.1): xᵢ ← xᵢ₋₁ − ηᵢ·∇f(xᵢ₋₁; ξ). The returned iterate is the
// last one; x0 is not modified.
func SGD(p core.Problem, x0 []float64, opts Options) (Result, error) {
	n := p.Dim()
	if len(x0) != n {
		return Result{}, linalg.ErrShape
	}
	if opts.Schedule == nil {
		return Result{}, errors.New("solver: Schedule is required")
	}
	if opts.Iters < 0 {
		return Result{}, errors.New("solver: negative iteration count")
	}
	if opts.Momentum < 0 || opts.Momentum > 1 {
		return Result{}, errors.New("solver: momentum must be in [0, 1]")
	}
	if opts.Anneal != nil && (opts.Anneal.Factor <= 0 || opts.Anneal.Factor == 1 || opts.Anneal.Every <= 0) {
		return Result{}, errors.New("solver: anneal needs Factor > 0, Factor != 1, and Every > 0")
	}
	if a := opts.Aggressive; a != nil {
		if a.SuccessFactor <= 1 || a.FailFactor <= 0 || a.FailFactor >= 1 || a.MaxIters < 0 {
			return Result{}, errors.New("solver: aggressive stepping factors out of range")
		}
	}

	x := make([]float64, n)
	copy(x, x0)
	grad := make([]float64, n)
	dir := make([]float64, n)
	xPrev := make([]float64, n)
	var avg []float64
	avgFrom, avgCount := opts.Iters-opts.TailAverage+1, 0
	if opts.TailAverage > 0 {
		avg = make([]float64, n)
	}

	res := Result{Value: math.NaN()}
	annealable, _ := p.(core.Annealable)
	lastStep := 0.0

	for t := 1; t <= opts.Iters; t++ {
		// The iterate is the solver's only state that persists across
		// iterations — the memory-resident model's target.
		opts.Unit.CorruptSlice(x)
		if opts.Anneal != nil && annealable != nil && t%opts.Anneal.Every == 0 {
			if cur := annealable.AnnealParam(); cur != 0 {
				//lint:fpu-exempt annealing schedule is reliable control arithmetic, not simulated-machine math
				v := cur * opts.Anneal.Factor
				if opts.Anneal.Max > 0 {
					// Max limits in the direction of travel: a ceiling for
					// growing schedules, a floor for shrinking ones.
					if opts.Anneal.Factor > 1 && v > opts.Anneal.Max {
						v = opts.Anneal.Max
					} else if opts.Anneal.Factor < 1 && v < opts.Anneal.Max {
						v = opts.Anneal.Max
					}
				}
				annealable.SetAnnealParam(v)
			}
		}
		p.Grad(x, grad) // stochastic data path
		res.Iters++
		// Reliable control path from here on.
		if !opts.DisableGuard && !gradOK(grad, opts.GuardThreshold) {
			res.Skipped++
			continue
		}
		mixDirection(dir, grad, opts.Momentum)
		step := opts.Schedule(t)
		lastStep = step
		copy(xPrev, x)
		//lint:fpu-exempt the iterate update is the paper's reliable control step (§3.1): only the gradient is stochastic
		for i := range x {
			x[i] -= step * dir[i]
		}
		if !opts.DisableGuard && !linalg.AllFinite(x) {
			copy(x, xPrev)
			res.Skipped++
			continue
		}
		if avg != nil && t >= avgFrom {
			//lint:fpu-exempt Polyak-Ruppert tail averaging is reliable control arithmetic (see Options.TailAverage)
			for i := range avg {
				avg[i] += x[i]
			}
			avgCount++
		}
		if opts.Callback != nil {
			opts.Callback(t, x)
		}
	}
	if avgCount > 0 {
		//lint:fpu-exempt tail-average normalization is reliable control arithmetic
		inv := 1 / float64(avgCount)
		//lint:fpu-exempt tail-average normalization is reliable control arithmetic
		for i := range x {
			x[i] = avg[i] * inv
		}
	}

	if opts.Aggressive != nil {
		aggressivePhase(p, x, grad, dir, xPrev, lastStep, opts, &res)
	}
	res.X = x
	return res, nil
}

// gradOK implements the reliable gradient guard: finite everywhere and,
// when a threshold is set, within the sanity range.
func gradOK(grad []float64, threshold float64) bool {
	if !linalg.AllFinite(grad) {
		return false
	}
	if threshold <= 0 {
		return true
	}
	for _, g := range grad {
		if g > threshold || g < -threshold {
			return false
		}
	}
	return true
}

// mixDirection updates dir in place: plain gradient when momentum is
// disabled, otherwise the smoothed running average of §3.2.
//
//lint:fpu-exempt momentum smoothing is reliable control arithmetic (§3.2): only the gradient evaluation is stochastic
func mixDirection(dir, grad []float64, momentum float64) {
	if momentum == 0 || momentum == 1 {
		copy(dir, grad)
		return
	}
	keep := 1 - momentum
	for i := range dir {
		dir[i] = momentum*grad[i] + keep*dir[i]
	}
}

// aggressivePhase runs the adaptive step-size phase. Cost evaluations are
// reliable (control path); gradients remain stochastic. Because every step
// is scored by the reliable oracle anyway, the phase tracks the best
// iterate seen and returns it — growing steps can therefore explore
// without ever leaving the caller worse off than the main phase did.
//
//lint:fpu-exempt the whole phase is the paper's reliable control oracle (§3.2): step adaptation, iterate updates, and convergence tests; the stochastic math lives in p.Grad
func aggressivePhase(p core.Problem, x, grad, dir, xPrev []float64, lastStep float64, opts Options, res *Result) {
	a := opts.Aggressive
	step := a.InitStep
	if step <= 0 {
		step = lastStep
	}
	if step <= 0 {
		step = opts.Schedule(1)
	}
	fPrev := p.Value(x)
	res.Value = fPrev
	best := make([]float64, len(x))
	copy(best, x)
	fBest := fPrev
	defer func() {
		if fBest < res.Value {
			copy(x, best)
			res.Value = fBest
		}
	}()
	for i := 0; i < a.MaxIters; i++ {
		opts.Unit.CorruptSlice(x)
		p.Grad(x, grad)
		res.Iters++
		if !opts.DisableGuard && !gradOK(grad, opts.GuardThreshold) {
			res.Skipped++
			continue
		}
		mixDirection(dir, grad, opts.Momentum)
		copy(xPrev, x)
		for j := range x {
			x[j] -= step * dir[j]
		}
		if !opts.DisableGuard && !linalg.AllFinite(x) {
			copy(x, xPrev)
			res.Skipped++
			step *= a.FailFactor
			continue
		}
		f := p.Value(x)
		if f < fBest {
			fBest = f
			copy(best, x)
		}
		if f < fPrev {
			step *= a.SuccessFactor
		} else {
			step *= a.FailFactor
		}
		change := math.Abs(f - fPrev)
		scale := math.Abs(fPrev)
		if scale < 1 {
			scale = 1
		}
		res.Value = f
		if change/scale < a.Tol {
			fPrev = f
			res.Converged = true
			break
		}
		fPrev = f
	}
	res.Value = fPrev
}
