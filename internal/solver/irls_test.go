package solver

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

func TestIRLSQuadraticIsCGBitForBit(t *testing.T) {
	// The fast-path contract: with a quadratic (or nil) loss, IRLS must
	// replay plain CG on the normal equations exactly — same fault stream,
	// same bits — so wiring workloads through IRLS changes nothing per seed.
	rng := rand.New(rand.NewSource(51))
	a, _, b := randSPDSystem(rng, 20, 6)
	x0 := make([]float64, 6)

	cgRun := func() ([]float64, uint64) {
		u := fpu.New(fpu.WithFaultRate(0.05, 77))
		atb := make([]float64, 6)
		a.TMulVec(u, b, atb)
		res, err := CG(u, NormalEquationsMul(u, a), atb, x0, CGOptions{Iters: 10, RestartEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.X, u.FLOPs()
	}
	irlsRun := func(loss robust.Robustifier) ([]float64, uint64) {
		u := fpu.New(fpu.WithFaultRate(0.05, 77))
		res, err := IRLS(u, a, b, loss, x0, IRLSOptions{Outer: 1, CG: CGOptions{Iters: 10, RestartEvery: 4}})
		if err != nil {
			t.Fatal(err)
		}
		return res.X, u.FLOPs()
	}

	wantX, wantFlops := cgRun()
	quad, err := robust.New(robust.Quadratic, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, loss := range map[string]robust.Robustifier{"nil": nil, "quadratic": quad} {
		gotX, gotFlops := irlsRun(loss)
		if gotFlops != wantFlops {
			t.Errorf("%s: FLOPs %d, want %d", name, gotFlops, wantFlops)
		}
		for i := range wantX {
			if gotX[i] != wantX[i] {
				t.Fatalf("%s: x[%d] = %v, want %v", name, i, gotX[i], wantX[i])
			}
		}
	}
}

func TestIRLSHuberRejectsOutliers(t *testing.T) {
	// Plant gross corruption in a few observations: quadratic CG is dragged
	// off, Huber IRLS shrugs it off.
	rng := rand.New(rand.NewSource(52))
	a, xTrue, b := randSPDSystem(rng, 40, 5)
	bad := append([]float64(nil), b...)
	bad[3] += 1e4
	bad[17] -= 1e4
	bad[30] += 1e4

	quadRes, err := IRLS(nil, a, bad, nil, make([]float64, 5), IRLSOptions{Outer: 1, CG: CGOptions{Iters: 5}})
	if err != nil {
		t.Fatal(err)
	}
	huber, err := robust.New(robust.Huber, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	hubRes, err := IRLS(nil, a, bad, huber, make([]float64, 5), IRLSOptions{Outer: 8, CG: CGOptions{Iters: 5}})
	if err != nil {
		t.Fatal(err)
	}
	quadErr := linalg.RelErr(quadRes.X, xTrue)
	hubErr := linalg.RelErr(hubRes.X, xTrue)
	if !(hubErr < quadErr/10) {
		t.Errorf("huber IRLS rel err %v, quadratic %v: want ≥10x improvement", hubErr, quadErr)
	}
	if hubErr > 0.05 {
		t.Errorf("huber IRLS rel err %v, want near-recovery despite outliers", hubErr)
	}
}

func TestIRLSDeterministicUnderFaults(t *testing.T) {
	// Same seed, same bits — including the reweighting passes.
	rng := rand.New(rand.NewSource(53))
	a, _, b := randSPDSystem(rng, 25, 4)
	loss, err := robust.New(robust.GemanMcClure, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []float64 {
		u := fpu.New(fpu.WithFaultRate(0.1, 5))
		res, err := IRLS(u, a, b, loss, make([]float64, 4), IRLSOptions{Outer: 3, CG: CGOptions{Iters: 6, RestartEvery: 3}})
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	x1, x2 := run(), run()
	for i := range x1 {
		if x1[i] != x2[i] && !(math.IsNaN(x1[i]) && math.IsNaN(x2[i])) {
			t.Fatalf("x[%d] diverged across identical runs: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestIRLSValidation(t *testing.T) {
	a := linalg.DenseOf([][]float64{{1, 0}, {0, 1}})
	b := []float64{1, 2}
	if _, err := IRLS(nil, a, b, nil, []float64{0, 0}, IRLSOptions{Outer: 0, CG: CGOptions{Iters: 2}}); err == nil {
		t.Error("zero outer rounds accepted")
	}
	if _, err := IRLS(nil, a, []float64{1}, nil, []float64{0, 0}, IRLSOptions{Outer: 1, CG: CGOptions{Iters: 2}}); err == nil {
		t.Error("rhs shape mismatch accepted")
	}
	if _, err := IRLS(nil, a, b, nil, []float64{0}, IRLSOptions{Outer: 1, CG: CGOptions{Iters: 2}}); err == nil {
		t.Error("x0 shape mismatch accepted")
	}
	x0 := []float64{0, 0}
	if _, err := IRLS(nil, a, b, nil, x0, IRLSOptions{Outer: 1, CG: CGOptions{Iters: 2}}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 0 || x0[1] != 0 {
		t.Error("IRLS mutated x0")
	}
}

func TestWeightedNormalEquationsMul(t *testing.T) {
	a := linalg.DenseOf([][]float64{{1, 2}, {3, 4}, {5, 6}})
	w := []float64{1, 0.5, 0}
	mul := WeightedNormalEquationsMul(nil, a, w)
	x := []float64{1, -1}
	got := make([]float64, 2)
	mul(x, got)
	// Reference: Aᵀ diag(w) A x computed directly.
	ax := make([]float64, 3)
	a.MulVec(nil, x, ax)
	for i := range ax {
		ax[i] *= w[i]
	}
	want := make([]float64, 2)
	a.TMulVec(nil, ax, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("WeightedNormalEquationsMul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
