package solver

// Scalar-vs-batched solver benchmark and equivalence check. scalarCG below
// reproduces CG with the pre-kernel per-operation loops (one fpu.Unit
// method call per FLOP), so the benchmark pair measures exactly what the
// batched kernel layer buys on a Dot/Gemv-dominated workload, and the
// equivalence test pins the two paths to bit-identical iterates under the
// same injector seed.

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

func scalarDot(u *fpu.Unit, a, b []float64) float64 {
	var s float64
	for i := range a {
		s = u.Add(s, u.Mul(a[i], b[i]))
	}
	return s
}

func scalarAxpy(u *fpu.Unit, alpha float64, x, y []float64) {
	for i := range x {
		y[i] = u.Add(y[i], u.Mul(alpha, x[i]))
	}
}

func scalarSub(u *fpu.Unit, a, b, dst []float64) {
	for i := range a {
		dst[i] = u.Sub(a[i], b[i])
	}
}

func scalarMulVec(u *fpu.Unit, m *linalg.Dense, x, dst []float64) {
	for i := 0; i < m.Rows; i++ {
		dst[i] = scalarDot(u, m.Row(i), x)
	}
}

func scalarTMulVec(u *fpu.Unit, m *linalg.Dense, x, dst []float64) {
	linalg.Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j := range row {
			dst[j] = u.Add(dst[j], u.Mul(xi, row[j]))
		}
	}
}

func scalarNormalEquationsMul(u *fpu.Unit, a *linalg.Dense) MulFunc {
	tmp := make([]float64, a.Rows)
	return func(x, dst []float64) {
		scalarMulVec(u, a, x, tmp)
		scalarTMulVec(u, a, tmp, dst)
	}
}

// scalarCG is CG with every vector kernel expanded into per-operation
// scalar loops, mirroring cg.go statement for statement.
func scalarCG(u *fpu.Unit, mul MulFunc, b, x0 []float64, opts CGOptions) Result {
	n := len(b)
	x := make([]float64, n)
	copy(x, x0)
	r := make([]float64, n)
	p := make([]float64, n)
	w := make([]float64, n)

	res := Result{Value: math.NaN()}
	restart := func() bool {
		mul(x, w)
		scalarSub(u, b, w, r)
		copy(p, r)
		return linalg.AllFinite(r)
	}
	if !restart() {
		if !restart() {
			res.X = x
			res.Skipped++
			return res
		}
	}
	rs := scalarDot(u, r, r)

	for k := 1; k <= opts.Iters; k++ {
		if opts.RestartEvery > 0 && k > 1 && (k-1)%opts.RestartEvery == 0 {
			if !restart() {
				res.Skipped++
				continue
			}
			rs = scalarDot(u, r, r)
		}
		mul(p, w)
		den := scalarDot(u, p, w)
		res.Iters++
		if !(den > 0) || !linalg.AllFinite(w) || math.IsNaN(rs) || math.IsInf(rs, 0) {
			res.Skipped++
			if !restart() {
				continue
			}
			rs = scalarDot(u, r, r)
			continue
		}
		alpha := rs / den
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			res.Skipped++
			continue
		}
		for i := range x {
			x[i] += alpha * p[i]
		}
		scalarAxpy(u, -alpha, w, r)
		rsNew := scalarDot(u, r, r)
		if !linalg.AllFinite(r) || math.IsNaN(rsNew) || math.IsInf(rsNew, 0) || rsNew < 0 {
			res.Skipped++
			if restart() {
				rs = scalarDot(u, r, r)
			}
			continue
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = u.Add(r[i], u.Mul(beta, p[i]))
		}
		if !linalg.AllFinite(p) {
			res.Skipped++
			if !restart() {
				continue
			}
			rsNew = scalarDot(u, r, r)
		}
		rs = rsNew
	}
	res.X = x
	return res
}

// TestCGBatchedMatchesScalarReference: under the same injector seed, the
// batched-kernel CG must produce bit-identical iterates, skip counts, and
// FPU accounting to the per-operation scalar reference.
func TestCGBatchedMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a, _, b := randSPDSystem(rng, 60, 12)
	atb := make([]float64, 12)
	a.TMulVec(nil, b, atb)
	for _, rate := range []float64{0, 0.001, 0.05, 0.3} {
		for seed := uint64(1); seed <= 5; seed++ {
			su := fpu.New(fpu.WithFaultRate(rate, seed))
			bu := fpu.New(fpu.WithFaultRate(rate, seed))
			opts := CGOptions{Iters: 15, RestartEvery: 5}
			want := scalarCG(su, scalarNormalEquationsMul(su, a), atb, make([]float64, 12), opts)
			got, err := CG(bu, NormalEquationsMul(bu, a), atb, make([]float64, 12), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.X {
				if math.Float64bits(want.X[i]) != math.Float64bits(got.X[i]) {
					t.Fatalf("rate %v seed %d: x[%d] scalar %g, batched %g",
						rate, seed, i, want.X[i], got.X[i])
				}
			}
			if want.Skipped != got.Skipped || want.Iters != got.Iters {
				t.Fatalf("rate %v seed %d: control diverged: scalar %+v, batched %+v",
					rate, seed, want, got)
			}
			if su.FLOPs() != bu.FLOPs() || su.Faults() != bu.Faults() {
				t.Fatalf("rate %v seed %d: accounting diverged: scalar %d/%d, batched %d/%d",
					rate, seed, su.FLOPs(), su.Faults(), bu.FLOPs(), bu.Faults())
			}
		}
	}
}

// BenchmarkCGLeastSquares compares the pre-kernel scalar path against the
// batched kernel path on the CG least-squares workload of Fig 6.6/6.7
// (normal-equations operator, faulty unit). The ≥2× speedup claim for the
// batched layer is measured here.
func BenchmarkCGLeastSquares(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a, _, rhs := randSPDSystem(rng, 200, 40)
	atb := make([]float64, 40)
	a.TMulVec(nil, rhs, atb)
	opts := CGOptions{Iters: 20, RestartEvery: 5}

	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := fpu.New(fpu.WithFaultRate(0.001, uint64(i+1)))
			scalarCG(u, scalarNormalEquationsMul(u, a), atb, make([]float64, 40), opts)
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := fpu.New(fpu.WithFaultRate(0.001, uint64(i+1)))
			if _, err := CG(u, NormalEquationsMul(u, a), atb, make([]float64, 40), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
