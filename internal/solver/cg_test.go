package solver

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

func randSPDSystem(rng *rand.Rand, m, n int) (*linalg.Dense, []float64, []float64) {
	a := linalg.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(nil, xTrue, b)
	return a, xTrue, b
}

// TestCGExactInNIterations: on a reliable unit, CG solves an SPD n×n system
// in at most n iterations (§3.3).
func TestCGExactInNIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		a, xTrue, b := randSPDSystem(rng, n+5, n)
		mul := NormalEquationsMul(nil, a)
		atb := make([]float64, n)
		a.TMulVec(nil, b, atb)
		res, err := CG(nil, mul, atb, make([]float64, n), CGOptions{Iters: n})
		if err != nil {
			t.Fatal(err)
		}
		if re := linalg.RelErr(res.X, xTrue); re > 1e-6 {
			t.Fatalf("trial %d: CG after n=%d iters rel err %v", trial, n, re)
		}
	}
}

func TestCGOptionValidation(t *testing.T) {
	if _, err := CG(nil, nil, []float64{1}, []float64{0}, CGOptions{Iters: 1}); err == nil {
		t.Error("nil MulFunc accepted")
	}
	mul := func(x, dst []float64) { copy(dst, x) }
	if _, err := CG(nil, mul, []float64{1}, []float64{0}, CGOptions{Iters: 0}); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := CG(nil, mul, []float64{1}, []float64{0, 0}, CGOptions{Iters: 1}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestCGDoesNotModifyInputs(t *testing.T) {
	mul := func(x, dst []float64) { copy(dst, x) } // identity system
	b := []float64{1, 2}
	x0 := []float64{0, 0}
	res, err := CG(nil, mul, b, x0, CGOptions{Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if x0[0] != 0 || x0[1] != 0 {
		t.Error("CG mutated x0")
	}
	if re := linalg.RelErr(res.X, b); re > 1e-12 {
		t.Errorf("identity solve rel err %v", re)
	}
}

// TestCGTolerantWithRestarts: with faults in the matvec, restarted CG keeps
// the solution finite and close; without enough iterations it degrades
// gracefully rather than diverging.
func TestCGTolerantWithRestarts(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a, xTrue, b := randSPDSystem(rng, 40, 8)
	ok := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		inj := fpu.NewInjector(1e-3, uint64(trial+1), fpu.WithDistribution(fpu.LowOrderDistribution()))
		u := fpu.New(fpu.WithInjector(inj))
		mul := NormalEquationsMul(u, a)
		atb := make([]float64, 8)
		a.TMulVec(u, b, atb)
		res, err := CG(u, mul, atb, make([]float64, 8), CGOptions{Iters: 24, RestartEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.AllFinite(res.X) {
			t.Fatal("CG produced non-finite solution under faults")
		}
		if linalg.RelErr(res.X, xTrue) < 1e-2 {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("restarted CG under benign faults succeeded only %d/%d times", ok, trials)
	}
}

// TestCGSurvivesViolentFaults: the emulated MSB-heavy fault distribution at
// a high rate must not crash or yield NaN thanks to the reliable guards.
func TestCGSurvivesViolentFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a, _, b := randSPDSystem(rng, 30, 6)
	for trial := 0; trial < 10; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.2, uint64(trial+100)))
		mul := NormalEquationsMul(u, a)
		atb := make([]float64, 6)
		a.TMulVec(u, b, atb)
		res, err := CG(u, mul, atb, make([]float64, 6), CGOptions{Iters: 12, RestartEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.AllFinite(res.X) {
			t.Fatal("CG emitted non-finite values under violent faults")
		}
	}
}

func TestNormalEquationsMul(t *testing.T) {
	a := linalg.DenseOf([][]float64{{1, 2}, {3, 4}, {5, 6}})
	mul := NormalEquationsMul(nil, a)
	x := []float64{1, 1}
	got := make([]float64, 2)
	mul(x, got)
	want := make([]float64, 2)
	a.Gram(nil).MulVec(nil, x, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("NormalEquationsMul[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
