package solver

import (
	"math"
	"testing"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

// quadratic is a strongly convex test problem f(x) = ½‖x − target‖² with
// gradients evaluated on a configurable unit.
type quadratic struct {
	u      *fpu.Unit
	target []float64
	mu     float64
}

func (q *quadratic) Dim() int { return len(q.target) }

func (q *quadratic) Grad(x, grad []float64) {
	for i := range x {
		grad[i] = q.u.Sub(x[i], q.target[i])
	}
}

func (q *quadratic) Value(x []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - q.target[i]
		s += 0.5 * d * d
	}
	return s
}

func (q *quadratic) AnnealParam() float64     { return q.mu }
func (q *quadratic) SetAnnealParam(m float64) { q.mu = m }

func TestScheduleShapes(t *testing.T) {
	lin, sq, c := Linear(1), Sqrt(1), Constant(0.3)
	if lin(1) != 1 || lin(4) != 0.25 {
		t.Error("Linear schedule wrong")
	}
	if sq(1) != 1 || math.Abs(sq(4)-0.5) > 1e-12 {
		t.Error("Sqrt schedule wrong")
	}
	if c(1) != 0.3 || c(1000) != 0.3 {
		t.Error("Constant schedule wrong")
	}
	// SQS decays slower than LS.
	for _, it := range []int{2, 10, 100} {
		if !(sq(it) > lin(it)) {
			t.Errorf("Sqrt(%d)=%v should exceed Linear(%d)=%v", it, sq(it), it, lin(it))
		}
	}
}

func TestSGDConvergesReliable(t *testing.T) {
	q := &quadratic{u: nil, target: []float64{1, -2, 3}}
	res, err := SGD(q, []float64{0, 0, 0}, Options{
		Iters:    200,
		Schedule: Constant(0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if re := linalg.RelErr(res.X, q.target); re > 1e-6 {
		t.Errorf("SGD missed the optimum: rel err %v", re)
	}
	if res.Iters != 200 {
		t.Errorf("Iters = %d", res.Iters)
	}
}

func TestSGDConvergesUnderFaults(t *testing.T) {
	// Low-order faults are near-unbiased noise: Theorem 1 says SGD still
	// converges. Use the benign distribution to test the theorem's regime.
	inj := fpu.NewInjector(0.2, 11, fpu.WithDistribution(fpu.LowOrderDistribution()))
	u := fpu.New(fpu.WithInjector(inj))
	q := &quadratic{u: u, target: []float64{2, -1}}
	res, err := SGD(q, []float64{0, 0}, Options{Iters: 3000, Schedule: Linear(1)})
	if err != nil {
		t.Fatal(err)
	}
	if re := linalg.RelErr(res.X, q.target); re > 1e-2 {
		t.Errorf("SGD under benign faults: rel err %v", re)
	}
}

func TestSGDGuardSkipsNonFinite(t *testing.T) {
	// Rate-1 faults on the violent emulated distribution will produce huge
	// and occasionally non-finite gradients; the guard must keep x finite.
	u := fpu.New(fpu.WithFaultRate(1, 13))
	q := &quadratic{u: u, target: []float64{1}}
	res, err := SGD(q, []float64{0}, Options{Iters: 500, Schedule: Linear(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.AllFinite(res.X) {
		t.Fatal("guarded SGD produced a non-finite iterate")
	}
}

func TestSGDOptionValidation(t *testing.T) {
	q := &quadratic{target: []float64{0}}
	cases := map[string]Options{
		"no schedule":     {Iters: 1},
		"neg iters":       {Iters: -1, Schedule: Constant(1)},
		"bad momentum":    {Iters: 1, Schedule: Constant(1), Momentum: 2},
		"anneal factor 1": {Iters: 1, Schedule: Constant(1), Anneal: &Anneal{Factor: 1, Every: 1}},
		"anneal factor 0": {Iters: 1, Schedule: Constant(1), Anneal: &Anneal{Factor: 0, Every: 1}},
		"anneal no every": {Iters: 1, Schedule: Constant(1), Anneal: &Anneal{Factor: 2}},
		"bad aggressive": {Iters: 1, Schedule: Constant(1),
			Aggressive: &Aggressive{SuccessFactor: 0.5, FailFactor: 0.5}},
	}
	for name, o := range cases {
		if _, err := SGD(q, []float64{0}, o); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := SGD(q, []float64{0, 0}, Options{Iters: 1, Schedule: Constant(1)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSGDDoesNotModifyX0(t *testing.T) {
	q := &quadratic{target: []float64{5}}
	x0 := []float64{0}
	if _, err := SGD(q, x0, Options{Iters: 50, Schedule: Constant(0.5)}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 0 {
		t.Error("SGD mutated the initial iterate")
	}
}

func TestMomentumSmoothsDirection(t *testing.T) {
	dir := []float64{0, 0}
	mixDirection(dir, []float64{2, 4}, 0.5)
	if dir[0] != 1 || dir[1] != 2 {
		t.Errorf("first mix = %v", dir)
	}
	mixDirection(dir, []float64{0, 0}, 0.5)
	if dir[0] != 0.5 || dir[1] != 1 {
		t.Errorf("second mix = %v", dir)
	}
	// Momentum 0 and 1 both mean "just the gradient".
	mixDirection(dir, []float64{7, 7}, 0)
	if dir[0] != 7 {
		t.Errorf("momentum 0 mix = %v", dir)
	}
	mixDirection(dir, []float64{3, 3}, 1)
	if dir[0] != 3 {
		t.Errorf("momentum 1 mix = %v", dir)
	}
}

func TestAnnealRaisesPenalty(t *testing.T) {
	q := &quadratic{target: []float64{0}, mu: 1}
	_, err := SGD(q, []float64{1}, Options{
		Iters:    100,
		Schedule: Constant(0.1),
		Anneal:   &Anneal{Factor: 2, Every: 10, Max: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.mu != 16 {
		t.Errorf("mu = %v, want annealed to cap 16", q.mu)
	}
}

func TestAnnealShrinksLossShapeToFloor(t *testing.T) {
	// Graduated non-convexity on a real non-quadratic loss: annealing with
	// Factor < 1 must shrink the Huber δ each firing and then pin it at Max,
	// which acts as a floor in the shrinking direction.
	loss, err := robust.New(robust.Huber, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := linalg.NewDense(1, 1)
	a.Set(0, 0, 1)
	p, err := core.NewRobustLeastSquares(nil, a, []float64{3}, loss)
	if err != nil {
		t.Fatal(err)
	}
	_, err = SGD(p, []float64{0}, Options{
		Iters:    50,
		Schedule: Constant(0.1),
		Anneal:   &Anneal{Factor: 0.5, Every: 10, Max: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5 firings: 2 → 1 → 0.5 → 0.25 → clamped at 0.25.
	if loss.Shape() != 0.25 {
		t.Errorf("shape = %v, want annealed to floor 0.25", loss.Shape())
	}
}

func TestAnnealSkipsZeroParam(t *testing.T) {
	// A zero AnnealParam means "nothing to anneal": the legacy quadratic
	// least-squares path must come through an anneal schedule untouched —
	// in particular the shrinking schedule must not multiply 0 forever.
	a := linalg.NewDense(1, 1)
	a.Set(0, 0, 1)
	p, err := core.NewLeastSquares(nil, a, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = SGD(p, []float64{0}, Options{
		Iters:    50,
		Schedule: Constant(0.1),
		Anneal:   &Anneal{Factor: 0.5, Every: 10, Max: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AnnealParam(); got != 0 {
		t.Errorf("AnnealParam = %v, want untouched 0", got)
	}
}

func TestAggressiveConverges(t *testing.T) {
	q := &quadratic{target: []float64{3, 3}}
	res, err := SGD(q, []float64{0, 0}, Options{
		Iters:      10,
		Schedule:   Constant(0.1),
		Aggressive: &Aggressive{SuccessFactor: 1.3, FailFactor: 0.5, Tol: 1e-12, MaxIters: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if re := linalg.RelErr(res.X, q.target); re > 1e-4 {
		t.Errorf("aggressive phase missed optimum: rel err %v", re)
	}
	if math.IsNaN(res.Value) {
		t.Error("aggressive phase must record a final value")
	}
	if !res.Converged {
		t.Error("aggressive phase should report convergence at tol 1e-12")
	}
}

func TestCallbackObservesIterates(t *testing.T) {
	q := &quadratic{target: []float64{1}}
	var calls int
	_, err := SGD(q, []float64{0}, Options{
		Iters:    25,
		Schedule: Constant(0.5),
		Callback: func(iter int, x []float64) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Errorf("callback calls = %d, want 25", calls)
	}
}

// TestSGDOnPenaltyLP wires the solver to the core penalty machinery: a tiny
// LP min −x0−x1 s.t. 0 ≤ x ≤ 1 whose solution is the corner (1, 1).
func TestSGDOnPenaltyLP(t *testing.T) {
	n := 2
	ineq := linalg.NewDense(2*n, n)
	b := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ineq.Set(i, i, 1)
		b[i] = 1
		ineq.Set(n+i, i, -1)
		b[n+i] = 0
	}
	lp := core.LinearProgram{C: []float64{-1, -1}, Ineq: ineq, BIneq: b}
	p, err := core.NewPenaltyLP(nil, lp, core.PenaltyQuad, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SGD(p, []float64{0.5, 0.5}, Options{Iters: 4000, Schedule: Sqrt(0.05)})
	if err != nil {
		t.Fatal(err)
	}
	if re := linalg.RelErr(res.X, []float64{1, 1}); re > 0.05 {
		t.Errorf("LP corner missed: x = %v (rel err %v)", res.X, re)
	}
}

func TestGuardThresholdSkipsHugeGradients(t *testing.T) {
	// A problem whose gradient is astronomically large but finite on every
	// odd call: without the magnitude guard the iterate is destroyed, with
	// it the solve converges on the clean calls.
	q := &spiky{target: 2}
	res, err := SGD(q, []float64{0}, Options{
		Iters:          400,
		Schedule:       Constant(0.2),
		GuardThreshold: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Error("guard never fired")
	}
	if e := res.X[0] - 2; e > 0.01 || e < -0.01 {
		t.Errorf("x = %v, want 2", res.X[0])
	}
	// Without the threshold, the huge steps dominate.
	res2, err := SGD(q, []float64{0}, Options{Iters: 400, Schedule: Constant(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	if e := res2.X[0] - 2; e < 1e3 && e > -1e3 {
		t.Errorf("unguarded solve should be destroyed, got x = %v", res2.X[0])
	}
}

// spiky alternates between a clean gradient toward target and a huge
// finite spike, emulating exponent-bit corruption.
type spiky struct {
	target float64
	calls  int
}

func (s *spiky) Dim() int { return 1 }

func (s *spiky) Grad(x, grad []float64) {
	s.calls++
	if s.calls%2 == 1 {
		grad[0] = x[0] - s.target
		return
	}
	grad[0] = 1e150
}

func (s *spiky) Value(x []float64) float64 {
	d := x[0] - s.target
	return 0.5 * d * d
}

func TestTailAverageSmoothsIterate(t *testing.T) {
	// On a noisy quadratic, the tail average must not be worse than the
	// raw final iterate on average (run a few seeds).
	inj := fpu.NewInjector(0.3, 5, fpu.WithDistribution(fpu.LowOrderDistribution()))
	u := fpu.New(fpu.WithInjector(inj))
	q := &quadratic{u: u, target: []float64{1, 2, 3}}
	resAvg, err := SGD(q, []float64{0, 0, 0}, Options{
		Iters: 2000, Schedule: Sqrt(0.5), TailAverage: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if re := linalg.RelErr(resAvg.X, q.target); re > 0.05 {
		t.Errorf("tail-averaged solve rel err %v", re)
	}
}
