// Package solver provides the stochastic optimization engines of the paper:
// stochastic (sub)gradient descent with the step schedules, momentum,
// aggressive stepping, and penalty annealing of Chapters 3 and 6.2, and the
// conjugate gradient method of §3.3/§6.3.
//
// The engines draw a hard line between the data path and the control path,
// mirroring the paper's reliability assumption: gradient evaluations (the
// bulk of the FLOPs) run on the problem's stochastic FPU, while step-size
// control, iterate updates, convergence checks, and annealing run reliably.
package solver

import "math"

// Schedule maps the 1-based iteration number to a step size.
type Schedule func(iter int) float64

// Linear returns the 1/t schedule of Theorem 1's strongly convex case
// ("LS" in the paper's figures): step(t) = eta0/t.
func Linear(eta0 float64) Schedule {
	//lint:fpu-exempt step-size schedules are reliable control arithmetic (see the package comment's data/control split)
	return func(iter int) float64 { return eta0 / float64(iter) }
}

// Sqrt returns the 1/√t schedule of Theorem 1's convex case ("SQS"):
// step(t) = eta0/√t. It decays slower than Linear, keeping later
// iterations making progress at the price of a larger noise floor.
func Sqrt(eta0 float64) Schedule {
	//lint:fpu-exempt step-size schedules are reliable control arithmetic (see the package comment's data/control split)
	return func(iter int) float64 { return eta0 / math.Sqrt(float64(iter)) }
}

// Constant returns a fixed step size.
func Constant(eta0 float64) Schedule {
	return func(int) float64 { return eta0 }
}
