package faultmodel

import (
	"math"

	"robustify/internal/fpu"
)

// memoryModel delivers memory-resident data faults: the FPU computes
// exactly (Fire never reports a corruption, SafeOps is unbounded), but
// bits flip in stored vectors between solver iterations. Solvers expose
// their persistent state — iterates, residuals, search directions — via
// fpu.Unit.CorruptSlice at iteration boundaries, and the model walks each
// exposed slice word by word against an LFSR-spaced countdown, flipping
// one uniformly chosen bit of each struck word. The sweep's rate is
// reinterpreted as flips per word scanned, so a trial's fault pressure
// scales with how much live state the solver carries, not with how many
// FLOPs it issues.
//
// The countdown persists across CorruptSlice calls, making fault
// placement deterministic per seed regardless of how the solver chops its
// state into slices.
type memoryModel struct {
	rate      float64
	dist      fpu.BitDistribution
	rng       *fpu.LFSR
	countdown uint64
	injected  uint64
}

// newMemory builds the model for one trial; rate is flips per word
// scanned, clamped to [0, 1].
func newMemory(rate float64, seed uint64) fpu.FaultModel {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	m := &memoryModel{
		rate: rate,
		// Stored words have no timing-critical carry chains, so every bit
		// is equally exposed — unlike the FPU models' emulated histogram.
		dist: fpu.UniformDistribution(),
		rng:  fpu.NewLFSR(seed),
	}
	m.countdown = math.MaxUint64
	if rate > 0 {
		//lint:fpu-exempt fault-model construction: the mean-gap reciprocal runs once per trial, outside the simulated datapath
		m.countdown = m.rng.UniformGap(1 / rate)
	}
	return m
}

// Name identifies the memory model.
func (m *memoryModel) Name() string { return Memory }

// Rate returns the configured flips per word scanned.
func (m *memoryModel) Rate() float64 { return m.rate }

// Injected returns how many words the model has struck.
func (m *memoryModel) Injected() uint64 { return m.injected }

// Fire never corrupts: FLOPs are exact under this model.
func (m *memoryModel) Fire() bool { return false }

// Corrupt is unreachable (Fire never reports true) but kept total.
func (m *memoryModel) Corrupt(v float64) float64 { return v }

// SafeOps reports every upcoming FPU operation as fault-free.
func (m *memoryModel) SafeOps() uint64 { return math.MaxUint64 }

// ConsumeSafe is a no-op: the FPU schedule never advances.
func (m *memoryModel) ConsumeSafe(n uint64) {}

// CorruptSlice scans the slice against the persistent word countdown,
// flipping one uniformly drawn bit of every struck word.
func (m *memoryModel) CorruptSlice(xs []float64) {
	if m.rate <= 0 {
		return
	}
	rem := uint64(len(xs))
	for m.countdown <= rem {
		rem -= m.countdown
		idx := uint64(len(xs)) - rem - 1
		bit := m.dist.Sample(m.rng.Float64())
		xs[idx] = math.Float64frombits(math.Float64bits(xs[idx]) ^ (1 << uint(bit)))
		m.injected++
		m.countdown = m.rng.UniformGap(1 / m.rate) //lint:fpu-exempt fault-model mechanism: gap draw arithmetic is scheduler state, not simulated application math
	}
	m.countdown -= rem
}
