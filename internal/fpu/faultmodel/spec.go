// Package faultmodel builds the selectable fault models of the simulated
// FPU: a JSON-serializable Spec names a model family and its parameters,
// and compiles — per trial, per seed — to an fpu.FaultModel.
//
// Four families exist:
//
//   - "default": the paper's injector — independent per-FLOP single-bit
//     flips at a uniform rate, LFSR-spaced, emulated bit distribution.
//     A nil or empty Spec selects it; its op stream is pinned bit-for-bit
//     to the pre-FaultModel-refactor behavior.
//   - "stratified": significance-stratified flips. The overall rate is the
//     sweep's rate, but the flipped bit position follows separate
//     exponent / mantissa / sign class weights, because fault significance
//     depends on data representation (Exploiting Data Representation for
//     Fault Tolerance; Elliott, Hoemmen & Mueller's position on fault
//     models).
//   - "burst": correlated faults driven by the voltage model. A low-voltage
//     window opens for ~burst_len consecutive FLOPs and corrupts each with
//     probability burst_prob (default: the voltage curve's saturated
//     MaxRate); windows close and reopen per deterministic LFSR
//     inter-arrival draws sized so the long-run fault rate still matches
//     the sweep's rate. Per-flip independence is the wrong model for
//     voltage overscaling — droop corrupts runs of consecutive ops.
//   - "memory": memory-resident data faults. FLOPs are exact; instead bits
//     flip in stored vectors between solver iterations, via the
//     fpu.MemoryFaulter hook solvers call at iteration boundaries. The
//     sweep rate is reinterpreted as flips per word scanned.
//
// Every model is deterministic per seed and countdown-aware (the batched
// kernels keep their fast path), and scalar/batched execution is
// bit-identical under all of them.
package faultmodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"

	"robustify/internal/fpu"
)

// Model family names, in advertisement order.
//
//lint:enum fault-model-family every dispatch over model families must cover all four registered names
const (
	Default    = "default"
	Stratified = "stratified"
	Burst      = "burst"
	Memory     = "memory"
)

// Names lists the selectable model families in advertisement order.
func Names() []string { return []string{Default, Stratified, Burst, Memory} }

// Spec selects and parameterizes a fault model. Specs round-trip through
// JSON inside campaign specs, so they are part of a campaign's resume
// identity: two specs marshaling differently compile different fault
// streams. The zero Spec (and a nil *Spec) selects the default model.
type Spec struct {
	// Name picks the model family; "" means "default".
	Name string `json:"name"`

	// ExpWeight, MantWeight, and SignWeight set the stratified model's
	// per-class flip weights (share of faults striking the exponent,
	// mantissa, and sign fields; each class's weight is spread uniformly
	// over its bits). Nil means 1. At least one must end up positive.
	ExpWeight  *float64 `json:"exp_weight,omitempty"`
	MantWeight *float64 `json:"mant_weight,omitempty"`
	SignWeight *float64 `json:"sign_weight,omitempty"`

	// BurstLen is the burst model's mean low-voltage window length in
	// FLOPs (0 = 64). Window lengths are drawn uniform on
	// {1, …, 2·BurstLen−1} per the LFSR, like fault gaps.
	BurstLen float64 `json:"burst_len,omitempty"`
	// BurstProb is the per-op corruption probability inside an open
	// window (0 = the voltage model's saturated MaxRate, 0.5).
	BurstProb float64 `json:"burst_prob,omitempty"`
}

// Parse reads a Spec from a CLI-ish string: empty means default, a bare
// model name selects that family with default parameters, and a JSON
// object ({"name":"burst","burst_len":128}) sets parameters too. Unknown
// JSON fields are rejected so typos surface instead of silently running
// defaults.
func Parse(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == Default {
		return nil, nil
	}
	var spec Spec
	if strings.HasPrefix(s, "{") {
		dec := json.NewDecoder(bytes.NewReader([]byte(s)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("faultmodel: bad spec %q: %w", s, err)
		}
	} else {
		spec.Name = s
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the spec without building a model. Parameters belonging
// to a different family than Name are rejected: a spec carrying stray
// knobs would silently ignore them, and specs are resume identities.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	name := s.Name
	if name == "" {
		name = Default
	}
	known := false
	for _, n := range Names() {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("faultmodel: unknown fault model %q (available: %s)", s.Name, strings.Join(Names(), ", "))
	}
	if name != Stratified && (s.ExpWeight != nil || s.MantWeight != nil || s.SignWeight != nil) {
		return fmt.Errorf("faultmodel: exp/mant/sign weights apply only to the stratified model, not %q", name)
	}
	if name != Burst && (s.BurstLen != 0 || s.BurstProb != 0) {
		return fmt.Errorf("faultmodel: burst_len/burst_prob apply only to the burst model, not %q", name)
	}
	if name == Stratified {
		total := 0.0
		for _, w := range []*float64{s.ExpWeight, s.MantWeight, s.SignWeight} {
			v := weight(w)
			if v < 0 || v != v {
				return fmt.Errorf("faultmodel: stratified class weights must be finite and non-negative, got %v", v)
			}
			//lint:fpu-exempt spec validation runs outside the simulated machine
			total += v
		}
		if total <= 0 {
			return fmt.Errorf("faultmodel: stratified model needs at least one positive class weight")
		}
	}
	if name == Burst {
		if s.BurstLen < 0 || s.BurstLen != s.BurstLen {
			return fmt.Errorf("faultmodel: burst_len must be non-negative, got %v", s.BurstLen)
		}
		if s.BurstProb < 0 || s.BurstProb > 1 || s.BurstProb != s.BurstProb {
			return fmt.Errorf("faultmodel: burst_prob must be in [0, 1], got %v", s.BurstProb)
		}
	}
	return nil
}

// ModelName returns the resolved family name ("" resolves to "default");
// a nil spec is the default model.
func (s *Spec) ModelName() string {
	if s == nil || s.Name == "" {
		return Default
	}
	return s.Name
}

// New builds the model for one trial at the given rate and seed. The
// default family returns the plain fpu.Injector, bit-identical to
// fpu.WithFaultRate — selecting "default" explicitly and omitting the
// spec produce the same op stream.
func (s *Spec) New(rate float64, seed uint64) (fpu.FaultModel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.ModelName() {
	case Default:
		return fpu.NewInjector(rate, seed), nil
	case Stratified:
		return newStratified(rate, seed, weight(s.ExpWeight), weight(s.MantWeight), weight(s.SignWeight)), nil
	case Burst:
		return newBurst(rate, seed, s.BurstLen, s.BurstProb), nil
	case Memory:
		return newMemory(rate, seed), nil
	}
	panic("faultmodel: unreachable after Validate")
}

// unitObserver, when set, manufactures an fpu.Observer for every faulty
// unit built through Spec.Unit — the observability layer's single hook
// into trial execution. The factory must be cheap and concurrency-safe:
// Unit is called from every trial worker goroutine.
var unitObserver atomic.Pointer[func(rate float64, seed uint64) fpu.Observer]

// SetUnitObserver installs (or, with nil, removes) a process-wide observer
// factory consulted by Spec.Unit. Observers are passive taps on the fault
// injection path (see fpu.Observer) and never alter arithmetic, so
// installing one cannot perturb any per-seed pin. It returns the previous
// factory so tests can restore it.
func SetUnitObserver(factory func(rate float64, seed uint64) fpu.Observer) func(rate float64, seed uint64) fpu.Observer {
	var prev *func(rate float64, seed uint64) fpu.Observer
	if factory == nil {
		prev = unitObserver.Swap(nil)
	} else {
		prev = unitObserver.Swap(&factory)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// observe attaches the process-wide observer, if any, to a freshly built
// faulty unit. Reliable units are left untouched: they fire no faults, so
// an observer would only cost an interface check per kernel call.
func observe(u *fpu.Unit, rate float64, seed uint64) *fpu.Unit {
	if u.Reliable() {
		return u
	}
	if f := unitObserver.Load(); f != nil {
		if o := (*f)(rate, seed); o != nil {
			u.SetObserver(o)
		}
	}
	return u
}

// Unit builds a one-trial fpu.Unit running this spec's model, the shared
// construction path of workloads and figures. A nil spec (or the default
// family) takes the fpu.WithFaultRate path, pinned bit-identical to the
// pre-refactor units.
func (s *Spec) Unit(rate float64, seed uint64) *fpu.Unit {
	if s == nil || s.ModelName() == Default {
		return observe(fpu.New(fpu.WithFaultRate(rate, seed)), rate, seed)
	}
	m, err := s.New(rate, seed)
	if err != nil {
		// Specs are validated when campaigns and flags are parsed; an
		// invalid spec reaching trial execution is a programming error.
		panic(fmt.Sprintf("faultmodel: building validated spec: %v", err))
	}
	if m.Rate() <= 0 {
		// Rate zero means reliable under every family; drop the model so
		// Unit.Reliable holds, matching WithFaultRate's contract.
		return fpu.New()
	}
	return observe(fpu.New(fpu.WithModel(m)), rate, seed)
}

// weight resolves an optional class weight (nil = 1).
func weight(w *float64) float64 {
	if w == nil {
		return 1
	}
	return *w
}
