package faultmodel

import (
	"math"
	"testing"

	"robustify/internal/fpu"
)

func fp(v float64) *float64 { return &v }

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string // "" means nil spec (default model)
	}{
		{"", ""},
		{"default", ""},
		{"  burst  ", Burst},
		{"stratified", Stratified},
		{"memory", Memory},
		{`{"name":"burst","burst_len":128,"burst_prob":0.25}`, Burst},
		{`{"name":"stratified","exp_weight":3,"mant_weight":0.5,"sign_weight":0}`, Stratified},
	} {
		spec, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if tc.want == "" {
			if spec != nil {
				t.Errorf("Parse(%q) = %+v, want nil (default)", tc.in, spec)
			}
			continue
		}
		if spec == nil || spec.Name != tc.want {
			t.Errorf("Parse(%q) = %+v, want name %q", tc.in, spec, tc.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"cosmic",                                 // unknown family
		`{"name":"burst","typo_len":128}`,        // unknown JSON field
		`{"name":"default","burst_len":128}`,     // cross-family param
		`{"name":"stratified","burst_prob":0.5}`, // cross-family param
		`{"name":"burst","burst_prob":1.5}`,      // out-of-range prob
		`{"name":"burst","burst_len":-3}`,        // negative length
		`{"name":"stratified","exp_weight":-1}`,  // negative weight
		`{"name":"memory","exp_weight":1}`,       // cross-family param
	} {
		if spec, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, spec)
		}
	}
}

func TestValidateAllZeroStratifiedWeights(t *testing.T) {
	s := &Spec{Name: Stratified, ExpWeight: fp(0), MantWeight: fp(0), SignWeight: fp(0)}
	if err := s.Validate(); err == nil {
		t.Error("all-zero stratified weights validated; a model with no flippable bits must be rejected")
	}
}

// specs returns one representative spec per model family, parameters
// included where they exist.
func specs() []*Spec {
	return []*Spec{
		nil, // default via nil
		{Name: Default},
		{Name: Stratified, ExpWeight: fp(2), SignWeight: fp(0.25)},
		{Name: Burst, BurstLen: 32, BurstProb: 0.4},
		{Name: Burst}, // defaults: len 64, prob = voltage MaxRate
		{Name: Memory},
	}
}

// stream runs a fixed mixed op stream (scalar ops, batched kernels, and a
// CorruptSlice boundary) and returns the bit pattern of every produced
// value plus the unit's counters.
func stream(u *fpu.Unit) (bits []uint64, flops, faults uint64) {
	n := 129
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 0.5*float64(i%13) - 2.25
		b[i] = 1.5*float64(i%7) + 0.125
	}
	put := func(v float64) { bits = append(bits, math.Float64bits(v)) }
	put(u.Dot(a, b))
	y := make([]float64, n)
	copy(y, b)
	u.Axpy(0.75, a, y)
	u.CorruptSlice(y)
	for _, v := range y {
		put(v)
	}
	put(u.Sum(y))
	s := 0.0
	for i := 0; i < 200; i++ {
		s = u.Add(s, u.Mul(a[i%n], b[(i*3)%n]))
		s = u.Sqrt(u.Abs(s) + 1)
	}
	put(s)
	put(u.Norm2(y))
	return bits, u.FLOPs(), u.Faults()
}

func TestRunTwiceByteIdentity(t *testing.T) {
	for _, spec := range specs() {
		name := spec.ModelName()
		b1, fl1, fa1 := stream(spec.Unit(0.05, 1234))
		b2, fl2, fa2 := stream(spec.Unit(0.05, 1234))
		if fl1 != fl2 || fa1 != fa2 {
			t.Errorf("%s: counters diverged across identical runs: flops %d/%d faults %d/%d", name, fl1, fl2, fa1, fa2)
			continue
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				t.Errorf("%s: value %d diverged across identical runs: %#x vs %#x", name, i, b1[i], b2[i])
				break
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	for _, spec := range specs()[2:] { // skip the two default-model entries
		name := spec.ModelName()
		b1, _, _ := stream(spec.Unit(0.2, 1))
		b2, _, _ := stream(spec.Unit(0.2, 2))
		same := true
		for i := range b1 {
			if b1[i] != b2[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical streams", name)
		}
	}
}

// TestScalarBatchedIdentity checks the FaultModel contract's core clause:
// a batched kernel must be bit-identical to the equivalent scalar-method
// loop under the same model and seed — same LFSR draws, same flipped
// bits, same counters — for every model family.
func TestScalarBatchedIdentity(t *testing.T) {
	n := 257
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 1.25*float64(i%17) - 3.5
		b[i] = 0.75*float64(i%23) + 0.125
	}
	for _, spec := range specs() {
		name := spec.ModelName()
		for _, seed := range []uint64{3, 77, 900001} {
			batched := spec.Unit(0.08, seed)
			scalar := spec.Unit(0.08, seed)

			gotDot := batched.Dot(a, b)
			wantDot := 0.0
			for i := 0; i < n; i++ {
				wantDot = scalar.Add(wantDot, scalar.Mul(a[i], b[i]))
			}
			if math.Float64bits(gotDot) != math.Float64bits(wantDot) {
				t.Errorf("%s seed %d: Dot %x != scalar loop %x", name, seed,
					math.Float64bits(gotDot), math.Float64bits(wantDot))
			}

			yb := append([]float64(nil), b...)
			ys := append([]float64(nil), b...)
			batched.Axpy(0.5, a, yb)
			for i := 0; i < n; i++ {
				ys[i] = scalar.Add(ys[i], scalar.Mul(0.5, a[i]))
			}
			for i := range yb {
				if math.Float64bits(yb[i]) != math.Float64bits(ys[i]) {
					t.Errorf("%s seed %d: Axpy[%d] %x != scalar %x", name, seed, i,
						math.Float64bits(yb[i]), math.Float64bits(ys[i]))
					break
				}
			}

			gotSum := batched.Sum(yb)
			wantSum := 0.0
			for i := 0; i < n; i++ {
				wantSum = scalar.Add(wantSum, ys[i])
			}
			if math.Float64bits(gotSum) != math.Float64bits(wantSum) {
				t.Errorf("%s seed %d: Sum %x != scalar loop %x", name, seed,
					math.Float64bits(gotSum), math.Float64bits(wantSum))
			}

			if batched.FLOPs() != scalar.FLOPs() || batched.Faults() != scalar.Faults() {
				t.Errorf("%s seed %d: counters diverged: flops %d/%d faults %d/%d", name, seed,
					batched.FLOPs(), scalar.FLOPs(), batched.Faults(), scalar.Faults())
			}
		}
	}
}

// TestDefaultFamilyMatchesWithFaultRate pins that selecting "default"
// explicitly is bit-identical to the classic fpu.WithFaultRate path — a
// campaign adding `"fault_model": {"name":"default"}` to its spec must
// not change any result byte.
func TestDefaultFamilyMatchesWithFaultRate(t *testing.T) {
	explicit := (&Spec{Name: Default}).Unit(0.05, 42)
	classic := fpu.New(fpu.WithFaultRate(0.05, 42))
	be, fe, _ := stream(explicit)
	bc, fc, _ := stream(classic)
	if fe != fc {
		t.Fatalf("FLOPs diverged: %d vs %d", fe, fc)
	}
	for i := range be {
		if be[i] != bc[i] {
			t.Fatalf("value %d diverged: %#x vs %#x", i, be[i], bc[i])
		}
	}
}

func TestObservedRates(t *testing.T) {
	const (
		rate = 0.03
		n    = 300000
	)
	for _, spec := range []*Spec{
		{Name: Stratified},
		{Name: Burst},
		{Name: Burst, BurstLen: 16, BurstProb: 0.9},
	} {
		u := spec.Unit(rate, 5)
		for i := 0; i < n; i++ {
			u.Add(1, float64(i))
		}
		got := float64(u.Faults()) / float64(n)
		if math.Abs(got-rate) > 0.2*rate {
			t.Errorf("%s(len=%v,prob=%v): observed rate %v, want %v +- 20%%",
				spec.ModelName(), spec.BurstLen, spec.BurstProb, got, rate)
		}
	}
}

// TestBurstFaultsAreClustered verifies the model's point: at equal
// long-run rate, burst faults arrive in runs while default faults arrive
// spread out. Clusters = maximal fault groups separated by gaps of more
// than 2× the window length.
func TestBurstFaultsAreClustered(t *testing.T) {
	const (
		rate = 0.01
		n    = 200000
		len_ = 64
	)
	clusters := func(u *fpu.Unit) (faults, groups int) {
		last := -10 * len_
		prev := uint64(0)
		for i := 0; i < n; i++ {
			u.Add(1, float64(i))
			if f := u.Faults(); f != prev {
				prev = f
				faults++
				if i-last > 2*len_ {
					groups++
				}
				last = i
			}
		}
		return faults, groups
	}
	bf, bg := clusters((&Spec{Name: Burst, BurstLen: len_}).Unit(rate, 9))
	df, dg := clusters((*Spec)(nil).Unit(rate, 9))
	if bf == 0 || df == 0 {
		t.Fatalf("degenerate run: burst %d faults, default %d faults", bf, df)
	}
	perBurst := float64(bf) / float64(bg)
	perDefault := float64(df) / float64(dg)
	if perBurst < 5 {
		t.Errorf("burst model: %.1f faults per cluster, want >= 5 (faults=%d clusters=%d)", perBurst, bf, bg)
	}
	if perBurst < 3*perDefault {
		t.Errorf("burst clustering %.1f not clearly above default clustering %.1f", perBurst, perDefault)
	}
}

func TestStratifiedClassWeights(t *testing.T) {
	for _, tc := range []struct {
		spec   *Spec
		lo, hi int // inclusive allowed flipped-bit range
	}{
		{&Spec{Name: Stratified, ExpWeight: fp(1), MantWeight: fp(0), SignWeight: fp(0)}, 52, 62},
		{&Spec{Name: Stratified, ExpWeight: fp(0), MantWeight: fp(1), SignWeight: fp(0)}, 0, 51},
		{&Spec{Name: Stratified, ExpWeight: fp(0), MantWeight: fp(0), SignWeight: fp(1)}, 63, 63},
	} {
		u := tc.spec.Unit(1, 17) // rate 1: every op faults
		for i := 0; i < 500; i++ {
			v := 1.5 + float64(i)
			got := u.Mul(v, 1)
			diff := math.Float64bits(got) ^ math.Float64bits(v)
			if diff == 0 {
				t.Fatalf("rate-1 stratified unit did not fault on op %d", i)
			}
			bit := 0
			for diff>>1 != 0 {
				diff >>= 1
				bit++
			}
			if bit < tc.lo || bit > tc.hi {
				t.Fatalf("weights (exp=%v mant=%v sign=%v): flipped bit %d outside [%d, %d]",
					*tc.spec.ExpWeight, *tc.spec.MantWeight, *tc.spec.SignWeight, bit, tc.lo, tc.hi)
			}
		}
	}
}

func TestMemoryModelFLOPsExact(t *testing.T) {
	n := 64
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i) + 0.5
		b[i] = float64(n-i) * 0.25
	}
	faulty := (&Spec{Name: Memory}).Unit(0.2, 33)
	exact := fpu.New()
	if got, want := faulty.Dot(a, b), exact.Dot(a, b); got != want {
		t.Errorf("memory-model Dot = %v, want exact %v", got, want)
	}
	s := 0.0
	for i := 0; i < 1000; i++ {
		s = faulty.Add(s, 1)
	}
	if s != 1000 {
		t.Errorf("memory-model scalar sum = %v, want exact 1000", s)
	}
	if f := faulty.Faults(); f != 0 {
		t.Errorf("memory model charged %d FPU faults, want 0", f)
	}
}

func TestMemoryModelCorruptsStoredState(t *testing.T) {
	const rate = 0.1
	u := (&Spec{Name: Memory}).Unit(rate, 71)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 1
	}
	u.CorruptSlice(xs)
	flipped := 0
	for _, v := range xs {
		if v != 1 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("memory model flipped nothing in 5000 words at rate 0.1")
	}
	got := float64(flipped) / float64(len(xs))
	if math.Abs(got-rate) > 0.3*rate {
		t.Errorf("observed flip rate %v, want %v +- 30%%", got, rate)
	}
	if inj := u.Model().Injected(); uint64(flipped) > inj {
		t.Errorf("flipped %d words but Injected reports %d", flipped, inj)
	}
}

// TestMemoryModelSliceChoppingInvariant pins that fault placement depends
// only on the cumulative word scan, not on how the solver chops its state
// into CorruptSlice calls — two 500-word scans strike the same words as
// one 1000-word scan.
func TestMemoryModelSliceChoppingInvariant(t *testing.T) {
	mk := func() []float64 {
		xs := make([]float64, 1000)
		for i := range xs {
			xs[i] = 2.5
		}
		return xs
	}
	whole := mk()
	(&Spec{Name: Memory}).Unit(0.05, 123).CorruptSlice(whole)
	halves := mk()
	u := (&Spec{Name: Memory}).Unit(0.05, 123)
	u.CorruptSlice(halves[:500])
	u.CorruptSlice(halves[500:])
	for i := range whole {
		if math.Float64bits(whole[i]) != math.Float64bits(halves[i]) {
			t.Fatalf("word %d differs between whole-slice and chopped scans: %#x vs %#x",
				i, math.Float64bits(whole[i]), math.Float64bits(halves[i]))
		}
	}
}

func TestZeroRateIsReliable(t *testing.T) {
	for _, spec := range specs() {
		u := spec.Unit(0, 4)
		if !u.Reliable() {
			t.Errorf("%s: rate-0 unit should be reliable", spec.ModelName())
		}
	}
}
