package faultmodel

import "robustify/internal/fpu"

// Field geometry of an IEEE-754 double: bit 0 = mantissa LSB,
// bits 52–62 = exponent, bit 63 = sign.
const (
	mantissaBits = 52
	exponentBits = 11
	signBit      = 63
)

// stratified is the significance-stratified model: the same uniform-rate,
// LFSR-spaced schedule as the default injector, but with the flipped bit
// position drawn from per-field class weights instead of the emulated
// hardware histogram. It reuses the injector wholesale — only the bit
// distribution and the advertised name differ — so it inherits the
// countdown fast path and the scalar/batched equivalence proof for free.
type stratified struct {
	*fpu.Injector
}

// Name identifies the stratified model (overriding the embedded
// injector's "default").
func (s *stratified) Name() string { return Stratified }

// newStratified builds the model. Each class weight is the share of
// faults striking that field, spread uniformly over the field's bits; the
// per-bit weight is therefore class weight / class size.
//
//lint:fpu-exempt fault-model construction: class-weight normalization happens once per trial, outside the simulated datapath
func newStratified(rate float64, seed uint64, expW, mantW, signW float64) fpu.FaultModel {
	var w [fpu.WordBits]float64
	for bit := 0; bit < mantissaBits; bit++ {
		w[bit] = mantW / mantissaBits
	}
	for bit := mantissaBits; bit < signBit; bit++ {
		w[bit] = expW / exponentBits
	}
	w[signBit] = signW
	dist := fpu.NewBitDistribution("stratified", w)
	return &stratified{fpu.NewInjector(rate, seed, fpu.WithDistribution(dist))}
}
