package faultmodel

import (
	"math"

	"robustify/internal/fpu"
)

// defaultBurstLen is the default mean low-voltage window length in FLOPs.
const defaultBurstLen = 64

// burstModel delivers correlated faults: instead of the default model's
// independent LFSR-spaced flips, the supply voltage droops for a window of
// ~meanLen consecutive operations during which each result is corrupted
// with probability prob, then recovers for an LFSR-drawn gap. The default
// in-window probability is the voltage curve's saturated MaxRate — a
// droop deep enough to matter pushes the FPU onto the flat top of
// fpu.VoltageModel's error-rate curve, where roughly half of all results
// miss timing.
//
// The closed/open phases map directly onto the kernel fast path: a closed
// phase is one long safe run (SafeOps = ops left in the phase), while an
// open phase reports SafeOps 0 so every in-window op routes through
// Fire's Bernoulli draw. The gap length is sized so the long-run fault
// rate still equals the sweep's configured rate:
//
//	rate = prob · meanLen / (meanLen + meanGap)
//	  ⇒ meanGap = meanLen · (prob/rate − 1)
type burstModel struct {
	rate    float64
	meanLen float64
	prob    float64
	meanGap float64
	dist    fpu.BitDistribution
	rng     *fpu.LFSR

	// open reports whether the voltage window is currently drooped; left
	// is how many operations remain in the current phase. The model
	// starts closed so low rates keep the default model's long fault-free
	// run-up.
	open     bool
	left     uint64
	injected uint64
}

// newBurst builds the model for one trial. Zero meanLen and prob select
// the defaults (64 ops, and the voltage model's MaxRate).
//
//lint:fpu-exempt fault-model construction: gap/rate algebra runs once per trial, outside the simulated datapath
func newBurst(rate float64, seed uint64, meanLen, prob float64) fpu.FaultModel {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if meanLen <= 0 {
		meanLen = defaultBurstLen
	}
	if prob <= 0 {
		prob = fpu.DefaultVoltageModel().MaxRate
	}
	if prob > 1 {
		prob = 1
	}
	b := &burstModel{
		rate:    rate,
		meanLen: meanLen,
		prob:    prob,
		dist:    fpu.EmulatedDistribution(),
		rng:     fpu.NewLFSR(seed),
	}
	if rate > 0 {
		// A requested rate at or above the in-window probability cannot be
		// reached by spacing windows out; clamp to back-to-back windows.
		b.meanGap = meanLen * (prob/rate - 1)
		if b.meanGap < 1 {
			b.meanGap = 1
		}
		b.left = b.rng.UniformGap(b.meanGap)
	}
	return b
}

// Name identifies the burst model.
func (b *burstModel) Name() string { return Burst }

// Rate returns the configured long-run faults-per-FLOP rate.
func (b *burstModel) Rate() float64 { return b.rate }

// Injected returns how many faults the model has delivered.
func (b *burstModel) Injected() uint64 { return b.injected }

// advance retires one operation from the current phase, flipping the
// phase and drawing the next one's length when it empties.
func (b *burstModel) advance() {
	b.left--
	if b.left > 0 {
		return
	}
	b.open = !b.open
	if b.open {
		b.left = b.rng.UniformGap(b.meanLen)
	} else {
		b.left = b.rng.UniformGap(b.meanGap)
	}
}

// Fire accounts one operation and reports whether its result is
// corrupted: never during a closed (nominal-voltage) phase, and with
// probability prob during an open window.
//
//lint:fpu-exempt fault-model mechanism: the Bernoulli threshold compare is scheduler state, not simulated application math
func (b *burstModel) Fire() bool {
	if b.rate <= 0 {
		return false
	}
	hit := b.open && b.rng.Float64() < b.prob
	if hit {
		b.injected++
	}
	b.advance()
	return hit
}

// Corrupt flips one distribution-drawn bit of v — the same emulated
// timing-fault histogram as the default model, since burst faults are the
// same physical mechanism arriving in clusters.
func (b *burstModel) Corrupt(v float64) float64 {
	bit := b.dist.Sample(b.rng.Float64())
	return math.Float64frombits(math.Float64bits(v) ^ (1 << uint(bit)))
}

// SafeOps reports the remainder of a closed phase as guaranteed
// fault-free; inside an open window every operation is at risk.
func (b *burstModel) SafeOps() uint64 {
	if b.rate <= 0 {
		return math.MaxUint64
	}
	if b.open {
		return 0
	}
	return b.left
}

// ConsumeSafe accounts n fault-free operations, n ≤ SafeOps. Emptying the
// closed phase opens the next window, exactly as n individual Fire calls
// would (closed-phase Fire calls draw nothing from the LFSR until the
// phase flips, so consuming in bulk stays bit-identical).
func (b *burstModel) ConsumeSafe(n uint64) {
	if b.rate <= 0 || n == 0 {
		return
	}
	if n < b.left {
		b.left -= n
		return
	}
	// n == b.left: the closed phase is fully retired and the next window
	// opens, drawing its length exactly as the nth Fire call would.
	b.left = 1
	b.advance()
}
