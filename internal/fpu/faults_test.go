package fpu

import (
	"math"
	"testing"
)

// TestSampleLookupMatchesFullSearch: the bucketed Sample fast path must
// return exactly what the plain CDF binary search returns, for every
// distribution shape and for adversarial variates at bucket and CDF
// boundaries.
func TestSampleLookupMatchesFullSearch(t *testing.T) {
	dists := []BitDistribution{
		MeasuredDistribution(),
		EmulatedDistribution(),
		UniformDistribution(),
		LowOrderDistribution(),
	}
	for _, d := range dists {
		check := func(u float64) {
			if got, want := d.Sample(u), d.search(u, 0, WordBits-1); got != want {
				t.Fatalf("%s: Sample(%g) = %d, full search %d", d.Name(), u, got, want)
			}
		}
		rng := NewLFSR(5)
		for i := 0; i < 20000; i++ {
			check(rng.Float64())
		}
		for k := 0; k <= sampleBuckets; k++ {
			u := float64(k) / sampleBuckets
			check(u)
			check(math.Nextafter(u, 0))
			if u < 1 {
				check(math.Nextafter(u, 1))
			}
		}
		for _, c := range d.cdf {
			check(c)
			check(math.Nextafter(c, 0))
			if c < 1 {
				check(math.Nextafter(c, 1))
			}
		}
	}
}

// TestRescheduleMatchesUniformGap: the injector's cached gap range must
// reproduce LFSR.UniformGap(1/rate) draw for draw.
func TestRescheduleMatchesUniformGap(t *testing.T) {
	for _, rate := range []float64{1e-6, 1e-3, 0.01, 0.25, 0.5, 0.9, 0.999, 1} {
		in := NewInjector(rate, 42)
		rng := NewLFSR(42)
		for i := 0; i < 200; i++ {
			want := rng.UniformGap(1 / rate)
			if in.countdown != want {
				t.Fatalf("rate %g draw %d: countdown %d, UniformGap %d", rate, i, in.countdown, want)
			}
			in.reschedule()
		}
	}
}
