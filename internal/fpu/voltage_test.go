package fpu

import (
	"math"
	"testing"
)

func TestErrorRateAboveKneeIsZero(t *testing.T) {
	m := DefaultVoltageModel()
	for _, v := range []float64{m.Knee, m.Knee + 0.01, m.Nominal, 1.5} {
		if r := m.ErrorRate(v); r != 0 {
			t.Errorf("ErrorRate(%v) = %v, want 0", v, r)
		}
	}
}

func TestErrorRateMonotoneBelowKnee(t *testing.T) {
	m := DefaultVoltageModel()
	prev := 0.0
	for v := m.Knee; v >= 0.5; v -= 0.01 {
		r := m.ErrorRate(v)
		if r < prev {
			t.Fatalf("error rate decreased at %vV: %v < %v", v, r, prev)
		}
		prev = r
	}
}

func TestErrorRateDecadeStep(t *testing.T) {
	m := DefaultVoltageModel()
	v := m.Knee - 0.10
	r1, r2 := m.ErrorRate(v), m.ErrorRate(v-m.DecadeStep)
	if math.Abs(r2/r1-10) > 1e-6 {
		t.Errorf("one DecadeStep scaled rate by %v, want 10", r2/r1)
	}
}

func TestErrorRateSaturates(t *testing.T) {
	m := DefaultVoltageModel()
	if r := m.ErrorRate(0.1); r != m.MaxRate {
		t.Errorf("deep overscale rate = %v, want saturation at %v", r, m.MaxRate)
	}
}

func TestVoltageForInvertsErrorRate(t *testing.T) {
	m := DefaultVoltageModel()
	for _, rate := range []float64{1e-7, 1e-5, 1e-3, 1e-2, 0.1, 0.4} {
		v := m.VoltageFor(rate)
		got := m.ErrorRate(v)
		if math.Abs(math.Log10(got)-math.Log10(rate)) > 1e-9 {
			t.Errorf("ErrorRate(VoltageFor(%v)) = %v", rate, got)
		}
	}
}

func TestVoltageForEdgeCases(t *testing.T) {
	m := DefaultVoltageModel()
	if v := m.VoltageFor(0); v != m.Knee {
		t.Errorf("VoltageFor(0) = %v, want knee %v", v, m.Knee)
	}
	if v := m.VoltageFor(1e-12); v != m.Knee {
		t.Errorf("VoltageFor(below knee rate) = %v, want knee", v)
	}
	vMax := m.VoltageFor(m.MaxRate)
	if v := m.VoltageFor(0.99); v != vMax {
		t.Errorf("VoltageFor(0.99) = %v, want clamp at %v", v, vMax)
	}
}

func TestPowerNormalization(t *testing.T) {
	m := DefaultVoltageModel()
	if p := m.Power(m.Nominal); math.Abs(p-1) > 1e-12 {
		t.Errorf("Power(nominal) = %v, want 1", p)
	}
	if p := m.Power(m.Nominal / 2); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("Power(nominal/2) = %v, want 0.25 (V^2 law)", p)
	}
}

func TestPowerForRateCheaperWhenNoisy(t *testing.T) {
	m := DefaultVoltageModel()
	quiet := m.PowerForRate(1e-8)
	noisy := m.PowerForRate(1e-2)
	if noisy >= quiet {
		t.Errorf("power at high error rate (%v) should be below low-rate power (%v)",
			noisy, quiet)
	}
}
