package fpu

// Observer is an optional, passive tap on a Unit's fault-injection path.
//
// The contract is strict because every per-seed result in the repository is
// pinned bit-for-bit: an Observer is invoked only AFTER the unit has
// committed a corrupted result, consumes no randomness, must not touch the
// value, and must not panic. Attaching or detaching an observer therefore
// cannot change any arithmetic outcome, FLOP count, or fault schedule —
// only record what happened. The observability layer (internal/obs)
// provides the standard implementation; the indirection through this
// interface keeps fpu dependency-free.
//
// Observers are called on the goroutine running the Unit. Units are not
// safe for concurrent use, so neither is the attached observer required
// to be.
type Observer interface {
	// FaultInjected reports one corrupted FPU result. op is the operation
	// class, flop the 1-based ordinal of the operation within the unit's
	// FLOP stream (identical between scalar and batched kernels), and
	// flipped the XOR of the raw and corrupted IEEE-754 bit patterns —
	// i.e. a mask of the flipped bits.
	FaultInjected(op Op, flop uint64, flipped uint64)

	// CompareFault reports one inverted comparison (Less). Compare faults
	// corrupt condition flags, not value bits, so there is no flip mask.
	CompareFault(flop uint64)

	// MemoryFaults reports one memory-resident strike pass over a stored
	// vector of the given length, and how many words it corrupted. Called
	// only for models implementing MemoryFaulter.
	MemoryFaults(words int, faults uint64)

	// IterationMark reports one solver iteration boundary (solvers expose
	// persistent state to memory-fault models once per iteration, which
	// doubles as an iteration heartbeat for fault-placement bucketing).
	IterationMark()
}

// WithObserver attaches a fault observer to the unit. A nil observer is
// ignored.
func WithObserver(o Observer) Option {
	return func(u *Unit) {
		if o != nil {
			u.obs = o
		}
	}
}

// SetObserver attaches (or, with nil, detaches) a fault observer after
// construction. The observer is purely passive — see Observer — so this is
// safe at any point between kernel calls.
func (u *Unit) SetObserver(o Observer) {
	if u != nil {
		u.obs = o
	}
}

// Observer returns the attached fault observer, or nil.
func (u *Unit) Observer() Observer {
	if u == nil {
		return nil
	}
	return u.obs
}
