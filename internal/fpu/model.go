package fpu

// FaultModel is the pluggable fault-injection strategy of a Unit: it decides,
// deterministically per seed, which FPU results are corrupted and how. The
// default implementation is *Injector (uniform-rate, LFSR-spaced single-bit
// flips — the paper's FPGA injector); internal/fpu/faultmodel adds
// significance-stratified, burst/correlated, and memory-resident variants.
//
// The contract has two halves. The scalar half mirrors the hardware:
// Fire accounts one committed operation against the fault schedule and
// reports whether its result is corrupted; Corrupt then produces the faulty
// word. The batched half keeps the kernel fast path: SafeOps reports how
// many upcoming operations are guaranteed fault-free, and ConsumeSafe
// accounts a block of them in one step. A model must make the two halves
// indistinguishable — for any op stream, routing n ops through Fire must
// leave the model in exactly the state of ConsumeSafe over the safe prefix
// plus Fire at the at-risk op. That equivalence is what makes the batched
// kernels bit-identical to the scalar methods under every model.
//
// Models are not safe for concurrent use; like a Unit, each worker owns its
// own instance.
type FaultModel interface {
	// Name identifies the model family ("default", "stratified", ...).
	Name() string
	// Rate returns the configured average faults per operation (for the
	// memory model: per word scanned).
	Rate() float64
	// Injected returns how many faults the model has delivered.
	Injected() uint64
	// Fire accounts one operation against the fault schedule and reports
	// whether that operation's result is corrupted.
	Fire() bool
	// Corrupt returns the corrupted form of v. It is called only after
	// Fire reported true for the operation producing v.
	Corrupt(v float64) float64
	// SafeOps returns how many upcoming operations are guaranteed
	// fault-free. The operation after the safe run is merely at risk: it
	// must still be routed through Fire, which may report false (burst
	// windows corrupt probabilistically).
	SafeOps() uint64
	// ConsumeSafe accounts n fault-free operations, n <= SafeOps().
	ConsumeSafe(n uint64)
}

// MemoryFaulter is implemented by fault models that corrupt stored data
// between solver iterations rather than (or in addition to) FPU results.
// Solvers expose their persistent state via Unit.CorruptSlice at iteration
// boundaries; models without the interface leave memory untouched.
type MemoryFaulter interface {
	// CorruptSlice exposes one stored vector to the model, which may flip
	// bits in place. The scan consumes the model's fault schedule word by
	// word, so placement is deterministic per seed.
	CorruptSlice(xs []float64)
}
