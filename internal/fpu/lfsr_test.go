package fpu

import (
	"math"
	"testing"
)

func TestLFSRZeroSeedRemapped(t *testing.T) {
	l := NewLFSR(0)
	if l.Next() == 0 {
		t.Error("zero seed must be remapped to a nonzero state")
	}
}

func TestLFSRNeverZero(t *testing.T) {
	l := NewLFSR(12345)
	for i := 0; i < 100000; i++ {
		if l.Next() == 0 {
			t.Fatalf("LFSR reached the all-zero fixed point at step %d", i)
		}
	}
}

func TestLFSRDeterministic(t *testing.T) {
	a, b := NewLFSR(99), NewLFSR(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestLFSRFloat64Range(t *testing.T) {
	l := NewLFSR(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := l.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestLFSRIntnBounds(t *testing.T) {
	l := NewLFSR(5)
	for i := 0; i < 10000; i++ {
		v := l.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestLFSRIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewLFSR(1).Intn(0)
}

func TestUniformGapMean(t *testing.T) {
	l := NewLFSR(31)
	const mean = 50.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := l.UniformGap(mean)
		if g < 1 || g > uint64(2*mean)-1 {
			t.Fatalf("gap %d outside {1..%d}", g, uint64(2*mean)-1)
		}
		sum += float64(g)
	}
	if got := sum / n; math.Abs(got-mean) > 0.03*mean {
		t.Errorf("mean gap = %v, want ~%v", got, mean)
	}
}

func TestUniformGapSmallMean(t *testing.T) {
	l := NewLFSR(1)
	if g := l.UniformGap(0.5); g != 1 {
		t.Errorf("UniformGap(0.5) = %d, want 1", g)
	}
	if g := l.UniformGap(1); g != 1 {
		t.Errorf("UniformGap(1) = %d, want 1", g)
	}
}
