package fpu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNilUnitIsExact(t *testing.T) {
	var u *Unit
	if got := u.Add(1.5, 2.25); got != 3.75 {
		t.Errorf("nil.Add = %v, want 3.75", got)
	}
	if got := u.Mul(3, 4); got != 12 {
		t.Errorf("nil.Mul = %v, want 12", got)
	}
	if got := u.Div(1, 8); got != 0.125 {
		t.Errorf("nil.Div = %v, want 0.125", got)
	}
	if got := u.Sqrt(9); got != 3 {
		t.Errorf("nil.Sqrt = %v, want 3", got)
	}
	if u.FLOPs() != 0 || u.Faults() != 0 || u.Energy() != 0 {
		t.Error("nil unit must not account anything")
	}
	if !u.Reliable() {
		t.Error("nil unit must report reliable")
	}
	u.Reset() // must not panic
}

func TestReliableUnitMatchesNative(t *testing.T) {
	u := New()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return u.Add(a, b) == a+b &&
			u.Sub(a, b) == a-b &&
			u.Mul(a, b) == a*b &&
			u.Div(a, b) == a/b &&
			u.Less(a, b) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitAccounting(t *testing.T) {
	u := New()
	u.Add(1, 2)
	u.Mul(3, 4)
	u.Mul(5, 6)
	u.Sub(1, 1)
	u.Div(1, 2)
	u.Sqrt(2)
	u.Less(1, 2)
	if got, want := u.FLOPs(), uint64(7); got != want {
		t.Errorf("FLOPs = %d, want %d", got, want)
	}
	if got, want := u.OpCount(OpMul), uint64(2); got != want {
		t.Errorf("OpCount(mul) = %d, want %d", got, want)
	}
	if got, want := u.OpCount(OpCmp), uint64(1); got != want {
		t.Errorf("OpCount(cmp) = %d, want %d", got, want)
	}
	if got, want := u.Energy(), 7.0; got != want {
		t.Errorf("Energy = %v, want %v", got, want)
	}
	u.Reset()
	if u.FLOPs() != 0 || u.Energy() != 0 || u.OpCount(OpMul) != 0 {
		t.Error("Reset must clear counters")
	}
}

func TestOpEnergy(t *testing.T) {
	u := New(WithOpEnergy(0.25))
	for i := 0; i < 8; i++ {
		u.Add(1, 1)
	}
	if got, want := u.Energy(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
	u.SetOpEnergy(1)
	u.Add(1, 1)
	if got, want := u.Energy(), 3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Energy after SetOpEnergy = %v, want %v", got, want)
	}
}

func TestFaultRateObserved(t *testing.T) {
	const (
		rate = 0.05
		n    = 200000
	)
	u := New(WithFaultRate(rate, 7))
	for i := 0; i < n; i++ {
		u.Add(1, float64(i))
	}
	got := float64(u.Faults()) / float64(n)
	if math.Abs(got-rate) > 0.15*rate {
		t.Errorf("observed fault rate %v, want %v +- 15%%", got, rate)
	}
}

func TestZeroRateNeverFaults(t *testing.T) {
	u := New(WithFaultRate(0, 1))
	if !u.Reliable() {
		t.Fatal("rate-0 unit should be reliable")
	}
	for i := 0; i < 1000; i++ {
		if got := u.Add(float64(i), 1); got != float64(i)+1 {
			t.Fatalf("Add(%d, 1) = %v", i, got)
		}
	}
	if u.Faults() != 0 {
		t.Errorf("Faults = %d, want 0", u.Faults())
	}
}

func TestFaultFlipsExactlyOneBit(t *testing.T) {
	in := NewInjector(1, 3) // fault on every op
	for i := 0; i < 1000; i++ {
		v := 1.0 + float64(i)
		out, faulted := in.Apply(v)
		if !faulted {
			t.Fatalf("rate-1 injector did not fault on op %d", i)
		}
		diff := math.Float64bits(v) ^ math.Float64bits(out)
		if popcount(diff) != 1 {
			t.Fatalf("fault flipped %d bits (in=%x out=%x)", popcount(diff),
				math.Float64bits(v), math.Float64bits(out))
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []float64 {
		u := New(WithFaultRate(0.2, 42))
		out := make([]float64, 0, 100)
		for i := 0; i < 100; i++ {
			out = append(out, u.Mul(1.5, float64(i)))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a := NewInjector(0.5, 1)
	b := NewInjector(0.5, 2)
	same := true
	for i := 0; i < 64 && same; i++ {
		va, _ := a.Apply(1)
		vb, _ := b.Apply(1)
		same = va == vb
	}
	if same {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestBitDistributionNormalized(t *testing.T) {
	for _, d := range []BitDistribution{
		MeasuredDistribution(), EmulatedDistribution(),
		UniformDistribution(), LowOrderDistribution(),
	} {
		var total float64
		for bit := 0; bit < WordBits; bit++ {
			p := d.Prob(bit)
			if p < 0 {
				t.Errorf("%s: negative probability at bit %d", d.Name(), bit)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: probabilities sum to %v, want 1", d.Name(), total)
		}
	}
}

func TestBitDistributionSampleMatchesPMF(t *testing.T) {
	d := EmulatedDistribution()
	rng := NewLFSR(11)
	counts := make([]int, WordBits)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng.Float64())]++
	}
	for bit := 0; bit < WordBits; bit++ {
		want := d.Prob(bit)
		got := float64(counts[bit]) / n
		if want == 0 {
			if got != 0 {
				t.Errorf("bit %d: sampled with zero probability", bit)
			}
			continue
		}
		if math.Abs(got-want) > 0.25*want+1e-4 {
			t.Errorf("bit %d: sampled freq %v, want %v", bit, got, want)
		}
	}
}

func TestMeasuredDistributionIsBimodal(t *testing.T) {
	d := MeasuredDistribution()
	var high, mid, low float64
	for bit := 0; bit < WordBits; bit++ {
		p := d.Prob(bit)
		switch {
		case bit >= 44:
			high += p
		case bit < 12:
			low += p
		default:
			mid += p
		}
	}
	if high < 0.4 {
		t.Errorf("high-significance mass = %v, want dominant (>0.4)", high)
	}
	if low < 0.15 {
		t.Errorf("low-order mass = %v, want secondary cluster (>0.15)", low)
	}
	if mid > 0.2 {
		t.Errorf("mid-mantissa mass = %v, want a valley (<0.2)", mid)
	}
}

func TestNewBitDistributionDegenerate(t *testing.T) {
	// All-zero weights must panic loudly: a silent uniform fallback would
	// let an "exponent-only" distribution built from mistyped weights run a
	// whole stratified study with uniform flips and no signal.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewBitDistribution with all-zero weights did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "positive weight") {
			t.Errorf("panic = %v, want a positive-weight message", r)
		}
	}()
	var zero [WordBits]float64
	NewBitDistribution("z", zero)
}

func TestHinge(t *testing.T) {
	u := New()
	if got := u.Hinge(2.5); got != 2.5 {
		t.Errorf("Hinge(2.5) = %v", got)
	}
	if got := u.Hinge(-1); got != 0 {
		t.Errorf("Hinge(-1) = %v", got)
	}
	if got := u.Hinge(0); got != 0 {
		t.Errorf("Hinge(0) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	u := New()
	if got := u.Max(1, 2); got != 2 {
		t.Errorf("Max(1,2) = %v", got)
	}
	if got := u.Min(1, 2); got != 1 {
		t.Errorf("Min(1,2) = %v", got)
	}
}

func TestSinglePrecisionRounding(t *testing.T) {
	u := New(WithSinglePrecision())
	got := u.Add(1, 1e-12) // vanishes in float32
	if got != 1 {
		t.Errorf("single-precision Add(1, 1e-12) = %v, want 1", got)
	}
	if got := u.Mul(3, 4); got != 12 {
		t.Errorf("single-precision Mul(3,4) = %v", got)
	}
	// Relative precision is ~6e-8: adding 1e-6 must survive.
	if got := u.Add(1, 1e-6); got == 1 {
		t.Error("single-precision Add(1, 1e-6) lost the addend")
	}
}

func TestInjectorRateClamping(t *testing.T) {
	if r := NewInjector(-0.5, 1).Rate(); r != 0 {
		t.Errorf("negative rate clamped to %v, want 0", r)
	}
	if r := NewInjector(7, 1).Rate(); r != 1 {
		t.Errorf("huge rate clamped to %v, want 1", r)
	}
}

func TestInjectorCustomDistribution(t *testing.T) {
	in := NewInjector(1, 2, WithDistribution(LowOrderDistribution()))
	if in.Distribution().Name() != "low-order" {
		t.Errorf("distribution = %q", in.Distribution().Name())
	}
	// Every fault must hit bits 0..15 only.
	for i := 0; i < 500; i++ {
		v := 1.5
		out, faulted := in.Apply(v)
		if !faulted {
			t.Fatal("rate-1 injector idle")
		}
		diff := math.Float64bits(v) ^ math.Float64bits(out)
		if diff>>16 != 0 {
			t.Fatalf("low-order injector flipped bit above 15: %x", diff)
		}
	}
	if in.Injected() != 500 {
		t.Errorf("Injected = %d", in.Injected())
	}
}

func TestLessInvertsUnderFault(t *testing.T) {
	u := New(WithFaultRate(1, 3)) // every comparison corrupted
	if u.Less(1, 2) {
		t.Error("rate-1 comparison should be inverted")
	}
	if got := u.OpCount(OpCmp); got != 1 {
		t.Errorf("cmp count = %d", got)
	}
}
