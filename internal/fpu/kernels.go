package fpu

// Batched kernels: the vector fast path of the simulated FPU.
//
// The scalar methods (Add, Mul, …) pay one method call, one accounting
// update, and one fault-schedule check per floating point operation, which
// dominates the runtime of every figure sweep. The kernels below exploit
// the fault model's schedule instead: FaultModel.SafeOps says exactly how
// many upcoming operations are guaranteed fault-free, so between faults a
// kernel runs a plain tight Go loop with no per-element dispatch, charges
// FLOP and energy accounting in bulk via ConsumeSafe, and routes only the
// at-risk operations after each safe run through the model's Fire/Corrupt
// path.
//
// Every kernel is bit-identical to the equivalent scalar-method loop under
// the same model seed: same operation order, same per-operation
// single-precision rounding, same LFSR draws, same flipped bits, and the
// same FLOP, per-op, and fault counters — the FaultModel contract requires
// exactly this scalar/batched indistinguishability of every model. The
// only permitted divergence is the energy accumulator, which is charged as
// opEnergy×n in one step rather than by n repeated additions and may
// therefore differ from the scalar path in the last ulp when opEnergy is
// not exactly representable.
//
// The explicit float64 conversions around products in the tight loops are
// load-bearing: they force the product to round separately from the
// following addition, forbidding fused-multiply-add contraction that would
// otherwise break bit-compatibility with the scalar path on architectures
// where the compiler fuses.

import (
	"errors"
	"math"
)

// ErrKernelLen is the panic value for kernel operand length mismatches,
// mirroring linalg.ErrShape (which fpu cannot import) as an inspectable
// error value.
var ErrKernelLen = errors.New("fpu: kernel operand length mismatch")

// charge bulk-charges accounting for n operations of class op.
func (u *Unit) charge(op Op, n int) {
	u.flops += uint64(n)
	u.perOp[op] += uint64(n)
	u.energy += u.opEnergy * float64(n)
}

// chargePair bulk-charges accounting for n (op1, op2) operation pairs.
func (u *Unit) chargePair(op1, op2 Op, n int) {
	u.flops += 2 * uint64(n)
	u.perOp[op1] += uint64(n)
	u.perOp[op2] += uint64(n)
	u.energy += u.opEnergy * float64(2*n)
}

// soloRun returns how many single-operation elements can run fault-free,
// capped at rem, and consumes their operations from the fault schedule.
// When the return value is less than rem, the next operation is at risk
// and must go through injectOp.
func (u *Unit) soloRun(rem int) int {
	if u.model == nil {
		return rem
	}
	safe := u.model.SafeOps()
	if safe >= uint64(rem) {
		u.model.ConsumeSafe(uint64(rem))
		return rem
	}
	u.model.ConsumeSafe(safe)
	return int(safe)
}

// pairRun is soloRun for elements costing two operations each. When the
// return value is less than rem, the next element spans an at-risk
// operation.
func (u *Unit) pairRun(rem int) int {
	if u.model == nil {
		return rem
	}
	safe := u.model.SafeOps() / 2
	if safe >= uint64(rem) {
		u.model.ConsumeSafe(2 * uint64(rem))
		return rem
	}
	u.model.ConsumeSafe(2 * safe)
	return int(safe)
}

// injectOp mirrors commit's rounding, NaN canonicalization, and injection
// for one operation whose accounting has already been bulk-charged. op and
// flop identify the operation for the observer exactly as commit would
// have: flop is the 1-based ordinal of this operation in the unit's FLOP
// stream, computed by the caller from the pre-charge counter, so scalar and
// batched kernels present identical fault placements to an attached
// Observer.
func (u *Unit) injectOp(op Op, flop uint64, v float64) float64 {
	if u.single {
		v = float64(float32(v))
	}
	if u.model == nil {
		return v
	}
	if v != v {
		v = canonNaN
	}
	if u.model.Fire() {
		u.faults++
		raw := v
		v = u.model.Corrupt(v)
		if u.obs != nil {
			u.obs.FaultInjected(op, flop, math.Float64bits(raw)^math.Float64bits(v))
		}
	}
	return v
}

// fix is the tight-loop counterpart of commit's NaN canonicalization: every
// per-element result a kernel stores while a fault model is installed must
// collapse NaNs to canonNaN, exactly as the scalar methods do, or the two
// paths diverge on the first ambiguous-payload NaN (see canonNaN). The
// v != v test is false for all non-NaN values, so the branch costs one
// predictable compare per element.
func (u *Unit) fix(v float64) float64 {
	if v != v && u.model != nil {
		return canonNaN
	}
	return v
}

// Dot returns aᵀb, bit-identical to the scalar loop
// s = u.Add(s, u.Mul(a[i], b[i])).
func (u *Unit) Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		var s float64
		for i := 0; i < n; i++ {
			s += float64(a[i] * b[i])
		}
		return s
	}
	base := u.flops
	u.chargePair(OpMul, OpAdd, n)
	var s float64
	for i := 0; i < n; {
		run := i + u.pairRun(n-i)
		if u.single {
			for ; i < run; i++ {
				s = u.fix(float64(float32(s + float64(float32(a[i]*b[i])))))
			}
		} else {
			for ; i < run; i++ {
				s = u.fix(s + float64(a[i]*b[i]))
			}
		}
		if i < n {
			at := base + 2*uint64(i)
			s = u.injectOp(OpAdd, at+2, s+u.injectOp(OpMul, at+1, float64(a[i]*b[i])))
			i++
		}
	}
	return s
}

// DotRev returns Σ a[d]·b[len(b)−1−d]: a dot product with the second
// operand traversed backwards, the access pattern of a banded Toeplitz
// row. Bit-identical to the scalar loop s = u.Add(s, u.Mul(a[d], b[n−1−d])).
func (u *Unit) DotRev(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		var s float64
		for i := 0; i < n; i++ {
			s += float64(a[i] * b[n-1-i])
		}
		return s
	}
	base := u.flops
	u.chargePair(OpMul, OpAdd, n)
	var s float64
	for i := 0; i < n; {
		run := i + u.pairRun(n-i)
		if u.single {
			for ; i < run; i++ {
				s = u.fix(float64(float32(s + float64(float32(a[i]*b[n-1-i])))))
			}
		} else {
			for ; i < run; i++ {
				s = u.fix(s + float64(a[i]*b[n-1-i]))
			}
		}
		if i < n {
			at := base + 2*uint64(i)
			s = u.injectOp(OpAdd, at+2, s+u.injectOp(OpMul, at+1, float64(a[i]*b[n-1-i])))
			i++
		}
	}
	return s
}

// Axpy sets y ← y + alpha·x, bit-identical to the scalar loop
// y[i] = u.Add(y[i], u.Mul(alpha, x[i])).
func (u *Unit) Axpy(alpha float64, x, y []float64) {
	n := len(x)
	if len(y) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		for i := 0; i < n; i++ {
			y[i] += float64(alpha * x[i])
		}
		return
	}
	base := u.flops
	u.chargePair(OpMul, OpAdd, n)
	for i := 0; i < n; {
		run := i + u.pairRun(n-i)
		if u.single {
			for ; i < run; i++ {
				y[i] = u.fix(float64(float32(y[i] + float64(float32(alpha*x[i])))))
			}
		} else {
			for ; i < run; i++ {
				y[i] = u.fix(y[i] + float64(alpha*x[i]))
			}
		}
		if i < n {
			at := base + 2*uint64(i)
			y[i] = u.injectOp(OpAdd, at+2, y[i]+u.injectOp(OpMul, at+1, float64(alpha*x[i])))
			i++
		}
	}
}

// Xpay sets y ← x + alpha·y (the CG direction recurrence), bit-identical
// to the scalar loop y[i] = u.Add(x[i], u.Mul(alpha, y[i])).
func (u *Unit) Xpay(x []float64, alpha float64, y []float64) {
	n := len(x)
	if len(y) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		for i := 0; i < n; i++ {
			y[i] = x[i] + float64(alpha*y[i])
		}
		return
	}
	base := u.flops
	u.chargePair(OpMul, OpAdd, n)
	for i := 0; i < n; {
		run := i + u.pairRun(n-i)
		if u.single {
			for ; i < run; i++ {
				y[i] = u.fix(float64(float32(x[i] + float64(float32(alpha*y[i])))))
			}
		} else {
			for ; i < run; i++ {
				y[i] = u.fix(x[i] + float64(alpha*y[i]))
			}
		}
		if i < n {
			at := base + 2*uint64(i)
			y[i] = u.injectOp(OpAdd, at+2, x[i]+u.injectOp(OpMul, at+1, float64(alpha*y[i])))
			i++
		}
	}
}

// Sum returns Σ x[i], bit-identical to the scalar loop s = u.Add(s, x[i]).
func (u *Unit) Sum(x []float64) float64 {
	n := len(x)
	if u == nil {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i]
		}
		return s
	}
	base := u.flops
	u.charge(OpAdd, n)
	var s float64
	for i := 0; i < n; {
		run := i + u.soloRun(n-i)
		if u.single {
			for ; i < run; i++ {
				s = u.fix(float64(float32(s + x[i])))
			}
		} else {
			for ; i < run; i++ {
				s = u.fix(s + x[i])
			}
		}
		if i < n {
			s = u.injectOp(OpAdd, base+uint64(i)+1, s+x[i])
			i++
		}
	}
	return s
}

// Scale sets x ← alpha·x, bit-identical to the scalar loop
// x[i] = u.Mul(alpha, x[i]).
func (u *Unit) Scale(alpha float64, x []float64) {
	n := len(x)
	if u == nil {
		for i := 0; i < n; i++ {
			x[i] = alpha * x[i]
		}
		return
	}
	base := u.flops
	u.charge(OpMul, n)
	for i := 0; i < n; {
		run := i + u.soloRun(n-i)
		if u.single {
			for ; i < run; i++ {
				x[i] = u.fix(float64(float32(alpha * x[i])))
			}
		} else {
			for ; i < run; i++ {
				x[i] = u.fix(alpha * x[i])
			}
		}
		if i < n {
			x[i] = u.injectOp(OpMul, base+uint64(i)+1, alpha*x[i])
			i++
		}
	}
}

// AddVec sets dst ← a + b elementwise, bit-identical to the scalar loop
// dst[i] = u.Add(a[i], b[i]). dst may alias a or b.
func (u *Unit) AddVec(a, b, dst []float64) {
	n := len(a)
	if len(b) != n || len(dst) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		for i := 0; i < n; i++ {
			dst[i] = a[i] + b[i]
		}
		return
	}
	base := u.flops
	u.charge(OpAdd, n)
	for i := 0; i < n; {
		run := i + u.soloRun(n-i)
		if u.single {
			for ; i < run; i++ {
				dst[i] = u.fix(float64(float32(a[i] + b[i])))
			}
		} else {
			for ; i < run; i++ {
				dst[i] = u.fix(a[i] + b[i])
			}
		}
		if i < n {
			dst[i] = u.injectOp(OpAdd, base+uint64(i)+1, a[i]+b[i])
			i++
		}
	}
}

// SubVec sets dst ← a − b elementwise, bit-identical to the scalar loop
// dst[i] = u.Sub(a[i], b[i]). dst may alias a or b.
func (u *Unit) SubVec(a, b, dst []float64) {
	n := len(a)
	if len(b) != n || len(dst) != n {
		panic(ErrKernelLen)
	}
	if u == nil {
		for i := 0; i < n; i++ {
			dst[i] = a[i] - b[i]
		}
		return
	}
	base := u.flops
	u.charge(OpSub, n)
	for i := 0; i < n; {
		run := i + u.soloRun(n-i)
		if u.single {
			for ; i < run; i++ {
				dst[i] = u.fix(float64(float32(a[i] - b[i])))
			}
		} else {
			for ; i < run; i++ {
				dst[i] = u.fix(a[i] - b[i])
			}
		}
		if i < n {
			dst[i] = u.injectOp(OpSub, base+uint64(i)+1, a[i]-b[i])
			i++
		}
	}
}

// Gemv sets dst ← A·x for the row-major rows×cols matrix a, one batched
// Dot per row. Bit-identical to the scalar per-row dot loops.
func (u *Unit) Gemv(a []float64, rows, cols int, x, dst []float64) {
	if len(a) != rows*cols || len(x) != cols || len(dst) != rows {
		panic(ErrKernelLen)
	}
	for i := 0; i < rows; i++ {
		dst[i] = u.Dot(a[i*cols:(i+1)*cols], x)
	}
}

// Norm2 returns ‖x‖₂, bit-identical to u.Sqrt of the scalar dot loop.
func (u *Unit) Norm2(x []float64) float64 {
	return u.Sqrt(u.Dot(x, x))
}
