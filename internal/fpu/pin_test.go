package fpu

import (
	"hash/fnv"
	"math"
	"testing"
)

// TestDefaultModelOpStreamPinned freezes the default fault model's exact
// behavior: the constants below were captured from the pre-FaultModel
// refactor Injector (uniform LFSR-spaced faults, emulated bit
// distribution) and must never change. Every stored table, campaign
// resume artifact, and distributed byte-identity guarantee in the repo
// assumes this op stream — a drift here silently invalidates all of them.
func TestDefaultModelOpStreamPinned(t *testing.T) {
	checkPinnedOpStream(t, New(WithFaultRate(0.02, 99)), nil)
}

// TestDefaultModelOpStreamPinnedWithObserver replays the identical pinned
// stream with an Observer attached: the flight recorder is strictly
// passive, so every hash and counter above must hold unchanged, and the
// observer must see exactly the pinned number of injected faults.
func TestDefaultModelOpStreamPinnedWithObserver(t *testing.T) {
	rec := &streamObserver{}
	checkPinnedOpStream(t, New(WithFaultRate(0.02, 99), WithObserver(rec)), rec)
}

func checkPinnedOpStream(t *testing.T, u *Unit, rec *streamObserver) {
	t.Helper()
	n := 257
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 1.25*float64(i%17) - 3.5
		b[i] = 0.75*float64(i%23) + 0.125
	}
	h := fnv.New64a()
	put := func(v float64) {
		bits := math.Float64bits(v)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(u.Dot(a, b))
	put(u.DotRev(a, b))
	y := make([]float64, n)
	copy(y, b)
	u.Axpy(0.5, a, y)
	for _, v := range y {
		put(v)
	}
	u.Xpay(a, -0.25, y)
	for _, v := range y {
		put(v)
	}
	put(u.Sum(y))
	u.Scale(1.0625, y)
	put(u.Norm2(y))
	dst := make([]float64, 16)
	u.Gemv(a[:16*16], 16, 16, b[:16], dst)
	for _, v := range dst {
		put(v)
	}
	// CorruptSlice is a no-op under the default model: interleaving it
	// with the op stream must not advance the fault schedule or charge
	// FLOPs, or every solver that gained the memory-fault hook would
	// drift from its pre-refactor per-seed results.
	u.CorruptSlice(y)
	s := 0.0
	for i := 0; i < 100; i++ {
		s = u.Add(s, u.Mul(a[i%n], b[(i*7)%n]))
		s = u.Div(s, 1.0009765625)
		s = u.Sqrt(u.Abs(s) + 1)
		if u.Less(s, float64(i)) {
			s = u.Sub(s, 0.5)
		}
	}
	put(s)

	const (
		wantHash     = uint64(0xfd7b0c3fb07ae800)
		wantFLOPs    = uint64(4189)
		wantFaults   = uint64(83)
		wantInjected = uint64(83)
	)
	if got := h.Sum64(); got != wantHash {
		t.Errorf("op-stream hash = %#x, want %#x (default fault model drifted from the pre-refactor injector)", got, wantHash)
	}
	if got := u.FLOPs(); got != wantFLOPs {
		t.Errorf("FLOPs = %d, want %d", got, wantFLOPs)
	}
	if got := u.Faults(); got != wantFaults {
		t.Errorf("Faults = %d, want %d", got, wantFaults)
	}
	if got := u.Model().Injected(); got != wantInjected {
		t.Errorf("Injected = %d, want %d", got, wantInjected)
	}
	wantPerOp := map[Op]uint64{OpAdd: 1898, OpSub: 92, OpMul: 1898, OpDiv: 100, OpSqrt: 101, OpCmp: 100}
	for op, want := range wantPerOp {
		if got := u.OpCount(op); got != want {
			t.Errorf("OpCount(%s) = %d, want %d", op, got, want)
		}
	}
	if rec != nil {
		// Every injected fault reaches the observer: bit corruptions via
		// FaultInjected, comparison flips via CompareFault.
		faults := 0
		for _, ev := range rec.events {
			if ev.kind == "fault" || ev.kind == "compare" {
				faults++
			}
		}
		if uint64(faults) != wantInjected {
			t.Errorf("observer saw %d fault events, want %d", faults, wantInjected)
		}
	}
}
