package fpu

import (
	"testing"
)

// obsEvent is one recorded Observer callback, in stream order.
type obsEvent struct {
	kind    string // "fault", "compare", "memory", "iter"
	op      Op
	flop    uint64
	flipped uint64
}

// streamObserver records every callback verbatim.
type streamObserver struct {
	events []obsEvent
}

func (s *streamObserver) FaultInjected(op Op, flop uint64, flipped uint64) {
	s.events = append(s.events, obsEvent{kind: "fault", op: op, flop: flop, flipped: flipped})
}

func (s *streamObserver) CompareFault(flop uint64) {
	s.events = append(s.events, obsEvent{kind: "compare", flop: flop})
}

func (s *streamObserver) MemoryFaults(words int, faults uint64) {
	s.events = append(s.events, obsEvent{kind: "memory", flop: uint64(words), flipped: faults})
}

func (s *streamObserver) IterationMark() {
	s.events = append(s.events, obsEvent{kind: "iter"})
}

// TestObserverStreamScalarMatchesBatched pins the flop-exact observer
// contract: an observer attached to a unit sees the identical event
// stream — same ops, same 1-based flop ordinals, same flip masks —
// whether the computation runs through scalar methods or batched
// kernels. This is what makes fault-placement telemetry comparable
// across the in-process and kernel-accelerated paths.
func TestObserverStreamScalarMatchesBatched(t *testing.T) {
	const n = 512
	a, b := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = float64(i%17) + 0.25
		b[i] = float64(i%13) - 5.5
	}
	for _, rate := range []float64{0.003, 0.02} {
		for seed := uint64(1); seed <= 5; seed++ {
			scalarObs, batchObs := &streamObserver{}, &streamObserver{}
			us := New(WithFaultRate(rate, seed), WithObserver(scalarObs))
			ub := New(WithFaultRate(rate, seed), WithObserver(batchObs))

			// Pair kernel (mul+add per element) and solo kernel (add per
			// element), back to back so flop ordinals accumulate across
			// kernel boundaries exactly as across scalar calls.
			sv := scalarDot(us, a, b)
			bv := ub.Dot(a, b)
			if sv != bv {
				t.Fatalf("rate %g seed %d: Dot diverged: scalar %x batched %x",
					rate, seed, sv, bv)
			}
			sv = scalarSum(us, a)
			bv = ub.Sum(a)
			if sv != bv {
				t.Fatalf("rate %g seed %d: Sum diverged", rate, seed)
			}

			if len(scalarObs.events) == 0 {
				t.Fatalf("rate %g seed %d: no faults observed; raise rate or n", rate, seed)
			}
			if len(scalarObs.events) != len(batchObs.events) {
				t.Fatalf("rate %g seed %d: scalar saw %d events, batched %d",
					rate, seed, len(scalarObs.events), len(batchObs.events))
			}
			for i := range scalarObs.events {
				if scalarObs.events[i] != batchObs.events[i] {
					t.Errorf("rate %g seed %d: event %d: scalar %+v batched %+v",
						rate, seed, i, scalarObs.events[i], batchObs.events[i])
				}
			}
		}
	}
}

// TestObserverIsPassive pins the other half of the contract: attaching
// an observer changes nothing — values, FLOP counts, fault counts, and
// the fault schedule are bit-identical with and without one.
func TestObserverIsPassive(t *testing.T) {
	const n = 256
	a, b := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = 1.0 / float64(i+1)
		b[i] = float64(i) * 0.75
	}
	for seed := uint64(1); seed <= 8; seed++ {
		plain := New(WithFaultRate(0.01, seed))
		tapped := New(WithFaultRate(0.01, seed), WithObserver(&streamObserver{}))
		pv := plain.Dot(a, b)
		tv := tapped.Dot(a, b)
		if pv != tv {
			t.Errorf("seed %d: observer changed the result: %x vs %x", seed, pv, tv)
		}
		if plain.FLOPs() != tapped.FLOPs() || plain.Faults() != tapped.Faults() {
			t.Errorf("seed %d: observer changed accounting: flops %d/%d faults %d/%d",
				seed, plain.FLOPs(), tapped.FLOPs(), plain.Faults(), tapped.Faults())
		}
	}
}

// TestObserverSetDetach: SetObserver(nil) detaches cleanly and a nil
// unit tolerates both accessors.
func TestObserverSetDetach(t *testing.T) {
	o := &streamObserver{}
	u := New(WithFaultRate(0.5, 3), WithObserver(o))
	if u.Observer() != o {
		t.Fatal("Observer() did not return the attached observer")
	}
	u.SetObserver(nil)
	if u.Observer() != nil {
		t.Fatal("SetObserver(nil) did not detach")
	}
	for i := 0; i < 100; i++ {
		u.Add(1, 2)
	}
	if len(o.events) != 0 {
		t.Errorf("detached observer still received %d events", len(o.events))
	}
	var nilUnit *Unit
	nilUnit.SetObserver(o)
	if nilUnit.Observer() != nil {
		t.Error("nil unit returned an observer")
	}
}
