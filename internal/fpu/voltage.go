package fpu

import "math"

// VoltageModel maps FPU supply voltage to timing-error rate and per-FLOP
// power, standing in for the circuit-level simulation data behind Fig 5.2
// of the paper. The curve has the canonical voltage-overscaling shape: no
// observable errors at or above the guardband knee, then an exponential rise
// (one decade of error rate per DecadeStep volts of undervolt) that
// saturates at MaxRate once almost every operation misses timing.
//
// Power follows the CV²f dynamic-power rule normalized so that one FLOP at
// nominal voltage costs 1 energy unit; running the FPU at a scaled voltage
// charges (V/Nominal)² per FLOP. Energy for a run is therefore
// power × #FLOPs, the y-axis of Fig 6.7.
type VoltageModel struct {
	// Nominal is the guardbanded supply voltage with zero observed errors.
	Nominal float64
	// Knee is the voltage at which the first timing errors appear.
	Knee float64
	// KneeRate is the error rate (errors/op) right at the knee.
	KneeRate float64
	// DecadeStep is how many volts of further scaling raise the error rate
	// by 10x.
	DecadeStep float64
	// MaxRate caps the error rate: below some voltage, roughly half of all
	// result words are corrupted and the rate saturates.
	MaxRate float64
}

// DefaultVoltageModel returns the model used throughout the experiments:
// 1.20 V nominal (Leon3 on Stratix II class fabric), first errors at 1.00 V
// at 1e-8 errors/op, one decade per 50 mV, saturating at 0.5 errors/op.
func DefaultVoltageModel() VoltageModel {
	return VoltageModel{
		Nominal:    1.20,
		Knee:       1.00,
		KneeRate:   1e-8,
		DecadeStep: 0.05,
		MaxRate:    0.5,
	}
}

// ErrorRate returns the expected faults per floating point operation at
// supply voltage v.
func (m VoltageModel) ErrorRate(v float64) float64 {
	if v >= m.Knee {
		return 0
	}
	rate := m.KneeRate * math.Pow(10, (m.Knee-v)/m.DecadeStep)
	if rate > m.MaxRate {
		rate = m.MaxRate
	}
	return rate
}

// VoltageFor returns the highest voltage whose error rate does not exceed
// rate. Rates at or below zero return the knee voltage (first error-free
// point); rates at or above MaxRate return the voltage where the curve
// saturates.
func (m VoltageModel) VoltageFor(rate float64) float64 {
	if rate <= 0 {
		return m.Knee
	}
	if rate >= m.MaxRate {
		rate = m.MaxRate
	}
	if rate <= m.KneeRate {
		return m.Knee
	}
	return m.Knee - m.DecadeStep*math.Log10(rate/m.KneeRate)
}

// Power returns the per-FLOP energy charge at voltage v, normalized to 1 at
// the nominal voltage.
func (m VoltageModel) Power(v float64) float64 {
	r := v / m.Nominal
	return r * r
}

// PowerForRate returns the per-FLOP energy charge when the FPU is
// overscaled to the voltage that produces the given error rate.
func (m VoltageModel) PowerForRate(rate float64) float64 {
	return m.Power(m.VoltageFor(rate))
}
