package fpu

import "math"

// WordBits is the width of the simulated FPU datapath.
const WordBits = 64

// sampleBuckets is the size of the Sample lookup table. Each bucket
// brackets the CDF region its slice of [0, 1) can land in, so most draws
// resolve without a search.
const sampleBuckets = 256

// BitDistribution is a probability distribution over the bit positions of an
// IEEE-754 double word (bit 0 = mantissa LSB, bit 63 = sign). A fault flips
// exactly one bit drawn from this distribution.
type BitDistribution struct {
	name string
	// cdf[i] is the cumulative probability of flipping a bit <= i.
	cdf [WordBits]float64
	pmf [WordBits]float64
	// bucketLo/bucketHi[k] bound the possible Sample results for variates
	// in [k, k+1)/sampleBuckets.
	bucketLo [sampleBuckets]uint8
	bucketHi [sampleBuckets]uint8
}

// NewBitDistribution builds a distribution from non-negative weights, one per
// bit position. Weights are normalized; at least one must be positive —
// all-zero weights panic rather than falling back to uniform, because a
// silently-uniform "exponent-only" distribution would corrupt a stratified
// fault-model study without any signal.
func NewBitDistribution(name string, weights [WordBits]float64) BitDistribution {
	var d BitDistribution
	d.name = name
	var total float64
	for _, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
	}
	if total <= 0 {
		panic("fpu: NewBitDistribution(" + name + ") needs at least one positive weight")
	}
	var acc float64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		p := w / total
		d.pmf[i] = p
		acc += p
		d.cdf[i] = acc
	}
	d.cdf[WordBits-1] = 1
	for k := 0; k < sampleBuckets; k++ {
		d.bucketLo[k] = uint8(d.search(float64(k)/sampleBuckets, 0, WordBits-1))
		d.bucketHi[k] = uint8(d.search(float64(k+1)/sampleBuckets, 0, WordBits-1))
	}
	return d
}

// Name returns the distribution's label.
func (d *BitDistribution) Name() string { return d.name }

// Prob returns the probability of flipping the given bit.
func (d *BitDistribution) Prob(bit int) float64 {
	if bit < 0 || bit >= WordBits {
		return 0
	}
	return d.pmf[bit]
}

// Sample draws a bit position using the uniform variate u in [0, 1). The
// bucket table narrows the CDF search range first; most buckets span a
// single bit, so the common case is a table lookup.
func (d *BitDistribution) Sample(u float64) int {
	k := int(u * sampleBuckets)
	if k < 0 {
		k = 0
	} else if k >= sampleBuckets {
		k = sampleBuckets - 1
	}
	lo, hi := int(d.bucketLo[k]), int(d.bucketHi[k])
	if lo == hi {
		return lo
	}
	return d.search(u, lo, hi)
}

// search returns the smallest bit index in [lo, hi] whose cumulative
// probability is at least u (binary search on the CDF).
func (d *BitDistribution) search(u float64, lo, hi int) int {
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MeasuredDistribution returns the per-bit fault histogram standing in for
// the circuit-level measurements of Fig 5.1 (Kong's path-delay study). The
// longest carry and normalization chains live in the significand datapath
// and terminate in the most significant result bits, so most timing faults
// strike the upper mantissa (large but bounded relative errors, the
// figure's dominant mode); a secondary population of short marginal paths
// strikes the low-order mantissa bits (tiny errors); the sign flag is hit
// occasionally; the exponent logic is short-path and almost never fails,
// which is why Fig 5.1's error magnitudes stay bounded.
func MeasuredDistribution() BitDistribution {
	var w [WordBits]float64
	for bit := 0; bit < WordBits; bit++ {
		switch {
		case bit == 63: // sign flag
			w[bit] = 1.5
		case bit >= 52: // exponent: short paths, rare
			w[bit] = 0.04
		case bit >= 42: // upper mantissa: dominant cluster, rising to MSB
			w[bit] = 1.4 + 0.25*float64(bit-42)
		case bit < 12: // low-order cluster: small-magnitude errors
			w[bit] = 1.6 - 0.05*float64(bit)
		default: // mid-mantissa valley
			w[bit] = 0.08
		}
	}
	return NewBitDistribution("measured", w)
}

// EmulatedDistribution returns the simplified mixture the injector actually
// uses, mirroring how the thesis emulates the measured behaviour: with
// probability pHigh the fault hits a uniformly chosen upper-mantissa bit
// (relative error up to O(1)), with probability pSign the sign flag,
// otherwise a uniformly chosen low-order mantissa bit (low-magnitude
// error).
func EmulatedDistribution() BitDistribution {
	const (
		pHigh  = 0.50
		pSign  = 0.05
		highLo = 42 // upper-mantissa cluster: bits 42..51
		lowHi  = 12 // low-order cluster: bits 0..11
	)
	var w [WordBits]float64
	for bit := highLo; bit < 52; bit++ {
		w[bit] = pHigh / float64(52-highLo)
	}
	w[63] = pSign
	for bit := 0; bit < lowHi; bit++ {
		w[bit] = (1 - pHigh - pSign) / float64(lowHi)
	}
	return NewBitDistribution("emulated", w)
}

// UniformDistribution returns a uniform distribution over all word bits,
// useful for the "different fault models" sensitivity study (Ch. 7).
func UniformDistribution() BitDistribution {
	var w [WordBits]float64
	for i := range w {
		w[i] = 1
	}
	return NewBitDistribution("uniform", w)
}

// LowOrderDistribution returns a distribution restricted to the mantissa's
// low 16 bits: small-magnitude, nearly unbiased noise. This is the most
// benign fault model and a useful ablation endpoint.
func LowOrderDistribution() BitDistribution {
	var w [WordBits]float64
	for i := 0; i < 16; i++ {
		w[i] = 1
	}
	return NewBitDistribution("low-order", w)
}

// emulatedDefault caches the default bit distribution: sweeps construct one
// injector per trial, and the distribution (with its bucket table) is
// immutable, so it is built once instead of per NewInjector call.
var emulatedDefault = EmulatedDistribution()

// Injector corrupts FPU results: at LFSR-scheduled intervals it flips one
// bit of the result word, with the bit position drawn from a
// BitDistribution. It is the software equivalent of the paper's
// software-controlled fault injector module on the FPGA, and the default
// FaultModel — uniform rate, independent per-FLOP faults.
type Injector struct {
	rate      float64
	dist      BitDistribution
	rng       *LFSR
	countdown uint64
	injected  uint64
	// gapHi caches the UniformGap range for mean 1/rate: gaps are
	// 1 + Uint64()%gapHi, or a constant 1 when gapHi is 0 (rate ≥ 1).
	gapHi uint64
}

// InjectorOption configures an Injector.
type InjectorOption func(*Injector)

// WithDistribution selects the bit-position distribution (default:
// EmulatedDistribution).
func WithDistribution(d BitDistribution) InjectorOption {
	return func(in *Injector) { in.dist = d }
}

// NewInjector returns an injector that corrupts results at the given
// average rate (faults per floating point operation, in [0, 1]). The gap
// between faults is uniform with mean 1/rate, drawn from an LFSR seeded by
// seed.
func NewInjector(rate float64, seed uint64, opts ...InjectorOption) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in := &Injector{
		rate: rate,
		dist: emulatedDefault,
		rng:  NewLFSR(seed),
	}
	// Precompute the UniformGap range (its mean > 1 branch) so reschedule
	// avoids the division and conversions on every fault.
	if mean := 1 / rate; rate > 0 && mean > 1 {
		in.gapHi = uint64(2*mean) - 1
		if in.gapHi < 1 {
			in.gapHi = 1
		}
	}
	for _, opt := range opts {
		opt(in)
	}
	in.reschedule()
	return in
}

// Name identifies the default fault model.
func (in *Injector) Name() string { return "default" }

// Rate returns the configured faults-per-FLOP rate.
func (in *Injector) Rate() float64 { return in.rate }

// Distribution returns the bit-position distribution in use.
func (in *Injector) Distribution() *BitDistribution { return &in.dist }

// Injected returns how many faults the injector has delivered.
func (in *Injector) Injected() uint64 { return in.injected }

func (in *Injector) reschedule() {
	switch {
	case in.rate <= 0:
		in.countdown = math.MaxUint64
	case in.gapHi == 0: // mean gap ≤ 1: back-to-back faults, no draw
		in.countdown = 1
	default:
		in.countdown = 1 + in.rng.Uint64()%in.gapHi
	}
}

// Fire accounts one operation against the fault schedule and reports
// whether that operation's result is corrupted.
func (in *Injector) Fire() bool {
	if in.countdown == math.MaxUint64 {
		return false
	}
	in.countdown--
	if in.countdown > 0 {
		return false
	}
	in.reschedule()
	in.injected++
	return true
}

// Apply passes one FPU result through the injector. It returns the possibly
// corrupted value and whether a fault was delivered.
func (in *Injector) Apply(v float64) (float64, bool) {
	if !in.Fire() {
		return v, false
	}
	return in.Corrupt(v), true
}

// Corrupt flips one distribution-drawn bit of v.
func (in *Injector) Corrupt(v float64) float64 {
	bit := in.dist.Sample(in.rng.Float64())
	return math.Float64frombits(math.Float64bits(v) ^ (1 << uint(bit)))
}

// SafeOps returns how many upcoming operations are guaranteed fault-free:
// everything before the scheduled countdown expiry.
func (in *Injector) SafeOps() uint64 {
	if in.countdown == math.MaxUint64 {
		return math.MaxUint64
	}
	return in.countdown - 1
}

// ConsumeSafe accounts n fault-free operations against the countdown.
func (in *Injector) ConsumeSafe(n uint64) {
	if in.countdown != math.MaxUint64 {
		in.countdown -= n
	}
}
