package fpu

import (
	"math"
	"testing"
)

// Scalar reference loops: the pre-kernel per-operation code paths the
// batched kernels must reproduce bit for bit.

func scalarDot(u *Unit, a, b []float64) float64 {
	var s float64
	for i := range a {
		s = u.Add(s, u.Mul(a[i], b[i]))
	}
	return s
}

func scalarDotRev(u *Unit, a, b []float64) float64 {
	n := len(b)
	var s float64
	for i := range a {
		s = u.Add(s, u.Mul(a[i], b[n-1-i]))
	}
	return s
}

func scalarAxpy(u *Unit, alpha float64, x, y []float64) {
	for i := range x {
		y[i] = u.Add(y[i], u.Mul(alpha, x[i]))
	}
}

func scalarXpay(u *Unit, x []float64, alpha float64, y []float64) {
	for i := range x {
		y[i] = u.Add(x[i], u.Mul(alpha, y[i]))
	}
}

func scalarSum(u *Unit, x []float64) float64 {
	var s float64
	for i := range x {
		s = u.Add(s, x[i])
	}
	return s
}

func scalarScale(u *Unit, alpha float64, x []float64) {
	for i := range x {
		x[i] = u.Mul(alpha, x[i])
	}
}

func scalarAddVec(u *Unit, a, b, dst []float64) {
	for i := range a {
		dst[i] = u.Add(a[i], b[i])
	}
}

func scalarSubVec(u *Unit, a, b, dst []float64) {
	for i := range a {
		dst[i] = u.Sub(a[i], b[i])
	}
}

func scalarGemv(u *Unit, a []float64, rows, cols int, x, dst []float64) {
	for i := 0; i < rows; i++ {
		dst[i] = scalarDot(u, a[i*cols:(i+1)*cols], x)
	}
}

func scalarNorm2(u *Unit, x []float64) float64 {
	return u.Sqrt(scalarDot(u, x, x))
}

// kernelConfig is one cell of the equivalence sweep.
type kernelConfig struct {
	rate   float64
	single bool
}

func kernelConfigs() []kernelConfig {
	var cfgs []kernelConfig
	for _, rate := range []float64{0, 1e-3, 0.02, 0.3, 1} {
		for _, single := range []bool{false, true} {
			cfgs = append(cfgs, kernelConfig{rate: rate, single: single})
		}
	}
	return cfgs
}

func newTestUnit(c kernelConfig, seed uint64) *Unit {
	opts := []Option{WithFaultRate(c.rate, seed)}
	if c.single {
		opts = append(opts, WithSinglePrecision())
	}
	return New(opts...)
}

// testVec fills deterministic pseudo-random data including negatives.
func testVec(n int, seed uint64) []float64 {
	rng := NewLFSR(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*4 - 2
	}
	return v
}

// checkUnits fails the test when the two units' exact counters diverge.
func checkUnits(t *testing.T, scalar, batched *Unit) {
	t.Helper()
	if s, b := scalar.FLOPs(), batched.FLOPs(); s != b {
		t.Errorf("FLOPs: scalar %d, batched %d", s, b)
	}
	if s, b := scalar.Faults(), batched.Faults(); s != b {
		t.Errorf("Faults: scalar %d, batched %d", s, b)
	}
	for op := OpAdd; op <= OpCmp; op++ {
		if s, b := scalar.OpCount(op), batched.OpCount(op); s != b {
			t.Errorf("OpCount(%v): scalar %d, batched %d", op, s, b)
		}
	}
	si, bi := scalar.Injector(), batched.Injector()
	if (si == nil) != (bi == nil) {
		t.Fatalf("injector presence mismatch")
	}
	if si != nil && si.Injected() != bi.Injected() {
		t.Errorf("Injected: scalar %d, batched %d", si.Injected(), bi.Injected())
	}
}

func checkVec(t *testing.T, name string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: scalar %x (%g), batched %x (%g)",
				name, i, math.Float64bits(want[i]), want[i],
				math.Float64bits(got[i]), got[i])
		}
	}
}

func checkScalar(t *testing.T, name string, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("%s: scalar %x (%g), batched %x (%g)",
			name, math.Float64bits(want), want, math.Float64bits(got), got)
	}
}

var kernelSizes = []int{0, 1, 2, 3, 5, 17, 64, 257}

// TestKernelsBitIdentical drives every batched kernel and its scalar
// reference on identically seeded units and demands bitwise-equal outputs
// and identical FLOP/fault/injection counters across fault rates, sizes,
// and both precisions.
func TestKernelsBitIdentical(t *testing.T) {
	for _, cfg := range kernelConfigs() {
		for _, n := range kernelSizes {
			seed := uint64(n)*1009 + uint64(cfg.rate*1000) + 5
			a := testVec(n, seed)
			b := testVec(n, seed+1)
			alpha := 1.37

			su := newTestUnit(cfg, seed)
			bu := newTestUnit(cfg, seed)
			checkScalar(t, "Dot", scalarDot(su, a, b), bu.Dot(a, b))
			checkScalar(t, "DotRev", scalarDotRev(su, a, b), bu.DotRev(a, b))
			checkScalar(t, "Sum", scalarSum(su, a), bu.Sum(a))
			checkScalar(t, "Norm2", scalarNorm2(su, a), bu.Norm2(a))

			ys := append([]float64(nil), b...)
			yb := append([]float64(nil), b...)
			scalarAxpy(su, alpha, a, ys)
			bu.Axpy(alpha, a, yb)
			checkVec(t, "Axpy", ys, yb)

			copy(ys, b)
			copy(yb, b)
			scalarXpay(su, a, alpha, ys)
			bu.Xpay(a, alpha, yb)
			checkVec(t, "Xpay", ys, yb)

			xs := append([]float64(nil), a...)
			xb := append([]float64(nil), a...)
			scalarScale(su, alpha, xs)
			bu.Scale(alpha, xb)
			checkVec(t, "Scale", xs, xb)

			ds := make([]float64, n)
			db := make([]float64, n)
			scalarAddVec(su, a, b, ds)
			bu.AddVec(a, b, db)
			checkVec(t, "AddVec", ds, db)
			scalarSubVec(su, a, b, ds)
			bu.SubVec(a, b, db)
			checkVec(t, "SubVec", ds, db)

			checkUnits(t, su, bu)
		}
	}
}

// TestGemvBitIdentical covers the matrix-vector kernel separately so the
// row-major layout and per-row fault hand-off are exercised.
func TestGemvBitIdentical(t *testing.T) {
	for _, cfg := range kernelConfigs() {
		for _, dims := range [][2]int{{1, 1}, {3, 5}, {16, 16}, {40, 7}} {
			rows, cols := dims[0], dims[1]
			seed := uint64(rows*100+cols) + uint64(cfg.rate*10000)
			a := testVec(rows*cols, seed)
			x := testVec(cols, seed+1)

			su := newTestUnit(cfg, seed)
			bu := newTestUnit(cfg, seed)
			ds := make([]float64, rows)
			db := make([]float64, rows)
			scalarGemv(su, a, rows, cols, x, ds)
			bu.Gemv(a, rows, cols, x, db)
			checkVec(t, "Gemv", ds, db)
			checkUnits(t, su, bu)
		}
	}
}

// TestKernelsInterleaveScalarOps checks that the fault schedule stays
// aligned when batched kernels and plain scalar FPU calls are mixed in one
// stream, the way solver control loops actually use a Unit.
func TestKernelsInterleaveScalarOps(t *testing.T) {
	for _, cfg := range kernelConfigs() {
		const n = 29
		a := testVec(n, 11)
		b := testVec(n, 12)
		su := newTestUnit(cfg, 99)
		bu := newTestUnit(cfg, 99)

		var sAcc, bAcc float64
		for round := 0; round < 20; round++ {
			sAcc = su.Add(sAcc, scalarDot(su, a, b))
			bAcc = bu.Add(bAcc, bu.Dot(a, b))
			if su.Less(sAcc, 1) != bu.Less(bAcc, 1) {
				t.Fatalf("round %d: compare diverged", round)
			}
			sAcc = su.Mul(sAcc, 0.5)
			bAcc = bu.Mul(bAcc, 0.5)
			ys := append([]float64(nil), b...)
			yb := append([]float64(nil), b...)
			scalarAxpy(su, sAcc, a, ys)
			bu.Axpy(bAcc, a, yb)
			checkVec(t, "interleaved Axpy", ys, yb)
			sAcc = su.Add(sAcc, scalarSum(su, ys))
			bAcc = bu.Add(bAcc, bu.Sum(yb))
			checkScalar(t, "interleaved acc", sAcc, bAcc)
		}
		checkUnits(t, su, bu)
	}
}

// TestKernelsNilAndReliableUnits pins the exact-arithmetic paths: a nil
// *Unit and an injector-free unit must both equal the plain Go loops.
func TestKernelsNilAndReliableUnits(t *testing.T) {
	const n = 41
	a := testVec(n, 3)
	b := testVec(n, 4)
	var nilUnit *Unit
	rel := New()

	var want float64
	for i := range a {
		want += a[i] * b[i]
	}
	checkScalar(t, "nil Dot", want, nilUnit.Dot(a, b))
	checkScalar(t, "reliable Dot", want, rel.Dot(a, b))
	if got := rel.FLOPs(); got != 2*n {
		t.Errorf("reliable Dot FLOPs = %d, want %d", got, 2*n)
	}
	if got := nilUnit.FLOPs(); got != 0 {
		t.Errorf("nil Dot FLOPs = %d, want 0", got)
	}
	if got := rel.OpCount(OpMul); got != n {
		t.Errorf("reliable Dot mul count = %d, want %d", got, n)
	}
}

// TestKernelEnergyBulkCharge pins the documented accounting contract:
// energy is charged as opEnergy×n per kernel run.
func TestKernelEnergyBulkCharge(t *testing.T) {
	u := New(WithOpEnergy(0.25))
	x := testVec(100, 8)
	u.Sum(x)
	if got, want := u.Energy(), 0.25*100; got != want {
		t.Errorf("Energy = %g, want %g", got, want)
	}
}

// --- Benchmarks: per-FLOP scalar dispatch vs batched kernels. ---

const benchN = 1024

func benchData() ([]float64, []float64) {
	return testVec(benchN, 1), testVec(benchN, 2)
}

func BenchmarkDotScalar(b *testing.B) {
	x, y := benchData()
	u := New(WithFaultRate(1e-3, 7))
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		scalarDot(u, x, y)
	}
}

func BenchmarkDotBatched(b *testing.B) {
	x, y := benchData()
	u := New(WithFaultRate(1e-3, 7))
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		u.Dot(x, y)
	}
}

func BenchmarkAxpyScalar(b *testing.B) {
	x, y := benchData()
	u := New(WithFaultRate(1e-3, 7))
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		scalarAxpy(u, 1.0001, x, y)
	}
}

func BenchmarkAxpyBatched(b *testing.B) {
	x, y := benchData()
	u := New(WithFaultRate(1e-3, 7))
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		u.Axpy(1.0001, x, y)
	}
}

func BenchmarkGemvScalar(b *testing.B) {
	const rows, cols = 64, 64
	a := testVec(rows*cols, 1)
	x := testVec(cols, 2)
	dst := make([]float64, rows)
	u := New(WithFaultRate(1e-3, 7))
	for i := 0; i < b.N; i++ {
		scalarGemv(u, a, rows, cols, x, dst)
	}
}

func BenchmarkGemvBatched(b *testing.B) {
	const rows, cols = 64, 64
	a := testVec(rows*cols, 1)
	x := testVec(cols, 2)
	dst := make([]float64, rows)
	u := New(WithFaultRate(1e-3, 7))
	for i := 0; i < b.N; i++ {
		u.Gemv(a, rows, cols, x, dst)
	}
}
