package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := DenseOf([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Errorf("Set failed")
	}
	row := m.Row(2)
	if row[0] != 5 || row[1] != 6 {
		t.Errorf("Row(2) = %v", row)
	}
}

func TestDenseClone(t *testing.T) {
	m := DenseOf([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestDenseTranspose(t *testing.T) {
	m := DenseOf([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape = %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := DenseOf([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVec(nil, []float64{1, 1}, dst)
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("MulVec = %v", dst)
	}
}

func TestTMulVecMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randMat(rng, r, c)
		x := randVec(rng, r)
		got := make([]float64, c)
		m.TMulVec(nil, x, got)
		want := make([]float64, c)
		m.T().MulVec(nil, x, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: TMulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMatMul(t *testing.T) {
	a := DenseOf([][]float64{{1, 2}, {3, 4}})
	b := DenseOf([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(nil, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestGramMatchesTrsposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 7, 4)
	got := a.Gram(nil)
	want := a.T().Mul(nil, a)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
			t.Fatalf("Gram mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Errorf("Eye(%d,%d) = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := DenseOf([][]float64{{1, -7}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestShapePanics(t *testing.T) {
	m := NewDense(2, 3)
	for name, fn := range map[string]func(){
		"MulVec":   func() { m.MulVec(nil, make([]float64, 2), make([]float64, 2)) },
		"TMulVec":  func() { m.TMulVec(nil, make([]float64, 3), make([]float64, 3)) },
		"Mul":      func() { m.Mul(nil, NewDense(2, 2)) },
		"NewDense": func() { NewDense(0, 1) },
		"DenseOf":  func() { DenseOf([][]float64{{1, 2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad shape must panic", name)
				}
			}()
			fn()
		}()
	}
}
