package linalg

import "robustify/internal/fpu"

// Operator is a linear operator with forward and transpose matrix-vector
// products evaluated on an FPU unit. Dense and LowerBand both satisfy it,
// letting the least-squares machinery work on dense systems and on the
// banded systems of the IIR transformation alike.
type Operator interface {
	// Dims returns the operator's (rows, cols).
	Dims() (rows, cols int)
	// MulVec sets dst ← A·x on u (dst must not alias x).
	MulVec(u *fpu.Unit, x, dst []float64)
	// TMulVec sets dst ← Aᵀ·x on u (dst must not alias x).
	TMulVec(u *fpu.Unit, x, dst []float64)
}

// Dims implements Operator.
func (m *Dense) Dims() (int, int) { return m.Rows, m.Cols }

// Dims implements Operator.
func (b *LowerBand) Dims() (int, int) { return b.N, b.N }

var (
	_ Operator = (*Dense)(nil)
	_ Operator = (*LowerBand)(nil)
)

// PowerEstimate returns an estimate of the largest eigenvalue of AᵀA by
// power iteration with exact arithmetic. It is used as a reliable setup
// step to pick stable gradient step sizes (the Lipschitz constant of the
// least-squares gradient).
//
//lint:fpu-exempt fault-free setup: the Lipschitz estimate happens before the simulated machine runs (note the nil units throughout)
func PowerEstimate(a Operator, iters int) float64 {
	rows, cols := a.Dims()
	x := make([]float64, cols)
	tmp := make([]float64, rows)
	y := make([]float64, cols)
	// Deterministic, generic start vector with energy in all coordinates.
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	lambda := 0.0
	for k := 0; k < iters; k++ {
		a.MulVec(nil, x, tmp)
		a.TMulVec(nil, tmp, y)
		lambda = Norm2(nil, y)
		if lambda == 0 {
			return 0
		}
		Scale(nil, 1/lambda, y)
		copy(x, y)
	}
	return lambda
}
