package linalg

import (
	"math"
	"testing"
)

func TestPowerEstimateDiagonal(t *testing.T) {
	// AᵀA of diag(5, 2, 1) has top eigenvalue 25.
	a := DenseOf([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}})
	if got := PowerEstimate(a, 50); math.Abs(got-25) > 1e-6 {
		t.Errorf("PowerEstimate = %v, want 25", got)
	}
}

func TestPowerEstimateZero(t *testing.T) {
	if got := PowerEstimate(NewDense(3, 3), 10); got != 0 {
		t.Errorf("PowerEstimate(0) = %v", got)
	}
}

func TestPowerEstimateBand(t *testing.T) {
	// Identity band: all eigenvalues 1.
	b := NewLowerBand(5, []float64{1})
	if got := PowerEstimate(b, 20); math.Abs(got-1) > 1e-9 {
		t.Errorf("PowerEstimate(I) = %v, want 1", got)
	}
}

func TestOperatorDims(t *testing.T) {
	var op Operator = NewDense(3, 2)
	r, c := op.Dims()
	if r != 3 || c != 2 {
		t.Errorf("Dense dims = %d,%d", r, c)
	}
	op = NewLowerBand(4, []float64{1})
	r, c = op.Dims()
	if r != 4 || c != 4 {
		t.Errorf("Band dims = %d,%d", r, c)
	}
}
