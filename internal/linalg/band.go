package linalg

import "robustify/internal/fpu"

// LowerBand is an n×n lower-banded Toeplitz matrix with constant diagonals,
// the shape of the A and B matrices in the paper's variational IIR
// formulation (Eq 4.1/4.2): row t holds coefficients c[0..k] on columns
// t, t−1, …, t−k.
type LowerBand struct {
	N     int
	Coeff []float64 // Coeff[d] is the value on subdiagonal d (d=0 is main).
}

// NewLowerBand builds an n×n banded Toeplitz matrix from coefficients.
func NewLowerBand(n int, coeff []float64) *LowerBand {
	if n <= 0 || len(coeff) == 0 || len(coeff) > n {
		panic(ErrShape)
	}
	c := make([]float64, len(coeff))
	copy(c, coeff)
	return &LowerBand{N: n, Coeff: c}
}

// At returns the (i, j) element.
func (b *LowerBand) At(i, j int) float64 {
	d := i - j
	if d < 0 || d >= len(b.Coeff) {
		return 0
	}
	return b.Coeff[d]
}

// Dense expands the band into a dense matrix (for tests and small problems).
func (b *LowerBand) Dense() *Dense {
	m := NewDense(b.N, b.N)
	for i := 0; i < b.N; i++ {
		for d, c := range b.Coeff {
			if j := i - d; j >= 0 {
				m.Set(i, j, c)
			}
		}
	}
	return m
}

// MulVec sets dst ← B·x on u. dst must not alias x. Row i reads
// x[i], x[i−1], …, so each row is one batched reverse dot.
func (b *LowerBand) MulVec(u *fpu.Unit, x, dst []float64) {
	if len(x) != b.N || len(dst) != b.N {
		panic(ErrShape)
	}
	for i := 0; i < b.N; i++ {
		m := len(b.Coeff)
		if m > i+1 {
			m = i + 1
		}
		dst[i] = u.DotRev(b.Coeff[:m], x[i+1-m:i+1])
	}
}

// TMulVec sets dst ← Bᵀ·x on u. dst must not alias x. Column j reads
// x[j], x[j+1], …, so each column is one batched forward dot.
func (b *LowerBand) TMulVec(u *fpu.Unit, x, dst []float64) {
	if len(x) != b.N || len(dst) != b.N {
		panic(ErrShape)
	}
	for j := 0; j < b.N; j++ {
		m := len(b.Coeff)
		if m > b.N-j {
			m = b.N - j
		}
		dst[j] = u.Dot(b.Coeff[:m], x[j:j+m])
	}
}
