package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestLowerBandAt(t *testing.T) {
	b := NewLowerBand(4, []float64{1, 2, 3})
	want := [][]float64{
		{1, 0, 0, 0},
		{2, 1, 0, 0},
		{3, 2, 1, 0},
		{0, 3, 2, 1},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if b.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, b.At(i, j), want[i][j])
			}
		}
	}
}

func TestLowerBandDense(t *testing.T) {
	b := NewLowerBand(5, []float64{1, -0.5})
	d := b.Dense()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if d.At(i, j) != b.At(i, j) {
				t.Errorf("Dense(%d,%d) = %v, want %v", i, j, d.At(i, j), b.At(i, j))
			}
		}
	}
}

func TestLowerBandMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		k := 1 + rng.Intn(n)
		coeff := randVec(rng, k)
		b := NewLowerBand(n, coeff)
		d := b.Dense()
		x := randVec(rng, n)
		got := make([]float64, n)
		b.MulVec(nil, x, got)
		want := make([]float64, n)
		d.MulVec(nil, x, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
		b.TMulVec(nil, x, got)
		d.T().MulVec(nil, x, want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: TMulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLowerBandShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"too wide": func() { NewLowerBand(2, []float64{1, 2, 3}) },
		"empty":    func() { NewLowerBand(2, nil) },
		"badN":     func() { NewLowerBand(0, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLowerBandCopiesCoeff(t *testing.T) {
	coeff := []float64{1, 2}
	b := NewLowerBand(3, coeff)
	coeff[0] = 99
	if b.Coeff[0] != 1 {
		t.Error("NewLowerBand must copy coefficients")
	}
}
