package linalg

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
)

// residual returns ||A x - b||_2 computed reliably.
func residual(a *Dense, x, b []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(nil, x, r)
	Sub(nil, r, b, r)
	return Norm2(nil, r)
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m, n := 4+rng.Intn(10), 2+rng.Intn(4)
		if m < n {
			m, n = n, m
		}
		a := randMat(rng, m, n)
		f, err := QR(nil, a)
		if err != nil {
			t.Fatalf("QR: %v", err)
		}
		qr := f.Q(nil).Mul(nil, f.R())
		for i := range a.Data {
			if math.Abs(qr.Data[i]-a.Data[i]) > 1e-10 {
				t.Fatalf("trial %d: QR reconstruction off at %d: %v vs %v",
					trial, i, qr.Data[i], a.Data[i])
			}
		}
	}
}

func TestQROrthonormalQ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 12, 5)
	f, err := QR(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	q := f.Q(nil)
	qtq := q.Gram(nil)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq.At(i, j)-want) > 1e-10 {
				t.Fatalf("QtQ(%d,%d) = %v", i, j, qtq.At(i, j))
			}
		}
	}
}

func TestQRSolveLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 20, 6)
	xTrue := randVec(rng, 6)
	b := make([]float64, 20)
	a.MulVec(nil, xTrue, b)
	f, err := QR(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if re := RelErr(x, xTrue); re > 1e-10 {
		t.Errorf("QR solve relative error = %v", re)
	}
}

func TestQRRejectsWideMatrix(t *testing.T) {
	if _, err := QR(nil, NewDense(2, 5)); err == nil {
		t.Error("QR of wide matrix must fail")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 15, 5)
	spd := a.Gram(nil) // A^T A is SPD w.p. 1
	xTrue := randVec(rng, 5)
	b := make([]float64, 5)
	spd.MulVec(nil, xTrue, b)
	f, err := Cholesky(nil, spd)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if re := RelErr(x, xTrue); re > 1e-8 {
		t.Errorf("Cholesky solve relative error = %v", re)
	}
	// L L^T must reconstruct.
	l := f.L()
	llt := l.Mul(nil, l.T())
	for i := range spd.Data {
		if math.Abs(llt.Data[i]-spd.Data[i]) > 1e-8 {
			t.Fatalf("LL^T reconstruction off at %d", i)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := DenseOf([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(nil, m); err == nil {
		t.Error("Cholesky of indefinite matrix must fail")
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		m, n := 5+rng.Intn(10), 2+rng.Intn(4)
		if m < n {
			m, n = n, m
		}
		a := randMat(rng, m, n)
		f, err := SVD(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild U diag(S) V^T.
		us := f.U.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				us.Set(i, j, us.At(i, j)*f.S[j])
			}
		}
		rec := us.Mul(nil, f.V.T())
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-9 {
				t.Fatalf("trial %d: SVD reconstruction off at %d: %v vs %v",
					trial, i, rec.Data[i], a.Data[i])
			}
		}
		// Singular values sorted descending and non-negative.
		for j := 1; j < n; j++ {
			if f.S[j] > f.S[j-1] {
				t.Fatalf("singular values not sorted: %v", f.S)
			}
			if f.S[j] < 0 {
				t.Fatalf("negative singular value: %v", f.S)
			}
		}
	}
}

func TestSVDSolveMatchesQR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 25, 6)
	b := randVec(rng, 25)
	sf, err := SVD(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := sf.Solve(nil, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := QR(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := qf.Solve(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if re := RelErr(xs, xq); re > 1e-8 {
		t.Errorf("SVD and QR least-squares solutions differ: %v", re)
	}
}

func TestSVDCond(t *testing.T) {
	// diag(4, 2) has condition number 2.
	a := DenseOf([][]float64{{4, 0}, {0, 2}})
	f, err := SVD(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Cond()-2) > 1e-10 {
		t.Errorf("Cond = %v, want 2", f.Cond())
	}
}

func TestFactorizationsUnstableUnderFaults(t *testing.T) {
	// The paper's premise (Ch. 4.1): direct decompositions are
	// "disastrously unstable" under FPU noise. Check that at a 1% fault
	// rate at least one trial produces a solution far from truth.
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 30, 6)
	xTrue := randVec(rng, 6)
	b := make([]float64, 30)
	a.MulVec(nil, xTrue, b)
	bad := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+1)))
		f, err := QR(u, a)
		if err != nil {
			bad++
			continue
		}
		x, err := f.Solve(u, b)
		if err != nil || !AllFinite(x) || RelErr(x, xTrue) > 1e-3 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("QR under 1% faults never degraded; fault plumbing broken?")
	}
}

func TestSolveUpper(t *testing.T) {
	r := DenseOf([][]float64{{2, 1}, {0, 4}})
	x, err := SolveUpper(nil, r, []float64{5, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 4 x1 = 8 -> x1 = 2; 2 x0 + 1*2 = 5 -> x0 = 1.5
	if math.Abs(x[0]-1.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("SolveUpper = %v", x)
	}
	xt, err := SolveUpperT(nil, r, []float64{2, 9})
	if err != nil {
		t.Fatal(err)
	}
	// R^T x = y: 2 x0 = 2 -> x0=1 ; 1*1 + 4 x1 = 9 -> x1 = 2
	if math.Abs(xt[0]-1) > 1e-12 || math.Abs(xt[1]-2) > 1e-12 {
		t.Errorf("SolveUpperT = %v", xt)
	}
}

func TestSolveUpperSingular(t *testing.T) {
	r := DenseOf([][]float64{{1, 1}, {0, 0}})
	if _, err := SolveUpper(nil, r, []float64{1, 1}); err == nil {
		t.Error("singular upper solve must fail")
	}
	if _, err := SolveUpperT(nil, r, []float64{1, 1}); err == nil {
		t.Error("singular transposed solve must fail")
	}
}
