package linalg

import "robustify/internal/fpu"

// CholFactor holds the lower-triangular Cholesky factor L of a symmetric
// positive definite matrix M = L·Lᵀ.
type CholFactor struct {
	l *Dense
}

// Cholesky factors the SPD matrix m on u. It returns ErrSingular when a
// pivot is non-positive (the matrix is not numerically positive definite —
// under fault injection this happens routinely, which is exactly the
// fragility the paper's Fig 6.6 baseline exhibits).
func Cholesky(u *fpu.Unit, m *Dense) (*CholFactor, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, ErrShape
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d = u.Sub(d, u.Mul(ljk, ljk))
		}
		if !(d > 0) { // catches d <= 0 and NaN
			return nil, ErrSingular
		}
		ljj := u.Sqrt(d)
		if !(ljj > 0) {
			return nil, ErrSingular
		}
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s = u.Sub(s, u.Mul(l.At(i, k), l.At(j, k)))
			}
			l.Set(i, j, u.Div(s, ljj))
		}
	}
	return &CholFactor{l: l}, nil
}

// L returns the lower-triangular factor.
func (f *CholFactor) L() *Dense { return f.l.Clone() }

// Solve solves M·x = b on u given M = L·Lᵀ.
func (f *CholFactor) Solve(u *fpu.Unit, b []float64) ([]float64, error) {
	n := f.l.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s = u.Sub(s, u.Mul(f.l.At(i, j), y[j]))
		}
		d := f.l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		y[i] = u.Div(s, d)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s = u.Sub(s, u.Mul(f.l.At(j, i), x[j]))
		}
		d := f.l.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = u.Div(s, d)
	}
	return x, nil
}
