package linalg

import (
	"math"

	"robustify/internal/fpu"
)

// SVDFactor holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// A m×n (m ≥ n), U m×n with orthonormal columns, V n×n orthogonal.
type SVDFactor struct {
	U *Dense
	S []float64
	V *Dense
}

// svdMaxSweeps bounds the one-sided Jacobi iteration. 30 sweeps converge
// any well-posed double-precision problem; under fault injection the sweep
// limit keeps the factorization from spinning forever.
const svdMaxSweeps = 30

// SVD computes a thin SVD of A (m×n, m ≥ n) on u using one-sided Jacobi
// rotations (Hestenes method): columns of a working copy of A are rotated
// pairwise until mutually orthogonal; their norms are the singular values.
func SVD(u *fpu.Unit, a *Dense) (*SVDFactor, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, ErrShape
	}
	w := a.Clone() // working columns, becomes U·diag(S)
	v := Eye(n)
	const tol = 1e-14
	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2×2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp := w.At(i, p)
					wq := w.At(i, q)
					app = u.Add(app, u.Mul(wp, wp))
					aqq = u.Add(aqq, u.Mul(wq, wq))
					apq = u.Add(apq, u.Mul(wp, wq))
				}
				//lint:fpu-exempt convergence-threshold scaling is reliable control: the Gram entries themselves are computed on u
				if abs(apq) <= tol*u.Sqrt(u.Mul(app, aqq)) {
					continue
				}
				// Jacobi rotation annihilating apq.
				tau := u.Div(u.Sub(aqq, app), u.Mul(2, apq))
				var t float64
				if tau >= 0 {
					t = u.Div(1, u.Add(tau, u.Sqrt(u.Add(1, u.Mul(tau, tau)))))
				} else {
					t = u.Div(-1, u.Add(-tau, u.Sqrt(u.Add(1, u.Mul(tau, tau)))))
				}
				c := u.Div(1, u.Sqrt(u.Add(1, u.Mul(t, t))))
				s := u.Mul(c, t)
				rotateCols(u, w, p, q, c, s)
				rotateCols(u, v, p, q, c, s)
				rotated = true
			}
		}
		if !rotated {
			break
		}
	}
	// Extract singular values and normalize U's columns.
	s := make([]float64, n)
	uMat := NewDense(m, n)
	for j := 0; j < n; j++ {
		var sq float64
		for i := 0; i < m; i++ {
			wij := w.At(i, j)
			sq = u.Add(sq, u.Mul(wij, wij))
		}
		s[j] = u.Sqrt(sq)
		if s[j] > 0 {
			inv := u.Div(1, s[j])
			for i := 0; i < m; i++ {
				uMat.Set(i, j, u.Mul(w.At(i, j), inv))
			}
		}
	}
	// Sort singular values descending (reliable control path).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	f := &SVDFactor{U: NewDense(m, n), S: make([]float64, n), V: NewDense(n, n)}
	for newJ, oldJ := range order {
		f.S[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			f.U.Set(i, newJ, uMat.At(i, oldJ))
		}
		for i := 0; i < n; i++ {
			f.V.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return f, nil
}

// rotateCols applies the Givens rotation [c -s; s c] to columns p and q.
func rotateCols(u *fpu.Unit, m *Dense, p, q int, c, s float64) {
	for i := 0; i < m.Rows; i++ {
		mp := m.At(i, p)
		mq := m.At(i, q)
		m.Set(i, p, u.Sub(u.Mul(c, mp), u.Mul(s, mq)))
		m.Set(i, q, u.Add(u.Mul(s, mp), u.Mul(c, mq)))
	}
}

// Solve returns the minimum-norm least-squares solution of A·x = b on u via
// the pseudo-inverse x = V·diag(1/S)·Uᵀ·b. Singular values below rcond
// times the largest are treated as zero.
func (f *SVDFactor) Solve(u *fpu.Unit, b []float64, rcond float64) ([]float64, error) {
	m, n := f.U.Rows, f.V.Rows
	if len(b) != m {
		return nil, ErrShape
	}
	if rcond <= 0 {
		rcond = 1e-13
	}
	//lint:fpu-exempt rank-cutoff selection is reliable control; the solve itself (TMulVec/Div/MulVec) runs on u
	cutoff := rcond * f.S[0]
	// c ← Uᵀ b, scaled by 1/s.
	c := make([]float64, n)
	f.U.TMulVec(u, b, c)
	for j := 0; j < n; j++ {
		if f.S[j] > cutoff {
			c[j] = u.Div(c[j], f.S[j])
		} else {
			c[j] = 0
		}
	}
	x := make([]float64, n)
	f.V.MulVec(u, c, x)
	return x, nil
}

// Cond returns the 2-norm condition number estimate s_max/s_min (reliable
// control path).
//
//lint:fpu-exempt diagnostic metric over already-computed singular values; not part of the simulated solve
func (f *SVDFactor) Cond() float64 {
	smin := f.S[len(f.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return f.S[0] / smin
}
