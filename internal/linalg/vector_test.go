package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	got := Dot(nil, []float64{1, 2, 3}, []float64{4, 5, 6})
	if got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths must panic")
		}
	}()
	Dot(nil, []float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(nil, 2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestScaleNorm(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(nil, x); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := SqNorm2(nil, x); got != 25 {
		t.Errorf("SqNorm2 = %v, want 25", got)
	}
	Scale(nil, 2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Errorf("Scale = %v", x)
	}
}

func TestAddSub(t *testing.T) {
	a, b := []float64{5, 7}, []float64{2, 3}
	dst := make([]float64, 2)
	Sub(nil, a, b, dst)
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("Sub = %v", dst)
	}
	Add(nil, a, b, dst)
	if dst[0] != 7 || dst[1] != 10 {
		t.Errorf("Add = %v", dst)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite slice misreported")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not caught")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not caught")
	}
	if !AllFinite(nil) {
		t.Error("empty slice should be finite")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("RelErr identical = %v", got)
	}
	got := RelErr([]float64{2, 0}, []float64{1, 0})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("RelErr = %v, want 1", got)
	}
	if got := RelErr([]float64{3, 4}, []float64{0, 0}); got != 5 {
		t.Errorf("RelErr vs zero = %v, want absolute 5", got)
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(n uint8) bool {
		rng := rand.New(rand.NewSource(int64(n)))
		k := int(n%16) + 1
		a, b := randVec(rng, k), randVec(rng, k)
		return math.Abs(Dot(nil, a, b)-Dot(nil, b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
