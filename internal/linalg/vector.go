// Package linalg provides dense and banded linear algebra kernels whose
// every floating point operation flows through an fpu.Unit, so the same code
// serves as a reliable reference (nil unit) and as a fault-exposed kernel on
// a stochastic processor.
//
// The package is deliberately small and allocation-conscious: kernels write
// into caller-provided destinations wherever a natural destination exists.
package linalg

import (
	"errors"
	"math"

	"robustify/internal/fpu"
)

// ErrShape is returned when operand dimensions do not conform.
var ErrShape = errors.New("linalg: dimension mismatch")

// Dot returns aᵀb computed on u's batched kernel.
func Dot(u *fpu.Unit, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	return u.Dot(a, b)
}

// Axpy sets y ← y + alpha·x on u's batched kernel.
func Axpy(u *fpu.Unit, alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	u.Axpy(alpha, x, y)
}

// Xpay sets y ← x + alpha·y on u's batched kernel (the CG direction
// recurrence).
func Xpay(u *fpu.Unit, x []float64, alpha float64, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	u.Xpay(x, alpha, y)
}

// Scale sets x ← alpha·x on u's batched kernel.
func Scale(u *fpu.Unit, alpha float64, x []float64) {
	u.Scale(alpha, x)
}

// Sum returns Σ x[i] computed on u's batched kernel.
func Sum(u *fpu.Unit, x []float64) float64 {
	return u.Sum(x)
}

// Norm2 returns ‖x‖₂ computed on u's batched kernel.
func Norm2(u *fpu.Unit, x []float64) float64 {
	return u.Norm2(x)
}

// SqNorm2 returns ‖x‖₂² computed on u.
func SqNorm2(u *fpu.Unit, x []float64) float64 {
	return Dot(u, x, x)
}

// Sub sets dst ← a − b on u's batched kernel.
func Sub(u *fpu.Unit, a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic(ErrShape)
	}
	u.SubVec(a, b, dst)
}

// Add sets dst ← a + b on u's batched kernel.
func Add(u *fpu.Unit, a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic(ErrShape)
	}
	u.AddVec(a, b, dst)
}

// Copy copies src into dst (no FLOPs).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(ErrShape)
	}
	copy(dst, src)
}

// Fill sets every element of x to v (no FLOPs).
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// AllFinite reports whether every element of x is finite. This is a
// reliable control-path check (no FPU ops).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// RelErr returns ‖a−b‖₂ / ‖b‖₂ computed reliably (control path / metrics).
// A zero-norm b falls back to the absolute error.
//
//lint:fpu-exempt error metrics are measured outside the simulated machine: they score results, they are not part of the experiment
func RelErr(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}
