package linalg

import (
	"errors"

	"robustify/internal/fpu"
)

// ErrSingular is returned when a factorization or solve meets a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// QRFactor holds a Householder QR factorization A = Q·R with A m×n, m ≥ n.
// The factored form stores the Householder vectors below R in-place, as in
// LAPACK's GEQRF.
type QRFactor struct {
	qr   *Dense    // packed R (upper triangle) + Householder vectors
	beta []float64 // Householder scalars
}

// QR factors A (m×n, m ≥ n) on u. A is not modified.
func QR(u *fpu.Unit, a *Dense) (*QRFactor, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, ErrShape
	}
	qr := a.Clone()
	beta := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		var sq float64
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			sq = u.Add(sq, u.Mul(v, v))
		}
		norm := u.Sqrt(sq)
		if norm == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		// v = x + norm·e1, normalized so v[0] = 1.
		qkk := u.Add(qr.At(k, k), norm)
		if qkk == 0 {
			return nil, ErrSingular
		}
		for i := k + 1; i < m; i++ {
			qr.Set(i, k, u.Div(qr.At(i, k), qkk))
		}
		beta[k] = u.Div(qkk, norm)
		qr.Set(k, k, -norm)
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s = u.Add(s, u.Mul(qr.At(i, k), qr.At(i, j)))
			}
			s = u.Mul(s, beta[k])
			qr.Set(k, j, u.Sub(qr.At(k, j), s))
			for i := k + 1; i < m; i++ {
				qr.Set(i, j, u.Sub(qr.At(i, j), u.Mul(s, qr.At(i, k))))
			}
		}
	}
	return &QRFactor{qr: qr, beta: beta}, nil
}

// R returns the upper-triangular factor as a dense n×n matrix.
func (f *QRFactor) R() *Dense {
	n := f.qr.Cols
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// Q returns the thin orthogonal factor Q (m×n) computed on u.
func (f *QRFactor) Q(u *fpu.Unit) *Dense {
	m, n := f.qr.Rows, f.qr.Cols
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	// Apply reflectors in reverse order to the identity.
	for k := n - 1; k >= 0; k-- {
		for j := 0; j < n; j++ {
			s := q.At(k, j)
			for i := k + 1; i < m; i++ {
				s = u.Add(s, u.Mul(f.qr.At(i, k), q.At(i, j)))
			}
			s = u.Mul(s, f.beta[k])
			q.Set(k, j, u.Sub(q.At(k, j), s))
			for i := k + 1; i < m; i++ {
				q.Set(i, j, u.Sub(q.At(i, j), u.Mul(s, f.qr.At(i, k))))
			}
		}
	}
	return q
}

// Solve returns the least-squares solution of A·x = b on u
// (x = R⁻¹·Qᵀ·b).
func (f *QRFactor) Solve(u *fpu.Unit, b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, ErrShape
	}
	// y ← Qᵀ·b by applying reflectors forward.
	y := make([]float64, m)
	copy(y, b)
	for k := 0; k < n; k++ {
		s := y[k]
		for i := k + 1; i < m; i++ {
			s = u.Add(s, u.Mul(f.qr.At(i, k), y[i]))
		}
		s = u.Mul(s, f.beta[k])
		y[k] = u.Sub(y[k], s)
		for i := k + 1; i < m; i++ {
			y[i] = u.Sub(y[i], u.Mul(s, f.qr.At(i, k)))
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s = u.Sub(s, u.Mul(f.qr.At(i, j), x[j]))
		}
		rii := f.qr.At(i, i)
		if rii == 0 {
			return nil, ErrSingular
		}
		x[i] = u.Div(s, rii)
	}
	return x, nil
}

// SolveUpper solves the triangular system R·x = y on u, where R is upper
// triangular n×n and y has length n.
func SolveUpper(u *fpu.Unit, r *Dense, y []float64) ([]float64, error) {
	n := r.Cols
	if r.Rows != n || len(y) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s = u.Sub(s, u.Mul(r.At(i, j), x[j]))
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = u.Div(s, d)
	}
	return x, nil
}

// SolveUpperT solves Rᵀ·x = y on u for upper-triangular R (i.e. a forward
// substitution on the transpose).
func SolveUpperT(u *fpu.Unit, r *Dense, y []float64) ([]float64, error) {
	n := r.Cols
	if r.Rows != n || len(y) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s = u.Sub(s, u.Mul(r.At(j, i), x[j]))
		}
		d := r.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = u.Div(s, d)
	}
	return x, nil
}
