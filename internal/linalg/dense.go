package linalg

import "robustify/internal/fpu"

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(ErrShape)
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// DenseOf builds a matrix from a slice of rows, copying the data.
func DenseOf(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic(ErrShape)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic(ErrShape)
		}
		copy(m.Row(i), row)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix (no FLOPs).
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// MulVec sets dst ← M·x on u. dst must have length Rows and must not alias x.
func (m *Dense) MulVec(u *fpu.Unit, x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(ErrShape)
	}
	u.Gemv(m.Data, m.Rows, m.Cols, x, dst)
}

// TMulVec sets dst ← Mᵀ·x on u. dst must have length Cols and must not
// alias x.
func (m *Dense) TMulVec(u *fpu.Unit, x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(ErrShape)
	}
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		u.Axpy(x[i], m.Row(i), dst)
	}
}

// Mul returns M·B computed on u.
func (m *Dense) Mul(u *fpu.Unit, b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(ErrShape)
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			u.Axpy(mik, b.Row(k), orow)
		}
	}
	return out
}

// Gram returns MᵀM computed on u (the normal-equations matrix).
func (m *Dense) Gram(u *fpu.Unit) *Dense {
	out := NewDense(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			u.Axpy(vi, row, out.Row(i))
		}
	}
	return out
}

// MaxAbs returns the largest absolute element (reliable control-path scan).
func (m *Dense) MaxAbs() float64 {
	var best float64
	for _, v := range m.Data {
		if a := abs(v); a > best {
			best = a
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
