package core

import (
	"fmt"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// PreconditionedLP is the §6.2.1 transformation of an inequality-only
// penalty LP: with A = Q·R (thin QR) and y = R·x, minimize
//
//	c_newᵀ·y + μ·Σ[Q·y − b]₊ᵖ    where Rᵀ·c_new = c,
//
// whose constraint geometry (orthonormal Q) is far better conditioned than
// the original. The factorization and the final back-substitution are
// one-time setup/recovery steps on the reliable path; gradient evaluations
// in y-space run on the stochastic FPU.
type PreconditionedLP struct {
	inner *PenaltyLP
	r     *linalg.Dense
}

var (
	_ Problem        = (*PreconditionedLP)(nil)
	_ Annealable     = (*PreconditionedLP)(nil)
	_ Preconditioned = (*PreconditionedLP)(nil)
)

// Precondition rewrites the inequality-only program lp in QR-preconditioned
// coordinates, with gradients evaluated on u. The inequality matrix must be
// tall (rows ≥ cols) and of full column rank.
func Precondition(u *fpu.Unit, lp LinearProgram, kind PenaltyKind, mu float64) (*PreconditionedLP, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	if lp.Eq != nil {
		return nil, fmt.Errorf("%w: preconditioning requires an inequality-only program", ErrBadProgram)
	}
	if lp.Ineq == nil {
		return nil, fmt.Errorf("%w: preconditioning requires constraints", ErrBadProgram)
	}
	// Reliable setup: A = Q R.
	f, err := linalg.QR(nil, lp.Ineq)
	if err != nil {
		return nil, fmt.Errorf("core: preconditioner QR: %w", err)
	}
	q := f.Q(nil)
	r := f.R()
	// Rᵀ c_new = c.
	cNew, err := linalg.SolveUpperT(nil, r, lp.C)
	if err != nil {
		return nil, fmt.Errorf("core: preconditioner objective transform: %w", err)
	}
	b := make([]float64, len(lp.BIneq))
	copy(b, lp.BIneq)
	inner, err := NewPenaltyLP(u, LinearProgram{C: cNew, Ineq: q, BIneq: b}, kind, mu)
	if err != nil {
		return nil, err
	}
	return &PreconditionedLP{inner: inner, r: r}, nil
}

// Dim implements Problem.
func (p *PreconditionedLP) Dim() int { return p.inner.Dim() }

// Grad implements Problem in the preconditioned coordinates.
func (p *PreconditionedLP) Grad(y, grad []float64) { p.inner.Grad(y, grad) }

// Value implements Problem (reliable evaluation in y-space).
func (p *PreconditionedLP) Value(y []float64) float64 { return p.inner.Value(y) }

// FPU returns the stochastic unit gradients are evaluated on.
func (p *PreconditionedLP) FPU() *fpu.Unit { return p.inner.FPU() }

// PenaltyWeight returns the penalty multiplier μ.
func (p *PreconditionedLP) PenaltyWeight() float64 { return p.inner.PenaltyWeight() }

// SetPenaltyWeight replaces the multiplier.
func (p *PreconditionedLP) SetPenaltyWeight(mu float64) { p.inner.SetPenaltyWeight(mu) }

// AnnealParam implements Annealable: the annealed parameter is μ.
func (p *PreconditionedLP) AnnealParam() float64 { return p.inner.AnnealParam() }

// SetAnnealParam implements Annealable.
func (p *PreconditionedLP) SetAnnealParam(mu float64) { p.inner.SetAnnealParam(mu) }

// InitialY implements Preconditioned: y₀ = R·x₀ (reliable setup).
func (p *PreconditionedLP) InitialY(x0 []float64) []float64 {
	y := make([]float64, len(x0))
	p.r.MulVec(nil, x0, y)
	return y
}

// Recover implements Preconditioned: solve R·x = y reliably.
func (p *PreconditionedLP) Recover(y []float64) ([]float64, error) {
	return linalg.SolveUpper(nil, p.r, y)
}
