package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"robustify/internal/linalg"
)

// boxLP builds min cᵀx s.t. lo ≤ x ≤ hi expressed as inequalities.
func boxLP(c []float64, lo, hi float64) LinearProgram {
	n := len(c)
	ineq := linalg.NewDense(2*n, n)
	b := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ineq.Set(i, i, 1)
		b[i] = hi
		ineq.Set(n+i, i, -1)
		b[n+i] = -lo
	}
	return LinearProgram{C: c, Ineq: ineq, BIneq: b}
}

func TestValidate(t *testing.T) {
	good := boxLP([]float64{1, -1}, 0, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid LP rejected: %v", err)
	}
	cases := map[string]LinearProgram{
		"empty objective": {},
		"ineq rhs mismatch": {
			C: []float64{1}, Ineq: linalg.NewDense(2, 1), BIneq: []float64{1},
		},
		"ineq cols mismatch": {
			C: []float64{1, 2}, Ineq: linalg.NewDense(2, 1), BIneq: []float64{1, 1},
		},
		"eq without rhs": {
			C: []float64{1}, Eq: linalg.NewDense(1, 1),
		},
		"eq rhs mismatch": {
			C: []float64{1}, Eq: linalg.NewDense(1, 1), BEq: []float64{1, 2},
		},
	}
	for name, lp := range cases {
		if err := lp.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestNewPenaltyLPRejectsBadArgs(t *testing.T) {
	lp := boxLP([]float64{1}, 0, 1)
	if _, err := NewPenaltyLP(nil, lp, PenaltyKind(99), 1); err == nil {
		t.Error("unknown penalty kind accepted")
	}
	if _, err := NewPenaltyLP(nil, lp, PenaltyAbs, 0); err == nil {
		t.Error("non-positive mu accepted")
	}
	if _, err := NewPenaltyLP(nil, LinearProgram{}, PenaltyAbs, 1); err == nil {
		t.Error("invalid LP accepted")
	}
}

// TestPenaltyEqualsObjectiveWhenFeasible: Theorem 2's starting point — at a
// feasible x the penalized objective equals the raw objective.
func TestPenaltyEqualsObjectiveWhenFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := make([]float64, n)
		x := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
			x[i] = rng.Float64() // strictly inside [0, 1]
		}
		lp := boxLP(c, 0, 1)
		for _, kind := range []PenaltyKind{PenaltyAbs, PenaltyQuad} {
			p, err := NewPenaltyLP(nil, lp, kind, 10)
			if err != nil {
				return false
			}
			want := linalg.Dot(nil, c, x)
			if math.Abs(p.Value(x)-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenaltyPenalizesViolations(t *testing.T) {
	lp := boxLP([]float64{0, 0}, 0, 1)
	p, err := NewPenaltyLP(nil, lp, PenaltyQuad, 5)
	if err != nil {
		t.Fatal(err)
	}
	// x = (2, -1): violates x0 <= 1 by 1 and -x1 <= 0 by 1.
	got := p.Value([]float64{2, -1})
	if want := 5.0*1 + 5.0*1; math.Abs(got-want) > 1e-12 {
		t.Errorf("quad penalty = %v, want %v", got, want)
	}
	pAbs, err := NewPenaltyLP(nil, lp, PenaltyAbs, 5)
	if err != nil {
		t.Fatal(err)
	}
	got = pAbs.Value([]float64{3, 0.5})
	if want := 5.0 * 2; math.Abs(got-want) > 1e-12 { // x0=3 violates by 2
		t.Errorf("abs penalty = %v, want %v", got, want)
	}
}

func TestEqualityPenalty(t *testing.T) {
	eq := linalg.DenseOf([][]float64{{1, 1}})
	lp := LinearProgram{C: []float64{0, 0}, Eq: eq, BEq: []float64{1}}
	pq, err := NewPenaltyLP(nil, lp, PenaltyQuad, 3)
	if err != nil {
		t.Fatal(err)
	}
	// x sums to 3: violation 2, squared 4, times mu 3 = 12.
	if got := pq.Value([]float64{1, 2}); math.Abs(got-12) > 1e-12 {
		t.Errorf("quad equality penalty = %v, want 12", got)
	}
	pa, err := NewPenaltyLP(nil, lp, PenaltyAbs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := pa.Value([]float64{1, 2}); math.Abs(got-6) > 1e-12 {
		t.Errorf("abs equality penalty = %v, want 6", got)
	}
	// Violation from below has the same magnitude.
	if got := pa.Value([]float64{0, -1}); math.Abs(got-6) > 1e-12 {
		t.Errorf("abs equality penalty below = %v, want 6", got)
	}
}

// TestGradMatchesFiniteDifference validates the analytic subgradient on
// smooth regions of the penalty surface.
func TestGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		lp := boxLP(c, 0, 1)
		eq := linalg.NewDense(1, n)
		for j := 0; j < n; j++ {
			eq.Set(0, j, rng.NormFloat64())
		}
		lp.Eq = eq
		lp.BEq = []float64{rng.NormFloat64()}
		for _, kind := range []PenaltyKind{PenaltyAbs, PenaltyQuad} {
			p, err := NewPenaltyLP(nil, lp, kind, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Stay away from hinge kinks: sample x far from 0/1 boundaries.
			x := make([]float64, n)
			for i := range x {
				x[i] = 1.5 + rng.Float64() // all > 1: upper constraints active
			}
			grad := make([]float64, n)
			p.Grad(x, grad)
			const h = 1e-6
			for i := 0; i < n; i++ {
				xp := append([]float64(nil), x...)
				xm := append([]float64(nil), x...)
				xp[i] += h
				xm[i] -= h
				fd := (p.Value(xp) - p.Value(xm)) / (2 * h)
				if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
					t.Fatalf("trial %d kind %v: grad[%d] = %v, fd = %v",
						trial, kind, i, grad[i], fd)
				}
			}
		}
	}
}

func TestMaxViolation(t *testing.T) {
	lp := boxLP([]float64{0, 0}, 0, 1)
	if v := lp.MaxViolation([]float64{0.5, 0.5}); v != 0 {
		t.Errorf("feasible point violation = %v", v)
	}
	if v := lp.MaxViolation([]float64{1.75, 0.5}); math.Abs(v-0.75) > 1e-12 {
		t.Errorf("violation = %v, want 0.75", v)
	}
	eqLP := LinearProgram{
		C:  []float64{0},
		Eq: linalg.DenseOf([][]float64{{1}}), BEq: []float64{2},
	}
	if v := eqLP.MaxViolation([]float64{-1}); math.Abs(v-3) > 1e-12 {
		t.Errorf("equality violation = %v, want 3", v)
	}
}

func TestPenaltyKindString(t *testing.T) {
	if PenaltyAbs.String() != "abs" || PenaltyQuad.String() != "quad" {
		t.Error("penalty kind names wrong")
	}
	if PenaltyKind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}

func TestAnnealableRoundTrip(t *testing.T) {
	p, err := NewPenaltyLP(nil, boxLP([]float64{1}, 0, 1), PenaltyAbs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.PenaltyWeight() != 2 {
		t.Errorf("initial mu = %v", p.PenaltyWeight())
	}
	p.SetPenaltyWeight(8)
	if p.PenaltyWeight() != 8 {
		t.Errorf("mu after set = %v", p.PenaltyWeight())
	}
	// Penalty value scales with mu.
	v8 := p.Value([]float64{2}) // violation 1 beyond hi=1
	p.SetPenaltyWeight(16)
	if v16 := p.Value([]float64{2}); math.Abs(v16-2*v8+linalg.Dot(nil, p.lp.C, []float64{2})) > 1e-9 {
		// v = c x + mu*viol; doubling mu doubles the penalty part.
		cx := 2.0
		if math.Abs((v16-cx)-2*(v8-cx)) > 1e-9 {
			t.Errorf("penalty did not scale with mu: %v -> %v", v8, v16)
		}
	}
}
