package core

import (
	"errors"
	"fmt"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

// LinearProgram is the constrained variational form
//
//	minimize Cᵀx  subject to  Ineq·x ≤ BIneq, Eq·x = BEq.
//
// Either constraint block may be nil. Many of the paper's combinatorial
// transformations (sorting, matching, max-flow, shortest paths) land in this
// form; it is P-complete, which is what makes the methodology generic.
type LinearProgram struct {
	C     []float64
	Ineq  *linalg.Dense
	BIneq []float64
	Eq    *linalg.Dense
	BEq   []float64
}

// ErrBadProgram is returned for structurally invalid linear programs.
var ErrBadProgram = errors.New("core: malformed linear program")

// Validate checks dimensional consistency.
func (lp *LinearProgram) Validate() error {
	n := len(lp.C)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProgram)
	}
	if (lp.Ineq == nil) != (lp.BIneq == nil) {
		return fmt.Errorf("%w: inequality matrix/rhs mismatch", ErrBadProgram)
	}
	if lp.Ineq != nil && (lp.Ineq.Cols != n || lp.Ineq.Rows != len(lp.BIneq)) {
		return fmt.Errorf("%w: inequality block is %dx%d with rhs %d, objective %d",
			ErrBadProgram, lp.Ineq.Rows, lp.Ineq.Cols, len(lp.BIneq), n)
	}
	if (lp.Eq == nil) != (lp.BEq == nil) {
		return fmt.Errorf("%w: equality matrix/rhs mismatch", ErrBadProgram)
	}
	if lp.Eq != nil && (lp.Eq.Cols != n || lp.Eq.Rows != len(lp.BEq)) {
		return fmt.Errorf("%w: equality block is %dx%d with rhs %d, objective %d",
			ErrBadProgram, lp.Eq.Rows, lp.Eq.Cols, len(lp.BEq), n)
	}
	return nil
}

// Dim returns the number of variables.
func (lp *LinearProgram) Dim() int { return len(lp.C) }

// MaxViolation returns the largest constraint violation at x, computed
// reliably (a control/metric path).
//
//lint:fpu-exempt feasibility metric measured outside the simulated machine (note the nil units): it scores results, it never feeds the solve
func (lp *LinearProgram) MaxViolation(x []float64) float64 {
	var worst float64
	if lp.Ineq != nil {
		r := make([]float64, lp.Ineq.Rows)
		lp.Ineq.MulVec(nil, x, r)
		for i, v := range r {
			if d := v - lp.BIneq[i]; d > worst {
				worst = d
			}
		}
	}
	if lp.Eq != nil {
		r := make([]float64, lp.Eq.Rows)
		lp.Eq.MulVec(nil, x, r)
		for i, v := range r {
			d := v - lp.BEq[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// PenaltyKind selects the exact penalty flavour of Theorem 2.
type PenaltyKind int

const (
	// PenaltyAbs is the ℓ1 exact penalty: μ·Σ|h| + μ·Σ[g]₊.
	PenaltyAbs PenaltyKind = iota + 1
	// PenaltyQuad is the quadratic penalty: μ·Σh² + μ·Σ[g]₊², the form
	// used in the paper's sorting/matching transformation (Eq 4.4).
	PenaltyQuad
	// PenaltyLoss applies a pluggable robust loss ρ to each violation:
	// μ·Σρ(h) + μ·Σρ([g]₊) (see NewRobustPenaltyLP). With the quadratic
	// Robustifier it reproduces PenaltyQuad bit-for-bit.
	PenaltyLoss
)

// String returns the penalty kind's name.
func (k PenaltyKind) String() string {
	switch k {
	case PenaltyAbs:
		return "abs"
	case PenaltyQuad:
		return "quad"
	case PenaltyLoss:
		return "loss"
	default:
		return "unknown"
	}
}

// PenaltyLP is the unconstrained exact-penalty form of a LinearProgram. It
// implements Problem (noisy gradients on the stochastic FPU, reliable
// Value) and Annealable.
type PenaltyLP struct {
	u    *fpu.Unit
	lp   LinearProgram
	kind PenaltyKind
	loss robust.Robustifier // non-nil iff kind == PenaltyLoss
	mu   float64

	// scratch buffers for gradient evaluation
	ri []float64
	re []float64
}

var (
	_ Problem    = (*PenaltyLP)(nil)
	_ Annealable = (*PenaltyLP)(nil)
)

// NewPenaltyLP converts lp into unconstrained exact penalty form with
// weight mu, evaluated on unit u (nil u = reliable).
func NewPenaltyLP(u *fpu.Unit, lp LinearProgram, kind PenaltyKind, mu float64) (*PenaltyLP, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	if kind != PenaltyAbs && kind != PenaltyQuad {
		return nil, fmt.Errorf("%w: unknown penalty kind %d", ErrBadProgram, kind)
	}
	return newPenaltyLP(u, lp, kind, nil, mu)
}

// NewRobustPenaltyLP converts lp into unconstrained penalty form with each
// violation scored by the robust loss ρ: μ·Σρ(h) + μ·Σρ([g]₊). With the
// quadratic Robustifier the op sequence — and hence every per-seed outcome —
// is identical to NewPenaltyLP with PenaltyQuad; bounded-influence losses
// (Huber, Geman–McClure, …) cap how hard a single corrupted constraint row
// can yank the iterate.
func NewRobustPenaltyLP(u *fpu.Unit, lp LinearProgram, loss robust.Robustifier, mu float64) (*PenaltyLP, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	if loss == nil {
		return nil, fmt.Errorf("%w: nil robust loss", ErrBadProgram)
	}
	return newPenaltyLP(u, lp, PenaltyLoss, loss, mu)
}

func newPenaltyLP(u *fpu.Unit, lp LinearProgram, kind PenaltyKind, loss robust.Robustifier, mu float64) (*PenaltyLP, error) {
	if mu <= 0 {
		return nil, fmt.Errorf("%w: penalty weight must be positive", ErrBadProgram)
	}
	p := &PenaltyLP{u: u, lp: lp, kind: kind, loss: loss, mu: mu}
	if lp.Ineq != nil {
		p.ri = make([]float64, lp.Ineq.Rows)
	}
	if lp.Eq != nil {
		p.re = make([]float64, lp.Eq.Rows)
	}
	return p, nil
}

// FPU returns the stochastic unit gradients are evaluated on.
func (p *PenaltyLP) FPU() *fpu.Unit { return p.u }

// LP returns the underlying constrained program.
func (p *PenaltyLP) LP() *LinearProgram { return &p.lp }

// Kind returns the penalty flavour.
func (p *PenaltyLP) Kind() PenaltyKind { return p.kind }

// Loss returns the robust loss for PenaltyLoss programs, nil otherwise.
func (p *PenaltyLP) Loss() robust.Robustifier { return p.loss }

// Dim implements Problem.
func (p *PenaltyLP) Dim() int { return p.lp.Dim() }

// PenaltyWeight returns the penalty multiplier μ.
func (p *PenaltyLP) PenaltyWeight() float64 { return p.mu }

// SetPenaltyWeight replaces the multiplier.
func (p *PenaltyLP) SetPenaltyWeight(mu float64) { p.mu = mu }

// AnnealParam implements Annealable: the annealed parameter is μ.
func (p *PenaltyLP) AnnealParam() float64 { return p.mu }

// SetAnnealParam implements Annealable.
func (p *PenaltyLP) SetAnnealParam(mu float64) { p.mu = mu }

// Grad implements Problem: ∇f = c + μ·Σ penalty terms, computed on the
// stochastic FPU.
func (p *PenaltyLP) Grad(x, grad []float64) {
	p.gradOn(p.u, x, grad)
}

// Value implements Problem: the exact objective, computed reliably.
func (p *PenaltyLP) Value(x []float64) float64 {
	return p.valueOn(nil, x)
}

func (p *PenaltyLP) valueOn(u *fpu.Unit, x []float64) float64 {
	v := linalg.Dot(u, p.lp.C, x)
	if p.lp.Ineq != nil {
		p.lp.Ineq.MulVec(u, x, p.ri)
		for i, r := range p.ri {
			viol := u.Hinge(u.Sub(r, p.lp.BIneq[i]))
			switch p.kind {
			case PenaltyAbs: // the hinge already is the absolute violation
			case PenaltyQuad:
				viol = u.Mul(viol, viol)
			case PenaltyLoss:
				viol = p.loss.Rho(u, viol)
			}
			v = u.Add(v, u.Mul(p.mu, viol))
		}
	}
	if p.lp.Eq != nil {
		p.lp.Eq.MulVec(u, x, p.re)
		for i, r := range p.re {
			d := u.Sub(r, p.lp.BEq[i])
			switch p.kind {
			case PenaltyQuad:
				d = u.Mul(d, d)
			case PenaltyLoss:
				d = p.loss.Rho(u, d)
			case PenaltyAbs:
				d = u.Abs(d)
			default:
				d = u.Abs(d)
			}
			v = u.Add(v, u.Mul(p.mu, d))
		}
	}
	return v
}

func (p *PenaltyLP) gradOn(u *fpu.Unit, x, grad []float64) {
	if len(x) != p.Dim() || len(grad) != p.Dim() {
		panic(linalg.ErrShape)
	}
	copy(grad, p.lp.C)
	if p.lp.Ineq != nil {
		p.lp.Ineq.MulVec(u, x, p.ri)
		for i, r := range p.ri {
			viol := u.Hinge(u.Sub(r, p.lp.BIneq[i]))
			if viol == 0 {
				continue
			}
			// abs: +μ·row; quad: +2μ·viol·row; loss: +2μ·ψ(viol)·row
			w := p.mu
			switch p.kind {
			case PenaltyAbs: // subgradient weight is μ itself
			case PenaltyQuad:
				w = u.Mul(u.Mul(2, p.mu), viol)
			case PenaltyLoss:
				w = u.Mul(u.Mul(2, p.mu), p.loss.Psi(u, viol))
			}
			linalg.Axpy(u, w, p.lp.Ineq.Row(i), grad)
		}
	}
	if p.lp.Eq != nil {
		p.lp.Eq.MulVec(u, x, p.re)
		for i, r := range p.re {
			d := u.Sub(r, p.lp.BEq[i])
			if d == 0 {
				continue
			}
			var w float64
			switch {
			case p.kind == PenaltyQuad:
				w = u.Mul(u.Mul(2, p.mu), d)
			case p.kind == PenaltyLoss:
				w = u.Mul(u.Mul(2, p.mu), p.loss.Psi(u, d))
			case d > 0: // sign-bit read: reliable, like Hinge
				w = p.mu
			default:
				w = -p.mu
			}
			linalg.Axpy(u, w, p.lp.Eq.Row(i), grad)
		}
	}
}
