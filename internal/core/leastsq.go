package core

import (
	"fmt"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// LeastSquares is the variational form of §4.1: minimize f(x) = ‖Ax − b‖².
// It is the transformation target of both the least squares application and
// the IIR filter (whose banded post-condition ‖Bx − Au‖² is the same shape).
// Gradients ∇f = Aᵀ(Ax − b) are evaluated on the stochastic FPU; the paper
// folds the conventional factor 2 into the step size, and so do we.
type LeastSquares struct {
	u  *fpu.Unit
	a  linalg.Operator
	b  []float64
	r  []float64 // residual scratch (rows)
	rv []float64 // reliable-value scratch (rows)
}

var _ Problem = (*LeastSquares)(nil)

// NewLeastSquares builds the variational problem min ‖a·x − b‖² with
// gradients on u.
func NewLeastSquares(u *fpu.Unit, a linalg.Operator, b []float64) (*LeastSquares, error) {
	rows, _ := a.Dims()
	if len(b) != rows {
		return nil, fmt.Errorf("%w: rhs has %d entries for %d rows", ErrBadProgram, len(b), rows)
	}
	return &LeastSquares{
		u: u, a: a, b: b,
		r:  make([]float64, rows),
		rv: make([]float64, rows),
	}, nil
}

// FPU returns the stochastic unit gradients are evaluated on.
func (l *LeastSquares) FPU() *fpu.Unit { return l.u }

// Operator returns the system operator.
func (l *LeastSquares) Operator() linalg.Operator { return l.a }

// Rhs returns the right-hand side.
func (l *LeastSquares) Rhs() []float64 { return l.b }

// Dim implements Problem.
func (l *LeastSquares) Dim() int {
	_, cols := l.a.Dims()
	return cols
}

// Grad implements Problem: grad ← Aᵀ(Ax − b) on the stochastic FPU.
func (l *LeastSquares) Grad(x, grad []float64) {
	l.a.MulVec(l.u, x, l.r)
	linalg.Sub(l.u, l.r, l.b, l.r)
	l.a.TMulVec(l.u, l.r, grad)
}

// Value implements Problem: the exact residual norm ‖Ax − b‖², evaluated
// reliably for the solver's control path.
func (l *LeastSquares) Value(x []float64) float64 {
	l.a.MulVec(nil, x, l.rv)
	linalg.Sub(nil, l.rv, l.b, l.rv)
	return linalg.SqNorm2(nil, l.rv)
}

// Lipschitz estimates λmax(AᵀA), the gradient's Lipschitz constant, as a
// reliable setup step. Step sizes around 1/λmax are stable for this
// problem.
func (l *LeastSquares) Lipschitz() float64 {
	return linalg.PowerEstimate(l.a, 30)
}
