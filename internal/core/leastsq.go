package core

import (
	"fmt"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

// LeastSquares is the variational form of §4.1: minimize f(x) = ‖Ax − b‖²,
// generalized to f(x) = Σρ(rᵢ) for a pluggable robust loss ρ (nil loss =
// the quadratic ρ(r) = r², which is the paper's form and the default).
// It is the transformation target of both the least squares application and
// the IIR filter (whose banded post-condition ‖Bx − Au‖² is the same shape).
// Gradients ∇f = Aᵀψ(Ax − b) are evaluated on the stochastic FPU; the paper
// folds the conventional factor 2 into the step size, and so do we — which
// is why ψ = ρ′/2 (for the quadratic, ψ(r) = r exactly as before).
type LeastSquares struct {
	u    *fpu.Unit
	a    linalg.Operator
	b    []float64
	loss robust.Robustifier // nil = legacy quadratic path, bit-for-bit
	r    []float64          // residual scratch (rows)
	rv   []float64          // reliable-value scratch (rows)
}

var (
	_ Problem    = (*LeastSquares)(nil)
	_ Annealable = (*LeastSquares)(nil)
)

// NewLeastSquares builds the variational problem min ‖a·x − b‖² with
// gradients on u.
func NewLeastSquares(u *fpu.Unit, a linalg.Operator, b []float64) (*LeastSquares, error) {
	return NewRobustLeastSquares(u, a, b, nil)
}

// NewRobustLeastSquares builds min Σρ(rᵢ) over residuals r = a·x − b, with
// gradients Aᵀψ(r) on u. A nil loss selects the legacy quadratic path,
// whose op stream — and hence every per-seed outcome — is identical to what
// NewLeastSquares always produced; the quadratic Robustifier matches it too,
// since its ψ and weight are zero-FLOP identities.
func NewRobustLeastSquares(u *fpu.Unit, a linalg.Operator, b []float64, loss robust.Robustifier) (*LeastSquares, error) {
	rows, _ := a.Dims()
	if len(b) != rows {
		return nil, fmt.Errorf("%w: rhs has %d entries for %d rows", ErrBadProgram, len(b), rows)
	}
	return &LeastSquares{
		u: u, a: a, b: b, loss: loss,
		r:  make([]float64, rows),
		rv: make([]float64, rows),
	}, nil
}

// FPU returns the stochastic unit gradients are evaluated on.
func (l *LeastSquares) FPU() *fpu.Unit { return l.u }

// Operator returns the system operator.
func (l *LeastSquares) Operator() linalg.Operator { return l.a }

// Rhs returns the right-hand side.
func (l *LeastSquares) Rhs() []float64 { return l.b }

// Loss returns the robust loss, or nil for the legacy quadratic path.
func (l *LeastSquares) Loss() robust.Robustifier { return l.loss }

// Dim implements Problem.
func (l *LeastSquares) Dim() int {
	_, cols := l.a.Dims()
	return cols
}

// Grad implements Problem: grad ← Aᵀψ(Ax − b) on the stochastic FPU. With
// a nil (or quadratic) loss ψ is the identity and this is the paper's
// Aᵀ(Ax − b), op for op.
func (l *LeastSquares) Grad(x, grad []float64) {
	l.a.MulVec(l.u, x, l.r)
	linalg.Sub(l.u, l.r, l.b, l.r)
	if l.loss != nil {
		for i, r := range l.r {
			l.r[i] = l.loss.Psi(l.u, r)
		}
	}
	l.a.TMulVec(l.u, l.r, grad)
}

// Value implements Problem: the exact objective Σρ(rᵢ) (the residual norm
// ‖Ax − b‖² for the quadratic default), evaluated reliably for the solver's
// control path.
func (l *LeastSquares) Value(x []float64) float64 {
	l.a.MulVec(nil, x, l.rv)
	linalg.Sub(nil, l.rv, l.b, l.rv)
	if l.loss == nil {
		return linalg.SqNorm2(nil, l.rv)
	}
	var v float64
	//lint:fpu-exempt objective evaluation is the paper's reliable control path (note the nil unit handed to Rho)
	for _, r := range l.rv {
		v += l.loss.Rho(nil, r)
	}
	return v
}

// AnnealParam implements Annealable: the annealed parameter is the loss
// shape. Zero (legacy or quadratic loss, which has no shape) means nothing
// to anneal and the solver skips.
func (l *LeastSquares) AnnealParam() float64 {
	if l.loss == nil {
		return 0
	}
	return l.loss.Shape()
}

// SetAnnealParam implements Annealable (reliable control path).
func (l *LeastSquares) SetAnnealParam(s float64) {
	if l.loss != nil {
		l.loss.SetShape(s)
	}
}

// Lipschitz estimates λmax(AᵀA), the gradient's Lipschitz constant, as a
// reliable setup step. Step sizes around 1/λmax are stable for this
// problem.
func (l *LeastSquares) Lipschitz() float64 {
	return linalg.PowerEstimate(l.a, 30)
}
