package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"robustify/internal/linalg"
)

func randWeights(rng *rand.Rand, r, c int) *linalg.Dense {
	w := linalg.NewDense(r, c)
	for i := range w.Data {
		w.Data[i] = 0.5 + rng.Float64() // positive weights
	}
	return w
}

func TestNewAssignmentRejectsBadArgs(t *testing.T) {
	if _, err := NewAssignment(nil, nil, 1, 1); err == nil {
		t.Error("nil weights accepted")
	}
	w := linalg.NewDense(2, 2)
	if _, err := NewAssignment(nil, w, 0, 1); err == nil {
		t.Error("zero l1 accepted")
	}
	if _, err := NewAssignment(nil, w, 1, -1); err == nil {
		t.Error("negative l2 accepted")
	}
}

func TestAssignmentDims(t *testing.T) {
	a, err := NewAssignment(nil, linalg.NewDense(3, 5), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 3 || a.Cols() != 5 || a.Dim() != 15 {
		t.Errorf("dims = %d %d %d", a.Rows(), a.Cols(), a.Dim())
	}
}

func TestUniformStartFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, err := NewAssignment(nil, randWeights(rng, 4, 6), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := a.UniformStart()
	lp := a.ToLP()
	if v := lp.MaxViolation(x); v > 1e-12 {
		t.Errorf("uniform start violates constraints by %v", v)
	}
}

// TestAssignmentValueAtFeasiblePoint: on a feasible X the penalty vanishes
// and f = −ΣWX.
func TestAssignmentValueAtFeasiblePoint(t *testing.T) {
	w := linalg.DenseOf([][]float64{{2, 1}, {1, 3}})
	a, err := NewAssignment(nil, w, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Identity permutation: X = I.
	x := []float64{1, 0, 0, 1}
	if got, want := a.Value(x), -5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Value(I) = %v, want %v", got, want)
	}
}

func TestAssignmentPenalizesInfeasible(t *testing.T) {
	w := linalg.DenseOf([][]float64{{1, 1}, {1, 1}})
	a, err := NewAssignment(nil, w, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Negative entry: λ1 penalty.
	xNeg := []float64{-0.5, 0, 0, 0}
	want := 0.5 + 7*0.25 // -W·X = +0.5, penalty 7*(0.5)^2
	if got := a.Value(xNeg); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value(neg) = %v, want %v", got, want)
	}
	// Row 0 sums to 2: λ2 penalty (1)^2; col sums are 1 each: no penalty.
	xOver := []float64{1, 1, 0, 0}
	want = -2 + 9*1
	if got := a.Value(xOver); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value(over) = %v, want %v", got, want)
	}
}

func TestAssignmentGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r, c := 2+rng.Intn(3), 2+rng.Intn(3)
		a, err := NewAssignment(nil, randWeights(rng, r, c), 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, a.Dim())
		for i := range x {
			// Sample away from hinge kinks at 0 and sum=1.
			x[i] = 0.3 + 0.6*rng.Float64()
		}
		grad := make([]float64, a.Dim())
		a.Grad(x, grad)
		const h = 1e-6
		for i := range x {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (a.Value(xp) - a.Value(xm)) / (2 * h)
			if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("trial %d: grad[%d] = %v, fd = %v", trial, i, grad[i], fd)
			}
		}
	}
}

// TestRoundIsAssignment: rounding any vector yields a valid partial
// assignment: distinct columns, each row at most once.
func TestRoundIsAssignment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a, err := NewAssignment(nil, randWeights(rng, r, c), 1, 1)
		if err != nil {
			return false
		}
		x := make([]float64, a.Dim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		assign := a.Round(x)
		if len(assign) != r {
			return false
		}
		seen := make(map[int]bool)
		count := 0
		for _, j := range assign {
			if j == -1 {
				continue
			}
			if j < 0 || j >= c || seen[j] {
				return false
			}
			seen[j] = true
			count++
		}
		want := r
		if c < want {
			want = c
		}
		return count == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundSkipsNaN(t *testing.T) {
	w := linalg.DenseOf([][]float64{{1, 1}, {1, 1}})
	a, err := NewAssignment(nil, w, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{math.NaN(), 0.9, 0.8, math.NaN()}
	assign := a.Round(x)
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("Round with NaNs = %v, want [1 0]", assign)
	}
}

func TestRoundPicksMaxPermutation(t *testing.T) {
	w := linalg.DenseOf([][]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}})
	a, err := NewAssignment(nil, w, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// X close to the permutation (0->2, 1->0, 2->1).
	x := []float64{
		0.1, 0.0, 0.9,
		0.8, 0.1, 0.1,
		0.1, 0.9, 0.0,
	}
	assign := a.Round(x)
	want := []int{2, 0, 1}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("Round = %v, want %v", assign, want)
		}
	}
}

func TestToLPShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, err := NewAssignment(nil, randWeights(rng, 3, 4), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lp := a.ToLP()
	if err := lp.Validate(); err != nil {
		t.Fatalf("ToLP invalid: %v", err)
	}
	if lp.Ineq.Rows != 3+4+12 || lp.Ineq.Cols != 12 {
		t.Errorf("ToLP ineq shape = %dx%d", lp.Ineq.Rows, lp.Ineq.Cols)
	}
	// A feasible permutation satisfies the LP, an infeasible X violates it.
	x := make([]float64, 12)
	x[0*4+1] = 1
	x[1*4+2] = 1
	x[2*4+3] = 1
	if v := lp.MaxViolation(x); v > 1e-12 {
		t.Errorf("permutation violates ToLP by %v", v)
	}
	x[0*4+2] = 1.5 // row 0 now sums to 2.5, col 2 to 2.5
	if v := lp.MaxViolation(x); math.Abs(v-1.5) > 1e-12 {
		t.Errorf("violation = %v, want 1.5", v)
	}
}

// TestToLPValueMatchesAssignment: the generic penalty LP over ToLP() and
// the specialized Assignment problem are the same function (quad kind).
func TestToLPValueMatchesAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := randWeights(rng, 3, 3)
	a, err := NewAssignment(nil, w, 6, 6) // equal λ so single-μ LP matches
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPenaltyLP(nil, a.ToLP(), PenaltyQuad, 6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, a.Dim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		va, vp := a.Value(x), p.Value(x)
		if math.Abs(va-vp) > 1e-9*(1+math.Abs(vp)) {
			t.Fatalf("trial %d: Assignment=%v PenaltyLP=%v", trial, va, vp)
		}
	}
}
