package core

import (
	"fmt"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// Assignment is the unconstrained exact quadratic penalty form of the
// linear assignment family (paper Eqs 4.3–4.5), shared by the sorting and
// bipartite matching transformations:
//
//	maximize  Σᵢⱼ Wᵢⱼ·Xᵢⱼ
//	s.t.      Xᵢⱼ ≥ 0,  Σⱼ Xᵢⱼ ≤ 1,  Σᵢ Xᵢⱼ ≤ 1,
//
// i.e. a linear objective over doubly (sub)stochastic matrices, whose
// extreme points are the permutation/assignment matrices. The penalized
// objective minimized here is
//
//	f(X) = −Σ Wᵢⱼ·Xᵢⱼ + μ·λ₁·Σ[−Xᵢⱼ]₊² + μ·λ₂·Σᵢ[Σⱼ Xᵢⱼ−1]₊² + μ·λ₂·Σⱼ[Σᵢ Xᵢⱼ−1]₊².
//
// For the LP optimum to be a full assignment, weights should be positive;
// callers with signed data (e.g. sorting arbitrary arrays) shift them first.
type Assignment struct {
	u      *fpu.Unit
	w      *linalg.Dense
	l1, l2 float64
	mu     float64

	rowSum, colSum []float64 // gradient scratch
}

var (
	_ Problem    = (*Assignment)(nil)
	_ Annealable = (*Assignment)(nil)
)

// NewAssignment builds the penalized assignment problem over weight matrix
// w (maximized), evaluated on unit u. l1 weighs the non-negativity
// penalties, l2 the row/column-sum penalties; the anneal multiplier μ
// starts at 1 and scales both.
func NewAssignment(u *fpu.Unit, w *linalg.Dense, l1, l2 float64) (*Assignment, error) {
	if w == nil || w.Rows == 0 || w.Cols == 0 {
		return nil, fmt.Errorf("%w: empty weight matrix", ErrBadProgram)
	}
	if l1 <= 0 || l2 <= 0 {
		return nil, fmt.Errorf("%w: penalty weights must be positive", ErrBadProgram)
	}
	return &Assignment{
		u:      u,
		w:      w,
		l1:     l1,
		l2:     l2,
		mu:     1,
		rowSum: make([]float64, w.Rows),
		colSum: make([]float64, w.Cols),
	}, nil
}

// FPU returns the stochastic unit gradients are evaluated on.
func (a *Assignment) FPU() *fpu.Unit { return a.u }

// Rows and Cols return the assignment matrix shape.
func (a *Assignment) Rows() int { return a.w.Rows }

// Cols returns the number of columns of the assignment matrix.
func (a *Assignment) Cols() int { return a.w.Cols }

// Dim implements Problem: X is optimized flattened row-major.
func (a *Assignment) Dim() int { return a.w.Rows * a.w.Cols }

// PenaltyWeight returns the penalty multiplier μ.
func (a *Assignment) PenaltyWeight() float64 { return a.mu }

// SetPenaltyWeight replaces the multiplier.
func (a *Assignment) SetPenaltyWeight(mu float64) { a.mu = mu }

// AnnealParam implements Annealable: the annealed parameter is μ.
func (a *Assignment) AnnealParam() float64 { return a.mu }

// SetAnnealParam implements Annealable.
func (a *Assignment) SetAnnealParam(mu float64) { a.mu = mu }

// UniformStart returns the center of the Birkhoff polytope, X₀ = 1/max(n,m)
// everywhere — the natural unbiased initial iterate.
//
//lint:fpu-exempt fault-free setup: the starting iterate is chosen before the simulated machine runs
func (a *Assignment) UniformStart() []float64 {
	x := make([]float64, a.Dim())
	d := a.w.Rows
	if a.w.Cols > d {
		d = a.w.Cols
	}
	linalg.Fill(x, 1/float64(d))
	return x
}

// Grad implements Problem (the sign-corrected Eq 4.5):
//
//	[∇f]ᵢⱼ = −Wᵢⱼ − 2μλ₁[−Xᵢⱼ]₊ + 2μλ₂[Σⱼ Xᵢⱼ−1]₊ + 2μλ₂[Σᵢ Xᵢⱼ−1]₊.
func (a *Assignment) Grad(x, grad []float64) {
	a.gradOn(a.u, x, grad)
}

// Value implements Problem: exact penalized objective, evaluated reliably.
func (a *Assignment) Value(x []float64) float64 {
	return a.valueOn(nil, x)
}

// sums accumulates row and column sums of X with batched kernels: per row,
// all row-sum adds then all column-sum adds, rather than interleaving the
// two per element. The op count and fault statistics are unchanged, but
// scheduled faults land on different operations than under the interleaved
// order, so per-seed outcomes differ from (while remaining statistically
// equivalent to) the unbatched form.
func (a *Assignment) sums(u *fpu.Unit, x []float64) {
	rows, cols := a.w.Rows, a.w.Cols
	linalg.Fill(a.colSum, 0)
	for i := 0; i < rows; i++ {
		row := x[i*cols : (i+1)*cols]
		a.rowSum[i] = linalg.Sum(u, row)
		linalg.Add(u, a.colSum, row, a.colSum)
	}
}

func (a *Assignment) valueOn(u *fpu.Unit, x []float64) float64 {
	if len(x) != a.Dim() {
		panic(linalg.ErrShape)
	}
	rows, cols := a.w.Rows, a.w.Cols
	a.sums(u, x)
	var v float64
	for i := 0; i < rows; i++ {
		base := i * cols
		for j := 0; j < cols; j++ {
			xij := x[base+j]
			v = u.Sub(v, u.Mul(a.w.At(i, j), xij))
			neg := u.Hinge(u.Neg(xij))
			if neg != 0 {
				v = u.Add(v, u.Mul(u.Mul(a.mu, a.l1), u.Mul(neg, neg)))
			}
		}
	}
	for _, s := range a.rowSum {
		over := u.Hinge(u.Sub(s, 1))
		if over != 0 {
			v = u.Add(v, u.Mul(u.Mul(a.mu, a.l2), u.Mul(over, over)))
		}
	}
	for _, s := range a.colSum {
		over := u.Hinge(u.Sub(s, 1))
		if over != 0 {
			v = u.Add(v, u.Mul(u.Mul(a.mu, a.l2), u.Mul(over, over)))
		}
	}
	return v
}

func (a *Assignment) gradOn(u *fpu.Unit, x, grad []float64) {
	if len(x) != a.Dim() || len(grad) != a.Dim() {
		panic(linalg.ErrShape)
	}
	rows, cols := a.w.Rows, a.w.Cols
	a.sums(u, x)
	// Precompute per-row and per-column overshoot terms 2μλ₂[s−1]₊.
	two := u.Mul(2, a.mu)
	for i, s := range a.rowSum {
		a.rowSum[i] = u.Mul(u.Mul(two, a.l2), u.Hinge(u.Sub(s, 1)))
	}
	for j, s := range a.colSum {
		a.colSum[j] = u.Mul(u.Mul(two, a.l2), u.Hinge(u.Sub(s, 1)))
	}
	for i := 0; i < rows; i++ {
		base := i * cols
		for j := 0; j < cols; j++ {
			// The linear term −Wᵢⱼ passes through the FPU every iteration
			// (the paper evaluates −uᵢ·vⱼ on the faulty unit per step), so
			// faults on it stay transient and unbiased.
			g := u.Neg(u.Mul(a.w.At(i, j), 1))
			if neg := u.Hinge(u.Neg(x[base+j])); neg != 0 {
				g = u.Sub(g, u.Mul(u.Mul(two, a.l1), neg))
			}
			if a.rowSum[i] != 0 {
				g = u.Add(g, a.rowSum[i])
			}
			if a.colSum[j] != 0 {
				g = u.Add(g, a.colSum[j])
			}
			grad[base+j] = g
		}
	}
}

// ToLP expresses the assignment constraints as an inequality-only
// LinearProgram (for the preconditioned solver path, §6.2.1):
// rows: n row-sum rows, m column-sum rows, then n·m non-negativity rows.
func (a *Assignment) ToLP() LinearProgram {
	rows, cols := a.w.Rows, a.w.Cols
	n := rows * cols
	c := make([]float64, n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			c[i*cols+j] = -a.w.At(i, j)
		}
	}
	ineq := linalg.NewDense(rows+cols+n, n)
	b := make([]float64, rows+cols+n)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			ineq.Set(i, i*cols+j, 1)
		}
		b[i] = 1
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			ineq.Set(rows+j, i*cols+j, 1)
		}
		b[rows+j] = 1
	}
	for k := 0; k < n; k++ {
		ineq.Set(rows+cols+k, k, -1)
		b[rows+cols+k] = 0
	}
	return LinearProgram{C: c, Ineq: ineq, BIneq: b}
}

// Round extracts an assignment from a relaxed solution x by reliable greedy
// rounding: repeatedly take the largest remaining entry and cross out its
// row and column. The result maps each row to a column (−1 when the row is
// unassigned, possible only when rows > cols). This is a control step and
// uses exact arithmetic.
func (a *Assignment) Round(x []float64) []int {
	return RoundAssignment(a.w.Rows, a.w.Cols, x)
}

// RoundAssignment is Round as a standalone function over a flattened
// rows×cols matrix, for callers that solved the problem in transformed
// coordinates (e.g. the preconditioned path).
func RoundAssignment(rows, cols int, x []float64) []int {
	assign := make([]int, rows)
	for i := range assign {
		assign[i] = -1
	}
	usedRow := make([]bool, rows)
	usedCol := make([]bool, cols)
	k := rows
	if cols < k {
		k = cols
	}
	for picked := 0; picked < k; picked++ {
		bestI, bestJ := -1, -1
		best := 0.0
		for i := 0; i < rows; i++ {
			if usedRow[i] {
				continue
			}
			base := i * cols
			for j := 0; j < cols; j++ {
				if usedCol[j] {
					continue
				}
				v := x[base+j]
				if v != v { // NaN: never pick
					continue
				}
				if bestI < 0 || v > best {
					best, bestI, bestJ = v, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		assign[bestI] = bestJ
		usedRow[bestI] = true
		usedCol[bestJ] = true
	}
	return assign
}
