package core

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/linalg"
)

func TestPreconditionRequiresIneqOnly(t *testing.T) {
	lp := LinearProgram{
		C:  []float64{1},
		Eq: linalg.DenseOf([][]float64{{1}}), BEq: []float64{0},
	}
	if _, err := Precondition(nil, lp, PenaltyQuad, 1); err == nil {
		t.Error("equality-constrained LP accepted")
	}
	if _, err := Precondition(nil, LinearProgram{C: []float64{1}}, PenaltyQuad, 1); err == nil {
		t.Error("unconstrained LP accepted")
	}
}

// TestPreconditionedValueMatchesOriginal: f_pre(R·x) must equal f(x) for
// any x — the transform is a change of variables, not a different problem.
func TestPreconditionedValueMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := []float64{1, -2, 0.5}
	lp := boxLP(c, 0, 1)
	orig, err := NewPenaltyLP(nil, lp, PenaltyQuad, 3)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Precondition(nil, lp, PenaltyQuad, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 3)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := pre.InitialY(x)
		if got, want := pre.Value(y), orig.Value(x); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: preconditioned value %v, original %v", trial, got, want)
		}
	}
}

func TestPreconditionedRecoverRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lp := boxLP([]float64{1, 2, 3, 4}, -1, 1)
	pre, err := Precondition(nil, lp, PenaltyAbs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := pre.InitialY(x)
		back, err := pre.Recover(y)
		if err != nil {
			t.Fatal(err)
		}
		if re := linalg.RelErr(back, x); re > 1e-10 {
			t.Fatalf("trial %d: recover error %v", trial, re)
		}
	}
}

func TestPreconditionedAnnealDelegates(t *testing.T) {
	lp := boxLP([]float64{1, 1}, 0, 1)
	pre, err := Precondition(nil, lp, PenaltyQuad, 2)
	if err != nil {
		t.Fatal(err)
	}
	pre.SetPenaltyWeight(10)
	if pre.PenaltyWeight() != 10 {
		t.Errorf("anneal delegation broken: mu = %v", pre.PenaltyWeight())
	}
}

// TestPreconditionedConstraintsOrthonormal: the transformed constraint
// matrix Q has orthonormal columns, i.e. the preconditioned problem's
// constraint Gram matrix is the identity — the "bowl not valley" property.
func TestPreconditionedConstraintsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4
	ineq := linalg.NewDense(9, n)
	for i := range ineq.Data {
		ineq.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 9)
	lp := LinearProgram{C: []float64{1, 1, 1, 1}, Ineq: ineq, BIneq: b}
	pre, err := Precondition(nil, lp, PenaltyQuad, 1)
	if err != nil {
		t.Fatal(err)
	}
	gram := pre.inner.lp.Ineq.Gram(nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(gram.At(i, j)-want) > 1e-10 {
				t.Fatalf("QᵀQ(%d,%d) = %v", i, j, gram.At(i, j))
			}
		}
	}
}
