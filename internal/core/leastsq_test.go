package core

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/linalg"
)

func randSystem(rng *rand.Rand, m, n int) (*linalg.Dense, []float64, []float64) {
	a := linalg.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(nil, xTrue, b)
	return a, xTrue, b
}

func TestNewLeastSquaresShape(t *testing.T) {
	a := linalg.NewDense(4, 2)
	if _, err := NewLeastSquares(nil, a, make([]float64, 3)); err == nil {
		t.Error("rhs/rows mismatch accepted")
	}
	ls, err := NewLeastSquares(nil, a, make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Dim() != 2 {
		t.Errorf("Dim = %d", ls.Dim())
	}
}

func TestLeastSquaresValueZeroAtSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, xTrue, b := randSystem(rng, 10, 3)
	ls, err := NewLeastSquares(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := ls.Value(xTrue); v > 1e-18 {
		t.Errorf("Value(x*) = %v, want ~0", v)
	}
}

func TestLeastSquaresGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, _, b := randSystem(rng, 8, 4)
	ls, err := NewLeastSquares(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	grad := make([]float64, 4)
	ls.Grad(x, grad)
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		// Grad drops the conventional factor 2 (folded into step size), so
		// the analytic gradient is half the finite difference of ‖r‖².
		fd := (ls.Value(xp) - ls.Value(xm)) / (4 * h)
		if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, fd/2 = %v", i, grad[i], fd)
		}
	}
}

func TestLeastSquaresLipschitz(t *testing.T) {
	// diag(3, 1): AᵀA has eigenvalues 9 and 1.
	a := linalg.DenseOf([][]float64{{3, 0}, {0, 1}})
	ls, err := NewLeastSquares(nil, a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if l := ls.Lipschitz(); math.Abs(l-9) > 1e-6 {
		t.Errorf("Lipschitz = %v, want 9", l)
	}
}

func TestLeastSquaresBandedOperator(t *testing.T) {
	// The IIR shape: banded operator through the same problem type.
	band := linalg.NewLowerBand(6, []float64{1, -0.5})
	xTrue := []float64{1, 2, 3, 4, 5, 6}
	b := make([]float64, 6)
	band.MulVec(nil, xTrue, b)
	ls, err := NewLeastSquares(nil, band, b)
	if err != nil {
		t.Fatal(err)
	}
	if v := ls.Value(xTrue); v > 1e-18 {
		t.Errorf("banded Value(x*) = %v", v)
	}
	grad := make([]float64, 6)
	ls.Grad(xTrue, grad)
	for i, g := range grad {
		if math.Abs(g) > 1e-12 {
			t.Errorf("grad[%d] = %v at the optimum", i, g)
		}
	}
}
