package core

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
)

// These tests pin the bit-identity contract of the robust-loss layer: with
// the quadratic loss, the generalized paths must replay the legacy op
// sequence exactly — same FLOP count, same scheduled faults, same bits out.

func randomDense(rng *rand.Rand, rows, cols int) *linalg.Dense {
	m := linalg.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestRobustQuadraticLeastSquaresBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomDense(rng, 12, 5)
	b := randomVec(rng, 12)
	x := randomVec(rng, 5)

	eval := func(loss robust.Robustifier) ([]float64, float64, uint64) {
		u := fpu.New(fpu.WithFaultRate(0.2, 99))
		p, err := NewRobustLeastSquares(u, a, b, loss)
		if err != nil {
			t.Fatal(err)
		}
		grad := make([]float64, 5)
		for k := 0; k < 20; k++ {
			p.Grad(x, grad)
		}
		return grad, p.Value(x), u.FLOPs()
	}

	quadLoss, err := robust.New(robust.Quadratic, 0)
	if err != nil {
		t.Fatal(err)
	}
	legacyGrad, legacyVal, legacyFlops := eval(nil)
	robustGrad, robustVal, robustFlops := eval(quadLoss)

	if legacyFlops != robustFlops {
		t.Errorf("FLOPs diverged: legacy %d, robust-quadratic %d", legacyFlops, robustFlops)
	}
	for i := range legacyGrad {
		if legacyGrad[i] != robustGrad[i] && !(math.IsNaN(legacyGrad[i]) && math.IsNaN(robustGrad[i])) {
			t.Fatalf("grad[%d]: legacy %v, robust-quadratic %v", i, legacyGrad[i], robustGrad[i])
		}
	}
	if legacyVal != robustVal {
		t.Errorf("Value: legacy %v, robust-quadratic %v", legacyVal, robustVal)
	}
}

func TestRobustQuadraticPenaltyLPBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lp := LinearProgram{
		C:     randomVec(rng, 4),
		Ineq:  randomDense(rng, 6, 4),
		BIneq: randomVec(rng, 6),
		Eq:    randomDense(rng, 2, 4),
		BEq:   randomVec(rng, 2),
	}
	x := randomVec(rng, 4)

	eval := func(build func(u *fpu.Unit) (*PenaltyLP, error)) ([]float64, float64, uint64) {
		u := fpu.New(fpu.WithFaultRate(0.2, 17))
		p, err := build(u)
		if err != nil {
			t.Fatal(err)
		}
		grad := make([]float64, 4)
		for k := 0; k < 20; k++ {
			p.Grad(x, grad)
		}
		return grad, p.Value(x), u.FLOPs()
	}

	legacyGrad, legacyVal, legacyFlops := eval(func(u *fpu.Unit) (*PenaltyLP, error) {
		return NewPenaltyLP(u, lp, PenaltyQuad, 3)
	})
	robustGrad, robustVal, robustFlops := eval(func(u *fpu.Unit) (*PenaltyLP, error) {
		loss, err := robust.New(robust.Quadratic, 0)
		if err != nil {
			return nil, err
		}
		return NewRobustPenaltyLP(u, lp, loss, 3)
	})

	if legacyFlops != robustFlops {
		t.Errorf("FLOPs diverged: quad %d, loss-quadratic %d", legacyFlops, robustFlops)
	}
	for i := range legacyGrad {
		if legacyGrad[i] != robustGrad[i] && !(math.IsNaN(legacyGrad[i]) && math.IsNaN(robustGrad[i])) {
			t.Fatalf("grad[%d]: quad %v, loss-quadratic %v", i, legacyGrad[i], robustGrad[i])
		}
	}
	if legacyVal != robustVal {
		t.Errorf("Value: quad %v, loss-quadratic %v", legacyVal, robustVal)
	}
}

func TestRobustLeastSquaresHuberBoundsGradient(t *testing.T) {
	// The reason the subsystem exists: one corrupted observation must not
	// dominate the gradient. Plant a wild outlier in b and compare the
	// gradient row pull under quadratic vs Huber on a reliable unit.
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 10, 3)
	b := randomVec(rng, 10)
	b[4] = 1e8 // corrupted observation
	x := randomVec(rng, 3)

	gradFor := func(loss robust.Robustifier) []float64 {
		p, err := NewRobustLeastSquares(nil, a, b, loss)
		if err != nil {
			t.Fatal(err)
		}
		g := make([]float64, 3)
		p.Grad(x, g)
		return g
	}
	huber, err := robust.New(robust.Huber, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	gq := linalg.Norm2(nil, gradFor(nil))
	gh := linalg.Norm2(nil, gradFor(huber))
	if !(gh < gq/1e4) {
		t.Errorf("huber gradient norm %v not ≪ quadratic %v under outlier", gh, gq)
	}
}
