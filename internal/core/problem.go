// Package core implements the paper's central contribution: a methodology
// for transforming applications into numerical optimization problems whose
// solution can be recovered by stochastic optimization on a processor with a
// faulty FPU.
//
// An application is recast as a constrained variational problem
//
//	minimize f(x)  subject to  g(x) ≤ 0, h(x) = 0,
//
// which is mechanically converted to an unconstrained exact penalty form
// (Theorem 2 of the paper)
//
//	f(x) + μ·Σ|hᵢ(x)| + μ·Σ[gⱼ(x)]₊   (or the quadratic variant),
//
// and handed to a stochastic solver (package solver). Gradient evaluation —
// the bulk of the computation — runs on the stochastic FPU; the cheap
// control steps (objective evaluation for aggressive stepping, penalty
// annealing, rounding) are assumed reliable, exactly as in the paper.
package core

import "robustify/internal/fpu"

// Problem is an unconstrained minimization problem in robustified form.
type Problem interface {
	// Dim returns the number of optimization variables.
	Dim() int
	// Grad writes a (noisy) subgradient of the objective at x into grad.
	// It is evaluated on the problem's stochastic FPU and is the only
	// place where faults enter the computation.
	Grad(x, grad []float64)
	// Value evaluates the objective at x reliably. The solver uses it only
	// in control steps (aggressive stepping, convergence checks), which
	// the paper assumes are protected.
	Value(x []float64) float64
}

// Annealable is implemented by problems with a scalar loss parameter the
// solver may anneal over the run (§6.2.4, generalized): the penalty
// multiplier μ of a penalty form (raised as the solver closes in, to
// sharpen the constraint walls), or the shape parameter of a robust loss
// — Huber/pseudo-Huber δ, Geman–McClure σ — shrunk toward robustness in
// the graduated-non-convexity style. A zero AnnealParam means the problem
// currently has nothing to anneal (e.g. a quadratic loss, which has no
// shape); the solver skips it.
type Annealable interface {
	// AnnealParam returns the current annealable parameter, or 0 when
	// there is none.
	AnnealParam() float64
	// SetAnnealParam replaces the parameter (reliable control path).
	SetAnnealParam(v float64)
}

// Preconditioned is implemented by problems that optimize in a transformed
// coordinate system y = R·x (§6.2.1) and must map solutions back.
type Preconditioned interface {
	// Recover maps a solution of the preconditioned problem back to the
	// original variables (reliable control step).
	Recover(y []float64) ([]float64, error)
	// InitialY maps an initial iterate of the original problem into the
	// preconditioned coordinates.
	InitialY(x0 []float64) []float64
}

// Unit returns p's stochastic FPU if the problem exposes one, or nil.
func Unit(p Problem) *fpu.Unit {
	if h, ok := p.(interface{ FPU() *fpu.Unit }); ok {
		return h.FPU()
	}
	return nil
}
