// Package core implements the paper's central contribution: a methodology
// for transforming applications into numerical optimization problems whose
// solution can be recovered by stochastic optimization on a processor with a
// faulty FPU.
//
// An application is recast as a constrained variational problem
//
//	minimize f(x)  subject to  g(x) ≤ 0, h(x) = 0,
//
// which is mechanically converted to an unconstrained exact penalty form
// (Theorem 2 of the paper)
//
//	f(x) + μ·Σ|hᵢ(x)| + μ·Σ[gⱼ(x)]₊   (or the quadratic variant),
//
// and handed to a stochastic solver (package solver). Gradient evaluation —
// the bulk of the computation — runs on the stochastic FPU; the cheap
// control steps (objective evaluation for aggressive stepping, penalty
// annealing, rounding) are assumed reliable, exactly as in the paper.
package core

import "robustify/internal/fpu"

// Problem is an unconstrained minimization problem in robustified form.
type Problem interface {
	// Dim returns the number of optimization variables.
	Dim() int
	// Grad writes a (noisy) subgradient of the objective at x into grad.
	// It is evaluated on the problem's stochastic FPU and is the only
	// place where faults enter the computation.
	Grad(x, grad []float64)
	// Value evaluates the objective at x reliably. The solver uses it only
	// in control steps (aggressive stepping, convergence checks), which
	// the paper assumes are protected.
	Value(x []float64) float64
}

// Annealable is implemented by penalty-form problems whose constraint
// weight μ can be raised as the solver approaches the optimum (§6.2.4).
type Annealable interface {
	// PenaltyWeight returns the current multiplier μ on the penalty terms.
	PenaltyWeight() float64
	// SetPenaltyWeight replaces the multiplier.
	SetPenaltyWeight(mu float64)
}

// Preconditioned is implemented by problems that optimize in a transformed
// coordinate system y = R·x (§6.2.1) and must map solutions back.
type Preconditioned interface {
	// Recover maps a solution of the preconditioned problem back to the
	// original variables (reliable control step).
	Recover(y []float64) ([]float64, error)
	// InitialY maps an initial iterate of the original problem into the
	// preconditioned coordinates.
	InitialY(x0 []float64) []float64
}

// Unit returns p's stochastic FPU if the problem exposes one, or nil.
func Unit(p Problem) *fpu.Unit {
	if h, ok := p.(interface{ FPU() *fpu.Unit }); ok {
		return h.FPU()
	}
	return nil
}
