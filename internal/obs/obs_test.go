package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"robustify/internal/fpu"
)

// bitFlip returns the XOR mask of a single flipped bit.
func bitFlip(bit uint) uint64 { return uint64(1) << bit }

func TestRecorderBitClassification(t *testing.T) {
	r := &FaultRecorder{}
	r.FaultInjected(fpu.OpAdd, 1, bitFlip(63)) // sign
	r.FaultInjected(fpu.OpMul, 2, bitFlip(52)) // lowest exponent bit
	r.FaultInjected(fpu.OpMul, 3, bitFlip(62)) // highest exponent bit
	r.FaultInjected(fpu.OpAdd, 4, bitFlip(0))  // lowest mantissa bit
	r.FaultInjected(fpu.OpAdd, 5, bitFlip(51)) // highest mantissa bit
	r.FaultInjected(fpu.OpDiv, 500, 0b11)      // multi-bit (memory strike)
	if r.Sign != 1 || r.Exponent != 2 || r.Mantissa != 2 || r.MultiBit != 1 {
		t.Errorf("classification = sign %d exp %d man %d multi %d, want 1/2/2/1",
			r.Sign, r.Exponent, r.Mantissa, r.MultiBit)
	}
	if r.ValueFaults != 6 {
		t.Errorf("ValueFaults = %d, want 6", r.ValueFaults)
	}
	if r.PerOp[fpu.OpAdd] != 3 || r.PerOp[fpu.OpMul] != 2 || r.PerOp[fpu.OpDiv] != 1 {
		t.Errorf("PerOp = %v", r.PerOp)
	}
	// Faults at flops 1..5 are within clusterGap of their predecessor; the
	// one at 500 is not. Four clustered hits.
	if r.Clustered != 4 {
		t.Errorf("Clustered = %d, want 4", r.Clustered)
	}
}

func TestRecorderIterationBuckets(t *testing.T) {
	r := &FaultRecorder{}
	r.FaultInjected(fpu.OpAdd, 1, bitFlip(10)) // before any mark: bucket 0
	r.IterationMark()
	r.CompareFault(100) // 1 iteration: bucket 1
	for i := 0; i < 6; i++ {
		r.IterationMark()
	}
	r.FaultInjected(fpu.OpMul, 1000, bitFlip(3)) // 7 iterations: bucket 3 (4-7)
	s := r.Summary()
	if s.ByIter["0"] != 1 || s.ByIter["1"] != 1 || s.ByIter["4-7"] != 1 {
		t.Errorf("ByIter = %v", s.ByIter)
	}
	if s.Compares != 1 || s.Total != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRecorderMergeAndSummary(t *testing.T) {
	a, b := &FaultRecorder{}, &FaultRecorder{}
	a.FaultInjected(fpu.OpAdd, 1, bitFlip(63))
	b.FaultInjected(fpu.OpMul, 2, bitFlip(5))
	b.MemoryFaults(128, 3)
	a.Merge(b)
	if a.ValueFaults != 2 || a.Sign != 1 || a.Mantissa != 1 {
		t.Errorf("merged = %+v", a)
	}
	if a.MemScans != 1 || a.MemWords != 128 || a.MemFaults != 3 {
		t.Errorf("merged memory counters = %d/%d/%d", a.MemScans, a.MemWords, a.MemFaults)
	}
	s := a.Summary()
	if s.Total != 5 { // 2 value + 3 memory
		t.Errorf("Total = %d, want 5", s.Total)
	}
	if s.ByOp["add"] != 1 || s.ByOp["mul"] != 1 {
		t.Errorf("ByOp = %v", s.ByOp)
	}
}

func TestCollectorTakeMerges(t *testing.T) {
	c := NewCollector()
	o1 := c.Observer(0.01, 7).(*FaultRecorder)
	o2 := c.Observer(0.01, 7).(*FaultRecorder) // second unit, same trial
	c.Observer(0.01, 8)                        // different trial, untouched
	o1.FaultInjected(fpu.OpAdd, 1, bitFlip(63))
	o2.FaultInjected(fpu.OpMul, 2, bitFlip(5))
	got := c.Take(0.01, 7)
	if got == nil || got.ValueFaults != 2 {
		t.Fatalf("Take = %+v, want 2 merged faults", got)
	}
	if c.Take(0.01, 7) != nil {
		t.Error("second Take returned recorders again")
	}
	if c.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", c.Pending())
	}
}

func TestCollectorDrainByRate(t *testing.T) {
	c := NewCollector()
	c.Observer(0.01, 1).(*FaultRecorder).FaultInjected(fpu.OpAdd, 1, bitFlip(63))
	c.Observer(0.01, 2).(*FaultRecorder).FaultInjected(fpu.OpAdd, 1, bitFlip(5))
	c.Observer(0.1, 1).(*FaultRecorder).CompareFault(9)
	byRate := c.DrainByRate()
	if len(byRate) != 2 {
		t.Fatalf("DrainByRate = %d rates, want 2", len(byRate))
	}
	if byRate[0.01].ValueFaults != 2 || byRate[0.1].CompareFaults != 1 {
		t.Errorf("byRate = %+v / %+v", byRate[0.01], byRate[0.1])
	}
	if c.Pending() != 0 {
		t.Errorf("Pending after drain = %d", c.Pending())
	}
}

func TestRingWrapsAndOrders(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit("kind", "c0001", string(rune('a'+i)))
	}
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(evs))
	}
	// Oldest-first, holding the last three emits (c, d, e) with
	// monotonically increasing sequence numbers.
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Detail != want {
			t.Errorf("evs[%d].Detail = %q, want %q", i, evs[i].Detail, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("Seq not contiguous: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestHistPromExposition is the golden test for the text exposition
// format: cumulative le buckets, _sum, _count, sorted labels.
func TestHistPromExposition(t *testing.T) {
	s := NewHistSet()
	s.Observe("lp", 2*time.Millisecond)  // le 0.0025 bucket
	s.Observe("lp", 40*time.Millisecond) // le 0.05
	s.Observe("apsp", 20*time.Second)    // +Inf
	var b strings.Builder
	s.WriteProm(&b, "x_seconds", "workload")
	got := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram\n",
		`x_seconds_bucket{workload="apsp",le="10"} 0` + "\n",
		`x_seconds_bucket{workload="apsp",le="+Inf"} 1` + "\n",
		`x_seconds_sum{workload="apsp"} 20` + "\n",
		`x_seconds_count{workload="apsp"} 1` + "\n",
		`x_seconds_bucket{workload="lp",le="0.001"} 0` + "\n",
		`x_seconds_bucket{workload="lp",le="0.0025"} 1` + "\n",
		`x_seconds_bucket{workload="lp",le="0.05"} 2` + "\n",
		`x_seconds_bucket{workload="lp",le="+Inf"} 2` + "\n",
		`x_seconds_count{workload="lp"} 2` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// apsp sorts before lp.
	if strings.Index(got, `workload="apsp"`) > strings.Index(got, `workload="lp"`) {
		t.Errorf("labels not sorted:\n%s", got)
	}
}

func TestTelemetryAppendAndFloat(t *testing.T) {
	dir := t.TempDir()
	tel, err := OpenTelemetry(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := TrialRecord{
		Campaign: "c0001", Unit: "lp", Series: "robust",
		Rate: 0.01, Seed: 42, Value: Float(math.NaN()),
	}
	if err := tel.Append("trial", rec); err != nil {
		t.Fatal(err)
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, TelemetryFile))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		TS   time.Time       `json:"ts"`
		Kind string          `json:"kind"`
		Rec  json.RawMessage `json:"rec"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatalf("envelope does not parse: %v\n%s", err, b)
	}
	if env.Kind != "trial" || env.TS.IsZero() {
		t.Errorf("envelope = %+v", env)
	}
	if !strings.Contains(string(env.Rec), `"value":"NaN"`) {
		t.Errorf("NaN value not stringified: %s", env.Rec)
	}
}

func TestHubNilSafe(t *testing.T) {
	var h *Hub
	h.Emit("x", "c", "d")
	h.SetMirrorEvents(true)
	h.RegisterCampaign("c", "dir")
	h.ObserveTrial("lp", time.Second)
	h.AppendTrial("dir", TrialRecord{})
	if h.Observer(0.1, 1) != nil {
		t.Error("nil hub returned an observer")
	}
	if h.TakeFaults(0.1, 1) != nil {
		t.Error("nil hub returned a recorder")
	}
	if h.Events() != nil {
		t.Error("nil hub returned events")
	}
	h.WriteMetrics(&strings.Builder{})
	if err := h.Close(); err != nil {
		t.Error(err)
	}
}

func TestHubMirrorEvents(t *testing.T) {
	dir := t.TempDir()
	h := NewHub()
	defer h.Close()
	h.SetMirrorEvents(true)
	h.RegisterCampaign("c0001", dir)
	h.Emit("campaign.running", "c0001", "")
	h.Emit("lease.acquired", "c9999", "not registered; ring only")
	if got := len(h.Events()); got != 2 {
		t.Errorf("ring has %d events, want 2", got)
	}
	b, err := os.ReadFile(filepath.Join(dir, TelemetryFile))
	if err != nil {
		t.Fatalf("mirrored telemetry missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "campaign.running") {
		t.Errorf("telemetry = %q, want exactly the registered campaign's event", lines)
	}
}
