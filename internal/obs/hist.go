package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBounds are the upper bounds, in seconds, of the latency histogram
// buckets (Prometheus `le` convention; the final +Inf bucket is implicit).
// Trial latencies in this repo span ~100µs (quick figure cells) to tens of
// seconds (full CG sweeps), so the bounds cover 100µs..10s log-ish.
var histBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Hist is a fixed-bucket latency histogram safe for concurrent observers
// and scrapers: pure atomics, no locks on the observe path. Counts are
// per-bucket (non-cumulative); exposition accumulates. The last bucket is
// +Inf.
type Hist struct {
	buckets  [len(histBounds) + 1]atomic.Uint64
	count    atomic.Uint64
	sumMicro atomic.Uint64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(histBounds[:], s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sumMicro.Add(uint64(d.Microseconds()))
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// HistSet is a label → histogram map, one histogram per workload label.
type HistSet struct {
	mu sync.Mutex
	m  map[string]*Hist
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet {
	return &HistSet{m: make(map[string]*Hist)}
}

// Observe records one duration under the given label.
func (s *HistSet) Observe(label string, d time.Duration) {
	s.mu.Lock()
	h := s.m[label]
	if h == nil {
		h = &Hist{}
		s.m[label] = h
	}
	s.mu.Unlock()
	h.Observe(d)
}

// WriteProm writes the set as a Prometheus histogram family named name
// with label key labelKey, labels sorted for stable exposition order.
func (s *HistSet) WriteProm(w io.Writer, name, labelKey string) {
	s.mu.Lock()
	labels := make([]string, 0, len(s.m))
	for l := range s.m {
		labels = append(labels, l)
	}
	hists := make([]*Hist, 0, len(labels))
	sort.Strings(labels)
	for _, l := range labels {
		hists = append(hists, s.m[l])
	}
	s.mu.Unlock()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for i, l := range labels {
		h := hists[i]
		var cum uint64
		for b, bound := range histBounds {
			cum += h.buckets[b].Load()
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, l, trimFloat(bound), cum)
		}
		cum += h.buckets[len(histBounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, l, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, labelKey, l, float64(h.sumMicro.Load())/1e6)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, l, h.count.Load())
	}
}

// trimFloat formats a bucket bound the way Prometheus clients do: shortest
// decimal representation.
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
