package obs

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"robustify/internal/fpu"
)

// defaultRingSize is the number of lifecycle events retained for
// GET /debug/events.
const defaultRingSize = 2048

// Hub is the process-wide observability context: the event ring, the
// fault-recorder collector, trial-latency histograms, and the per-campaign
// telemetry writers. A nil *Hub is a valid no-op on every method, so
// instrumented code can call unconditionally.
type Hub struct {
	events    *Ring
	collector *Collector
	trialLat  *HistSet

	mu     sync.Mutex
	tele   map[string]*Telemetry // open writers, keyed by campaign dir
	dirs   map[string]string     // campaign id → dir, for event mirroring
	failed map[string]bool       // dirs whose telemetry failed to open (logged once)
	mirror bool
}

// NewHub returns a hub with an empty ring and collector.
func NewHub() *Hub {
	return &Hub{
		events:    NewRing(defaultRingSize),
		collector: NewCollector(),
		trialLat:  NewHistSet(),
		tele:      make(map[string]*Telemetry),
		dirs:      make(map[string]string),
		failed:    make(map[string]bool),
	}
}

// SetMirrorEvents enables (or disables) mirroring lifecycle events into
// the telemetry JSONL of the campaign they concern.
func (h *Hub) SetMirrorEvents(on bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.mirror = on
	h.mu.Unlock()
}

// Emit records one lifecycle event in the ring and, when mirroring is on
// and the campaign has a registered directory, appends it to that
// campaign's telemetry.
func (h *Hub) Emit(kind, campaign, detail string) {
	if h == nil {
		return
	}
	h.events.Emit(kind, campaign, detail)
	h.mu.Lock()
	mirror := h.mirror
	dir := ""
	if mirror && campaign != "" {
		dir = h.dirs[campaign]
	}
	h.mu.Unlock()
	if dir == "" {
		return
	}
	if t := h.telemetry(dir); t != nil {
		if err := t.Append("event", map[string]string{
			"kind": kind, "campaign": campaign, "detail": detail,
		}); err != nil {
			log.Printf("obs: mirror event: %v", err)
		}
	}
}

// Events returns the retained lifecycle events, oldest first.
func (h *Hub) Events() []Event {
	if h == nil {
		return nil
	}
	return h.events.Snapshot()
}

// EventsHandler serves the ring as a JSON array (GET /debug/events).
func (h *Hub) EventsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeEventsJSON(w, h.Events())
	}
}

// RegisterCampaign associates a campaign id with its store directory so
// per-trial telemetry and mirrored events land beside the right store.
func (h *Hub) RegisterCampaign(id, dir string) {
	if h == nil || id == "" || dir == "" {
		return
	}
	h.mu.Lock()
	h.dirs[id] = dir
	h.mu.Unlock()
}

// Observer manufactures a fault recorder for a faulty unit at (rate,
// seed); it has the signature faultmodel.SetUnitObserver expects. On a nil
// hub it returns nil (no observer attached).
func (h *Hub) Observer(rate float64, seed uint64) fpu.Observer {
	if h == nil {
		return nil
	}
	return h.collector.Observer(rate, seed)
}

// TakeFaults removes and merges the fault recorders registered under
// (rate, seed); nil when none (or on a nil hub).
func (h *Hub) TakeFaults(rate float64, seed uint64) *FaultRecorder {
	if h == nil {
		return nil
	}
	return h.collector.Take(rate, seed)
}

// ObserveTrial records one trial latency under the given workload label.
func (h *Hub) ObserveTrial(label string, d time.Duration) {
	if h == nil {
		return
	}
	h.trialLat.Observe(label, d)
}

// AppendTrial writes one per-trial telemetry record beside the campaign
// store in dir. Failures are logged, not propagated: telemetry must never
// fail a trial.
func (h *Hub) AppendTrial(dir string, rec TrialRecord) {
	if h == nil || dir == "" {
		return
	}
	if t := h.telemetry(dir); t != nil {
		if err := t.Append("trial", rec); err != nil {
			log.Printf("obs: append trial telemetry: %v", err)
		}
	}
}

// telemetry returns the open writer for dir, opening it on first use.
// Open failures are logged once per dir and reported as nil thereafter.
func (h *Hub) telemetry(dir string) *Telemetry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t := h.tele[dir]; t != nil {
		return t
	}
	if h.failed[dir] {
		return nil
	}
	t, err := OpenTelemetry(dir)
	if err != nil {
		log.Printf("obs: %v", err)
		h.failed[dir] = true
		return nil
	}
	h.tele[dir] = t
	return t
}

// WriteMetrics writes the hub's Prometheus metrics (currently the
// per-workload trial latency histograms).
func (h *Hub) WriteMetrics(w io.Writer) {
	if h == nil {
		return
	}
	h.trialLat.WriteProm(w, "robustd_trial_duration_seconds", "workload")
}

// writeEventsJSON writes a snapshot of the event ring as indented JSON.
// The events' timestamps are diagnostics served over HTTP, never a stored
// artifact.
func writeEventsJSON(w io.Writer, events []Event) {
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(events); err != nil {
		log.Printf("obs: write events: %v", err)
	}
}

// Close closes every open telemetry writer.
func (h *Hub) Close() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for dir, t := range h.tele {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
		delete(h.tele, dir)
	}
	return first
}
