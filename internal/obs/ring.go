package obs

import (
	"sync"
	"time"
)

// Event is one lifecycle trace span: a campaign state transition, a trial
// finishing, a shard lease moving, a tune candidate changing rungs. Events
// carry wall-clock timestamps — they are diagnostics, never part of any
// resume-identity artifact.
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Kind     string    `json:"kind"`
	Campaign string    `json:"campaign,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Ring is a bounded in-memory event buffer: writers never block and never
// allocate beyond the fixed window, old events fall off the back. It is
// safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	size int    // events currently retained
	next uint64 // sequence number of the next event; next % cap is the write slot
}

// NewRing returns a ring retaining the last n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit appends one event, stamping the wall clock. The timestamp lives
// only in this diagnostic buffer (and, when mirroring is enabled, the
// telemetry JSONL) — it never reaches a campaign store.
func (r *Ring) Emit(kind, campaign, detail string) {
	now := time.Now().UTC()
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = Event{
		Seq: r.next, Time: now, Kind: kind, Campaign: campaign, Detail: detail,
	}
	r.next++
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.size)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(r.next-uint64(r.size)+uint64(i))%uint64(len(r.buf))])
	}
	return out
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}
