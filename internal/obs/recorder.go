// Package obs is the repository's observability layer: fault-placement
// telemetry, lifecycle trace events, latency histograms, and the telemetry
// JSONL sidecar written next to campaign stores.
//
// Everything here is deterministic-safe by construction. Fault recorders
// are passive fpu.Observer taps that consume no randomness and never touch
// a committed value, so attaching them cannot perturb a per-seed pin.
// Wall-clock timestamps are allowed in this package — but only on the
// diagnostics side (ring events, telemetry JSONL); nothing here ever
// writes into a campaign store or any other resume-identity artifact.
// robustlint's notimeinartifacts analyzer scopes this package to enforce
// exactly that split.
package obs

import (
	"math/bits"
	"strconv"

	"robustify/internal/fpu"
)

// clusterGap is the maximum FLOP distance between two consecutive faults
// for the second to count as "clustered" — the signature of the burst
// model's low-voltage windows (default window ~64 FLOPs, so consecutive
// strikes inside a window land well within 8 ops of each other) versus the
// default model's LFSR gaps (mean 1/rate FLOPs, ≫ 8 at every swept rate).
const clusterGap = 8

// iterBuckets is the number of log2 iteration buckets a recorder tracks:
// bucket k counts faults injected while the solver had completed
// [2^(k-1), 2^k) iterations (bucket 0 = before the first iteration mark).
// 2^20 iterations exceeds every workload in the repo.
const iterBuckets = 21

// FaultRecorder accumulates fault-placement counters for one fpu.Unit. It
// implements fpu.Observer. The zero value is ready to use.
//
// A recorder is written by the single goroutine running its unit and must
// only be read after that unit's trial completes (the harness delivers
// results on the computing goroutine, so a Sink reading the recorder for
// its own trial is safe).
type FaultRecorder struct {
	// ValueFaults counts corrupted FPU results; CompareFaults counts
	// inverted comparisons (flag corruption, no value bits involved).
	ValueFaults   uint64
	CompareFaults uint64

	// PerOp counts faults by operation class, indexed by fpu.Op.
	PerOp [8]uint64

	// Sign, Exponent, and Mantissa classify value faults by the IEEE-754
	// field of the highest flipped bit. MultiBit counts faults that
	// flipped more than one bit (memory strikes can; the FLOP-level
	// models flip exactly one).
	Sign     uint64
	Exponent uint64
	Mantissa uint64
	MultiBit uint64

	// Clustered counts faults landing within clusterGap FLOPs of the
	// previous fault — burst-window occupancy.
	Clustered uint64

	// Iterations counts solver iteration marks; IterBucket[k] counts
	// faults injected in log2 iteration bucket k.
	Iterations uint64
	IterBucket [iterBuckets]uint64

	// MemScans counts memory-strike passes over stored vectors, MemWords
	// the words scanned, and MemFaults the words corrupted.
	MemScans  uint64
	MemWords  uint64
	MemFaults uint64

	lastFlop uint64
	haveLast bool
}

var _ fpu.Observer = (*FaultRecorder)(nil)

// FaultInjected implements fpu.Observer.
func (r *FaultRecorder) FaultInjected(op fpu.Op, flop uint64, flipped uint64) {
	r.ValueFaults++
	if int(op) < len(r.PerOp) {
		r.PerOp[op]++
	}
	switch hi := bits.Len64(flipped); {
	case bits.OnesCount64(flipped) > 1:
		r.MultiBit++
	case hi == 64:
		r.Sign++
	case hi >= 53: // bits 52..62: exponent field
		r.Exponent++
	case hi >= 1:
		r.Mantissa++
	}
	r.placed(flop)
}

// CompareFault implements fpu.Observer.
func (r *FaultRecorder) CompareFault(flop uint64) {
	r.CompareFaults++
	r.PerOp[fpu.OpCmp]++
	r.placed(flop)
}

// MemoryFaults implements fpu.Observer.
func (r *FaultRecorder) MemoryFaults(words int, faults uint64) {
	r.MemScans++
	r.MemWords += uint64(words)
	r.MemFaults += faults
}

// IterationMark implements fpu.Observer.
func (r *FaultRecorder) IterationMark() { r.Iterations++ }

// placed updates the placement statistics shared by value and compare
// faults: the iteration bucket and the burst-clustering counter.
func (r *FaultRecorder) placed(flop uint64) {
	if b := bits.Len64(r.Iterations); b < iterBuckets {
		r.IterBucket[b]++
	} else {
		r.IterBucket[iterBuckets-1]++
	}
	if r.haveLast && flop-r.lastFlop <= clusterGap {
		r.Clustered++
	}
	r.lastFlop = flop
	r.haveLast = true
}

// Merge folds other into r. Trial functions may build several faulty units
// (one per solver under test); the collector merges their recorders into
// one per-trial summary.
func (r *FaultRecorder) Merge(other *FaultRecorder) {
	if other == nil {
		return
	}
	r.ValueFaults += other.ValueFaults
	r.CompareFaults += other.CompareFaults
	for i := range r.PerOp {
		r.PerOp[i] += other.PerOp[i]
	}
	r.Sign += other.Sign
	r.Exponent += other.Exponent
	r.Mantissa += other.Mantissa
	r.MultiBit += other.MultiBit
	r.Clustered += other.Clustered
	r.Iterations += other.Iterations
	for i := range r.IterBucket {
		r.IterBucket[i] += other.IterBucket[i]
	}
	r.MemScans += other.MemScans
	r.MemWords += other.MemWords
	r.MemFaults += other.MemFaults
}

// Total returns the number of recorded faults of all kinds.
func (r *FaultRecorder) Total() uint64 {
	return r.ValueFaults + r.CompareFaults + r.MemFaults
}

// FaultSummary is the JSON form of a recorder, embedded in telemetry
// records. Zero-valued fields are omitted so the common case (few faults,
// one model family) stays compact.
type FaultSummary struct {
	Total      uint64            `json:"total"`
	Compares   uint64            `json:"compares,omitempty"`
	ByOp       map[string]uint64 `json:"by_op,omitempty"`
	Sign       uint64            `json:"sign,omitempty"`
	Exponent   uint64            `json:"exponent,omitempty"`
	Mantissa   uint64            `json:"mantissa,omitempty"`
	MultiBit   uint64            `json:"multi_bit,omitempty"`
	Clustered  uint64            `json:"clustered,omitempty"`
	Iterations uint64            `json:"iterations,omitempty"`
	ByIter     map[string]uint64 `json:"by_iter_bucket,omitempty"`
	MemScans   uint64            `json:"mem_scans,omitempty"`
	MemWords   uint64            `json:"mem_words,omitempty"`
	MemFaults  uint64            `json:"mem_faults,omitempty"`
}

// Summary converts the counters to their wire form.
func (r *FaultRecorder) Summary() FaultSummary {
	s := FaultSummary{
		Total:      r.Total(),
		Compares:   r.CompareFaults,
		Sign:       r.Sign,
		Exponent:   r.Exponent,
		Mantissa:   r.Mantissa,
		MultiBit:   r.MultiBit,
		Clustered:  r.Clustered,
		Iterations: r.Iterations,
		MemScans:   r.MemScans,
		MemWords:   r.MemWords,
		MemFaults:  r.MemFaults,
	}
	for op, n := range r.PerOp {
		if n > 0 {
			if s.ByOp == nil {
				s.ByOp = make(map[string]uint64)
			}
			s.ByOp[fpu.Op(op).String()] = n
		}
	}
	for b, n := range r.IterBucket {
		if n > 0 {
			if s.ByIter == nil {
				s.ByIter = make(map[string]uint64)
			}
			s.ByIter[iterBucketLabel(b)] = n
		}
	}
	return s
}

// iterBucketLabel names log2 bucket b as an iteration range.
func iterBucketLabel(b int) string {
	if b == 0 {
		return "0"
	}
	lo := uint64(1) << (b - 1)
	hi := uint64(1)<<b - 1
	if b == iterBuckets-1 {
		return strconv.FormatUint(lo, 10) + "+"
	}
	if lo == hi {
		return strconv.FormatUint(lo, 10)
	}
	return strconv.FormatUint(lo, 10) + "-" + strconv.FormatUint(hi, 10)
}
