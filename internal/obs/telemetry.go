package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// TelemetryFile is the name of the diagnostics sidecar written next to a
// campaign store. It is append-only JSONL, deliberately separate from
// trials.jsonl: telemetry carries wall-clock timestamps and latency data
// and is NOT part of the campaign's resume identity — deleting it loses
// diagnostics, never results.
const TelemetryFile = "telemetry.jsonl"

// Telemetry appends timestamped diagnostic records to a campaign
// directory's telemetry.jsonl. It is safe for concurrent use.
type Telemetry struct {
	mu sync.Mutex
	f  *os.File
}

// OpenTelemetry opens (creating if needed) dir/telemetry.jsonl for append.
func OpenTelemetry(dir string) (*Telemetry, error) {
	f, err := os.OpenFile(filepath.Join(dir, TelemetryFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open telemetry: %w", err)
	}
	return &Telemetry{f: f}, nil
}

// TrialRecord is the telemetry line written per completed trial: the
// trial's identity and value (duplicating the store record so telemetry is
// self-contained), its wall-clock latency, and — when a fault recorder was
// attached — where its faults landed.
type TrialRecord struct {
	Campaign string  `json:"campaign,omitempty"`
	Unit     string  `json:"unit,omitempty"`
	Series   string  `json:"series,omitempty"`
	RateIdx  int     `json:"rate_idx"`
	TrialIdx int     `json:"trial_idx"`
	Rate     float64 `json:"rate"`
	Seed     uint64  `json:"seed"`
	Value    Float   `json:"value"`

	// DurationMicros is the trial's wall-clock compute time. Latencies
	// are diagnostics: they never feed back into results.
	DurationMicros int64 `json:"duration_us,omitempty"`

	Faults *FaultSummary `json:"faults,omitempty"`
}

// Float marshals NaN and ±Inf as JSON strings (encoding/json rejects them
// as numbers); trial values under heavy fault injection are routinely
// non-finite.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(fmt.Sprint(v))
	}
	return json.Marshal(v)
}

// Append writes one telemetry line {"ts": ..., "kind": kind, "rec": rec},
// stamping the wall clock. Telemetry is the one serialization path in the
// repository where that is legal: the JSONL sidecar is diagnostics with no
// resume-identity contract, unlike the store and trace artifacts the
// notimeinartifacts analyzer guards.
//
//lint:artifact-time-exempt telemetry.jsonl is a diagnostics sidecar, explicitly outside resume byte-identity
//lint:durable flight-recorder appends are the post-mortem record; silent loss defeats the recorder
func (t *Telemetry) Append(kind string, rec any) error {
	line := struct {
		TS   string `json:"ts"`
		Kind string `json:"kind"`
		Rec  any    `json:"rec"`
	}{TS: time.Now().UTC().Format(time.RFC3339Nano), Kind: kind, Rec: rec}
	b, err := json.Marshal(line)
	if err != nil {
		return fmt.Errorf("obs: marshal telemetry record: %w", err)
	}
	b = append(b, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return fmt.Errorf("obs: telemetry closed")
	}
	_, err = t.f.Write(b)
	return err
}

// Close closes the underlying file; further Appends fail.
func (t *Telemetry) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
