package obs

import (
	"math"
	"sync"

	"robustify/internal/fpu"
)

// collectorCap bounds the number of (rate, seed) keys a Collector holds.
// Keys are removed by Take as trials complete; the cap only matters if a
// caller attaches recorders and never takes them (e.g. a workload building
// throwaway units outside any trial), in which case the map is reset —
// recorders stay referenced by their live units, they just stop being
// retrievable, which loses diagnostics but can never leak unboundedly.
const collectorCap = 16384

// Collector hands out FaultRecorders keyed by (rate, seed) — the identity
// the trial layer already threads everywhere — and lets the sink that
// observes a trial's completion take the merged counters back out.
//
// A trial function may build several faulty units for the same (rate,
// seed) (one per solver variant under comparison); each gets its own
// recorder and Take merges them.
type Collector struct {
	mu    sync.Mutex
	byKey map[collectorKey][]*FaultRecorder
}

type collectorKey struct {
	rate uint64 // math.Float64bits of the trial rate: exact, hashable
	seed uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byKey: make(map[collectorKey][]*FaultRecorder)}
}

// Observer returns a fresh recorder registered under (rate, seed). It is
// the factory signature expected by faultmodel.SetUnitObserver.
func (c *Collector) Observer(rate float64, seed uint64) fpu.Observer {
	r := &FaultRecorder{}
	k := collectorKey{rate: math.Float64bits(rate), seed: seed}
	c.mu.Lock()
	if len(c.byKey) >= collectorCap {
		c.byKey = make(map[collectorKey][]*FaultRecorder)
	}
	c.byKey[k] = append(c.byKey[k], r)
	c.mu.Unlock()
	return r
}

// Take removes and merges every recorder registered under (rate, seed),
// returning nil when none were. Call it only after the trial at that key
// has finished computing (its units' goroutine has returned), which the
// harness guarantees for sinks.
func (c *Collector) Take(rate float64, seed uint64) *FaultRecorder {
	k := collectorKey{rate: math.Float64bits(rate), seed: seed}
	c.mu.Lock()
	rs := c.byKey[k]
	delete(c.byKey, k)
	c.mu.Unlock()
	if len(rs) == 0 {
		return nil
	}
	merged := &FaultRecorder{}
	for _, r := range rs {
		merged.Merge(r)
	}
	return merged
}

// DrainByRate removes every pending recorder and merges them per trial
// rate — the aggregate view robustbench's -telemetry report uses after a
// run, when individual trials no longer matter.
func (c *Collector) DrainByRate() map[float64]*FaultRecorder {
	c.mu.Lock()
	byKey := c.byKey
	c.byKey = make(map[collectorKey][]*FaultRecorder)
	c.mu.Unlock()
	out := make(map[float64]*FaultRecorder)
	//lint:detmap-exempt counter merging is commutative; the result is keyed, not ordered
	for k, rs := range byKey {
		rate := math.Float64frombits(k.rate)
		m := out[rate]
		if m == nil {
			m = &FaultRecorder{}
			out[rate] = m
		}
		for _, r := range rs {
			m.Merge(r)
		}
	}
	return out
}

// Pending returns the number of keys with recorders not yet taken.
func (c *Collector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
