package dispatch

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one campaign the coordinator dispatches: its grid shape, the
// spec payload served to workers, and the campaign engine's callbacks.
type Job struct {
	// Campaign is the campaign id leases and reports are keyed by.
	Campaign string
	// Spec is the campaign spec, served verbatim to workers.
	Spec json.RawMessage
	// Units are the grid dimensions, in unit order.
	Units []UnitGrid
	// Have reports whether a trial is already durable (resume).
	Have func(Key) bool
	// Verify, if non-nil, checks a reported result against the grid
	// (seed, rate). Results that fail are dropped — their trials stay
	// outstanding and are re-executed — so a buggy or malicious worker
	// cannot corrupt a campaign, only slow it down.
	Verify func(TrialResult) bool
	// Sink merges verified results into durable storage. It is called
	// from HTTP handler goroutines and must be safe for concurrent use;
	// an error fails the whole job.
	Sink func([]TrialResult) error
}

type runningJob struct {
	job   Job
	table *Table

	failOnce sync.Once
	failErr  error
	failed   chan struct{}
}

func (j *runningJob) fail(err error) {
	j.failOnce.Do(func() {
		j.failErr = err
		close(j.failed)
	})
}

// report merges one worker batch: bounds/verify-filter, sink, then lease
// bookkeeping. Results are sunk before the lease check, so even a batch
// arriving on an expired lease contributes durable trials (the store
// dedups; the value is deterministic either way).
func (j *runningJob) report(c *Coordinator, req ReportRequest, now time.Time, ttl time.Duration) (ReportResponse, error) {
	valid := req.Results[:0:0]
	rejected := 0
	for _, r := range req.Results {
		if !j.inGrid(r.Key()) || (j.job.Verify != nil && !j.job.Verify(r)) {
			rejected++
			continue
		}
		valid = append(valid, r)
	}
	c.rejected.Add(int64(rejected))
	if len(valid) > 0 {
		if err := j.job.Sink(valid); err != nil {
			j.fail(fmt.Errorf("dispatch: sink %s: %w", j.job.Campaign, err))
			return ReportResponse{Lost: true, Rejected: rejected}, nil
		}
	}
	keys := make([]Key, len(valid))
	for i, r := range valid {
		keys[i] = r.Key()
	}
	lost := j.table.Report(req.Lease, keys, req.Done, now, ttl)
	return ReportResponse{Lost: lost, Rejected: rejected}, nil
}

func (j *runningJob) inGrid(k Key) bool {
	if k.Unit < 0 || k.Unit >= len(j.job.Units) {
		return false
	}
	g := j.job.Units[k.Unit]
	return k.RateIdx >= 0 && k.RateIdx < g.Rates && k.TrialIdx >= 0 && k.TrialIdx < g.trials()
}

type workerInfo struct {
	id         string
	seq        int // registration order (ids don't sort: they widen past -9999)
	name       string
	registered time.Time
	lastSeen   time.Time
}

// Coordinator owns the worker registry and the lease tables of every
// campaign currently executing distributed. It is driven from two sides:
// the campaign engine calls RunJob (blocking until the grid is durable),
// and the HTTP layer calls Register/Lease/Report on behalf of workers.
type Coordinator struct {
	opt Options
	// epoch scopes worker ids to this coordinator incarnation: a worker
	// surviving a coordinator restart must get ErrUnknownWorker (and
	// re-register), never silently collide with a freshly issued id.
	epoch string

	rejected atomic.Int64 // results dropped by bounds/verify checks

	mu         sync.Mutex
	nextWorker int
	workers    map[string]*workerInfo
	jobs       []*runningJob
	rr         int // round-robin cursor over jobs, for multi-campaign fairness
}

// New creates a coordinator.
func New(opt Options) *Coordinator {
	var b [4]byte
	rand.Read(b[:]) // crypto/rand.Read never fails (panics on broken entropy)
	return &Coordinator{
		opt:     opt,
		epoch:   hex.EncodeToString(b[:]),
		workers: make(map[string]*workerInfo),
	}
}

// RunJob dispatches one campaign and blocks until every trial in its
// grid is durable, the sink fails, or ctx is cancelled. The lease table
// is built fresh from Have — i.e. from the durable store — which is how
// a restarted coordinator resumes a half-dispatched campaign: shards
// already recorded start done, everything else is re-dispatched.
func (c *Coordinator) RunJob(ctx context.Context, job Job) error {
	if job.Campaign == "" {
		return fmt.Errorf("dispatch: job needs a campaign id")
	}
	if job.Sink == nil {
		return fmt.Errorf("dispatch: job %s needs a sink", job.Campaign)
	}
	j := &runningJob{
		job:    job,
		table:  NewTable(job.Units, job.Have, c.opt.shardSize()),
		failed: make(chan struct{}),
	}
	if c.opt.Events != nil {
		j.table.SetEvents(c.opt.Events, job.Campaign)
	}
	c.mu.Lock()
	for _, other := range c.jobs {
		if other.job.Campaign == job.Campaign {
			c.mu.Unlock()
			return fmt.Errorf("dispatch: campaign %s is already dispatched", job.Campaign)
		}
	}
	c.jobs = append(c.jobs, j)
	c.mu.Unlock()
	defer c.removeJob(j)

	select {
	case <-j.table.Done():
		return nil
	case <-j.failed:
		return j.failErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coordinator) removeJob(j *runningJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, other := range c.jobs {
		if other == j {
			c.jobs = append(c.jobs[:i], c.jobs[i+1:]...)
			return
		}
	}
}

// Register admits a worker and assigns its id. Re-registration after a
// coordinator restart simply allocates a fresh id; long-silent ids are
// pruned here (see pruneLocked), so a crash-looping worker cannot grow
// the registry without bound.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pruneLocked(now)
	c.nextWorker++
	id := fmt.Sprintf("w%s-%04d", c.epoch, c.nextWorker)
	c.workers[id] = &workerInfo{id: id, seq: c.nextWorker, name: req.Name, registered: now, lastSeen: now}
	return RegisterResponse{Worker: id, LeaseTTL: c.opt.leaseTTL()}
}

// pruneLocked forgets workers silent for ten active-windows (20 lease
// TTLs): they are dead, and a survivor that went that quiet simply gets
// ErrUnknownWorker on its next call and re-registers — the same path it
// already takes across coordinator restarts. c.mu must be held.
func (c *Coordinator) pruneLocked(now time.Time) {
	cutoff := 10 * c.activeWindow()
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > cutoff {
			delete(c.workers, id)
		}
	}
}

// Lease hands the asking worker one pending shard, round-robining across
// campaigns so a long campaign cannot starve a later one. A nil response
// (and nil error) means no work is pending anywhere.
func (c *Coordinator) Lease(req LeaseRequest) (*LeaseResponse, error) {
	now := time.Now()
	c.mu.Lock()
	w, ok := c.workers[req.Worker]
	if !ok {
		c.mu.Unlock()
		return nil, ErrUnknownWorker
	}
	w.lastSeen = now
	jobs := append([]*runningJob(nil), c.jobs...)
	start := c.rr
	c.rr++
	c.mu.Unlock()

	ttl := c.opt.leaseTTL()
	for i := range jobs {
		j := jobs[(start+i)%len(jobs)]
		if l := j.table.Acquire(req.Worker, now, ttl); l != nil {
			return &LeaseResponse{
				Lease:    l.ID,
				Campaign: j.job.Campaign,
				Spec:     j.job.Spec,
				Shard:    l.Shard,
				TTL:      ttl,
			}, nil
		}
	}
	return nil, nil
}

// Report merges a worker's result batch (see runningJob.report) and
// renews or releases its lease. A report for a campaign no longer
// dispatched — finished, cancelled, or from before a coordinator restart
// — answers Lost so the worker moves on.
func (c *Coordinator) Report(req ReportRequest) (ReportResponse, error) {
	now := time.Now()
	c.mu.Lock()
	w, ok := c.workers[req.Worker]
	if !ok {
		c.mu.Unlock()
		return ReportResponse{}, ErrUnknownWorker
	}
	w.lastSeen = now
	var j *runningJob
	for _, cand := range c.jobs {
		if cand.job.Campaign == req.Campaign {
			j = cand
			break
		}
	}
	c.mu.Unlock()
	if j == nil {
		return ReportResponse{Lost: true}, nil
	}
	return j.report(c, req, now, c.opt.leaseTTL())
}

// WorkerStatus is one registered worker as reported by Workers.
type WorkerStatus struct {
	ID         string    `json:"id"`
	Name       string    `json:"name,omitempty"`
	Registered time.Time `json:"registered"`
	LastSeen   time.Time `json:"last_seen"`
	Active     bool      `json:"active"`
}

// activeWindow is how recently a worker must have leased or reported to
// count as active: two TTLs of silence and it is presumed gone.
func (c *Coordinator) activeWindow() time.Duration { return 2 * c.opt.leaseTTL() }

// Workers lists every registered worker in registration order.
func (c *Coordinator) Workers() []WorkerStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	infos := make([]*workerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		infos = append(infos, w)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].seq < infos[j].seq })
	out := make([]WorkerStatus, 0, len(infos))
	for _, w := range infos {
		out = append(out, WorkerStatus{
			ID: w.id, Name: w.name, Registered: w.registered, LastSeen: w.lastSeen,
			Active: now.Sub(w.lastSeen) <= c.activeWindow(),
		})
	}
	return out
}

// Stats is a point-in-time dispatch snapshot for observability.
type Stats struct {
	WorkersRegistered int
	WorkersActive     int
	WorkersExpected   int
	Jobs              int
	ShardsPending     int
	ShardsLeased      int
	ShardsDone        int
	RejectedResults   int64
	// OldestLeaseAgeSeconds is the age of the longest-outstanding lease
	// across all dispatched campaigns (0 when none are outstanding).
	OldestLeaseAgeSeconds float64
}

// Stats snapshots the fleet and lease state.
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	c.mu.Lock()
	s := Stats{
		WorkersRegistered: len(c.workers),
		WorkersExpected:   c.opt.WorkersExpected,
		Jobs:              len(c.jobs),
		RejectedResults:   c.rejected.Load(),
	}
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.activeWindow() {
			s.WorkersActive++
		}
	}
	jobs := append([]*runningJob(nil), c.jobs...)
	c.mu.Unlock()
	for _, j := range jobs {
		p, l, d := j.table.Counts(now)
		s.ShardsPending += p
		s.ShardsLeased += l
		s.ShardsDone += d
		if age := j.table.OldestLeaseAge(now).Seconds(); age > s.OldestLeaseAgeSeconds {
			s.OldestLeaseAgeSeconds = age
		}
	}
	return s
}
