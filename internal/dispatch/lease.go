package dispatch

import (
	"fmt"
	"sync"
	"time"
)

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shardEntry is one shard's live bookkeeping. remaining holds the linear
// indices not yet durable; a shard is done exactly when remaining
// empties, regardless of which lease (or how many, across expiries)
// delivered the trials.
type shardEntry struct {
	unit, start, count int
	state              shardState
	lease              string
	worker             string
	issued             time.Time // when the current lease was acquired
	expiry             time.Time
	remaining          map[int]struct{}
}

// Lease is one issued shard lease.
type Lease struct {
	ID    string
	Shard Shard
}

// Table is the lease table of one campaign: the grid carved into shards,
// each pending, leased (with expiry), or done. It is rebuilt from the
// durable store on every coordinator boot — `have` marks trials already
// recorded — which is what lets leases survive coordinator restarts
// without their own persistence.
type Table struct {
	mu        sync.Mutex
	units     []UnitGrid
	shardSize int
	// unitBase[i] is the index of unit i's first shard in shards, so a
	// trial key maps to its shard in O(1).
	unitBase  []int
	shards    []*shardEntry
	leases    map[string]*shardEntry
	nextLease int
	doneCount int
	done      chan struct{}
	// events, if set, receives lease lifecycle trace events labeled with
	// campaign. Purely diagnostic: the table's behavior is identical with
	// or without a sink.
	events   EventSink
	campaign string
}

// SetEvents attaches a trace-event sink; events are labeled with the
// given campaign id. Call before the table is shared.
func (t *Table) SetEvents(sink EventSink, campaign string) {
	t.events = sink
	t.campaign = campaign
}

// emit forwards one trace event to the sink, if any.
func (t *Table) emit(kind, detail string) {
	if t.events != nil {
		t.events.Emit(kind, t.campaign, detail)
	}
}

// NewTable carves the grid into shards of shardSize trials, marking
// trials for which have returns true as already durable. Shards whose
// every trial is durable start done, so a resumed campaign only
// dispatches the remainder.
func NewTable(units []UnitGrid, have func(Key) bool, shardSize int) *Table {
	if shardSize <= 0 {
		shardSize = 16
	}
	t := &Table{
		units:     units,
		shardSize: shardSize,
		leases:    make(map[string]*shardEntry),
		done:      make(chan struct{}),
	}
	for u, g := range units {
		t.unitBase = append(t.unitBase, len(t.shards))
		trials, size := g.trials(), g.size()
		for start := 0; start < size; start += shardSize {
			count := min(shardSize, size-start)
			e := &shardEntry{unit: u, start: start, count: count, remaining: make(map[int]struct{}, count)}
			for i := start; i < start+count; i++ {
				if have == nil || !have(Key{Unit: u, RateIdx: i / trials, TrialIdx: i % trials}) {
					e.remaining[i] = struct{}{}
				}
			}
			if len(e.remaining) == 0 {
				e.state = shardDone
				t.doneCount++
			}
			t.shards = append(t.shards, e)
		}
	}
	if t.doneCount == len(t.shards) {
		close(t.done)
	}
	return t
}

// Done is closed once every trial in the grid is durable.
func (t *Table) Done() <-chan struct{} { return t.done }

// Acquire leases the first pending shard (lowest shard index — expired
// shards re-enter at their original position, so reassignment is
// deterministic and front-of-grid first) to worker until now+ttl. It
// returns nil when nothing is pending.
func (t *Table) Acquire(worker string, now time.Time, ttl time.Duration) *Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	for _, e := range t.shards {
		if e.state != shardPending {
			continue
		}
		t.nextLease++
		id := fmt.Sprintf("l%06d", t.nextLease)
		e.state = shardLeased
		e.lease, e.worker, e.expiry = id, worker, now.Add(ttl)
		e.issued = now
		t.leases[id] = e
		t.emit("lease.acquired", fmt.Sprintf("%s worker=%s unit=%d start=%d count=%d", id, worker, e.unit, e.start, e.count))
		return &Lease{ID: id, Shard: Shard{Unit: e.unit, Start: e.start, Count: e.count, Skip: e.skipLocked()}}
	}
	return nil
}

// skipLocked lists the already-durable indices inside the shard's range
// (ascending by construction), so a reassigned shard re-executes only
// what its previous lease(s) did not deliver.
func (e *shardEntry) skipLocked() []int {
	var skip []int
	for i := e.start; i < e.start+e.count; i++ {
		if _, missing := e.remaining[i]; !missing {
			skip = append(skip, i)
		}
	}
	return skip
}

// Report folds a batch of durable trial keys into the table and advances
// the lease: an empty batch is a heartbeat (renews the expiry), done
// releases the lease (back to pending if trials are still missing — the
// worker's claim is checked against the durable record, never trusted).
// The returned lost tells the reporting worker to abandon the shard: its
// lease has expired, been reassigned, or the shard is already complete.
// Keys must already be durable (sunk to the store) when Report is
// called; out-of-grid keys are ignored.
func (t *Table) Report(leaseID string, keys []Key, done bool, now time.Time, ttl time.Duration) (lost bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	e, ok := t.leases[leaseID]
	t.markDurableLocked(keys)
	if !ok {
		return true
	}
	if e.state == shardDone {
		return false // this very report finished the shard — nothing was lost
	}
	if done {
		// The worker claims the shard is finished but trials are still
		// missing (dropped by verification, or skipped): re-expose it.
		delete(t.leases, leaseID)
		e.lease, e.worker = "", ""
		e.state = shardPending
		t.emit("shard.requeued", fmt.Sprintf("%s unit=%d start=%d missing=%d", leaseID, e.unit, e.start, len(e.remaining)))
		return false
	}
	e.expiry = now.Add(ttl)
	return false
}

// markDurableLocked folds durable trial keys into their shards' residual
// sets. Reports are the only entry point — including reports on stale
// (expired/reassigned) leases, whose results are still merged: the store
// dedups and the values are deterministic, so durable is durable no
// matter which lease delivered it.
func (t *Table) markDurableLocked(keys []Key) {
	for _, k := range keys {
		if k.Unit < 0 || k.Unit >= len(t.units) {
			continue
		}
		g := t.units[k.Unit]
		if k.RateIdx < 0 || k.RateIdx >= g.Rates || k.TrialIdx < 0 || k.TrialIdx >= g.trials() {
			continue
		}
		linear := k.RateIdx*g.trials() + k.TrialIdx
		e := t.shards[t.unitBase[k.Unit]+linear/t.shardSize]
		delete(e.remaining, linear)
		if e.state != shardDone && len(e.remaining) == 0 {
			if e.lease != "" {
				delete(t.leases, e.lease)
				e.lease, e.worker = "", ""
			}
			e.state = shardDone
			t.doneCount++
			if t.doneCount == len(t.shards) {
				close(t.done)
			}
		}
	}
}

// expireLocked reclaims shards whose lease ran out of heartbeat: the
// worker died or wedged, so the shard returns to the pending pool for
// reassignment.
func (t *Table) expireLocked(now time.Time) {
	for id, e := range t.leases {
		if e.expiry.Before(now) {
			delete(t.leases, id)
			e.state = shardPending
			worker := e.worker
			e.lease, e.worker = "", ""
			t.emit("lease.expired", fmt.Sprintf("%s worker=%s unit=%d start=%d", id, worker, e.unit, e.start))
		}
	}
}

// OldestLeaseAge reports how long the longest-outstanding lease has been
// held as of now (0 when no leases are outstanding). Expired leases are
// reclaimed first, so a wedged worker shows up as requeued shards, not as
// an ever-growing age.
func (t *Table) OldestLeaseAge(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	var oldest time.Duration
	for _, e := range t.leases {
		if age := now.Sub(e.issued); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// Counts reports the table's shard states after reclaiming expired
// leases at now.
func (t *Table) Counts(now time.Time) (pending, leased, done int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(now)
	for _, e := range t.shards {
		switch e.state {
		case shardPending:
			pending++
		case shardLeased:
			leased++
		case shardDone:
			done++
		}
	}
	return pending, leased, done
}
