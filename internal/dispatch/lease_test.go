package dispatch

import (
	"reflect"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)

func keys(unit int, trials int, linear ...int) []Key {
	out := make([]Key, len(linear))
	for i, l := range linear {
		out[i] = Key{Unit: unit, RateIdx: l / trials, TrialIdx: l % trials}
	}
	return out
}

func TestTableCarving(t *testing.T) {
	// unit 0: 2 rates × 3 trials = 6 -> shards [0,4) [4,6); unit 1:
	// 1 rate × 4 trials -> one shard [0,4).
	tb := NewTable([]UnitGrid{{Rates: 2, Trials: 3}, {Rates: 1, Trials: 4}}, nil, 4)
	if len(tb.shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(tb.shards))
	}
	p, l, d := tb.Counts(t0)
	if p != 3 || l != 0 || d != 0 {
		t.Fatalf("counts = %d/%d/%d, want 3 pending", p, l, d)
	}
	got := []Shard{}
	for {
		le := tb.Acquire("w1", t0, time.Minute)
		if le == nil {
			break
		}
		got = append(got, le.Shard)
	}
	want := []Shard{
		{Unit: 0, Start: 0, Count: 4},
		{Unit: 0, Start: 4, Count: 2},
		{Unit: 1, Start: 0, Count: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("acquired shards = %+v, want %+v", got, want)
	}
}

func TestTableResumeSkipsDurable(t *testing.T) {
	// Trials 0..3 of unit 0 already durable: the first shard starts done,
	// the second is leased with no skip, and a fully fresh grid follows.
	durable := map[Key]bool{}
	for _, k := range keys(0, 3, 0, 1, 2, 3) {
		durable[k] = true
	}
	tb := NewTable([]UnitGrid{{Rates: 2, Trials: 3}}, func(k Key) bool { return durable[k] }, 4)
	p, _, d := tb.Counts(t0)
	if p != 1 || d != 1 {
		t.Fatalf("counts = pending %d done %d, want 1/1", p, d)
	}
	le := tb.Acquire("w1", t0, time.Minute)
	if le == nil || le.Shard.Start != 4 || le.Shard.Skip != nil {
		t.Fatalf("lease = %+v, want fresh shard [4,6)", le)
	}
}

func TestTablePartialHaveYieldsSkip(t *testing.T) {
	durable := map[Key]bool{}
	for _, k := range keys(0, 3, 1, 2) {
		durable[k] = true
	}
	tb := NewTable([]UnitGrid{{Rates: 2, Trials: 3}}, func(k Key) bool { return durable[k] }, 6)
	le := tb.Acquire("w1", t0, time.Minute)
	if le == nil || !reflect.DeepEqual(le.Shard.Skip, []int{1, 2}) {
		t.Fatalf("lease = %+v, want skip [1 2]", le)
	}
}

func TestLeaseExpiryReassignmentOrdering(t *testing.T) {
	tb := NewTable([]UnitGrid{{Rates: 4, Trials: 2}}, nil, 2) // 4 shards
	ttl := time.Minute

	l0 := tb.Acquire("dead", t0, ttl) // shard [0,2)
	l1 := tb.Acquire("dead", t0, ttl) // shard [2,4)
	if l0 == nil || l1 == nil {
		t.Fatal("initial acquires failed")
	}
	// Worker "dead" reports part of shard 0, then goes silent.
	if lost := tb.Report(l0.ID, keys(0, 2, 0), false, t0.Add(10*time.Second), ttl); lost {
		t.Fatal("live lease reported lost")
	}

	// Before expiry another worker gets the next pending shard, not the
	// leased ones.
	l2 := tb.Acquire("w2", t0.Add(30*time.Second), ttl)
	if l2 == nil || l2.Shard.Start != 4 {
		t.Fatalf("pre-expiry acquire = %+v, want shard [4,6)", l2)
	}

	// After both of dead's leases expire (l1 at t0+60s, the renewed l0 at
	// t0+70s) but while w2's own lease is still live (until t0+90s),
	// reassignment hands out the lowest shard first — shard 0 with the
	// delivered trial in Skip, then shard 1 — before the still-pending
	// tail shard.
	late := t0.Add(80 * time.Second)
	r0 := tb.Acquire("w2", late, ttl)
	if r0 == nil || r0.Shard.Start != 0 || !reflect.DeepEqual(r0.Shard.Skip, []int{0}) {
		t.Fatalf("first reassignment = %+v, want shard [0,2) skip [0]", r0)
	}
	r1 := tb.Acquire("w2", late, ttl)
	if r1 == nil || r1.Shard.Start != 2 || r1.Shard.Skip != nil {
		t.Fatalf("second reassignment = %+v, want shard [2,4) no skip", r1)
	}
	r2 := tb.Acquire("w2", late, ttl)
	if r2 == nil || r2.Shard.Start != 6 {
		t.Fatalf("third acquire = %+v, want tail shard [6,8)", r2)
	}
	// The stale worker's report now answers lost.
	if lost := tb.Report(l0.ID, nil, false, late, ttl); !lost {
		t.Error("expired lease report not lost")
	}
}

func TestHeartbeatRenewsLease(t *testing.T) {
	tb := NewTable([]UnitGrid{{Rates: 1, Trials: 2}}, nil, 2)
	ttl := time.Minute
	le := tb.Acquire("w1", t0, ttl)
	// Empty report at t0+50s pushes expiry to t0+110s.
	if lost := tb.Report(le.ID, nil, false, t0.Add(50*time.Second), ttl); lost {
		t.Fatal("heartbeat lost a live lease")
	}
	if other := tb.Acquire("w2", t0.Add(90*time.Second), ttl); other != nil {
		t.Fatalf("renewed lease was reassigned: %+v", other)
	}
	if other := tb.Acquire("w2", t0.Add(3*time.Minute), ttl); other == nil {
		t.Fatal("lease never expired after heartbeats stopped")
	}
}

func TestReportDoneIncompleteRequeues(t *testing.T) {
	tb := NewTable([]UnitGrid{{Rates: 1, Trials: 4}}, nil, 4)
	le := tb.Acquire("w1", t0, time.Minute)
	// Worker claims done but delivered only half the shard: the claim is
	// not trusted, the shard goes back to pending with the durable half
	// in Skip.
	if lost := tb.Report(le.ID, keys(0, 4, 0, 1), true, t0, time.Minute); lost {
		t.Fatal("done report lost")
	}
	select {
	case <-tb.Done():
		t.Fatal("table done with half the grid missing")
	default:
	}
	re := tb.Acquire("w2", t0, time.Minute)
	if re == nil || !reflect.DeepEqual(re.Shard.Skip, []int{0, 1}) {
		t.Fatalf("requeued lease = %+v, want skip [0 1]", re)
	}
	if lost := tb.Report(re.ID, keys(0, 4, 2, 3), true, t0, time.Minute); lost {
		t.Fatal("completing report lost")
	}
	select {
	case <-tb.Done():
	default:
		t.Fatal("table not done after full grid delivered")
	}
}

func TestStaleLeaseReportStillCompletesShard(t *testing.T) {
	tb := NewTable([]UnitGrid{{Rates: 1, Trials: 2}}, nil, 2)
	ttl := time.Minute
	l1 := tb.Acquire("w1", t0, ttl)
	// w1 goes silent; the shard is reassigned to w2 — then w1's full
	// report arrives late, on the expired lease. The results are durable
	// either way, so they complete the shard out from under w2, and both
	// workers are told to move on.
	late := t0.Add(2 * time.Minute)
	l2 := tb.Acquire("w2", late, ttl)
	if l2 == nil || l2.Shard.Start != 0 {
		t.Fatalf("reassignment = %+v, want shard [0,2)", l2)
	}
	if lost := tb.Report(l1.ID, keys(0, 2, 0, 1), false, late, ttl); !lost {
		t.Error("stale lease report not answered lost")
	}
	select {
	case <-tb.Done():
	default:
		t.Fatal("table not done after stale report covered the grid")
	}
	if lost := tb.Report(l2.ID, nil, false, late, ttl); !lost {
		t.Error("lease over a completed shard not reported lost")
	}
}

func TestOutOfGridKeysIgnored(t *testing.T) {
	tb := NewTable([]UnitGrid{{Rates: 1, Trials: 2}}, nil, 2)
	le := tb.Acquire("w1", t0, time.Minute)
	junk := []Key{{Unit: 5, RateIdx: 0, TrialIdx: 0}, {Unit: 0, RateIdx: 9, TrialIdx: 0}, {Unit: -1}, {Unit: 0, RateIdx: 0, TrialIdx: 7}}
	if lost := tb.Report(le.ID, junk, false, t0, time.Minute); lost {
		t.Fatal("junk keys lost a live lease")
	}
	p, l, d := tb.Counts(t0)
	if p != 0 || l != 1 || d != 0 {
		t.Fatalf("counts after junk keys = %d/%d/%d, want the shard still leased", p, l, d)
	}
	select {
	case <-tb.Done():
		t.Fatal("junk keys completed the grid")
	default:
	}
}

func TestEmptyGridStartsDone(t *testing.T) {
	tb := NewTable(nil, nil, 4)
	select {
	case <-tb.Done():
	default:
		t.Fatal("empty grid not done")
	}
	tbHave := NewTable([]UnitGrid{{Rates: 2, Trials: 2}}, func(Key) bool { return true }, 3)
	select {
	case <-tbHave.Done():
	default:
		t.Fatal("fully durable grid not done")
	}
}
