package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// trialValue is the deterministic "trial function" coordinator tests
// execute: any worker computing the same key gets the same value.
func trialValue(k Key) float64 {
	return float64(k.Unit*1000 + k.RateIdx*10 + k.TrialIdx)
}

func resultFor(k Key) TrialResult {
	return TrialResult{
		Unit: k.Unit, RateIdx: k.RateIdx, TrialIdx: k.TrialIdx,
		Rate: float64(k.RateIdx), Seed: uint64(k.TrialIdx), Value: trialValue(k),
	}
}

// runWorker drives one fake worker against the coordinator until the
// job drains: register, lease, execute, report done.
func runWorker(t *testing.T, c *Coordinator, stop <-chan struct{}) {
	t.Helper()
	reg := c.Register(RegisterRequest{Name: "test"})
	for {
		select {
		case <-stop:
			return
		default:
		}
		lease, err := c.Lease(LeaseRequest{Worker: reg.Worker})
		if err != nil {
			t.Errorf("lease: %v", err)
			return
		}
		if lease == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		sh := lease.Shard
		skip := map[int]bool{}
		for _, i := range sh.Skip {
			skip[i] = true
		}
		var results []TrialResult
		for i := sh.Start; i < sh.Start+sh.Count; i++ {
			if skip[i] {
				continue
			}
			results = append(results, resultFor(Key{Unit: sh.Unit, RateIdx: i / 2, TrialIdx: i % 2}))
		}
		resp, err := c.Report(ReportRequest{
			Worker: reg.Worker, Campaign: lease.Campaign, Lease: lease.Lease,
			Results: results, Done: true,
		})
		if err != nil {
			t.Errorf("report: %v", err)
			return
		}
		_ = resp
	}
}

func TestCoordinatorRunJobDrainsGrid(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute, ShardSize: 3})
	var mu sync.Mutex
	got := map[Key]float64{}
	job := Job{
		Campaign: "c0001",
		Spec:     []byte(`{"x":1}`),
		Units:    []UnitGrid{{Rates: 3, Trials: 2}, {Rates: 2, Trials: 2}},
		Sink: func(rs []TrialResult) error {
			mu.Lock()
			defer mu.Unlock()
			for _, r := range rs {
				if v, dup := got[r.Key()]; dup && v != r.Value {
					return fmt.Errorf("conflicting values for %+v", r.Key())
				}
				got[r.Key()] = r.Value
			}
			return nil
		},
	}
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 2; i++ {
		go runWorker(t, c, stop)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.RunJob(ctx, job); err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if len(got) != 3*2+2*2 {
		t.Fatalf("sank %d trials, want %d", len(got), 10)
	}
	for k, v := range got {
		if v != trialValue(k) {
			t.Errorf("key %+v = %v, want %v", k, v, trialValue(k))
		}
	}
	if s := c.Stats(); s.Jobs != 0 {
		t.Errorf("jobs after RunJob = %d, want 0", s.Jobs)
	}
}

func TestUnknownWorker(t *testing.T) {
	c := New(Options{})
	if _, err := c.Lease(LeaseRequest{Worker: "w9999"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("lease err = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Report(ReportRequest{Worker: "w9999"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("report err = %v, want ErrUnknownWorker", err)
	}
}

func TestReportUnknownCampaignAnswersLost(t *testing.T) {
	c := New(Options{})
	reg := c.Register(RegisterRequest{})
	resp, err := c.Report(ReportRequest{Worker: reg.Worker, Campaign: "gone", Lease: "l1"})
	if err != nil || !resp.Lost {
		t.Errorf("report = %+v, %v; want lost", resp, err)
	}
}

func TestLeaseNoJobs(t *testing.T) {
	c := New(Options{})
	reg := c.Register(RegisterRequest{})
	lease, err := c.Lease(LeaseRequest{Worker: reg.Worker})
	if err != nil || lease != nil {
		t.Errorf("lease = %+v, %v; want no work", lease, err)
	}
}

func TestSinkErrorFailsJob(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	boom := errors.New("disk full")
	errc := make(chan error, 1)
	go func() {
		errc <- c.RunJob(context.Background(), Job{
			Campaign: "c1",
			Units:    []UnitGrid{{Rates: 1, Trials: 1}},
			Sink:     func([]TrialResult) error { return boom },
		})
	}()
	reg := c.Register(RegisterRequest{})
	var lease *LeaseResponse
	for lease == nil {
		var err error
		if lease, err = c.Lease(LeaseRequest{Worker: reg.Worker}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Report(ReportRequest{
		Worker: reg.Worker, Campaign: "c1", Lease: lease.Lease,
		Results: []TrialResult{resultFor(Key{})},
	})
	if err != nil || !resp.Lost {
		t.Errorf("report during sink failure = %+v, %v; want lost", resp, err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, boom) {
			t.Errorf("RunJob err = %v, want %v", err, boom)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunJob never failed")
	}
}

func TestVerifyRejectsAndRequeues(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute, ShardSize: 2})
	var mu sync.Mutex
	sunk := 0
	done := make(chan error, 1)
	go func() {
		done <- c.RunJob(context.Background(), Job{
			Campaign: "c1",
			Units:    []UnitGrid{{Rates: 1, Trials: 2}},
			Verify:   func(r TrialResult) bool { return r.Seed == uint64(r.TrialIdx) },
			Sink: func(rs []TrialResult) error {
				mu.Lock()
				sunk += len(rs)
				mu.Unlock()
				return nil
			},
		})
	}()
	reg := c.Register(RegisterRequest{})
	var lease *LeaseResponse
	for lease == nil {
		lease, _ = c.Lease(LeaseRequest{Worker: reg.Worker})
	}
	// One good record, one with a wrong seed and one out of the grid.
	bad := resultFor(Key{TrialIdx: 1})
	bad.Seed = 999
	outside := resultFor(Key{Unit: 3})
	if resp, err := c.Report(ReportRequest{
		Worker: reg.Worker, Campaign: "c1", Lease: lease.Lease,
		Results: []TrialResult{resultFor(Key{}), bad, outside}, Done: true,
	}); err != nil || resp.Lost || resp.Rejected != 2 {
		t.Fatalf("report = %+v, %v; want 2 rejected, not lost", resp, err)
	}
	if s := c.Stats(); s.RejectedResults != 2 {
		t.Errorf("rejected = %d, want 2", s.RejectedResults)
	}
	// The rejected trial's shard is pending again with the good trial
	// skipped; a correct report finishes the job.
	var re *LeaseResponse
	for re == nil {
		re, _ = c.Lease(LeaseRequest{Worker: reg.Worker})
	}
	if len(re.Shard.Skip) != 1 || re.Shard.Skip[0] != 0 {
		t.Fatalf("requeued shard = %+v, want skip [0]", re.Shard)
	}
	if _, err := c.Report(ReportRequest{
		Worker: reg.Worker, Campaign: "c1", Lease: re.Lease,
		Results: []TrialResult{resultFor(Key{TrialIdx: 1})}, Done: true,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunJob: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job never finished")
	}
	if sunk != 2 {
		t.Errorf("sunk = %d records, want 2", sunk)
	}
}

func TestDuplicateCampaignRejected(t *testing.T) {
	c := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- c.RunJob(ctx, Job{
			Campaign: "c1",
			Units:    []UnitGrid{{Rates: 1, Trials: 1}},
			Sink:     func([]TrialResult) error { return nil },
		})
	}()
	for c.Stats().Jobs == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := c.RunJob(ctx, Job{Campaign: "c1", Sink: func([]TrialResult) error { return nil }}); err == nil {
		t.Error("duplicate campaign accepted")
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunJob = %v", err)
	}
}

func TestRegisterPrunesLongSilentWorkers(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	old := c.Register(RegisterRequest{Name: "old"})
	c.mu.Lock()
	c.workers[old.Worker].lastSeen = time.Now().Add(-21 * time.Minute) // > 10 × activeWindow
	c.mu.Unlock()
	fresh := c.Register(RegisterRequest{Name: "fresh"})
	if _, err := c.Lease(LeaseRequest{Worker: old.Worker}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("pruned worker lease err = %v, want ErrUnknownWorker (re-register signal)", err)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].ID != fresh.Worker {
		t.Errorf("workers after prune = %+v, want only %s", ws, fresh.Worker)
	}
}

func TestWorkersListingAndStats(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute, WorkersExpected: 3})
	a := c.Register(RegisterRequest{Name: "a"})
	b := c.Register(RegisterRequest{Name: "b"})
	if a.Worker == b.Worker {
		t.Fatalf("both workers got id %s", a.Worker)
	}
	ws := c.Workers()
	if len(ws) != 2 || ws[0].ID != a.Worker || ws[1].ID != b.Worker {
		t.Fatalf("workers = %+v, want [%s %s] in registration order", ws, a.Worker, b.Worker)
	}
	for _, w := range ws {
		if !w.Active {
			t.Errorf("worker %s inactive right after registering", w.ID)
		}
	}
	s := c.Stats()
	if s.WorkersRegistered != 2 || s.WorkersActive != 2 || s.WorkersExpected != 3 {
		t.Errorf("stats = %+v", s)
	}
}
