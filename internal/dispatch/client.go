package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the worker side of the lease protocol: a thin HTTP client
// for robustd's /workers endpoints. It is not safe for concurrent
// Register calls; Lease and Report only read the registered id, so a
// worker may report from one goroutine while its main loop leases from
// another once registration is done.
type Client struct {
	base   string
	name   string
	hc     *http.Client
	worker string
	ttl    time.Duration
}

// NewClient creates a client for the coordinator at base (e.g.
// "http://coordinator:8080") identifying itself as name.
func NewClient(base, name string) *Client {
	return &Client{
		base: base,
		name: name,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Registered reports whether the client holds a worker id.
func (c *Client) Registered() bool { return c.worker != "" }

// WorkerID returns the coordinator-assigned id ("" before Register).
func (c *Client) WorkerID() string { return c.worker }

// LeaseTTL returns the coordinator's lease TTL (0 before Register).
func (c *Client) LeaseTTL() time.Duration { return c.ttl }

// Forget drops the worker id so the next Register starts fresh — called
// after ErrUnknownWorker, i.e. after a coordinator restart.
func (c *Client) Forget() { c.worker = "" }

// Register announces the worker and stores the assigned id and TTL.
func (c *Client) Register(ctx context.Context) error {
	var resp RegisterResponse
	if err := c.post(ctx, "/workers/register", RegisterRequest{Name: c.name}, &resp); err != nil {
		return err
	}
	if resp.Worker == "" {
		return fmt.Errorf("dispatch: register: coordinator assigned no worker id")
	}
	c.worker, c.ttl = resp.Worker, resp.LeaseTTL
	return nil
}

// Lease asks for a shard. A nil response with nil error means the
// coordinator has no pending work; ErrUnknownWorker means the
// coordinator forgot us (restart) — Forget, Register, retry.
func (c *Client) Lease(ctx context.Context) (*LeaseResponse, error) {
	var resp LeaseResponse
	ok, err := c.postMaybe(ctx, "/workers/lease", LeaseRequest{Worker: c.worker}, &resp)
	if err != nil || !ok {
		return nil, err
	}
	return &resp, nil
}

// Report delivers a result batch (possibly empty — a heartbeat) for a
// lease; done releases it. The response says whether to abandon the
// shard (Lost) and how many results the coordinator refused (Rejected —
// the version-skew signal).
func (c *Client) Report(ctx context.Context, campaign, lease string, results []TrialResult, done bool) (ReportResponse, error) {
	var resp ReportResponse
	err := c.post(ctx, "/workers/report", ReportRequest{
		Worker: c.worker, Campaign: campaign, Lease: lease, Results: results, Done: done,
	}, &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	ok, err := c.postMaybe(ctx, path, req, resp)
	if err == nil && !ok {
		return fmt.Errorf("dispatch: %s: unexpected empty response", path)
	}
	return err
}

// postMaybe POSTs req as JSON and decodes the response into resp; ok is
// false on 204 No Content (no work). 404 maps to ErrUnknownWorker —
// these endpoints have no other not-found cause.
func (c *Client) postMaybe(ctx context.Context, path string, req, resp any) (ok bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := c.hc.Do(hr)
	if err != nil {
		return false, err
	}
	defer res.Body.Close()
	// The cap mirrors the coordinator's request cap: a lease response
	// embeds the campaign spec, which submit accepts up to 1 MiB, so the
	// read limit must sit comfortably above it or near-cap specs would
	// truncate every lease.
	data, err := io.ReadAll(io.LimitReader(res.Body, 8<<20))
	if err != nil {
		return false, err
	}
	switch res.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(data, resp); err != nil {
			return false, fmt.Errorf("dispatch: %s: bad response %q: %w", path, data, err)
		}
		return true, nil
	case http.StatusNoContent:
		return false, nil
	case http.StatusNotFound:
		// The worker endpoints answer 404 only for an unknown worker id;
		// any other 404 body is a plain routing miss (-coordinator pointing
		// at the wrong path or a non-robustd server) and must surface as
		// itself, not as the re-register-forever signal.
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && strings.Contains(e.Error, "unknown worker") {
			return false, ErrUnknownWorker
		}
		return false, fmt.Errorf("dispatch: %s: coordinator answered 404: %s", path, bytes.TrimSpace(data))
	default:
		return false, fmt.Errorf("dispatch: %s: coordinator answered %d: %s", path, res.StatusCode, bytes.TrimSpace(data))
	}
}
