// Package dispatch shards campaign trial grids across a fleet of
// pull-based workers.
//
// The coordinator side (owned by robustd's campaign manager) carves each
// campaign's deterministic (unit, rate, trial) grid into contiguous
// shards, hands them out as time-limited leases to whichever registered
// worker asks first, and merges the trial results workers stream back.
// Leases that expire — a worker was killed, wedged, or partitioned —
// return their shard to the pending pool, so every trial is executed by
// someone and no shard is ever lost. Workers pull: they register, poll
// for a lease, execute the shard from (spec, unit, rate index, trial
// index) alone — trial seeds derive from the spec, so any worker
// computes bit-identical values — and report results in batches that
// double as lease-renewing heartbeats.
//
// The package is deliberately campaign-agnostic: it deals in grid
// dimensions, trial keys, and opaque spec payloads. The campaign engine
// supplies `have` (which trials are already durable), `verify` (does a
// reported result carry the seed/rate the grid dictates), and `sink`
// (merge results into the dedup-keyed store); workers get the spec bytes
// verbatim and compile them with the same code the coordinator used.
// Because the store collapses duplicate trial keys and every value is
// deterministic in its seed, result merging is order- and
// duplication-insensitive: a campaign executed by any number of workers,
// with any interleaving of lease expiry and reassignment, materializes a
// table byte-identical to a single-process run.
package dispatch

import (
	"encoding/json"
	"errors"
	"time"
)

// Key addresses one trial in a campaign grid.
type Key struct {
	Unit     int
	RateIdx  int
	TrialIdx int
}

// UnitGrid is the shape of one unit's rate×trial grid — all the
// coordinator needs to carve shards without knowing what the trials do.
type UnitGrid struct {
	Rates  int `json:"rates"`
	Trials int `json:"trials"`
}

// TrialsPerCell normalizes a per-cell trial count exactly like
// harness.Sweep does (<=0 means one trial per cell). Coordinator,
// workers, and tests all linearize grids with this one rule — a private
// re-derivation on either side would silently shift every (rate, trial)
// coordinate.
func TrialsPerCell(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

// trials is the grid's normalized per-cell trial count.
func (g UnitGrid) trials() int { return TrialsPerCell(g.Trials) }

// size is the unit's linearized grid length.
func (g UnitGrid) size() int { return g.Rates * g.trials() }

// Shard is a contiguous slice of one unit's linearized grid: indices
// [Start, Start+Count) with index = rateIdx*trials + trialIdx. Skip
// lists the (absolute) indices inside the range that are already durable
// — on a resumed or reassigned shard the worker executes only the rest.
type Shard struct {
	Unit  int   `json:"unit"`
	Start int   `json:"start"`
	Count int   `json:"count"`
	Skip  []int `json:"skip,omitempty"`
}

// TrialResult is one executed trial as reported by a worker. Field tags
// mirror the campaign store's Record so wire dumps read the same.
type TrialResult struct {
	Unit     int     `json:"u"`
	RateIdx  int     `json:"r"`
	TrialIdx int     `json:"t"`
	Rate     float64 `json:"rate"`
	Seed     uint64  `json:"seed"`
	Value    float64 `json:"v"`
}

// Key returns the trial's grid address.
func (r TrialResult) Key() Key { return Key{r.Unit, r.RateIdx, r.TrialIdx} }

// Wire messages for the three worker endpoints robustd serves
// (POST /workers/register, /workers/lease, /workers/report). Durations
// travel as time.Duration's default integer nanoseconds — both ends are
// this codebase.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its id and the lease TTL it must
// heartbeat within.
type RegisterResponse struct {
	Worker   string        `json:"worker"`
	LeaseTTL time.Duration `json:"lease_ttl"`
}

// LeaseRequest asks for a shard to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse hands the worker one leased shard plus everything needed
// to execute it deterministically: the campaign's spec bytes (compiled
// worker-side with the same code the coordinator used) and the shard's
// grid coordinates.
type LeaseResponse struct {
	Lease    string          `json:"lease"`
	Campaign string          `json:"campaign"`
	Spec     json.RawMessage `json:"spec"`
	Shard    Shard           `json:"shard"`
	TTL      time.Duration   `json:"ttl"`
}

// ReportRequest streams a batch of results for a leased shard. An empty
// Results slice is a pure heartbeat (renews the lease). Done marks the
// worker's claim that it finished the shard; the coordinator trusts the
// durable record, not the claim — a done shard with trials still missing
// goes back to the pending pool.
type ReportRequest struct {
	Worker   string        `json:"worker"`
	Campaign string        `json:"campaign"`
	Lease    string        `json:"lease"`
	Results  []TrialResult `json:"results,omitempty"`
	Done     bool          `json:"done,omitempty"`
}

// ReportResponse tells the worker whether to keep going. Lost means the
// lease is gone — expired, reassigned, campaign finished or cancelled —
// and the worker should abandon the shard and ask for a new lease.
// Rejected counts results from this batch the coordinator refused
// (out-of-grid or failed seed/rate verification): a non-zero value means
// this worker computes a different grid than the coordinator — version
// skew — and re-executing the shard can only produce the same rejects,
// so the worker should stop serving the campaign, not retry.
type ReportResponse struct {
	Lost     bool `json:"lost,omitempty"`
	Rejected int  `json:"rejected,omitempty"`
}

// ErrUnknownWorker is returned (and mapped over HTTP 404) when a lease
// or report names a worker id the coordinator has no record of — the
// canonical sign of a coordinator restart. Workers re-register and
// continue.
var ErrUnknownWorker = errors.New("dispatch: unknown worker")

// EventSink receives lease lifecycle trace events (lease.acquired,
// lease.expired, shard.requeued). The interface is defined here rather
// than importing the observability layer so dispatch stays standalone;
// *obs.Hub satisfies it. Sinks must be cheap and concurrency-safe: they
// are called with lease-table locks held.
type EventSink interface {
	Emit(kind, campaign, detail string)
}

// Options configure a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker may go between reports before its
	// lease expires and the shard is reassigned (0 = 30s).
	LeaseTTL time.Duration
	// ShardSize is the number of trials per shard (0 = 16).
	ShardSize int
	// WorkersExpected is the operator-declared fleet size; informational
	// (surfaced in /metrics), never a gate on dispatch.
	WorkersExpected int
	// Events, if non-nil, receives lease lifecycle trace events.
	Events EventSink
}

func (o Options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 30 * time.Second
	}
	return o.LeaseTTL
}

func (o Options) shardSize() int {
	if o.ShardSize <= 0 {
		return 16
	}
	return o.ShardSize
}
