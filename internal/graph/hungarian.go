package graph

import (
	"math"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// Hungarian solves the maximum-weight bipartite matching problem on b with
// the O(n³) Hungarian (Kuhn-Munkres) algorithm, the same algorithm behind
// the OpenCV baseline the paper measures. All weight arithmetic and
// comparisons flow through u, so a faulty unit corrupts the dual updates
// exactly as FPU timing errors would.
//
// It returns the row→column assignment (−1 for unmatched rows) and ok=false
// when corrupted arithmetic drove the search into an unrecoverable state —
// counted as a failed run, matching the paper's success-rate metric.
func Hungarian(u *fpu.Unit, b *Bipartite) (assign []int, ok bool) {
	n, m := b.Left, b.Right
	if n == 0 || m == 0 {
		return make([]int, n), true
	}
	// The potentials formulation solves min-cost on a square matrix.
	// Convert max-weight to min-cost, padding to size s×s. Non-edges and
	// padding cells cost exactly maxW — the cost of leaving a row
	// unmatched — so the minimum-cost assignment maximizes the matching
	// weight with unmatched rows allowed (they land on maxW cells, which
	// the caller filters out below).
	s := n
	if m > s {
		s = m
	}
	maxW := b.W.MaxAbs()
	cost := linalg.NewDense(s, s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i < n && j < m && b.HasEdge(i, j) {
				cost.Set(i, j, u.Sub(maxW, b.W.At(i, j)))
			} else {
				cost.Set(i, j, maxW)
			}
		}
	}
	p, ok := assignMinCost(u, cost)
	if !ok {
		return nil, false
	}
	assign = make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for i := 0; i < n; i++ {
		j := p[i]
		// Padding cells encode "unmatched"; negative-weight edges are
		// dropped too, since removing one always raises the total weight.
		if j >= 0 && j < m && b.HasEdge(i, j) && b.W.At(i, j) >= 0 {
			assign[i] = j
		}
	}
	return assign, true
}

// assignMinCost runs the potentials/augmenting-path Hungarian method on a
// square cost matrix, arithmetic on u. Returns row→col.
func assignMinCost(u *fpu.Unit, cost *linalg.Dense) ([]int, bool) {
	n := cost.Rows
	const inf = math.MaxFloat64
	uPot := make([]float64, n+1)
	vPot := make([]float64, n+1)
	p := make([]int, n+1)   // p[j]: row matched to column j (1-based; 0 = none)
	way := make([]int, n+1) // way[j]: previous column on the alternating path
	minv := make([]float64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		// Each sweep marks one more column used, so n+1 steps suffice on a
		// correct machine; the cap guards against fault-corrupted duals.
		for step := 0; ; step++ {
			if step > n+1 {
				return nil, false
			}
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := u.Sub(u.Sub(cost.At(i0-1, j-1), uPot[i0]), vPot[j])
				if u.Less(cur, minv[j]) {
					minv[j] = cur
					way[j] = j0
				}
				if u.Less(minv[j], delta) {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsNaN(delta) {
				// Corrupted comparisons left no admissible column.
				return nil, false
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					uPot[p[j]] = u.Add(uPot[p[j]], delta)
					vPot[j] = u.Sub(vPot[j], delta)
				} else {
					minv[j] = u.Sub(minv[j], delta)
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Unwind the alternating path. Corrupted comparisons can leave a
		// cycle in way[], so the unwind is bounded like the search above.
		for hop := 0; j0 != 0; hop++ {
			if hop > n+1 {
				return nil, false
			}
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign, true
}

// BruteForceMatching finds the exact maximum-weight matching by exhaustive
// search (reliable; for tests and tiny reference instances only).
func BruteForceMatching(b *Bipartite) ([]int, float64) {
	best := make([]int, b.Left)
	for i := range best {
		best[i] = -1
	}
	cur := make([]int, b.Left)
	for i := range cur {
		cur[i] = -1
	}
	usedCol := make([]bool, b.Right)
	bestW := 0.0
	var rec func(row int, w float64)
	rec = func(row int, w float64) {
		if row == b.Left {
			if w > bestW {
				bestW = w
				copy(best, cur)
			}
			return
		}
		// Leave this row unmatched.
		cur[row] = -1
		rec(row+1, w)
		for j := 0; j < b.Right; j++ {
			if usedCol[j] || !b.HasEdge(row, j) {
				continue
			}
			usedCol[j] = true
			cur[row] = j
			rec(row+1, w+b.W.At(row, j))
			cur[row] = -1
			usedCol[j] = false
		}
	}
	rec(0, 0)
	return best, bestW
}
