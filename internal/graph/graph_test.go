package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"robustify/internal/fpu"
)

func TestBipartiteBasics(t *testing.T) {
	b := NewBipartite(2, 3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	if !b.HasEdge(0, 1) || b.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
	if b.Edges() != 2 {
		t.Errorf("Edges = %d", b.Edges())
	}
	w, valid := b.MatchingWeight([]int{1, 2})
	if !valid || w != 12 {
		t.Errorf("MatchingWeight = %v valid=%v", w, valid)
	}
	if _, valid := b.MatchingWeight([]int{0, 2}); valid {
		t.Error("matching using non-edge accepted")
	}
	if _, valid := b.MatchingWeight([]int{1, 1}); valid {
		t.Error("matching reusing a column accepted")
	}
	if _, valid := b.MatchingWeight([]int{1}); valid {
		t.Error("short assignment accepted")
	}
	w, valid = b.MatchingWeight([]int{-1, 2})
	if !valid || w != 7 {
		t.Errorf("partial matching = %v valid=%v", w, valid)
	}
}

func TestRandomBipartiteShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := RandomBipartite(rng, 5, 6, 30, 1, 2)
	if b.Edges() != 30 {
		t.Errorf("edges = %d, want 30", b.Edges())
	}
	for i := 0; i < 5; i++ {
		found := false
		for j := 0; j < 6; j++ {
			if b.HasEdge(i, j) {
				if w := b.W.At(i, j); w < 1 || w >= 2 {
					t.Errorf("weight out of range: %v", w)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("left vertex %d has no edges", i)
		}
	}
	// Edge cap.
	small := RandomBipartite(rng, 2, 2, 99, 1, 2)
	if small.Edges() != 4 {
		t.Errorf("capped edges = %d, want 4", small.Edges())
	}
}

// TestHungarianMatchesBruteForce is the core correctness property of the
// baseline: on a reliable unit the Hungarian result is optimal.
func TestHungarianMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		left, right := 1+rng.Intn(5), 1+rng.Intn(5)
		edges := 1 + rng.Intn(left*right)
		b := RandomBipartite(rng, left, right, edges, 0.5, 2)
		assign, ok := Hungarian(nil, b)
		if !ok {
			return false
		}
		w, valid := b.MatchingWeight(assign)
		if !valid {
			return false
		}
		_, bestW := BruteForceMatching(b)
		return math.Abs(w-bestW) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNewBipartiteRejectsEmptySides(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBipartite(0, 3) must panic")
		}
	}()
	NewBipartite(0, 3)
}

func TestHungarianSingleEdge(t *testing.T) {
	b := NewBipartite(1, 1)
	b.AddEdge(0, 0, 2)
	assign, ok := Hungarian(nil, b)
	if !ok || assign[0] != 0 {
		t.Errorf("single edge: assign=%v ok=%v", assign, ok)
	}
}

func TestHungarianDegradesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := RandomBipartite(rng, 5, 6, 30, 1, 2)
	_, bestW := BruteForceMatching(b)
	failures := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.05, uint64(trial+1)))
		assign, ok := Hungarian(u, b)
		if !ok {
			failures++
			continue
		}
		w, valid := b.MatchingWeight(assign)
		if !valid || math.Abs(w-bestW) > 1e-9 {
			failures++
		}
	}
	if failures == 0 {
		t.Error("Hungarian at 5% fault rate never failed; fault plumbing broken?")
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Classic diamond: s=0, t=3; two disjoint paths of capacity 3 and 2.
	net := NewFlowNetwork(4, 0, 3)
	net.Cap.Set(0, 1, 3)
	net.Cap.Set(1, 3, 3)
	net.Cap.Set(0, 2, 2)
	net.Cap.Set(2, 3, 2)
	flow, ok := MaxFlow(nil, net)
	if !ok {
		t.Fatal("MaxFlow failed on a reliable unit")
	}
	if v := FlowValue(net, flow); math.Abs(v-5) > 1e-9 {
		t.Errorf("flow value = %v, want 5", v)
	}
	if !FlowFeasible(net, flow, 1e-9) {
		t.Error("flow infeasible")
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// s → a → t where the middle edge is the bottleneck.
	net := NewFlowNetwork(3, 0, 2)
	net.Cap.Set(0, 1, 10)
	net.Cap.Set(1, 2, 4)
	flow, ok := MaxFlow(nil, net)
	if !ok {
		t.Fatal("MaxFlow failed")
	}
	if v := FlowValue(net, flow); math.Abs(v-4) > 1e-9 {
		t.Errorf("flow value = %v, want 4", v)
	}
}

// TestMaxFlowRandomFeasible: flows on random nets are always feasible and
// respect the cut bound out of the source.
func TestMaxFlowRandomFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		net := RandomFlowNetwork(rng, n, 2, 5)
		flow, ok := MaxFlow(nil, net)
		if !ok || !FlowFeasible(net, flow, 1e-9) {
			return false
		}
		var srcCap float64
		for w := 0; w < n; w++ {
			srcCap += net.Cap.At(net.Source, w)
		}
		v := FlowValue(net, flow)
		return v >= 0 && v <= srcCap+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFloydWarshallMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := RandomDiGraph(rng, n, 2*n, 9)
		fw := FloydWarshall(nil, g)
		dj := AllPairsDijkstra(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(fw.At(i, j)-dj.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewDiGraph(3)
	g.AddEdge(0, 1, 2)
	d := Dijkstra(g, 0)
	if d[0] != 0 || d[1] != 2 || d[2] != NoEdge {
		t.Errorf("Dijkstra = %v", d)
	}
}

func TestFloydWarshallDegradesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomDiGraph(rng, 8, 16, 9)
	exact := AllPairsDijkstra(g)
	bad := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+1)))
		d := FloydWarshall(u, g)
		for i := 0; i < g.N && bad <= trial; i++ {
			for j := 0; j < g.N; j++ {
				if math.Abs(d.At(i, j)-exact.At(i, j)) > 1e-6 {
					bad++
					break
				}
			}
		}
	}
	if bad == 0 {
		t.Error("Floyd-Warshall at 2% faults never degraded; plumbing broken?")
	}
}

func TestRandomDiGraphStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomDiGraph(rng, 10, 5, 4)
	d := AllPairsDijkstra(g)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if d.At(i, j) >= NoEdge {
				t.Fatalf("no path %d→%d in ring-based graph", i, j)
			}
		}
	}
}

func TestRandomFlowNetworkHasPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := RandomFlowNetwork(rng, 8, 2, 5)
	flow, ok := MaxFlow(nil, net)
	if !ok {
		t.Fatal("MaxFlow failed")
	}
	if FlowValue(net, flow) <= 0 {
		t.Error("generated network has zero max flow; chain guarantee broken")
	}
}

func TestHungarianLeftHeavy(t *testing.T) {
	// More left vertices than right: some rows must stay unmatched, and
	// the result must still be optimal.
	b := NewBipartite(3, 2)
	b.AddEdge(0, 0, 5)
	b.AddEdge(1, 0, 9)
	b.AddEdge(1, 1, 1)
	b.AddEdge(2, 1, 4)
	assign, ok := Hungarian(nil, b)
	if !ok {
		t.Fatal("failed")
	}
	w, valid := b.MatchingWeight(assign)
	if !valid {
		t.Fatalf("invalid assignment %v", assign)
	}
	_, bestW := BruteForceMatching(b)
	if math.Abs(w-bestW) > 1e-9 {
		t.Errorf("weight %v, want %v (assign %v)", w, bestW, assign)
	}
	if assign[0] != -1 {
		t.Errorf("row 0 should be unmatched in the optimum, got %v", assign)
	}
}

func TestHungarianNegativeWeightsSkipped(t *testing.T) {
	// A negative-weight edge should be left out of the matching.
	b := NewBipartite(1, 1)
	b.AddEdge(0, 0, -3)
	assign, ok := Hungarian(nil, b)
	if !ok {
		t.Fatal("failed")
	}
	if assign[0] != -1 {
		t.Errorf("negative edge matched: %v", assign)
	}
}
