package graph

import (
	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// MaxFlow computes a maximum s–t flow on net with the Ford-Fulkerson method
// (Edmonds-Karp: BFS augmenting paths), the paper's baseline max-flow
// implementation. Residual-capacity arithmetic and comparisons flow through
// u. It returns the flow matrix and ok=false when fault-corrupted residuals
// prevent the search from terminating within its iteration budget.
func MaxFlow(u *fpu.Unit, net *FlowNetwork) (flow *linalg.Dense, ok bool) {
	n := net.N
	flow = linalg.NewDense(n, n)
	parent := make([]int, n)
	queue := make([]int, 0, n)
	// On a correct machine Edmonds-Karp needs at most O(V·E) augmenting
	// iterations; the budget catches fault-induced livelock (faults can
	// conjure phantom residual capacity indefinitely).
	budget := 4*n*n*n + 64
	for iter := 0; ; iter++ {
		if iter > budget {
			return flow, false
		}
		// BFS over residual capacity.
		for i := range parent {
			parent[i] = -1
		}
		parent[net.Source] = net.Source
		queue = append(queue[:0], net.Source)
		for len(queue) > 0 && parent[net.Sink] == -1 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < n; w++ {
				if parent[w] != -1 {
					continue
				}
				if u.Less(0, residual(u, net, flow, v, w)) {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		if parent[net.Sink] == -1 {
			return flow, true // no augmenting path: done
		}
		// Bottleneck along the path.
		bottleneck := residual(u, net, flow, parent[net.Sink], net.Sink)
		for w := net.Sink; w != net.Source; w = parent[w] {
			bottleneck = u.Min(bottleneck, residual(u, net, flow, parent[w], w))
		}
		if !(bottleneck > 0) || !isFinite(bottleneck) {
			// A fault faked the path; no exact progress is possible.
			return flow, false
		}
		for w := net.Sink; w != net.Source; w = parent[w] {
			v := parent[w]
			flow.Set(v, w, u.Add(flow.At(v, w), bottleneck))
			flow.Set(w, v, u.Sub(flow.At(w, v), bottleneck))
		}
	}
}

func residual(u *fpu.Unit, net *FlowNetwork, flow *linalg.Dense, v, w int) float64 {
	return u.Sub(net.Cap.At(v, w), flow.At(v, w))
}

func isFinite(v float64) bool {
	return v == v && v < 1e308 && v > -1e308
}

// FlowValue returns the net flow out of the source, computed reliably
// (metric path).
func FlowValue(net *FlowNetwork, flow *linalg.Dense) float64 {
	var total float64
	for w := 0; w < net.N; w++ {
		total += flow.At(net.Source, w)
	}
	return total
}

// FlowFeasible reports whether flow respects capacities and conservation to
// within tol, computed reliably.
func FlowFeasible(net *FlowNetwork, flow *linalg.Dense, tol float64) bool {
	n := net.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f := flow.At(i, j)
			if f > net.Cap.At(i, j)+tol {
				return false
			}
			if f != f { // NaN
				return false
			}
		}
	}
	for v := 0; v < n; v++ {
		if v == net.Source || v == net.Sink {
			continue
		}
		var net2 float64
		for w := 0; w < n; w++ {
			net2 += flow.At(v, w)
		}
		if net2 > tol || net2 < -tol {
			return false
		}
	}
	return true
}
