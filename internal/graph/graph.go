// Package graph provides the graph types, reference algorithms, and random
// instance generators behind the paper's combinatorial benchmarks: bipartite
// matching (Hungarian), max-flow (Edmonds-Karp / Ford-Fulkerson), and
// all-pairs shortest paths (Floyd-Warshall, Dijkstra).
//
// Every algorithm that the paper runs as a faulty baseline takes an
// *fpu.Unit and routes its floating point arithmetic and comparisons through
// it; pass a nil unit for an exact reference run. Under fault injection the
// algorithms guard against corrupted control decisions (they bail out and
// report failure instead of looping or panicking), because a crashed
// baseline is still a data point in the paper's success-rate figures.
package graph

import (
	"math/rand"

	"robustify/internal/linalg"
)

// NoEdge is the sentinel length for absent edges in shortest-path inputs.
// A large finite value (rather than +Inf) keeps faulty-FPU arithmetic from
// collapsing to NaN on the first corrupted addition.
const NoEdge = 1e9

// Bipartite is a weighted bipartite graph over left vertices 0..Left-1 and
// right vertices 0..Right-1. Missing edges carry weight 0 in W and false in
// Has.
type Bipartite struct {
	Left, Right int
	W           *linalg.Dense // Left×Right edge weights
	Has         *[][]bool     // nil means complete
	hasData     [][]bool
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(left, right int) *Bipartite {
	b := &Bipartite{Left: left, Right: right, W: linalg.NewDense(left, right)}
	b.hasData = make([][]bool, left)
	for i := range b.hasData {
		b.hasData[i] = make([]bool, right)
	}
	b.Has = &b.hasData
	return b
}

// AddEdge inserts (or overwrites) the edge i–j with weight w.
func (b *Bipartite) AddEdge(i, j int, w float64) {
	b.W.Set(i, j, w)
	b.hasData[i][j] = true
}

// HasEdge reports whether edge i–j exists.
func (b *Bipartite) HasEdge(i, j int) bool { return b.hasData[i][j] }

// Edges returns the number of edges.
func (b *Bipartite) Edges() int {
	n := 0
	for i := range b.hasData {
		for j := range b.hasData[i] {
			if b.hasData[i][j] {
				n++
			}
		}
	}
	return n
}

// MatchingWeight sums the weight of a row→col assignment (−1 = unmatched),
// returning −1 validity when the assignment uses a non-edge or repeats a
// column. Computed reliably (metric path).
func (b *Bipartite) MatchingWeight(assign []int) (weight float64, valid bool) {
	if len(assign) != b.Left {
		return 0, false
	}
	used := make([]bool, b.Right)
	for i, j := range assign {
		if j == -1 {
			continue
		}
		if j < 0 || j >= b.Right || used[j] || !b.hasData[i][j] {
			return 0, false
		}
		used[j] = true
		weight += b.W.At(i, j)
	}
	return weight, true
}

// RandomBipartite generates a connected-ish random bipartite graph with the
// requested number of edges and weights uniform in [minW, maxW). The
// paper's Fig 6.4/6.5 instance is 11 nodes (5 left, 6 right) and 30 edges.
func RandomBipartite(rng *rand.Rand, left, right, edges int, minW, maxW float64) *Bipartite {
	b := NewBipartite(left, right)
	total := left * right
	if edges > total {
		edges = total
	}
	// Guarantee every left vertex has at least one edge so a full matching
	// of the smaller side can exist.
	perm := rng.Perm(right)
	placed := 0
	for i := 0; i < left && placed < edges; i++ {
		j := perm[i%right]
		b.AddEdge(i, j, minW+(maxW-minW)*rng.Float64())
		placed++
	}
	for placed < edges {
		i, j := rng.Intn(left), rng.Intn(right)
		if b.HasEdge(i, j) {
			continue
		}
		b.AddEdge(i, j, minW+(maxW-minW)*rng.Float64())
		placed++
	}
	return b
}

// FlowNetwork is a capacitated directed graph for max-flow problems.
type FlowNetwork struct {
	N            int
	Cap          *linalg.Dense // Cap.At(i,j) ≥ 0
	Source, Sink int
}

// NewFlowNetwork returns an n-node network with zero capacities.
func NewFlowNetwork(n, source, sink int) *FlowNetwork {
	return &FlowNetwork{N: n, Cap: linalg.NewDense(n, n), Source: source, Sink: sink}
}

// RandomFlowNetwork builds a layered random network from source 0 to sink
// n−1 with the given average out-degree and capacities in [1, maxCap).
func RandomFlowNetwork(rng *rand.Rand, n int, outDeg int, maxCap float64) *FlowNetwork {
	f := NewFlowNetwork(n, 0, n-1)
	// A guaranteed source→…→sink chain keeps the instance feasible.
	for i := 0; i+1 < n; i++ {
		f.Cap.Set(i, i+1, 1+(maxCap-1)*rng.Float64())
	}
	extra := outDeg * n
	for e := 0; e < extra; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || j == f.Source || i == f.Sink || f.Cap.At(i, j) > 0 {
			continue
		}
		f.Cap.Set(i, j, 1+(maxCap-1)*rng.Float64())
	}
	return f
}

// DiGraph is a directed graph with positive edge lengths for shortest-path
// problems. Len.At(i,j) == NoEdge encodes a missing edge; the diagonal is 0.
type DiGraph struct {
	N   int
	Len *linalg.Dense
}

// NewDiGraph returns an n-node edge-less graph.
func NewDiGraph(n int) *DiGraph {
	g := &DiGraph{N: n, Len: linalg.NewDense(n, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.Len.Set(i, j, NoEdge)
			}
		}
	}
	return g
}

// AddEdge sets the length of edge i→j.
func (g *DiGraph) AddEdge(i, j int, l float64) { g.Len.Set(i, j, l) }

// HasEdge reports whether i→j exists.
func (g *DiGraph) HasEdge(i, j int) bool {
	return i != j && g.Len.At(i, j) < NoEdge
}

// RandomDiGraph builds a strongly connected random digraph (a ring plus
// random chords) with lengths in [1, maxLen).
func RandomDiGraph(rng *rand.Rand, n, extraEdges int, maxLen float64) *DiGraph {
	g := NewDiGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1+(maxLen-1)*rng.Float64())
	}
	for e := 0; e < extraEdges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || g.HasEdge(i, j) {
			continue
		}
		g.AddEdge(i, j, 1+(maxLen-1)*rng.Float64())
	}
	return g
}
