package graph

import (
	"container/heap"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

// FloydWarshall computes all-pairs shortest path distances on g with the
// classic O(V³) dynamic program, the paper's baseline APSP implementation.
// The relax arithmetic (add + min-compare) flows through u.
func FloydWarshall(u *fpu.Unit, g *DiGraph) *linalg.Dense {
	n := g.N
	d := g.Len.Clone()
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if dik >= NoEdge {
				continue
			}
			for j := 0; j < n; j++ {
				via := u.Add(dik, d.At(k, j))
				if u.Less(via, d.At(i, j)) {
					d.Set(i, j, via)
				}
			}
		}
	}
	return d
}

// Dijkstra computes single-source shortest path distances from src with a
// binary heap. It is the reliable cross-check used in tests and as the
// ground truth for the APSP experiments (exact arithmetic only).
func Dijkstra(g *DiGraph, src int) []float64 {
	n := g.N
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = NoEdge
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for w := 0; w < n; w++ {
			if !g.HasEdge(it.node, w) {
				continue
			}
			nd := it.d + g.Len.At(it.node, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distItem{node: w, d: nd})
			}
		}
	}
	return dist
}

// AllPairsDijkstra runs Dijkstra from every node, returning the exact
// distance matrix.
func AllPairsDijkstra(g *DiGraph) *linalg.Dense {
	d := linalg.NewDense(g.N, g.N)
	for s := 0; s < g.N; s++ {
		copy(d.Row(s), Dijkstra(g, s))
	}
	return d
}

type distItem struct {
	node int
	d    float64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
