// Package eigen implements the paper's §4.7 extension: computing top
// eigenpairs of a symmetric matrix on a stochastic processor by maximizing
// the Rayleigh quotient with noisy gradient ascent, deflating, and
// repeating. The conventional power iteration serves as the faulty
// baseline.
package eigen

import (
	"errors"
	"math"
	"math/rand"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/solver"
)

// ErrBadMatrix is returned for non-square inputs.
var ErrBadMatrix = errors.New("eigen: matrix must be square and symmetric")

// RandomSymmetric generates a random symmetric matrix with a controlled
// spectral gap: eigenvalues n, n−1, …, 1 under a random orthogonal basis.
//
//lint:fpu-exempt fault-free problem generation: the instance is built before the simulated machine runs
func RandomSymmetric(rng *rand.Rand, n int) *linalg.Dense {
	// Random orthogonal Q from QR of a Gaussian matrix.
	g := linalg.NewDense(n, n)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	f, err := linalg.QR(nil, g)
	if err != nil {
		// Probability-zero fallback: identity basis.
		return linalg.Eye(n)
	}
	q := f.Q(nil)
	// M = Q diag(n..1) Qᵀ.
	m := linalg.NewDense(n, n)
	for k := 0; k < n; k++ {
		lambda := float64(n - k)
		for i := 0; i < n; i++ {
			qik := q.At(i, k)
			if qik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				m.Set(i, j, m.At(i, j)+lambda*qik*q.At(j, k))
			}
		}
	}
	return m
}

// PowerIteration is the conventional baseline: repeated multiplication and
// normalization on u. It returns the eigenvalue estimate and vector.
func PowerIteration(u *fpu.Unit, m *linalg.Dense, iters int) (float64, []float64) {
	n := m.Rows
	x := make([]float64, n)
	y := make([]float64, n)
	//lint:fpu-exempt fault-free setup: the unit start vector is chosen before the iteration begins
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	for k := 0; k < iters; k++ {
		m.MulVec(u, x, y)
		norm := linalg.Norm2(u, y)
		if norm == 0 || norm != norm {
			return math.NaN(), x
		}
		linalg.Scale(u, u.Div(1, norm), y)
		copy(x, y)
	}
	m.MulVec(u, x, y)
	return linalg.Dot(u, x, y), x
}

// Options configures the robust Rayleigh ascent.
type Options struct {
	Iters    int
	Schedule solver.Schedule // nil: Sqrt(0.5/λmax-estimate)
}

// TopEigen robustly computes the dominant eigenpair by maximizing the
// Rayleigh quotient R(x) = xᵀMx / xᵀx: gradient steps on the faulty unit,
// with normalization and step control reliable. The gradient used is
// ∇R ∝ Mx − R(x)·x evaluated at unit norm.
func TopEigen(u *fpu.Unit, m *linalg.Dense, o Options) (float64, []float64, error) {
	n := m.Rows
	if m.Cols != n {
		return 0, nil, ErrBadMatrix
	}
	iters := o.Iters
	if iters <= 0 {
		iters = 300
	}
	sched := o.Schedule
	if sched == nil {
		l := linalg.PowerEstimate(m, 20)
		if l <= 0 {
			l = 1
		}
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Sqrt(0.5 / math.Sqrt(l))
	}
	x := make([]float64, n)
	mx := make([]float64, n)
	grad := make([]float64, n)
	//lint:fpu-exempt fault-free setup: the unit start vector is chosen before the iteration begins
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	lambda := 0.0
	for t := 1; t <= iters; t++ {
		// Data path: M·x and the Rayleigh quotient pieces on the unit.
		m.MulVec(u, x, mx)
		num := linalg.Dot(u, x, mx)
		// Reliable control: normalization keeps ‖x‖ = 1, so R = num.
		if !linalg.AllFinite(mx) || num != num || math.IsInf(num, 0) {
			continue // skip the corrupted step
		}
		lambda = num
		for i := range grad {
			grad[i] = u.Sub(mx[i], u.Mul(num, x[i]))
		}
		if !linalg.AllFinite(grad) {
			continue
		}
		step := sched(t)
		//lint:fpu-exempt the iterate update is the paper's reliable control step: only the gradient pieces run on u
		for i := range x {
			x[i] += step * grad[i] // ascent; reliable update
		}
		// Reliable re-normalization (control).
		norm := 0.0
		//lint:fpu-exempt re-normalization is reliable control: it restores the ‖x‖=1 invariant the Rayleigh quotient needs
		for _, v := range x {
			norm += v * v
		}
		//lint:fpu-exempt re-normalization is reliable control: it restores the ‖x‖=1 invariant the Rayleigh quotient needs
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, nil, errors.New("eigen: iterate collapsed")
		}
		//lint:fpu-exempt re-normalization is reliable control: it restores the ‖x‖=1 invariant the Rayleigh quotient needs
		for i := range x {
			x[i] /= norm
		}
	}
	return lambda, x, nil
}

// Deflate subtracts λ·vvᵀ from a copy of m (reliable setup between
// eigenpair extractions).
//
//lint:fpu-exempt fault-free setup between extractions: deflation happens outside the simulated iteration
func Deflate(m *linalg.Dense, lambda float64, v []float64) *linalg.Dense {
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			out.Set(i, j, out.At(i, j)-lambda*v[i]*v[j])
		}
	}
	return out
}

// TopK returns the k largest eigenvalues (and vectors) by repeated robust
// Rayleigh ascent with deflation.
func TopK(u *fpu.Unit, m *linalg.Dense, k int, o Options) ([]float64, *linalg.Dense, error) {
	if k <= 0 || k > m.Rows {
		return nil, nil, ErrBadMatrix
	}
	vals := make([]float64, 0, k)
	vecs := linalg.NewDense(m.Rows, k)
	cur := m
	for i := 0; i < k; i++ {
		lambda, v, err := TopEigen(u, cur, o)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, lambda)
		for r := 0; r < m.Rows; r++ {
			vecs.Set(r, i, v[r])
		}
		cur = Deflate(cur, lambda, v)
	}
	return vals, vecs, nil
}
