package eigen

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

func TestRandomSymmetricSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandomSymmetric(rng, 6)
	// Symmetric.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > 1e-10 {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Top eigenvalue is n by construction (power iteration check).
	lambda, _ := PowerIteration(nil, m, 500)
	if math.Abs(lambda-6) > 1e-6 {
		t.Errorf("top eigenvalue = %v, want 6", lambda)
	}
}

func TestPowerIterationReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandomSymmetric(rng, 5)
	lambda, v := PowerIteration(nil, m, 500)
	if math.Abs(lambda-5) > 1e-6 {
		t.Errorf("lambda = %v", lambda)
	}
	// Residual ‖Mv − λv‖ small.
	mv := make([]float64, 5)
	m.MulVec(nil, v, mv)
	linalg.Axpy(nil, -lambda, v, mv)
	if r := linalg.Norm2(nil, mv); r > 1e-5 {
		t.Errorf("residual = %v", r)
	}
}

func TestTopEigenReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := RandomSymmetric(rng, 5)
	lambda, v, err := TopEigen(nil, m, Options{Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-5) > 1e-3 {
		t.Errorf("lambda = %v, want 5", lambda)
	}
	mv := make([]float64, 5)
	m.MulVec(nil, v, mv)
	linalg.Axpy(nil, -lambda, v, mv)
	if r := linalg.Norm2(nil, mv); r > 1e-2 {
		t.Errorf("residual = %v", r)
	}
}

func TestTopEigenBeatsPowerUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := RandomSymmetric(rng, 6)
	var robustErr, baseErr float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		ub := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+1)))
		lb, _ := PowerIteration(ub, m, 300)
		e := math.Abs(lb - 6)
		if e != e || e > 10 {
			e = 10
		}
		baseErr += e
		ur := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+101)))
		lr, _, err := TopEigen(ur, m, Options{Iters: 2000})
		if err != nil {
			t.Fatal(err)
		}
		e = math.Abs(lr - 6)
		if e != e || e > 10 {
			e = 10
		}
		robustErr += e
	}
	if robustErr >= baseErr {
		t.Errorf("robust err %v not below baseline %v", robustErr/trials, baseErr/trials)
	}
}

func TestTopKWithDeflation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandomSymmetric(rng, 5)
	vals, vecs, err := TopK(nil, m, 3, Options{Iters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 4, 3}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 0.05 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
	// Eigenvectors roughly orthonormal.
	gram := vecs.Gram(nil)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			wantG := 0.0
			if i == j {
				wantG = 1
			}
			if math.Abs(gram.At(i, j)-wantG) > 0.05 {
				t.Errorf("VᵀV(%d,%d) = %v", i, j, gram.At(i, j))
			}
		}
	}
}

func TestTopEigenValidation(t *testing.T) {
	if _, _, err := TopEigen(nil, linalg.NewDense(2, 3), Options{}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, _, err := TopK(nil, linalg.Eye(3), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := TopK(nil, linalg.Eye(3), 4, Options{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestDeflateRemovesComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandomSymmetric(rng, 4)
	lambda, v, err := TopEigen(nil, m, Options{Iters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	d := Deflate(m, lambda, v)
	l2, _ := PowerIteration(nil, d, 800)
	if math.Abs(l2-3) > 0.05 {
		t.Errorf("after deflation top = %v, want 3", l2)
	}
}
