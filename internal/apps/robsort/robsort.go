// Package robsort implements the paper's sorting application (§4.3,
// Fig 6.1): the quicksort baseline whose comparisons run on the faulty FPU,
// and the robustified form that recasts sorting as a linear assignment over
// doubly stochastic matrices (Brockett's observation) solved by penalized
// stochastic gradient descent.
package robsort

import (
	"errors"
	"sort"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/solver"
)

// ErrEmpty is returned for empty inputs.
var ErrEmpty = errors.New("robsort: empty input")

// Baseline sorts a copy of data in ascending order with quicksort
// (median-of-three pivots, insertion sort below a cutoff), every comparison
// on fp — the stand-in for the paper's STL sort baseline. On a faulty unit
// the output may be misordered; it is always a permutation of the input
// because data movement is exact.
func Baseline(fp *fpu.Unit, data []float64) []float64 {
	out := append([]float64(nil), data...)
	quicksort(fp, out, 0, len(out)-1)
	return out
}

func quicksort(fp *fpu.Unit, a []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 8 {
			insertion(fp, a, lo, hi)
			return
		}
		p := partition(fp, a, lo, hi)
		// Recurse on the smaller side to bound stack depth even when
		// faulty comparisons skew the partition.
		if p-lo < hi-p {
			quicksort(fp, a, lo, p-1)
			lo = p + 1
		} else {
			quicksort(fp, a, p+1, hi)
			hi = p - 1
		}
	}
}

func insertion(fp *fpu.Unit, a []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && fp.Less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func partition(fp *fpu.Unit, a []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot selection, all through the faulty comparator.
	if fp.Less(a[mid], a[lo]) {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if fp.Less(a[hi], a[lo]) {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if fp.Less(a[hi], a[mid]) {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi-1] = a[hi-1], a[mid]
	i := lo
	for j := lo; j < hi-1; j++ {
		if fp.Less(a[j], pivot) {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

// Options configures the robustified sort.
type Options struct {
	Iters      int
	Schedule   solver.Schedule // nil: Sqrt(0.5/n)
	Momentum   float64
	Aggressive *solver.Aggressive
	Anneal     *solver.Anneal
	Tail       int     // Polyak tail-averaging window (0 = off)
	Guard      float64 // gradient magnitude guard (0 = off)
	L1, L2     float64 // penalty weights; 0 picks the defaults (2, 2)
}

// Robust sorts data on fp via the assignment transformation: among all
// permutations X of the (positively shifted) input u, the one maximizing
// vᵀXu with v = [1..n] sorts u ascending. The LP is solved in exact
// quadratic penalty form by SGD; the final rounding of X to a permutation
// and the application of that permutation to the original data are reliable
// control steps.
func Robust(fp *fpu.Unit, data []float64, o Options) ([]float64, solver.Result, error) {
	n := len(data)
	if n == 0 {
		return nil, solver.Result{}, ErrEmpty
	}
	if n == 1 {
		return append([]float64(nil), data...), solver.Result{}, nil
	}
	// Reliable transformation setup: shift the values positive (sorting is
	// shift-invariant) and normalize both factors to O(1) so one penalty
	// weight fits all inputs.
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	//lint:fpu-exempt reliable transformation setup: the shift/normalization happens before the simulated solve
	span := hi - lo
	if span == 0 {
		span = 1 // constant array: any permutation sorts it
	}
	w := newOuterWeights(n, data, lo, span)
	l1, l2 := o.L1, o.L2
	if l1 == 0 {
		l1 = 2
	}
	if l2 == 0 {
		l2 = 2
	}
	prob, err := core.NewAssignment(fp, w, l1, l2)
	if err != nil {
		return nil, solver.Result{}, err
	}
	sched := o.Schedule
	if sched == nil {
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Sqrt(0.5 / float64(n))
	}
	res, err := solver.SGD(prob, prob.UniformStart(), solver.Options{
		Iters:          o.Iters,
		Schedule:       sched,
		Momentum:       o.Momentum,
		Aggressive:     o.Aggressive,
		Anneal:         o.Anneal,
		TailAverage:    o.Tail,
		GuardThreshold: o.Guard,
		Unit:           fp,
	})
	if err != nil {
		return nil, res, err
	}
	// Reliable rounding and output assembly: position i takes input j.
	assign := prob.Round(res.X)
	out := make([]float64, n)
	for i, j := range assign {
		if j < 0 {
			// Rounding starved (only possible when the iterate collapsed);
			// emit the input order for the missing slot, scored as failure.
			j = i
		}
		out[i] = data[j]
	}
	return out, res, nil
}

// newOuterWeights builds the sorting weight matrix Wᵢⱼ = vᵢ·ũⱼ with
// v = (1..n)/n and ũ = (u−lo)/span + ε, both O(1), so a single penalty
// weight fits all inputs.
//
//lint:fpu-exempt fault-free problem assembly: the weight matrix is built before the simulated machine runs
func newOuterWeights(n int, data []float64, lo, span float64) *linalg.Dense {
	w := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		vi := float64(i+1) / float64(n)
		for j := 0; j < n; j++ {
			uj := (data[j]-lo)/span + 0.1
			w.Set(i, j, vi*uj)
		}
	}
	return w
}

// Sorted reports whether a is ascending (reliable metric path). NaN
// anywhere counts as unsorted, matching the paper's success criterion.
func Sorted(a []float64) bool {
	for i, v := range a {
		if v != v {
			return false
		}
		if i > 0 && v < a[i-1] {
			return false
		}
	}
	return true
}

// SameMultiset reports whether a is a permutation of b (reliable metric
// path).
func SameMultiset(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	for i := range as {
		if as[i] != bs[i] && !(as[i] != as[i] && bs[i] != bs[i]) {
			return false
		}
	}
	return true
}

// Success is the Fig 6.1 criterion: the output is exactly the ascending
// sort of the input (any NaN or misplaced element is a failure).
func Success(output, input []float64) bool {
	return Sorted(output) && SameMultiset(output, input)
}
