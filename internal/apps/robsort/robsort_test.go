package robsort

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"robustify/internal/fpu"
	"robustify/internal/solver"
)

func TestBaselineSortsReliably(t *testing.T) {
	f := func(data []float64) bool {
		for i, v := range data {
			if math.IsNaN(v) {
				data[i] = 0
			}
		}
		out := Baseline(nil, data)
		return Success(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaselineAlwaysPermutation(t *testing.T) {
	// Even under heavy faults, data movement is exact: the output is a
	// permutation (just possibly misordered).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		data := make([]float64, 5+rng.Intn(30))
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		u := fpu.New(fpu.WithFaultRate(0.3, uint64(trial+1)))
		out := Baseline(u, data)
		if !SameMultiset(out, data) {
			t.Fatalf("trial %d: output lost elements", trial)
		}
	}
}

func TestBaselineDegradesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fails := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		data := make([]float64, 16)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		u := fpu.New(fpu.WithFaultRate(0.1, uint64(trial+1)))
		if !Success(Baseline(u, data), data) {
			fails++
		}
	}
	if fails == 0 {
		t.Error("baseline sort never failed at 10% fault rate")
	}
}

func TestRobustSortsReliably(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		data := make([]float64, 5)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
		}
		// 10 000 iterations is the paper's Fig 6.1 setting; shorter runs
		// can transiently misorder near-tied values (price-mode
		// oscillation) before the tilt settles.
		out, _, err := Robust(nil, data, Options{Iters: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if !Success(out, data) {
			t.Fatalf("trial %d: robust sort failed reliably: %v -> %v", trial, data, out)
		}
	}
}

func TestRobustSortUnderFaults(t *testing.T) {
	// Fig 6.1's headline: SGD with sqrt scaling sorts 5-element arrays
	// even at high fault rates.
	rng := rand.New(rand.NewSource(4))
	ok := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		data := make([]float64, 5)
		for i, p := range rng.Perm(5) {
			data[i] = float64(p+1) * 2.5
		}
		u := fpu.New(fpu.WithFaultRate(0.05, uint64(trial+1)))
		out, _, err := Robust(u, data, Options{
			Iters:      4000,
			Tail:       800,
			Aggressive: solver.DefaultAggressive(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if Success(out, data) {
			ok++
		}
	}
	if ok < 9 {
		t.Errorf("robust sort at 5%% faults: %d/%d", ok, trials)
	}
}

func TestRobustEdgeCases(t *testing.T) {
	if _, _, err := Robust(nil, nil, Options{Iters: 1}); err == nil {
		t.Error("empty input accepted")
	}
	out, _, err := Robust(nil, []float64{7}, Options{Iters: 1})
	if err != nil || len(out) != 1 || out[0] != 7 {
		t.Errorf("singleton: %v %v", out, err)
	}
	// Constant arrays sort trivially under any permutation.
	out, _, err = Robust(nil, []float64{2, 2, 2}, Options{Iters: 500})
	if err != nil || !Success(out, []float64{2, 2, 2}) {
		t.Errorf("constant array: %v %v", out, err)
	}
	// Negative values exercise the positivity shift.
	data := []float64{-5, -1, -3}
	out, _, err = Robust(nil, data, Options{Iters: 2000})
	if err != nil || !Success(out, data) {
		t.Errorf("negative array: %v %v", out, err)
	}
}

func TestSortedPredicate(t *testing.T) {
	if !Sorted([]float64{1, 2, 2, 3}) {
		t.Error("sorted slice misreported")
	}
	if Sorted([]float64{2, 1}) {
		t.Error("unsorted slice accepted")
	}
	if Sorted([]float64{1, math.NaN()}) {
		t.Error("NaN accepted")
	}
	if !Sorted(nil) {
		t.Error("empty slice should be sorted")
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]float64{1, 2, 2}, []float64{2, 1, 2}) {
		t.Error("same multiset misreported")
	}
	if SameMultiset([]float64{1, 2}, []float64{1, 3}) {
		t.Error("different multiset accepted")
	}
	if SameMultiset([]float64{1}, []float64{1, 1}) {
		t.Error("different length accepted")
	}
}

func TestSuccessRequiresBoth(t *testing.T) {
	in := []float64{3, 1, 2}
	if !Success([]float64{1, 2, 3}, in) {
		t.Error("correct sort rejected")
	}
	if Success([]float64{1, 2, 4}, in) {
		t.Error("wrong multiset accepted")
	}
	if Success([]float64{3, 2, 1}, in) {
		t.Error("misordered output accepted")
	}
}
