// Package svm implements the §4.7 extension: training a linear support
// vector machine on a stochastic processor. SVM fitting is already a
// variational problem — the regularized hinge loss
//
//	f(w) = λ/2·‖w‖² + (1/n)·Σᵢ [1 − yᵢ·⟨w, xᵢ⟩]₊
//
// — so the robustification is direct: evaluate subgradients on the faulty
// FPU and descend with the paper's schedules (the Pegasos family the paper
// cites). The baseline is the classic perceptron, whose mistake-driven
// updates hinge on exactly the kind of corrupted comparisons a faulty FPU
// produces.
package svm

import (
	"errors"
	"math/rand"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
	"robustify/internal/solver"
)

// Dataset is a binary classification problem with labels in {−1, +1}.
type Dataset struct {
	X      *linalg.Dense // n×d features
	Y      []float64     // n labels, ±1
	TestX  *linalg.Dense
	TestY  []float64
	Margin float64 // generative margin, for reference
}

// ErrBadData is returned for malformed datasets.
var ErrBadData = errors.New("svm: malformed dataset")

// TwoGaussians generates a linearly separable two-class problem: points
// drawn from two Gaussians whose means are 2·margin apart along a random
// direction, split into train and test halves.
//
//lint:fpu-exempt fault-free problem generation: the dataset is built before the simulated machine runs
func TwoGaussians(rng *rand.Rand, nTrain, nTest, dim int, margin float64) *Dataset {
	dirVec := make([]float64, dim)
	var norm float64
	for i := range dirVec {
		dirVec[i] = rng.NormFloat64()
		norm += dirVec[i] * dirVec[i]
	}
	norm = sqrt(norm)
	for i := range dirVec {
		dirVec[i] /= norm
	}
	gen := func(n int) (*linalg.Dense, []float64) {
		x := linalg.NewDense(n, dim)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			label := 1.0
			if rng.Intn(2) == 0 {
				label = -1
			}
			y[i] = label
			for j := 0; j < dim; j++ {
				x.Set(i, j, label*margin*dirVec[j]+rng.NormFloat64())
			}
		}
		return x, y
	}
	d := &Dataset{Margin: margin}
	d.X, d.Y = gen(nTrain)
	d.TestX, d.TestY = gen(nTest)
	return d
}

// sqrt is a dependency-free Newton square root for dataset generation.
//
//lint:fpu-exempt fault-free generation helper: used only while building the dataset
func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// Accuracy scores a weight vector on the held-out set (reliable metric).
//
//lint:fpu-exempt accuracy metric measured outside the simulated machine: it scores trained weights, it never feeds training
func (d *Dataset) Accuracy(w []float64) float64 {
	if w == nil || !linalg.AllFinite(w) {
		return 0
	}
	n := d.TestX.Rows
	correct := 0
	for i := 0; i < n; i++ {
		score := linalg.Dot(nil, d.TestX.Row(i), w)
		if (score >= 0) == (d.TestY[i] > 0) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Problem is the regularized hinge-loss objective with subgradients on a
// stochastic FPU.
type Problem struct {
	u      *fpu.Unit
	x      *linalg.Dense
	y      []float64
	lambda float64
	loss   robust.Robustifier // nil = plain hinge, the legacy path
}

var _ core.Problem = (*Problem)(nil)

// NewProblem builds the training objective on unit u.
func NewProblem(u *fpu.Unit, d *Dataset, lambda float64) (*Problem, error) {
	return NewRobustProblem(u, d, lambda, nil)
}

// NewRobustProblem builds the training objective with the margin violation
// m = [1 − y·⟨w, x⟩]₊ scored by the robust loss ρ instead of linearly:
// f(w) = λ/2·‖w‖² + (1/n)·Σρ(mᵢ). A nil loss keeps the paper's plain hinge
// bit for bit; a bounded-influence ρ caps the pull of examples whose score
// a fault has blown up.
func NewRobustProblem(u *fpu.Unit, d *Dataset, lambda float64, loss robust.Robustifier) (*Problem, error) {
	if d.X == nil || d.X.Rows != len(d.Y) || lambda <= 0 {
		return nil, ErrBadData
	}
	return &Problem{u: u, x: d.X, y: d.Y, lambda: lambda, loss: loss}, nil
}

// FPU returns the stochastic unit.
func (p *Problem) FPU() *fpu.Unit { return p.u }

// Dim implements core.Problem.
func (p *Problem) Dim() int { return p.x.Cols }

// Grad implements core.Problem: λw + (1/n)·Σ −yᵢxᵢ over margin violators,
// with the scores and the violation test on the faulty unit.
func (p *Problem) Grad(w, grad []float64) {
	u := p.u
	n := p.x.Rows
	//lint:fpu-exempt reliable control: the 1/n scale is a fixed constant of the objective, not data-path arithmetic
	inv := 1 / float64(n)
	linalg.Copy(grad, w)
	linalg.Scale(u, p.lambda, grad)
	for i := 0; i < n; i++ {
		row := p.x.Row(i)
		score := u.Mul(p.y[i], linalg.Dot(u, row, w))
		if u.Less(score, 1) { // margin violated (faulty comparison)
			c := u.Mul(-p.y[i], inv)
			if p.loss != nil {
				// ∂ρ(m)/∂w = 2ψ(m)·∂m/∂w with m = 1 − y·score.
				m := u.Sub(1, score)
				c = u.Mul(c, u.Mul(2, p.loss.Psi(u, m)))
			}
			linalg.Axpy(u, c, row, grad)
		}
	}
}

// Value implements core.Problem: the exact objective (control path).
//
//lint:fpu-exempt convergence monitoring is the paper's reliable control path (note the nil units)
func (p *Problem) Value(w []float64) float64 {
	n := p.x.Rows
	v := 0.5 * p.lambda * linalg.SqNorm2(nil, w)
	for i := 0; i < n; i++ {
		m := 1 - p.y[i]*linalg.Dot(nil, p.x.Row(i), w)
		if m > 0 {
			if p.loss != nil {
				m = p.loss.Rho(nil, m)
			}
			v += m / float64(n)
		}
	}
	return v
}

// Options configures robust training.
type Options struct {
	Iters    int
	Lambda   float64         // regularization; 0 picks 0.01
	Schedule solver.Schedule // nil: Pegasos-style 1/(λ·t)
	Tail     int             // Polyak tail-averaging window (0 = Iters/4)
	// Loss scores margin violations with a robust loss (nil = the plain
	// hinge, bit-identical to the pre-loss trainer).
	Loss robust.Robustifier
}

// Train fits a robust linear SVM on u.
func Train(u *fpu.Unit, d *Dataset, o Options) ([]float64, solver.Result, error) {
	lambda := o.Lambda
	if lambda == 0 {
		lambda = 0.01
	}
	p, err := NewRobustProblem(u, d, lambda, o.Loss)
	if err != nil {
		return nil, solver.Result{}, err
	}
	sched := o.Schedule
	if sched == nil {
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Linear(1 / lambda) // Pegasos: η_t = 1/(λ·t)
	}
	tail := o.Tail
	if tail == 0 {
		tail = o.Iters / 4
	}
	res, err := solver.SGD(p, make([]float64, p.Dim()), solver.Options{
		Iters:       o.Iters,
		Schedule:    sched,
		TailAverage: tail,
		Unit:        u,
	})
	if err != nil {
		return nil, res, err
	}
	return res.X, res, nil
}

// Perceptron is the fragile baseline: the classic mistake-driven update
// rule with scoring and mistake detection on the faulty unit. A corrupted
// comparison triggers an update in the wrong direction, and the damage is
// permanent because the algorithm never revisits it.
func Perceptron(u *fpu.Unit, d *Dataset, epochs int) []float64 {
	w := make([]float64, d.X.Cols)
	for e := 0; e < epochs; e++ {
		for i := 0; i < d.X.Rows; i++ {
			row := d.X.Row(i)
			score := linalg.Dot(u, row, w)
			predPos := !u.Less(score, 0)
			wantPos := d.Y[i] > 0
			if predPos != wantPos {
				linalg.Axpy(u, d.Y[i], row, w)
			}
		}
	}
	return w
}
