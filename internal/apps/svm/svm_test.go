package svm

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
)

func testData(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	return TwoGaussians(rng, 200, 400, 8, 2.5)
}

func TestTwoGaussiansShape(t *testing.T) {
	d := testData(1)
	if d.X.Rows != 200 || d.X.Cols != 8 || len(d.Y) != 200 {
		t.Fatalf("train shape wrong")
	}
	if d.TestX.Rows != 400 || len(d.TestY) != 400 {
		t.Fatalf("test shape wrong")
	}
	for _, y := range d.Y {
		if y != 1 && y != -1 {
			t.Fatalf("label %v", y)
		}
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, v := range []float64{0, 1, 2, 100, 1e-8} {
		if got, want := sqrt(v), math.Sqrt(v); math.Abs(got-want) > 1e-9*(1+want) {
			t.Errorf("sqrt(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestNewProblemValidation(t *testing.T) {
	d := testData(2)
	if _, err := NewProblem(nil, d, 0); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := NewProblem(nil, &Dataset{}, 0.1); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestGradMatchesFiniteDifference(t *testing.T) {
	d := testData(3)
	p, err := NewProblem(nil, d, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	w := make([]float64, p.Dim())
	for i := range w {
		w[i] = 0.3 * rng.NormFloat64()
	}
	grad := make([]float64, p.Dim())
	p.Grad(w, grad)
	const h = 1e-6
	for i := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[i] += h
		wm[i] -= h
		fd := (p.Value(wp) - p.Value(wm)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, fd = %v", i, grad[i], fd)
		}
	}
}

func TestTrainSeparatesReliably(t *testing.T) {
	d := testData(5)
	w, _, err := Train(nil, d, Options{Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if acc := d.Accuracy(w); acc < 0.95 {
		t.Errorf("reliable accuracy = %v", acc)
	}
}

func TestPerceptronSeparatesReliably(t *testing.T) {
	d := testData(6)
	w := Perceptron(nil, d, 10)
	if acc := d.Accuracy(w); acc < 0.9 {
		t.Errorf("reliable perceptron accuracy = %v", acc)
	}
}

func TestRobustTrainingBeatsPerceptronUnderFaults(t *testing.T) {
	d := testData(7)
	var svmAcc, percAcc float64
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		up := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+1)))
		percAcc += d.Accuracy(Perceptron(up, d, 10))
		ut := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+101)))
		w, _, err := Train(ut, d, Options{Iters: 2000})
		if err != nil {
			t.Fatal(err)
		}
		svmAcc += d.Accuracy(w)
	}
	svmAcc /= trials
	percAcc /= trials
	if svmAcc < 0.9 {
		t.Errorf("robust SVM accuracy under faults = %v", svmAcc)
	}
	if svmAcc <= percAcc-0.02 {
		t.Errorf("robust SVM (%v) should not trail perceptron (%v)", svmAcc, percAcc)
	}
}

func TestAccuracyGuards(t *testing.T) {
	d := testData(8)
	if d.Accuracy(nil) != 0 {
		t.Error("nil weights should score 0")
	}
	if d.Accuracy([]float64{math.NaN(), 0, 0, 0, 0, 0, 0, 0}) != 0 {
		t.Error("NaN weights should score 0")
	}
}
