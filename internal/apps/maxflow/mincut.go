package maxflow

import (
	"robustify/internal/fpu"
	"robustify/internal/graph"
	"robustify/internal/linalg"
)

// MinCut identifies the minimum s–t cut implied by a flow: the set of
// source-side vertices reachable in the residual graph, and the crossing
// edges. By max-flow/min-cut duality the cut capacity of a maximum flow
// equals the flow value — §4.7 lists MINCUT among the problems the
// methodology reaches through the same LP.
type MinCut struct {
	SourceSide []bool   // vertex → on the source side of the cut
	Edges      [][2]int // crossing edges (from source side to sink side)
	Capacity   float64  // total capacity of the crossing edges
}

// CutFromFlow extracts the residual-reachability cut of a flow matrix.
// Residuals at or below tol count as saturated — iterative solvers leave
// epsilon residuals on saturated edges, and a strict zero threshold would
// flood reachability through them. Reachability decisions run on u (a
// faulty unit misclassifies vertices exactly the way the paper's fragile
// baselines misbehave); pass nil for the exact cut. The capacity is summed
// reliably (metric path).
func (inst *Instance) CutFromFlow(u *fpu.Unit, flow *linalg.Dense, tol float64) *MinCut {
	n := inst.Net.N
	side := make([]bool, n)
	side[inst.Net.Source] = true
	queue := []int{inst.Net.Source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := 0; w < n; w++ {
			if side[w] {
				continue
			}
			if u.Less(tol, u.Sub(inst.Net.Cap.At(v, w), flow.At(v, w))) {
				side[w] = true
				queue = append(queue, w)
			}
		}
	}
	cut := &MinCut{SourceSide: side}
	for _, e := range inst.edges {
		if side[e.from] && !side[e.to] {
			cut.Edges = append(cut.Edges, [2]int{e.from, e.to})
			//lint:fpu-exempt cut capacity is summed reliably (metric path); only reachability runs on u
			cut.Capacity += e.cap
		}
	}
	return cut
}

// RobustMinCut solves the max-flow LP robustly and extracts the cut from
// the recovered flow with reliable reachability (the extraction is a cheap
// control step on the already-computed flow).
func (inst *Instance) RobustMinCut(u *fpu.Unit, o Options) (*MinCut, error) {
	_, x, err := inst.Robust(u, o)
	if err != nil {
		return nil, err
	}
	// Rebuild a flow matrix from the edge variables (reliable assembly).
	flow := linalg.NewDense(inst.Net.N, inst.Net.N)
	maxCap := 0.0
	for k, e := range inst.edges {
		flow.Set(e.from, e.to, x[k])
		if e.cap > maxCap {
			maxCap = e.cap
		}
	}
	// The SGD flow carries a few percent of slack on saturated edges.
	//lint:fpu-exempt reliable control: the saturation tolerance feeds the nil-unit exact extraction
	return inst.CutFromFlow(nil, flow, 0.05*maxCap), nil
}

// ExactMinCut computes the reference cut via a reliable max-flow.
func (inst *Instance) ExactMinCut() *MinCut {
	flow, _ := graph.MaxFlow(nil, inst.Net)
	return inst.CutFromFlow(nil, flow, 1e-9)
}
