package maxflow

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/graph"
)

func diamond() *Instance {
	net := graph.NewFlowNetwork(4, 0, 3)
	net.Cap.Set(0, 1, 3)
	net.Cap.Set(1, 3, 3)
	net.Cap.Set(0, 2, 2)
	net.Cap.Set(2, 3, 2)
	return NewInstance(net)
}

func TestInstanceReference(t *testing.T) {
	inst := diamond()
	if math.Abs(inst.Opt-5) > 1e-9 {
		t.Fatalf("Opt = %v, want 5", inst.Opt)
	}
	if inst.Edges() != 4 {
		t.Errorf("Edges = %d", inst.Edges())
	}
}

func TestRelErrMetric(t *testing.T) {
	inst := diamond()
	if inst.RelErr(5) != 0 {
		t.Error("exact value should score 0")
	}
	if got := inst.RelErr(4); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelErr(4) = %v", got)
	}
	if inst.RelErr(math.NaN()) < 1e29 {
		t.Error("NaN should score huge")
	}
}

func TestBaselineExactReliably(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		inst := RandomInstance(rng, 4+rng.Intn(5), 2, 5)
		if re := inst.RelErr(inst.Baseline(nil)); re > 1e-9 {
			t.Fatalf("trial %d: reliable baseline rel err %v", trial, re)
		}
	}
}

func TestBaselineDegradesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := RandomInstance(rng, 10, 3, 5)
	bad := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.05, uint64(trial+1)))
		if inst.RelErr(inst.Baseline(u)) > 0.01 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("faulty Edmonds-Karp never degraded at 5%")
	}
}

// TestLPOptimumIsMaxFlow: solving the LP variational form reliably
// recovers the max-flow value — the transformation is sound.
func TestLPOptimumIsMaxFlow(t *testing.T) {
	inst := diamond()
	value, x, err := inst.Robust(nil, Options{Iters: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if re := inst.RelErr(value); re > 0.02 {
		t.Errorf("robust value %v vs opt %v (rel %v)", value, inst.Opt, re)
	}
	if v := inst.MaxViolation(x); v > 0.05 {
		t.Errorf("constraint violation %v", v)
	}
}

func TestRobustRandomNetworksReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		inst := RandomInstance(rng, 6, 2, 4)
		value, _, err := inst.Robust(nil, Options{Iters: 20000, Tail: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if re := inst.RelErr(value); re > 0.05 {
			t.Errorf("trial %d: rel err %v (value %v, opt %v)", trial, re, value, inst.Opt)
		}
	}
}

func TestRobustTolerantUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := RandomInstance(rng, 6, 2, 4)
	ok := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+1)))
		value, _, err := inst.Robust(u, Options{Iters: 20000, Tail: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if inst.RelErr(value) < 0.10 {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("robust max-flow at 2%% faults: %d/%d within 10%%", ok, trials)
	}
}

func TestLPShape(t *testing.T) {
	inst := diamond()
	lp := inst.LP()
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.Eq == nil || lp.Eq.Rows != 2 {
		t.Error("conservation rows missing (2 interior nodes)")
	}
	if lp.Ineq.Rows != 8 {
		t.Errorf("capacity+nonneg rows = %d, want 8", lp.Ineq.Rows)
	}
	// The exact max flow (3 on top path, 2 on bottom) is feasible.
	x := []float64{3, 2, 3, 2}
	if v := lp.MaxViolation(x); v > 1e-12 {
		t.Errorf("exact flow violates LP by %v", v)
	}
	if got := inst.FlowValue(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("FlowValue = %v", got)
	}
}

func TestExactMinCutDuality(t *testing.T) {
	// Max-flow/min-cut duality on random networks: cut capacity equals
	// the maximum flow value, and the cut separates source from sink.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		inst := RandomInstance(rng, 4+rng.Intn(5), 2, 5)
		cut := inst.ExactMinCut()
		if math.Abs(cut.Capacity-inst.Opt) > 1e-9*(1+inst.Opt) {
			t.Fatalf("trial %d: cut capacity %v != max flow %v", trial, cut.Capacity, inst.Opt)
		}
		if !cut.SourceSide[inst.Net.Source] {
			t.Fatal("source not on source side")
		}
		if cut.SourceSide[inst.Net.Sink] {
			t.Fatal("sink on source side")
		}
	}
}

func TestRobustMinCutMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inst := RandomInstance(rng, 6, 2, 4)
	exact := inst.ExactMinCut()
	cut, err := inst.RobustMinCut(nil, Options{Iters: 20000, Tail: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut.Capacity-exact.Capacity) > 0.05*(1+exact.Capacity) {
		t.Errorf("robust cut capacity %v vs exact %v", cut.Capacity, exact.Capacity)
	}
}

func TestMinCutEdgesCrossCut(t *testing.T) {
	inst := diamond()
	cut := inst.ExactMinCut()
	for _, e := range cut.Edges {
		if !cut.SourceSide[e[0]] || cut.SourceSide[e[1]] {
			t.Errorf("edge %v does not cross the cut", e)
		}
	}
	if len(cut.Edges) == 0 {
		t.Error("no crossing edges found")
	}
}
