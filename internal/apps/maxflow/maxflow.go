// Package maxflow implements the paper's maximum flow application (§4.5):
// the Ford-Fulkerson (Edmonds-Karp) baseline on the faulty FPU and the
// robustified LP form of Eqs 4.6–4.9 solved by penalized stochastic
// gradient descent.
package maxflow

import (
	"math/rand"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/graph"
	"robustify/internal/linalg"
	"robustify/internal/solver"
)

// Instance is a max-flow problem with its exact optimum for scoring.
type Instance struct {
	Net *graph.FlowNetwork
	// Opt is the exact maximum flow value (reliable Edmonds-Karp).
	Opt float64
	// edges enumerates the directed edges with positive capacity; the LP
	// optimizes one flow variable per edge.
	edges []edge
}

type edge struct {
	from, to int
	cap      float64
}

// NewInstance wraps a network, solving it reliably for the reference value.
func NewInstance(net *graph.FlowNetwork) *Instance {
	flow, _ := graph.MaxFlow(nil, net)
	inst := &Instance{Net: net, Opt: graph.FlowValue(net, flow)}
	for i := 0; i < net.N; i++ {
		for j := 0; j < net.N; j++ {
			if c := net.Cap.At(i, j); c > 0 {
				inst.edges = append(inst.edges, edge{from: i, to: j, cap: c})
			}
		}
	}
	return inst
}

// RandomInstance generates a random layered network with n nodes.
func RandomInstance(rng *rand.Rand, n, outDeg int, maxCap float64) *Instance {
	return NewInstance(graph.RandomFlowNetwork(rng, n, outDeg, maxCap))
}

// Edges returns the number of flow variables.
func (inst *Instance) Edges() int { return len(inst.edges) }

// RelErr scores a flow value against the exact maximum (reliable metric).
//
//lint:fpu-exempt error metric measured outside the simulated machine: it scores solver output, it never feeds the solve
func (inst *Instance) RelErr(value float64) float64 {
	if value != value { // NaN
		return 1e30
	}
	d := value - inst.Opt
	if d < 0 {
		d = -d
	}
	if inst.Opt == 0 {
		return d
	}
	return d / inst.Opt
}

// Baseline runs Edmonds-Karp with arithmetic on u and returns the achieved
// flow value, scored reliably. Corrupted runs may return wildly wrong
// values or fail outright (reported as a huge error).
func (inst *Instance) Baseline(u *fpu.Unit) float64 {
	flow, ok := graph.MaxFlow(u, inst.Net)
	if !ok {
		return 1e30
	}
	//lint:fpu-exempt feasibility tolerance for the reliable scoring path, not part of the simulated solve
	if !graph.FlowFeasible(inst.Net, flow, 1e-6*inst.Opt+1e-9) {
		// The faulty run "converged" to an infeasible flow: score its
		// claimed value anyway; feasibility violations show up as error.
		return graph.FlowValue(inst.Net, flow)
	}
	return graph.FlowValue(inst.Net, flow)
}

// LP builds the variational form of Eqs 4.6–4.9 over one variable per
// positive-capacity edge:
//
//	minimize  Σ −F(s→v)
//	s.t.      Σᵤ F(u→v) − Σᵤ F(v→u) = 0   for v ∉ {s, t}
//	          F(u→v) ≤ C(u→v),  −F(u→v) ≤ 0.
//
//lint:fpu-exempt fault-free problem assembly: the LP is built before the simulated machine runs
func (inst *Instance) LP() core.LinearProgram {
	nE := len(inst.edges)
	c := make([]float64, nE)
	for k, e := range inst.edges {
		if e.from == inst.Net.Source {
			c[k] = -1
		}
	}
	// Equality block: conservation at interior nodes.
	interior := make([]int, 0, inst.Net.N)
	for v := 0; v < inst.Net.N; v++ {
		if v != inst.Net.Source && v != inst.Net.Sink {
			interior = append(interior, v)
		}
	}
	var eq *linalg.Dense
	var beq []float64
	if len(interior) > 0 {
		eq = linalg.NewDense(len(interior), nE)
		beq = make([]float64, len(interior))
		for r, v := range interior {
			for k, e := range inst.edges {
				if e.to == v {
					eq.Set(r, k, 1)
				}
				if e.from == v {
					eq.Set(r, k, eq.At(r, k)-1)
				}
			}
		}
	}
	// Inequality block: capacity and non-negativity.
	ineq := linalg.NewDense(2*nE, nE)
	b := make([]float64, 2*nE)
	for k, e := range inst.edges {
		ineq.Set(k, k, 1)
		b[k] = e.cap
		ineq.Set(nE+k, k, -1)
		b[nE+k] = 0
	}
	return core.LinearProgram{C: c, Ineq: ineq, BIneq: b, Eq: eq, BEq: beq}
}

// Options configures the robustified solve.
type Options struct {
	Iters    int
	Schedule solver.Schedule // nil: Sqrt-scaled default
	Momentum float64
	Anneal   *solver.Anneal
	Tail     int     // Polyak tail-averaging window (0 = off)
	Mu       float64 // penalty weight; 0 picks the default
	Kind     core.PenaltyKind
}

// Robust solves the max-flow LP on u and returns the achieved flow value
// (the reliable Σ F(s→v) of the final iterate) along with the raw flows.
func (inst *Instance) Robust(u *fpu.Unit, o Options) (float64, []float64, error) {
	lp := inst.LP()
	mu := o.Mu
	if mu == 0 {
		mu = 8
	}
	kind := o.Kind
	if kind == 0 {
		// ℓ1 penalty: exact at finite μ, avoiding the quadratic form's
		// systematic capacity/conservation overshoot.
		kind = core.PenaltyAbs
	}
	prob, err := core.NewPenaltyLP(u, lp, kind, mu)
	if err != nil {
		return 0, nil, err
	}
	sched := o.Schedule
	if sched == nil {
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Sqrt(0.5 / float64(inst.Net.N))
	}
	res, err := solver.SGD(prob, make([]float64, len(inst.edges)), solver.Options{
		Iters:       o.Iters,
		Schedule:    sched,
		Momentum:    o.Momentum,
		Anneal:      o.Anneal,
		TailAverage: o.Tail,
		Unit:        u,
	})
	if err != nil {
		return 0, nil, err
	}
	return inst.FlowValue(res.X), res.X, nil
}

// FlowValue sums the flow out of the source (reliable metric path).
//
//lint:fpu-exempt flow-value metric measured outside the simulated machine: it scores results, it never feeds the solve
func (inst *Instance) FlowValue(x []float64) float64 {
	var total float64
	for k, e := range inst.edges {
		if e.from == inst.Net.Source {
			total += x[k]
		}
		if e.to == inst.Net.Source {
			total -= x[k]
		}
	}
	return total
}

// MaxViolation reports the worst constraint violation of a solution
// (reliable metric path).
func (inst *Instance) MaxViolation(x []float64) float64 {
	lp := inst.LP()
	return lp.MaxViolation(x)
}
