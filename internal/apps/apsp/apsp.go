// Package apsp implements the paper's all-pairs shortest path application
// (§4.6): the Floyd-Warshall baseline on the faulty FPU and the robustified
// LP form of Eqs 4.10–4.12 solved by penalized stochastic gradient descent.
package apsp

import (
	"math/rand"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/graph"
	"robustify/internal/linalg"
	"robustify/internal/robust"
	"robustify/internal/solver"
)

// Instance is an APSP problem with its exact distance matrix for scoring.
type Instance struct {
	G     *graph.DiGraph
	Exact *linalg.Dense // reliable all-pairs Dijkstra
}

// NewInstance wraps a digraph, solving it reliably for the reference
// distances.
func NewInstance(g *graph.DiGraph) *Instance {
	return &Instance{G: g, Exact: graph.AllPairsDijkstra(g)}
}

// RandomInstance generates a strongly connected random digraph.
func RandomInstance(rng *rand.Rand, n, extraEdges int, maxLen float64) *Instance {
	return NewInstance(graph.RandomDiGraph(rng, n, extraEdges, maxLen))
}

// MeanRelErr is the quality metric: the mean relative error of all
// off-diagonal pairwise distances, evaluated reliably. Non-finite entries
// score 1e30.
//
//lint:fpu-exempt error metric measured outside the simulated machine: it scores solver output, it never feeds the solve
func (inst *Instance) MeanRelErr(d *linalg.Dense) float64 {
	n := inst.G.N
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			got, want := d.At(i, j), inst.Exact.At(i, j)
			if got != got || got > 1e308 || got < -1e308 {
				return 1e30
			}
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if want != 0 {
				diff /= want
			}
			sum += diff
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Baseline runs Floyd-Warshall with arithmetic on u, scored against the
// exact distances.
func (inst *Instance) Baseline(u *fpu.Unit) *linalg.Dense {
	return graph.FloydWarshall(u, inst.G)
}

// LP builds the variational form of Eqs 4.10–4.12, with one variable per
// ordered pair (i, j), i ≠ j, and the diagonal pinned to zero structurally:
//
//	minimize  Σ −D(i,j)
//	s.t.      D(u,w) − D(u,v) ≤ L(v,w)   ∀u, ∀edge (v,w), u ≠ w
//
// (rows with u = v degenerate to D(v,w) ≤ L(v,w)). The LP maximum equals
// the shortest-path distances.
func (inst *Instance) LP() core.LinearProgram {
	n := inst.G.N
	nVar := n * (n - 1)
	c := make([]float64, nVar)
	for k := range c {
		c[k] = -1
	}
	// Count constraint rows: for each source u and edge (v,w) with w ≠ u.
	type row struct {
		u, v, w int
		length  float64
	}
	var rows []row
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if inst.G.HasEdge(v, w) && w != u {
					rows = append(rows, row{u: u, v: v, w: w, length: inst.G.Len.At(v, w)})
				}
			}
		}
	}
	ineq := linalg.NewDense(len(rows), nVar)
	b := make([]float64, len(rows))
	for r, rw := range rows {
		ineq.Set(r, varIndex(n, rw.u, rw.w), 1)
		if rw.u != rw.v {
			ineq.Set(r, varIndex(n, rw.u, rw.v), -1)
		}
		b[r] = rw.length
	}
	return core.LinearProgram{C: c, Ineq: ineq, BIneq: b}
}

// varIndex maps the ordered pair (i, j), i ≠ j, to its flat variable index.
func varIndex(n, i, j int) int {
	k := i*(n-1) + j
	if j > i {
		k--
	}
	return k
}

// Options configures the robustified solve.
type Options struct {
	Iters    int
	Schedule solver.Schedule // nil: Sqrt-scaled default
	Momentum float64
	Anneal   *solver.Anneal
	Tail     int     // Polyak tail-averaging window (0 = off)
	Mu       float64 // penalty weight; 0 picks the default
	Kind     core.PenaltyKind
	// Loss, when non-nil, scores constraint violations with a robust loss
	// instead of Kind's |·| or (·)² penalty (Kind is then ignored). A
	// bounded-influence loss caps how hard one corrupted constraint row
	// can yank the iterate.
	Loss robust.Robustifier
}

// DistOf unflattens a solution vector into a distance matrix with a zero
// diagonal (reliable metric path).
func (inst *Instance) DistOf(x []float64) *linalg.Dense {
	n := inst.G.N
	d := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, x[varIndex(n, i, j)])
			}
		}
	}
	return d
}

// Robust solves the APSP LP on u from the zero iterate (feasible, since
// all edge lengths are positive) and returns the recovered distance matrix.
func (inst *Instance) Robust(u *fpu.Unit, o Options) (*linalg.Dense, solver.Result, error) {
	n := inst.G.N
	lp := inst.LP()
	mu := o.Mu
	if mu == 0 {
		mu = 8
	}
	var prob *core.PenaltyLP
	var err error
	if o.Loss != nil {
		prob, err = core.NewRobustPenaltyLP(u, lp, o.Loss, mu)
	} else {
		kind := o.Kind
		if kind == 0 {
			// The quadratic penalty's finite-μ bias telescopes along path
			// chains (each hop overshoots by ~1/(4μ)); the ℓ1 penalty is
			// exact at finite μ, so it is the default here.
			kind = core.PenaltyAbs
		}
		prob, err = core.NewPenaltyLP(u, lp, kind, mu)
	}
	if err != nil {
		return nil, solver.Result{}, err
	}
	sched := o.Schedule
	if sched == nil {
		// Large enough that the cumulative step mass covers the distance
		// scale; safe because the ℓ1 penalty's subgradient is bounded.
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Sqrt(0.5 / float64(n))
	}
	res, err := solver.SGD(prob, make([]float64, lp.Dim()), solver.Options{
		Iters:       o.Iters,
		Schedule:    sched,
		Momentum:    o.Momentum,
		Anneal:      o.Anneal,
		TailAverage: o.Tail,
		Unit:        u,
	})
	if err != nil {
		return nil, res, err
	}
	return inst.DistOf(res.X), res, nil
}
