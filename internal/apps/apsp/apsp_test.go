package apsp

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/graph"
)

func triangle() *Instance {
	g := graph.NewDiGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(0, 2, 3) // direct edge longer than the two-hop path
	return NewInstance(g)
}

func TestVarIndexBijective(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				k := varIndex(n, i, j)
				if k < 0 || k >= n*(n-1) || seen[k] {
					t.Fatalf("n=%d: varIndex(%d,%d) = %d invalid/duplicate", n, i, j, k)
				}
				seen[k] = true
			}
		}
	}
}

func TestExactReference(t *testing.T) {
	inst := triangle()
	if d := inst.Exact.At(0, 2); math.Abs(d-2) > 1e-12 {
		t.Errorf("exact 0→2 = %v, want 2 (two-hop beats direct)", d)
	}
	if inst.MeanRelErr(inst.Exact) != 0 {
		t.Error("exact matrix should score 0")
	}
}

func TestMeanRelErrNonFinite(t *testing.T) {
	inst := triangle()
	bad := inst.Exact.Clone()
	bad.Set(0, 1, math.NaN())
	if inst.MeanRelErr(bad) < 1e29 {
		t.Error("NaN distance should score huge")
	}
}

func TestBaselineExactReliably(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		inst := RandomInstance(rng, 3+rng.Intn(6), 6, 5)
		if re := inst.MeanRelErr(inst.Baseline(nil)); re > 1e-12 {
			t.Fatalf("trial %d: reliable Floyd-Warshall rel err %v", trial, re)
		}
	}
}

func TestBaselineDegradesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := RandomInstance(rng, 8, 12, 5)
	bad := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.05, uint64(trial+1)))
		if inst.MeanRelErr(inst.Baseline(u)) > 1e-3 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("faulty Floyd-Warshall never degraded at 5%")
	}
}

// TestLPOptimumIsShortestPaths: the LP maximization recovers the exact
// distances on a reliable unit — the Eq 4.10–4.12 transformation is sound.
func TestLPOptimumIsShortestPaths(t *testing.T) {
	inst := triangle()
	d, _, err := inst.Robust(nil, Options{Iters: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if re := inst.MeanRelErr(d); re > 0.02 {
		t.Errorf("robust mean rel err %v", re)
	}
}

func TestRobustRandomGraphReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := RandomInstance(rng, 6, 8, 5)
	d, _, err := inst.Robust(nil, Options{Iters: 30000, Tail: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if re := inst.MeanRelErr(d); re > 0.05 {
		t.Errorf("mean rel err %v", re)
	}
}

func TestRobustTolerantUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := RandomInstance(rng, 5, 6, 5)
	ok := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+1)))
		d, _, err := inst.Robust(u, Options{Iters: 20000, Tail: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if inst.MeanRelErr(d) < 0.10 {
			ok++
		}
	}
	if ok < 3 {
		t.Errorf("robust APSP at 2%% faults: %d/%d within 10%%", ok, trials)
	}
}

func TestLPShape(t *testing.T) {
	inst := triangle()
	lp := inst.LP()
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.Dim() != 6 {
		t.Errorf("vars = %d, want 6", lp.Dim())
	}
	// The exact distances must be LP-feasible.
	n := inst.G.N
	x := make([]float64, lp.Dim())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				x[varIndex(n, i, j)] = inst.Exact.At(i, j)
			}
		}
	}
	if v := lp.MaxViolation(x); v > 1e-9 {
		t.Errorf("exact distances violate the LP by %v", v)
	}
}
