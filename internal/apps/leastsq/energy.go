package leastsq

import (
	"math"
	"sort"

	"robustify/internal/fpu"
)

// EnergyPoint is one x-position of Fig 6.7: the FPU energy (power × #FLOPs)
// needed to hit an accuracy target with the CG solver at its best
// (voltage, iterations) operating point, against the Cholesky baseline
// pinned at nominal voltage.
type EnergyPoint struct {
	Target         float64 // required relative error
	BaselineEnergy float64 // Cholesky at nominal (guardbanded) voltage
	CGEnergy       float64 // best CG operating point, +Inf when infeasible
	CGVoltage      float64
	CGIters        int
	CGRate         float64 // fault rate at the chosen voltage
	Feasible       bool
}

// EnergyOptions configures the Fig 6.7 sweep.
type EnergyOptions struct {
	Model  fpu.VoltageModel
	Trials int       // runs per operating point (median error is used)
	Seed   uint64    // base RNG seed
	Rates  []float64 // candidate fault rates (≥ the model's knee rate)
	Iters  []int     // candidate CG iteration budgets
}

// DefaultEnergyOptions returns the grid used for the Fig 6.7 reproduction.
// The FPU is modelled single-precision (Leon3's 32-bit FPU), which is what
// creates the paper's ≈1e-7 accuracy wall.
func DefaultEnergyOptions() EnergyOptions {
	return EnergyOptions{
		Model:  fpu.DefaultVoltageModel(),
		Trials: 11,
		Seed:   1,
		Rates:  []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2},
		Iters:  []int{4, 6, 8, 10, 14, 20, 30},
	}
}

// operatingPoint is a measured (rate, iters) CG configuration.
type operatingPoint struct {
	rate      float64
	iters     int
	medianErr float64
	meanFLOPs float64
}

// EnergySweep measures Fig 6.7: for each accuracy target, the cheapest CG
// operating point that still meets the target (voltage and iteration count
// co-scaled), versus the Cholesky baseline that must stay at nominal
// voltage because direct factorizations cannot tolerate FPU faults.
//
//lint:fpu-exempt experiment-harness accounting: seeds, FLOP averages, and energy products are measured from outside the simulated machine
func (inst *Instance) EnergySweep(targets []float64, o EnergyOptions) []EnergyPoint {
	if o.Trials <= 0 {
		o.Trials = 11
	}
	// Baseline: Cholesky on a reliable single-precision FPU at nominal
	// voltage. Energy is flat across targets.
	bu := fpu.New(fpu.WithSinglePrecision(), fpu.WithOpEnergy(o.Model.Power(o.Model.Nominal)))
	xb := inst.SolveCholesky(bu)
	baseErr := inst.RelErr(xb)
	baseEnergy := bu.Energy()

	// Measure the CG grid once.
	points := make([]operatingPoint, 0, len(o.Rates)*len(o.Iters))
	for _, rate := range o.Rates {
		for _, iters := range o.Iters {
			errs := make([]float64, 0, o.Trials)
			var flops float64
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed*1_000_003 + uint64(trial)*7919 + uint64(iters)*31 + uint64(rate*1e9)
				inj := fpu.NewInjector(rate, seed)
				u := fpu.New(fpu.WithInjector(inj), fpu.WithSinglePrecision())
				x, _, err := inst.SolveCG(u, iters, 5)
				if err != nil {
					errs = append(errs, math.Inf(1))
					continue
				}
				errs = append(errs, inst.RelErr(x))
				flops += float64(u.FLOPs())
			}
			sort.Float64s(errs)
			points = append(points, operatingPoint{
				rate:      rate,
				iters:     iters,
				medianErr: errs[len(errs)/2],
				meanFLOPs: flops / float64(o.Trials),
			})
		}
	}

	out := make([]EnergyPoint, 0, len(targets))
	for _, target := range targets {
		ep := EnergyPoint{Target: target, CGEnergy: math.Inf(1)}
		// The baseline meets any target down to its own precision floor.
		if baseErr <= target {
			ep.BaselineEnergy = baseEnergy
		} else {
			ep.BaselineEnergy = math.Inf(1)
		}
		for _, pt := range points {
			if pt.medianErr > target {
				continue
			}
			energy := pt.meanFLOPs * o.Model.PowerForRate(pt.rate)
			if energy < ep.CGEnergy {
				ep.CGEnergy = energy
				ep.CGVoltage = o.Model.VoltageFor(pt.rate)
				ep.CGIters = pt.iters
				ep.CGRate = pt.rate
				ep.Feasible = true
			}
		}
		out = append(out, ep)
	}
	return out
}
