// Package leastsq implements the paper's least squares application (§4.1,
// Figs 6.2, 6.6, 6.7): the robustified stochastic-gradient and conjugate
// gradient solvers, and the three conventional baselines (SVD, QR,
// Cholesky) whose instability under FPU faults motivates the approach.
package leastsq

import (
	"fmt"
	"math/rand"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/robust"
	"robustify/internal/solver"
)

// Instance is a least squares problem min ‖Ax − b‖² together with its exact
// solution for error metrics.
type Instance struct {
	A     *linalg.Dense
	B     []float64
	Ideal []float64 // exact minimizer, computed reliably at build time
}

// Random generates an m×n instance with standard normal entries,
// b = A·x* + noise·ε (the paper's Fig 6.2 instance is 100×10). The exact
// minimizer is recovered with a reliable QR solve.
//
//lint:fpu-exempt fault-free problem generation: the instance is built before the simulated machine runs
func Random(rng *rand.Rand, m, n int, noise float64) (*Instance, error) {
	a := linalg.NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(nil, xTrue, b)
	for i := range b {
		b[i] += noise * rng.NormFloat64()
	}
	return New(a, b)
}

// New wraps an explicit system, solving it reliably for the Ideal field.
func New(a *linalg.Dense, b []float64) (*Instance, error) {
	f, err := linalg.QR(nil, a)
	if err != nil {
		return nil, fmt.Errorf("leastsq: reference factorization: %w", err)
	}
	ideal, err := f.Solve(nil, b)
	if err != nil {
		return nil, fmt.Errorf("leastsq: reference solve: %w", err)
	}
	rhs := make([]float64, len(b))
	copy(rhs, b)
	return &Instance{A: a, B: rhs, Ideal: ideal}, nil
}

// RelErr is the paper's Fig 6.2/6.6 metric: the relative difference between
// the computed and ideal solutions, evaluated reliably. Non-finite
// solutions map to +Inf-like large error (1e30) so averages stay defined.
func (inst *Instance) RelErr(x []float64) float64 {
	if x == nil || !linalg.AllFinite(x) {
		return 1e30
	}
	return linalg.RelErr(x, inst.Ideal)
}

// SGDOptions configures the robustified stochastic-gradient solve.
type SGDOptions struct {
	Iters      int
	Schedule   solver.Schedule // nil: Linear with a Lipschitz-scaled η₀
	Momentum   float64
	Aggressive *solver.Aggressive
	// Loss selects a robust loss for the residuals (nil = the paper's
	// quadratic objective, bit-identical to the pre-loss solver). A
	// bounded-influence loss caps how hard one fault-corrupted residual can
	// pull the gradient.
	Loss robust.Robustifier
	// Anneal, when non-nil, anneals the loss shape over the run (ignored
	// by the quadratic default, which has no shape).
	Anneal *solver.Anneal
}

// LinearSchedule returns the paper's LS (1/t) schedule with η₀ scaled to
// the instance's curvature: η₀ = boost/λmax(AᵀA).
//
//lint:fpu-exempt fault-free setup: the step-size scale is picked before the simulated machine runs
func (inst *Instance) LinearSchedule(boost float64) solver.Schedule {
	return solver.Linear(boost / inst.lipschitz())
}

// SqrtSchedule returns the SQS (1/√t) schedule, Lipschitz-scaled.
//
//lint:fpu-exempt fault-free setup: the step-size scale is picked before the simulated machine runs
func (inst *Instance) SqrtSchedule(boost float64) solver.Schedule {
	return solver.Sqrt(boost / inst.lipschitz())
}

func (inst *Instance) lipschitz() float64 {
	l := linalg.PowerEstimate(inst.A, 30)
	if l <= 0 {
		return 1
	}
	return l
}

// SolveSGD runs the robustified gradient-descent solve on u from the zero
// iterate.
func (inst *Instance) SolveSGD(u *fpu.Unit, o SGDOptions) ([]float64, solver.Result, error) {
	p, err := core.NewRobustLeastSquares(u, inst.A, inst.B, o.Loss)
	if err != nil {
		return nil, solver.Result{}, err
	}
	sched := o.Schedule
	if sched == nil {
		sched = inst.LinearSchedule(8)
	}
	res, err := solver.SGD(p, make([]float64, p.Dim()), solver.Options{
		Iters:      o.Iters,
		Schedule:   sched,
		Momentum:   o.Momentum,
		Aggressive: o.Aggressive,
		Anneal:     o.Anneal,
		Unit:       u,
	})
	if err != nil {
		return nil, res, err
	}
	return res.X, res, nil
}

// SolveCG runs the conjugate gradient solve of §6.3 on u: CG on the normal
// equations AᵀAx = Aᵀb with the direction reset every restartEvery
// iterations.
func (inst *Instance) SolveCG(u *fpu.Unit, iters, restartEvery int) ([]float64, solver.Result, error) {
	n := inst.A.Cols
	atb := make([]float64, n)
	inst.A.TMulVec(u, inst.B, atb)
	mul := solver.NormalEquationsMul(u, inst.A)
	res, err := solver.CG(u, mul, atb, make([]float64, n), solver.CGOptions{
		Iters:        iters,
		RestartEvery: restartEvery,
	})
	if err != nil {
		return nil, res, err
	}
	return res.X, res, nil
}

// SolveIRLS runs the robust conjugate-gradient solve: IRLS outer rounds of
// weighted normal equations, each solved by restarted CG on u. A nil or
// quadratic loss collapses to SolveCG bit for bit (outer rounds collapse to
// one plain CG solve).
func (inst *Instance) SolveIRLS(u *fpu.Unit, loss robust.Robustifier, outer, iters, restartEvery int) ([]float64, solver.Result, error) {
	res, err := solver.IRLS(u, inst.A, inst.B, loss, make([]float64, inst.A.Cols), solver.IRLSOptions{
		Outer: outer,
		CG:    solver.CGOptions{Iters: iters, RestartEvery: restartEvery},
	})
	if err != nil {
		return nil, res, err
	}
	return res.X, res, nil
}

// SolveSVD is the paper's most accurate baseline: a one-sided Jacobi SVD
// solve with all arithmetic on u. A nil slice is returned when the faulty
// factorization collapses.
func (inst *Instance) SolveSVD(u *fpu.Unit) []float64 {
	f, err := linalg.SVD(u, inst.A)
	if err != nil {
		return nil
	}
	x, err := f.Solve(u, inst.B, 0)
	if err != nil {
		return nil
	}
	return x
}

// SolveQR is the Householder-QR baseline on u.
func (inst *Instance) SolveQR(u *fpu.Unit) []float64 {
	f, err := linalg.QR(u, inst.A)
	if err != nil {
		return nil
	}
	x, err := f.Solve(u, inst.B)
	if err != nil {
		return nil
	}
	return x
}

// SolveCholesky is the normal-equations Cholesky baseline on u: the fastest
// conventional solver and the energy baseline of Fig 6.7.
func (inst *Instance) SolveCholesky(u *fpu.Unit) []float64 {
	ata := inst.A.Gram(u)
	atb := make([]float64, inst.A.Cols)
	inst.A.TMulVec(u, inst.B, atb)
	f, err := linalg.Cholesky(u, ata)
	if err != nil {
		return nil
	}
	x, err := f.Solve(u, atb)
	if err != nil {
		return nil
	}
	return x
}
