package leastsq

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/solver"
)

func testInstance(t *testing.T, m, n int) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	inst, err := Random(rng, m, n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestIdealSolutionResidualMinimal(t *testing.T) {
	inst := testInstance(t, 40, 6)
	if re := inst.RelErr(inst.Ideal); re != 0 {
		t.Errorf("RelErr(ideal) = %v", re)
	}
	if inst.RelErr(nil) < 1e29 {
		t.Error("nil solution should score as catastrophic")
	}
	if inst.RelErr([]float64{math.NaN(), 0, 0, 0, 0, 0}) < 1e29 {
		t.Error("NaN solution should score as catastrophic")
	}
}

func TestSGDReachesIdealReliably(t *testing.T) {
	inst := testInstance(t, 100, 10)
	x, res, err := inst.SolveSGD(nil, SGDOptions{Iters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if re := inst.RelErr(x); re > 1e-3 {
		t.Errorf("SGD rel err on reliable unit = %v (iters=%d)", re, res.Iters)
	}
}

func TestSGDWithAggressiveImproves(t *testing.T) {
	inst := testInstance(t, 100, 10)
	xPlain, _, err := inst.SolveSGD(nil, SGDOptions{Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	xAS, _, err := inst.SolveSGD(nil, SGDOptions{
		Iters:      300,
		Aggressive: solver.DefaultAggressive(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.RelErr(xAS) > inst.RelErr(xPlain)*1.1 {
		t.Errorf("AS made things worse: %v vs %v", inst.RelErr(xAS), inst.RelErr(xPlain))
	}
}

func TestSGDTolerantUnderFaults(t *testing.T) {
	inst := testInstance(t, 100, 10)
	ok := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+1)))
		x, _, err := inst.SolveSGD(u, SGDOptions{Iters: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if inst.RelErr(x) < 0.05 {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("SGD at 1%% faults succeeded only %d/%d", ok, trials)
	}
}

func TestBaselinesExactReliably(t *testing.T) {
	inst := testInstance(t, 60, 8)
	for name, solve := range map[string]func(*fpu.Unit) []float64{
		"svd":      inst.SolveSVD,
		"qr":       inst.SolveQR,
		"cholesky": inst.SolveCholesky,
	} {
		x := solve(nil)
		if x == nil {
			t.Fatalf("%s returned nil on reliable unit", name)
		}
		if re := inst.RelErr(x); re > 1e-8 {
			t.Errorf("%s rel err = %v on reliable unit", name, re)
		}
	}
}

func TestBaselinesFragileUnderFaults(t *testing.T) {
	inst := testInstance(t, 60, 8)
	const trials = 10
	for name, solve := range map[string]func(*fpu.Unit) []float64{
		"svd":      inst.SolveSVD,
		"qr":       inst.SolveQR,
		"cholesky": inst.SolveCholesky,
	} {
		bad := 0
		for trial := 0; trial < trials; trial++ {
			u := fpu.New(fpu.WithFaultRate(0.02, uint64(trial+1)))
			if inst.RelErr(solve(u)) > 1e-3 {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("%s never degraded at 2%% faults", name)
		}
	}
}

func TestCGExactReliably(t *testing.T) {
	inst := testInstance(t, 100, 10)
	x, _, err := inst.SolveCG(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re := inst.RelErr(x); re > 1e-8 {
		t.Errorf("CG(10) rel err on reliable unit = %v", re)
	}
}

func TestCGCheaperThanSVD(t *testing.T) {
	// §6.3 compares solver costs. In raw FLOPs (our measure; the paper
	// measured wall-clock on the Leon3) CG with 10 iterations undercuts
	// the Jacobi SVD by a wide margin and stays within a small factor of
	// QR/Cholesky — see EXPERIMENTS.md for the full accounting.
	inst := testInstance(t, 100, 10)
	count := func(f func(*fpu.Unit) []float64) uint64 {
		u := fpu.New()
		f(u)
		return u.FLOPs()
	}
	uCG := fpu.New()
	if _, _, err := inst.SolveCG(uCG, 10, 0); err != nil {
		t.Fatal(err)
	}
	cg := uCG.FLOPs()
	svd := count(inst.SolveSVD)
	qr := count(inst.SolveQR)
	chol := count(inst.SolveCholesky)
	if cg >= svd {
		t.Errorf("CG FLOPs (%d) should be below SVD (%d)", cg, svd)
	}
	if cg > 3*qr {
		t.Errorf("CG FLOPs (%d) unexpectedly far above QR (%d)", cg, qr)
	}
	if cg > 3*chol {
		t.Errorf("CG FLOPs (%d) unexpectedly far above Cholesky (%d)", cg, chol)
	}
}

func TestEnergySweepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, err := Random(rng, 40, 6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultEnergyOptions()
	o.Trials = 3
	o.Rates = []float64{1e-6, 1e-3}
	o.Iters = []int{6, 12}
	pts := inst.EnergySweep([]float64{1e-1, 1e-4}, o)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if math.IsInf(p.BaselineEnergy, 1) {
			t.Errorf("baseline infeasible at target %v", p.Target)
		}
	}
	// The loose target must be feasible for CG and at most as expensive as
	// the tight one.
	if !pts[0].Feasible {
		t.Error("CG infeasible at 1e-1 target")
	}
	if pts[1].Feasible && pts[1].CGEnergy < pts[0].CGEnergy {
		t.Error("tighter target cheaper than loose target")
	}
}

func TestRandomRejectsBadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Error("Random with m<n must fail during factorization")
		}
	}()
	// m < n: QR returns an error instead of panicking; verify error path.
	if _, err := Random(rng, 2, 5, 0); err == nil {
		t.Error("wide system accepted")
	}
	panic("expected") // reach the deferred check uniformly
}
