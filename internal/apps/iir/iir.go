// Package iir implements the paper's IIR filtering application (§4.2,
// Fig 6.3): the conventional feed-forward recursion as the faulty baseline,
// and the variational form ‖Bx − Au‖² over banded Toeplitz matrices solved
// by the robustified least-squares machinery.
package iir

import (
	"errors"
	"math"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/linalg"
	"robustify/internal/solver"
)

// Filter holds the rational transfer function H(z) = Σaᵢz⁻ⁱ / Σbᵢz⁻ⁱ.
type Filter struct {
	A []float64 // feed-forward (numerator) coefficients a₀..aₙ
	B []float64 // feedback (denominator) coefficients b₀..bₘ, b₀ ≠ 0
}

// ErrBadFilter is returned for malformed coefficient sets.
var ErrBadFilter = errors.New("iir: invalid filter coefficients")

// NewFilter validates the coefficient sets.
func NewFilter(a, b []float64) (*Filter, error) {
	if len(a) == 0 || len(b) == 0 || b[0] == 0 {
		return nil, ErrBadFilter
	}
	f := &Filter{A: append([]float64(nil), a...), B: append([]float64(nil), b...)}
	return f, nil
}

// Taps returns the filter order descriptor max(len(A), len(B)).
func (f *Filter) Taps() int {
	if len(f.A) > len(f.B) {
		return len(f.A)
	}
	return len(f.B)
}

// Lowpass designs a stable lowpass of the given tap count: a
// ⌈taps/2⌉-point moving-average numerator and ⌊taps/2⌋−1 poles spread on a
// circle of the given radius (< 1 for stability). Splitting the taps
// between numerator and denominator keeps the banded system B reasonably
// conditioned, which the variational solve needs. It is the 10-tap filter
// family used by the Fig 6.3 experiments.
//
//lint:fpu-exempt fault-free filter design: coefficients are fixed before the simulated machine runs
func Lowpass(taps int, poleRadius float64) (*Filter, error) {
	if taps < 2 || poleRadius <= 0 || poleRadius >= 1 {
		return nil, ErrBadFilter
	}
	nNum := (taps + 1) / 2
	nPoles := taps/2 - 1
	if nPoles < 1 {
		nPoles = 1
	}
	// Denominator: product of (1 − p·z⁻¹) for real/conjugate poles on the
	// circle, expanded by polynomial convolution.
	b := []float64{1}
	for k := 0; k < nPoles/2; k++ {
		theta := math.Pi * (float64(k) + 0.5) / float64(nPoles)
		re := poleRadius * math.Cos(theta)
		r2 := poleRadius * poleRadius
		// (1 − 2·re·z⁻¹ + r²·z⁻²)
		b = convolve(b, []float64{1, -2 * re, r2})
	}
	if nPoles%2 == 1 {
		b = convolve(b, []float64{1, -poleRadius})
	}
	// Numerator: moving average scaled for unit DC gain.
	var sb float64
	for _, v := range b {
		sb += v
	}
	a := make([]float64, nNum)
	for i := range a {
		a[i] = sb / float64(nNum)
	}
	return NewFilter(a, b)
}

// convolve expands polynomial products during filter design.
//
//lint:fpu-exempt fault-free filter design helper: runs only during Lowpass coefficient construction
func convolve(p, q []float64) []float64 {
	out := make([]float64, len(p)+len(q)-1)
	for i, pi := range p {
		for j, qj := range q {
			out[i+j] += pi * qj
		}
	}
	return out
}

// Feedforward runs the conventional direct-form recursion
//
//	x[t] = (Σ aᵢ·u[t−i] − Σ bᵢ·x[t−i]) / b₀
//
// on u — the paper's baseline, whose recursive state accrues noise as t
// grows on a stochastic processor.
func (f *Filter) Feedforward(fp *fpu.Unit, u []float64) []float64 {
	n := len(u)
	x := make([]float64, n)
	for t := 0; t < n; t++ {
		var acc float64
		for i, ai := range f.A {
			if t-i < 0 {
				break
			}
			acc = fp.Add(acc, fp.Mul(ai, u[t-i]))
		}
		for i := 1; i < len(f.B); i++ {
			if t-i < 0 {
				break
			}
			acc = fp.Sub(acc, fp.Mul(f.B[i], x[t-i]))
		}
		x[t] = fp.Div(acc, f.B[0])
	}
	return x
}

// Matrices returns the banded Toeplitz operators of Eq 4.1/4.2 for a
// t-sample signal: B·x = A·u is the filter's post-condition.
func (f *Filter) Matrices(t int) (a, b *linalg.LowerBand) {
	return linalg.NewLowerBand(t, f.A), linalg.NewLowerBand(t, f.B)
}

// Options configures the robustified solve.
type Options struct {
	Iters      int
	Schedule   solver.Schedule // nil: Linear, Lipschitz-scaled
	Momentum   float64
	Aggressive *solver.Aggressive
	Tail       int // Polyak tail-averaging window (0 = off)
}

// Robust filters u variationally on fp: it minimizes ‖B·x − A·u‖² by SGD,
// seeded with the (noisy) feed-forward output as in the paper's
// experiments. The residual B·x − A·u — including the A·u product — is
// recomputed on the stochastic unit at every gradient evaluation, so
// faults in the right-hand side stay transient and unbiased rather than
// freezing into the problem data.
func (f *Filter) Robust(fp *fpu.Unit, u []float64, o Options) ([]float64, solver.Result, error) {
	t := len(u)
	if t == 0 {
		return nil, solver.Result{}, ErrBadFilter
	}
	aOp, bOp := f.Matrices(t)
	p := &variational{fp: fp, a: aOp, b: bOp, u: u, r: make([]float64, t), rhs: make([]float64, t)}
	sched := o.Schedule
	if sched == nil {
		sched = f.LinearSchedule(t, 8)
	}
	x0 := f.Feedforward(fp, u)
	if !linalg.AllFinite(x0) {
		x0 = make([]float64, t) // corrupted seed: start from zero instead
	}
	res, err := solver.SGD(p, x0, solver.Options{
		Iters:       o.Iters,
		Schedule:    sched,
		Momentum:    o.Momentum,
		Aggressive:  o.Aggressive,
		TailAverage: o.Tail,
		Unit:        fp,
	})
	if err != nil {
		return nil, res, err
	}
	return res.X, res, nil
}

// variational is the IIR post-condition problem f(x) = ‖Bx − Au‖² with the
// full residual recomputed per gradient evaluation.
type variational struct {
	fp   *fpu.Unit
	a, b *linalg.LowerBand
	u    []float64
	r    []float64 // residual scratch
	rhs  []float64 // A·u scratch
}

var _ core.Problem = (*variational)(nil)

func (p *variational) Dim() int { return p.b.N }

// Grad computes Bᵀ(Bx − Au) on the stochastic unit, recomputing Au.
func (p *variational) Grad(x, grad []float64) {
	p.b.MulVec(p.fp, x, p.r)
	p.a.MulVec(p.fp, p.u, p.rhs)
	linalg.Sub(p.fp, p.r, p.rhs, p.r)
	p.b.TMulVec(p.fp, p.r, grad)
}

// Value evaluates ‖Bx − Au‖² reliably (control path).
func (p *variational) Value(x []float64) float64 {
	p.b.MulVec(nil, x, p.r)
	p.a.MulVec(nil, p.u, p.rhs)
	linalg.Sub(nil, p.r, p.rhs, p.r)
	return linalg.SqNorm2(nil, p.r)
}

// LinearSchedule returns the LS (1/t) schedule with η₀ = boost/λmax(BᵀB)
// for a t-sample problem (reliable setup).
//
//lint:fpu-exempt fault-free setup: the step-size scale is picked before the simulated machine runs
func (f *Filter) LinearSchedule(t int, boost float64) solver.Schedule {
	return solver.Linear(boost / f.lipschitz(t))
}

// SqrtSchedule returns the SQS (1/√t) schedule, Lipschitz-scaled.
//
//lint:fpu-exempt fault-free setup: the step-size scale is picked before the simulated machine runs
func (f *Filter) SqrtSchedule(t int, boost float64) solver.Schedule {
	return solver.Sqrt(boost / f.lipschitz(t))
}

func (f *Filter) lipschitz(t int) float64 {
	_, bOp := f.Matrices(t)
	l := linalg.PowerEstimate(bOp, 30)
	if l <= 0 {
		return 1
	}
	return l
}

// Ideal computes the exact filter output by a reliable feed-forward pass
// (ground truth for the error-to-signal metric).
func (f *Filter) Ideal(u []float64) []float64 {
	return f.Feedforward(nil, u)
}

// ErrorToSignal is the Fig 6.3 metric ‖y − y_ideal‖ / ‖y_ideal‖, evaluated
// reliably. Non-finite outputs score 1e30 so averages stay defined.
func ErrorToSignal(y, ideal []float64) float64 {
	if y == nil || !linalg.AllFinite(y) {
		return 1e30
	}
	return linalg.RelErr(y, ideal)
}
