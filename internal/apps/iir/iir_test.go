package iir

import (
	"math"
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/linalg"
)

func testSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	u := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(2*math.Pi*float64(i)/23) + 0.3*rng.NormFloat64()
	}
	return u
}

func TestNewFilterValidation(t *testing.T) {
	if _, err := NewFilter(nil, []float64{1}); err == nil {
		t.Error("empty numerator accepted")
	}
	if _, err := NewFilter([]float64{1}, nil); err == nil {
		t.Error("empty denominator accepted")
	}
	if _, err := NewFilter([]float64{1}, []float64{0, 1}); err == nil {
		t.Error("b0 = 0 accepted")
	}
	f, err := NewFilter([]float64{1, 2}, []float64{1, 0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Taps() != 3 {
		t.Errorf("Taps = %d", f.Taps())
	}
}

func TestLowpassStable(t *testing.T) {
	f, err := Lowpass(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.A)+len(f.B) != 10 {
		t.Errorf("total taps = %d+%d, want 10", len(f.A), len(f.B))
	}
	// Impulse response of a stable filter decays.
	impulse := make([]float64, 400)
	impulse[0] = 1
	h := f.Ideal(impulse)
	var early, late float64
	for i := 0; i < 50; i++ {
		early += math.Abs(h[i])
	}
	for i := 350; i < 400; i++ {
		late += math.Abs(h[i])
	}
	if late > 1e-6*early {
		t.Errorf("impulse response does not decay: early=%v late=%v", early, late)
	}
	// DC gain ≈ 1 by construction.
	step := make([]float64, 600)
	for i := range step {
		step[i] = 1
	}
	y := f.Ideal(step)
	if g := y[len(y)-1]; math.Abs(g-1) > 1e-6 {
		t.Errorf("DC gain = %v, want 1", g)
	}
}

func TestLowpassValidation(t *testing.T) {
	if _, err := Lowpass(1, 0.5); err == nil {
		t.Error("1 tap accepted")
	}
	if _, err := Lowpass(10, 1.0); err == nil {
		t.Error("unit pole radius accepted")
	}
}

// TestPostConditionHolds: the ideal feed-forward output satisfies
// B·x = A·u — the variational transformation's foundation (Eq 4.1/4.2).
func TestPostConditionHolds(t *testing.T) {
	f, err := Lowpass(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	u := testSignal(120, 1)
	x := f.Ideal(u)
	aOp, bOp := f.Matrices(len(u))
	au := make([]float64, len(u))
	bx := make([]float64, len(u))
	aOp.MulVec(nil, u, au)
	bOp.MulVec(nil, x, bx)
	if re := linalg.RelErr(bx, au); re > 1e-10 {
		t.Errorf("post-condition violated: ‖Bx−Au‖ rel = %v", re)
	}
}

func TestRobustMatchesIdealReliably(t *testing.T) {
	f, err := Lowpass(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	u := testSignal(150, 2)
	ideal := f.Ideal(u)
	y, _, err := f.Robust(nil, u, Options{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if esr := ErrorToSignal(y, ideal); esr > 1e-9 {
		t.Errorf("robust solve on reliable unit: ESR = %v", esr)
	}
}

// TestRobustBeatsBaselineUnderFaults is Fig 6.3's headline: at a moderate
// fault rate the variational solve delivers orders of magnitude lower
// error-to-signal ratio than the recursive baseline.
func TestRobustBeatsBaselineUnderFaults(t *testing.T) {
	f, err := Lowpass(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	u := testSignal(150, 3)
	ideal := f.Ideal(u)
	var base, robust float64
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		ub := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+1)))
		base += math.Min(ErrorToSignal(f.Feedforward(ub, u), ideal), 10)
		ur := fpu.New(fpu.WithFaultRate(0.01, uint64(trial+101)))
		y, _, err := f.Robust(ur, u, Options{Iters: 400})
		if err != nil {
			t.Fatal(err)
		}
		robust += math.Min(ErrorToSignal(y, ideal), 10)
	}
	base /= trials
	robust /= trials
	if robust >= base {
		t.Errorf("robust ESR %v not below baseline ESR %v", robust, base)
	}
}

func TestRobustEmptySignal(t *testing.T) {
	f, err := Lowpass(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Robust(nil, nil, Options{Iters: 10}); err == nil {
		t.Error("empty signal accepted")
	}
}

func TestErrorToSignalMetric(t *testing.T) {
	ideal := []float64{3, 4}
	if got := ErrorToSignal([]float64{3, 4}, ideal); got != 0 {
		t.Errorf("ESR identical = %v", got)
	}
	if got := ErrorToSignal(nil, ideal); got < 1e29 {
		t.Errorf("ESR nil = %v", got)
	}
	if got := ErrorToSignal([]float64{math.Inf(1), 0}, ideal); got < 1e29 {
		t.Errorf("ESR inf = %v", got)
	}
}

func TestFeedforwardCountsFLOPs(t *testing.T) {
	f, err := Lowpass(6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	u := fpu.New()
	f.Feedforward(u, testSignal(50, 4))
	if u.FLOPs() == 0 {
		t.Error("feed-forward did not route through the unit")
	}
}
