// Package matching implements the paper's bipartite graph matching
// application (§4.4, Figs 6.4 and 6.5): the Hungarian baseline on the
// faulty FPU (standing in for the OpenCV routine) and the robustified
// assignment-LP form with the §6.2 enhancement stack — step scaling,
// momentum, QR preconditioning, and penalty annealing.
package matching

import (
	"math/rand"

	"robustify/internal/core"
	"robustify/internal/fpu"
	"robustify/internal/graph"
	"robustify/internal/solver"
)

// Instance is a matching problem with its exact optimum for scoring.
type Instance struct {
	G *graph.Bipartite
	// Optimal is the reliable Hungarian solution; OptimalWeight its weight.
	Optimal       []int
	OptimalWeight float64
}

// NewInstance wraps a bipartite graph, solving it reliably for the
// reference optimum.
func NewInstance(g *graph.Bipartite) *Instance {
	assign, ok := graph.Hungarian(nil, g)
	if !ok {
		// Unreachable on a reliable unit; keep the zero matching to stay
		// total.
		assign = make([]int, g.Left)
		for i := range assign {
			assign[i] = -1
		}
	}
	w, _ := g.MatchingWeight(assign)
	return &Instance{G: g, Optimal: assign, OptimalWeight: w}
}

// RandomInstance generates the paper's Fig 6.4/6.5 instance family:
// left×right vertices (11 nodes as 5×6 in the paper), the given edge count,
// and weights in [1, 2) so the optimum is unique with probability one.
func RandomInstance(rng *rand.Rand, left, right, edges int) *Instance {
	return NewInstance(graph.RandomBipartite(rng, left, right, edges, 1, 2))
}

// Success is the Fig 6.4 criterion: every edge of the output matches the
// reference optimum's weight (all edges accurately chosen). Assignments
// touching non-edges or reusing columns fail outright.
//
//lint:fpu-exempt success metric measured outside the simulated machine: it scores solver output, it never feeds the solve
func (inst *Instance) Success(assign []int) bool {
	if assign == nil {
		return false
	}
	w, valid := inst.G.MatchingWeight(assign)
	if !valid {
		return false
	}
	return w >= inst.OptimalWeight-1e-9
}

// Baseline runs the Hungarian algorithm with arithmetic on u and reports
// the resulting assignment (nil when the faulty run collapsed).
func (inst *Instance) Baseline(u *fpu.Unit) []int {
	assign, ok := graph.Hungarian(u, inst.G)
	if !ok {
		return nil
	}
	return assign
}

// Options configures the robustified solve; the zero value is the paper's
// "Basic,LS" configuration.
type Options struct {
	Iters      int
	Schedule   solver.Schedule // nil: Linear(0.5/max(n,m))
	Momentum   float64
	Aggressive *solver.Aggressive
	Anneal     *solver.Anneal
	Precond    bool
	Tail       int     // Polyak tail-averaging window (0 = off)
	L1, L2     float64 // penalty weights; 0 picks the defaults (2, 2)
}

// Robust solves the matching LP on u: maximize Σ Wᵢⱼ·Xᵢⱼ over doubly
// substochastic X in exact quadratic penalty form, with non-edges pinned at
// weight 0 so rounding never selects them at a feasible optimum. Rounding
// to an assignment (and preconditioner setup/recovery when enabled) are
// reliable control steps.
func (inst *Instance) Robust(u *fpu.Unit, o Options) ([]int, solver.Result, error) {
	l1, l2 := o.L1, o.L2
	if l1 == 0 {
		l1 = 2
	}
	if l2 == 0 {
		l2 = 2
	}
	rows, cols := inst.G.Left, inst.G.Right
	prob, err := core.NewAssignment(u, inst.G.W, l1, l2)
	if err != nil {
		return nil, solver.Result{}, err
	}
	sched := o.Schedule
	if sched == nil {
		d := rows
		if cols > d {
			d = cols
		}
		//lint:fpu-exempt fault-free setup: the default step size is picked before the simulated machine runs
		sched = solver.Linear(0.5 / float64(d))
	}
	opts := solver.Options{
		Iters:       o.Iters,
		Schedule:    sched,
		Momentum:    o.Momentum,
		Aggressive:  o.Aggressive,
		Anneal:      o.Anneal,
		TailAverage: o.Tail,
		Unit:        u,
	}
	x0 := prob.UniformStart()

	var x []float64
	var res solver.Result
	if o.Precond {
		// The preconditioned path follows §6.2.1 literally: the ℓ1 exact
		// penalty cᵀy + μ[Qy − b]₊ over the QR-transformed constraints.
		//lint:fpu-exempt fault-free setup: the penalty weight is fixed before the simulated machine runs
		pre, err := core.Precondition(u, prob.ToLP(), core.PenaltyAbs, 2*l2)
		if err != nil {
			return nil, solver.Result{}, err
		}
		res, err = solver.SGD(pre, pre.InitialY(x0), opts)
		if err != nil {
			return nil, res, err
		}
		x, err = pre.Recover(res.X)
		if err != nil {
			return nil, res, err
		}
	} else {
		res, err = solver.SGD(prob, x0, opts)
		if err != nil {
			return nil, res, err
		}
		x = res.X
	}

	// Reliable rounding, restricted to real edges: a slot whose best
	// remaining entry is a non-edge stays unmatched.
	assign := core.RoundAssignment(rows, cols, maskNonEdges(inst.G, x))
	return assign, res, nil
}

// maskNonEdges forces entries at non-edges to an un-pickable value so the
// greedy rounding only selects real edges (reliable control step).
func maskNonEdges(g *graph.Bipartite, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i := 0; i < g.Left; i++ {
		for j := 0; j < g.Right; j++ {
			if !g.HasEdge(i, j) {
				out[i*g.Right+j] = -1e30
			}
		}
	}
	return out
}

// Variant is a named solver configuration of the Fig 6.5 enhancement
// study.
type Variant struct {
	Name string
	Opts Options
}

// Variants returns the Fig 6.5 ladder for an instance with the given
// iteration budget: Basic,LS → SQS → PRECOND → ANNEAL → ALL. The ALL stack
// composes annealing with momentum on the SQS schedule — the combination
// that measures best on this substrate (QR preconditioning is kept as its
// own rung: its dense-LP gradient costs ~20× the specialized one in FLOPs,
// which multiplies fault exposure under a per-FLOP fault model, so stacking
// it into ALL hurts at high rates here; see EXPERIMENTS.md).
//
//lint:fpu-exempt fault-free setup: variant step sizes are picked before the simulated machine runs
func Variants(iters int, dim int) []Variant {
	ls := solver.Linear(0.5 / float64(dim))
	sqs := solver.Sqrt(0.5 / float64(dim))
	return []Variant{
		{Name: "Basic,LS", Opts: Options{Iters: iters, Schedule: ls}},
		{Name: "SQS", Opts: Options{Iters: iters, Schedule: sqs}},
		{Name: "PRECOND", Opts: Options{Iters: iters, Schedule: solver.Sqrt(0.02), Precond: true}},
		{Name: "ANNEAL", Opts: Options{Iters: iters, Schedule: sqs, Anneal: solver.DefaultAnneal()}},
		{Name: "ALL", Opts: Options{
			Iters:    iters,
			Schedule: sqs,
			Momentum: 0.5,
			Anneal:   solver.DefaultAnneal(),
		}},
	}
}
