package matching

import (
	"math/rand"
	"testing"

	"robustify/internal/fpu"
	"robustify/internal/graph"
)

func testInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	return RandomInstance(rng, 5, 6, 30)
}

func TestInstanceOptimalIsValid(t *testing.T) {
	inst := testInstance(1)
	if !inst.Success(inst.Optimal) {
		t.Fatal("reference optimum fails its own success check")
	}
	if inst.OptimalWeight <= 0 {
		t.Fatalf("optimal weight = %v", inst.OptimalWeight)
	}
	// Cross-check against brute force.
	_, bestW := graph.BruteForceMatching(inst.G)
	if inst.OptimalWeight < bestW-1e-9 {
		t.Fatalf("Hungarian reference %v below brute force %v", inst.OptimalWeight, bestW)
	}
}

func TestSuccessRejectsBadAssignments(t *testing.T) {
	inst := testInstance(2)
	if inst.Success(nil) {
		t.Error("nil assignment accepted")
	}
	bad := append([]int(nil), inst.Optimal...)
	bad[0] = bad[1] // duplicate column
	if inst.Success(bad) {
		t.Error("duplicate-column assignment accepted")
	}
	unmatched := make([]int, inst.G.Left)
	for i := range unmatched {
		unmatched[i] = -1
	}
	if inst.Success(unmatched) {
		t.Error("empty matching accepted as optimal")
	}
}

func TestBaselineOptimalReliably(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inst := testInstance(seed)
		if !inst.Success(inst.Baseline(nil)) {
			t.Fatalf("seed %d: reliable Hungarian missed the optimum", seed)
		}
	}
}

func TestBaselineDegradesUnderFaults(t *testing.T) {
	inst := testInstance(3)
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.05, uint64(trial+1)))
		if !inst.Success(inst.Baseline(u)) {
			fails++
		}
	}
	if fails == 0 {
		t.Error("faulty Hungarian never failed at 5%")
	}
}

func TestRobustReliableConvergence(t *testing.T) {
	// With annealing, the penalized LP resolves the optimum on a reliable
	// unit across instances. (The un-annealed basic configuration
	// genuinely plateaus near 50% even without faults — the paper reports
	// the same in §6.2/Fig 6.5, which is why annealing exists.)
	anneal := Variants(10000, 6)[3]
	if anneal.Name != "ANNEAL" {
		t.Fatalf("variant ladder changed: %v", anneal.Name)
	}
	ok := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		inst := testInstance(seed)
		assign, _, err := inst.Robust(nil, anneal.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Success(assign) {
			ok++
		}
	}
	if ok < trials-2 {
		t.Errorf("reliable robust matching: %d/%d", ok, trials)
	}
}

func TestBasicConfigPlateausReliably(t *testing.T) {
	// Documents the §6.2 motivation: the basic penalty solve without
	// annealing misses the exact optimum on a sizable fraction of
	// instances even on a reliable unit.
	ok := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		inst := testInstance(seed)
		assign, _, err := inst.Robust(nil, Options{Iters: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Success(assign) {
			ok++
		}
	}
	if ok == trials {
		t.Skip("basic config solved every instance; plateau not observed on these seeds")
	}
}

func TestRobustPrecondReliable(t *testing.T) {
	inst := testInstance(4)
	assign, _, err := inst.Robust(nil, Options{Iters: 10000, Precond: true})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Success(assign) {
		t.Error("preconditioned solve missed the optimum on a reliable unit")
	}
}

func TestRobustSurvivesHeavyFaults(t *testing.T) {
	// The ALL variant must stay finite and mostly-correct at a high rate.
	// Success at high fault rates is instance-dependent (near-tied optima
	// drown in gradient noise); this seed has a healthy optimality gap.
	inst := testInstance(6)
	variants := Variants(10000, 6)
	all := variants[len(variants)-1]
	if all.Name != "ALL" {
		t.Fatalf("variant ladder changed: %v", all.Name)
	}
	ok := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		u := fpu.New(fpu.WithFaultRate(0.2, uint64(trial+1)))
		assign, _, err := inst.Robust(u, all.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Success(assign) {
			ok++
		}
	}
	if ok < trials/2 {
		t.Errorf("ALL variant at 20%% faults: %d/%d", ok, trials)
	}
}

func TestVariantLadderNames(t *testing.T) {
	names := []string{"Basic,LS", "SQS", "PRECOND", "ANNEAL", "ALL"}
	vs := Variants(100, 6)
	if len(vs) != len(names) {
		t.Fatalf("variants = %d", len(vs))
	}
	for i, v := range vs {
		if v.Name != names[i] {
			t.Errorf("variant %d = %q, want %q", i, v.Name, names[i])
		}
		if v.Opts.Iters != 100 {
			t.Errorf("variant %q iters = %d", v.Name, v.Opts.Iters)
		}
	}
}

func TestMaskNonEdges(t *testing.T) {
	g := graph.NewBipartite(2, 2)
	g.AddEdge(0, 0, 1)
	g.AddEdge(1, 1, 1)
	x := []float64{0.9, 0.8, 0.7, 0.6}
	masked := maskNonEdges(g, x)
	if masked[0] != 0.9 || masked[3] != 0.6 {
		t.Error("edges must keep their values")
	}
	if masked[1] > -1e29 || masked[2] > -1e29 {
		t.Error("non-edges must be unpickable")
	}
	if x[1] != 0.8 {
		t.Error("input mutated")
	}
}
