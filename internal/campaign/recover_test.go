package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// seedCampaignDir fabricates a campaign directory as a dead daemon would
// have left it: spec.json, the first keep lines of a completed run's
// trials.jsonl (keep < 0 keeps all of them), and — when meta is non-nil —
// a meta.json stamped with the given lifecycle record.
func seedCampaignDir(t *testing.T, dir string, spec Spec, keep int, meta *Meta) {
	t.Helper()
	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.SaveSpec(spec); err != nil {
		t.Fatalf("save spec: %v", err)
	}
	if err := NewExecution(camp, st).Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if keep >= 0 {
		path := filepath.Join(dir, storeFile)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(b), "\n")
		if keep > len(lines) {
			t.Fatalf("keep %d > %d store lines", keep, len(lines))
		}
		if err := os.WriteFile(path, []byte(strings.Join(lines[:keep], "")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if meta != nil {
		if err := writeMeta(dir, *meta); err != nil {
			t.Fatalf("write meta: %v", err)
		}
	}
}

// TestRecoverInterruptedAndResume is the tentpole path: a campaign whose
// meta still says "running" (the daemon was killed mid-run) is recovered
// as interrupted with accurate progress, keeps its timestamps, reclassifies
// its on-disk meta, does not block id allocation, and resumes to a table
// byte-identical to an uninterrupted run.
func TestRecoverInterruptedAndResume(t *testing.T) {
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.01, 0.2, 0.5}},
		Trials: 3, Seed: 17,
	}
	wantText, wantCSV := runAll(t, spec)

	root := t.TempDir()
	dir := filepath.Join(root, "c0007")
	started := time.Now().Add(-time.Minute).Truncate(time.Second)
	seedCampaignDir(t, dir, spec, 4, &Meta{
		ID: "c0007", Name: spec.Title(), State: StateRunning,
		Created: started.Add(-time.Second), Started: &started,
	})

	m := newManager(t, root, 2)
	defer m.Close()

	st, err := m.Get("c0007")
	if err != nil {
		t.Fatalf("recovered campaign not registered: %v", err)
	}
	if st.State != StateInterrupted {
		t.Errorf("recovered state = %s, want %s", st.State, StateInterrupted)
	}
	if st.Progress.Done != 4 || st.Progress.Total != 9 {
		t.Errorf("recovered progress = %+v, want 4/9", st.Progress)
	}
	if st.Started == nil || !st.Started.Equal(started) {
		t.Errorf("recovered started = %v, want %v", st.Started, started)
	}
	meta, ok, err := readMeta(dir)
	if err != nil || !ok || meta.State != StateInterrupted {
		t.Errorf("on-disk meta after recovery = %+v ok=%v err=%v, want state %s",
			meta, ok, err, StateInterrupted)
	}

	// Mid-run results of a recovered campaign are servable.
	table, err := m.Table("c0007")
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	if len(table.Series) == 0 {
		t.Error("recovered table has no series")
	}

	// Id allocation continues after the highest recovered id.
	id, err := m.Submit(quickSpec(0.01, 1, 1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if id != "c0008" {
		t.Errorf("submit after recovery allocated %s, want c0008", id)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}

	// Resume executes only the missing five trials; the final table is
	// byte-identical to the uninterrupted run.
	if err := m.Resume("c0007"); err != nil {
		t.Fatalf("resume recovered campaign: %v", err)
	}
	if err := m.Wait("c0007"); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	st, err = m.Get("c0007")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Progress.Done != 9 {
		t.Errorf("after resume: state=%s progress=%+v, want done 9/9", st.State, st.Progress)
	}
	table, err = m.Table("c0007")
	if err != nil {
		t.Fatal(err)
	}
	var text, csv bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatal(err)
	}
	if err := table.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if text.String() != wantText {
		t.Errorf("resumed table differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			wantText, text.String())
	}
	if csv.String() != wantCSV {
		t.Errorf("resumed CSV differs from uninterrupted run")
	}
	meta, ok, err = readMeta(dir)
	if err != nil || !ok || meta.State != StateDone || meta.Finished == nil {
		t.Errorf("final on-disk meta = %+v ok=%v err=%v, want done with finish time", meta, ok, err)
	}
}

// TestRecoverClassification covers every recovered state: terminal states
// are kept (with their error), ownerless queued/running become
// interrupted, pre-registry directories (no meta.json) classify from
// store contents, and non-campaign directories are ignored.
func TestRecoverClassification(t *testing.T) {
	spec := quickSpec(0.05, 5, 3)
	root := t.TempDir()
	now := time.Now()
	seedCampaignDir(t, filepath.Join(root, "c0001"), spec, -1, &Meta{
		ID: "c0001", State: StateDone, Created: now, Finished: &now})
	seedCampaignDir(t, filepath.Join(root, "c0002"), spec, 1, &Meta{
		ID: "c0002", State: StateFailed, Error: "synthetic failure", Created: now})
	seedCampaignDir(t, filepath.Join(root, "c0003"), spec, 1, &Meta{
		ID: "c0003", State: StateCancelled, Created: now})
	seedCampaignDir(t, filepath.Join(root, "c0004"), spec, 1, &Meta{
		ID: "c0004", State: StateQueued, Created: now})
	seedCampaignDir(t, filepath.Join(root, "c0005"), spec, -1, nil) // pre-registry, complete
	seedCampaignDir(t, filepath.Join(root, "c0006"), spec, 1, nil)  // pre-registry, partial
	// Damaged meta with intact spec+trials must degrade to store-based
	// classification, not orphan the campaign.
	seedCampaignDir(t, filepath.Join(root, "c0007"), spec, 1, nil)
	if err := os.WriteFile(filepath.Join(root, "c0007", metaFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Killed after the last trial's append but before the terminal meta
	// write: the store is complete, so the campaign is done, not
	// interrupted.
	seedCampaignDir(t, filepath.Join(root, "c0008"), spec, -1, &Meta{
		ID: "c0008", State: StateRunning, Created: now})
	if err := os.MkdirAll(filepath.Join(root, "notes"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := newManager(t, root, 1)
	defer m.Close()

	want := map[string]string{
		"c0001": StateDone,
		"c0002": StateFailed,
		"c0003": StateCancelled,
		"c0004": StateInterrupted,
		"c0005": StateDone,
		"c0006": StateInterrupted,
		"c0007": StateInterrupted,
		"c0008": StateDone,
	}
	list := m.List()
	if len(list) != len(want) {
		t.Fatalf("recovered %d campaigns, want %d: %+v", len(list), len(want), list)
	}
	for i, s := range list {
		if wantState := want[s.ID]; s.State != wantState {
			t.Errorf("%s recovered as %s, want %s", s.ID, s.State, wantState)
		}
		if i > 0 && list[i-1].ID >= s.ID {
			t.Errorf("recovered list out of id order: %s before %s", list[i-1].ID, s.ID)
		}
	}
	if st, err := m.Get("c0002"); err != nil || st.Error != "synthetic failure" {
		t.Errorf("failed campaign error = %q (err=%v), want preserved", st.Error, err)
	}

	// Completed campaigns don't resume; interrupted ones do.
	if err := m.Resume("c0001"); err == nil {
		t.Error("resume of a recovered done campaign accepted")
	}
	if err := m.Resume("c0004"); err != nil {
		t.Errorf("resume of interrupted campaign: %v", err)
	}
	if err := m.Wait("c0004"); err != nil {
		t.Errorf("resumed interrupted campaign: %v", err)
	}
}

// TestCancelInterrupted: cancelling a recovered interrupted campaign —
// which no goroutine owns — must actually flip it to cancelled (and
// persist that), so -autoresume honors the operator's decision instead
// of resurrecting the campaign on the next boot.
func TestCancelInterrupted(t *testing.T) {
	spec := quickSpec(0.05, 5, 3)
	root := t.TempDir()
	now := time.Now()
	seedCampaignDir(t, filepath.Join(root, "c0001"), spec, 1, &Meta{
		ID: "c0001", State: StateRunning, Created: now})

	m := newManager(t, root, 1)
	defer m.Close()
	if err := m.Cancel("c0001"); err != nil {
		t.Fatalf("cancel interrupted: %v", err)
	}
	if st, _ := m.Get("c0001"); st.State != StateCancelled {
		t.Errorf("state after cancel = %s, want cancelled", st.State)
	}
	meta, ok, err := readMeta(filepath.Join(root, "c0001"))
	if err != nil || !ok || meta.State != StateCancelled {
		t.Errorf("on-disk meta after cancel = %+v ok=%v err=%v, want cancelled", meta, ok, err)
	}
	if ids := m.ResumeInterrupted(); len(ids) != 0 {
		t.Errorf("autoresume after cancel = %v, want none", ids)
	}
	// The operator can still resume it explicitly.
	if err := m.Resume("c0001"); err != nil {
		t.Fatalf("explicit resume after cancel: %v", err)
	}
	if err := m.Wait("c0001"); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Get("c0001"); st.State != StateDone {
		t.Errorf("after explicit resume: %s, want done", st.State)
	}
}

// TestCloseLeavesRunningInterrupted: a graceful shutdown (Manager.Close,
// the SIGTERM path) is a daemon wind-down, not an operator cancel — the
// in-flight campaign must persist as interrupted so the next boot (and
// -autoresume) finishes it, exactly as after a crash.
func TestCloseLeavesRunningInterrupted(t *testing.T) {
	root := t.TempDir()
	m1 := newManager(t, root, 1)
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/robust", Rates: []float64{0.05, 0.1, 0.2}, Iters: 2000},
		Trials: 6, Seed: 13, Workers: 1,
	}
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.Done > 0 || terminal(st.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	meta, ok, err := readMeta(filepath.Join(root, id))
	if err != nil || !ok {
		t.Fatalf("meta after close: ok=%v err=%v", ok, err)
	}
	if meta.State == StateDone {
		t.Skipf("campaign finished before close; nothing was interrupted")
	}
	if meta.State != StateInterrupted {
		t.Fatalf("meta state after graceful close = %s, want %s", meta.State, StateInterrupted)
	}

	m2 := newManager(t, root, 1)
	defer m2.Close()
	if ids := m2.ResumeInterrupted(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("ResumeInterrupted after graceful shutdown = %v, want [%s]", ids, id)
	}
	if err := m2.Wait(id); err != nil {
		t.Fatal(err)
	}
	if st, _ := m2.Get(id); st.State != StateDone || st.Progress.Done != st.Progress.Total {
		t.Errorf("after resume: %s %+v, want done and complete", st.State, st.Progress)
	}
}

// TestRecoverAfterRealManagerRestart exercises the production write path
// end to end: states written by a live manager's own lifecycle
// transitions are what a second manager recovers.
func TestRecoverAfterRealManagerRestart(t *testing.T) {
	root := t.TempDir()
	m1 := newManager(t, root, 1)
	id, err := m1.Submit(quickSpec(0.1, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Wait(id); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := newManager(t, root, 1)
	defer m2.Close()
	st, err := m2.Get(id)
	if err != nil {
		t.Fatalf("campaign lost across restart: %v", err)
	}
	if st.State != StateDone || st.Finished == nil {
		t.Errorf("restarted state = %s finished=%v, want done with finish time", st.State, st.Finished)
	}
	if st.Progress.Done != st.Progress.Total || st.Progress.Total == 0 {
		t.Errorf("restarted progress = %+v", st.Progress)
	}
	if _, err := m2.Table(id); err != nil {
		t.Errorf("restarted results: %v", err)
	}
}

// TestResumeInterrupted pins the -autoresume primitive: exactly the
// interrupted campaigns are rescheduled.
func TestResumeInterrupted(t *testing.T) {
	spec := quickSpec(0.05, 5, 3)
	root := t.TempDir()
	now := time.Now()
	seedCampaignDir(t, filepath.Join(root, "c0001"), spec, -1, &Meta{
		ID: "c0001", State: StateDone, Created: now})
	seedCampaignDir(t, filepath.Join(root, "c0002"), spec, 1, &Meta{
		ID: "c0002", State: StateRunning, Created: now})
	seedCampaignDir(t, filepath.Join(root, "c0003"), spec, 2, &Meta{
		ID: "c0003", State: StateCancelled, Created: now})

	m := newManager(t, root, 2)
	defer m.Close()
	ids := m.ResumeInterrupted()
	if len(ids) != 1 || ids[0] != "c0002" {
		t.Fatalf("ResumeInterrupted = %v, want [c0002]", ids)
	}
	if err := m.Wait("c0002"); err != nil {
		t.Fatalf("auto-resumed campaign: %v", err)
	}
	st, err := m.Get("c0002")
	if err != nil || st.State != StateDone {
		t.Errorf("auto-resumed state = %s (err=%v), want done", st.State, err)
	}
	if st, _ := m.Get("c0003"); st.State != StateCancelled {
		t.Errorf("cancelled campaign auto-resumed: %s", st.State)
	}
}
