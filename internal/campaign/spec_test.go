package campaign

import (
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"figure ok", Spec{Figure: "6.1"}, ""},
		{"custom ok", Spec{Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.1}}}, ""},
		{"neither", Spec{}, "needs a figure or a custom sweep"},
		{"both", Spec{Figure: "6.1", Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.1}}}, "mutually exclusive"},
		{"unknown figure", Spec{Figure: "99.9"}, "unknown figure"},
		{"unplannable figure", Spec{Figure: "5.1"}, "not sweep-shaped"},
		{"unknown workload", Spec{Custom: &CustomSweep{Workload: "nope", Rates: []float64{0.1}}}, "unknown workload"},
		{"no rates", Spec{Custom: &CustomSweep{Workload: "sort/base"}}, "at least one rate"},
		{"negative rate", Spec{Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{-1}}}, "invalid fault rate"},
		{"bad agg", Spec{Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.1}, Agg: "p99"}}, "unknown aggregator"},
		{"negative trials", Spec{Figure: "6.1", Trials: -1}, "negative trials"},
		{"negative workers", Spec{Figure: "6.1", Workers: -1}, "negative workers"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"figure":"6.1","trails":5}`)); err == nil {
		t.Error("typo field accepted")
	}
	spec, err := ParseSpec([]byte(`{"figure":"6.1","trials":5,"seed":3,"quick":true}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if spec.Figure != "6.1" || spec.Trials != 5 || spec.Seed != 3 || !spec.Quick {
		t.Errorf("parsed spec = %+v", spec)
	}
}

func TestResumeCompatible(t *testing.T) {
	a := Spec{Figure: "6.1", Trials: 3, Seed: 7, Quick: true}
	b := a
	b.Workers = 8
	b.Name = "renamed"
	if !ResumeCompatible(a, b) {
		t.Error("workers/name must not affect resume compatibility")
	}
	c := a
	c.Seed = 8
	if ResumeCompatible(a, c) {
		t.Error("different seed must be incompatible")
	}
	d := a
	d.Trials = 4
	if ResumeCompatible(a, d) {
		t.Error("different trials must be incompatible")
	}
}

func TestCompileGrid(t *testing.T) {
	camp, err := Compile(Spec{Figure: "6.1", Quick: true, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Quick 6.1: 4 series × 3 rates × 2 trials.
	if got := camp.Total(); got != 24 {
		t.Errorf("total = %d, want 24", got)
	}
	if len(camp.Plan.Units) != 4 {
		t.Errorf("units = %d, want 4", len(camp.Plan.Units))
	}
	// The grid seeds must match the sweep derivation exactly.
	u := camp.Plan.Units[0]
	if got, want := u.Sweep.TrialSeed(1, 1), u.Sweep.TrialSeed(1, 1); got != want {
		t.Errorf("trial seed unstable: %d vs %d", got, want)
	}
}

func TestSpecTitle(t *testing.T) {
	if got := (&Spec{Figure: "6.1"}).Title(); got != "fig-6.1" {
		t.Errorf("figure title = %q", got)
	}
	if got := (&Spec{Name: "x", Figure: "6.1"}).Title(); got != "x" {
		t.Errorf("named title = %q", got)
	}
	if got := (&Spec{Custom: &CustomSweep{Workload: "sort/base"}}).Title(); got != "sort/base" {
		t.Errorf("custom title = %q", got)
	}
}
