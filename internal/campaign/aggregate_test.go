package campaign

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestOnlineStatsExactMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o OnlineStats
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	wantVar := m2 / float64(len(xs)-1)

	if o.Count() != len(xs) {
		t.Errorf("count = %d", o.Count())
	}
	if math.Abs(o.Mean()-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", o.Mean(), mean)
	}
	if math.Abs(o.Var()-wantVar) > 1e-9 {
		t.Errorf("var = %v, want %v", o.Var(), wantVar)
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if o.Min() != c[0] || o.Max() != c[len(c)-1] {
		t.Errorf("min/max = %v/%v, want %v/%v", o.Min(), o.Max(), c[0], c[len(c)-1])
	}
	// P² is an estimator: for 1000 N(10,3) samples it should land well
	// within a tenth of a standard deviation of the true median.
	exact := 0.5 * (c[499] + c[500])
	if math.Abs(o.Median()-exact) > 0.3 {
		t.Errorf("P² median = %v, exact %v", o.Median(), exact)
	}
}

func TestOnlineStatsSmallSamplesExactMedian(t *testing.T) {
	// Below five values the median must be exact, matching harness.Median.
	for _, xs := range [][]float64{{3}, {3, 1}, {5, 1, 3}, {4, 1, 3, 2}} {
		var o OnlineStats
		for _, x := range xs {
			o.Add(x)
		}
		c := append([]float64(nil), xs...)
		sort.Float64s(c)
		var want float64
		if len(c)%2 == 1 {
			want = c[len(c)/2]
		} else {
			want = 0.5 * (c[len(c)/2-1] + c[len(c)/2])
		}
		if got := o.Median(); got != want {
			t.Errorf("median(%v) = %v, want %v", xs, got, want)
		}
	}
}

func TestOnlineStatsEmpty(t *testing.T) {
	var o OnlineStats
	for name, v := range map[string]float64{
		"mean": o.Mean(), "median": o.Median(), "min": o.Min(), "max": o.Max(), "var": o.Var(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
}

func TestP2MonotoneStream(t *testing.T) {
	// On a 0..999 stream the median estimate must land near 500.
	var o OnlineStats
	for i := 0; i < 1000; i++ {
		o.Add(float64(i))
	}
	if m := o.Median(); math.Abs(m-499.5) > 25 {
		t.Errorf("median of 0..999 = %v, want ≈499.5", m)
	}
}

// TestOnlineStatsExactMedianUpToCap: up to exactMedianCap values the
// reported median must equal the exact median bit-for-bit (and not be
// flagged estimated) — that is the /status honesty contract.
func TestOnlineStatsExactMedianUpToCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 6, 17, 63, 64} {
		var o OnlineStats
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			o.Add(xs[i])
		}
		c := append([]float64(nil), xs...)
		sort.Float64s(c)
		var want float64
		if n%2 == 1 {
			want = c[n/2]
		} else {
			want = 0.5 * (c[n/2-1] + c[n/2])
		}
		if got := o.Median(); got != want {
			t.Errorf("n=%d: median = %v, want exact %v", n, got, want)
		}
		if o.MedianEstimated() {
			t.Errorf("n=%d: flagged estimated below the cap", n)
		}
	}
}

// TestOnlineStatsMedianSpillsToP2: past the cap the buffer is released,
// the estimate takes over, and the cell is flagged.
func TestOnlineStatsMedianSpillsToP2(t *testing.T) {
	var o OnlineStats
	for i := 0; i < exactMedianCap+1; i++ {
		o.Add(float64(i))
	}
	if !o.MedianEstimated() {
		t.Error("past the cap the median must be flagged estimated")
	}
	if o.exact != nil {
		t.Error("exact buffer not released after spilling")
	}
	if o.Median() != o.med.value() {
		t.Errorf("spilled median = %v, want the P² value %v", o.Median(), o.med.value())
	}
}

// TestP2QuantileTracksExactMedian is the property test: across random
// streams of varying size and distribution shape, the P² estimate must
// stay within a tolerance band of the exact median, scaled to the
// sample's interquartile range (the natural resolution of a five-marker
// quantile sketch).
func TestP2QuantileTracksExactMedian(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64()*5 + 100 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		// Overlapping modes: P² has no useful bound when the median falls
		// in a zero-density gap (its markers interpolate across the gap),
		// so the bimodal case keeps density at the median.
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return r.NormFloat64() - 2
			}
			return r.NormFloat64() + 2
		}},
	}
	for _, shape := range shapes {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			for _, n := range []int{100, 500, 2000} {
				est := newP2(0.5)
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = shape.gen(rng)
					est.add(xs[i])
				}
				sort.Float64s(xs)
				exact := 0.5 * (xs[(n-1)/2] + xs[n/2])
				iqr := xs[(3*n)/4] - xs[n/4]
				tol := 0.25 * iqr
				if d := math.Abs(est.value() - exact); d > tol {
					t.Errorf("%s seed=%d n=%d: |P² − exact| = %v > %v (est %v, exact %v)",
						shape.name, seed, n, d, tol, est.value(), exact)
				}
			}
		}
	}
}

func TestJSONFloatNaN(t *testing.T) {
	if b, err := JSONFloat(math.NaN()).MarshalJSON(); err != nil || string(b) != "null" {
		t.Errorf("NaN -> %s, %v; want null", b, err)
	}
	if b, err := JSONFloat(1.5).MarshalJSON(); err != nil || string(b) != "1.5" {
		t.Errorf("1.5 -> %s, %v", b, err)
	}
	if b, err := JSONFloat(math.Inf(1)).MarshalJSON(); err != nil || string(b) != "null" {
		t.Errorf("+Inf -> %s, %v; want null", b, err)
	}
}
