package campaign

import (
	"fmt"
	"io"
	"net/http"
)

// ManagerMetrics is the manager's observability snapshot.
type ManagerMetrics struct {
	// States counts campaigns by lifecycle state (all known states
	// present, zero-filled, so scrape output is stable).
	States map[string]int
	// TrialsTotal is the number of freshly executed trials recorded since
	// this manager was created (cached/resumed trials don't count).
	TrialsTotal int64
	// StoreBytes is the summed on-disk size of every open campaign store
	// (lazily recovered stores that were never opened don't count — the
	// gauge tracks live write load, not archive size).
	StoreBytes int64
}

// Metrics snapshots campaign counts and the trial counter. It never
// opens lazily recovered stores — state and progress come from the
// in-memory registry.
func (m *Manager) Metrics() ManagerMetrics {
	states := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateFailed: 0, StateCancelled: 0, StateInterrupted: 0,
	}
	for _, s := range m.List() {
		states[s.State]++
	}
	return ManagerMetrics{
		States:      states,
		TrialsTotal: m.trials.Load(),
		StoreBytes:  m.storeBytes(),
	}
}

// storeBytes sums the on-disk size of every open campaign store, in
// submission order.
func (m *Manager) storeBytes() int64 {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	var total int64
	for _, id := range ids {
		h, err := m.handleByID(id)
		if err != nil {
			continue
		}
		h.mu.Lock()
		if h.st != nil {
			total += h.st.Size()
		}
		h.mu.Unlock()
	}
	return total
}

// writeMetricsExtras appends every registered extra exposition writer.
func (m *Manager) writeMetricsExtras(w io.Writer) {
	m.mu.Lock()
	extras := append([]func(io.Writer){}, m.metricsExtras...)
	m.mu.Unlock()
	for _, f := range extras {
		f(w)
	}
}

// metricsHandler serves GET /metrics in Prometheus text exposition
// format: campaigns by state, monotonic trial counters, store size, and —
// when a dispatcher is attached — worker fleet and lease-table gauges,
// followed by any registered extra families (trial latency histograms,
// tune-search progress).
//
// The handler is deliberately stateless: every exported number is either
// a monotonic counter or an instantaneous gauge, so any number of
// concurrent scrapers see consistent values. Rates are the scraper's job
// (PromQL rate()); an earlier trials-per-second gauge computed against
// the previous scrape's state corrupted under concurrent scrapers and is
// gone.
func metricsHandler(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mm := m.Metrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP robustd_campaigns Campaigns in the registry by lifecycle state.\n")
		fmt.Fprintf(w, "# TYPE robustd_campaigns gauge\n")
		for _, state := range []string{
			StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateInterrupted,
		} {
			fmt.Fprintf(w, "robustd_campaigns{state=%q} %d\n", state, mm.States[state])
		}
		fmt.Fprintf(w, "# HELP robustd_trials_completed_total Freshly executed trials recorded since daemon start.\n")
		fmt.Fprintf(w, "# TYPE robustd_trials_completed_total counter\n")
		fmt.Fprintf(w, "robustd_trials_completed_total %d\n", mm.TrialsTotal)
		fmt.Fprintf(w, "# HELP robustd_store_bytes On-disk bytes across open campaign stores.\n")
		fmt.Fprintf(w, "# TYPE robustd_store_bytes gauge\n")
		fmt.Fprintf(w, "robustd_store_bytes %d\n", mm.StoreBytes)

		d := m.Dispatcher()
		fmt.Fprintf(w, "# HELP robustd_dispatch_enabled Whether distributed trial execution is enabled.\n")
		fmt.Fprintf(w, "# TYPE robustd_dispatch_enabled gauge\n")
		if d == nil {
			fmt.Fprintf(w, "robustd_dispatch_enabled 0\n")
		} else {
			fmt.Fprintf(w, "robustd_dispatch_enabled 1\n")
			ds := d.Stats()
			fmt.Fprintf(w, "# HELP robustd_workers Robustworkers by liveness (active = leased or reported within two lease TTLs).\n")
			fmt.Fprintf(w, "# TYPE robustd_workers gauge\n")
			fmt.Fprintf(w, "robustd_workers{kind=\"registered\"} %d\n", ds.WorkersRegistered)
			fmt.Fprintf(w, "robustd_workers{kind=\"active\"} %d\n", ds.WorkersActive)
			fmt.Fprintf(w, "robustd_workers{kind=\"expected\"} %d\n", ds.WorkersExpected)
			fmt.Fprintf(w, "# HELP robustd_leases_outstanding Shard leases currently held by workers.\n")
			fmt.Fprintf(w, "# TYPE robustd_leases_outstanding gauge\n")
			fmt.Fprintf(w, "robustd_leases_outstanding %d\n", ds.ShardsLeased)
			fmt.Fprintf(w, "# HELP robustd_oldest_lease_age_seconds Age of the oldest outstanding shard lease (0 when none).\n")
			fmt.Fprintf(w, "# TYPE robustd_oldest_lease_age_seconds gauge\n")
			fmt.Fprintf(w, "robustd_oldest_lease_age_seconds %g\n", ds.OldestLeaseAgeSeconds)
			fmt.Fprintf(w, "# HELP robustd_shards Shards of actively dispatched campaigns by state.\n")
			fmt.Fprintf(w, "# TYPE robustd_shards gauge\n")
			fmt.Fprintf(w, "robustd_shards{state=\"pending\"} %d\n", ds.ShardsPending)
			fmt.Fprintf(w, "robustd_shards{state=\"leased\"} %d\n", ds.ShardsLeased)
			fmt.Fprintf(w, "robustd_shards{state=\"done\"} %d\n", ds.ShardsDone)
			fmt.Fprintf(w, "# HELP robustd_dispatch_jobs Campaigns currently dispatched to the fleet.\n")
			fmt.Fprintf(w, "# TYPE robustd_dispatch_jobs gauge\n")
			fmt.Fprintf(w, "robustd_dispatch_jobs %d\n", ds.Jobs)
			fmt.Fprintf(w, "# HELP robustd_dispatch_rejected_results_total Worker results dropped by grid bounds or seed/rate verification.\n")
			fmt.Fprintf(w, "# TYPE robustd_dispatch_rejected_results_total counter\n")
			fmt.Fprintf(w, "robustd_dispatch_rejected_results_total %d\n", ds.RejectedResults)
		}
		m.writeMetricsExtras(w)
	}
}
