package campaign

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ManagerMetrics is the manager's observability snapshot.
type ManagerMetrics struct {
	// States counts campaigns by lifecycle state (all known states
	// present, zero-filled, so scrape output is stable).
	States map[string]int
	// TrialsTotal is the number of freshly executed trials recorded since
	// this manager was created (cached/resumed trials don't count).
	TrialsTotal int64
}

// Metrics snapshots campaign counts and the trial counter. It never
// opens lazily recovered stores — state and progress come from the
// in-memory registry.
func (m *Manager) Metrics() ManagerMetrics {
	states := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateFailed: 0, StateCancelled: 0, StateInterrupted: 0,
	}
	for _, s := range m.List() {
		states[s.State]++
	}
	return ManagerMetrics{States: states, TrialsTotal: m.trials.Load()}
}

// metricsHandler serves GET /metrics in Prometheus text exposition
// format: campaigns by state, trial throughput, and — when a dispatcher
// is attached — worker fleet and lease-table gauges. The trials-per-
// second gauge averages over the interval since the previous scrape, so
// any scraper (or a bare curl loop) sees a meaningful rate without
// needing rate() math.
func metricsHandler(m *Manager) http.HandlerFunc {
	var mu sync.Mutex
	var lastScrape time.Time
	var lastTrials int64
	return func(w http.ResponseWriter, r *http.Request) {
		mm := m.Metrics()
		now := time.Now()
		mu.Lock()
		rate := 0.0
		if !lastScrape.IsZero() {
			if dt := now.Sub(lastScrape).Seconds(); dt > 0 {
				rate = float64(mm.TrialsTotal-lastTrials) / dt
			}
		}
		lastScrape, lastTrials = now, mm.TrialsTotal
		mu.Unlock()

		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP robustd_campaigns Campaigns in the registry by lifecycle state.\n")
		fmt.Fprintf(w, "# TYPE robustd_campaigns gauge\n")
		for _, state := range []string{
			StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateInterrupted,
		} {
			fmt.Fprintf(w, "robustd_campaigns{state=%q} %d\n", state, mm.States[state])
		}
		fmt.Fprintf(w, "# HELP robustd_trials_completed_total Freshly executed trials recorded since daemon start.\n")
		fmt.Fprintf(w, "# TYPE robustd_trials_completed_total counter\n")
		fmt.Fprintf(w, "robustd_trials_completed_total %d\n", mm.TrialsTotal)
		fmt.Fprintf(w, "# HELP robustd_trials_per_second Trial completion rate averaged since the previous scrape.\n")
		fmt.Fprintf(w, "# TYPE robustd_trials_per_second gauge\n")
		fmt.Fprintf(w, "robustd_trials_per_second %g\n", rate)

		d := m.Dispatcher()
		fmt.Fprintf(w, "# HELP robustd_dispatch_enabled Whether distributed trial execution is enabled.\n")
		fmt.Fprintf(w, "# TYPE robustd_dispatch_enabled gauge\n")
		if d == nil {
			fmt.Fprintf(w, "robustd_dispatch_enabled 0\n")
			return
		}
		fmt.Fprintf(w, "robustd_dispatch_enabled 1\n")
		ds := d.Stats()
		fmt.Fprintf(w, "# HELP robustd_workers Robustworkers by liveness (active = leased or reported within two lease TTLs).\n")
		fmt.Fprintf(w, "# TYPE robustd_workers gauge\n")
		fmt.Fprintf(w, "robustd_workers{kind=\"registered\"} %d\n", ds.WorkersRegistered)
		fmt.Fprintf(w, "robustd_workers{kind=\"active\"} %d\n", ds.WorkersActive)
		fmt.Fprintf(w, "robustd_workers{kind=\"expected\"} %d\n", ds.WorkersExpected)
		fmt.Fprintf(w, "# HELP robustd_leases_outstanding Shard leases currently held by workers.\n")
		fmt.Fprintf(w, "# TYPE robustd_leases_outstanding gauge\n")
		fmt.Fprintf(w, "robustd_leases_outstanding %d\n", ds.ShardsLeased)
		fmt.Fprintf(w, "# HELP robustd_shards Shards of actively dispatched campaigns by state.\n")
		fmt.Fprintf(w, "# TYPE robustd_shards gauge\n")
		fmt.Fprintf(w, "robustd_shards{state=\"pending\"} %d\n", ds.ShardsPending)
		fmt.Fprintf(w, "robustd_shards{state=\"leased\"} %d\n", ds.ShardsLeased)
		fmt.Fprintf(w, "robustd_shards{state=\"done\"} %d\n", ds.ShardsDone)
		fmt.Fprintf(w, "# HELP robustd_dispatch_jobs Campaigns currently dispatched to the fleet.\n")
		fmt.Fprintf(w, "# TYPE robustd_dispatch_jobs gauge\n")
		fmt.Fprintf(w, "robustd_dispatch_jobs %d\n", ds.Jobs)
		fmt.Fprintf(w, "# HELP robustd_dispatch_rejected_results_total Worker results dropped by grid bounds or seed/rate verification.\n")
		fmt.Fprintf(w, "# TYPE robustd_dispatch_rejected_results_total counter\n")
		fmt.Fprintf(w, "robustd_dispatch_rejected_results_total %d\n", ds.RejectedResults)
	}
}
