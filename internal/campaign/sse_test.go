package campaign

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readSSE parses frames off the stream until an `event: done` frame, the
// stream closes, or the deadline passes. Comment lines (heartbeats) are
// returned as frames with event "comment".
func readSSE(t *testing.T, body *bufio.Scanner, deadline time.Duration) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	timer := time.AfterFunc(deadline, func() {
		t.Errorf("SSE stream did not finish within %s", deadline)
	})
	defer timer.Stop()
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				if cur.event == "done" {
					return frames
				}
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, ": "):
			frames = append(frames, sseFrame{event: "comment", data: strings.TrimPrefix(line, ": ")})
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// tightenSSE shortens the stream cadence for the duration of one test.
// Tests using it must not run in parallel.
func tightenSSE(t *testing.T, interval, heartbeat time.Duration) {
	t.Helper()
	oldI, oldH := sseInterval, sseHeartbeat
	sseInterval, sseHeartbeat = interval, heartbeat
	t.Cleanup(func() { sseInterval, sseHeartbeat = oldI, oldH })
}

// TestSSEStreamDeliversProgressAndDone is the streaming acceptance test:
// a client connected mid-campaign sees at least one progress delta and
// exactly one terminal done event carrying the final status — and the
// results table is byte-identical to a campaign nobody streamed.
func TestSSEStreamDeliversProgressAndDone(t *testing.T) {
	tightenSSE(t, 2*time.Millisecond, time.Minute)
	srv, _ := newTestServer(t, 2)

	// Streamed campaign: the robust-sort workload at a large iteration
	// budget, so trials take long enough for progress to move while the
	// stream is attached.
	spec := `{"custom":{"workload":"sort/robust","rates":[0.005,0.01],"iters":30000},"trials":12,"seed":11,"workers":1}`
	var resp map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns", spec, http.StatusAccepted, &resp)
	id := resp["id"]

	r, err := http.Get(srv.URL + "/campaigns/" + id + "/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := readSSE(t, bufio.NewScanner(r.Body), 60*time.Second)

	var progress, done int
	var final Status
	for _, f := range frames {
		switch f.event {
		case "progress":
			progress++
		case "done":
			done++
			if err := json.Unmarshal([]byte(f.data), &final); err != nil {
				t.Fatalf("done frame does not parse: %v\n%s", err, f.data)
			}
		}
	}
	// The immediate connect snapshot plus at least one mid-run delta.
	if progress < 2 {
		t.Errorf("saw %d progress events, want >= 2 (connect snapshot + delta)", progress)
	}
	if done != 1 {
		t.Fatalf("saw %d done events, want exactly 1", done)
	}
	if final.State != StateDone || final.Progress.Done != final.Progress.Total || final.Progress.Total != 24 {
		t.Errorf("final status = %s %+v, want done 24/24", final.State, final.Progress)
	}

	// Control campaign: identical spec, never streamed. Results must not
	// depend on whether anyone watched.
	doJSON(t, "POST", srv.URL+"/campaigns", spec, http.StatusAccepted, &resp)
	waitState(t, srv.URL, resp["id"], StateDone)
	_, streamed := fetch(t, srv.URL+"/campaigns/"+id+"/results?format=csv")
	_, control := fetch(t, srv.URL+"/campaigns/"+resp["id"]+"/results?format=csv")
	if streamed != control {
		t.Errorf("streamed campaign's results differ from unstreamed control:\n--- streamed ---\n%s--- control ---\n%s", streamed, control)
	}
}

// TestSSEHeartbeatWhileQueued: a stream over a campaign that is making no
// progress (queued behind another) emits heartbeat comments instead of
// going silent, and a terminal campaign gets an immediate snapshot+done.
func TestSSEHeartbeatWhileQueued(t *testing.T) {
	tightenSSE(t, 2*time.Millisecond, 6*time.Millisecond)
	srv, _ := newTestServer(t, 1)

	var first, queued map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns",
		`{"custom":{"workload":"sort/robust","rates":[0.01],"iters":30000},"trials":20,"seed":3,"workers":1}`,
		http.StatusAccepted, &first)
	doJSON(t, "POST", srv.URL+"/campaigns",
		`{"custom":{"workload":"sort/base","rates":[0.01]},"trials":1,"seed":4}`,
		http.StatusAccepted, &queued)

	r, err := http.Get(srv.URL + "/campaigns/" + queued["id"] + "/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	frames := readSSE(t, bufio.NewScanner(r.Body), 60*time.Second)
	var beats, done int
	for _, f := range frames {
		switch f.event {
		case "comment":
			if f.data == "heartbeat" {
				beats++
			}
		case "done":
			done++
		}
	}
	if beats == 0 {
		t.Error("no heartbeats while queued behind a long campaign")
	}
	if done != 1 {
		t.Errorf("saw %d done events, want 1", done)
	}

	// Reconnecting after the end replays snapshot + done immediately.
	waitState(t, srv.URL, first["id"], StateDone)
	r2, err := http.Get(srv.URL + "/campaigns/" + first["id"] + "/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	replay := readSSE(t, bufio.NewScanner(r2.Body), 10*time.Second)
	if len(replay) != 2 || replay[0].event != "progress" || replay[1].event != "done" {
		t.Errorf("terminal reconnect frames = %+v, want [progress done]", replay)
	}
}

func TestSSEUnknownCampaign(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	r, err := http.Get(srv.URL + "/campaigns/c9999/status/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("stream for unknown campaign = %d, want 404", r.StatusCode)
	}
}
