package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"robustify/internal/fsutil"
)

// metaFile is the per-campaign lifecycle record, written beside
// spec.json/trials.jsonl at every state transition. Together the three
// files make a campaign directory self-describing: spec identifies the
// grid, trials.jsonl holds the durable results, and meta.json records
// where in its lifecycle the campaign was when the daemon last touched
// it — which is what lets a restarted daemon rebuild its registry.
const metaFile = "meta.json"

// Meta is the persisted lifecycle state of one campaign. Done/Total
// mirror the store's progress at the last state transition; for terminal
// states they are exact, which lets recovery serve a terminal campaign's
// progress without opening (and replaying) its store at boot.
type Meta struct {
	ID       string     `json:"id"`
	Name     string     `json:"name"`
	State    string     `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Done     int        `json:"done,omitempty"`
	Total    int        `json:"total,omitempty"`
}

// writeMeta atomically replaces dir's meta.json (temp + fsync + rename
// via fsutil), so a crash mid-update leaves either the old record or the
// new one, never a torn file. The Created/Started/Finished timestamps in
// it are deliberate: meta.json is a lifecycle record, not part of resume
// identity — trials.jsonl and spec.json carry that.
func writeMeta(dir string, m Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(dir, metaFile), append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: write meta: %w", err)
	}
	return nil
}

// readMeta loads dir's meta.json; ok is false when none exists (a store
// written by a pre-registry daemon).
func readMeta(dir string) (m Meta, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return Meta{}, false, nil
	}
	if err != nil {
		return Meta{}, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, false, fmt.Errorf("campaign: corrupt %s: %w", metaFile, err)
	}
	return m, true, nil
}
