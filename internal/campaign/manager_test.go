package campaign

import (
	"testing"
	"time"
)

func quickSpec(rate float64, seed uint64, trials int) Spec {
	return Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{rate}},
		Trials: trials, Seed: seed,
	}
}

func newManager(t *testing.T, root string, maxConcurrent int) *Manager {
	t.Helper()
	m, err := NewManager(root, maxConcurrent)
	if err != nil {
		t.Fatalf("NewManager(%s): %v", root, err)
	}
	return m
}

// TestManagerRestartDoesNotReuseStores pins the restart behavior: a new
// manager over an old data directory must never hand a fresh campaign a
// previous run's store, whose records would be served as cached trials
// for a different grid.
func TestManagerRestartDoesNotReuseStores(t *testing.T) {
	root := t.TempDir()
	m1 := newManager(t, root, 1)
	id1, err := m1.Submit(quickSpec(0.01, 1, 1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := m1.Wait(id1); err != nil {
		t.Fatalf("wait: %v", err)
	}
	m1.Close()

	m2 := newManager(t, root, 1)
	defer m2.Close()
	id2, err := m2.Submit(quickSpec(0.5, 99, 3))
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if id2 == id1 {
		t.Fatalf("restarted manager reused campaign id %s (and its store)", id1)
	}
	if err := m2.Wait(id2); err != nil {
		t.Fatalf("wait: %v", err)
	}
	st, err := m2.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.Done != 3 || st.Progress.Total != 3 {
		t.Errorf("new campaign progress = %+v, want 3/3 freshly executed trials", st.Progress)
	}
}

// TestManagerDataRootLock: two live managers on one data root would both
// classify the other's running campaigns as ownerless and race on the
// same stores, so the second must be refused until the first closes.
func TestManagerDataRootLock(t *testing.T) {
	root := t.TempDir()
	m1 := newManager(t, root, 1)
	if _, err := NewManager(root, 1); err == nil {
		t.Fatal("second manager on a held data root accepted")
	}
	m1.Close()
	m2, err := NewManager(root, 1)
	if err != nil {
		t.Fatalf("manager after clean close: %v", err)
	}
	m2.Close()
}

func TestManagerSubmitAfterClose(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	m.Close()
	if _, err := m.Submit(quickSpec(0.01, 1, 1)); err == nil {
		t.Error("submit after close accepted")
	}
}

// TestShutdownReportsFailedStoreClose pins the contract the
// error-durability audit tightened: Close is a store's last flush, and a
// Shutdown that drops its error would let the daemon exit claiming a
// clean shutdown — root flock released, meta trusted — over a store that
// may be missing records. A failed close must surface as unclean.
func TestShutdownReportsFailedStoreClose(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	id, err := m.Submit(quickSpec(0.01, 1, 1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatalf("wait: %v", err)
	}
	m.mu.Lock()
	h := m.byID[id]
	m.mu.Unlock()
	// Sabotage: yank the descriptor out from under the store, so the
	// close Shutdown performs fails the way a full disk or dying mount
	// would.
	h.mu.Lock()
	h.st.f.Close()
	h.mu.Unlock()
	if m.Shutdown(5 * time.Second) {
		t.Fatal("Shutdown reported a clean shutdown despite a failed store close")
	}
}
