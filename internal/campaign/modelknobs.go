package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"robustify/internal/fpu/faultmodel"
)

// modelKnobPrefix marks CustomSweep.Params keys that parameterize the
// campaign's fault model instead of the workload. The prefix keeps the
// two namespaces from colliding: workload knob names never start with
// "fm_", so splitModelParams can partition a params map without a
// registry lookup.
const modelKnobPrefix = "fm_"

// ModelKnobs declares the tunable parameters of one fault-model family,
// in the same Knob shape workloads declare, so the tune subsystem can put
// fault-model parameters (burst length, exponent-weight ratio) on its
// search grid next to algorithm knobs. Families without parameters —
// default and memory — declare none.
func ModelKnobs(family string) []Knob {
	switch family {
	case faultmodel.Stratified:
		return []Knob{
			{
				Name: "fm_exp_weight", Desc: "stratified model: exponent-class flip weight",
				Default: 1, Min: 0, Max: 1e6,
				Grid: []float64{0.25, 0.5, 1, 2, 4},
			},
			{
				Name: "fm_mant_weight", Desc: "stratified model: mantissa-class flip weight",
				Default: 1, Min: 0, Max: 1e6,
				Grid: []float64{0.25, 0.5, 1, 2, 4},
			},
			{
				Name: "fm_sign_weight", Desc: "stratified model: sign-bit flip weight",
				Default: 1, Min: 0, Max: 1e6,
				Grid: []float64{0, 0.25, 1, 4},
			},
		}
	case faultmodel.Burst:
		return []Knob{
			{
				Name: "fm_burst_len", Desc: "burst model: mean low-voltage window length in FLOPs",
				Default: 64, Min: 0, Max: 1e6,
				Grid: []float64{16, 64, 256, 1024},
			},
			{
				Name: "fm_burst_prob", Desc: "burst model: in-window corruption probability (the voltage curve's saturated MaxRate by default)",
				Default: 0.5, Min: 0, Max: 1,
				Grid: []float64{0.125, 0.25, 0.5, 1},
			},
		}
	case faultmodel.Default, faultmodel.Memory:
		return nil // parameterless families: rate and seed come from the sweep
	}
	return nil
}

// splitModelParams partitions a params map into workload knobs and
// fault-model parameters by the "fm_" prefix. Nil maps come back nil.
func splitModelParams(params map[string]float64) (workload, model map[string]float64) {
	for k, v := range params {
		if strings.HasPrefix(k, modelKnobPrefix) {
			if model == nil {
				model = make(map[string]float64)
			}
			model[k] = v
		} else {
			if workload == nil {
				workload = make(map[string]float64)
			}
			workload[k] = v
		}
	}
	return workload, model
}

// applyModelParams overlays fm_* parameter overrides onto a fault-model
// spec, returning the derived spec the trial units actually run. The base
// spec is never mutated — specs are resume identities, so the overrides
// stay in Params and the derivation happens at compile time. Every
// override must name a knob the selected family declares; fm_* keys with
// no model (or the wrong family) are rejected, mirroring how unknown
// workload knobs fail at submit time.
func applyModelParams(base *faultmodel.Spec, overrides map[string]float64) (*faultmodel.Spec, error) {
	if len(overrides) == 0 {
		return base, nil
	}
	family := base.ModelName()
	knobs := ModelKnobs(family)
	// Deterministic error selection: report the smallest offending key.
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	derived := &faultmodel.Spec{}
	if base != nil {
		*derived = *base
	} else {
		derived.Name = family
	}
	for _, name := range keys {
		v := overrides[name]
		var k Knob
		found := false
		for _, mk := range knobs {
			if mk.Name == name {
				k, found = mk, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("campaign: fault model %q has no parameter %q (declared: %v)",
				family, name, knobNamesOf(knobs))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("campaign: fault model parameter %q: non-finite value %v", name, v)
		}
		if (k.Min != 0 || k.Max != 0) && (v < k.Min || v > k.Max) {
			return nil, fmt.Errorf("campaign: fault model parameter %q: %v outside [%v, %v]", name, v, k.Min, k.Max)
		}
		switch name {
		case "fm_exp_weight":
			derived.ExpWeight = ptr(v)
		case "fm_mant_weight":
			derived.MantWeight = ptr(v)
		case "fm_sign_weight":
			derived.SignWeight = ptr(v)
		case "fm_burst_len":
			derived.BurstLen = v
		case "fm_burst_prob":
			derived.BurstProb = v
		}
	}
	if err := derived.Validate(); err != nil {
		return nil, err
	}
	return derived, nil
}

// knobNamesOf lists knob names for error messages.
func knobNamesOf(knobs []Knob) []string {
	names := make([]string, len(knobs))
	for i, k := range knobs {
		names[i] = k.Name
	}
	return names
}

// ptr boxes a float for the stratified spec's optional weight fields.
func ptr(v float64) *float64 { return &v }
