package campaign

import (
	"bytes"
	"context"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"

	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
)

// renderResultTable renders a result table to text and CSV strings.
func renderResultTable(t *testing.T, table *harness.Table) (string, string) {
	t.Helper()
	var text, csv bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatalf("render: %v", err)
	}
	if err := table.CSV(&csv); err != nil {
		t.Fatalf("csv: %v", err)
	}
	return text.String(), csv.String()
}

// TestDefaultModelWorkloadPins pins representative workloads' trial values
// under the default model to the exact bits they produced before the
// FaultModel refactor (and before the solver memory hooks). Any drift here
// means the pluggable-model plumbing or the CorruptSlice no-op contract
// perturbed the pinned fault stream.
func TestDefaultModelWorkloadPins(t *testing.T) {
	pins := map[string]uint64{
		"leastsq/sgd": 0x3f983ad7979af108,
		"leastsq/cg":  0x3fc9baa7216a9522,
		"lp/apsp":     0x3f79c76330fede9e,
		"svm/robust":  0x3fee147ae147ae14,
	}
	for wl, want := range pins {
		spec := Spec{
			Custom: &CustomSweep{Workload: wl, Rates: []float64{0.05}},
			Trials: 1, Seed: 777,
		}
		camp, err := Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		u := camp.Plan.Units[0]
		if got := math.Float64bits(u.Fn(0.05, 777)); got != want {
			t.Errorf("%s: trial value 0x%016x, want pinned 0x%016x", wl, got, want)
		}
	}
}

// TestFaultModelCampaignsDeterministic: every model family run through the
// campaign engine twice from fresh stores produces byte-identical tables.
func TestFaultModelCampaignsDeterministic(t *testing.T) {
	models := map[string]*faultmodel.Spec{
		"default":    nil,
		"stratified": {Name: faultmodel.Stratified, SignWeight: ptr(4)},
		"burst":      {Name: faultmodel.Burst, BurstLen: 32},
		"memory":     {Name: faultmodel.Memory},
	}
	for name, fm := range models {
		spec := Spec{
			Custom:     &CustomSweep{Workload: "leastsq/sgd", Rates: []float64{0.02, 0.1}, Iters: 300},
			FaultModel: fm,
			Trials:     2, Seed: 41,
		}
		text1, csv1 := runAll(t, spec)
		text2, csv2 := runAll(t, spec)
		if text1 != text2 || csv1 != csv2 {
			t.Errorf("%s: campaign not byte-deterministic across runs", name)
		}
		if text1 == "" || csv1 == "" {
			t.Errorf("%s: empty output", name)
		}
	}
}

// TestFaultModelsShapeResults: each non-default family must actually change
// trial outcomes relative to the default model at the same rate and seed —
// in particular the memory model, which only acts through the solvers'
// CorruptSlice hooks.
func TestFaultModelsShapeResults(t *testing.T) {
	run := func(fm *faultmodel.Spec) string {
		_, csv := runAll(t, Spec{
			Custom:     &CustomSweep{Workload: "leastsq/sgd", Rates: []float64{0.05}, Iters: 300},
			FaultModel: fm,
			Trials:     3, Seed: 19,
		})
		return csv
	}
	def := run(nil)
	for _, fm := range []*faultmodel.Spec{
		{Name: faultmodel.Stratified, SignWeight: ptr(8), ExpWeight: ptr(0)},
		{Name: faultmodel.Burst, BurstLen: 16, BurstProb: 1},
		{Name: faultmodel.Memory},
	} {
		if got := run(fm); got == def {
			t.Errorf("%s: results identical to the default model; the model is not live", fm.Name)
		}
	}
}

// TestSpecFaultModelRoundTrip: the fault_model field survives ParseSpec,
// unknown model names and cross-family parameters are rejected at Validate,
// and unknown fields inside fault_model are rejected at parse time.
func TestSpecFaultModelRoundTrip(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"custom": {"workload": "leastsq/sgd", "rates": [0.05]},
		"fault_model": {"name": "burst", "burst_len": 128, "burst_prob": 0.25},
		"trials": 2, "seed": 7}`))
	if err != nil {
		t.Fatalf("valid fault-model spec rejected: %v", err)
	}
	if spec.FaultModel == nil || spec.FaultModel.Name != "burst" ||
		spec.FaultModel.BurstLen != 128 || spec.FaultModel.BurstProb != 0.25 {
		t.Errorf("parsed fault model = %+v", spec.FaultModel)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}

	if _, err := ParseSpec([]byte(`{"figure":"6.1","fault_model":{"name":"burst","burst_leng":9}}`)); err == nil {
		t.Error("typo field inside fault_model accepted")
	}
	bad := Spec{Figure: "6.1", FaultModel: &faultmodel.Spec{Name: "gamma-ray"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "gamma-ray") {
		t.Errorf("unknown model error = %v, want it to name the model", err)
	}
	cross := Spec{Figure: "6.1", FaultModel: &faultmodel.Spec{Name: "memory", BurstLen: 8}}
	if err := cross.Validate(); err == nil {
		t.Error("cross-family parameter accepted")
	}
}

// TestFaultModelResumeIdentity: the fault model is part of a campaign's
// resume identity — differing models must not be resume-compatible, while
// a nil model keeps compatibility with specs written before the field
// existed (omitempty keeps the serialized key set unchanged).
func TestFaultModelResumeIdentity(t *testing.T) {
	base := Spec{Custom: &CustomSweep{Workload: "leastsq/sgd", Rates: []float64{0.05}}, Seed: 3}
	burst := base
	burst.FaultModel = &faultmodel.Spec{Name: faultmodel.Burst}
	if ResumeCompatible(base, burst) {
		t.Error("specs with different fault models must not be resume-compatible")
	}
	tuned := burst
	tuned.FaultModel = &faultmodel.Spec{Name: faultmodel.Burst, BurstLen: 256}
	if ResumeCompatible(burst, tuned) {
		t.Error("specs with different model parameters must not be resume-compatible")
	}
	renamed := burst
	renamed.Name = "other"
	renamed.Workers = 9
	if !ResumeCompatible(burst, renamed) {
		t.Error("name/workers must not affect resume identity")
	}
	if !ResumeCompatible(base, base) {
		t.Error("nil fault model must be self-compatible")
	}
}

// TestFaultModelResumeDeterminism is satellite 3's resume guarantee under a
// non-default model: a burst-model campaign killed mid-run and resumed from
// its store finishes byte-identical to an uninterrupted run.
func TestFaultModelResumeDeterminism(t *testing.T) {
	spec := Spec{
		Custom:     &CustomSweep{Workload: "leastsq/sgd", Rates: []float64{0.02, 0.05, 0.1}, Iters: 6000},
		FaultModel: &faultmodel.Spec{Name: faultmodel.Burst, BurstLen: 32},
		Trials:     3, Seed: 23, Workers: 2,
	}
	wantText, wantCSV := runAll(t, spec)

	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	exec := NewExecution(camp, st)
	threshold := camp.Total() / 3
	go func() {
		for exec.Progress().Done < threshold {
			runtime.Gosched()
		}
		cancel()
	}()
	if err := exec.Run(ctx); err == nil {
		t.Fatal("interrupted run returned nil error")
	}
	st.Close()
	partial, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer partial.Close()
	if done := partial.Count(); done == 0 || done >= camp.Total() {
		t.Fatalf("interrupt landed at %d/%d trials; expected a strict subset", done, camp.Total())
	}
	resumed := NewExecution(camp, partial)
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	gotText, gotCSV := renderResultTable(t, resumed.Table())
	if gotText != wantText {
		t.Errorf("resumed burst-model table differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			wantText, gotText)
	}
	if gotCSV != wantCSV {
		t.Errorf("resumed burst-model CSV differs from uninterrupted run")
	}
}

// TestModelKnobParams: fm_-prefixed params parameterize the model through
// CustomSweep.Params — riding inside the spec's resume identity and the
// tuner's grid — and are validated against the selected family.
func TestModelKnobParams(t *testing.T) {
	run := func(fm *faultmodel.Spec, params map[string]float64) (float64, error) {
		spec := Spec{
			Custom:     &CustomSweep{Workload: "leastsq/sgd", Rates: []float64{0.05}, Params: params},
			FaultModel: fm,
			Trials:     1, Seed: 19,
		}
		if err := spec.Validate(); err != nil {
			return 0, err
		}
		camp, err := Compile(spec)
		if err != nil {
			return 0, err
		}
		u := camp.Plan.Units[0]
		return u.Fn(u.Sweep.Rates[0], u.Sweep.TrialSeed(0, 0)), nil
	}
	burst := &faultmodel.Spec{Name: faultmodel.Burst}
	base, err := run(burst, nil)
	if err != nil {
		t.Fatal(err)
	}
	long, err := run(burst, map[string]float64{"fm_burst_len": 1024, "fm_burst_prob": 1})
	if err != nil {
		t.Fatal(err)
	}
	if base == long {
		t.Error("fm_burst_len/fm_burst_prob had no effect on the trial value")
	}
	again, err := run(burst, map[string]float64{"fm_burst_len": 1024, "fm_burst_prob": 1})
	if err != nil {
		t.Fatal(err)
	}
	if again != long {
		t.Errorf("model params not reproducible: %v vs %v", again, long)
	}
	// Spelled-out spec parameters and fm_ overrides must agree: they are
	// the same knob through two doors.
	direct, err := run(&faultmodel.Spec{Name: faultmodel.Burst, BurstLen: 1024, BurstProb: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct != long {
		t.Errorf("fm_ override (%v) disagrees with explicit spec parameters (%v)", long, direct)
	}

	if _, err := run(burst, map[string]float64{"fm_nope": 1}); err == nil {
		t.Error("unknown fm_ knob accepted")
	}
	if _, err := run(nil, map[string]float64{"fm_burst_len": 64}); err == nil {
		t.Error("burst knob accepted under the default model")
	}
	if _, err := run(&faultmodel.Spec{Name: faultmodel.Stratified},
		map[string]float64{"fm_exp_weight": 2}); err != nil {
		t.Errorf("stratified weight knob rejected: %v", err)
	}
}

// TestModelKnobDeclarations holds ModelKnobs to the same registry contract
// as workload knobs: ascending grids containing the default, within bounds,
// names fm_-prefixed, and nothing declared for parameterless families.
func TestModelKnobDeclarations(t *testing.T) {
	for _, family := range faultmodel.Names() {
		knobs := ModelKnobs(family)
		if family == faultmodel.Default || family == faultmodel.Memory {
			if len(knobs) != 0 {
				t.Errorf("%s: parameterless family declares knobs %v", family, knobs)
			}
			continue
		}
		if len(knobs) == 0 {
			t.Errorf("%s: parameterized family declares no knobs", family)
		}
		for _, k := range knobs {
			if !strings.HasPrefix(k.Name, modelKnobPrefix) {
				t.Errorf("%s/%s: model knob without %q prefix", family, k.Name, modelKnobPrefix)
			}
			if len(k.Grid) == 0 || !sort.Float64sAreSorted(k.Grid) {
				t.Errorf("%s/%s: bad grid %v", family, k.Name, k.Grid)
			}
			hasDefault := false
			for _, v := range k.Grid {
				if v == k.Default {
					hasDefault = true
				}
				if v < k.Min || v > k.Max {
					t.Errorf("%s/%s: grid value %v outside [%v, %v]", family, k.Name, v, k.Min, k.Max)
				}
			}
			if !hasDefault {
				t.Errorf("%s/%s: default %v not in grid %v", family, k.Name, k.Default, k.Grid)
			}
		}
	}
}
