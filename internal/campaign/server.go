package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"

	"robustify/internal/dispatch"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
)

// NewServer wraps a Manager in the robustd HTTP API:
//
//	POST   /campaigns               submit a Spec (JSON body) -> {"id": ...}
//	GET    /campaigns               list campaigns with progress
//	GET    /campaigns/{id}          status with live per-cell statistics
//	GET    /campaigns/{id}/status/stream
//	                                live status as Server-Sent Events (see sseHandler)
//	GET    /campaigns/{id}/results  materialized table; ?format=text|csv|json
//	POST   /campaigns/{id}/cancel   stop; completed trials stay durable
//	POST   /campaigns/{id}/resume   reschedule a cancelled/failed/interrupted campaign
//	GET    /workloads               custom-sweep workload registry and the
//	                                selectable fault models with their fm_* knobs
//	GET    /healthz                 liveness
//	GET    /metrics                 Prometheus text: campaigns by state, trial
//	                                counters, store size, workers, leases
//	GET    /debug/events            recent lifecycle trace events (ring buffer)
//
// With a dispatch coordinator attached (robustd -workers-expected > 0)
// the worker lease protocol is served too:
//
//	POST   /workers/register        robustworker announces itself -> {worker, lease_ttl}
//	POST   /workers/lease           pull one shard lease (204 when no work)
//	POST   /workers/report          stream back a result batch / heartbeat / release
//	GET    /workers                 registered workers with liveness
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			HTTPError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := ParseSpec(body)
		if err != nil {
			HTTPError(w, http.StatusBadRequest, err)
			return
		}
		id, err := m.Submit(spec)
		if err != nil {
			HTTPError(w, http.StatusInternalServerError, err)
			return
		}
		WriteJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := m.Get(r.PathValue("id"))
		if err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		WriteJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /campaigns/{id}/status/stream", sseHandler(m))

	mux.HandleFunc("GET /campaigns/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		table, err := m.Table(r.PathValue("id"))
		if err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := table.Render(w); err != nil {
				log.Printf("campaign: render results for %s: %v", r.PathValue("id"), err)
			}
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			if err := table.CSV(w); err != nil {
				log.Printf("campaign: write csv results for %s: %v", r.PathValue("id"), err)
			}
		case "json":
			WriteJSON(w, http.StatusOK, tableJSON(table))
		default:
			HTTPError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want text, csv, or json)", format))
		}
	})

	mux.HandleFunc("POST /campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	})

	mux.HandleFunc("POST /campaigns/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Resume(r.PathValue("id")); err != nil {
			HTTPError(w, http.StatusConflict, err)
			return
		}
		WriteJSON(w, http.StatusAccepted, map[string]string{"status": "resuming"})
	})

	mux.HandleFunc("GET /workloads", func(w http.ResponseWriter, r *http.Request) {
		type wl struct {
			Name         string `json:"name"`
			Desc         string `json:"desc"`
			DefaultIters int    `json:"default_iters,omitempty"`
			Maximize     bool   `json:"maximize,omitempty"`
			Knobs        []Knob `json:"knobs,omitempty"`
		}
		type fm struct {
			Name string `json:"name"`
			// Knobs are the family's fm_*-prefixed parameters, settable via
			// CustomSweep.Params and searchable by the tune layer.
			Knobs []Knob `json:"knobs,omitempty"`
		}
		var wls []wl
		for _, item := range Workloads() {
			wls = append(wls, wl{
				Name: item.Name, Desc: item.Desc, DefaultIters: item.DefaultIters,
				Maximize: item.Maximize, Knobs: item.Knobs,
			})
		}
		var fms []fm
		for _, name := range faultmodel.Names() {
			fms = append(fms, fm{Name: name, Knobs: ModelKnobs(name)})
		}
		WriteJSON(w, http.StatusOK, map[string]any{
			"workloads":    wls,
			"fault_models": fms,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /metrics", metricsHandler(m))

	// The hub is nil-safe: without one the handler serves an empty list.
	mux.HandleFunc("GET /debug/events", m.Hub().EventsHandler())

	// dispatcher guards the worker endpoints: without a coordinator the
	// daemon runs every trial in-process and a worker knocking on the
	// door should learn why, not 404.
	dispatcher := func(w http.ResponseWriter) *dispatch.Coordinator {
		d := m.Dispatcher()
		if d == nil {
			HTTPError(w, http.StatusServiceUnavailable,
				fmt.Errorf("distributed execution disabled; start robustd with -workers-expected"))
		}
		return d
	}

	mux.HandleFunc("POST /workers/register", func(w http.ResponseWriter, r *http.Request) {
		d := dispatcher(w)
		if d == nil {
			return
		}
		var req dispatch.RegisterRequest
		if err := readJSON(r, &req); err != nil {
			HTTPError(w, http.StatusBadRequest, err)
			return
		}
		resp := d.Register(req)
		log.Printf("campaign: worker %s registered (%s)", resp.Worker, req.Name)
		WriteJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /workers/lease", func(w http.ResponseWriter, r *http.Request) {
		d := dispatcher(w)
		if d == nil {
			return
		}
		var req dispatch.LeaseRequest
		if err := readJSON(r, &req); err != nil {
			HTTPError(w, http.StatusBadRequest, err)
			return
		}
		lease, err := d.Lease(req)
		if err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		WriteJSON(w, http.StatusOK, lease)
	})

	mux.HandleFunc("POST /workers/report", func(w http.ResponseWriter, r *http.Request) {
		d := dispatcher(w)
		if d == nil {
			return
		}
		var req dispatch.ReportRequest
		if err := readJSON(r, &req); err != nil {
			HTTPError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := d.Report(req)
		if err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, r *http.Request) {
		d := dispatcher(w)
		if d == nil {
			return
		}
		WriteJSON(w, http.StatusOK, d.Workers())
	})

	return mux
}

// readJSON decodes a bounded JSON request body. Report bodies carry
// result batches, so the cap is generous (8 MiB) while still bounding a
// hostile request.
func readJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// WriteJSON writes an indented JSON response; shared by the campaign
// and tune HTTP APIs mounted on the same robustd mux.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is gone, so an encode failure (almost always the
	// client hanging up mid-body) can only be logged, not reported.
	if err := enc.Encode(v); err != nil {
		log.Printf("campaign: write response: %v", err)
	}
}

// HTTPError writes the API's uniform {"error": ...} response.
func HTTPError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, map[string]string{"error": err.Error()})
}

// tableJSON is the wire form of a results table.
func tableJSON(t *harness.Table) map[string]any {
	type point struct {
		Rate  float64   `json:"rate"`
		Value JSONFloat `json:"value"`
	}
	type series struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	}
	out := make([]series, 0, len(t.Series))
	for _, s := range t.Series {
		ps := make([]point, 0, len(s.Points))
		for _, p := range s.Points {
			ps = append(ps, point{Rate: p.Rate, Value: JSONFloat(p.Value)})
		}
		out = append(out, series{Name: s.Name, Points: ps})
	}
	return map[string]any{
		"title":  t.Title,
		"xlabel": t.XLabel,
		"ylabel": t.YLabel,
		"notes":  t.Notes,
		"series": out,
	}
}
