package campaign

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := readMeta(dir); err != nil || ok {
		t.Fatalf("empty dir readMeta = ok=%v err=%v, want absent", ok, err)
	}
	started := time.Date(2026, 7, 28, 10, 0, 0, 0, time.UTC)
	m := Meta{
		ID: "c0042", Name: "fig-6.1", State: StateFailed, Error: "boom",
		Created: started.Add(-time.Minute), Started: &started,
	}
	if err := writeMeta(dir, m); err != nil {
		t.Fatalf("writeMeta: %v", err)
	}
	got, ok, err := readMeta(dir)
	if err != nil || !ok {
		t.Fatalf("readMeta: ok=%v err=%v", ok, err)
	}
	if got.ID != m.ID || got.Name != m.Name || got.State != m.State || got.Error != m.Error {
		t.Errorf("meta round trip = %+v, want %+v", got, m)
	}
	if !got.Created.Equal(m.Created) || got.Started == nil || !got.Started.Equal(started) || got.Finished != nil {
		t.Errorf("meta times round trip = %+v", got)
	}
	// The atomic-replace temp file must not linger.
	if _, err := os.Stat(filepath.Join(dir, metaFile+".tmp")); !os.IsNotExist(err) {
		t.Errorf("temp meta file left behind (err=%v)", err)
	}
}

func TestMetaOverwriteIsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	if err := writeMeta(dir, Meta{ID: "c0001", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	if err := writeMeta(dir, Meta{ID: "c0001", State: StateDone}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readMeta(dir)
	if err != nil || !ok || got.State != StateDone {
		t.Fatalf("after overwrite: %+v ok=%v err=%v, want done", got, ok, err)
	}
}

func TestMetaCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readMeta(dir); err == nil {
		t.Error("corrupt meta.json read without error")
	}
}
