package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSubmitReclaimsHuskDir: a campaign directory a crash cut out of the
// latest Submit — no spec, no meta, empty store — must not shift id
// allocation: the next Submit reclaims it. (A crash husk is always the
// highest id, since Submit allocates ids in order.) Deterministic ids
// across kill-and-resume runs are what keep resumed tune traces
// byte-identical to uninterrupted ones.
func TestSubmitReclaimsHuskDir(t *testing.T) {
	root := t.TempDir()
	// Stray non-campaign data keeps its id out of circulation.
	stray := filepath.Join(root, "c0001")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stray, "trials.jsonl"), []byte("not ours\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A directory holding foreign files (no campaign artifacts at all)
	// is also somebody's data — Submit must neither claim it nor, on its
	// error paths, delete it.
	foreign := filepath.Join(root, "c0002")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(foreign, "notes.txt"), []byte("keep me\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The husk: directory plus empty store file, as a SIGKILL between
	// Store.Open and SaveSpec leaves behind.
	husk := filepath.Join(root, "c0003")
	if err := os.MkdirAll(husk, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(husk, "trials.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	// A non-manager-named directory — however empty — is not ours to
	// touch: recovery must leave it alone, not delete it as a husk.
	if err := os.MkdirAll(filepath.Join(root, "archive"), 0o755); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := os.Stat(filepath.Join(root, "archive")); err != nil {
		t.Errorf("operator directory disturbed by recovery: %v", err)
	}
	spec := Spec{Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.01}}, Trials: 1, Seed: 1}
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id != "c0003" {
		t.Errorf("first submit = %s, want the reclaimed c0003", id)
	}
	id2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "c0004" {
		t.Errorf("second submit = %s, want c0004", id2)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.ReadFile(filepath.Join(foreign, "notes.txt")); err != nil {
		t.Errorf("foreign file disturbed: %v", err)
	}
}
