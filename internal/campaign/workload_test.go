package campaign

import (
	"sort"
	"strings"
	"testing"
)

// TestWorkloadKnobDeclarations sanity-checks the registry: grids are
// ascending, contain the default, and respect the knob's own bounds —
// the contract the tune subsystem's search relies on.
func TestWorkloadKnobDeclarations(t *testing.T) {
	for _, w := range Workloads() {
		seen := map[string]bool{}
		for _, k := range w.Knobs {
			if k.Name == "" {
				t.Errorf("%s: knob with empty name", w.Name)
			}
			if seen[k.Name] {
				t.Errorf("%s: duplicate knob %q", w.Name, k.Name)
			}
			seen[k.Name] = true
			if len(k.Grid) == 0 {
				t.Errorf("%s/%s: empty grid", w.Name, k.Name)
				continue
			}
			if !sort.Float64sAreSorted(k.Grid) {
				t.Errorf("%s/%s: grid not ascending: %v", w.Name, k.Name, k.Grid)
			}
			hasDefault := false
			for _, v := range k.Grid {
				if v == k.Default {
					hasDefault = true
				}
				if (k.Min != 0 || k.Max != 0) && (v < k.Min || v > k.Max) {
					t.Errorf("%s/%s: grid value %v outside [%v, %v]", w.Name, k.Name, v, k.Min, k.Max)
				}
			}
			if !hasDefault {
				t.Errorf("%s/%s: default %v not in grid %v", w.Name, k.Name, k.Default, k.Grid)
			}
		}
	}
}

func TestCustomSweepParamsValidation(t *testing.T) {
	base := func(params map[string]float64) *Spec {
		return &Spec{
			Custom: &CustomSweep{Workload: "lp/apsp", Rates: []float64{0.01}, Params: params},
			Seed:   1,
		}
	}
	if err := base(nil).Validate(); err != nil {
		t.Errorf("nil params: %v", err)
	}
	if err := base(map[string]float64{"mu": 4}).Validate(); err != nil {
		t.Errorf("declared knob rejected: %v", err)
	}
	if err := base(map[string]float64{"nope": 4}).Validate(); err == nil {
		t.Error("unknown knob accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown-knob error does not name the key: %v", err)
	}
	if err := base(map[string]float64{"mu": -1}).Validate(); err == nil {
		t.Error("out-of-bounds knob accepted")
	}
	nan := 0.0
	nan /= nan
	if err := base(map[string]float64{"mu": nan}).Validate(); err == nil {
		t.Error("NaN knob accepted")
	}
	// Workloads without knobs reject any params.
	noKnobs := &Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.01},
			Params: map[string]float64{"mu": 1}},
		Seed: 1,
	}
	if err := noKnobs.Validate(); err == nil {
		t.Error("params accepted by a workload with no knobs")
	}
}

// TestParamsShapeTrialValues: overriding a knob must change trial
// values, and the same params must reproduce them exactly — params are
// part of the spec's identity.
func TestParamsShapeTrialValues(t *testing.T) {
	run := func(params map[string]float64) float64 {
		spec := Spec{
			Custom: &CustomSweep{
				Workload: "leastsq/cg", Rates: []float64{0.02}, Params: params,
			},
			Trials: 2,
			Seed:   5,
		}
		camp, err := Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		u := camp.Plan.Units[0]
		return u.Fn(u.Sweep.Rates[0], u.Sweep.TrialSeed(0, 0))
	}
	def := run(nil)
	same := run(map[string]float64{"budget": 10, "restart": 0}) // the declared defaults
	if def != same {
		t.Errorf("explicit defaults differ from implicit: %v vs %v", def, same)
	}
	tiny := run(map[string]float64{"budget": 1})
	if tiny == def {
		t.Error("budget knob had no effect on the trial value")
	}
	if again := run(map[string]float64{"budget": 1}); again != tiny {
		t.Errorf("same params not reproducible: %v vs %v", again, tiny)
	}
}

// TestParamsResumeIdentity: params changes break resume compatibility —
// they change the grid's values.
func TestParamsResumeIdentity(t *testing.T) {
	a := Spec{Custom: &CustomSweep{Workload: "lp/apsp", Rates: []float64{0.01}}, Seed: 1}
	b := Spec{Custom: &CustomSweep{Workload: "lp/apsp", Rates: []float64{0.01},
		Params: map[string]float64{"mu": 16}}, Seed: 1}
	if ResumeCompatible(a, b) {
		t.Error("specs with different params must not be resume-compatible")
	}
	c := Spec{Custom: &CustomSweep{Workload: "lp/apsp", Rates: []float64{0.01},
		Params: map[string]float64{"mu": 16}}, Seed: 1, Workers: 7, Name: "x"}
	if !ResumeCompatible(b, c) {
		t.Error("workers/name must not affect resume identity")
	}
}
