package campaign

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"robustify/internal/dispatch"
	"robustify/internal/harness"
	"robustify/internal/obs"
)

// Campaign lifecycle states. StateInterrupted is only ever assigned at
// recovery: the on-disk meta said queued or running, but the process that
// owned the campaign is gone — a crash or SIGKILL ended the daemon before
// the run goroutine could record a terminal state.
//
//lint:enum campaign-state every dispatch over campaign states must cover all six or say why not
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// Status is the externally visible state of one managed campaign.
type Status struct {
	ID       string       `json:"id"`
	Name     string       `json:"name"`
	State    string       `json:"state"`
	Error    string       `json:"error,omitempty"`
	Spec     Spec         `json:"spec"`
	Progress Progress     `json:"progress"`
	Units    []UnitStatus `json:"units,omitempty"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
}

type handle struct {
	id      string
	spec    Spec
	camp    *Campaign
	dir     string
	created time.Time
	// counter is the manager-wide fresh-trial counter, attached to every
	// execution this handle creates (see newExecLocked).
	counter *atomic.Int64
	// hub, when the manager has one, receives this campaign's lifecycle
	// events and per-trial telemetry. Nil hubs are valid no-ops.
	hub *obs.Hub

	mu sync.Mutex
	// st and exec are nil for a terminal campaign recovered lazily: its
	// meta already carries state and progress, so the store is only
	// opened (ensureStoreLocked) when results, per-cell status, or a
	// resume actually need trial data.
	st       *Store
	exec     *Execution
	metaDone int // progress from meta.json while the store is unopened
	cancel   context.CancelFunc
	done     chan struct{}
	state    string
	err      error
	started  *time.Time
	finished *time.Time
	// userCancel records that Manager.Cancel fired for the current run, so
	// an explicit cancel that overlaps daemon shutdown is still recorded
	// as cancelled, not interrupted.
	userCancel bool
}

// newExecLocked builds an execution over the handle's (open) store with
// the manager's trial counter attached; h.mu must be held (or the handle
// not yet shared).
func (h *handle) newExecLocked() *Execution {
	e := NewExecution(h.camp, h.st)
	e.trials = h.counter
	e.SetHub(h.hub, h.id)
	return e
}

// ensureStoreLocked opens a lazily recovered handle's store; a no-op
// once open. It deliberately does not build an Execution — replaying the
// store into live statistics is O(trials) and only detailed status needs
// it (ensureExecLocked). h.mu must be held.
func (h *handle) ensureStoreLocked() error {
	if h.st != nil {
		return nil
	}
	st, err := Open(h.dir)
	if err != nil {
		return fmt.Errorf("campaign: open store for %s: %w", h.id, err)
	}
	h.st = st
	return nil
}

// ensureExecLocked opens the store (if needed) and builds the execution
// whose live statistics back detailed status. h.mu must be held.
func (h *handle) ensureExecLocked() error {
	if h.exec != nil {
		return nil
	}
	if err := h.ensureStoreLocked(); err != nil {
		return err
	}
	h.exec = h.newExecLocked()
	return nil
}

// terminal reports whether the state is one no goroutine will leave.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// resumable reports whether Resume may reschedule a campaign in this
// state: its previous run is over (or its previous owner is dead) and the
// grid is not complete-by-construction.
func resumable(state string) bool {
	return state == StateCancelled || state == StateFailed || state == StateInterrupted
}

// Manager schedules campaigns: each submitted spec is compiled, given a
// store directory under root, and executed on its own goroutine, with the
// number of simultaneously running campaigns bounded by slots. A
// cancelled, failed, or interrupted campaign keeps its store and can be
// resumed in place. Lifecycle state is mirrored to each campaign's
// meta.json, so a new manager over the same root recovers every prior
// campaign (see recoverAll).
type Manager struct {
	root  string
	slots chan struct{}
	lock  *os.File // flock on the data root; held for the manager's lifetime

	// trials counts freshly executed trials across all campaigns since
	// this manager was created (for /metrics throughput).
	trials atomic.Int64

	mu     sync.Mutex
	byID   map[string]*handle
	order  []string
	nextID int
	closed bool
	// disp, when set, routes campaign execution to a robustworker fleet
	// instead of running trials in-process.
	disp *dispatch.Coordinator
	// hub, when set, receives lifecycle events and per-trial telemetry
	// for every campaign.
	hub *obs.Hub
	// metricsExtras are additional Prometheus exposition writers appended
	// to /metrics output (the tune manager and the obs hub register
	// theirs), keeping NewServer's signature stable as subsystems grow.
	metricsExtras []func(io.Writer)
}

// SetHub attaches an observability hub to the manager and to every
// already-registered campaign (recovered handles included, so their
// telemetry lands in the right directory). robustd wires this at boot,
// before the listener; with no hub the manager emits nothing.
func (m *Manager) SetHub(h *obs.Hub) {
	m.mu.Lock()
	m.hub = h
	handles := make([]*handle, 0, len(m.byID))
	for _, hd := range m.byID {
		//lint:detmap-exempt hub attachment order is not observable in any durable artifact
		handles = append(handles, hd)
	}
	m.mu.Unlock()
	for _, hd := range handles {
		hd.mu.Lock()
		hd.hub = h
		if hd.exec != nil {
			hd.exec.SetHub(h, hd.id)
		}
		hd.mu.Unlock()
		h.RegisterCampaign(hd.id, hd.dir)
	}
}

// Hub returns the attached observability hub (nil when none).
func (m *Manager) Hub() *obs.Hub {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hub
}

// AddMetrics registers an extra Prometheus exposition writer appended to
// GET /metrics output after the campaign and dispatch families. Writers
// must emit complete, well-formed families of their own.
func (m *Manager) AddMetrics(f func(io.Writer)) {
	if f == nil {
		return
	}
	m.mu.Lock()
	m.metricsExtras = append(m.metricsExtras, f)
	m.mu.Unlock()
}

// emit forwards a lifecycle event to the hub, if one is attached.
func (m *Manager) emit(kind, campaign, detail string) {
	m.mu.Lock()
	h := m.hub
	m.mu.Unlock()
	h.Emit(kind, campaign, detail)
}

// SetDispatcher attaches a dispatch coordinator: every campaign run
// started afterwards executes on registered robustworkers instead of
// in-process. robustd wires this at boot (before the listener and
// -autoresume); with no dispatcher the manager behaves exactly as
// before — all trials run locally.
func (m *Manager) SetDispatcher(d *dispatch.Coordinator) {
	m.mu.Lock()
	m.disp = d
	m.mu.Unlock()
}

// Dispatcher returns the attached coordinator, or nil when campaigns run
// in-process.
func (m *Manager) Dispatcher() *dispatch.Coordinator {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.disp
}

// NewManager creates a manager storing campaign results under root and
// recovers every campaign a previous daemon left there: each directory
// with a spec.json is rebuilt from spec + meta + store contents,
// classified (done/failed/cancelled kept; queued/running becomes
// interrupted — no process owns them anymore), and registered so it is
// listable, queryable, and — if interrupted — resumable. Id allocation
// continues after the highest recovered id. maxConcurrent bounds
// simultaneously running campaigns (<=0 means 4).
func NewManager(root string, maxConcurrent int) (*Manager, error) {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	m := &Manager{
		root:  root,
		slots: make(chan struct{}, maxConcurrent),
		byID:  make(map[string]*handle),
	}
	lock, err := lockRoot(root)
	if err != nil {
		return nil, err
	}
	m.lock = lock
	if err := m.recoverAll(); err != nil {
		unlockRoot(lock)
		return nil, err
	}
	return m, nil
}

// reusableDir reports whether dir is the husk of a Submit a crash cut
// short: nothing inside beyond an empty store file (Store.Open creates
// trials.jsonl before SaveSpec writes the spec, so that is the only
// artifact a crash in that window leaves). Recovery ignores such
// directories, no goroutine owns them (the data-root flock admits one
// manager), so a new campaign may safely claim the id. Any other
// content — a spec, a meta, recorded trials, or foreign files — is
// somebody's data and keeps its id out of circulation; Submit must
// never claim (or, on its error paths, remove) a directory it cannot
// prove is its own leftover.
func reusableDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.Name() != storeFile {
			return false
		}
		fi, err := e.Info()
		if err != nil || fi.Size() != 0 {
			return false
		}
	}
	return true
}

// lockRoot takes an exclusive advisory lock on the data root, refusing to
// share it with another live manager: recovery classifies queued/running
// campaigns as ownerless, which is only sound if no other process owns
// them. flock (unlike a pidfile) is released by the kernel when the
// holder dies, so a SIGKILLed daemon never wedges its successor.
func lockRoot(root string) (*os.File, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: data root: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(root, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: lock data root: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: data root %s is owned by another running daemon: %w", root, err)
	}
	return f, nil
}

func unlockRoot(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

// Submit compiles the spec, opens its store, and schedules it. It returns
// the campaign id immediately; execution proceeds in the background.
func (m *Manager) Submit(spec Spec) (string, error) {
	camp, err := Compile(spec)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("campaign: manager closed")
	}
	hub := m.hub
	// nextID already continues past the highest recovered id; the probe
	// additionally skips stray directories not created by a manager, whose
	// contents would otherwise be served as cached trials for this grid.
	// Husks a crash cut out of a previous Submit (no spec, no meta, no
	// recorded trial) are reclaimed instead of skipped, so id allocation
	// stays deterministic across kill-and-resume runs — which is what
	// keeps a resumed tune search's campaign ids aligned with an
	// uninterrupted one.
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("c%04d", m.nextID)
		dir := filepath.Join(m.root, id)
		if _, err := os.Stat(dir); os.IsNotExist(err) || reusableDir(dir) {
			break
		}
	}
	m.mu.Unlock()

	// On any error past this point the freshly created directory must be
	// removed again: a spec.json (or queued meta.json) left behind by a
	// failed Submit would be recovered — and autoresumed — on the next
	// boot as a ghost campaign the client was told does not exist.
	dir := filepath.Join(m.root, id)
	st, err := Open(dir)
	if err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	if err := st.SaveSpec(spec); err != nil {
		//lint:errdurability-exempt best-effort cleanup: the store directory is removed on the next line
		st.Close()
		os.RemoveAll(dir)
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &handle{
		id: id, spec: spec, camp: camp, st: st, dir: dir,
		counter: &m.trials,
		hub:     hub,
		cancel:  cancel,
		done:    make(chan struct{}),
		created: time.Now(),
		state:   StateQueued,
	}
	h.exec = h.newExecLocked()
	if err := h.saveMetaLocked(); err != nil { // no goroutine sees h yet
		cancel()
		//lint:errdurability-exempt best-effort cleanup: the store directory is removed on the next line
		st.Close()
		os.RemoveAll(dir)
		return "", err
	}
	// Register and launch under m.mu so a concurrent Close either refuses
	// this campaign here or sees it in byID and winds it down.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		//lint:errdurability-exempt best-effort cleanup: the store directory is removed on the next line
		st.Close()
		os.RemoveAll(dir)
		return "", fmt.Errorf("campaign: manager closed")
	}
	m.byID[id] = h
	m.order = append(m.order, id)
	go m.run(ctx, h, h.done)
	m.mu.Unlock()
	hub.RegisterCampaign(id, dir)
	hub.Emit("campaign.submitted", id, spec.Title())
	return id, nil
}

// Resume reschedules a cancelled, failed, or interrupted campaign. Its
// store already holds every completed trial, so only the remainder of the
// grid runs; the final table is byte-identical to an uninterrupted run.
// Interrupted campaigns are handles recovered at startup, so Resume is
// also how a restarted daemon finishes work a crash orphaned.
func (m *Manager) Resume(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	state, done := h.state, h.done
	h.mu.Unlock()
	if !resumable(state) {
		return fmt.Errorf("campaign: %s is %s; only cancelled, failed, or interrupted campaigns resume", id, state)
	}
	<-done // the previous run goroutine has fully exited

	ctx, cancel := context.WithCancel(context.Background())
	// Launch under m.mu so Close, which sets closed under the same lock
	// before cancelling handles, either refuses this resume or sees its
	// fresh cancel/done pair.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return fmt.Errorf("campaign: manager closed")
	}
	h.mu.Lock()
	if !resumable(h.state) { // lost a race with another Resume
		h.mu.Unlock()
		cancel()
		return fmt.Errorf("campaign: %s already resumed", id)
	}
	if err := h.ensureStoreLocked(); err != nil { // lazily recovered failed/cancelled
		h.mu.Unlock()
		cancel()
		return err
	}
	h.state = StateQueued
	h.err = nil
	h.finished = nil
	h.userCancel = false
	h.exec = h.newExecLocked()
	h.cancel = cancel
	h.done = make(chan struct{})
	done = h.done
	h.persistLocked()
	h.mu.Unlock()

	go m.run(ctx, h, done)
	m.hub.Emit("campaign.resumed", id, "")
	return nil
}

// ResumeInterrupted reschedules every campaign currently classified as
// interrupted (the -autoresume startup path) and returns the ids it
// resumed.
func (m *Manager) ResumeInterrupted() []string {
	var ids []string
	for _, s := range m.List() {
		if s.State != StateInterrupted {
			continue
		}
		if err := m.Resume(s.ID); err != nil {
			log.Printf("campaign: autoresume %s: %v", s.ID, err)
			continue
		}
		ids = append(ids, s.ID)
	}
	return ids
}

func (m *Manager) run(ctx context.Context, h *handle, done chan struct{}) {
	defer close(done)
	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	case <-ctx.Done():
		h.finish(m.stopState(h), nil)
		return
	}
	now := time.Now()
	h.mu.Lock()
	h.state = StateRunning
	h.started = &now
	exec := h.exec
	h.persistLocked()
	h.mu.Unlock()
	h.hub.Emit("campaign.running", h.id, "")

	m.mu.Lock()
	disp := m.disp
	m.mu.Unlock()
	var err error
	if disp != nil {
		err = exec.RunDispatched(ctx, disp, h.id)
	} else {
		err = exec.Run(ctx)
	}
	switch {
	case err == nil:
		h.finish(StateDone, nil)
	case ctx.Err() != nil:
		h.finish(m.stopState(h), nil)
	default:
		h.finish(StateFailed, err)
	}
}

// stopState names why a run's context was cancelled. An explicit Cancel
// is a deliberate, terminal choice and wins even when it overlaps
// shutdown; otherwise a closing manager (daemon wind-down) leaves the
// campaign interrupted — the same state a crash produces, so the next
// boot lists it as unfinished and -autoresume picks it up. The locks are
// taken sequentially, never nested, to keep the m.mu -> h.mu order used
// elsewhere.
func (m *Manager) stopState(h *handle) string {
	h.mu.Lock()
	user := h.userCancel
	h.mu.Unlock()
	if user {
		return StateCancelled
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return StateInterrupted
	}
	return StateCancelled
}

func (h *handle) finish(state string, err error) {
	now := time.Now()
	h.mu.Lock()
	h.state = state
	h.err = err
	h.finished = &now
	h.persistLocked()
	h.mu.Unlock()
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	h.hub.Emit("campaign."+state, h.id, detail)
}

// saveMetaLocked writes the handle's lifecycle state to its meta.json;
// h.mu must be held (or the handle not yet shared).
func (h *handle) saveMetaLocked() error {
	m := Meta{
		ID:       h.id,
		Name:     h.spec.Title(),
		State:    h.state,
		Created:  h.created,
		Started:  h.started,
		Finished: h.finished,
		Done:     h.metaDone,
		Total:    h.camp.Total(),
	}
	if h.st != nil {
		m.Done = h.st.Count()
	}
	if h.err != nil {
		m.Error = h.err.Error()
	}
	return writeMeta(h.dir, m)
}

// persistLocked is saveMetaLocked for callers that cannot propagate the
// error (state transitions already committed in memory): a failed write
// only costs registry accuracy across a restart, so it is logged, not
// fatal.
func (h *handle) persistLocked() {
	if err := h.saveMetaLocked(); err != nil {
		log.Printf("campaign: %s: persist state: %v", h.id, err)
	}
}

func (h *handle) status(withUnits bool) Status {
	h.mu.Lock()
	s := Status{
		ID:       h.id,
		Name:     h.spec.Title(),
		State:    h.state,
		Spec:     h.spec,
		Created:  h.created,
		Started:  h.started,
		Finished: h.finished,
	}
	if h.err != nil {
		s.Error = h.err.Error()
	}
	exec := h.exec
	metaDone := h.metaDone
	h.mu.Unlock()
	if exec == nil && withUnits {
		// Per-cell statistics need the trial data: open the lazy store now.
		h.mu.Lock()
		if err := h.ensureExecLocked(); err != nil {
			log.Printf("campaign: %s: status units: %v", h.id, err)
		}
		exec = h.exec
		h.mu.Unlock()
	}
	if exec == nil {
		// Lazily recovered terminal campaign: progress comes straight from
		// meta.json, so listing history never replays stores.
		s.Progress = Progress{Done: metaDone, Total: h.camp.Total()}
		return s
	}
	s.Progress = exec.Progress()
	if withUnits {
		s.Units = exec.Status()
	}
	return s
}

func (m *Manager) handleByID(id string) (*handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	return h, nil
}

// List returns the status of every campaign in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if h, err := m.handleByID(id); err == nil {
			out = append(out, h.status(false))
		}
	}
	return out
}

// Get returns one campaign's status with live per-cell statistics.
func (m *Manager) Get(id string) (Status, error) {
	h, err := m.handleByID(id)
	if err != nil {
		return Status{}, err
	}
	return h.status(true), nil
}

// Cancel stops a running (or queued) campaign; completed trials stay in
// the store and Resume picks up where it left off. Cancelling a
// recovered interrupted campaign — which no goroutine owns — flips it
// straight to cancelled so /resume stays possible but -autoresume treats
// the operator's decision as final.
func (m *Manager) Cancel(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.state == StateInterrupted {
		h.state = StateCancelled
		h.persistLocked()
		h.mu.Unlock()
		return nil
	}
	h.userCancel = true
	cancel := h.cancel
	h.mu.Unlock()
	cancel()
	m.emit("campaign.cancel", id, "")
	return nil
}

// Table materializes the campaign's current results table; valid at any
// point mid-run. A lazily recovered campaign's store is opened here, on
// first access.
func (m *Manager) Table(id string) (*harness.Table, error) {
	h, err := m.handleByID(id)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if err := h.ensureStoreLocked(); err != nil {
		h.mu.Unlock()
		return nil, err
	}
	st := h.st
	h.mu.Unlock()
	return h.camp.TableFromStore(st), nil
}

// Wait blocks until the campaign's current run reaches a terminal state
// and returns its error, if any.
func (m *Manager) Wait(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	done := h.done
	h.mu.Unlock()
	<-done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Close cancels every campaign, waits (indefinitely) for them to wind
// down, and closes their stores.
func (m *Manager) Close() { m.Shutdown(0) }

// Shutdown is Close with a bounded deadline: every campaign is
// cancelled, then waited on for at most timeout in total (0 = forever).
// It returns false when the deadline expired with run goroutines still
// alive — a wedged trial, say — in which case their stores are left
// open (the goroutine may still append; the process is about to exit
// anyway) and the data-root flock is left for the kernel to release at
// process death, so a successor daemon can never grab the root while a
// wedged goroutine still writes to it. The wedged campaign's meta still
// says running, which the next boot classifies as interrupted — exactly
// the crash path — so nothing is lost beyond the in-flight trials.
// Shutdown is idempotent; concurrent or repeated calls after the first
// return true immediately.
func (m *Manager) Shutdown(timeout time.Duration) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return true
	}
	m.closed = true
	handles := make([]*handle, 0, len(m.byID))
	for _, h := range m.byID {
		//lint:detmap-exempt shutdown fan-out: cancellation/wait order is not observable in any durable artifact
		handles = append(handles, h)
	}
	m.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		cancel := h.cancel
		h.mu.Unlock()
		cancel()
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		tmr := time.NewTimer(timeout)
		defer tmr.Stop()
		deadline = tmr.C
	}
	clean := true
	timedOut := false
	for _, h := range handles {
		h.mu.Lock()
		done := h.done
		h.mu.Unlock()
		if !timedOut {
			select {
			case <-done:
			case <-deadline:
				timedOut = true
			}
		}
		if timedOut {
			// The deadline fired once; poll the remaining handles without
			// blocking so already-finished ones still close cleanly.
			select {
			case <-done:
			default:
				clean = false
				continue
			}
		}
		h.mu.Lock()
		if h.st != nil {
			// A failed close is a failed last flush: the on-disk store may
			// be missing records the meta already claims. That is not a
			// clean shutdown, and the root flock stays held (released by
			// the kernel at exit) so a successor cannot trust the root
			// before an operator looks.
			if err := h.st.Close(); err != nil {
				clean = false
			}
		}
		h.mu.Unlock()
	}
	if clean {
		unlockRoot(m.lock)
	}
	return clean
}
