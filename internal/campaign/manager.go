package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"robustify/internal/harness"
)

// Campaign lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Status is the externally visible state of one managed campaign.
type Status struct {
	ID       string       `json:"id"`
	Name     string       `json:"name"`
	State    string       `json:"state"`
	Error    string       `json:"error,omitempty"`
	Spec     Spec         `json:"spec"`
	Progress Progress     `json:"progress"`
	Units    []UnitStatus `json:"units,omitempty"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
}

type handle struct {
	id      string
	spec    Spec
	camp    *Campaign
	st      *Store
	created time.Time

	mu       sync.Mutex
	exec     *Execution
	cancel   context.CancelFunc
	done     chan struct{}
	state    string
	err      error
	started  *time.Time
	finished *time.Time
}

// terminal reports whether the state is one no goroutine will leave.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Manager schedules campaigns: each submitted spec is compiled, given a
// store directory under root, and executed on its own goroutine, with the
// number of simultaneously running campaigns bounded by slots. A cancelled
// or failed campaign keeps its store and can be resumed in place.
type Manager struct {
	root  string
	slots chan struct{}

	mu     sync.Mutex
	byID   map[string]*handle
	order  []string
	nextID int
	closed bool
}

// NewManager creates a manager storing campaign results under root.
// maxConcurrent bounds simultaneously running campaigns (<=0 means 4).
func NewManager(root string, maxConcurrent int) *Manager {
	if maxConcurrent <= 0 {
		maxConcurrent = 4
	}
	return &Manager{
		root:  root,
		slots: make(chan struct{}, maxConcurrent),
		byID:  make(map[string]*handle),
	}
}

// Submit compiles the spec, opens its store, and schedules it. It returns
// the campaign id immediately; execution proceeds in the background.
func (m *Manager) Submit(spec Spec) (string, error) {
	camp, err := Compile(spec)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("campaign: manager closed")
	}
	// Skip directories left by earlier daemon runs: reusing one would
	// serve another grid's trials as cached values for this campaign.
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("c%04d", m.nextID)
		if _, err := os.Stat(filepath.Join(m.root, id)); os.IsNotExist(err) {
			break
		}
	}
	m.mu.Unlock()

	st, err := Open(filepath.Join(m.root, id))
	if err != nil {
		return "", err
	}
	if err := st.SaveSpec(spec); err != nil {
		st.Close()
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &handle{
		id: id, spec: spec, camp: camp, st: st,
		exec:    NewExecution(camp, st),
		cancel:  cancel,
		done:    make(chan struct{}),
		created: time.Now(),
		state:   StateQueued,
	}
	// Register and launch under m.mu so a concurrent Close either refuses
	// this campaign here or sees it in byID and winds it down.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		st.Close()
		return "", fmt.Errorf("campaign: manager closed")
	}
	m.byID[id] = h
	m.order = append(m.order, id)
	go m.run(ctx, h, h.done)
	m.mu.Unlock()
	return id, nil
}

// Resume reschedules a cancelled or failed campaign. Its store already
// holds every completed trial, so only the remainder of the grid runs.
func (m *Manager) Resume(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	state, done := h.state, h.done
	h.mu.Unlock()
	if state != StateCancelled && state != StateFailed {
		return fmt.Errorf("campaign: %s is %s; only cancelled or failed campaigns resume", id, state)
	}
	<-done // the previous run goroutine has fully exited

	ctx, cancel := context.WithCancel(context.Background())
	// Launch under m.mu so Close, which sets closed under the same lock
	// before cancelling handles, either refuses this resume or sees its
	// fresh cancel/done pair.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return fmt.Errorf("campaign: manager closed")
	}
	h.mu.Lock()
	if h.state != StateCancelled && h.state != StateFailed { // lost a race with another Resume
		h.mu.Unlock()
		cancel()
		return fmt.Errorf("campaign: %s already resumed", id)
	}
	h.state = StateQueued
	h.err = nil
	h.finished = nil
	h.exec = NewExecution(h.camp, h.st)
	h.cancel = cancel
	h.done = make(chan struct{})
	done = h.done
	h.mu.Unlock()

	go m.run(ctx, h, done)
	return nil
}

func (m *Manager) run(ctx context.Context, h *handle, done chan struct{}) {
	defer close(done)
	select {
	case m.slots <- struct{}{}:
		defer func() { <-m.slots }()
	case <-ctx.Done():
		h.finish(StateCancelled, nil)
		return
	}
	now := time.Now()
	h.mu.Lock()
	h.state = StateRunning
	h.started = &now
	exec := h.exec
	h.mu.Unlock()

	err := exec.Run(ctx)
	switch {
	case err == nil:
		h.finish(StateDone, nil)
	case ctx.Err() != nil:
		h.finish(StateCancelled, nil)
	default:
		h.finish(StateFailed, err)
	}
}

func (h *handle) finish(state string, err error) {
	now := time.Now()
	h.mu.Lock()
	h.state = state
	h.err = err
	h.finished = &now
	h.mu.Unlock()
}

func (h *handle) status(withUnits bool) Status {
	h.mu.Lock()
	s := Status{
		ID:       h.id,
		Name:     h.spec.Title(),
		State:    h.state,
		Spec:     h.spec,
		Created:  h.created,
		Started:  h.started,
		Finished: h.finished,
	}
	if h.err != nil {
		s.Error = h.err.Error()
	}
	exec := h.exec
	h.mu.Unlock()
	s.Progress = exec.Progress()
	if withUnits {
		s.Units = exec.Status()
	}
	return s
}

func (m *Manager) handleByID(id string) (*handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown campaign %q", id)
	}
	return h, nil
}

// List returns the status of every campaign in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if h, err := m.handleByID(id); err == nil {
			out = append(out, h.status(false))
		}
	}
	return out
}

// Get returns one campaign's status with live per-cell statistics.
func (m *Manager) Get(id string) (Status, error) {
	h, err := m.handleByID(id)
	if err != nil {
		return Status{}, err
	}
	return h.status(true), nil
}

// Cancel stops a running (or queued) campaign. Completed trials stay in
// the store; Resume picks up where it left off.
func (m *Manager) Cancel(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	cancel := h.cancel
	h.mu.Unlock()
	cancel()
	return nil
}

// Table materializes the campaign's current results table; valid at any
// point mid-run.
func (m *Manager) Table(id string) (*harness.Table, error) {
	h, err := m.handleByID(id)
	if err != nil {
		return nil, err
	}
	return h.camp.TableFromStore(h.st), nil
}

// Wait blocks until the campaign's current run reaches a terminal state
// and returns its error, if any.
func (m *Manager) Wait(id string) error {
	h, err := m.handleByID(id)
	if err != nil {
		return err
	}
	h.mu.Lock()
	done := h.done
	h.mu.Unlock()
	<-done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Close cancels every campaign, waits for them to wind down, and closes
// their stores.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	handles := make([]*handle, 0, len(m.byID))
	for _, h := range m.byID {
		handles = append(handles, h)
	}
	m.mu.Unlock()
	for _, h := range handles {
		h.mu.Lock()
		cancel := h.cancel
		h.mu.Unlock()
		cancel()
	}
	for _, h := range handles {
		h.mu.Lock()
		done := h.done
		h.mu.Unlock()
		<-done
		h.st.Close()
	}
}
