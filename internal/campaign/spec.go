// Package campaign turns fault-injection sweeps into durable, resumable,
// queryable artifacts. A campaign is a declarative Spec compiled to a
// deterministic trial grid (via the figure sweep plans or a custom
// workload); an engine executes the grid with sharded workers, appends
// every completed trial to a JSONL results store, and can resume an
// interrupted run to a byte-identical final table. A Manager schedules
// concurrent campaigns and backs the robustd HTTP service.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"

	"robustify/internal/figures"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
)

// Spec declares a campaign. Exactly one of Figure or Custom selects the
// workload; the rest scales and seeds the grid. Specs round-trip through
// JSON and are persisted next to the results they produced, so a store
// is self-describing.
type Spec struct {
	// Name is a human label; it defaults to the figure or workload id.
	Name string `json:"name,omitempty"`
	// Figure selects a sweep-shaped figure plan (see figures.PlanIDs).
	Figure string `json:"figure,omitempty"`
	// Custom selects a registered workload with an explicit rate grid.
	Custom *CustomSweep `json:"custom,omitempty"`
	// Trials per cell (0 = figure default, or 10 for custom sweeps).
	Trials int `json:"trials,omitempty"`
	// Seed derives every trial seed; same spec, same results.
	Seed uint64 `json:"seed"`
	// Workers bounds trial parallelism (0 = GOMAXPROCS). Scheduling
	// only — it never changes results.
	Workers int `json:"workers,omitempty"`
	// Quick selects the scaled-down figure variants.
	Quick bool `json:"quick,omitempty"`
	// FaultModel selects the injection model every trial runs under (see
	// fpu/faultmodel: default, stratified, burst, memory). Omitted means
	// the default model, byte-identical to pre-faultmodel specs — both in
	// results and in resume identity, since the field marshals away when
	// nil. A non-nil model shapes every trial value, so it is part of
	// specKey: a store written under one model never resumes under another.
	FaultModel *faultmodel.Spec `json:"fault_model,omitempty"`
}

// CustomSweep sweeps one registered workload over an explicit rate grid.
type CustomSweep struct {
	// Workload names a registered trial function (see Workloads).
	Workload string `json:"workload"`
	// Rates are fault rates in faults per FLOP.
	Rates []float64 `json:"rates"`
	// Iters scales iterative workloads (0 = workload default).
	Iters int `json:"iters,omitempty"`
	// Agg is the cell aggregator: "mean" (default) or "median".
	Agg string `json:"agg,omitempty"`
	// Params overrides the workload's declared knobs (see Workload.Knobs):
	// algorithm parameters like penalty weight or step-schedule constants.
	// Keys must name declared knobs — unknown keys are rejected at
	// validation, so a typo can't silently run the defaults. Omitted knobs
	// keep their declared defaults. Params shape the grid's trial values,
	// so they are part of the spec's resume identity.
	//
	// Keys with the "fm_" prefix are fault-model parameters, not workload
	// knobs: they override fields of the spec's FaultModel (see ModelKnobs)
	// and are rejected unless the selected model declares them. They ride
	// in Params so the tune subsystem can put fault-model parameters on the
	// same knob grid as algorithm parameters.
	Params map[string]float64 `json:"params,omitempty"`
}

// Validate checks the spec without compiling it.
func (s *Spec) Validate() error {
	switch {
	case s.Figure == "" && s.Custom == nil:
		return fmt.Errorf("campaign: spec needs a figure or a custom sweep")
	case s.Figure != "" && s.Custom != nil:
		return fmt.Errorf("campaign: figure and custom sweep are mutually exclusive")
	case s.Trials < 0:
		return fmt.Errorf("campaign: negative trials")
	case s.Workers < 0:
		return fmt.Errorf("campaign: negative workers")
	}
	if err := s.FaultModel.Validate(); err != nil {
		return err
	}
	if s.Figure != "" {
		if figures.Lookup(s.Figure) == nil {
			return fmt.Errorf("campaign: unknown figure %q", s.Figure)
		}
		if !figures.HasPlan(s.Figure) {
			return fmt.Errorf("campaign: figure %q is not sweep-shaped (no campaign plan); campaignable figures: %v",
				s.Figure, figures.PlanIDs())
		}
		return nil
	}
	c := s.Custom
	w, err := WorkloadByName(c.Workload)
	if err != nil {
		return err
	}
	workloadParams, modelParams := splitModelParams(c.Params)
	if _, err := w.resolveParams(workloadParams); err != nil {
		return err
	}
	if _, err := applyModelParams(s.FaultModel, modelParams); err != nil {
		return err
	}
	if len(c.Rates) == 0 {
		return fmt.Errorf("campaign: custom sweep needs at least one rate")
	}
	for _, r := range c.Rates {
		if r < 0 || r != r {
			return fmt.Errorf("campaign: invalid fault rate %v", r)
		}
	}
	if c.Iters < 0 {
		return fmt.Errorf("campaign: negative iters")
	}
	if _, err := harness.AggregatorByName(c.Agg); err != nil {
		return err
	}
	return nil
}

// Title returns the display name of the campaign.
func (s *Spec) Title() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Figure != "" {
		return "fig-" + s.Figure
	}
	if s.Custom != nil {
		return s.Custom.Workload
	}
	return "campaign"
}

// ParseSpec decodes and validates a JSON spec, rejecting unknown fields so
// typos surface at submit time instead of silently running the defaults.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Compile resolves the spec to its deterministic trial grid.
func Compile(spec Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var plan *figures.Plan
	if spec.Figure != "" {
		plan = figures.PlanFor(spec.Figure, figures.Config{
			Trials:     spec.Trials,
			Seed:       spec.Seed,
			Quick:      spec.Quick,
			Workers:    spec.Workers,
			FaultModel: spec.FaultModel,
		})
	} else {
		var err error
		plan, err = customPlan(spec)
		if err != nil {
			return nil, err
		}
	}
	return &Campaign{Spec: spec, Plan: plan}, nil
}

// specKey is the identity of a spec for resume compatibility: two specs
// with equal keys compile to the same trial grid. Workers is excluded —
// it only schedules.
func specKey(s Spec) string {
	s.Workers = 0
	s.Name = ""
	b, _ := json.Marshal(s)
	return string(b)
}

// ResumeCompatible reports whether a stored spec and a requested spec
// compile to the same trial grid, i.e. whether resuming is sound. Name
// and Workers may differ — they don't shape the grid.
func ResumeCompatible(a, b Spec) bool {
	return specKey(a) == specKey(b)
}
