package campaign

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
)

// recoverAll rebuilds the manager's registry from the data root: every
// subdirectory holding a spec.json becomes a handle again, classified from
// its meta.json. It runs once, from NewManager, before the manager is
// shared, so no locking is needed. Directories that cannot be recovered
// (unreadable spec, grid no longer compilable) are logged and skipped
// rather than failing the whole daemon; their names still advance the id
// counter so new campaigns never collide with them.
func (m *Manager) recoverAll() error {
	entries, err := os.ReadDir(m.root)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: scan data root: %w", err)
	}
	for _, e := range entries { // ReadDir sorts by name, so ids stay ordered
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.root, e.Name())
		advance := func() {
			if n, ok := campaignID(e.Name()); ok && n > m.nextID {
				m.nextID = n
			}
		}
		h, err := recoverHandle(e.Name(), dir)
		if err != nil {
			log.Printf("campaign: skipping unrecoverable %s: %v", dir, err)
			advance()
			continue
		}
		if h == nil {
			// Not a campaign directory. A reclaimable husk (a Submit a
			// crash cut short before its spec landed — provably this
			// manager's own leftover: it carries the manager's cNNNN name
			// AND holds nothing but an empty store) is deleted outright:
			// leaving it would strand it invisibly forever once later ids
			// exist, and removing it keeps id allocation deterministic
			// across kill-and-resume runs (Submit finds the id free
			// again). Anything else — operator dirs under the data root,
			// however empty — is not ours to touch; manager-named stray
			// data additionally keeps its id out of circulation.
			if _, ours := campaignID(e.Name()); ours && reusableDir(dir) {
				if err := os.RemoveAll(dir); err != nil {
					log.Printf("campaign: remove crash husk %s: %v", dir, err)
					advance()
				}
			} else {
				advance()
			}
			continue
		}
		advance()
		h.counter = &m.trials
		m.byID[h.id] = h
		m.order = append(m.order, h.id)
	}
	return nil
}

// campaignID parses a manager-allocated directory name ("c0042" -> 42).
func campaignID(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'c' {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// recoverHandle rebuilds one campaign from its directory. It returns
// (nil, nil) when dir holds no spec.json — the directory is not a
// campaign and is left alone.
//
// Classification: terminal meta states (done/failed/cancelled) are kept
// as recorded. Everything else — queued/running metas whose owner died,
// unreadable or absent metas — is classified from the store itself:
// complete grid -> done, anything less -> interrupted.
//
// A terminal meta whose progress record matches the compiled grid is
// recovered WITHOUT opening its store: state and progress come from the
// meta alone, and the store is opened lazily on first results/status
// access (handle.ensureStoreLocked). Boot cost therefore stops growing
// with terminal history — only live work (interrupted campaigns, old
// metas written before progress was recorded) replays trial data.
func recoverHandle(id, dir string) (*handle, error) {
	specBytes, err := os.ReadFile(filepath.Join(dir, specFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	spec, err := ParseSpec(specBytes)
	if err != nil {
		return nil, err
	}
	camp, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	meta, hasMeta, err := readMeta(dir)
	if err != nil {
		// The spec and trial data are intact; a damaged meta.json alone
		// must not orphan them. Fall back to the no-meta classification
		// below, which rebuilds state from store contents.
		log.Printf("campaign: %s: unreadable meta, reclassifying from store: %v", id, err)
		meta, hasMeta = Meta{}, false
	}
	if hasMeta && terminal(meta.State) && meta.ID == id && meta.Total == camp.Total() && meta.Total > 0 {
		done := make(chan struct{})
		close(done)
		h := &handle{
			id:       id,
			spec:     spec,
			camp:     camp,
			dir:      dir,
			metaDone: meta.Done,
			cancel:   func() {},
			done:     done,
			created:  meta.Created,
			state:    meta.State,
			started:  meta.Started,
			finished: meta.Finished,
		}
		if meta.Error != "" {
			h.err = errors.New(meta.Error)
		}
		return h, nil
	}
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}

	state := meta.State
	if !hasMeta || !terminal(state) {
		// Either no meta at all (pre-registry daemon), or a state no
		// goroutine can still own — queued, running, interrupted, or an
		// unknown value from a newer daemon. Classify from the store: a
		// complete grid is done (the daemon died after the last trial's
		// append but before the terminal meta write); anything less is
		// interrupted. done/failed/cancelled metas are kept as recorded —
		// the run goroutine persisted them before exiting.
		if st.Count() >= camp.Total() {
			state = StateDone
		} else {
			state = StateInterrupted
		}
	}

	created := meta.Created
	if created.IsZero() {
		// Best effort for pre-registry directories: the spec is written
		// exactly once, at submission.
		if fi, err := os.Stat(filepath.Join(dir, specFile)); err == nil {
			created = fi.ModTime()
		}
	}

	done := make(chan struct{})
	close(done) // no goroutine owns a recovered campaign until Resume
	h := &handle{
		id:       id,
		spec:     spec,
		camp:     camp,
		st:       st,
		dir:      dir,
		exec:     NewExecution(camp, st),
		cancel:   func() {},
		done:     done,
		created:  created,
		state:    state,
		started:  meta.Started,
		finished: meta.Finished,
	}
	if meta.Error != "" {
		h.err = errors.New(meta.Error)
	}
	// Persist the classification so meta.json always names the state the
	// daemon will report (and so pre-registry directories gain a meta).
	// Metas from before progress was recorded (Total 0) are upgraded too,
	// so the next boot recovers this campaign without opening its store.
	if !hasMeta || meta.State != state || meta.ID != id || meta.Total != camp.Total() {
		if err := h.saveMetaLocked(); err != nil {
			log.Printf("campaign: %s: persist recovered meta: %v", id, err)
		}
	}
	return h, nil
}
