package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"robustify/internal/dispatch"
	"robustify/internal/figures"
	"robustify/internal/harness"
	"robustify/internal/obs"
)

// Campaign is a compiled spec: the deterministic trial grid of a figure
// plan (or custom sweep) ready for execution.
type Campaign struct {
	Spec Spec
	Plan *figures.Plan
}

// Total is the number of trials in the full grid.
func (c *Campaign) Total() int { return c.Plan.Size() }

// unitTrials is the one grid-normalization rule, shared with the
// dispatch layer so coordinator and workers always linearize the same
// grid.
func unitTrials(u figures.Unit) int { return dispatch.TrialsPerCell(u.Sweep.Trials) }

// TableFromStore materializes the campaign's table from whatever the store
// currently holds: cells aggregate over their completed trials in
// trial-index order, empty cells are omitted. Once every trial is
// recorded, the result is byte-identical to an uninterrupted Plan.Build —
// same values folded by the same aggregators in the same order.
func (c *Campaign) TableFromStore(st *Store) *harness.Table {
	t := c.Plan.Skeleton
	t.Series = make([]harness.Series, len(c.Plan.Units))
	for i, u := range c.Plan.Units {
		agg, err := harness.AggregatorByName(u.Agg)
		if err != nil {
			agg = harness.Mean
		}
		trials := unitTrials(u)
		var pts []harness.Point
		for r, rate := range u.Sweep.Rates {
			xs := st.CellValues(i, r, trials)
			if len(xs) == 0 {
				continue
			}
			pts = append(pts, harness.Point{Rate: rate, RateIdx: r, Value: agg(xs)})
		}
		t.Series[i] = harness.Series{Name: u.Series, Points: pts}
	}
	return &t
}

// Progress is a point-in-time completion snapshot.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JSONFloat marshals like a float64 but encodes NaN and infinities as
// null, so live statistics of empty cells survive JSON encoding.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if v != v || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// CellStatus is the live view of one (series, rate) cell: completed-trial
// count plus streaming statistics (exact mean/min/max, P² median
// estimate). Final numbers come from TableFromStore, not from here.
type CellStatus struct {
	Rate   float64   `json:"rate"`
	Done   int       `json:"done"`
	Total  int       `json:"total"`
	Mean   JSONFloat `json:"mean"`
	Median JSONFloat `json:"median"`
	// MedianEstimated marks a median that has spilled from the exact
	// small-cell buffer to the P² streaming estimate, so mid-run JSON can
	// no longer promise agreement with the exact final table.
	MedianEstimated bool      `json:"median_estimated,omitempty"`
	Min             JSONFloat `json:"min"`
	Max             JSONFloat `json:"max"`
}

// UnitStatus is the live view of one series.
type UnitStatus struct {
	Series string       `json:"series"`
	Agg    string       `json:"agg"`
	Cells  []CellStatus `json:"cells"`
}

// Execution runs a campaign against a store, tracking live per-cell
// streaming statistics. It is safe to query (Progress, Status, Table)
// while Run is executing on another goroutine.
type Execution struct {
	camp *Campaign
	st   *Store
	// trials, if non-nil, counts freshly executed (non-cached) trials —
	// the manager points every execution at one daemon-wide counter for
	// the /metrics throughput numbers.
	trials *atomic.Int64

	// hub, if non-nil, receives diagnostics: per-trial telemetry records
	// (written beside the store, never into it), trial latency
	// observations, and trial-finish trace events. id labels them with
	// the owning campaign. Both stay nil for bare executions (robustbench
	// local runs, tests), which then behave exactly as before.
	hub *obs.Hub
	id  string

	// lat stashes each in-flight trial's wall-clock latency between the
	// instrumented trial function returning and the sink consuming the
	// result (the harness runs both on the same goroutine, so the stash
	// for a given seed is written before it is read).
	latMu sync.Mutex
	lat   map[uint64]time.Duration

	mu    sync.Mutex
	stats [][]*OnlineStats // [unit][rateIdx]
}

// SetHub attaches an observability hub; trial telemetry and latency
// histograms are labeled with the campaign id.
func (e *Execution) SetHub(h *obs.Hub, id string) {
	e.hub = h
	e.id = id
}

// MetricLabel names the spec's workload for latency histograms: the
// figure id or the custom workload name.
func (s Spec) MetricLabel() string {
	if s.Custom != nil {
		return s.Custom.Workload
	}
	return "fig:" + s.Figure
}

// stashLatency records a just-computed trial's latency until its sink
// runs; takeLatency removes and returns it.
func (e *Execution) stashLatency(seed uint64, d time.Duration) {
	e.latMu.Lock()
	if e.lat == nil {
		e.lat = make(map[uint64]time.Duration)
	}
	e.lat[seed] = d
	e.latMu.Unlock()
}

func (e *Execution) takeLatency(seed uint64) time.Duration {
	e.latMu.Lock()
	d := e.lat[seed]
	delete(e.lat, seed)
	e.latMu.Unlock()
	return d
}

// observeDispatched is observeTrial for results arriving from a worker
// fleet: no local latency or fault recorder exists for them.
func (e *Execution) observeDispatched(r dispatch.TrialResult) {
	if e.hub == nil {
		return
	}
	e.hub.AppendTrial(e.st.Dir(), obs.TrialRecord{
		Campaign: e.id,
		Unit:     e.camp.Spec.MetricLabel(),
		Series:   e.camp.Plan.Units[r.Unit].Series,
		RateIdx:  r.RateIdx, TrialIdx: r.TrialIdx,
		Rate: r.Rate, Seed: r.Seed,
		Value: obs.Float(r.Value),
	})
}

// observeTrial emits a trial's diagnostics — telemetry record, latency
// histogram sample, and trace event — after the trial was durably added
// to the store. It never touches the store itself.
func (e *Execution) observeTrial(unit int, t harness.Trial, d time.Duration) {
	if e.hub == nil {
		return
	}
	label := e.camp.Spec.MetricLabel()
	if d > 0 {
		e.hub.ObserveTrial(label, d)
	}
	rec := obs.TrialRecord{
		Campaign: e.id,
		Unit:     label,
		Series:   e.camp.Plan.Units[unit].Series,
		RateIdx:  t.RateIdx, TrialIdx: t.TrialIdx,
		Rate: t.Rate, Seed: t.Seed,
		Value:          obs.Float(t.Value),
		DurationMicros: d.Microseconds(),
	}
	if fr := e.hub.TakeFaults(t.Rate, t.Seed); fr != nil {
		s := fr.Summary()
		rec.Faults = &s
	}
	e.hub.AppendTrial(e.st.Dir(), rec)
	e.hub.Emit("trial.finish", e.id,
		e.camp.Plan.Units[unit].Series+" rate="+strconv.FormatFloat(t.Rate, 'g', -1, 64)+
			" trial="+strconv.Itoa(t.TrialIdx)+" dur="+d.String())
}

// noteTrial bumps the fresh-trial counter, if one is attached.
func (e *Execution) noteTrial() {
	if e.trials != nil {
		e.trials.Add(1)
	}
}

// NewExecution prepares a run, folding any trials already in the store
// into the live statistics (so a resumed campaign's status is complete).
func NewExecution(camp *Campaign, st *Store) *Execution {
	e := &Execution{camp: camp, st: st}
	e.stats = make([][]*OnlineStats, len(camp.Plan.Units))
	for i, u := range camp.Plan.Units {
		e.stats[i] = make([]*OnlineStats, len(u.Sweep.Rates))
		trials := unitTrials(u)
		for r := range u.Sweep.Rates {
			s := &OnlineStats{}
			for _, v := range st.CellValues(i, r, trials) {
				s.Add(v)
			}
			e.stats[i][r] = s
		}
	}
	return e
}

// Run executes every unit in plan order. Trials already in the store are
// served from it instead of re-executing (resume); every freshly executed
// trial is appended to the store before counting as progress, so an
// interrupt at any point loses no completed work. Cancelling ctx stops
// between trials and returns ctx.Err().
func (e *Execution) Run(ctx context.Context) error {
	for i, u := range e.camp.Plan.Units {
		unit, stats := i, e.stats[i]
		var sinkErr error
		var sinkMu sync.Mutex
		fn := u.Fn
		if e.hub != nil {
			// Wrap the trial function to time each fresh trial. The stash
			// is keyed by seed and consumed by the sink, which the harness
			// runs on the computing goroutine right after fn returns. The
			// wrapper changes no arithmetic: fn's value passes through
			// untouched, so results stay bit-identical with the hub on.
			inner := u.Fn
			fn = func(rate float64, seed uint64) float64 {
				start := time.Now()
				v := inner(rate, seed)
				e.stashLatency(seed, time.Since(start))
				return v
			}
		}
		hooks := harness.Hooks{
			Lookup: func(rateIdx, trial int) (float64, bool) {
				return e.st.Lookup(unit, rateIdx, trial)
			},
			Sink: func(t harness.Trial) {
				if t.Cached {
					return // already folded in (preloaded from the store)
				}
				added, err := e.st.Put(Record{
					Unit: unit, RateIdx: t.RateIdx, TrialIdx: t.TrialIdx,
					Rate: t.Rate, Seed: t.Seed, Value: t.Value,
					Series: e.camp.Plan.Units[unit].Series,
				})
				if err != nil {
					sinkMu.Lock()
					if sinkErr == nil {
						sinkErr = err
					}
					sinkMu.Unlock()
					return
				}
				if !added {
					return // a concurrent worker beat us to this key
				}
				e.noteTrial()
				e.mu.Lock()
				stats[t.RateIdx].Add(t.Value)
				e.mu.Unlock()
				e.observeTrial(unit, t, e.takeLatency(t.Seed))
			},
		}
		sweep := u.Sweep
		if e.camp.Spec.Workers > 0 {
			sweep.Workers = e.camp.Spec.Workers
		}
		agg, err := harness.AggregatorByName(u.Agg)
		if err != nil {
			return err
		}
		if _, err := sweep.RunHooked(ctx, fn, agg, hooks); err != nil {
			return err
		}
		if sinkErr != nil {
			return fmt.Errorf("campaign: record trial: %w", sinkErr)
		}
	}
	return nil
}

// Progress reports completed vs total trials.
func (e *Execution) Progress() Progress {
	return Progress{Done: e.st.Count(), Total: e.camp.Total()}
}

// Status reports the live per-cell statistics of every unit.
func (e *Execution) Status() []UnitStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]UnitStatus, len(e.camp.Plan.Units))
	for i, u := range e.camp.Plan.Units {
		us := UnitStatus{Series: u.Series, Agg: u.Agg}
		trials := unitTrials(u)
		for r, rate := range u.Sweep.Rates {
			s := e.stats[i][r]
			us.Cells = append(us.Cells, CellStatus{
				Rate: rate, Done: s.Count(), Total: trials,
				Mean: JSONFloat(s.Mean()), Median: JSONFloat(s.Median()),
				MedianEstimated: s.MedianEstimated(),
				Min:             JSONFloat(s.Min()), Max: JSONFloat(s.Max()),
			})
		}
		out[i] = us
	}
	return out
}

// Table materializes the current results table.
func (e *Execution) Table() *harness.Table {
	return e.camp.TableFromStore(e.st)
}
