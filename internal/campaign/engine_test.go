package campaign

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"robustify/internal/figures"
)

// runAll executes a spec to completion in a fresh store and returns the
// rendered table plus CSV bytes.
func runAll(t *testing.T, spec Spec) (string, string) {
	t.Helper()
	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	exec := NewExecution(camp, st)
	if err := exec.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	table := exec.Table()
	var text, csv bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatalf("render: %v", err)
	}
	if err := table.CSV(&csv); err != nil {
		t.Fatalf("csv: %v", err)
	}
	return text.String(), csv.String()
}

// TestResumeDeterminism is the campaign engine's core guarantee: a
// campaign cancelled mid-run and resumed from its store produces a final
// table byte-identical to an uninterrupted run with the same seed.
func TestResumeDeterminism(t *testing.T) {
	spec := Spec{Figure: "6.1", Seed: 11, Quick: true, Trials: 3, Workers: 2}
	wantText, wantCSV := runAll(t, spec)

	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Interrupt the first run partway: cancel once a third of the grid is
	// durable. In-flight trials may still land; resume must cope with any
	// completed subset.
	ctx, cancel := context.WithCancel(context.Background())
	exec := NewExecution(camp, st)
	threshold := camp.Total() / 3
	go func() {
		for exec.Progress().Done < threshold {
			runtime.Gosched()
		}
		cancel()
	}()
	if err := exec.Run(ctx); err == nil {
		t.Fatal("interrupted run returned nil error")
	}
	st.Close()
	partial, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	done := partial.Count()
	if done == 0 || done >= camp.Total() {
		t.Fatalf("interrupt landed at %d/%d trials; expected a strict subset", done, camp.Total())
	}

	// Resume from the store: only the missing trials execute.
	resumed := NewExecution(camp, partial)
	if err := resumed.Run(context.Background()); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if got := resumed.Progress(); got.Done != got.Total {
		t.Fatalf("resume incomplete: %+v", got)
	}
	table := resumed.Table()
	var text, csv bytes.Buffer
	if err := table.Render(&text); err != nil {
		t.Fatal(err)
	}
	if err := table.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	partial.Close()

	if text.String() != wantText {
		t.Errorf("resumed table differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", wantText, text.String())
	}
	if csv.String() != wantCSV {
		t.Errorf("resumed CSV differs from uninterrupted run")
	}
}

// TestCampaignMatchesEagerBuild pins the query layer to the reference
// execution: a campaign-run figure renders byte-identically to the
// figure's own Build.
func TestCampaignMatchesEagerBuild(t *testing.T) {
	cfg := figures.Config{Quick: true, Seed: 9, Trials: 2}
	var want bytes.Buffer
	if err := figures.Fig66(cfg).Render(&want); err != nil {
		t.Fatal(err)
	}
	got, _ := runAll(t, Spec{Figure: "6.6", Seed: 9, Quick: true, Trials: 2})
	if got != want.String() {
		t.Errorf("campaign table differs from eager build:\n--- eager ---\n%s--- campaign ---\n%s", want.String(), got)
	}
}

func TestMidRunTableAndStatus(t *testing.T) {
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.001, 0.5}},
		Trials: 4, Seed: 3,
	}
	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Seed the store with two of the eight trials by hand, as if a prior
	// run had been interrupted; the mid-run table must cover only cells
	// with data.
	u := camp.Plan.Units[0]
	for _, trial := range []int{0, 1} {
		if err := st.Append(Record{
			Unit: 0, RateIdx: 0, TrialIdx: trial,
			Rate: u.Sweep.Rates[0], Seed: u.Sweep.TrialSeed(0, trial), Value: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	exec := NewExecution(camp, st)
	if p := exec.Progress(); p.Done != 2 || p.Total != 8 {
		t.Errorf("progress = %+v, want 2/8", p)
	}
	table := exec.Table()
	if len(table.Series) != 1 {
		t.Fatalf("series = %d", len(table.Series))
	}
	if got := len(table.Series[0].Points); got != 1 {
		t.Errorf("mid-run table has %d points, want 1 (only the populated cell)", got)
	}
	status := exec.Status()
	if len(status) != 1 || len(status[0].Cells) != 2 {
		t.Fatalf("status shape: %+v", status)
	}
	c0 := status[0].Cells[0]
	if c0.Done != 2 || c0.Total != 4 || float64(c0.Mean) != 1 {
		t.Errorf("cell 0 status = %+v", c0)
	}
	if status[0].Cells[1].Done != 0 {
		t.Errorf("cell 1 should be empty: %+v", status[0].Cells[1])
	}
}

// TestMidRunTableAlignsByRate: with two series at different completion
// stages, the mid-run table must print each value against its own rate.
// TableFromStore skips empty cells, so before rows were aligned by rate
// value a lagging series' results were paired with the wrong rates.
func TestMidRunTableAlignsByRate(t *testing.T) {
	spec := Spec{Figure: "6.1", Quick: true, Trials: 1, Seed: 2}
	camp, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Plan.Units) < 2 {
		t.Fatalf("figure 6.1 has %d units; test needs 2+", len(camp.Plan.Units))
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rates := camp.Plan.Units[0].Sweep.Rates
	// Unit 0 complete; unit 1 holds only its last cell (an in-flight series
	// whose early cells raced ahead would look the same).
	for r, rate := range rates {
		if err := st.Append(Record{Unit: 0, RateIdx: r, TrialIdx: 0, Rate: rate, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	last := len(rates) - 1
	if err := st.Append(Record{Unit: 1, RateIdx: last, TrialIdx: 0, Rate: rates[last], Value: 2}); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := camp.TableFromStore(st).CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != len(rates)+1 {
		t.Fatalf("csv rows = %d, want %d:\n%s", len(lines), len(rates)+1, csv.String())
	}
	for i, line := range lines[1:] {
		cells := strings.Split(line, ",")
		got := cells[2]
		if i == last && got != "2" {
			t.Errorf("row %s: unit-1 value = %q, want 2 on its own rate's row", cells[0], got)
		}
		if i != last && got != "" {
			t.Errorf("row %s: unit-1 value = %q, want empty (cell has no data)", cells[0], got)
		}
	}
}

func TestCustomWorkloadCampaign(t *testing.T) {
	text, csv := runAll(t, Spec{
		Custom: &CustomSweep{Workload: "sort/robust", Rates: []float64{0.05}, Iters: 200},
		Trials: 2, Seed: 5,
	})
	if text == "" || csv == "" {
		t.Fatal("empty output")
	}
	// Same spec, fresh store: identical bytes.
	text2, csv2 := runAll(t, Spec{
		Custom: &CustomSweep{Workload: "sort/robust", Rates: []float64{0.05}, Iters: 200},
		Trials: 2, Seed: 5,
	})
	if text != text2 || csv != csv2 {
		t.Error("custom workload campaign is not deterministic")
	}
}
