package campaign

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"robustify/internal/fpu/faultmodel"
	"robustify/internal/obs"
)

// runCampaignStore runs one quick campaign, optionally with the full
// observability hub attached (lifecycle events, per-trial telemetry, and
// the fault-placement observer factory), and returns the raw bytes of its
// trial store plus the campaign directory.
func runCampaignStore(t *testing.T, withHub bool) ([]byte, string) {
	t.Helper()
	root := t.TempDir()
	m := newManager(t, root, 1)
	defer m.Close()
	if withHub {
		hub := obs.NewHub()
		t.Cleanup(func() { hub.Close() })
		m.SetHub(hub)
		prev := faultmodel.SetUnitObserver(hub.Observer)
		t.Cleanup(func() { faultmodel.SetUnitObserver(prev) })
	}
	id, err := m.Submit(quickSpec(0.5, 7, 25))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, id)
	b, err := os.ReadFile(filepath.Join(dir, storeFile))
	if err != nil {
		t.Fatal(err)
	}
	return b, dir
}

// TestTelemetryDoesNotPerturbStore is the determinism acceptance test for
// the observability layer: running the identical campaign with the flight
// recorder fully attached (hub, telemetry sidecar, fault observer) and
// with it absent must produce bit-identical trial stores. Telemetry is
// diagnostics beside the artifact stream, never part of it.
func TestTelemetryDoesNotPerturbStore(t *testing.T) {
	plain, _ := runCampaignStore(t, false)
	observed, dir := runCampaignStore(t, true)
	if !bytes.Equal(plain, observed) {
		t.Errorf("trial store differs with telemetry attached:\n--- plain ---\n%s--- observed ---\n%s", plain, observed)
	}

	// The sidecar exists, holds one record per trial, and at rate 0.5 the
	// fault-placement summaries are populated.
	b, err := os.ReadFile(filepath.Join(dir, obs.TelemetryFile))
	if err != nil {
		t.Fatalf("telemetry sidecar missing: %v", err)
	}
	var trials, withFaults int
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var env struct {
			Kind string `json:"kind"`
			Rec  struct {
				Faults *obs.FaultSummary `json:"faults"`
			} `json:"rec"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("telemetry line does not parse: %v\n%s", err, line)
		}
		if env.Kind != "trial" {
			continue
		}
		trials++
		if env.Rec.Faults != nil && env.Rec.Faults.Total > 0 {
			withFaults++
		}
	}
	if trials != 25 {
		t.Errorf("telemetry has %d trial records, want 25", trials)
	}
	if withFaults == 0 {
		t.Error("no trial carried a fault-placement summary at rate 0.5")
	}
}

// TestMetricsConcurrentScrapes hammers /metrics from several goroutines
// while a campaign is running. The handler must be stateless per scrape:
// under -race this pins the satellite fix that removed the shared
// mutable trials-per-second scrape state.
func TestMetricsConcurrentScrapes(t *testing.T) {
	srv, m := newTestServer(t, 2)
	hub := obs.NewHub()
	t.Cleanup(func() { hub.Close() })
	m.SetHub(hub)
	m.AddMetrics(hub.WriteMetrics)

	var resp map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns",
		`{"custom":{"workload":"sort/robust","rates":[0.01],"iters":20000},"trials":30,"seed":5,"workers":1}`,
		http.StatusAccepted, &resp)

	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				r, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					bad.Add(1)
					return
				}
				body := make([]byte, 1<<16)
				n, _ := r.Body.Read(body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK || !bytes.Contains(body[:n], []byte("robustd_trials_completed_total")) {
					bad.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d concurrent scrapes failed or returned malformed output", n)
	}
	waitState(t, srv.URL, resp["id"], StateDone)

	// The scrape after completion reports the full trial count — the
	// monotonic counter scrapers derive rates from.
	_, body := fetch(t, srv.URL+"/metrics")
	if !strings.Contains(body, "robustd_trials_completed_total 30") {
		t.Errorf("final scrape missing completed count:\n%s", body)
	}
	if !strings.Contains(body, "robustd_trial_duration_seconds_count") {
		t.Errorf("hub latency histogram missing from /metrics:\n%s", body)
	}
}
