package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen feeds arbitrary bytes to the store loader as a pre-existing
// trials.jsonl and checks the durability contract end to end:
//
//   - Open never fails on corrupt content — torn, oversized, and garbage
//     lines are dropped, never fatal (a single bad line must not make a
//     campaign unresumable);
//   - the store stays writable after loading corruption, and a record
//     Put after Open survives a reopen — in particular, appending after a
//     torn trailing line must not glue the new record onto the torn bytes;
//   - loads are idempotent: reopening sees exactly what the writer saw.
func FuzzStoreOpen(f *testing.F) {
	valid, err := json.Marshal(Record{Unit: 1, RateIdx: 2, TrialIdx: 3, Rate: 0.5, Seed: 42, Value: 1.5})
	if err != nil {
		f.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), maxLineBytes+16)
	f.Add([]byte{})
	f.Add(append(append([]byte{}, valid...), '\n'))
	f.Add(valid[:len(valid)/2])                                           // torn trailing line, no newline
	f.Add(append(append(append([]byte{}, valid...), '\n'), valid[:4]...)) // good line then torn tail
	f.Add(append(append([]byte{}, big...), '\n'))                         // oversized line
	f.Add(append(append(append([]byte{}, big...), '\n'), append(append([]byte{}, valid...), '\n')...))
	f.Add([]byte("{\"u\":0,\"r\":0,\"t\":0,\"v\":2}\nnot json at all\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, storeFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("Open must tolerate corrupt store content, got: %v", err)
		}
		rec := Record{Unit: 1 << 20, RateIdx: 7, TrialIdx: 9, Rate: 0.25, Seed: 11, Value: 2.25}
		added, err := st.Put(rec)
		if err != nil {
			t.Fatalf("Put after corrupt load: %v", err)
		}
		n := st.Count()
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		st2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer st2.Close()
		if got := st2.Count(); got != n {
			t.Fatalf("reopen lost records: had %d, reloaded %d", n, got)
		}
		v, ok := st2.Lookup(rec.Unit, rec.RateIdx, rec.TrialIdx)
		if !ok {
			t.Fatalf("record appended after corrupt load did not survive reopen")
		}
		// added=false means the fuzz input already contained this trial
		// key; the store keeps the first durable value by design.
		if added && v != rec.Value {
			t.Fatalf("appended record value changed across reopen: got %v, want %v", v, rec.Value)
		}
	})
}
