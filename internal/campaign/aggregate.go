package campaign

import (
	"math"
	"sort"
)

// OnlineStats accumulates one cell's trial values in O(1) memory: count,
// Welford mean/variance, min/max, and a median that is exact up to
// exactMedianCap values (a small bounded buffer) before spilling to the
// P² streaming estimate. It powers live mid-run status; final tables are
// materialized exactly from the store instead (TableFromStore), so the
// estimates here never leak into published results — but most cells hold
// well under exactMedianCap trials, so for them mid-run status agrees
// exactly with the final table instead of silently drifting.
type OnlineStats struct {
	n        int
	mean, m2 float64
	min, max float64
	med      p2Quantile
	// exact holds every value while n <= exactMedianCap; past the cap it
	// is released and Median falls back to the P² estimate.
	exact []float64
}

// exactMedianCap bounds the exact-median buffer. Cells at or under this
// many trials report their true median mid-run; larger cells spill to
// the P² estimate and are flagged MedianEstimated.
const exactMedianCap = 64

// Add folds one value into the stats.
func (o *OnlineStats) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
		o.med = newP2(0.5)
	}
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if x < o.min {
		o.min = x
	}
	if x > o.max {
		o.max = x
	}
	o.med.add(x)
	if o.n <= exactMedianCap {
		o.exact = append(o.exact, x)
	} else {
		o.exact = nil // spilled: the buffer is bounded, free it
	}
}

// Count returns how many values were folded in.
func (o *OnlineStats) Count() int { return o.n }

// Mean returns the running mean (NaN when empty).
func (o *OnlineStats) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Var returns the running sample variance (NaN below two values).
func (o *OnlineStats) Var() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// Min and Max return the running extremes (NaN when empty).
func (o *OnlineStats) Min() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.min
}

func (o *OnlineStats) Max() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.max
}

// Median returns the running median: exact while at most exactMedianCap
// values have been folded in, then the P² streaming estimate (see
// MedianEstimated).
func (o *OnlineStats) Median() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	if o.exact != nil {
		c := append([]float64(nil), o.exact...)
		sort.Float64s(c)
		if len(c)%2 == 1 {
			return c[len(c)/2]
		}
		return 0.5 * (c[len(c)/2-1] + c[len(c)/2])
	}
	return o.med.value()
}

// MedianEstimated reports whether Median has spilled to the P² estimate
// (more than exactMedianCap values) and may disagree with the exact
// median of the underlying trials.
func (o *OnlineStats) MedianEstimated() bool {
	return o.n > exactMedianCap
}

// p2Quantile is the Jain & Chlamtac P² streaming quantile estimator: five
// markers tracking the target quantile with parabolic interpolation.
type p2Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired positions
	inc  [5]float64 // desired-position increments
}

func newP2(p float64) p2Quantile {
	return p2Quantile{
		p:    p,
		want: [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		inc:  [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

func (e *p2Quantile) add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	// Locate the cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0], k = x, 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4], k = x, 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			q := e.parabolic(i, sign)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
	e.n++
}

func (e *p2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

func (e *p2Quantile) value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		// Exact small-sample median.
		c := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(c)
		if e.n%2 == 1 {
			return c[e.n/2]
		}
		return 0.5 * (c[e.n/2-1] + c[e.n/2])
	}
	return e.q[2]
}
