package campaign

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"robustify/internal/dispatch"
)

// TestRecoverTerminalLazyStore pins the lazy-recovery satellite: a
// terminal campaign whose meta carries progress is recovered without
// opening its store. The proof is observational — the store file is
// sabotaged after the run, and recovery still lists the campaign with
// accurate state and progress; only a results access (which opens the
// store lazily) hits the damage.
func TestRecoverTerminalLazyStore(t *testing.T) {
	root := t.TempDir()
	m1 := newManager(t, root, 1)
	id, err := m1.Submit(quickSpec(0.05, 7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Wait(id); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Replace trials.jsonl with a directory: any store open now fails, so
	// a recovery that still replayed terminal stores would lose the
	// campaign (or fail), while lazy recovery must not notice.
	storePath := filepath.Join(root, id, storeFile)
	if err := os.Remove(storePath); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(storePath, "x"), 0o755); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, root, 1)
	defer m2.Close()
	st, err := m2.Get(id)
	if err != nil {
		t.Fatalf("terminal campaign not recovered lazily: %v", err)
	}
	if st.State != StateDone || st.Progress.Done != 3 || st.Progress.Total != 3 {
		t.Errorf("lazy recovered = %s %+v, want done 3/3 from meta alone", st.State, st.Progress)
	}
	if _, err := m2.Table(id); err == nil {
		t.Error("results over the sabotaged store succeeded; store was not opened lazily")
	}
}

// TestRecoverTerminalLazyServesResults: the lazy path must be invisible
// when the store is intact — first results access opens it and serves
// the same bytes as before the restart, and per-cell status works too.
func TestRecoverTerminalLazyServesResults(t *testing.T) {
	root := t.TempDir()
	spec := quickSpec(0.2, 3, 4)
	m1 := newManager(t, root, 1)
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Wait(id); err != nil {
		t.Fatal(err)
	}
	table, err := m1.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := table.Render(&want); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2 := newManager(t, root, 1)
	defer m2.Close()
	table, err = m2.Table(id) // opens the store on first access
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := table.Render(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("lazily opened results differ:\n--- want ---\n%s--- got ---\n%s", want.String(), got.String())
	}
	st, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Units) == 0 || len(st.Units[0].Cells) == 0 || st.Units[0].Cells[0].Done != 4 {
		t.Errorf("per-cell status after lazy open = %+v", st.Units)
	}
}

// TestRecoverOldMetaUpgraded: metas written before progress was recorded
// (no done/total) recover eagerly — progress from the store, as always —
// and the meta is upgraded in place so the next boot takes the lazy path.
func TestRecoverOldMetaUpgraded(t *testing.T) {
	spec := quickSpec(0.05, 5, 3)
	root := t.TempDir()
	now := time.Now()
	seedCampaignDir(t, filepath.Join(root, "c0001"), spec, -1, &Meta{
		ID: "c0001", State: StateDone, Created: now, Finished: &now})

	m := newManager(t, root, 1)
	st, err := m.Get("c0001")
	if err != nil || st.State != StateDone || st.Progress.Done != 3 {
		t.Fatalf("old-format recovery = %+v (err=%v), want done 3/3", st, err)
	}
	m.Close()
	meta, ok, err := readMeta(filepath.Join(root, "c0001"))
	if err != nil || !ok || meta.Done != 3 || meta.Total != 3 {
		t.Errorf("meta after recovery = %+v ok=%v err=%v, want done/total 3/3 recorded", meta, ok, err)
	}
}

// TestShutdownTimeout: Shutdown must give up on a wedged campaign after
// the deadline instead of hanging the daemon forever. The wedged run is
// synthesized directly — a handle whose done channel never closes, as a
// trial stuck in an endless numeric loop would leave it.
func TestShutdownTimeout(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	for _, id := range []string{"w1", "w2"} { // two, to cover the post-deadline poll loop
		h := &handle{
			id:     id,
			dir:    m.root,
			cancel: func() {},
			done:   make(chan struct{}), // never closes
			state:  StateRunning,
		}
		m.mu.Lock()
		m.byID[id] = h
		m.order = append(m.order, id)
		m.mu.Unlock()
	}
	start := time.Now()
	if m.Shutdown(50 * time.Millisecond) {
		t.Error("Shutdown reported clean with wedged campaigns")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Shutdown took %s with a 50ms deadline", elapsed)
	}
	// Idempotent: a later Close must return immediately, not re-wait.
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close after timed-out Shutdown hung")
	}
}

func TestShutdownCleanReleasesRoot(t *testing.T) {
	root := t.TempDir()
	m := newManager(t, root, 1)
	id, err := m.Submit(quickSpec(0.01, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	if !m.Shutdown(5 * time.Second) {
		t.Fatal("clean shutdown reported timeout")
	}
	m2, err := NewManager(root, 1) // flock released
	if err != nil {
		t.Fatalf("root still held after clean shutdown: %v", err)
	}
	m2.Close()
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	var resp map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns",
		`{"custom":{"workload":"sort/base","rates":[0.01]},"trials":3,"seed":1}`,
		http.StatusAccepted, &resp)
	waitState(t, srv.URL, resp["id"], StateDone)

	code, body := fetch(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	for _, line := range []string{
		`robustd_campaigns{state="done"} 1`,
		`robustd_campaigns{state="running"} 0`,
		"robustd_trials_completed_total 3",
		"robustd_store_bytes",
		"robustd_dispatch_enabled 0",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q:\n%s", line, body)
		}
	}
	// The old trials-per-second gauge kept mutable scrape state and
	// corrupted under concurrent scrapers; it must stay gone (scrapers
	// compute rates from the monotonic counter instead).
	if strings.Contains(body, "robustd_trials_per_second") {
		t.Errorf("/metrics still exports the stateful trials-per-second gauge:\n%s", body)
	}
}

func TestWorkerRoutesRequireDispatcher(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	for _, path := range []string{"/workers/register", "/workers/lease", "/workers/report"} {
		r, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s without dispatcher = %d, want 503", path, r.StatusCode)
		}
	}
	code, _ := fetch(t, srv.URL+"/workers")
	if code != http.StatusServiceUnavailable {
		t.Errorf("GET /workers without dispatcher = %d, want 503", code)
	}
}

func TestWorkerRoutesWithDispatcher(t *testing.T) {
	m := newManager(t, t.TempDir(), 1)
	m.SetDispatcher(dispatch.New(dispatch.Options{LeaseTTL: time.Minute, WorkersExpected: 2}))
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})

	var reg dispatch.RegisterResponse
	doJSON(t, "POST", srv.URL+"/workers/register", `{"name":"test"}`, http.StatusOK, &reg)
	if reg.Worker == "" || reg.LeaseTTL != time.Minute {
		t.Fatalf("register = %+v", reg)
	}
	// No campaigns: leasing answers 204.
	r, err := http.Post(srv.URL+"/workers/lease", "application/json",
		strings.NewReader(`{"worker":"`+reg.Worker+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNoContent {
		t.Errorf("lease with no work = %d, want 204", r.StatusCode)
	}
	// Unknown worker ids answer 404 (the re-register signal).
	doJSON(t, "POST", srv.URL+"/workers/lease", `{"worker":"w9999"}`, http.StatusNotFound, nil)
	doJSON(t, "POST", srv.URL+"/workers/report", `{"worker":"w9999"}`, http.StatusNotFound, nil)
	// Malformed bodies are rejected.
	doJSON(t, "POST", srv.URL+"/workers/register", `{nope`, http.StatusBadRequest, nil)

	var workers []dispatch.WorkerStatus
	doJSON(t, "GET", srv.URL+"/workers", "", http.StatusOK, &workers)
	if len(workers) != 1 || workers[0].ID != reg.Worker || !workers[0].Active {
		t.Errorf("/workers = %+v", workers)
	}

	code, body := fetch(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, line := range []string{
		"robustd_dispatch_enabled 1",
		`robustd_workers{kind="registered"} 1`,
		`robustd_workers{kind="expected"} 2`,
		"robustd_leases_outstanding 0",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q:\n%s", line, body)
		}
	}
}
