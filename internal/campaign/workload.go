package campaign

import (
	"fmt"
	"math"
	"math/rand"

	"robustify/internal/apps/eigen"
	"robustify/internal/apps/robsort"
	"robustify/internal/figures"
	"robustify/internal/fpu"
	"robustify/internal/harness"
	"robustify/internal/linalg"
	"robustify/internal/solver"
)

// Workload is a named trial function available to custom sweeps.
type Workload struct {
	Name string
	Desc string
	// DefaultIters scales the workload when the spec leaves Iters at 0.
	DefaultIters int
	// Build returns the trial function. Every per-trial random choice
	// derives from the trial seed, so the workload is replayable.
	Build func(iters int) harness.TrialFunc
}

// Workloads lists the registered custom-sweep workloads.
func Workloads() []Workload {
	sortData := func(seed uint64) []float64 {
		rng := rand.New(rand.NewSource(int64(seed)))
		data := make([]float64, 5)
		for i, p := range rng.Perm(5) {
			data[i] = float64(p+1) * 2.5
		}
		return data
	}
	return []Workload{
		{
			Name: "sort/base", Desc: "quicksort success rate (5-element arrays)",
			DefaultIters: 0,
			Build: func(int) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					data := sortData(seed)
					u := fpu.New(fpu.WithFaultRate(rate, seed))
					return b2f(robsort.Success(robsort.Baseline(u, data), data))
				}
			},
		},
		{
			Name: "sort/robust", Desc: "robust SGD sort success rate (SGD+AS,SQS with tail averaging)",
			DefaultIters: 10000,
			Build: func(iters int) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					data := sortData(seed)
					u := fpu.New(fpu.WithFaultRate(rate, seed))
					out, _, err := robsort.Robust(u, data, robsort.Options{
						Iters:      iters,
						Schedule:   solver.Sqrt(0.5 / 5),
						Aggressive: solver.DefaultAggressive(),
						Tail:       iters / 5,
					})
					if err != nil {
						return 0
					}
					return b2f(robsort.Success(out, data))
				}
			},
		},
		{
			Name: "eigen/power", Desc: "power-iteration dominant-eigenvalue relative error (n=6)",
			DefaultIters: 300,
			Build: func(iters int) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					m, want := eigenInstance(seed)
					u := fpu.New(fpu.WithFaultRate(rate, seed))
					lambda, _ := eigen.PowerIteration(u, m, iters)
					return eigenScore(lambda, want)
				}
			},
		},
		{
			Name: "eigen/robust", Desc: "robust Rayleigh-ascent dominant-eigenvalue relative error (n=6)",
			DefaultIters: 2000,
			Build: func(iters int) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					m, want := eigenInstance(seed)
					u := fpu.New(fpu.WithFaultRate(rate, seed))
					lambda, _, err := eigen.TopEigen(u, m, eigen.Options{Iters: iters})
					if err != nil {
						return 1e6
					}
					return eigenScore(lambda, want)
				}
			},
		},
	}
}

func workloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("campaign: unknown workload %q", name)
}

// customPlan compiles a custom sweep to a single-unit figure plan so the
// engine treats figures and custom sweeps identically.
func customPlan(spec Spec) (*figures.Plan, error) {
	w, err := workloadByName(spec.Custom.Workload)
	if err != nil {
		return nil, err
	}
	iters := spec.Custom.Iters
	if iters <= 0 {
		iters = w.DefaultIters
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 10
	}
	agg := spec.Custom.Agg
	if agg == "" {
		agg = "mean"
	}
	return &figures.Plan{
		ID: "custom:" + w.Name,
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("custom sweep: %s (%s)", w.Name, w.Desc),
			YLabel: w.Desc,
		},
		Units: []figures.Unit{{
			Series: w.Name,
			Agg:    agg,
			Sweep: harness.Sweep{
				Rates:   append([]float64(nil), spec.Custom.Rates...),
				Trials:  trials,
				Seed:    spec.Seed,
				Workers: spec.Workers,
			},
			Fn: w.Build(iters),
		}},
	}, nil
}

// eigenInstance derives a per-trial symmetric matrix whose dominant
// eigenvalue is n by construction (mirrors figures.Eigenpairs).
func eigenInstance(seed uint64) (*linalg.Dense, float64) {
	const n = 6
	rng := rand.New(rand.NewSource(int64(seed)))
	return eigen.RandomSymmetric(rng, n), float64(n)
}

func eigenScore(lambda, want float64) float64 {
	if lambda != lambda || math.IsInf(lambda, 0) {
		return 1e6
	}
	v := math.Abs(lambda-want) / want
	if v != v || v > 1e6 {
		return 1e6
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
