package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"robustify/internal/apps/apsp"
	"robustify/internal/apps/eigen"
	"robustify/internal/apps/leastsq"
	"robustify/internal/apps/robsort"
	"robustify/internal/apps/svm"
	"robustify/internal/core"
	"robustify/internal/figures"
	"robustify/internal/fpu"
	"robustify/internal/harness"
	"robustify/internal/linalg"
	"robustify/internal/robust"
	"robustify/internal/solver"
)

// Knob is one declared tunable parameter of a workload: the paper's
// "knobs" — penalty weight, step-schedule constants, iteration budgets —
// that decide how much fault tolerance the robustified form actually
// delivers. A knob carries its default, validity bounds, and the search
// grid the tune subsystem walks.
type Knob struct {
	Name    string  `json:"name"`
	Desc    string  `json:"desc"`
	Default float64 `json:"default"`
	// Min and Max bound accepted values (inclusive); both zero means
	// unbounded.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Grid is the declared candidate set for parameter search, in
	// ascending order; it always contains Default.
	Grid []float64 `json:"grid,omitempty"`
}

// UnitFactory builds one trial's simulated FPU for a fault rate and trial
// seed. The campaign compiler derives it from the spec's fault model (see
// faultmodel.Spec.Unit), so workloads stay model-agnostic: they ask the
// factory for a unit and never touch injector construction themselves.
type UnitFactory func(rate float64, seed uint64) *fpu.Unit

// Workload is a named trial function available to custom sweeps.
type Workload struct {
	Name string
	Desc string
	// DefaultIters scales the workload when the spec leaves Iters at 0.
	DefaultIters int
	// Maximize reports the metric direction: true for success rates and
	// accuracies, false for error metrics. Parameter search uses it to
	// rank candidate configurations.
	Maximize bool
	// Knobs declares the workload's tunable parameters. Sweeps may
	// override them via CustomSweep.Params; the tune subsystem searches
	// their grids.
	Knobs []Knob
	// Build returns the trial function for the given iteration budget,
	// fully resolved knob values (every declared knob present), and the
	// spec's unit factory. Every per-trial random choice derives from the
	// trial seed, so the workload is replayable — on resume and on remote
	// workers alike.
	Build func(iters int, params map[string]float64, unit UnitFactory) harness.TrialFunc
}

// Workloads lists the registered custom-sweep workloads.
func Workloads() []Workload {
	sortData := func(seed uint64) []float64 {
		rng := rand.New(rand.NewSource(int64(seed)))
		data := make([]float64, 5)
		for i, p := range rng.Perm(5) {
			data[i] = float64(p+1) * 2.5
		}
		return data
	}
	return []Workload{
		{
			Name: "sort/base", Desc: "quicksort success rate (5-element arrays)",
			DefaultIters: 0,
			Maximize:     true,
			Build: func(_ int, _ map[string]float64, unit UnitFactory) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					data := sortData(seed)
					u := unit(rate, seed)
					return b2f(robsort.Success(robsort.Baseline(u, data), data))
				}
			},
		},
		{
			Name: "sort/robust", Desc: "robust SGD sort success rate (SGD+AS,SQS with tail averaging)",
			DefaultIters: 10000,
			Maximize:     true,
			Build: func(iters int, _ map[string]float64, unit UnitFactory) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					data := sortData(seed)
					u := unit(rate, seed)
					out, _, err := robsort.Robust(u, data, robsort.Options{
						Iters:      iters,
						Schedule:   solver.Sqrt(0.5 / 5),
						Aggressive: solver.DefaultAggressive(),
						Tail:       iters / 5,
					})
					if err != nil {
						return 0
					}
					return b2f(robsort.Success(out, data))
				}
			},
		},
		{
			Name: "eigen/power", Desc: "power-iteration dominant-eigenvalue relative error (n=6)",
			DefaultIters: 300,
			Build: func(iters int, _ map[string]float64, unit UnitFactory) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					m, want := eigenInstance(seed)
					u := unit(rate, seed)
					lambda, _ := eigen.PowerIteration(u, m, iters)
					return eigenScore(lambda, want)
				}
			},
		},
		{
			Name: "eigen/robust", Desc: "robust Rayleigh-ascent dominant-eigenvalue relative error (n=6)",
			DefaultIters: 2000,
			Build: func(iters int, _ map[string]float64, unit UnitFactory) harness.TrialFunc {
				return func(rate float64, seed uint64) float64 {
					m, want := eigenInstance(seed)
					u := unit(rate, seed)
					lambda, _, err := eigen.TopEigen(u, m, eigen.Options{Iters: iters})
					if err != nil {
						return 1e6
					}
					return eigenScore(lambda, want)
				}
			},
		},
		{
			Name: "lp/apsp", Desc: "penalty-LP all-pairs shortest paths mean relative error (n=5)",
			DefaultIters: 2000,
			Knobs: append([]Knob{
				{
					Name: "mu", Desc: "exact-penalty weight (core/lp PenaltyLP)",
					Default: 8, Min: 1e-6, Max: 1e6,
					Grid: []float64{1, 2, 4, 8, 16, 32},
				},
			}, lossKnobs("legacy l1 exact penalty")...),
			Build: func(iters int, params map[string]float64, unit UnitFactory) harness.TrialFunc {
				mu := params["mu"]
				lossIdx, lossShape := lossSelector(params)
				return func(rate float64, seed uint64) float64 {
					rng := rand.New(rand.NewSource(int64(seed)))
					inst := apsp.RandomInstance(rng, 5, 5, 5)
					u := unit(rate, seed)
					loss, err := lossForTrial(lossIdx, lossShape)
					if err != nil {
						return 1e6
					}
					d, _, err := inst.Robust(u, apsp.Options{
						Iters: iters, Kind: core.PenaltyAbs, Mu: mu, Tail: iters / 5,
						Loss: loss,
					})
					if err != nil {
						return 1e6
					}
					return capErr(inst.MeanRelErr(d))
				}
			},
		},
		{
			Name: "leastsq/sgd", Desc: "robust SGD least squares relative error (A 30x6)",
			DefaultIters: 400,
			Knobs: append([]Knob{
				{
					Name: "boost", Desc: "LS schedule constant: eta0 = boost/lipschitz (1/t decay)",
					Default: 8, Min: 1e-3, Max: 1e3,
					Grid: []float64{1, 2, 4, 8, 16, 32},
				},
			}, lossKnobs("quadratic objective, bit-identical to the pre-loss solver")...),
			Build: func(iters int, params map[string]float64, unit UnitFactory) harness.TrialFunc {
				boost := params["boost"]
				lossIdx, lossShape := lossSelector(params)
				return func(rate float64, seed uint64) float64 {
					inst, err := lsqInstance(seed)
					if err != nil {
						return 1e6
					}
					u := unit(rate, seed)
					loss, err := lossForTrial(lossIdx, lossShape)
					if err != nil {
						return 1e6
					}
					x, _, err := inst.SolveSGD(u, leastsq.SGDOptions{
						Iters:    iters,
						Schedule: inst.LinearSchedule(boost),
						Loss:     loss,
					})
					if err != nil {
						return 1e6
					}
					return capErr(inst.RelErr(x))
				}
			},
		},
		{
			Name: "leastsq/cg", Desc: "conjugate gradient least squares relative error (A 30x6); the budget knob sets CG iterations (Iters is unused)",
			DefaultIters: 0,
			Knobs: append([]Knob{
				{
					Name: "budget", Desc: "CG iteration budget (solver/cg)",
					Default: 10, Min: 1, Max: 1000,
					Grid: []float64{2, 4, 6, 10, 15, 20},
				},
				{
					Name: "restart", Desc: "reset the CG direction every N iterations (0 = off)",
					Default: 0, Min: 0, Max: 1000,
					Grid: []float64{0, 2, 5},
				},
				{
					Name: "outer", Desc: "IRLS reweighting rounds (used when loss > 0)",
					Default: 4, Min: 1, Max: 100,
					Grid: []float64{1, 2, 4, 8},
				},
			}, lossKnobs("plain CG on the normal equations, bit-identical to the pre-loss solver")...),
			Build: func(_ int, params map[string]float64, unit UnitFactory) harness.TrialFunc {
				budget := intParam(params, "budget")
				restart := intParam(params, "restart")
				outer := intParam(params, "outer")
				lossIdx, lossShape := lossSelector(params)
				return func(rate float64, seed uint64) float64 {
					inst, err := lsqInstance(seed)
					if err != nil {
						return 1e6
					}
					u := unit(rate, seed)
					var x []float64
					if lossIdx == 0 {
						x, _, err = inst.SolveCG(u, budget, restart)
					} else {
						var loss robust.Robustifier
						loss, err = lossForTrial(lossIdx, lossShape)
						if err != nil {
							return 1e6
						}
						x, _, err = inst.SolveIRLS(u, loss, outer, budget, restart)
					}
					if err != nil {
						return 1e6
					}
					return capErr(inst.RelErr(x))
				}
			},
		},
		{
			Name: "svm/robust", Desc: "robust Pegasos SVM held-out accuracy (60 train / 100 test, d=6)",
			DefaultIters: 500,
			Maximize:     true,
			Knobs: append([]Knob{
				{
					Name: "lambda", Desc: "hinge-loss regularization weight",
					Default: 0.01, Min: 1e-6, Max: 10,
					Grid: []float64{0.001, 0.003, 0.01, 0.03, 0.1},
				},
				{
					Name: "step", Desc: "step-schedule scale: eta_t = step/(lambda*t)",
					Default: 1, Min: 1e-3, Max: 1e3,
					Grid: []float64{0.25, 0.5, 1, 2, 4},
				},
			}, lossKnobs("plain hinge, bit-identical to the pre-loss trainer")...),
			Build: func(iters int, params map[string]float64, unit UnitFactory) harness.TrialFunc {
				lambda, step := params["lambda"], params["step"]
				lossIdx, lossShape := lossSelector(params)
				return func(rate float64, seed uint64) float64 {
					rng := rand.New(rand.NewSource(int64(seed)))
					data := svm.TwoGaussians(rng, 60, 100, 6, 2.0)
					u := unit(rate, seed)
					loss, err := lossForTrial(lossIdx, lossShape)
					if err != nil {
						return 0
					}
					w, _, err := svm.Train(u, data, svm.Options{
						Iters:    iters,
						Lambda:   lambda,
						Schedule: solver.Linear(step / lambda),
						Loss:     loss,
					})
					if err != nil {
						return 0
					}
					return data.Accuracy(w)
				}
			},
		},
	}
}

// WorkloadByName resolves a registered workload; the tune layer shares
// this lookup.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("campaign: unknown workload %q", name)
}

// DefaultParams returns every declared knob at its default value.
func (w Workload) DefaultParams() map[string]float64 {
	if len(w.Knobs) == 0 {
		return nil
	}
	p := make(map[string]float64, len(w.Knobs))
	for _, k := range w.Knobs {
		p[k.Name] = k.Default
	}
	return p
}

// KnobByName returns a declared knob.
func (w Workload) KnobByName(name string) (Knob, bool) {
	for _, k := range w.Knobs {
		if k.Name == name {
			return k, true
		}
	}
	return Knob{}, false
}

// resolveParams validates overrides against the declared knobs and
// returns the full parameter map (defaults overlaid with overrides).
// Unknown keys, non-finite values, and out-of-bounds values are
// rejected — a mistyped knob name must fail at submit time, not silently
// run the defaults.
func (w Workload) resolveParams(overrides map[string]float64) (map[string]float64, error) {
	full := w.DefaultParams()
	if len(overrides) == 0 {
		return full, nil
	}
	// Deterministic error selection: report the smallest offending key.
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, name := range keys {
		v := overrides[name]
		k, ok := w.KnobByName(name)
		if !ok {
			return nil, fmt.Errorf("campaign: workload %s has no knob %q (declared: %v)", w.Name, name, w.knobNames())
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("campaign: workload %s knob %q: non-finite value %v", w.Name, name, v)
		}
		if (k.Min != 0 || k.Max != 0) && (v < k.Min || v > k.Max) {
			return nil, fmt.Errorf("campaign: workload %s knob %q: %v outside [%v, %v]", w.Name, name, v, k.Min, k.Max)
		}
		full[name] = v
	}
	return full, nil
}

func (w Workload) knobNames() []string {
	names := make([]string, len(w.Knobs))
	for i, k := range w.Knobs {
		names[i] = k.Name
	}
	return names
}

// intParam reads a knob that semantically is a count.
func intParam(params map[string]float64, name string) int {
	return int(math.Round(params[name]))
}

// lossKnobs declares the robust-loss knob pair shared by the loss-aware
// workloads. Knob value 0 selects the workload's legacy objective
// (legacyDesc names it); 1–4 select the internal/robust losses in
// registry order.
func lossKnobs(legacyDesc string) []Knob {
	return []Knob{
		{
			Name: "loss", Desc: "robust loss: 0=" + legacyDesc + ", 1=huber, 2=pseudo-huber, 3=geman-mcclure, 4=smooth-l1",
			Default: 0, Min: 0, Max: 4,
			Grid: []float64{0, 1, 2, 3, 4},
		},
		{
			Name: "shape", Desc: "loss shape (huber/pseudo-huber delta, geman-mcclure sigma, smooth-l1 epsilon); 0 = the loss's default",
			Default: 0, Min: 0, Max: 1e6,
			Grid: []float64{0, 0.1, 0.5, 1, 2.5},
		},
	}
}

// lossSelector extracts the loss knob pair from resolved parameters.
func lossSelector(params map[string]float64) (idx int, shape float64) {
	return intParam(params, "loss"), params["shape"]
}

// lossForTrial builds the selected robust loss fresh for one trial (a
// Robustifier carries mutable shape state, so trials running on parallel
// workers must not share one). Index 0 is the legacy path: a nil loss.
func lossForTrial(idx int, shape float64) (robust.Robustifier, error) {
	if idx == 0 {
		return nil, nil
	}
	return robust.ByIndex(idx, shape)
}

// capErr clamps error metrics so one diverged trial cannot swamp a mean
// (shared convention: harness.CapErr, same clamp the figure builders
// apply).
func capErr(v float64) float64 { return harness.CapErr(v) }

// lsqInstance derives a per-trial least squares instance (A 30x6 with
// mild observation noise) from the trial seed.
func lsqInstance(seed uint64) (*leastsq.Instance, error) {
	rng := rand.New(rand.NewSource(int64(seed)))
	return leastsq.Random(rng, 30, 6, 0.01)
}

// customPlan compiles a custom sweep to a single-unit figure plan so the
// engine treats figures and custom sweeps identically. The spec's fault
// model — overlaid with any fm_* parameter overrides riding in Params —
// becomes the unit factory every trial builds its FPU through.
func customPlan(spec Spec) (*figures.Plan, error) {
	w, err := WorkloadByName(spec.Custom.Workload)
	if err != nil {
		return nil, err
	}
	workloadParams, modelParams := splitModelParams(spec.Custom.Params)
	params, err := w.resolveParams(workloadParams)
	if err != nil {
		return nil, err
	}
	model, err := applyModelParams(spec.FaultModel, modelParams)
	if err != nil {
		return nil, err
	}
	iters := spec.Custom.Iters
	if iters <= 0 {
		iters = w.DefaultIters
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 10
	}
	agg := spec.Custom.Agg
	if agg == "" {
		agg = "mean"
	}
	return &figures.Plan{
		ID: "custom:" + w.Name,
		Skeleton: harness.Table{
			Title:  fmt.Sprintf("custom sweep: %s (%s)", w.Name, w.Desc),
			YLabel: w.Desc,
		},
		Units: []figures.Unit{{
			Series: w.Name,
			Agg:    agg,
			Sweep: harness.Sweep{
				Rates:   append([]float64(nil), spec.Custom.Rates...),
				Trials:  trials,
				Seed:    spec.Seed,
				Workers: spec.Workers,
			},
			Fn: w.Build(iters, params, model.Unit),
		}},
	}, nil
}

// eigenInstance derives a per-trial symmetric matrix whose dominant
// eigenvalue is n by construction (mirrors figures.Eigenpairs).
func eigenInstance(seed uint64) (*linalg.Dense, float64) {
	const n = 6
	rng := rand.New(rand.NewSource(int64(seed)))
	return eigen.RandomSymmetric(rng, n), float64(n)
}

func eigenScore(lambda, want float64) float64 {
	if lambda != lambda || math.IsInf(lambda, 0) {
		return 1e6
	}
	v := math.Abs(lambda-want) / want
	if v != v || v > 1e6 {
		return 1e6
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
