package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// SSE cadence. Vars, not consts, so tests can tighten them; production
// never mutates them after init.
var (
	// sseInterval is how often the stream polls the campaign's status for
	// progress changes.
	sseInterval = 250 * time.Millisecond
	// sseHeartbeat is the longest the stream stays silent: with no
	// progress for this long, a comment line keeps the connection (and
	// any proxies on it) alive.
	sseHeartbeat = 15 * time.Second
)

// terminalState reports whether a campaign state can no longer change
// without an explicit resume — the point where a status stream ends.
func terminalState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	case StateQueued, StateRunning:
		return false
	}
	return false
}

// sseHandler serves GET /campaigns/{id}/status/stream: the campaign's
// live status as Server-Sent Events. The protocol is deliberately tiny:
//
//   - `event: progress` with the full Status JSON — sent immediately on
//     connect, then whenever the completed-trial count or state changes;
//   - `event: done` with the final Status once the campaign reaches a
//     terminal state (done, failed, cancelled, interrupted), after which
//     the stream closes;
//   - `: heartbeat` comment lines during long quiet stretches.
//
// The stream is read-only diagnostics over the same Status the polling
// endpoint serves: it touches no store and changes no execution, so
// results are bit-identical whether or not anyone is streaming.
func sseHandler(m *Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		status, err := m.Get(id)
		if err != nil {
			HTTPError(w, http.StatusNotFound, err)
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			HTTPError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		send := func(event string, st Status) bool {
			// SSE data must be newline-free: compact JSON, not the API's
			// indented form.
			b, err := json.Marshal(st)
			if err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
				return false
			}
			flusher.Flush()
			return true
		}

		// Immediate snapshot, so a client connecting mid-campaign renders
		// right away instead of at the next progress change.
		if !send("progress", status) {
			return
		}
		if terminalState(status.State) {
			send("done", status)
			return
		}

		lastDone, lastState := status.Progress.Done, status.State
		ticker := time.NewTicker(sseInterval)
		defer ticker.Stop()
		// Heartbeats are counted in poll ticks so the loop needs no clock
		// of its own.
		heartbeatTicks := max(int(sseHeartbeat/sseInterval), 1)
		quiet := 0
		for {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
			}
			status, err := m.Get(id)
			if err != nil {
				return
			}
			if terminalState(status.State) {
				send("progress", status)
				send("done", status)
				return
			}
			if status.Progress.Done != lastDone || status.State != lastState {
				if !send("progress", status) {
					return
				}
				lastDone, lastState = status.Progress.Done, status.State
				quiet = 0
				continue
			}
			if quiet++; quiet >= heartbeatTicks {
				if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
					return
				}
				flusher.Flush()
				quiet = 0
			}
		}
	}
}
