package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"robustify/internal/fpu/faultmodel"
	"time"
)

func newTestServer(t *testing.T, maxConcurrent int) (*httptest.Server, *Manager) {
	t.Helper()
	m := newManager(t, t.TempDir(), maxConcurrent)
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return srv, m
}

func doJSON(t *testing.T, method, url string, body string, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
}

func waitState(t *testing.T, base, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st Status
		doJSON(t, "GET", base+"/campaigns/"+id, "", http.StatusOK, &st)
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("campaign %s reached %s (err=%q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerConcurrentCampaigns drives the acceptance flow: two campaigns
// submitted concurrently, live status, and results in all three formats.
func TestServerConcurrentCampaigns(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	specs := []string{
		`{"figure":"6.1","quick":true,"trials":2,"seed":21}`,
		`{"custom":{"workload":"sort/robust","rates":[0.05,0.2],"iters":300},"trials":3,"seed":22}`,
	}
	var ids []string
	for _, spec := range specs {
		var resp map[string]string
		doJSON(t, "POST", srv.URL+"/campaigns", spec, http.StatusAccepted, &resp)
		if resp["id"] == "" {
			t.Fatalf("no id in submit response: %v", resp)
		}
		ids = append(ids, resp["id"])
	}

	var list []Status
	doJSON(t, "GET", srv.URL+"/campaigns", "", http.StatusOK, &list)
	if len(list) != 2 {
		t.Fatalf("list = %d campaigns, want 2", len(list))
	}

	for _, id := range ids {
		st := waitState(t, srv.URL, id, StateDone)
		if st.Progress.Done != st.Progress.Total || st.Progress.Total == 0 {
			t.Errorf("%s finished with progress %+v", id, st.Progress)
		}
		if len(st.Units) == 0 || len(st.Units[0].Cells) == 0 {
			t.Errorf("%s status has no live cell statistics", id)
		}
		for _, u := range st.Units {
			for _, c := range u.Cells {
				if c.Done != c.Total {
					t.Errorf("%s cell %+v incomplete after done", id, c)
				}
			}
		}

		// text
		resp, err := http.Get(srv.URL + "/campaigns/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Contains(text, []byte("fault rate")) {
			t.Errorf("%s text results = %d: %q", id, resp.StatusCode, text)
		}
		// csv
		resp, err = http.Get(srv.URL + "/campaigns/" + id + "/results?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		csv, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.HasPrefix(csv, []byte("rate,")) {
			t.Errorf("%s csv results = %d: %q", id, resp.StatusCode, csv)
		}
		// json
		var table struct {
			Title  string `json:"title"`
			Series []struct {
				Name   string `json:"name"`
				Points []struct {
					Rate  float64  `json:"rate"`
					Value *float64 `json:"value"`
				} `json:"points"`
			} `json:"series"`
		}
		doJSON(t, "GET", srv.URL+"/campaigns/"+id+"/results?format=json", "", http.StatusOK, &table)
		if table.Title == "" || len(table.Series) == 0 || len(table.Series[0].Points) == 0 {
			t.Errorf("%s json results empty: %+v", id, table)
		}
	}
}

// TestServerCancelResume cancels a campaign mid-run, checks the completed
// trials survived, resumes it over HTTP, and pins the final text to an
// uninterrupted in-process run of the same spec.
func TestServerCancelResume(t *testing.T) {
	srv, _ := newTestServer(t, 2)
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/robust", Rates: []float64{0.05, 0.1, 0.2}, Iters: 2000},
		Trials: 4, Seed: 31,
	}
	wantText, _ := runAll(t, spec)

	body, _ := json.Marshal(spec)
	var resp map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns", string(body), http.StatusAccepted, &resp)
	id := resp["id"]

	// Cancel as soon as some progress is visible (the run may be brief).
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st Status
		doJSON(t, "GET", srv.URL+"/campaigns/"+id, "", http.StatusOK, &st)
		if st.Progress.Done > 0 || terminal(st.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	doJSON(t, "POST", srv.URL+"/campaigns/"+id+"/cancel", "", http.StatusOK, nil)
	var st Status
	for {
		doJSON(t, "GET", srv.URL+"/campaigns/"+id, "", http.StatusOK, &st)
		if terminal(st.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State == StateDone || st.Progress.Done >= st.Progress.Total {
		t.Skipf("campaign finished before cancel landed (%+v); nothing to resume", st.Progress)
	}
	if st.State != StateCancelled {
		t.Fatalf("state after cancel = %s (err=%q)", st.State, st.Error)
	}

	// Mid-run results must be servable.
	r, err := http.Get(srv.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("mid-run results = %d", r.StatusCode)
	}

	doJSON(t, "POST", srv.URL+"/campaigns/"+id+"/resume", "", http.StatusAccepted, nil)
	final := waitState(t, srv.URL, id, StateDone)
	if final.Progress.Done != final.Progress.Total {
		t.Fatalf("resumed campaign incomplete: %+v", final.Progress)
	}
	r, err = http.Get(srv.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if string(text) != wantText {
		t.Errorf("resumed results differ from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", wantText, text)
	}
}

// TestServerRecoveredCampaign: a daemon restarted on an existing data dir
// must list the prior campaign as interrupted, serve its partial results
// in all three formats, and resume it over HTTP to a table byte-identical
// to an uninterrupted run.
func TestServerRecoveredCampaign(t *testing.T) {
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.01, 0.2, 0.5}},
		Trials: 3, Seed: 41,
	}
	wantText, _ := runAll(t, spec)
	root := t.TempDir()
	now := time.Now()
	seedCampaignDir(t, filepath.Join(root, "c0001"), spec, 4, &Meta{
		ID: "c0001", Name: spec.Title(), State: StateRunning, Created: now, Started: &now,
	})

	m := newManager(t, root, 1)
	srv := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})

	var list []Status
	doJSON(t, "GET", srv.URL+"/campaigns", "", http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != "c0001" || list[0].State != StateInterrupted {
		t.Fatalf("recovered list = %+v, want one interrupted c0001", list)
	}
	if list[0].Progress.Done != 4 || list[0].Progress.Total != 9 {
		t.Errorf("recovered progress = %+v, want 4/9", list[0].Progress)
	}

	for _, format := range []string{"", "?format=csv", "?format=json"} {
		resp, err := http.Get(srv.URL + "/campaigns/c0001/results" + format)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("recovered results %q = %d", format, resp.StatusCode)
		}
	}

	doJSON(t, "POST", srv.URL+"/campaigns/c0001/resume", "", http.StatusAccepted, nil)
	waitState(t, srv.URL, "c0001", StateDone)
	resp, err := http.Get(srv.URL + "/campaigns/c0001/results")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(text) != wantText {
		t.Errorf("resumed recovered results differ from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			wantText, text)
	}
}

func TestServerErrors(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	doJSON(t, "GET", srv.URL+"/healthz", "", http.StatusOK, nil)
	doJSON(t, "GET", srv.URL+"/workloads", "", http.StatusOK, nil)
	doJSON(t, "POST", srv.URL+"/campaigns", `{"figure":"nope"}`, http.StatusBadRequest, nil)
	doJSON(t, "POST", srv.URL+"/campaigns", `{not json`, http.StatusBadRequest, nil)
	doJSON(t, "GET", srv.URL+"/campaigns/c9999", "", http.StatusNotFound, nil)
	doJSON(t, "POST", srv.URL+"/campaigns/c9999/cancel", "", http.StatusNotFound, nil)

	var resp map[string]string
	doJSON(t, "POST", srv.URL+"/campaigns",
		`{"custom":{"workload":"sort/base","rates":[0.01]},"trials":1,"seed":1}`,
		http.StatusAccepted, &resp)
	id := resp["id"]
	waitState(t, srv.URL, id, StateDone)
	r, err := http.Get(fmt.Sprintf("%s/campaigns/%s/results?format=xml", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", r.StatusCode)
	}
	// Resuming a completed campaign is a conflict.
	doJSON(t, "POST", srv.URL+"/campaigns/"+id+"/resume", "", http.StatusConflict, nil)
}

// TestServerAdvertisesFaultModels: GET /workloads exposes the selectable
// model families next to the workload registry so remote clients can build
// fault_model specs (and tune grids) without guessing names.
func TestServerAdvertisesFaultModels(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	var resp struct {
		Workloads []struct {
			Name string `json:"name"`
		} `json:"workloads"`
		FaultModels []struct {
			Name  string `json:"name"`
			Knobs []Knob `json:"knobs"`
		} `json:"fault_models"`
	}
	doJSON(t, "GET", srv.URL+"/workloads", "", http.StatusOK, &resp)
	if len(resp.Workloads) == 0 {
		t.Fatal("no workloads advertised")
	}
	var names []string
	knobs := map[string]int{}
	for _, fm := range resp.FaultModels {
		names = append(names, fm.Name)
		knobs[fm.Name] = len(fm.Knobs)
	}
	want := faultmodel.Names()
	if len(names) != len(want) {
		t.Fatalf("advertised models = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("model %d = %q, want %q (advertisement order)", i, names[i], n)
		}
	}
	if knobs["stratified"] == 0 || knobs["burst"] == 0 {
		t.Errorf("parameterized families advertised without knobs: %v", knobs)
	}
	if knobs["default"] != 0 || knobs["memory"] != 0 {
		t.Errorf("parameterless families advertised with knobs: %v", knobs)
	}
}
