package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreAppendReloadDedup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := []Record{
		{Unit: 0, RateIdx: 0, TrialIdx: 0, Rate: 0.1, Seed: 7, Value: 1},
		{Unit: 0, RateIdx: 0, TrialIdx: 1, Rate: 0.1, Seed: 8, Value: 0},
		{Unit: 1, RateIdx: 2, TrialIdx: 0, Rate: 0.5, Seed: 9, Value: 0.25},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// A duplicate key must not grow the store.
	if err := st.Append(recs[0]); err != nil {
		t.Fatalf("dup append: %v", err)
	}
	if got := st.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if v, ok := st.Lookup(1, 2, 0); !ok || v != 0.25 {
		t.Errorf("lookup = %v,%v; want 0.25,true", v, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if got := st2.Count(); got != 3 {
		t.Errorf("reloaded count = %d, want 3", got)
	}
	if xs := st2.CellValues(0, 0, 2); len(xs) != 2 || xs[0] != 1 || xs[1] != 0 {
		t.Errorf("cell values = %v, want [1 0]", xs)
	}
}

func TestStoreToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.Append(Record{Unit: 0, RateIdx: 0, TrialIdx: 0, Value: 1}); err != nil {
		t.Fatalf("append: %v", err)
	}
	st.Close()
	// Simulate a crash mid-write: a torn, unparseable trailing line.
	path := filepath.Join(dir, storeFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"u":0,"r":0,"t":1,"v":0.`)
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn line: %v", err)
	}
	defer st2.Close()
	if got := st2.Count(); got != 1 {
		t.Errorf("count = %d, want 1 (torn line dropped)", got)
	}
	// The dropped trial can be re-recorded.
	if err := st2.Append(Record{Unit: 0, RateIdx: 0, TrialIdx: 1, Value: 0.5}); err != nil {
		t.Fatalf("re-append: %v", err)
	}
	if v, ok := st2.Lookup(0, 0, 1); !ok || v != 0.5 {
		t.Errorf("re-recorded trial = %v,%v", v, ok)
	}
}

// TestStoreToleratesOversizedLine: one absurdly long line (corruption —
// real records are tens of bytes) must not make the campaign permanently
// unresumable. bufio.Scanner would return ErrTooLong and hard-fail Open,
// also losing every record after the bad line.
func TestStoreToleratesOversizedLine(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := st.Append(Record{Unit: 0, RateIdx: 0, TrialIdx: 0, Value: 1}); err != nil {
		t.Fatalf("append: %v", err)
	}
	st.Close()

	f, err := os.OpenFile(filepath.Join(dir, storeFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(strings.Repeat("x", maxLineBytes+512) + "\n")
	f.WriteString(`{"u":0,"r":0,"t":2,"v":4}` + "\n") // records after the bad line must survive
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with oversized line: %v", err)
	}
	defer st2.Close()
	if got := st2.Count(); got != 2 {
		t.Errorf("count = %d, want 2 (oversized line dropped, later record kept)", got)
	}
	if v, ok := st2.Lookup(0, 0, 2); !ok || v != 4 {
		t.Errorf("record after oversized line = %v,%v; want 4,true", v, ok)
	}
	// The dropped trial simply reruns.
	if err := st2.Append(Record{Unit: 0, RateIdx: 0, TrialIdx: 1, Value: 0.5}); err != nil {
		t.Fatalf("re-append: %v", err)
	}
	if got := st2.Count(); got != 3 {
		t.Errorf("count after rerun = %d, want 3", got)
	}
}

func TestStoreSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close()
	if _, ok, err := st.LoadSpec(); err != nil || ok {
		t.Fatalf("empty store LoadSpec = ok=%v err=%v, want absent", ok, err)
	}
	spec := Spec{Figure: "6.1", Trials: 2, Seed: 42, Quick: true}
	if err := st.SaveSpec(spec); err != nil {
		t.Fatalf("save spec: %v", err)
	}
	got, ok, err := st.LoadSpec()
	if err != nil || !ok {
		t.Fatalf("load spec: ok=%v err=%v", ok, err)
	}
	if got != spec {
		t.Errorf("spec round trip = %+v, want %+v", got, spec)
	}
}
