package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// storeFile and specFile are the on-disk layout of one campaign directory.
const (
	storeFile = "trials.jsonl"
	specFile  = "spec.json"
)

// Record is one completed trial, one JSON line in the store. The
// (Unit, RateIdx, TrialIdx) triple is the trial key: together with the
// spec it pins the trial's seed, so a record is replayable and duplicate
// keys are collapsed on load (values of duplicates are identical by
// construction — trials are deterministic in their seed).
type Record struct {
	Unit     int     `json:"u"`
	RateIdx  int     `json:"r"`
	TrialIdx int     `json:"t"`
	Rate     float64 `json:"rate"`
	Seed     uint64  `json:"seed"`
	Value    float64 `json:"v"`
	// Series is informational (the unit's series name at write time).
	Series string `json:"s,omitempty"`
}

type trialKey struct{ unit, rateIdx, trialIdx int }

// Store is an append-only JSONL results store for one campaign. Every
// Append is flushed to the OS before it returns, so each completed trial
// is a durable checkpoint; a crash can lose at most the line being
// written, and Open tolerates (and drops) a torn trailing line.
type Store struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	have map[trialKey]float64
}

// Open creates (or reopens) the campaign directory and loads every record
// already present, deduplicating by trial key.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store dir: %w", err)
	}
	path := filepath.Join(dir, storeFile)
	st := &Store{dir: dir, have: make(map[trialKey]float64)}
	if data, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(data)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var rec Record
			if json.Unmarshal(sc.Bytes(), &rec) != nil {
				continue // torn or corrupt line: drop, the trial will rerun
			}
			st.have[trialKey{rec.Unit, rec.RateIdx, rec.TrialIdx}] = rec.Value
		}
		closeErr := data.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("campaign: read store: %w", err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st.f = f
	st.w = bufio.NewWriter(f)
	return st, nil
}

// Dir returns the campaign directory backing the store.
func (st *Store) Dir() string { return st.dir }

// Append records one completed trial and flushes it.
func (st *Store) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := trialKey{rec.Unit, rec.RateIdx, rec.TrialIdx}
	if _, dup := st.have[key]; dup {
		return nil // already durable; keep the store free of duplicates
	}
	if _, err := st.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := st.w.Flush(); err != nil {
		return err
	}
	st.have[key] = rec.Value
	return nil
}

// Lookup returns the recorded value for a trial key of one unit.
func (st *Store) Lookup(unit, rateIdx, trialIdx int) (float64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.have[trialKey{unit, rateIdx, trialIdx}]
	return v, ok
}

// Count is the number of distinct completed trials in the store.
func (st *Store) Count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.have)
}

// CellValues returns the recorded values of one (unit, rateIdx) cell in
// trial-index order, skipping gaps — exactly the slice an aggregator
// would have seen for the completed prefix.
func (st *Store) CellValues(unit, rateIdx, trials int) []float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var xs []float64
	for t := 0; t < trials; t++ {
		if v, ok := st.have[trialKey{unit, rateIdx, t}]; ok {
			xs = append(xs, v)
		}
	}
	return xs
}

// SaveSpec persists the campaign spec beside the results.
func (st *Store) SaveSpec(spec Spec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(st.dir, specFile), append(b, '\n'), 0o644)
}

// LoadSpec reads a previously saved spec; ok is false when none exists.
func (st *Store) LoadSpec() (spec Spec, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(st.dir, specFile))
	if os.IsNotExist(err) {
		return Spec{}, false, nil
	}
	if err != nil {
		return Spec{}, false, err
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return Spec{}, false, fmt.Errorf("campaign: corrupt %s: %w", specFile, err)
	}
	return spec, true, nil
}

// Close flushes and closes the store file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.w.Flush()
	if cerr := st.f.Close(); err == nil {
		err = cerr
	}
	st.f = nil
	return err
}
