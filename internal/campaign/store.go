package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"robustify/internal/fsutil"
)

// storeFile, specFile, and metaFile (see meta.go) are the on-disk layout
// of one campaign directory; lockFile lives in the data root itself and
// serializes daemon ownership of the whole tree.
const (
	storeFile = "trials.jsonl"
	specFile  = "spec.json"
	lockFile  = ".lock"
)

// Record is one completed trial, one JSON line in the store. The
// (Unit, RateIdx, TrialIdx) triple is the trial key: together with the
// spec it pins the trial's seed, so a record is replayable and duplicate
// keys are collapsed on load (values of duplicates are identical by
// construction — trials are deterministic in their seed).
type Record struct {
	Unit     int     `json:"u"`
	RateIdx  int     `json:"r"`
	TrialIdx int     `json:"t"`
	Rate     float64 `json:"rate"`
	Seed     uint64  `json:"seed"`
	Value    float64 `json:"v"`
	// Series is informational (the unit's series name at write time).
	Series string `json:"s,omitempty"`
}

type trialKey struct{ unit, rateIdx, trialIdx int }

// Store is an append-only JSONL results store for one campaign. Every
// Append is flushed to the OS before it returns, so each completed trial
// is a durable checkpoint; a crash can lose at most the line being
// written, and Open tolerates (and drops) a torn trailing line.
type Store struct {
	dir string

	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	have map[trialKey]float64
}

// maxLineBytes bounds how much of one store line is kept in memory while
// loading. A legitimate Record line is tens of bytes; anything beyond the
// cap is corruption (or not our file) and is dropped like a torn line —
// the store keeps loading and only that trial reruns. A bufio.Scanner
// here would instead return ErrTooLong and abandon every later record,
// leaving the campaign permanently unresumable.
const maxLineBytes = 1 << 20

// Open creates (or reopens) the campaign directory and loads every record
// already present, deduplicating by trial key.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store dir: %w", err)
	}
	path := filepath.Join(dir, storeFile)
	st := &Store{dir: dir, have: make(map[trialKey]float64)}
	torn := false
	if data, err := os.Open(path); err == nil {
		tornTail, loadErr := st.load(data)
		closeErr := data.Close()
		if loadErr != nil {
			return nil, fmt.Errorf("campaign: read store: %w", loadErr)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		torn = tornTail
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// Repair a torn tail before appending: without the terminator, the
	// next record would be glued onto the torn bytes and both would be
	// dropped as one unparseable line on the following load — a durable
	// write silently lost.
	if torn {
		if _, err := f.Write([]byte("\n")); err != nil {
			//lint:errdurability-exempt best-effort close on an already-failing path; the write error is what the caller must see
			f.Close()
			return nil, err
		}
	}
	st.f = f
	st.w = bufio.NewWriter(f)
	return st, nil
}

// load replays the store file into st.have. Unparseable, torn, and
// oversized (>maxLineBytes) lines are skipped — those trials simply
// rerun — so a single corrupt line never blocks reopening a campaign.
// tornTail reports an unterminated final line (crash mid-append): the
// caller must terminate it before appending more records.
func (st *Store) load(data io.Reader) (tornTail bool, err error) {
	r := bufio.NewReaderSize(data, 64*1024)
	for {
		line, tooLong, err := readLine(r)
		if len(line) > 0 && !tooLong {
			var rec Record
			if json.Unmarshal(line, &rec) == nil {
				st.have[trialKey{rec.Unit, rec.RateIdx, rec.TrialIdx}] = rec.Value
			}
		}
		if err == io.EOF {
			return len(line) > 0 || tooLong, nil
		}
		if err != nil {
			return false, err
		}
	}
}

// readLine reads one newline-delimited line, retaining at most
// maxLineBytes of it; the remainder of an oversized line is consumed and
// discarded, with tooLong reporting the overflow. err is io.EOF at end of
// input (the final unterminated line, if any, is still returned).
func readLine(r *bufio.Reader) (line []byte, tooLong bool, err error) {
	for {
		chunk, err := r.ReadSlice('\n')
		if !tooLong {
			line = append(line, chunk...)
			if len(line) > maxLineBytes {
				line, tooLong = nil, true
			}
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return line, tooLong, err
	}
}

// Dir returns the campaign directory backing the store.
func (st *Store) Dir() string { return st.dir }

// Append records one completed trial and flushes it.
//
//lint:durable an Append that returned nil is the resume identity; a dropped error is a lost trial
func (st *Store) Append(rec Record) error {
	_, err := st.Put(rec)
	return err
}

// Put is Append reporting whether the record was new: false means the
// trial was already durable and nothing was written. The check and the
// write happen under one lock, so concurrent writers of the same key —
// two workers racing on a reassigned shard — see exactly one true.
//
//lint:durable Put is Append behind a dedup check; same durability contract
func (st *Store) Put(rec Record) (added bool, err error) {
	line, err := json.Marshal(rec)
	if err != nil {
		return false, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	key := trialKey{rec.Unit, rec.RateIdx, rec.TrialIdx}
	if _, dup := st.have[key]; dup {
		return false, nil // already durable; keep the store free of duplicates
	}
	if _, err := st.w.Write(append(line, '\n')); err != nil {
		return false, err
	}
	if err := st.w.Flush(); err != nil {
		return false, err
	}
	st.have[key] = rec.Value
	return true, nil
}

// Lookup returns the recorded value for a trial key of one unit.
func (st *Store) Lookup(unit, rateIdx, trialIdx int) (float64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.have[trialKey{unit, rateIdx, trialIdx}]
	return v, ok
}

// Size is the store file's current on-disk size in bytes (0 when the
// store is closed or the file cannot be statted).
func (st *Store) Size() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return 0
	}
	fi, err := st.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Count is the number of distinct completed trials in the store.
func (st *Store) Count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.have)
}

// CellValues returns the recorded values of one (unit, rateIdx) cell in
// trial-index order, skipping gaps — exactly the slice an aggregator
// would have seen for the completed prefix.
func (st *Store) CellValues(unit, rateIdx, trials int) []float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var xs []float64
	for t := 0; t < trials; t++ {
		if v, ok := st.have[trialKey{unit, rateIdx, t}]; ok {
			xs = append(xs, v)
		}
	}
	return xs
}

// SaveSpec persists the campaign spec beside the results, atomically: a
// crash mid-write must leave either no spec or a complete one — a torn
// spec.json would make the whole campaign directory unloadable on the
// next boot, turning a resumable campaign into a skipped one.
//
//lint:durable the spec file is what makes a store resumable at all
func (st *Store) SaveSpec(spec Spec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return fsutil.WriteFileAtomic(filepath.Join(st.dir, specFile), append(b, '\n'), 0o644)
}

// LoadSpec reads a previously saved spec; ok is false when none exists.
func (st *Store) LoadSpec() (spec Spec, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(st.dir, specFile))
	if os.IsNotExist(err) {
		return Spec{}, false, nil
	}
	if err != nil {
		return Spec{}, false, err
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return Spec{}, false, fmt.Errorf("campaign: corrupt %s: %w", specFile, err)
	}
	return spec, true, nil
}

// Close flushes and closes the store file.
//
//lint:durable Close flushes the buffered writer; its error is the last chance to see a failed flush
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.w.Flush()
	if cerr := st.f.Close(); err == nil {
		err = cerr
	}
	st.f = nil
	return err
}
