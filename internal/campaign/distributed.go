package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"robustify/internal/dispatch"
)

// RunDispatched executes the campaign on a robustworker fleet instead of
// in-process: the grid is handed to the dispatch coordinator as one job,
// workers pull shard leases and stream results back, and every verified
// result is merged through the same dedup-keyed store the local path
// uses — so the finished table is byte-identical to Run's, regardless of
// fleet size, shard interleaving, or how many leases expired and were
// reassigned along the way. Trials already in the store are never
// re-dispatched (resume), and cancelling ctx stops dispatching without
// losing durable work.
func (e *Execution) RunDispatched(ctx context.Context, d *dispatch.Coordinator, id string) error {
	specJSON, err := json.Marshal(e.camp.Spec)
	if err != nil {
		return fmt.Errorf("campaign: encode spec for dispatch: %w", err)
	}
	units := make([]dispatch.UnitGrid, len(e.camp.Plan.Units))
	for i, u := range e.camp.Plan.Units {
		units[i] = dispatch.UnitGrid{Rates: len(u.Sweep.Rates), Trials: unitTrials(u)}
	}
	return d.RunJob(ctx, dispatch.Job{
		Campaign: id,
		Spec:     specJSON,
		Units:    units,
		Have: func(k dispatch.Key) bool {
			_, ok := e.st.Lookup(k.Unit, k.RateIdx, k.TrialIdx)
			return ok
		},
		// A result must carry exactly the rate and seed the grid pins for
		// its key — anything else is a worker running different code (or
		// lying) and would silently corrupt a deterministic table.
		Verify: func(r dispatch.TrialResult) bool {
			u := e.camp.Plan.Units[r.Unit] // bounds already checked by dispatch
			return r.Rate == u.Sweep.Rates[r.RateIdx] && r.Seed == u.Sweep.TrialSeed(r.RateIdx, r.TrialIdx)
		},
		Sink: func(results []dispatch.TrialResult) error {
			for _, r := range results {
				added, err := e.st.Put(Record{
					Unit: r.Unit, RateIdx: r.RateIdx, TrialIdx: r.TrialIdx,
					Rate: r.Rate, Seed: r.Seed, Value: r.Value,
					Series: e.camp.Plan.Units[r.Unit].Series,
				})
				if err != nil {
					return err
				}
				if !added {
					continue // duplicate from a reassigned shard
				}
				e.noteTrial()
				e.mu.Lock()
				e.stats[r.Unit][r.RateIdx].Add(r.Value)
				e.mu.Unlock()
				// Dispatched trials were computed on a worker, so latency
				// and fault placement live in the worker's own telemetry;
				// the coordinator records the result's arrival.
				e.observeDispatched(r)
			}
			return nil
		},
	})
}
