package campaign

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"robustify/internal/dispatch"
)

// execShard runs a lease's shard exactly as cmd/robustworker does:
// compile the spec, derive (rate, seed) from the grid coordinates, and
// execute the unit's trial function.
func execShard(t *testing.T, lr *dispatch.LeaseResponse) []dispatch.TrialResult {
	t.Helper()
	spec, err := ParseSpec(lr.Spec)
	if err != nil {
		t.Fatalf("worker: parse spec: %v", err)
	}
	camp, err := Compile(spec)
	if err != nil {
		t.Fatalf("worker: compile: %v", err)
	}
	u := camp.Plan.Units[lr.Shard.Unit]
	trials := unitTrials(u)
	skip := map[int]bool{}
	for _, i := range lr.Shard.Skip {
		skip[i] = true
	}
	var out []dispatch.TrialResult
	for i := lr.Shard.Start; i < lr.Shard.Start+lr.Shard.Count; i++ {
		if skip[i] {
			continue
		}
		r, tr := i/trials, i%trials
		res := dispatch.TrialResult{
			Unit: lr.Shard.Unit, RateIdx: r, TrialIdx: tr,
			Rate: u.Sweep.Rates[r], Seed: u.Sweep.TrialSeed(r, tr),
		}
		res.Value = u.Fn(res.Rate, res.Seed)
		out = append(out, res)
	}
	return out
}

// liveWorker pulls leases over real HTTP until stop closes, executing
// and reporting every shard it gets.
func liveWorker(t *testing.T, base string, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	ctx := context.Background()
	cl := dispatch.NewClient(base, "live")
	if err := cl.Register(ctx); err != nil {
		t.Errorf("worker register: %v", err)
		return
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		lr, err := cl.Lease(ctx)
		if err != nil {
			t.Errorf("worker lease: %v", err)
			return
		}
		if lr == nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if _, err := cl.Report(ctx, lr.Campaign, lr.Lease, execShard(t, lr), true); err != nil {
			t.Errorf("worker report: %v", err)
			return
		}
	}
}

func renderTable(t *testing.T, m *Manager, id string) (text, csv string) {
	t.Helper()
	table, err := m.Table(id)
	if err != nil {
		t.Fatalf("table %s: %v", id, err)
	}
	var tb, cb strings.Builder
	if err := table.Render(&tb); err != nil {
		t.Fatal(err)
	}
	if err := table.CSV(&cb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String()
}

// TestDistributedCampaignByteIdentical is the tentpole acceptance check
// at the package level: a campaign executed by workers over real HTTP —
// including a worker that takes a lease and dies silently, forcing
// expiry and reassignment — produces a results table byte-identical to
// the same campaign run fully in-process.
func TestDistributedCampaignByteIdentical(t *testing.T) {
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.01, 0.15, 0.4}},
		Trials: 6,
		Seed:   11,
	}

	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetDispatcher(dispatch.New(dispatch.Options{LeaseTTL: 250 * time.Millisecond, ShardSize: 2}))
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	// The dead worker grabs one lease and is never heard from again: its
	// shard must come back after the TTL and be finished by the live
	// worker.
	dead := dispatch.NewClient(ts.URL, "dead")
	if err := dead.Register(context.Background()); err != nil {
		t.Fatal(err)
	}

	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		lr, err := dead.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if lr != nil {
			break // holds the lease forever
		}
		if time.Now().After(deadline) {
			t.Fatal("dead worker never got a lease")
		}
		time.Sleep(2 * time.Millisecond)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go liveWorker(t, ts.URL, stop, &wg)
	if err := m.Wait(id); err != nil {
		t.Fatalf("distributed campaign failed: %v", err)
	}
	close(stop)
	wg.Wait()
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Progress.Done != st.Progress.Total {
		t.Fatalf("distributed campaign = %s %+v", st.State, st.Progress)
	}
	gotText, gotCSV := renderTable(t, m, id)

	local, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lid, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Wait(lid); err != nil {
		t.Fatal(err)
	}
	wantText, wantCSV := renderTable(t, local, lid)
	if gotText != wantText {
		t.Errorf("distributed table differs from in-process run:\n--- want ---\n%s--- got ---\n%s", wantText, gotText)
	}
	if gotCSV != wantCSV {
		t.Errorf("distributed CSV differs from in-process run:\n--- want ---\n%s--- got ---\n%s", wantCSV, gotCSV)
	}
}

// TestDispatchedResumeAfterCoordinatorRestart closes the coordinator
// manager mid-campaign (leases and all) and recovers on the same root:
// the lease table is rebuilt from the store, only missing trials are
// re-dispatched, and the finished table is byte-identical to a local
// run.
func TestDispatchedResumeAfterCoordinatorRestart(t *testing.T) {
	root := t.TempDir()
	spec := Spec{
		Custom: &CustomSweep{Workload: "sort/base", Rates: []float64{0.05, 0.25}},
		Trials: 8,
		Seed:   5,
	}

	m1, err := NewManager(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1.SetDispatcher(dispatch.New(dispatch.Options{LeaseTTL: time.Minute, ShardSize: 2}))
	ts1 := httptest.NewServer(NewServer(m1))
	id, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One worker executes exactly two shards, then the daemon dies.
	cl := dispatch.NewClient(ts1.URL, "half")
	if err := cl.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; {
		lr, err := cl.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if lr == nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if _, err := cl.Report(context.Background(), lr.Campaign, lr.Lease, execShard(t, lr), true); err != nil {
			t.Fatal(err)
		}
		n++
	}
	ts1.Close()
	m1.Close() // campaign becomes interrupted, 4 trials durable

	m2, err := NewManager(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	m2.SetDispatcher(dispatch.New(dispatch.Options{LeaseTTL: time.Minute, ShardSize: 2}))
	ts2 := httptest.NewServer(NewServer(m2))
	defer ts2.Close()
	st, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateInterrupted || st.Progress.Done != 4 {
		t.Fatalf("recovered = %s %+v, want interrupted with 4 done", st.State, st.Progress)
	}
	if err := m2.Resume(id); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go liveWorker(t, ts2.URL, stop, &wg)
	if err := m2.Wait(id); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	gotText, _ := renderTable(t, m2, id)

	local, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lid, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Wait(lid); err != nil {
		t.Fatal(err)
	}
	wantText, _ := renderTable(t, local, lid)
	if gotText != wantText {
		t.Errorf("resumed distributed table differs:\n--- want ---\n%s--- got ---\n%s", wantText, gotText)
	}
}
