package fsutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "new" {
		t.Fatalf("got %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteFileAtomicCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	// Writing into a missing subdirectory fails at open.
	if err := WriteFileAtomic(filepath.Join(dir, "no/such/x.json"), []byte("x"), 0o644); err == nil {
		t.Fatal("expected error")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("unexpected leftovers: %v", ents)
	}
}
