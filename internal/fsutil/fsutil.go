// Package fsutil holds the repo's blessed durable-file primitives. The
// atomicwrite analyzer (internal/analysis) forbids writing *.json
// artifacts any other way: recovery semantics assume an artifact is
// either the old version or the new one, never a torn intermediate.
package fsutil

import (
	"fmt"
	"os"
)

// WriteFileAtomic replaces path with data via temp file + fsync + rename,
// so a crash mid-update leaves either the old contents or the new ones,
// never a torn file. (The rename itself is not directory-fsync'd; after a
// power loss, as opposed to a process crash, the previous contents may
// reappear — callers' recovery paths must treat that like any other stale
// state.) The temp file lives beside path, so the rename never crosses a
// filesystem boundary.
//
//lint:durable temp + fsync + rename is the repo's only durable write path; its error is the durability verdict
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("fsutil: write %s: %w", path, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: replace %s: %w", path, err)
	}
	return nil
}
