package harness

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSweepDeterministicSeeds(t *testing.T) {
	s := Sweep{Rates: []float64{0.1, 0.2}, Trials: 3, Seed: 7}
	if s.TrialSeed(0, 0) == s.TrialSeed(0, 1) {
		t.Error("trial seeds collide")
	}
	if s.TrialSeed(0, 0) == s.TrialSeed(1, 0) {
		t.Error("rate seeds collide")
	}
	s2 := Sweep{Rates: s.Rates, Trials: 3, Seed: 7}
	if s.TrialSeed(1, 2) != s2.TrialSeed(1, 2) {
		t.Error("seeds not reproducible")
	}
}

func TestSweepRunAggregatesMean(t *testing.T) {
	s := Sweep{Rates: []float64{0, 1}, Trials: 4, Seed: 1}
	var mu sync.Mutex
	calls := map[float64]int{}
	pts := s.Run(func(rate float64, seed uint64) float64 {
		mu.Lock()
		calls[rate]++
		n := calls[rate]
		mu.Unlock()
		return rate*100 + float64(n%2) // mean = rate*100 + 0.5
	})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, want := range []float64{0.5, 100.5} {
		if math.Abs(pts[i].Value-want) > 1e-12 {
			t.Errorf("point %d = %v, want %v", i, pts[i].Value, want)
		}
	}
	if calls[0] != 4 || calls[1] != 4 {
		t.Errorf("trials per rate = %v", calls)
	}
}

func TestSweepRunMedianRobustToOutliers(t *testing.T) {
	s := Sweep{Rates: []float64{0}, Trials: 5, Seed: 2}
	var mu sync.Mutex
	n := 0
	pts := s.RunMedian(func(rate float64, seed uint64) float64 {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n == 1 {
			return 1e30 // outlier must not dominate
		}
		return 1
	})
	if pts[0].Value != 1 {
		t.Errorf("median = %v, want 1", pts[0].Value)
	}
}

func TestSweepRunMedianDuplicateRates(t *testing.T) {
	// Duplicate rates are distinct cells (e.g. before/after ablation pairs
	// sharing an x value): values keyed by rate instead of rate index
	// would all land in the first cell.
	s := Sweep{Rates: []float64{0.1, 0.1}, Trials: 3, Seed: 4}
	pts := s.RunMedian(func(rate float64, seed uint64) float64 {
		// TrialSeed derives distinct seeds per rate index; recover which
		// cell we are in from the seed so the two cells return different
		// medians.
		for trial := 0; trial < 3; trial++ {
			if seed == s.TrialSeed(1, trial) {
				return 7
			}
		}
		return 3
	})
	if pts[0].Value != 3 || pts[1].Value != 7 {
		t.Errorf("duplicate-rate medians = %v, %v; want 3, 7 (mis-bucketed by float match?)",
			pts[0].Value, pts[1].Value)
	}
}

func TestSweepParallelSafety(t *testing.T) {
	s := Sweep{Rates: []float64{0, 1, 2, 3}, Trials: 50, Seed: 3, Workers: 8}
	pts := s.Run(func(rate float64, seed uint64) float64 { return rate })
	for i, r := range s.Rates {
		if pts[i].Value != r {
			t.Errorf("rate %v: value %v", r, pts[i].Value)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Fig X",
		YLabel: "success",
		Series: []Series{
			{Name: "Base", Points: []Point{{Rate: 0.01, Value: 1}, {Rate: 0.1, Value: 0.5}}},
			{Name: "SGD", Points: []Point{{Rate: 0.01, Value: 1}, {Rate: 0.1, Value: 0.9}}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "Base", "SGD", "0.01", "0.9", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "A,B", Points: []Point{{Rate: 0.5, Value: 2}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rate,A;B") {
		t.Errorf("csv header wrong: %s", out)
	}
	if !strings.Contains(out, "0.5,2") {
		t.Errorf("csv row wrong: %s", out)
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(math.NaN()); got != "nan" {
		t.Errorf("NaN = %q", got)
	}
	if got := formatValue(1e-9); !strings.Contains(got, "e") {
		t.Errorf("tiny value should use scientific: %q", got)
	}
	if got := formatValue(0.5); got != "0.5" {
		t.Errorf("0.5 = %q", got)
	}
}

func TestTableRaggedSeries(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "long", Points: []Point{{Rate: 1, Value: 1}, {Rate: 2, Value: 2}}},
			{Name: "short", Points: []Point{{Rate: 1, Value: 9}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Error("missing cell placeholder not rendered")
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTableAlignsRowsByRate pins mid-run alignment: a partially complete
// series (its points are a subsequence of the grid, gaps skipped) must
// print each value on the row of its own rate. Index pairing against the
// longest series would put B's 0.5 value on the 0.2 row.
func TestTableAlignsRowsByRate(t *testing.T) {
	tab := &Table{
		Title: "mid-run",
		Series: []Series{
			{Name: "A", Points: []Point{{Rate: 0.1, Value: 1}, {Rate: 0.2, Value: 2}, {Rate: 0.5, Value: 3}}},
			{Name: "B", Points: []Point{{Rate: 0.1, Value: 10}, {Rate: 0.5, Value: 30}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rate,A,B\n0.1,1,10\n0.2,2,\n0.5,3,30\n"
	if buf.String() != want {
		t.Errorf("csv rows misaligned:\n--- want ---\n%s--- got ---\n%s", want, buf.String())
	}

	buf.Reset()
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == "0.2" && f[2] != "-" {
			t.Errorf("render pairs B's value against the wrong rate: %q", line)
		}
		if len(f) == 3 && f[0] == "0.5" && f[2] != "30" {
			t.Errorf("render row 0.5 = %q, want B=30", line)
		}
	}
}

// TestTableAlignsSparseLeadingGap covers a series whose first cells are
// still empty: its only point must land on the matching rate row, not on
// row one.
func TestTableAlignsSparseLeadingGap(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "full", Points: []Point{{Rate: 1, Value: 1}, {Rate: 2, Value: 2}, {Rate: 4, Value: 3}}},
			{Name: "tail", Points: []Point{{Rate: 4, Value: 99}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rate,full,tail\n1,1,\n2,2,\n4,3,99\n"
	if buf.String() != want {
		t.Errorf("leading-gap alignment:\n--- want ---\n%s--- got ---\n%s", want, buf.String())
	}
}

// TestTableMidRunDuplicateRateAlignsByCell pins the cell-identity fix: a
// mid-run series holding only the LATER of two equal-rate cells must
// print it on the later row (matched by RateIdx), not on the first row
// whose rate value happens to match.
func TestTableMidRunDuplicateRateAlignsByCell(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "A", Points: []Point{
				{Rate: 0.1, RateIdx: 0, Value: 1},
				{Rate: 0.1, RateIdx: 1, Value: 2},
			}},
			// B's first cell has not completed yet; only the second
			// duplicate-rate cell holds a value.
			{Name: "B", Points: []Point{
				{Rate: 0.1, RateIdx: 1, Value: 9},
			}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rate,A,B\n0.1,1,\n0.1,2,9\n"
	if buf.String() != want {
		t.Errorf("mid-run duplicate-rate cell misaligned:\n--- want ---\n%s--- got ---\n%s", want, buf.String())
	}

	buf.Reset()
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + two data rows; B's value must sit on the second data row.
	if len(lines) < 3 {
		t.Fatalf("render rows: %q", lines)
	}
	if f := strings.Fields(lines[1]); len(f) != 3 || f[2] != "-" {
		t.Errorf("render first duplicate-rate row = %q, want B empty", lines[1])
	}
	if f := strings.Fields(lines[2]); len(f) != 3 || f[2] != "9" {
		t.Errorf("render second duplicate-rate row = %q, want B=9", lines[2])
	}
}

// TestTableCSVQuotedNames: series names containing quotes or newlines
// must come out as valid, properly quoted CSV instead of tearing the
// header row.
func TestTableCSVQuotedNames(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "say \"hi\"", Points: []Point{{Rate: 1, Value: 2}}},
			{Name: "two\nlines", Points: []Point{{Rate: 1, Value: 3}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 2 || len(rows[0]) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != "say \"hi\"" || rows[0][2] != "two\nlines" {
		t.Errorf("header round-trip = %q", rows[0])
	}
	if rows[1][1] != "2" || rows[1][2] != "3" {
		t.Errorf("data row = %q", rows[1])
	}
}

// TestTableDuplicateRates: duplicate rates are distinct cells (e.g.
// before/after pairs sharing an x value); each must keep its own row.
func TestTableDuplicateRates(t *testing.T) {
	tab := &Table{
		Series: []Series{
			{Name: "A", Points: []Point{{Rate: 0.1, Value: 1}, {Rate: 0.1, Value: 2}}},
			{Name: "B", Points: []Point{{Rate: 0.1, Value: 3}, {Rate: 0.1, Value: 4}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rate,A,B\n0.1,1,3\n0.1,2,4\n"
	if buf.String() != want {
		t.Errorf("duplicate-rate rows:\n--- want ---\n%s--- got ---\n%s", want, buf.String())
	}
}

func TestSweepZeroTrialsDefaultsToOne(t *testing.T) {
	s := Sweep{Rates: []float64{0.5}, Seed: 1}
	n := 0
	var mu sync.Mutex
	s.Run(func(rate float64, seed uint64) float64 {
		mu.Lock()
		n++
		mu.Unlock()
		return 0
	})
	if n != 1 {
		t.Errorf("trials = %d, want 1", n)
	}
}
