// Package harness runs fault-rate sweep experiments — the scaffolding
// behind every figure of the paper's evaluation — and renders results as
// aligned text tables or CSV.
//
// A Sweep executes independent seeded trials for every (series, fault-rate)
// cell in parallel, one fpu.Unit per trial, and aggregates per-cell metric
// values by mean. Seeds are derived deterministically from the sweep seed,
// so any run is exactly reproducible.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Point is one measured cell: a fault rate (faults per FLOP) and the
// aggregated metric value. RateIdx is the cell's position in its sweep
// grid; it is what keeps two cells sharing a rate value (before/after
// ablation pairs) distinct when tables align rows mid-run.
type Point struct {
	Rate    float64
	RateIdx int
	Value   float64
}

// Series is a named curve of points, one per fault rate.
type Series struct {
	Name   string
	Points []Point
}

// Table is a rendered experiment: several series over a shared x-axis.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// TrialFunc runs one trial at the given fault rate with the given seed and
// returns the metric value (e.g. 1/0 for success, or a relative error).
type TrialFunc func(rate float64, seed uint64) float64

// Sweep describes a fault-rate sweep.
type Sweep struct {
	// Rates are the fault rates (faults per FLOP, not percent).
	Rates []float64
	// Trials is the number of independent trials per cell.
	Trials int
	// Seed derives every trial's seed; same seed, same results.
	Seed uint64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
}

// TrialSeed returns the deterministic seed for a cell trial. It is
// exported so single trials can be replayed outside a sweep.
func (s Sweep) TrialSeed(rateIdx, trial int) uint64 {
	z := s.Seed + uint64(rateIdx)*0x9E3779B97F4A7C15 + uint64(trial)*0xBF58476D1CE4E5B9 + 1
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Run executes fn over the full rate×trial grid and returns the mean metric
// per rate.
func (s Sweep) Run(fn TrialFunc) []Point {
	points, _ := s.RunHooked(context.Background(), fn, Mean, Hooks{})
	return points
}

// RunMedian is Run with a median aggregate, preferred for error metrics
// with occasional catastrophic outliers.
func (s Sweep) RunMedian(fn TrialFunc) []Point {
	points, _ := s.RunHooked(context.Background(), fn, Median, Hooks{})
	return points
}

// Size is the number of trials in the full rate×trial grid.
func (s Sweep) Size() int {
	trials := s.Trials
	if trials <= 0 {
		trials = 1
	}
	return len(s.Rates) * trials
}

// Trial is one grid-cell execution and its outcome, as delivered to a
// Hooks.Sink.
type Trial struct {
	// RateIdx and TrialIdx locate the cell in the sweep grid; together
	// with the sweep seed they form the trial's identity.
	RateIdx  int
	TrialIdx int
	// Rate and Seed are the inputs the trial function saw.
	Rate float64
	Seed uint64
	// Value is the trial's metric value.
	Value float64
	// Cached marks a value served by Hooks.Lookup instead of executed.
	Cached bool
}

// Aggregator folds one cell's trial values into the cell's point value.
type Aggregator func([]float64) float64

// AggregatorByName resolves "mean" or "median" ("" defaults to mean).
func AggregatorByName(name string) (Aggregator, error) {
	switch name {
	case "", "mean":
		return Mean, nil
	case "median":
		return Median, nil
	default:
		return nil, fmt.Errorf("harness: unknown aggregator %q", name)
	}
}

// Hooks customize RunHooked with resume lookups and a trial sink. Both
// callbacks may be invoked concurrently from worker goroutines.
type Hooks struct {
	// Lookup, if non-nil, is consulted before executing a trial; a hit
	// short-circuits execution (the basis of campaign resume).
	Lookup func(rateIdx, trial int) (float64, bool)
	// Sink, if non-nil, receives every trial outcome, including cached
	// ones (flagged Cached) so progress accounting sees the whole grid.
	//
	// Contract: Sink runs on the same goroutine that executed (or
	// looked up) the trial, synchronously after it. Per-trial
	// instrumentation — the observability layer's seed-keyed latency
	// stash and fault-recorder collection — relies on this ordering;
	// it is pinned by TestSinkRunsOnTrialGoroutine.
	Sink func(Trial)
}

// RunHooked runs the full rate×trial grid in parallel, keyed by rate index
// so duplicate or repeated rates aggregate into their own cells, and folds
// each cell's trials with agg. Cancelling ctx abandons unstarted trials and
// returns ctx.Err(); already-delivered Sink calls remain valid.
func (s Sweep) RunHooked(ctx context.Context, fn TrialFunc, agg Aggregator, h Hooks) ([]Point, error) {
	if s.Trials <= 0 {
		s.Trials = 1
	}
	if agg == nil {
		agg = Mean
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ rateIdx, trial int }
	jobs := make(chan job)
	results := make([][]float64, len(s.Rates))
	for i := range results {
		results[i] = make([]float64, s.Trials)
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				select {
				case <-done:
					continue // drain without executing
				default:
				}
				t := Trial{
					RateIdx:  j.rateIdx,
					TrialIdx: j.trial,
					Rate:     s.Rates[j.rateIdx],
					Seed:     s.TrialSeed(j.rateIdx, j.trial),
				}
				if h.Lookup != nil {
					if v, ok := h.Lookup(j.rateIdx, j.trial); ok {
						t.Value, t.Cached = v, true
					}
				}
				if !t.Cached {
					t.Value = fn(t.Rate, t.Seed)
				}
				results[j.rateIdx][j.trial] = t.Value
				if h.Sink != nil {
					h.Sink(t)
				}
			}
		}()
	}
feed:
	for r := range s.Rates {
		for t := 0; t < s.Trials; t++ {
			select {
			case jobs <- job{rateIdx: r, trial: t}:
			case <-done:
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	points := make([]Point, len(s.Rates))
	for r, rate := range s.Rates {
		points[r] = Point{Rate: rate, RateIdx: r, Value: agg(results[r])}
	}
	return points, nil
}

// CapErr clamps error metrics so one diverged trial cannot swamp a mean
// or push a table off the plottable range: NaN and huge values saturate
// at 1e6. Figure builders and workload trial functions share this
// convention, so figures and campaign objectives never drift apart.
func CapErr(v float64) float64 {
	if v != v || v > 1e6 {
		return 1e6
	}
	return v
}

// Mean is the default cell aggregator.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median aggregates a cell by its median, robust to catastrophic outliers.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// Render writes the table as aligned text: one row per fault rate, one
// column per series.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if t.YLabel != "" {
		if _, err := fmt.Fprintf(w, "y: %s\n", t.YLabel); err != nil {
			return err
		}
	}
	header := make([]string, 0, len(t.Series)+1)
	x := t.XLabel
	if x == "" {
		x = "fault rate (%FLOPs)"
	}
	header = append(header, x)
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	xs := t.xCells()
	next := make([]int, len(t.Series))
	for i := range xs {
		row := make([]string, 0, len(header))
		row = append(row, formatRate(xs[i].rate))
		for si, s := range t.Series {
			if v, ok := seriesCell(s, next, si, xs[i]); ok {
				row = append(row, formatValue(v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for c, cell := range row {
			cells[c] = fmt.Sprintf("%*s", widths[c], cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "  ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values with a header row. Rows
// go through encoding/csv, so series names containing quotes or newlines
// come out properly quoted instead of tearing the row; commas in names
// are still replaced by ";" first (the historical, pinned behavior), so
// benign names render byte-identically to earlier versions.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	cols := []string{"rate"}
	for _, s := range t.Series {
		cols = append(cols, strings.ReplaceAll(s.Name, ",", ";"))
	}
	if err := cw.Write(cols); err != nil {
		return err
	}
	xs := t.xCells()
	next := make([]int, len(t.Series))
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x.rate)}
		for si, s := range t.Series {
			if v, ok := seriesCell(s, next, si, x); ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// xCell identifies one table row: a rate value plus its grid index. Two
// cells are the same row only when both match — sharing a rate value is
// not enough, duplicate-rate grids have distinct cells per index.
// Hand-assembled tables that never set RateIdx (all zero) degrade to the
// historical rate-value matching, since their indices compare equal.
type xCell struct {
	rate float64
	idx  int
}

// xCells returns the table's x axis: the order-preserving union of every
// series' cells. Each series' points are (a subsequence of) the sweep
// grid in grid order, so merging keeps grid order, and a series that is
// only partially complete still gets its values printed against its own
// cells instead of being index-paired with another series' grid.
func (t *Table) xCells() []xCell {
	var xs []xCell
	for _, s := range t.Series {
		xs = mergeCells(xs, s.Points)
	}
	return xs
}

// mergeCells folds the points' cells into xs, preserving the relative
// order of both sequences (an order-preserving union of two subsequences
// of a common grid).
func mergeCells(xs []xCell, pts []Point) []xCell {
	out := make([]xCell, 0, len(xs))
	i := 0
	for _, p := range pts {
		c := xCell{rate: p.Rate, idx: p.RateIdx}
		at := -1
		for k := i; k < len(xs); k++ {
			if xs[k] == c {
				at = k
				break
			}
		}
		if at >= 0 {
			out = append(out, xs[i:at+1]...)
			i = at + 1
		} else {
			out = append(out, c)
		}
	}
	return append(out, xs[i:]...)
}

// seriesCell returns s's value for the row at cell x, advancing the
// series' cursor next[si] past consumed points. Points match rows by
// cell identity (rate value and rate index), so a mid-run series holding
// only the later of two equal-rate cells prints it on its own row, not
// the first row whose rate value happens to match.
func seriesCell(s Series, next []int, si int, x xCell) (float64, bool) {
	if n := next[si]; n < len(s.Points) && s.Points[n].Rate == x.rate && s.Points[n].RateIdx == x.idx {
		next[si] = n + 1
		return s.Points[n].Value, true
	}
	return 0, false
}

func formatRate(r float64) string {
	return fmt.Sprintf("%g", r)
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v != 0 && (math.Abs(v) < 1e-3 || math.Abs(v) >= 1e5):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
