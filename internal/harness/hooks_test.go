package harness

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunHookedSinkSeesWholeGrid(t *testing.T) {
	s := Sweep{Rates: []float64{0.1, 0.2}, Trials: 3, Seed: 5}
	var mu sync.Mutex
	seen := map[[2]int]Trial{}
	pts, err := s.RunHooked(context.Background(), func(rate float64, seed uint64) float64 {
		return rate
	}, Mean, Hooks{Sink: func(tr Trial) {
		mu.Lock()
		seen[[2]int{tr.RateIdx, tr.TrialIdx}] = tr
		mu.Unlock()
	}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(pts) != 2 || len(seen) != s.Size() {
		t.Fatalf("points=%d sink saw %d/%d trials", len(pts), len(seen), s.Size())
	}
	for key, tr := range seen {
		if tr.Cached {
			t.Errorf("trial %v marked cached without a Lookup", key)
		}
		if want := s.TrialSeed(key[0], key[1]); tr.Seed != want {
			t.Errorf("trial %v seed = %d, want %d", key, tr.Seed, want)
		}
		if tr.Value != s.Rates[key[0]] {
			t.Errorf("trial %v value = %v", key, tr.Value)
		}
	}
}

func TestRunHookedLookupShortCircuits(t *testing.T) {
	s := Sweep{Rates: []float64{0.1}, Trials: 4, Seed: 1}
	var mu sync.Mutex
	executed := 0
	cachedSeen := 0
	pts, err := s.RunHooked(context.Background(), func(rate float64, seed uint64) float64 {
		mu.Lock()
		executed++
		mu.Unlock()
		return 2
	}, Mean, Hooks{
		Lookup: func(rateIdx, trial int) (float64, bool) {
			if trial < 2 {
				return 10, true // pretend the first two trials are stored
			}
			return 0, false
		},
		Sink: func(tr Trial) {
			if tr.Cached {
				mu.Lock()
				cachedSeen++
				mu.Unlock()
				if tr.Value != 10 {
					t.Errorf("cached value = %v, want 10", tr.Value)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 2 || cachedSeen != 2 {
		t.Errorf("executed=%d cached=%d, want 2 and 2", executed, cachedSeen)
	}
	// Mean over {10, 10, 2, 2}.
	if pts[0].Value != 6 {
		t.Errorf("mean = %v, want 6", pts[0].Value)
	}
}

func TestRunHookedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := Sweep{Rates: []float64{0.1}, Trials: 1000, Seed: 1, Workers: 2}
	var mu sync.Mutex
	ran := 0
	pts, err := s.RunHooked(ctx, func(rate float64, seed uint64) float64 {
		mu.Lock()
		ran++
		if ran == 5 {
			cancel()
		}
		mu.Unlock()
		return 1
	}, Mean, Hooks{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if pts != nil {
		t.Error("cancelled run returned points")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Errorf("cancellation did not stop the grid (ran %d)", ran)
	}
}

func TestRunHookedMatchesRun(t *testing.T) {
	s := Sweep{Rates: []float64{0.01, 0.1}, Trials: 5, Seed: 9}
	fn := func(rate float64, seed uint64) float64 { return rate * float64(seed%7) }
	want := s.Run(fn)
	got, err := s.RunHooked(context.Background(), fn, Mean, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("point %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestAggregatorByName(t *testing.T) {
	xs := []float64{1, 2, 10}
	if agg, err := AggregatorByName(""); err != nil || agg(xs) != 13.0/3 {
		t.Errorf("default aggregator: %v", err)
	}
	if agg, err := AggregatorByName("mean"); err != nil || agg(xs) != 13.0/3 {
		t.Errorf("mean: %v", err)
	}
	if agg, err := AggregatorByName("median"); err != nil || agg(xs) != 2 {
		t.Errorf("median: %v", err)
	}
	if _, err := AggregatorByName("p99"); err == nil {
		t.Error("unknown aggregator accepted")
	}
}

func TestSweepSize(t *testing.T) {
	if got := (Sweep{Rates: []float64{1, 2, 3}, Trials: 4}).Size(); got != 12 {
		t.Errorf("size = %d, want 12", got)
	}
	if got := (Sweep{Rates: []float64{1}}).Size(); got != 1 {
		t.Errorf("zero-trials size = %d, want 1", got)
	}
}

// goroutineID parses the current goroutine's id from a stack header —
// test-only introspection to pin scheduling, never for production logic.
func goroutineID() string {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	// "goroutine 123 [running]:" — take the second field.
	return strings.Fields(string(buf))[1]
}

// TestSinkRunsOnTrialGoroutine pins the Hooks.Sink contract the
// observability layer relies on: the sink observes each trial on the
// same goroutine that executed it, synchronously after fn returns, for
// both executed and cache-hit trials.
func TestSinkRunsOnTrialGoroutine(t *testing.T) {
	s := Sweep{Rates: []float64{0.1, 0.2}, Trials: 8, Seed: 5, Workers: 4}
	var ran sync.Map // seed -> goroutine id of the fn call
	lookup := func(rateIdx, trial int) (float64, bool) {
		if trial == 0 { // cache-hit path must honor the contract too
			ran.Store(s.TrialSeed(rateIdx, trial), goroutineID())
			return 1, true
		}
		return 0, false
	}
	var mismatches atomic.Int64
	_, err := s.RunHooked(context.Background(), func(rate float64, seed uint64) float64 {
		ran.Store(seed, goroutineID())
		return rate
	}, Mean, Hooks{Lookup: lookup, Sink: func(tr Trial) {
		want, ok := ran.Load(tr.Seed)
		if !ok || want.(string) != goroutineID() {
			mismatches.Add(1)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if n := mismatches.Load(); n != 0 {
		t.Errorf("%d trials delivered to the sink on a different goroutine than ran them", n)
	}
}
