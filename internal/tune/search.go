package tune

import (
	"math"
	"sort"

	"robustify/internal/campaign"
	"robustify/internal/harness"
)

// worst is the saturating objective for configurations whose campaign
// produced no usable table (all metrics in the repo are capped well
// below it). It keeps every stored objective finite and JSON-encodable.
const worst = 1e30

// evalBatchFunc evaluates one successive-halving rung: every candidate
// configuration at the given trial budget, returning objectives in
// candidate order. Implementations run each candidate as a durable
// campaign and may serve repeats from a cache; they must be
// deterministic in (configs, trials).
type evalBatchFunc func(configs []map[string]float64, trials int) ([]float64, error)

// searchLoop is the deterministic driver: coordinate descent over the
// searched knobs, each coordinate step a successive-halving race over
// the knob's declared grid. It returns the winning configuration and
// its objective at the final (largest) budget it was evaluated under.
//
// Determinism: candidates are always issued in grid order, survivors
// are re-sorted into grid order between rungs, and ties rank by grid
// order (stable sort), so the sequence of evaluation requests — and
// therefore ordinals, seeds, and the trace — is a pure function of the
// spec.
func searchLoop(spec *Spec, w campaign.Workload, batch evalBatchFunc) (map[string]float64, float64, error) {
	better := func(a, b float64) bool {
		if w.Maximize {
			return a > b
		}
		return a < b
	}
	cur := spec.defaultParams(w)
	finalObj := worst
	if w.Maximize {
		finalObj = -worst
	}
	for round := 0; round < spec.rounds(); round++ {
		improved := false
		for _, name := range spec.searchKnobs(w) {
			k, _ := spec.knobByName(w, name)
			winner, obj, err := halve(spec, k, cur, better, batch)
			if err != nil {
				return nil, 0, err
			}
			finalObj = obj
			if winner != cur[name] {
				cur[name] = winner
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, finalObj, nil
}

// halve races knob k's grid values (with every other knob held at cur):
// each rung evaluates the surviving candidates at the current trial
// budget, keeps the better half, and doubles the budget, until a single
// survivor remains — which then gets one confirming evaluation at the
// doubled budget. Low-budget rungs cheaply discard hopeless values; the
// winner's score comes from the largest budget.
func halve(spec *Spec, k campaign.Knob, cur map[string]float64, better func(a, b float64) bool, batch evalBatchFunc) (float64, float64, error) {
	// Survivors as grid indices, kept ascending so candidate order (and
	// therefore evaluation order) is deterministic.
	surv := make([]int, len(k.Grid))
	for i := range surv {
		surv[i] = i
	}
	trials := spec.rung0()
	for {
		configs := make([]map[string]float64, len(surv))
		for i, gi := range surv {
			cfg := cloneParams(cur)
			cfg[k.Name] = k.Grid[gi]
			configs[i] = cfg
		}
		scores, err := batch(configs, trials)
		if err != nil {
			return 0, 0, err
		}
		if len(surv) == 1 {
			return k.Grid[surv[0]], scores[0], nil
		}
		// Rank survivors best-first; SliceStable keeps grid order on ties.
		order := make([]int, len(surv))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return better(scores[order[a]], scores[order[b]])
		})
		keep := (len(surv) + 1) / 2
		next := make([]int, keep)
		for i := 0; i < keep; i++ {
			next[i] = surv[order[i]]
		}
		sort.Ints(next)
		surv = next
		trials *= 2
	}
}

// objective collapses one evaluation campaign's finished table to the
// scalar the search ranks: the mean of the per-rate aggregated cells.
// Non-finite tables (a cell that never produced a usable value)
// saturate at the worst objective for the workload's direction.
func objective(t *harness.Table, maximize bool) float64 {
	bad := worst
	if maximize {
		bad = -worst
	}
	if len(t.Series) == 0 || len(t.Series[0].Points) == 0 {
		return bad
	}
	var sum float64
	for _, p := range t.Series[0].Points {
		sum += p.Value
	}
	v := sum / float64(len(t.Series[0].Points))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return bad
	}
	return v
}
