package tune

import (
	"io"
	"net/http"

	"robustify/internal/campaign"
)

// NewServer wraps a tune Manager in the robustd HTTP API:
//
//	POST   /tune               submit a tune Spec (JSON body) -> {"id": ...}
//	GET    /tune               list tune runs with progress
//	GET    /tune/{id}          status: state, per-candidate table, best-so-far trace
//	GET    /tune/{id}/trace    the raw durable tune.json trace
//	POST   /tune/{id}/cancel   stop; completed evaluations stay durable
//	POST   /tune/{id}/resume   reschedule a failed/interrupted/cancelled run
//
// robustd mounts this beside the campaign API; the evaluation campaigns
// a search spawns are ordinary campaigns, visible under /campaigns.
func NewServer(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /tune", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			campaign.HTTPError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := ParseSpec(body)
		if err != nil {
			campaign.HTTPError(w, http.StatusBadRequest, err)
			return
		}
		id, err := m.Submit(spec)
		if err != nil {
			campaign.HTTPError(w, http.StatusInternalServerError, err)
			return
		}
		campaign.WriteJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /tune", func(w http.ResponseWriter, r *http.Request) {
		campaign.WriteJSON(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /tune/{id}", func(w http.ResponseWriter, r *http.Request) {
		status, err := m.Get(r.PathValue("id"))
		if err != nil {
			campaign.HTTPError(w, http.StatusNotFound, err)
			return
		}
		campaign.WriteJSON(w, http.StatusOK, status)
	})

	mux.HandleFunc("GET /tune/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := m.Trace(r.PathValue("id"))
		if err != nil {
			campaign.HTTPError(w, http.StatusNotFound, err)
			return
		}
		campaign.WriteJSON(w, http.StatusOK, tr)
	})

	mux.HandleFunc("POST /tune/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			campaign.HTTPError(w, http.StatusNotFound, err)
			return
		}
		campaign.WriteJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	})

	mux.HandleFunc("POST /tune/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Resume(r.PathValue("id")); err != nil {
			campaign.HTTPError(w, http.StatusConflict, err)
			return
		}
		campaign.WriteJSON(w, http.StatusAccepted, map[string]string{"status": "resuming"})
	})

	return mux
}
