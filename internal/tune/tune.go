// Package tune searches a workload's parameter space — the paper's
// actual payoff. The methodology recasts an application as a numerical
// optimization problem whose error tolerance depends on tunable knobs:
// penalty weight, step-schedule constants, iteration budgets. Sweeping
// fault rates at fixed knobs (the campaign layer) measures one
// configuration; tune finds the configuration.
//
// The search is deterministic coordinate descent with successive
// halving: knobs are optimized one at a time in declared order, and each
// coordinate step races the knob's declared grid with doubling trial
// budgets, halving the candidate set per rung. Every candidate
// evaluation is one durable campaign submitted through the campaign
// Manager, so each is automatically checkpointed per trial, resumable
// after a crash, and shardable across a robustworker fleet — the tune
// layer adds zero new execution code.
//
// Progress persists to a tune.json trace beside the evaluations: a
// killed daemon resumes the search from the last completed evaluation
// and finishes with a trace byte-identical to an uninterrupted run
// (pinned by tests). Determinism holds because the search order is a
// pure function of the spec, evaluation seeds derive from the tune seed
// exactly like harness.Sweep.TrialSeed derives trial seeds, and
// campaign tables are themselves byte-deterministic.
package tune

import (
	"bytes"
	"encoding/json"
	"fmt"

	"robustify/internal/campaign"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/harness"
)

// Tune run lifecycle states, mirroring the campaign layer: interrupted
// marks a run whose owning process died (or shut down) mid-search; it
// is resumable.
//
//lint:enum tune-state every dispatch over tune states must cover all five (StateCancelled lives in manager.go)
const (
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Spec declares a parameter search over one workload's knob space under
// a fixed fault model. Specs round-trip through JSON and persist in the
// tune.json trace, so a trace is self-describing.
type Spec struct {
	// Name is a human label; it defaults to "tune-" + workload.
	Name string `json:"name,omitempty"`
	// Workload names a registered custom-sweep workload with declared
	// knobs (see campaign.Workloads).
	Workload string `json:"workload"`
	// Rates is the fixed fault-rate grid every candidate is evaluated
	// under; comparing configurations requires a fixed fault model.
	Rates []float64 `json:"rates"`
	// Trials is the rung-0 trial budget per cell; each successive-halving
	// rung doubles it (0 = 4).
	Trials int `json:"trials,omitempty"`
	// Iters scales iterative workloads (0 = workload default).
	Iters int `json:"iters,omitempty"`
	// Agg is the per-cell aggregator of each evaluation campaign: "mean"
	// (default) or "median".
	Agg string `json:"agg,omitempty"`
	// Seed derives every evaluation's campaign seed; same spec + seed,
	// same search, same trace.
	Seed uint64 `json:"seed"`
	// Knobs restricts the search to a subset of the workload's declared
	// knobs (default: all, in declared order).
	Knobs []string `json:"knobs,omitempty"`
	// Rounds bounds the coordinate-descent passes over the knob list
	// (0 = 2). A round with no knob change ends the search early.
	Rounds int `json:"rounds,omitempty"`
	// Workers bounds per-evaluation trial parallelism (0 = GOMAXPROCS).
	// Scheduling only — it never changes results.
	Workers int `json:"workers,omitempty"`
	// FaultModel fixes the injection model every evaluation campaign runs
	// under (nil = default; see fpu/faultmodel). Selecting a parameterized
	// family also puts its fm_* parameters (see campaign.ModelKnobs) on
	// the search grid next to the workload's algorithm knobs, so burst
	// length or exponent-weight ratio can be tuned like any other knob.
	FaultModel *faultmodel.Spec `json:"fault_model,omitempty"`
}

// Title returns the display name of the run.
func (s *Spec) Title() string {
	if s.Name != "" {
		return s.Name
	}
	return "tune-" + s.Workload
}

// rung0 returns the rung-0 trial budget.
func (s *Spec) rung0() int {
	if s.Trials > 0 {
		return s.Trials
	}
	return 4
}

// rounds returns the coordinate-descent pass bound.
func (s *Spec) rounds() int {
	if s.Rounds > 0 {
		return s.Rounds
	}
	return 2
}

// Validate checks the spec against the workload registry.
func (s *Spec) Validate() error {
	w, err := WorkloadFor(s)
	if err != nil {
		return err
	}
	if err := s.FaultModel.Validate(); err != nil {
		return err
	}
	if len(s.effectiveKnobs(w)) == 0 {
		return fmt.Errorf("tune: workload %q declares no knobs; nothing to search", s.Workload)
	}
	if len(s.Rates) == 0 {
		return fmt.Errorf("tune: spec needs at least one fault rate")
	}
	for _, r := range s.Rates {
		if r < 0 || r != r {
			return fmt.Errorf("tune: invalid fault rate %v", r)
		}
	}
	if s.Trials < 0 || s.Iters < 0 || s.Rounds < 0 || s.Workers < 0 {
		return fmt.Errorf("tune: negative trials/iters/rounds/workers")
	}
	if _, err := harness.AggregatorByName(s.Agg); err != nil {
		return err
	}
	for _, name := range s.Knobs {
		if _, ok := s.knobByName(w, name); !ok {
			return fmt.Errorf("tune: workload %s has no knob %q", s.Workload, name)
		}
	}
	// Every searched knob needs a non-empty grid: successive halving has
	// no candidates to race otherwise. Rejecting here keeps a
	// mis-declared registry entry from wedging the drive goroutine.
	for _, name := range s.searchKnobs(w) {
		if k, ok := s.knobByName(w, name); !ok || len(k.Grid) == 0 {
			return fmt.Errorf("tune: workload %s knob %q declares no search grid", s.Workload, name)
		}
	}
	return nil
}

// effectiveKnobs is the knob space the search ranges over: the
// workload's declared knobs followed by the fault-model family's fm_*
// parameter knobs (none for the default and memory families). Model
// knobs ride in evaluation Params under their fm_ prefix, which the
// campaign compiler splits back out (see campaign.ModelKnobs).
func (s *Spec) effectiveKnobs(w campaign.Workload) []campaign.Knob {
	knobs := append([]campaign.Knob(nil), w.Knobs...)
	return append(knobs, campaign.ModelKnobs(s.FaultModel.ModelName())...)
}

// knobByName resolves a knob from the effective (workload + fault-model)
// knob space.
func (s *Spec) knobByName(w campaign.Workload, name string) (campaign.Knob, bool) {
	for _, k := range s.effectiveKnobs(w) {
		if k.Name == name {
			return k, true
		}
	}
	return campaign.Knob{}, false
}

// defaultParams is the search's starting configuration: every effective
// knob at its declared default.
func (s *Spec) defaultParams(w campaign.Workload) map[string]float64 {
	knobs := s.effectiveKnobs(w)
	p := make(map[string]float64, len(knobs))
	for _, k := range knobs {
		p[k.Name] = k.Default
	}
	return p
}

// WorkloadFor resolves the spec's workload from the campaign registry.
func WorkloadFor(s *Spec) (campaign.Workload, error) {
	w, err := campaign.WorkloadByName(s.Workload)
	if err != nil {
		return campaign.Workload{}, fmt.Errorf("tune: %w", err)
	}
	return w, nil
}

// searchKnobs returns the knob names the search walks, in declared
// order — workload knobs then fault-model knobs — or the spec's subset
// when given.
func (s *Spec) searchKnobs(w campaign.Workload) []string {
	if len(s.Knobs) == 0 {
		knobs := s.effectiveKnobs(w)
		names := make([]string, len(knobs))
		for i, k := range knobs {
			names[i] = k.Name
		}
		return names
	}
	return s.Knobs
}

// ParseSpec decodes and validates a JSON spec, rejecting unknown fields
// so typos surface at submit time.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("tune: bad spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// specKey is the identity of a spec for resume matching: Name and
// Workers don't shape the search.
func specKey(s Spec) string {
	s.Name = ""
	s.Workers = 0
	b, _ := json.Marshal(s)
	return string(b)
}

// ResumeCompatible reports whether a stored spec and a requested spec
// drive the same search.
func ResumeCompatible(a, b Spec) bool { return specKey(a) == specKey(b) }

// EvalSeed derives evaluation n's campaign seed from the tune seed,
// using exactly the mixing Sweep.TrialSeed applies to trial seeds.
func EvalSeed(tuneSeed uint64, n int) uint64 {
	return harness.Sweep{Seed: tuneSeed}.TrialSeed(0, n)
}

// Eval is one candidate evaluation: a full knob configuration run as
// one durable campaign at a successive-halving trial budget. Objective
// is nil until the campaign completes. Evals append to the trace in
// submission order; N is that ordinal and fixes the evaluation's seed.
type Eval struct {
	N      int                `json:"n"`
	Params map[string]float64 `json:"params"`
	Trials int                `json:"trials"`
	Seed   uint64             `json:"seed"`
	// Campaign is the backing campaign's id in the campaign manager.
	Campaign  string   `json:"campaign"`
	Objective *float64 `json:"objective,omitempty"`
}

// BestStep is one improvement in the best-so-far trajectory.
type BestStep struct {
	Eval      int                `json:"eval"`
	Params    map[string]float64 `json:"params"`
	Objective float64            `json:"objective"`
}

// Trace is the durable record of one tune run — the entire search
// state. It is rewritten atomically after every submission and every
// completed evaluation, so a crash at any point loses no completed
// work, and a finished trace for a given spec+seed is byte-identical
// no matter how often the run was interrupted. It deliberately carries
// no timestamps: wall-clock would break that guarantee.
type Trace struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	Spec  Spec   `json:"spec"`
	// Evals is the per-candidate table, in submission order.
	Evals []*Eval `json:"evals"`
	// Best is the best-so-far trajectory: one step per improvement, in
	// evaluation-completion order (which is deterministic). Evaluations
	// at different successive-halving rungs carry different trial
	// budgets, so early low-budget steps are noisier than later ones;
	// the authoritative winner is Final, chosen at the highest budget.
	Best []BestStep `json:"best,omitempty"`
	// Final is the winning configuration once the search completes.
	Final          map[string]float64 `json:"final,omitempty"`
	FinalObjective *float64           `json:"final_objective,omitempty"`
}

// cloneParams copies a knob configuration.
func cloneParams(p map[string]float64) map[string]float64 {
	c := make(map[string]float64, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// paramsKey is the cache identity of a configuration at a trial budget.
// JSON marshals map keys sorted, so the key is canonical.
func paramsKey(p map[string]float64, trials int) string {
	b, _ := json.Marshal(p)
	return fmt.Sprintf("%d|%s", trials, b)
}
