package tune

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/dispatch"
	"robustify/internal/fpu/faultmodel"
)

// quickSpec is the fast search used across tests: leastsq/cg trials are
// tens of microseconds, and restricting the search to the budget knob
// bounds the run at 12 evaluations.
func quickSpec() Spec {
	return Spec{
		Workload: "leastsq/cg",
		Rates:    []float64{0.02, 0.1},
		Trials:   2,
		Seed:     9,
		Knobs:    []string{"budget"},
		Rounds:   1,
	}
}

// runTune executes one tune run to completion over fresh managers
// rooted at dir, returning the raw trace bytes.
func runTune(t *testing.T, dir string, spec Spec) []byte {
	t.Helper()
	cm, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	tm, err := NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	id, err := tm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Wait(id); err != nil {
		t.Fatal(err)
	}
	return readTraceBytes(t, dir, id)
}

func readTraceBytes(t *testing.T, dir, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "tunes", id, traceFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTuneDeterministicTrace: same spec + seed, two fresh data roots,
// byte-identical tune.json — the acceptance criterion for the search's
// determinism.
func TestTuneDeterministicTrace(t *testing.T) {
	spec := quickSpec()
	a := runTune(t, t.TempDir(), spec)
	b := runTune(t, t.TempDir(), spec)
	if !bytes.Equal(a, b) {
		t.Errorf("traces differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	var tr Trace
	if err := json.Unmarshal(a, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.State != StateDone {
		t.Errorf("state = %s, want done", tr.State)
	}
	if len(tr.Final) == 0 || tr.FinalObjective == nil {
		t.Errorf("no final configuration recorded: %+v", tr)
	}
	if len(tr.Evals) == 0 || len(tr.Best) == 0 {
		t.Errorf("trace missing evals/best trajectory")
	}
	for _, e := range tr.Evals {
		if e.Objective == nil {
			t.Errorf("eval %d left incomplete in a done trace", e.N)
		}
		if e.Seed != EvalSeed(spec.Seed, e.N) {
			t.Errorf("eval %d seed %d not derived from the tune seed", e.N, e.Seed)
		}
	}
	// The search may never report a configuration worse than one it
	// already completed: the best trajectory is monotone (minimizing).
	for i := 1; i < len(tr.Best); i++ {
		if tr.Best[i].Objective >= tr.Best[i-1].Objective {
			t.Errorf("best trajectory not improving at step %d: %v", i, tr.Best)
		}
	}
}

// TestTuneResumeByteIdentical interrupts a search mid-flight (graceful
// daemon-style wind-down), restarts fresh managers over the same data
// root, resumes, and requires the final trace byte-identical to an
// uninterrupted run in a separate root.
func TestTuneResumeByteIdentical(t *testing.T) {
	spec := Spec{
		Workload: "lp/apsp", // ~ms per trial: wide window to interrupt
		Rates:    []float64{0.01},
		Trials:   2,
		Seed:     4,
		Knobs:    []string{"mu"},
		Rounds:   1,
	}
	want := runTune(t, t.TempDir(), spec)

	dir := t.TempDir()
	cm, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		t.Fatal(err)
	}
	id, err := tm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the search get some evaluations in, then wind down mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := tm.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.EvalsCompleted >= 2 || st.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never progressed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tm.Interrupt()
	cm.Close()
	if !tm.Shutdown(30 * time.Second) {
		t.Fatal("tune shutdown timed out")
	}

	// Restart: recover both registries, autoresume, finish.
	cm2, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cm2.Close()
	tm2, err := NewManager(filepath.Join(dir, "tunes"), cm2)
	if err != nil {
		t.Fatal(err)
	}
	defer tm2.Close()
	st, err := tm2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == StateInterrupted {
		if ids := tm2.ResumeInterrupted(); len(ids) != 1 || ids[0] != id {
			t.Fatalf("autoresume resumed %v, want [%s]", ids, id)
		}
	} else if st.State != StateDone {
		t.Fatalf("recovered state = %s", st.State)
	}
	if err := tm2.Wait(id); err != nil {
		t.Fatal(err)
	}
	got := readTraceBytes(t, dir, id)
	if !bytes.Equal(want, got) {
		t.Errorf("resumed trace differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestTuneCancelPreemptsRung: Cancel must stop the search where it
// stands — not sit out the rest of the current successive-halving rung —
// and must cancel the evaluation campaigns underneath. With slow trials
// no evaluation can have finished between submission and cancel, so any
// completed evaluation afterwards means the cancel waited out work.
func TestTuneCancelPreemptsRung(t *testing.T) {
	dir := t.TempDir()
	cm, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	tm, err := NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	spec := Spec{
		Workload: "lp/apsp",
		Rates:    []float64{0.01},
		Iters:    20000, // ~50ms per trial: nothing completes before the cancel lands
		Trials:   4,
		Seed:     8,
		Knobs:    []string{"mu"},
		Rounds:   1,
	}
	id, err := tm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := tm.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.EvalsSubmitted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never submitted an evaluation")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tm.Cancel(id); err != nil {
		t.Fatal(err)
	}
	tm.Wait(id)
	st, err := tm.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("state after cancel = %s, want cancelled", st.State)
	}
	if st.EvalsCompleted != 0 {
		t.Errorf("cancel waited out %d evaluations of the rung", st.EvalsCompleted)
	}
	// The evaluation campaigns underneath must be winding down too, not
	// silently running the rung to completion.
	for _, s := range cm.List() {
		if s.State == campaign.StateRunning || s.State == campaign.StateQueued {
			if err := cm.Wait(s.ID); err != nil {
				t.Fatal(err)
			}
			got, err := cm.Get(s.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.State == campaign.StateDone {
				t.Errorf("evaluation campaign %s ran to completion after tune cancel", s.ID)
			}
		}
	}
}

// execShard runs a lease's shard exactly as cmd/robustworker does.
func execShard(t *testing.T, lr *dispatch.LeaseResponse) []dispatch.TrialResult {
	t.Helper()
	spec, err := campaign.ParseSpec(lr.Spec)
	if err != nil {
		t.Fatalf("worker: parse spec: %v", err)
	}
	camp, err := campaign.Compile(spec)
	if err != nil {
		t.Fatalf("worker: compile: %v", err)
	}
	u := camp.Plan.Units[lr.Shard.Unit]
	trials := dispatch.TrialsPerCell(u.Sweep.Trials)
	skip := map[int]bool{}
	for _, i := range lr.Shard.Skip {
		skip[i] = true
	}
	var out []dispatch.TrialResult
	for i := lr.Shard.Start; i < lr.Shard.Start+lr.Shard.Count; i++ {
		if skip[i] {
			continue
		}
		r, tr := i/trials, i%trials
		res := dispatch.TrialResult{
			Unit: lr.Shard.Unit, RateIdx: r, TrialIdx: tr,
			Rate: u.Sweep.Rates[r], Seed: u.Sweep.TrialSeed(r, tr),
		}
		res.Value = u.Fn(res.Rate, res.Seed)
		out = append(out, res)
	}
	return out
}

// TestTuneDistributedMatchesInProcess: the same tune spec driven
// through a dispatch coordinator and one worker over real HTTP must
// produce a trace byte-identical to the in-process run — the tune layer
// inherits distribution for free.
func TestTuneDistributedMatchesInProcess(t *testing.T) {
	spec := quickSpec()
	want := runTune(t, t.TempDir(), spec)

	dir := t.TempDir()
	cm, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	cm.SetDispatcher(dispatch.New(dispatch.Options{LeaseTTL: time.Minute, ShardSize: 4}))
	ts := httptest.NewServer(campaign.NewServer(cm))
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		cl := dispatch.NewClient(ts.URL, "tune-worker")
		if err := cl.Register(ctx); err != nil {
			t.Errorf("worker register: %v", err)
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			lr, err := cl.Lease(ctx)
			if err != nil {
				t.Errorf("worker lease: %v", err)
				return
			}
			if lr == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			if _, err := cl.Report(ctx, lr.Campaign, lr.Lease, execShard(t, lr), true); err != nil {
				t.Errorf("worker report: %v", err)
				return
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	tm, err := NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	id, err := tm.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Wait(id); err != nil {
		t.Fatal(err)
	}
	got := readTraceBytes(t, dir, id)
	if !bytes.Equal(want, got) {
		t.Errorf("distributed trace differs from in-process run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

func TestTuneSpecValidation(t *testing.T) {
	good := quickSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := map[string]Spec{
		"unknown workload": {Workload: "nope", Rates: []float64{0.1}},
		"no knobs":         {Workload: "sort/base", Rates: []float64{0.1}},
		"no rates":         {Workload: "leastsq/cg"},
		"bad rate":         {Workload: "leastsq/cg", Rates: []float64{-1}},
		"unknown knob":     {Workload: "leastsq/cg", Rates: []float64{0.1}, Knobs: []string{"nope"}},
		"bad agg":          {Workload: "leastsq/cg", Rates: []float64{0.1}, Agg: "p99"},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseSpec([]byte(`{"workload":"leastsq/cg","rates":[0.1],"bogus":1}`)); err == nil {
		t.Error("unknown spec field accepted")
	}
}

// TestTuneServerEndpoints drives the HTTP API end to end: submit, poll
// to done, status fields, raw trace, and list.
func TestTuneServerEndpoints(t *testing.T) {
	dir := t.TempDir()
	cm, err := campaign.NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	tm, err := NewManager(filepath.Join(dir, "tunes"), cm)
	if err != nil {
		t.Fatal(err)
	}
	defer tm.Close()
	ts := httptest.NewServer(NewServer(tm))
	defer ts.Close()

	body, _ := json.Marshal(quickSpec())
	resp, err := http.Post(ts.URL+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}
	if err := tm.Wait(sub.ID); err != nil {
		t.Fatal(err)
	}

	var st Status
	getJSON(t, ts.URL+"/tune/"+sub.ID, &st)
	if st.State != StateDone || len(st.Evals) == 0 || len(st.Final) == 0 {
		t.Errorf("status = %+v", st)
	}
	if st.EvalsCompleted != st.EvalsSubmitted {
		t.Errorf("done run has %d/%d evals completed", st.EvalsCompleted, st.EvalsSubmitted)
	}
	var tr Trace
	getJSON(t, ts.URL+"/tune/"+sub.ID+"/trace", &tr)
	if tr.ID != sub.ID || tr.State != StateDone {
		t.Errorf("trace = %+v", tr)
	}
	var list []Status
	getJSON(t, ts.URL+"/tune", &list)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("list = %+v", list)
	}
	// Unknown id and bad spec are proper HTTP errors.
	if resp, err := http.Get(ts.URL + "/tune/t9999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(ts.URL+"/tune", "application/json", strings.NewReader(`{"workload":"nope"}`)); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestTuneModelKnobSearch: fault-model parameters are first-class tuning
// knobs. A burst-model search over fm_burst_len must range over the model
// grid, stamp the fault model on every evaluation campaign, and remain
// byte-deterministic; and a knobless workload becomes tunable once a
// parameterized model family supplies knobs.
func TestTuneModelKnobSearch(t *testing.T) {
	spec := Spec{
		Workload:   "leastsq/cg",
		Rates:      []float64{0.05},
		Trials:     2,
		Seed:       6,
		FaultModel: &faultmodel.Spec{Name: faultmodel.Burst},
		Knobs:      []string{"fm_burst_len"},
		Rounds:     1,
	}
	a := runTune(t, t.TempDir(), spec)
	b := runTune(t, t.TempDir(), spec)
	if !bytes.Equal(a, b) {
		t.Error("model-knob search not byte-deterministic")
	}
	var tr Trace
	if err := json.Unmarshal(a, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.State != StateDone {
		t.Fatalf("state = %s, want done", tr.State)
	}
	values := map[float64]bool{}
	for _, e := range tr.Evals {
		v, ok := e.Params["fm_burst_len"]
		if !ok {
			t.Fatalf("eval %d has no fm_burst_len: %v", e.N, e.Params)
		}
		values[v] = true
	}
	if len(values) < 2 {
		t.Errorf("search never varied fm_burst_len: %v", values)
	}
	if _, ok := tr.Final["fm_burst_len"]; !ok {
		t.Errorf("final configuration lost the model knob: %v", tr.Final)
	}

	// Validation: model knobs exist only under their family.
	noModel := spec
	noModel.FaultModel = nil
	if err := noModel.Validate(); err == nil {
		t.Error("fm_burst_len accepted without the burst model selected")
	}

	// A workload with no knobs of its own has a search space once the
	// model contributes parameters — and none without.
	knobless := Spec{
		Workload:   "sort/base",
		Rates:      []float64{0.05},
		Trials:     1,
		Seed:       2,
		FaultModel: &faultmodel.Spec{Name: faultmodel.Burst},
		Rounds:     1,
	}
	if err := knobless.Validate(); err != nil {
		t.Errorf("knobless workload with model knobs rejected: %v", err)
	}
	knobless.FaultModel = nil
	if err := knobless.Validate(); err == nil {
		t.Error("knobless workload with no model knobs accepted")
	}
}
