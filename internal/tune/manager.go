package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/fsutil"
)

// EventSink receives tune lifecycle trace events (tune.submitted,
// tune.rung, tune.eval, tune.done, ...), labeled with the run id. The
// interface mirrors dispatch.EventSink so *obs.Hub satisfies both.
type EventSink interface {
	Emit(kind, campaign, detail string)
}

// traceFile is the durable search state of one tune run, written
// atomically (temp + rename) inside the run's directory under the tune
// root.
const traceFile = "tune.json"

// StateCancelled marks a run the operator stopped deliberately: it is
// resumable on request but skipped by autoresume.
//
//lint:enum tune-state late-added member of the tune lifecycle declared in tune.go
const StateCancelled = "cancelled"

// resumable reports whether Resume may reschedule a run in this state.
func resumable(state string) bool {
	return state == StateFailed || state == StateInterrupted || state == StateCancelled
}

// Manager schedules tune runs. Every run drives its search on its own
// goroutine, evaluating candidates as campaigns submitted through the
// wrapped campaign.Manager — which is what makes each evaluation
// durable, resumable, and (when a dispatcher is attached) distributed.
// Run state persists to <root>/<id>/tune.json; a new manager over the
// same root recovers every prior run, classifying ownerless running
// traces as interrupted, exactly like the campaign registry.
type Manager struct {
	root string
	cm   *campaign.Manager

	mu     sync.Mutex
	byID   map[string]*run
	order  []string
	nextID int
	closed bool

	// events has its own lock so emit is safe from any call site,
	// including paths that already hold m.mu (Resume emits under it).
	evmu   sync.Mutex
	events EventSink
}

// SetEvents attaches a trace-event sink for run lifecycle events. Call
// at boot, before runs are submitted or resumed.
func (m *Manager) SetEvents(sink EventSink) {
	m.evmu.Lock()
	m.events = sink
	m.evmu.Unlock()
}

// eventSink reads the attached sink (nil when none).
func (m *Manager) eventSink() EventSink {
	m.evmu.Lock()
	defer m.evmu.Unlock()
	return m.events
}

// emit forwards one lifecycle event, labeled with the run id.
func (m *Manager) emit(kind, id, detail string) {
	if sink := m.eventSink(); sink != nil {
		sink.Emit(kind, id, detail)
	}
}

type run struct {
	id   string
	dir  string
	spec Spec
	w    campaign.Workload
	// events is set by the drive goroutine before the search starts and
	// read only from it, so rung/eval events need no locking.
	events EventSink

	mu         sync.Mutex
	trace      *Trace
	cancel     context.CancelFunc
	done       chan struct{}
	userCancel bool
	// adoptAt is the evaluation ordinal at which this drive attempt
	// started: the only ordinal whose campaign may already exist without
	// a trace entry (the previous daemon died between submitting it and
	// persisting the trace), and therefore the only submission that pays
	// the adoption scan.
	adoptAt int
}

// Status is the externally visible state of one tune run.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	Spec  Spec   `json:"spec"`
	// EvalsSubmitted and EvalsCompleted count candidate evaluations; the
	// search's total is not known up front (rounds can end early).
	EvalsSubmitted int `json:"evals_submitted"`
	EvalsCompleted int `json:"evals_completed"`
	// Best is the best-so-far trajectory; Final the winning
	// configuration once done.
	Best           []BestStep         `json:"best,omitempty"`
	Final          map[string]float64 `json:"final,omitempty"`
	FinalObjective *float64           `json:"final_objective,omitempty"`
	// Evals is the per-candidate table (detailed status only).
	Evals []Eval `json:"evals,omitempty"`
}

// NewManager creates a tune manager storing run traces under root and
// recovers every run a previous daemon left there. It does not take its
// own lock: the campaign manager's data-root flock already serializes
// daemon ownership, and the tune root is expected to live inside it.
func NewManager(root string, cm *campaign.Manager) (*Manager, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("tune: root: %w", err)
	}
	m := &Manager{root: root, cm: cm, byID: make(map[string]*run)}
	if err := m.recoverAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// recoverAll rebuilds the registry from the tune root. Unloadable
// directories are logged and skipped; their names still advance the id
// counter.
func (m *Manager) recoverAll() error {
	entries, err := os.ReadDir(m.root)
	if err != nil {
		return fmt.Errorf("tune: scan root: %w", err)
	}
	for _, e := range entries { // sorted by name: ids stay ordered
		if !e.IsDir() {
			continue
		}
		advance := func() {
			if n, ok := runID(e.Name()); ok && n > m.nextID {
				m.nextID = n
			}
		}
		dir := filepath.Join(m.root, e.Name())
		tr, err := readTrace(dir)
		if err != nil {
			log.Printf("tune: skipping unrecoverable %s: %v", dir, err)
			advance()
			continue
		}
		if tr == nil {
			// No trace. A reclaimable husk of a Submit a crash cut short
			// — provably our own leftover: manager-named (tNNNN) and
			// holding nothing beyond a torn trace temp file — is deleted
			// so it cannot end up stranded below later ids. Anything
			// else, an operator's dir under the tune root included, is
			// not ours to touch; manager-named stray data additionally
			// keeps its id reserved.
			if _, ours := runID(e.Name()); ours && reusableRunDir(dir) {
				if err := os.RemoveAll(dir); err != nil {
					log.Printf("tune: remove crash husk %s: %v", dir, err)
					advance()
				}
			} else {
				advance()
			}
			continue
		}
		advance()
		if err := tr.Spec.Validate(); err != nil {
			log.Printf("tune: skipping %s: %v", dir, err)
			continue
		}
		w, _ := WorkloadFor(&tr.Spec)
		if tr.State == StateRunning || tr.State == "" {
			// The process that owned this search is gone.
			tr.State = StateInterrupted
			if err := writeTrace(dir, tr); err != nil {
				log.Printf("tune: %s: persist recovered state: %v", e.Name(), err)
			}
		}
		done := make(chan struct{})
		close(done) // no goroutine owns a recovered run until Resume
		r := &run{
			id: e.Name(), dir: dir, spec: tr.Spec, w: w,
			trace: tr, cancel: func() {}, done: done,
		}
		m.byID[r.id] = r
		m.order = append(m.order, r.id)
	}
	return nil
}

// reusableRunDir reports whether dir is the husk of a Submit a crash
// cut short: no tune.json, and nothing inside beyond the torn temp file
// an interrupted trace write leaves. Anything else — foreign files, an
// operator's scratch data — is somebody's data and keeps its id
// reserved, mirroring the campaign layer's reusableDir caution.
func reusableRunDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.Name() != traceFile+".tmp" {
			return false
		}
	}
	return true
}

// runID parses a manager-allocated directory name ("t0042" -> 42).
func runID(name string) (int, bool) {
	if len(name) < 2 || name[0] != 't' {
		return 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Submit validates the spec, allocates a run directory, persists the
// initial trace, and starts the search. It returns the run id
// immediately; the search proceeds in the background.
func (m *Manager) Submit(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	w, err := WorkloadFor(&spec)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("tune: manager closed")
	}
	// Husk directories a crash cut out of a previous Submit — no trace,
	// no contents beyond a torn temp file — are reclaimed, keeping id
	// allocation deterministic across kill-and-resume runs.
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("t%04d", m.nextID)
		dir := filepath.Join(m.root, id)
		if _, err := os.Stat(dir); os.IsNotExist(err) || reusableRunDir(dir) {
			break
		}
	}
	m.mu.Unlock()

	dir := filepath.Join(m.root, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tr := &Trace{ID: id, State: StateRunning, Spec: spec}
	if err := writeTrace(dir, tr); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &run{
		id: id, dir: dir, spec: spec, w: w,
		trace: tr, cancel: cancel, done: make(chan struct{}),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		os.RemoveAll(dir)
		return "", fmt.Errorf("tune: manager closed")
	}
	m.byID[id] = r
	m.order = append(m.order, id)
	go m.drive(ctx, r, r.done)
	m.mu.Unlock()
	m.emit("tune.submitted", id, spec.Title())
	return id, nil
}

// Resume reschedules a failed, interrupted, or cancelled run. The trace
// already records every submitted evaluation, so only the remainder of
// the search executes; the final trace is byte-identical to an
// uninterrupted run.
func (m *Manager) Resume(id string) error {
	r, err := m.runByID(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	state, done := r.trace.State, r.done
	r.mu.Unlock()
	if !resumable(state) {
		return fmt.Errorf("tune: %s is %s; only failed, interrupted, or cancelled runs resume", id, state)
	}
	<-done // the previous drive goroutine has fully exited

	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		cancel()
		return fmt.Errorf("tune: manager closed")
	}
	r.mu.Lock()
	if !resumable(r.trace.State) { // lost a race with another Resume
		r.mu.Unlock()
		cancel()
		return fmt.Errorf("tune: %s already resumed", id)
	}
	r.trace.State = StateRunning
	r.trace.Error = ""
	r.userCancel = false
	r.cancel = cancel
	r.done = make(chan struct{})
	done = r.done
	r.persistLocked()
	r.mu.Unlock()
	go m.drive(ctx, r, done)
	m.emit("tune.resumed", id, "")
	return nil
}

// ResumeInterrupted reschedules every interrupted run (the -autoresume
// startup path) and returns the ids it resumed.
func (m *Manager) ResumeInterrupted() []string {
	var ids []string
	for _, s := range m.List() {
		if s.State != StateInterrupted {
			continue
		}
		if err := m.Resume(s.ID); err != nil {
			log.Printf("tune: autoresume %s: %v", s.ID, err)
			continue
		}
		ids = append(ids, s.ID)
	}
	return ids
}

// Cancel stops a running search — including the evaluation campaigns
// currently executing underneath it, so "cancelling" does not quietly
// run the rest of the rung. Completed trials stay durable and Resume
// continues from them; autoresume leaves cancelled runs alone.
func (m *Manager) Cancel(id string) error {
	r, err := m.runByID(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	interrupted := r.trace.State == StateInterrupted
	if interrupted {
		r.trace.State = StateCancelled
		r.persistLocked()
	} else {
		r.userCancel = true
	}
	cancel := r.cancel
	var pending []string
	for _, e := range r.trace.Evals {
		if e.Objective == nil {
			pending = append(pending, e.Campaign)
		}
	}
	r.mu.Unlock()
	if !interrupted {
		cancel()
	}
	// Sweep the pending evaluations in every branch: an interrupted
	// run's orphaned evaluation campaigns would otherwise be resurrected
	// by campaign-level -autoresume on the next boot, burning compute
	// for a search the operator cancelled.
	for _, cid := range pending {
		if err := m.cm.Cancel(cid); err != nil {
			log.Printf("tune: cancel evaluation %s: %v", cid, err)
		}
	}
	m.emit("tune.cancel", id, "")
	return nil
}

// Wait blocks until the run's current drive goroutine exits.
func (m *Manager) Wait(id string) error {
	r, err := m.runByID(id)
	if err != nil {
		return err
	}
	r.mu.Lock()
	done := r.done
	r.mu.Unlock()
	<-done
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace.Error != "" {
		return fmt.Errorf("tune: %s: %s", id, r.trace.Error)
	}
	return nil
}

// List returns every run's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if r, err := m.runByID(id); err == nil {
			out = append(out, r.status(false))
		}
	}
	return out
}

// Get returns one run's status with the per-candidate table.
func (m *Manager) Get(id string) (Status, error) {
	r, err := m.runByID(id)
	if err != nil {
		return Status{}, err
	}
	return r.status(true), nil
}

// Trace returns a deep copy of the run's current trace.
func (m *Manager) Trace(id string) (*Trace, error) {
	r, err := m.runByID(id)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace.clone(), nil
}

// Interrupt marks the manager closed and cancels every live search
// without waiting — the first half of daemon shutdown, so no new
// evaluation campaigns are submitted while the campaign manager winds
// down. Idempotent.
func (m *Manager) Interrupt() {
	m.mu.Lock()
	m.closed = true
	runs := make([]*run, 0, len(m.byID))
	for _, r := range m.byID {
		//lint:detmap-exempt shutdown fan-out: cancellation order is not observable in any durable artifact
		runs = append(runs, r)
	}
	m.mu.Unlock()
	for _, r := range runs {
		r.mu.Lock()
		cancel := r.cancel
		r.mu.Unlock()
		cancel()
	}
}

// Close cancels every run and waits (indefinitely) for the drive
// goroutines to exit; in-flight searches persist as interrupted so a
// successor daemon's autoresume finishes them.
func (m *Manager) Close() { m.Shutdown(0) }

// Shutdown is Close with a bounded deadline (0 = forever). It returns
// false when drive goroutines were still alive at the deadline — e.g. a
// wedged evaluation campaign the campaign manager's own shutdown gave
// up on. Their traces still say running, which the next boot classifies
// as interrupted, exactly like a crash.
func (m *Manager) Shutdown(timeout time.Duration) bool {
	m.Interrupt()
	m.mu.Lock()
	runs := make([]*run, 0, len(m.byID))
	for _, r := range m.byID {
		//lint:detmap-exempt shutdown fan-out: wait order is not observable in any durable artifact
		runs = append(runs, r)
	}
	m.mu.Unlock()
	var deadline <-chan time.Time
	if timeout > 0 {
		tmr := time.NewTimer(timeout)
		defer tmr.Stop()
		deadline = tmr.C
	}
	clean := true
	timedOut := false
	for _, r := range runs {
		r.mu.Lock()
		done := r.done
		r.mu.Unlock()
		if !timedOut {
			select {
			case <-done:
				continue
			case <-deadline:
				timedOut = true
			}
		}
		// The deadline fired once; poll the remaining runs without
		// blocking so already-finished ones still count as clean.
		select {
		case <-done:
		default:
			clean = false
		}
	}
	return clean
}

func (m *Manager) runByID(id string) (*run, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("tune: unknown run %q", id)
	}
	return r, nil
}

// drive owns one search attempt from (re)start to a terminal state.
func (m *Manager) drive(ctx context.Context, r *run, done chan struct{}) {
	defer close(done)
	r.events = m.eventSink()
	best, obj, err := r.search(ctx, m.cm)
	var cancelEvals []string
	r.mu.Lock()
	switch {
	case err == nil:
		r.trace.State = StateDone
		r.trace.Final = best
		r.trace.FinalObjective = &obj
	case ctx.Err() != nil:
		if r.userCancel {
			r.trace.State = StateCancelled
			// Sweep the pending evaluations once more now that no further
			// submission can happen: an evaluation submitted between
			// Cancel's own sweep and the context check would otherwise
			// keep running after the search is gone.
			for _, e := range r.trace.Evals {
				if e.Objective == nil {
					cancelEvals = append(cancelEvals, e.Campaign)
				}
			}
		} else {
			r.trace.State = StateInterrupted
		}
	default:
		r.trace.State = StateFailed
		r.trace.Error = err.Error()
	}
	state, detail := r.trace.State, r.trace.Error
	r.persistLocked()
	r.mu.Unlock()
	for _, cid := range cancelEvals {
		if err := m.cm.Cancel(cid); err != nil {
			log.Printf("tune: cancel evaluation %s: %v", cid, err)
		}
	}
	m.emit("tune."+state, r.id, detail)
}

// search replays the deterministic search against the trace: already
// completed evaluations are served from it, evaluations submitted
// before a crash are adopted (their campaigns re-attached by name) and
// finished, and only genuinely new candidates submit new campaigns.
func (r *run) search(ctx context.Context, cm *campaign.Manager) (map[string]float64, float64, error) {
	r.mu.Lock()
	cache := make(map[string]*Eval, len(r.trace.Evals))
	for _, e := range r.trace.Evals {
		cache[paramsKey(e.Params, e.Trials)] = e
	}
	r.adoptAt = len(r.trace.Evals)
	r.mu.Unlock()

	batch := func(configs []map[string]float64, trials int) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.emit("tune.rung", fmt.Sprintf("candidates=%d trials=%d", len(configs), trials))
		// Submission pass, in candidate order: ordinals, seeds, and
		// campaign names are fixed by this order alone. The context is
		// re-checked per candidate so a cancelled search stops submitting
		// mid-rung instead of launching the rest of it.
		entries := make([]*Eval, len(configs))
		for i, cfg := range configs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			k := paramsKey(cfg, trials)
			if e, ok := cache[k]; ok {
				entries[i] = e
				continue
			}
			e, err := r.submitEval(cm, cfg, trials)
			if err != nil {
				return nil, err
			}
			cache[k] = e
			entries[i] = e
		}
		// Completion pass, also in candidate order, so the best-so-far
		// trajectory appends deterministically.
		out := make([]float64, len(configs))
		for i, e := range entries {
			if e.Objective != nil {
				out[i] = *e.Objective
				continue
			}
			if err := waitCampaign(ctx, cm, e.Campaign); err != nil {
				return nil, err
			}
			table, err := cm.Table(e.Campaign)
			if err != nil {
				return nil, err
			}
			obj := objective(table, r.w.Maximize)
			r.completeEval(e, obj)
			r.emit("tune.eval", fmt.Sprintf("e%04d objective=%g", e.N, obj))
			out[i] = obj
		}
		return out, nil
	}
	return searchLoop(&r.spec, r.w, batch)
}

// submitEval creates (or adopts) the campaign backing one evaluation
// and appends it to the trace. If a campaign with the evaluation's
// deterministic name already exists — the previous daemon died between
// submitting it and persisting the trace — it is adopted instead of
// resubmitted, keeping campaign ids aligned with an uninterrupted run.
func (r *run) submitEval(cm *campaign.Manager, cfg map[string]float64, trials int) (*Eval, error) {
	r.mu.Lock()
	n := len(r.trace.Evals)
	adopt := n == r.adoptAt
	r.mu.Unlock()
	e := &Eval{
		N:      n,
		Params: cloneParams(cfg),
		Trials: trials,
		Seed:   EvalSeed(r.spec.Seed, n),
	}
	name := fmt.Sprintf("%s/e%04d", r.id, n)
	cspec := campaign.Spec{
		Name: name,
		Custom: &campaign.CustomSweep{
			Workload: r.spec.Workload,
			Rates:    append([]float64(nil), r.spec.Rates...),
			Iters:    r.spec.Iters,
			Agg:      r.spec.Agg,
			Params:   cloneParams(cfg),
		},
		Trials:     trials,
		Seed:       e.Seed,
		Workers:    r.spec.Workers,
		FaultModel: r.spec.FaultModel,
	}
	adopted := false
	if adopt {
		// Only the first submission of a drive attempt can collide with a
		// campaign the previous daemon created but never recorded; later
		// ordinals were created by this attempt, so skipping the
		// O(history) scan for them keeps evaluations cheap.
		if st, ok := campaignByName(cm, name); ok {
			if !campaign.ResumeCompatible(st.Spec, cspec) {
				return nil, fmt.Errorf("tune: campaign %s (%s) exists with an incompatible spec", st.ID, name)
			}
			e.Campaign = st.ID
			adopted = true
		}
	}
	if !adopted {
		id, err := cm.Submit(cspec)
		if err != nil {
			return nil, err
		}
		e.Campaign = id
	}
	r.mu.Lock()
	r.trace.Evals = append(r.trace.Evals, e)
	r.persistLocked()
	r.mu.Unlock()
	return e, nil
}

// completeEval records an evaluation's objective and extends the
// best-so-far trajectory.
func (r *run) completeEval(e *Eval, obj float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o := obj
	e.Objective = &o
	improved := len(r.trace.Best) == 0
	if !improved {
		last := r.trace.Best[len(r.trace.Best)-1].Objective
		if r.w.Maximize {
			improved = obj > last
		} else {
			improved = obj < last
		}
	}
	if improved {
		r.trace.Best = append(r.trace.Best, BestStep{
			Eval: e.N, Params: cloneParams(e.Params), Objective: obj,
		})
	}
	r.persistLocked()
}

// waitCampaign blocks until the evaluation's campaign completes. A
// campaign that lands in any resumable state while the search is still
// alive — failed on a transient error, cancelled by an operator, or
// interrupted in a shutdown race — is resumed a bounded number of times
// before giving up. Retrying failed campaigns matters beyond
// transients: a tune run that went StateFailed because one evaluation
// failed would otherwise be unresumable in practice, replaying straight
// into the campaign's persisted error (which survives daemon restarts
// via meta.json) without re-executing anything.
func waitCampaign(ctx context.Context, cm *campaign.Manager, id string) error {
	for attempt := 0; ; attempt++ {
		// cm.Wait's error is the campaign's persisted failure; state
		// decides what to do with it, so it is not a return on its own.
		// The wait itself must not outlive the search: a cancelled tune
		// run returns here immediately instead of sitting out the rest of
		// the rung. (The spawned goroutine lingers until the campaign
		// reaches a terminal state — bounded, since cancellation paths
		// also cancel the campaigns underneath.)
		waited := make(chan struct{})
		go func() {
			_ = cm.Wait(id)
			close(waited)
		}()
		select {
		case <-waited:
		case <-ctx.Done():
			return ctx.Err()
		}
		st, err := cm.Get(id)
		if err != nil {
			return err
		}
		if st.State == campaign.StateDone {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt >= 5 {
			if st.State == campaign.StateFailed {
				return fmt.Errorf("tune: evaluation campaign %s failed: %s", id, st.Error)
			}
			return fmt.Errorf("tune: evaluation campaign %s stuck in state %s", id, st.State)
		}
		if err := cm.Resume(id); err != nil {
			// A concurrent autoresume may have beaten us; just wait again.
			log.Printf("tune: resume evaluation %s: %v", id, err)
		}
	}
}

// emit forwards one search-progress event, labeled with the run id.
func (r *run) emit(kind, detail string) {
	if r.events != nil {
		r.events.Emit(kind, r.id, detail)
	}
}

// WriteMetrics appends the tune layer's Prometheus families — runs by
// state and evaluation progress. robustd registers it on the campaign
// manager's /metrics via AddMetrics, so both layers share one scrape.
func (m *Manager) WriteMetrics(w io.Writer) {
	counts := map[string]int{
		StateRunning: 0, StateDone: 0, StateFailed: 0,
		StateInterrupted: 0, StateCancelled: 0,
	}
	var submitted, completed int
	for _, s := range m.List() {
		counts[s.State]++
		submitted += s.EvalsSubmitted
		completed += s.EvalsCompleted
	}
	fmt.Fprintf(w, "# HELP robustd_tune_runs Tune runs in the registry by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE robustd_tune_runs gauge\n")
	for _, state := range []string{StateRunning, StateDone, StateFailed, StateInterrupted, StateCancelled} {
		fmt.Fprintf(w, "robustd_tune_runs{state=%q} %d\n", state, counts[state])
	}
	fmt.Fprintf(w, "# HELP robustd_tune_evals Candidate evaluations across all tune runs.\n")
	fmt.Fprintf(w, "# TYPE robustd_tune_evals gauge\n")
	fmt.Fprintf(w, "robustd_tune_evals{kind=\"submitted\"} %d\n", submitted)
	fmt.Fprintf(w, "robustd_tune_evals{kind=\"completed\"} %d\n", completed)
}

// campaignByName finds a campaign by its (deterministic) display name.
func campaignByName(cm *campaign.Manager, name string) (campaign.Status, bool) {
	for _, st := range cm.List() {
		if st.Name == name {
			return st, true
		}
	}
	return campaign.Status{}, false
}

func (r *run) status(withEvals bool) Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.trace
	s := Status{
		ID:             r.id,
		Name:           r.spec.Title(),
		State:          tr.State,
		Error:          tr.Error,
		Spec:           r.spec,
		EvalsSubmitted: len(tr.Evals),
		Best:           append([]BestStep(nil), tr.Best...),
		Final:          cloneParams(tr.Final),
		FinalObjective: tr.FinalObjective,
	}
	if len(tr.Final) == 0 {
		s.Final = nil
	}
	for _, e := range tr.Evals {
		if e.Objective != nil {
			s.EvalsCompleted++
		}
		if withEvals {
			c := *e
			c.Params = cloneParams(e.Params)
			if e.Objective != nil {
				o := *e.Objective
				c.Objective = &o
			}
			s.Evals = append(s.Evals, c)
		}
	}
	return s
}

// persistLocked writes the trace; r.mu must be held. A failed write only
// costs resume fidelity, so it is logged, not fatal.
func (r *run) persistLocked() {
	if err := writeTrace(r.dir, r.trace); err != nil {
		log.Printf("tune: %s: persist trace: %v", r.id, err)
	}
}

func (t *Trace) clone() *Trace {
	c := *t
	c.Evals = make([]*Eval, len(t.Evals))
	for i, e := range t.Evals {
		ce := *e
		ce.Params = cloneParams(e.Params)
		if e.Objective != nil {
			o := *e.Objective
			ce.Objective = &o
		}
		c.Evals[i] = &ce
	}
	c.Best = append([]BestStep(nil), t.Best...)
	if t.Final != nil {
		c.Final = cloneParams(t.Final)
	}
	if t.FinalObjective != nil {
		o := *t.FinalObjective
		c.FinalObjective = &o
	}
	return &c
}

// writeTrace atomically replaces dir's tune.json (temp + fsync + rename
// via fsutil) — the trace is a resume-identity artifact and must never
// be observable half-written.
func writeTrace(dir string, t *Trace) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(dir, traceFile), append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("tune: write trace: %w", err)
	}
	return nil
}

// readTrace loads dir's tune.json; a nil trace with nil error means the
// directory holds no trace (not a tune run).
func readTrace(dir string) (*Trace, error) {
	b, err := os.ReadFile(filepath.Join(dir, traceFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("tune: corrupt %s: %w", traceFile, err)
	}
	return &t, nil
}
