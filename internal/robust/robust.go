// Package robust implements bounded-influence robust losses — the
// robust-estimation family (Huber, pseudo-Huber, Geman–McClure, smoothed
// L1) — as pluggable Robustifiers for the repository's penalty forms and
// solvers.
//
// The paper robustifies applications through a single quadratic penalty,
// but bit-flip faults produce heavy-tailed residual errors (an exponent
// flip turns a unit-scale residual into 1e300): exactly the outlier
// distribution bounded-influence losses were designed for. A Robustifier
// clips how hard one corrupted residual can pull the iterate, so the solver
// keeps converging at fault rates where the quadratic loss is dragged off
// by a single flipped exponent bit.
//
// Every floating point operation of every loss routes through an fpu.Unit,
// so faults inject inside the loss evaluation itself — the loss is part of
// the simulated machine, not a reliable oracle. A nil unit evaluates
// exactly, which is how the reliable control path (solver.Options.Value,
// IRLS convergence metrics) uses the same code.
//
// Normalization convention: Rho uses the paper's unhalved quadratic form,
// ρ_quad(r) = r² (matching core.LeastSquares' ‖Ax−b‖² objective and the
// quadratic exact penalty μ·Σh²), and Psi is the half-gradient ψ = ρ′/2 —
// the form the solvers consume: least squares folds the conventional
// factor 2 into the step size (ψ_quad(r) = r reproduces the existing
// gradient Aᵀ(Ax−b) bit-for-bit), and the penalty forms reintroduce it
// explicitly (gradient weight 2μ·ψ). Weight is the IRLS weight
// w(r) = ψ(r)/r with the r → 0 limit, so reweighted normal equations
// AᵀWA·x = AᵀW·b minimize Σ ρ(aᵢ·x − bᵢ).
package robust

import (
	"fmt"

	"robustify/internal/fpu"
)

// Kind names a robust loss.
type Kind string

// The loss family. Quadratic reproduces the paper's behavior exactly
// (bit-identical per seed: its Psi and Weight issue zero FPU operations);
// the rest bound the influence of large residuals.
const (
	Quadratic    Kind = "quadratic"
	Huber        Kind = "huber"
	PseudoHuber  Kind = "pseudo-huber"
	GemanMcClure Kind = "geman-mcclure"
	SmoothL1     Kind = "smooth-l1"
)

// Kinds lists the loss family in knob-index order (see ByIndex).
func Kinds() []Kind {
	return []Kind{Quadratic, Huber, PseudoHuber, GemanMcClure, SmoothL1}
}

// Robustifier is a pluggable robust loss ρ applied to scalar residuals.
// Implementations route every floating point operation through the given
// fpu.Unit (nil = exact), so the loss itself is exposed to fault
// injection. Implementations are not safe for concurrent use when the
// shape parameter is annealed mid-solve; like fpu.Unit, each worker owns
// its own instance.
type Robustifier interface {
	// Kind returns the loss's registry name.
	Kind() Kind
	// Shape returns the loss's shape parameter: the Huber and pseudo-Huber
	// transition scale δ, the Geman–McClure scale σ, the smoothed-L1
	// smoothing radius ε. Quadratic has no shape and returns 0.
	Shape() float64
	// SetShape replaces the shape parameter (reliable control path; the
	// solver's annealing hook). It is a no-op for shapeless losses.
	SetShape(s float64)
	// Rho evaluates the loss ρ(r) on u (ρ(0) = 0, symmetric,
	// nondecreasing in |r|; quadratic normalization ρ_quad = r²).
	Rho(u *fpu.Unit, r float64) float64
	// Psi evaluates the influence function ψ(r) = ρ′(r)/2 on u
	// (ψ_quad(r) = r, the solvers' step-folded gradient convention).
	Psi(u *fpu.Unit, r float64) float64
	// Weight evaluates the IRLS weight w(r) = ψ(r)/r on u, with the
	// finite r → 0 limit (w_quad ≡ 1).
	Weight(u *fpu.Unit, r float64) float64
}

// DefaultShape returns the shape parameter a kind gets when the caller
// passes shape ≤ 0: the transition scales default to the unit residual
// scale; the smoothed-L1 radius sits below it so the loss stays
// L1-shaped where residuals carry signal.
func DefaultShape(kind Kind) float64 {
	switch kind {
	case SmoothL1:
		return 0.1
	case Quadratic:
		return 0
	case Huber, PseudoHuber, GemanMcClure:
		return 1
	default:
		return 1
	}
}

// New returns a Robustifier of the given kind. A shape ≤ 0 picks
// DefaultShape(kind); quadratic ignores the shape entirely.
func New(kind Kind, shape float64) (Robustifier, error) {
	if kind != Quadratic && shape <= 0 {
		shape = DefaultShape(kind)
	}
	switch kind {
	case Quadratic:
		return &quadratic{}, nil
	case Huber:
		return &huber{delta: shape}, nil
	case PseudoHuber:
		return &pseudoHuber{delta: shape}, nil
	case GemanMcClure:
		return &gemanMcClure{sigma: shape}, nil
	case SmoothL1:
		return &smoothL1{eps: shape}, nil
	default:
		return nil, fmt.Errorf("robust: unknown loss kind %q (known: %v)", kind, Kinds())
	}
}

// ByIndex resolves a loss by its knob index — the encoding workload loss
// selectors use, since campaign knobs are float64-valued: 0 = quadratic,
// 1 = huber, 2 = pseudo-huber, 3 = geman-mcclure, 4 = smooth-l1.
func ByIndex(i int, shape float64) (Robustifier, error) {
	kinds := Kinds()
	if i < 0 || i >= len(kinds) {
		return nil, fmt.Errorf("robust: loss index %d out of range [0, %d]", i, len(kinds)-1)
	}
	return New(kinds[i], shape)
}

// quadratic is the paper's loss: ρ = r², ψ = r, w = 1. Psi and Weight
// deliberately issue no FPU operations — the identity and the constant 1
// are wires, not datapath results — so routing the existing solvers
// through a quadratic Robustifier leaves the fault stream, FLOP counters,
// and therefore every per-seed output bit-identical to the direct code
// path (pinned by tests in core and solver).
type quadratic struct{}

func (quadratic) Kind() Kind         { return Quadratic }
func (quadratic) Shape() float64     { return 0 }
func (quadratic) SetShape(s float64) {}

func (quadratic) Rho(u *fpu.Unit, r float64) float64 { return u.Mul(r, r) }

func (quadratic) Psi(u *fpu.Unit, r float64) float64 { return r }

func (quadratic) Weight(u *fpu.Unit, r float64) float64 { return 1 }

// huber is the classic bounded-influence loss: quadratic inside |r| ≤ δ,
// linear outside, so one corrupted residual pulls the gradient by at most
// δ. ρ = r² inside, 2δ|r| − δ² outside; ψ = r inside, δ·sign(r) outside;
// w = 1 inside, δ/|r| outside.
type huber struct{ delta float64 }

func (h *huber) Kind() Kind         { return Huber }
func (h *huber) Shape() float64     { return h.delta }
func (h *huber) SetShape(s float64) { h.delta = s }

// inTail reports |r| > δ. The comparison runs on u's compare unit: the
// region decision is part of the simulated loss datapath, so a timing
// fault can misclassify a residual — exactly like any other corrupted
// FLOP, and recoverable the same way.
func (h *huber) inTail(u *fpu.Unit, r float64) bool {
	return u.Less(h.delta, u.Abs(r))
}

func (h *huber) Rho(u *fpu.Unit, r float64) float64 {
	if !h.inTail(u, r) {
		return u.Mul(r, r)
	}
	return u.Sub(u.Mul(u.Mul(2, h.delta), u.Abs(r)), u.Mul(h.delta, h.delta))
}

func (h *huber) Psi(u *fpu.Unit, r float64) float64 {
	if !h.inTail(u, r) {
		return r
	}
	if r > 0 { // sign-bit read: reliable, like fpu.Unit.Abs
		return h.delta
	}
	return u.Neg(h.delta)
}

func (h *huber) Weight(u *fpu.Unit, r float64) float64 {
	if !h.inTail(u, r) {
		return 1
	}
	return u.Div(h.delta, u.Abs(r))
}

// pseudoHuber is the smooth Huber variant: ρ = 2δ²(√(1+(r/δ)²) − 1),
// everywhere differentiable, ψ = r/√(1+(r/δ)²) bounded by δ. Its IRLS
// weights never hit a hard transition, which keeps reweighted CG stable.
type pseudoHuber struct{ delta float64 }

func (p *pseudoHuber) Kind() Kind         { return PseudoHuber }
func (p *pseudoHuber) Shape() float64     { return p.delta }
func (p *pseudoHuber) SetShape(s float64) { p.delta = s }

// slope evaluates √(1+(r/δ)²) on u, the shared core of all three forms.
func (p *pseudoHuber) slope(u *fpu.Unit, r float64) float64 {
	t := u.Div(r, p.delta)
	return u.Sqrt(u.Add(1, u.Mul(t, t)))
}

func (p *pseudoHuber) Rho(u *fpu.Unit, r float64) float64 {
	s := p.slope(u, r)
	return u.Mul(u.Mul(2, u.Mul(p.delta, p.delta)), u.Sub(s, 1))
}

func (p *pseudoHuber) Psi(u *fpu.Unit, r float64) float64 {
	return u.Div(r, p.slope(u, r))
}

func (p *pseudoHuber) Weight(u *fpu.Unit, r float64) float64 {
	return u.Div(1, p.slope(u, r))
}

// gemanMcClure is the redescending loss: ρ = σ²r²/(σ² + r²) saturates at
// σ², so ψ → 0 for huge residuals — an exponent-flipped residual is not
// merely clipped but ignored. The price is non-convexity: it needs a
// decent basin (or shape annealing from large σ) to converge.
type gemanMcClure struct{ sigma float64 }

func (g *gemanMcClure) Kind() Kind         { return GemanMcClure }
func (g *gemanMcClure) Shape() float64     { return g.sigma }
func (g *gemanMcClure) SetShape(s float64) { g.sigma = s }

func (g *gemanMcClure) Rho(u *fpu.Unit, r float64) float64 {
	s2 := u.Mul(g.sigma, g.sigma)
	r2 := u.Mul(r, r)
	return u.Div(u.Mul(s2, r2), u.Add(s2, r2))
}

func (g *gemanMcClure) Psi(u *fpu.Unit, r float64) float64 {
	return u.Mul(g.Weight(u, r), r)
}

func (g *gemanMcClure) Weight(u *fpu.Unit, r float64) float64 {
	s2 := u.Mul(g.sigma, g.sigma)
	den := u.Add(s2, u.Mul(r, r))
	return u.Div(u.Mul(s2, s2), u.Mul(den, den))
}

// smoothL1 is the smoothed absolute loss: ρ = 2(√(r² + ε²) − ε) → 2|r|
// as ε → 0, with ψ = r/√(r² + ε²) bounded by 1 — the steepest loss whose
// influence is independent of residual magnitude. Unlike the exact ℓ1
// penalty (core.PenaltyAbs) it is differentiable at 0 and IRLS-weightable
// (w = 1/√(r² + ε²), capped at 1/ε).
type smoothL1 struct{ eps float64 }

func (s *smoothL1) Kind() Kind         { return SmoothL1 }
func (s *smoothL1) Shape() float64     { return s.eps }
func (s *smoothL1) SetShape(v float64) { s.eps = v }

// root evaluates √(r² + ε²) on u.
func (s *smoothL1) root(u *fpu.Unit, r float64) float64 {
	return u.Sqrt(u.Add(u.Mul(r, r), u.Mul(s.eps, s.eps)))
}

func (s *smoothL1) Rho(u *fpu.Unit, r float64) float64 {
	return u.Mul(2, u.Sub(s.root(u, r), s.eps))
}

func (s *smoothL1) Psi(u *fpu.Unit, r float64) float64 {
	return u.Div(r, s.root(u, r))
}

func (s *smoothL1) Weight(u *fpu.Unit, r float64) float64 {
	return u.Div(1, s.root(u, r))
}
