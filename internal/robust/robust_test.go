package robust

import (
	"math"
	"testing"

	"robustify/internal/fpu"
)

// shaped returns every loss at the given shape, plus quadratic.
func shaped(t *testing.T, shape float64) []Robustifier {
	t.Helper()
	var out []Robustifier
	for _, k := range Kinds() {
		r, err := New(k, shape)
		if err != nil {
			t.Fatalf("New(%s, %v): %v", k, shape, err)
		}
		out = append(out, r)
	}
	return out
}

// probe residuals: zero, interior, the shape-transition neighborhood, and
// the heavy tail a flipped exponent bit produces.
var probes = []float64{0, 1e-9, 0.03, 0.5, 0.999, 1, 1.001, 2.5, 17, 1e3, 1e9, 1e100}

func TestPsiIsHalfRhoDerivative(t *testing.T) {
	// ψ = ρ′/2 by the package's normalization convention: central
	// difference of Rho must match 2·Psi on a reliable unit. Skip the
	// huber transition kink (one-sided derivatives differ) and points
	// where the step underflows the residual.
	for _, loss := range shaped(t, 1) {
		for _, r := range probes {
			if r > 1e12 { // derivative ~0 or step vanishes in ulps
				continue
			}
			h := 1e-6 * math.Max(1, math.Abs(r))
			if loss.Kind() == Huber && math.Abs(math.Abs(r)-loss.Shape()) < 2*h {
				continue
			}
			got := (loss.Rho(nil, r+h) - loss.Rho(nil, r-h)) / (2 * h)
			want := 2 * loss.Psi(nil, r)
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s: dRho/dr(%g) = %g, want 2*Psi = %g", loss.Kind(), r, got, want)
			}
		}
	}
}

func TestWeightTimesResidualIsPsi(t *testing.T) {
	for _, loss := range shaped(t, 1) {
		for _, r := range probes {
			got := loss.Weight(nil, r) * r
			want := loss.Psi(nil, r)
			tol := 1e-12 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("%s: Weight(%g)*r = %g, want Psi = %g", loss.Kind(), r, got, want)
			}
		}
	}
}

func TestWeightsPositiveBoundedMonotone(t *testing.T) {
	// IRLS weights: strictly positive, maximal at r = 0, nonincreasing in
	// |r| — the defining property of a bounded-influence loss (quadratic
	// is the constant-1 degenerate member).
	for _, loss := range shaped(t, 1) {
		w0 := loss.Weight(nil, 0)
		if !(w0 > 0) || math.IsInf(w0, 0) {
			t.Fatalf("%s: Weight(0) = %g, want finite positive", loss.Kind(), w0)
		}
		prev := w0
		for _, r := range probes[1:] {
			w := loss.Weight(nil, r)
			// Strictly positive at any residual the solver could act on;
			// at astronomical magnitudes a redescending weight may
			// underflow to exactly 0, which IRLS treats as "ignore row".
			if !(w > 0) && (r <= 1e9 || w != 0) {
				t.Errorf("%s: Weight(%g) = %g, want > 0", loss.Kind(), r, w)
			}
			if w > prev*(1+1e-12) {
				t.Errorf("%s: Weight(%g) = %g increases past %g", loss.Kind(), r, w, prev)
			}
			prev = w
		}
	}
}

func TestSymmetry(t *testing.T) {
	// ρ even, ψ odd — exactly, since every implementation reaches the
	// sign only through Abs/Neg/sign reads.
	for _, loss := range shaped(t, 1) {
		for _, r := range probes {
			if rho, neg := loss.Rho(nil, r), loss.Rho(nil, -r); rho != neg {
				t.Errorf("%s: Rho(%g) = %g but Rho(-r) = %g", loss.Kind(), r, rho, neg)
			}
			if psi, neg := loss.Psi(nil, r), loss.Psi(nil, -r); psi != -neg {
				t.Errorf("%s: Psi(%g) = %g but Psi(-r) = %g", loss.Kind(), r, psi, neg)
			}
		}
		if rho := loss.Rho(nil, 0); rho != 0 {
			t.Errorf("%s: Rho(0) = %g", loss.Kind(), rho)
		}
		if psi := loss.Psi(nil, 0); psi != 0 {
			t.Errorf("%s: Psi(0) = %g", loss.Kind(), psi)
		}
	}
}

func TestBoundedInfluence(t *testing.T) {
	// The whole point: a corrupted residual of any magnitude pulls the
	// gradient by a bounded amount (quadratic excepted, by design).
	cases := []struct {
		kind  Kind
		shape float64
		bound float64
	}{
		{Huber, 1.5, 1.5},
		{PseudoHuber, 1.5, 1.5},
		{SmoothL1, 0.1, 1},
		{GemanMcClure, 1, 1}, // max |ψ| = (3√3/16)σ < σ
	}
	for _, c := range cases {
		loss, err := New(c.kind, c.shape)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range probes {
			if psi := math.Abs(loss.Psi(nil, r)); psi > c.bound*(1+1e-12) {
				t.Errorf("%s: |Psi(%g)| = %g exceeds bound %g", c.kind, r, psi, c.bound)
			}
		}
		// Redescending: Geman–McClure must *ignore* astronomical residuals.
		if c.kind == GemanMcClure {
			if psi := math.Abs(loss.Psi(nil, 1e100)); psi > 1e-90 {
				t.Errorf("geman-mcclure: Psi(1e100) = %g, want ~0", psi)
			}
		}
	}
}

func TestQuadraticIssuesNoPsiWeightFLOPs(t *testing.T) {
	// The bit-identity contract of the quadratic loss: Psi and Weight
	// must not touch the unit at all, or routing the existing solvers
	// through the loss layer would advance the fault stream and change
	// every per-seed output.
	u := fpu.New(fpu.WithFaultRate(0.5, 1))
	loss, err := New(Quadratic, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := u.FLOPs()
	for _, r := range probes {
		if got := loss.Psi(u, r); got != r {
			t.Fatalf("quadratic Psi(%g) = %g, want identity", r, got)
		}
		if got := loss.Weight(u, r); got != 1 {
			t.Fatalf("quadratic Weight(%g) = %g, want 1", r, got)
		}
	}
	if u.FLOPs() != before {
		t.Errorf("quadratic Psi/Weight issued %d FLOPs, want 0", u.FLOPs()-before)
	}
	if u.Faults() != 0 {
		t.Errorf("quadratic Psi/Weight suffered %d faults, want 0", u.Faults())
	}
}

func TestFaultyEvaluationIsDeterministic(t *testing.T) {
	// Faults inject inside the loss datapath, and deterministically: the
	// same seed must yield the same (possibly corrupted) outputs.
	for _, k := range Kinds() {
		loss, err := New(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		eval := func(seed uint64) []float64 {
			u := fpu.New(fpu.WithFaultRate(0.3, seed))
			var out []float64
			for _, r := range probes {
				out = append(out, loss.Rho(u, r), loss.Psi(u, r), loss.Weight(u, r))
			}
			return out
		}
		a, b := eval(7), eval(7)
		for i := range a {
			ai, bi := a[i], b[i]
			if ai != bi && !(math.IsNaN(ai) && math.IsNaN(bi)) {
				t.Fatalf("%s: faulty evaluation diverged at %d: %g vs %g", k, i, ai, bi)
			}
		}
	}
}

func TestShapeRoundTripAndAnnealing(t *testing.T) {
	for _, k := range Kinds() {
		loss, err := New(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if k == Quadratic {
			if loss.Shape() != 0 {
				t.Errorf("quadratic Shape() = %g, want 0", loss.Shape())
			}
			loss.SetShape(5) // must be a no-op
			if loss.Shape() != 0 {
				t.Errorf("quadratic Shape() after SetShape = %g, want 0", loss.Shape())
			}
			continue
		}
		if loss.Shape() != 2 {
			t.Errorf("%s: Shape() = %g, want 2", k, loss.Shape())
		}
		loss.SetShape(0.5)
		if loss.Shape() != 0.5 {
			t.Errorf("%s: Shape() after SetShape = %g, want 0.5", k, loss.Shape())
		}
	}
}

func TestHuberReducesToQuadraticInCore(t *testing.T) {
	// Inside |r| ≤ δ Huber *is* the quadratic loss, including the
	// zero-FPU-op Psi — the δ → ∞ limit is exact, not approximate.
	loss, err := New(Huber, 100)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := New(Quadratic, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0, 0.5, -3, 99} {
		if loss.Psi(nil, r) != quad.Psi(nil, r) {
			t.Errorf("huber core Psi(%g) != quadratic", r)
		}
		if loss.Rho(nil, r) != quad.Rho(nil, r) {
			t.Errorf("huber core Rho(%g) != quadratic", r)
		}
		if loss.Weight(nil, r) != 1 {
			t.Errorf("huber core Weight(%g) != 1", r)
		}
	}
}

func TestRegistry(t *testing.T) {
	for i, k := range Kinds() {
		byIdx, err := ByIndex(i, 0)
		if err != nil {
			t.Fatalf("ByIndex(%d): %v", i, err)
		}
		if byIdx.Kind() != k {
			t.Errorf("ByIndex(%d) = %s, want %s", i, byIdx.Kind(), k)
		}
		if k != Quadratic && byIdx.Shape() != DefaultShape(k) {
			t.Errorf("%s: default shape = %g, want %g", k, byIdx.Shape(), DefaultShape(k))
		}
	}
	if _, err := ByIndex(len(Kinds()), 1); err == nil {
		t.Error("ByIndex out of range: want error")
	}
	if _, err := ByIndex(-1, 1); err == nil {
		t.Error("ByIndex(-1): want error")
	}
	if _, err := New(Kind("lorentzian"), 1); err == nil {
		t.Error("New(unknown): want error")
	}
}
