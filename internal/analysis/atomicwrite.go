package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// AtomicWrite guards the crash-consistency of JSON artifacts under the
// campaign/tune data roots. PR 3's recovery semantics assume every *.json
// the daemon owns is replaced atomically (temp file + fsync + rename):
// a direct os.WriteFile can be torn by a crash, and a torn spec.json or
// meta.json turns a resumable campaign into an unloadable directory.
// All such writes go through fsutil.WriteFileAtomic — the one blessed
// helper, whose own package is out of scope by construction.
//
// Flagged, in the durable-state packages (internal/campaign, internal/
// tune, internal/dispatch, internal/harness) and the cmd binaries: calls
// to os.WriteFile, os.Create, or os.OpenFile whose path argument contains
// a string constant ending in ".json". One-shot diagnostic or debug dumps
// that genuinely need no atomicity are exempted with
// //lint:atomicwrite-exempt <reason>.
var AtomicWrite = &Analyzer{
	Name:      "atomicwrite",
	Directive: "atomicwrite-exempt",
	Doc:       "*.json artifacts must be written via fsutil.WriteFileAtomic",
	Run:       runAtomicWrite,
}

func inAtomicWriteScope(path string) bool {
	switch path {
	case "robustify/internal/campaign", "robustify/internal/tune",
		"robustify/internal/dispatch", "robustify/internal/harness":
		return true
	}
	return strings.HasPrefix(path, "robustify/cmd/")
}

func runAtomicWrite(pass *Pass) {
	if !inAtomicWriteScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pass.pkgFunc(call)
			if pkg != "os" || (fn != "WriteFile" && fn != "Create" && fn != "OpenFile") {
				return true
			}
			if len(call.Args) == 0 || !containsJSONLiteral(pass, call.Args[0]) {
				return true
			}
			pass.Report(call.Pos(), "os.%s of a .json artifact can tear on crash; write it with fsutil.WriteFileAtomic (or //lint:atomicwrite-exempt <reason>)", fn)
			return true
		})
	}
}

// containsJSONLiteral reports whether any subexpression of e is a string
// constant ending in ".json" — catching both literal paths and
// filepath.Join(dir, metaFile)-style constant filename arguments.
func containsJSONLiteral(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[expr]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if strings.HasSuffix(constant.StringVal(tv.Value), ".json") {
			found = true
		}
		return !found
	})
	return found
}
