package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDurability guards the durability contract at its weakest point: the
// discarded error. The repo's recovery story rests on "an Append that
// returned nil is on disk" — which inverts into "an Append whose error
// nobody looked at may never have happened". A trial recorded through a
// swallowed Store.Put is a trial the next resume silently re-runs at
// best and loses at worst.
//
// Durability sinks are declared in the code they live in: a
// //lint:durable <reason> marker on a function (fsutil.WriteFileAtomic,
// Store.Append/Put, the flock acquisition, telemetry appends) makes it a
// sink root. The call-graph facts layer then propagates: any function
// that calls a sink (or a propagator) and returns an error is itself a
// durability-error carrier — so a helper that swallows the error is as
// guilty as the original call site, and a call site that discards the
// helper's error is flagged the same as one that discards the sink's.
//
// Flagged:
//
//   - a sink's (or carrier's) error discarded: bare call statement,
//     `_ =`, `go`/`defer` of the call;
//   - Close or Sync discarded on an *os.File the function wrote to — the
//     write error often only surfaces at Close, so `defer f.Close()`
//     after f.Write is a data-loss window.
//
// Deliberate discards (best-effort cleanup on already-failed paths,
// log-and-continue telemetry) carry //lint:errdurability-exempt <reason>.
var ErrDurability = &Analyzer{
	Name:      "errdurability",
	Directive: "errdurability-exempt",
	Doc:       "errors from durability-critical sinks must not be discarded, transitively",
	Run:       runErrDurability,
}

func runErrDurability(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	// Transitive discards, from the facts layer.
	for _, fn := range pass.Facts.PkgFuncs(pass.pkg) {
		for _, c := range fn.Calls {
			if !c.discardsErr {
				continue
			}
			for _, callee := range pass.Facts.resolveDirect(c) {
				if callee.DurableSink || callee.DurableErr {
					how := "discards"
					if c.deferred {
						how = "defers and discards"
					}
					pass.Report(c.pos, "%s the error of %s, which reaches a durability sink — a silently failed write is a lost or re-run trial on resume; handle it or //lint:errdurability-exempt <reason>",
						how, callee.Name)
					break
				}
			}
		}
	}
	// Intra-function: discarded Close/Sync on a written *os.File.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWrittenFileClose(pass, fd)
		}
	}
}

// fileWriteMethods surface write errors later, at Close/Sync time.
var fileWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
	"Truncate": true,
}

// checkWrittenFileClose flags discarded Close/Sync on *os.File variables
// the function wrote to.
func checkWrittenFileClose(pass *Pass, fn *ast.FuncDecl) {
	written := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !fileWriteMethods[sel.Sel.Name] || !isOSFile(pass.typeOf(sel.X)) {
			return true
		}
		if id := rootIdent(sel.X); id != nil {
			if obj := pass.objectOf(id); obj != nil {
				written[obj] = true
			}
		}
		return true
	})
	if len(written) == 0 {
		return
	}
	report := func(call *ast.CallExpr, deferred bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") || !isOSFile(pass.typeOf(sel.X)) {
			return
		}
		id := rootIdent(sel.X)
		if id == nil {
			return
		}
		obj := pass.objectOf(id)
		if obj == nil || !written[obj] {
			return
		}
		how := "discards"
		if deferred {
			how = "defers and discards"
		}
		pass.Report(call.Pos(), "%s %s.%s on a file this function wrote — write errors can surface only here, so dropping it loses them; check it or //lint:errdurability-exempt <reason>",
			how, id.Name, sel.Sel.Name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				report(call, false)
			}
		case *ast.DeferStmt:
			report(v.Call, true)
		case *ast.GoStmt:
			report(v.Call, false)
		case *ast.AssignStmt:
			if len(v.Rhs) == 1 && len(v.Lhs) >= 1 {
				if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := v.Lhs[len(v.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
						report(call, false)
					}
				}
			}
		}
		return true
	})
}

func isOSFile(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os" && n.Obj().Name() == "File"
}
