package analysis

// The call-graph facts layer. PR 6's analyzers are single-function AST
// passes, which is exactly why the PR-9 self-deadlock (tune.Manager.Resume
// emitting observability events while holding m.mu, where emit re-locked
// m.mu) was invisible to them: the reacquisition happened two calls away.
// This file builds an inter-procedural summary per function — which
// mutexes it acquires (identified by owner type and field path), whether
// it can block on a channel send, whether it waits on a cancellation
// signal, whether its error return can originate from a durability sink —
// plus the static call edges between functions, across every loaded
// package. Analyzers query the summaries transitively (BFS over call
// edges, with interface calls expanded to every loaded implementation by
// method name and signature), so "calls X while holding L, and X can
// reacquire L three frames down, in another package" becomes checkable.
//
// The layer is deliberately approximate in documented directions:
//
//   - Lock identity is (owner named type, field path), not instance: two
//     distinct *Manager values share the id robustify/.../tune.Manager.mu.
//     That over-approximates (rare same-type cross-instance locking gets
//     exempted with a reason) but catches every self-deadlock, which is
//     instance-blind by definition.
//   - Held-lock tracking walks statements in source order: Lock adds,
//     Unlock removes, a deferred Unlock pins the lock to function end.
//     That matches the straight-line or defer discipline the repo uses;
//     exotic conditional unlocking would over-report, never under-report
//     a held lock past its Unlock.
//   - Calls through function values are invisible; calls through
//     interfaces expand to every loaded method with the same name and
//     signature (over-approximation again — safe for deadlock hunting).
//   - `go f(...)` edges are recorded as async: the spawner does not block
//     on them, so lock-safety BFS skips them; goroutinehygiene analyzes
//     the spawned function at the go statement itself.
//
// Two marker directives feed the layer (both validated by the directive
// hygiene check, both requiring written text):
//
//   - //lint:durable <reason> on a function marks it a durability sink
//     root: discarding its error — or the error of any function that
//     transitively propagates it — is an errdurability finding.
//   - //lint:enum <group> <doc> on a const block registers its members as
//     one exhaustiveness domain for regexhaustive; blocks in the same
//     package sharing a group word merge (tune's states span two files).
//     Named-type const families (robust.Kind, core.PenaltyKind, ...) are
//     registered automatically, no marker needed.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Marker directives consumed by the facts layer (not exemptions).
const (
	// DirectiveDurable marks a durability sink root.
	DirectiveDurable = "durable"
	// DirectiveEnum registers a const block as an exhaustiveness domain.
	DirectiveEnum = "enum"
)

// FuncID is a stable cross-package symbol for a function or method:
// "pkg.Name" or "pkg.(Recv).Name". Function literals get a synthetic
// position-based id, unique within a run.
type FuncID string

// heldLock is one mutex held at a program point.
type heldLock struct {
	id   string // lock identity, e.g. "robustify/internal/tune.Manager.mu"
	read bool   // held via RLock
	pos  token.Pos
}

// callSite is one static call edge out of a function.
type callSite struct {
	callee FuncID // "" when the callee is a function value (unresolvable)
	// iface marks a call through an interface method: BFS expands it to
	// every loaded concrete method matching name+sig whose receiver type
	// implements the whole interface (ifaceSet).
	iface bool
	name  string // method name (interface expansion)
	sig   string // normalized signature (interface expansion)
	// ifaceSet is every "name|sig" of the called interface, so expansion
	// can reject same-name-same-sig methods on unrelated types (an
	// os.FileInfo Size() must not resolve to a store's Size()).
	ifaceSet []string
	held     []heldLock
	pos      token.Pos
	// async: the call is a `go` launch — the caller does not block on it.
	async bool
	// discardsErr: the callee's trailing error result is dropped here
	// (bare statement, defer, go, or `_` in the error position).
	discardsErr bool
	// deferred: the call runs at function return (defer f()).
	deferred bool
	// ctxArg: some argument has type context.Context.
	ctxArg bool
}

// sendSite is a potentially blocking channel send with locks held.
type sendSite struct {
	held []heldLock
	pos  token.Pos
}

// FuncFacts is the inter-procedural summary of one function.
type FuncFacts struct {
	ID   FuncID
	Name string // display name, e.g. "(*Manager).Resume"
	Pkg  *Package
	Pos  token.Pos

	// Acquires maps lock id → first acquisition site anywhere in the body.
	Acquires map[string]token.Pos
	// BlockingSend is the first channel send not guarded by a
	// select-with-default (0 = none).
	BlockingSend token.Pos
	// CancelWait: the body consumes a cancellation or rendezvous signal —
	// a channel receive, a select, a range over a channel, or
	// ctx.Done()/ctx.Err().
	CancelWait bool
	// WGDone: the body calls (*sync.WaitGroup).Done — its lifetime is
	// bounded by a waiting spawner.
	WGDone bool
	// ReturnsErr: the signature's last result is error.
	ReturnsErr bool
	// DurableSink: carries a //lint:durable marker.
	DurableSink bool
	// DurableErr (fixpoint): returns an error that may originate from a
	// durability sink — discarding it is as bad as discarding the sink's.
	DurableErr bool
	// SendsHeld are channel sends attempted while holding a lock.
	SendsHeld []sendSite
	Calls     []callSite

	// recvKey identifies a method's receiver type (pkgpath.TypeName), for
	// interface-implementation filtering during call expansion.
	recvKey string
}

// Facts is the whole-run call-graph database.
type Facts struct {
	fns map[FuncID]*FuncFacts
	// decls maps FuncDecl and FuncLit nodes to their summaries, so
	// analyzers walking a package's AST can pivot into the graph.
	decls map[ast.Node]*FuncFacts
	// byPkg lists each package's summaries (decls then literals) in
	// source order, for deterministic per-package iteration.
	byPkg map[*Package][]*FuncFacts
	// methodIndex: "Name|sig" → concrete methods, for interface-call
	// expansion. Sorted for determinism.
	methodIndex map[string][]FuncID
	// recvMethods: receiver type key → its full method set ("name|sig",
	// promoted methods included), computed from the defining package's
	// source check. Used to confirm a candidate actually implements the
	// called interface.
	recvMethods map[string]map[string]bool

	// enums: exhaustiveness domains. memberOf maps a constant's key
	// (pkgpath.Name) to its group.
	enums    []*EnumGroup
	memberOf map[string]*EnumGroup
}

// EnumGroup is one registered exhaustiveness domain: the constants a
// switch or keyed literal dispatching over the group must cover.
type EnumGroup struct {
	// Name is the display name: the named type (robust.Kind) or the
	// marker group word (campaign-state).
	Name string
	// Members are constant keys (pkgpath.ConstName), sorted.
	Members []string
}

// short returns the display form of a member key: pkgbase.Const.
func memberShort(key string) string {
	slash := strings.LastIndexByte(key, '/')
	return key[slash+1:]
}

// Fn returns the summary for id, or nil.
func (fs *Facts) Fn(id FuncID) *FuncFacts { return fs.fns[id] }

// FactsOf returns the summary attached to a FuncDecl or FuncLit node.
func (fs *Facts) FactsOf(n ast.Node) *FuncFacts { return fs.decls[n] }

// PkgFuncs returns pkg's summaries in source order.
func (fs *Facts) PkgFuncs(pkg *Package) []*FuncFacts { return fs.byPkg[pkg] }

// MemberGroup returns the enum group owning the constant key, or nil.
func (fs *Facts) MemberGroup(key string) *EnumGroup { return fs.memberOf[key] }

// resolve expands a call site to the summaries it can reach directly:
// one for a static callee; for an interface call, every name+sig match
// whose receiver type implements the whole interface.
func (fs *Facts) resolve(c callSite) []*FuncFacts {
	if c.iface {
		var out []*FuncFacts
		for _, id := range fs.methodIndex[c.name+"|"+c.sig] {
			fn := fs.fns[id]
			if fn == nil || !fs.implementsAll(fn.recvKey, c.ifaceSet) {
				continue
			}
			out = append(out, fn)
		}
		return out
	}
	if fn := fs.fns[c.callee]; fn != nil {
		return []*FuncFacts{fn}
	}
	return nil
}

// implementsAll reports whether the receiver type's method set contains
// every method of the called interface.
func (fs *Facts) implementsAll(recvKey string, ifaceSet []string) bool {
	set := fs.recvMethods[recvKey]
	if set == nil {
		return false
	}
	for _, m := range ifaceSet {
		if !set[m] {
			return false
		}
	}
	return true
}

// reachStep is one frame of a transitive search result.
type reachStep struct {
	fn  *FuncFacts
	via *reachStep // caller chain, outermost first
}

// path renders the call chain "a → b → c" for diagnostics.
func (r *reachStep) path() string {
	var names []string
	for s := r; s != nil; s = s.via {
		names = append(names, string(s.fn.Name))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// Reach runs a breadth-first search over synchronous call edges starting
// at the targets of c, calling visit on every reachable summary (targets
// included). visit returning true stops the search and returns that
// step; nil means the search exhausted without a hit.
func (fs *Facts) Reach(c callSite, visit func(*FuncFacts) bool) *reachStep {
	seen := make(map[FuncID]bool)
	var queue []*reachStep
	for _, fn := range fs.resolve(c) {
		if !seen[fn.ID] {
			seen[fn.ID] = true
			queue = append(queue, &reachStep{fn: fn})
		}
	}
	for len(queue) > 0 {
		step := queue[0]
		queue = queue[1:]
		if visit(step.fn) {
			return step
		}
		for _, next := range step.fn.Calls {
			if next.async {
				continue
			}
			for _, fn := range fs.resolve(next) {
				if !seen[fn.ID] {
					seen[fn.ID] = true
					queue = append(queue, &reachStep{fn: fn, via: step})
				}
			}
		}
	}
	return nil
}

// BuildFacts computes the call-graph database for a loaded package set.
// Summaries only exist for functions compiled from source in pkgs; edges
// into other packages (the standard library above all) resolve to
// nothing and end the search — unknown callees are assumed quiet.
func BuildFacts(pkgs []*Package) *Facts {
	fs := &Facts{
		fns:         make(map[FuncID]*FuncFacts),
		decls:       make(map[ast.Node]*FuncFacts),
		byPkg:       make(map[*Package][]*FuncFacts),
		methodIndex: make(map[string][]FuncID),
		recvMethods: make(map[string]map[string]bool),
		memberOf:    make(map[string]*EnumGroup),
	}
	for _, pkg := range pkgs {
		fs.collectEnums(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				fs.buildFunc(pkg, fn)
			}
		}
	}
	// Fixpoint: DurableErr propagates up the (error-returning) call chain.
	for changed := true; changed; {
		changed = false
		for _, fn := range fs.fns {
			//lint:detmap-exempt fixpoint over a set: iteration order cannot change the fixed point, and nothing is emitted
			if fn.DurableErr || !fn.ReturnsErr {
				continue
			}
			for _, c := range fn.Calls {
				if c.async || c.discardsErr {
					continue
				}
				for _, callee := range fs.resolveDirect(c) {
					if callee.DurableSink || callee.DurableErr {
						fn.DurableErr = true
						changed = true
					}
				}
			}
		}
	}
	for key := range fs.methodIndex {
		//lint:detmap-exempt each key's slice is sorted in place; map order does not affect any output
		sort.Slice(fs.methodIndex[key], func(i, j int) bool {
			return fs.methodIndex[key][i] < fs.methodIndex[key][j]
		})
	}
	return fs
}

// resolveDirect resolves only static (non-interface) edges — the
// durability fixpoint stays conservative about dynamic dispatch so a
// lone Close() implementation cannot taint every io.Closer call site.
func (fs *Facts) resolveDirect(c callSite) []*FuncFacts {
	if c.iface {
		return nil
	}
	if fn := fs.fns[c.callee]; fn != nil {
		return []*FuncFacts{fn}
	}
	return nil
}

// funcIDOf derives the symbol of a declared function or method.
func funcIDOf(fn *types.Func) FuncID {
	if fn.Pkg() == nil {
		return FuncID("builtin." + fn.Name())
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return FuncID(fn.Pkg().Path() + ".(" + name + ")." + fn.Name())
		}
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// recvTypeName names a receiver's defining type, pointer-stripped, so a
// value method and its pointer-receiver calls share one id.
func recvTypeName(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return "interface"
	}
	return ""
}

// sigString normalizes a function signature (receiver and parameter
// names excluded) with package-path qualifiers, so the same method shape
// renders identically wherever it is seen — interface declaration,
// source-checked body, or export data.
func sigString(sig *types.Signature) string {
	strip := func(t *types.Tuple) *types.Tuple {
		if t == nil || t.Len() == 0 {
			return t
		}
		vars := make([]*types.Var, t.Len())
		for i := range vars {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	bare := types.NewSignatureType(nil, nil, nil, strip(sig.Params()), strip(sig.Results()), sig.Variadic())
	return types.TypeString(bare, func(p *types.Package) string { return p.Path() })
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil || res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// factsBuilder walks one function body accumulating its summary.
type factsBuilder struct {
	fs   *Facts
	pkg  *Package
	fn   *FuncFacts
	held []heldLock
	// discard / deferred / async are per-call-node flags computed when
	// the parent statement is visited (pre-order guarantees parents come
	// first).
	discard  map[*ast.CallExpr]bool
	deferred map[*ast.CallExpr]bool
	async    map[*ast.CallExpr]bool
	// nonBlocking marks sends that sit in a select with a default case.
	nonBlocking map[*ast.SendStmt]bool
}

// buildFunc summarizes one FuncDecl (and, recursively, the function
// literals inside it — each gets its own summary with an empty lock
// context, since a literal runs when called, not where written).
func (fs *Facts) buildFunc(pkg *Package, decl *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return
	}
	id := funcIDOf(obj)
	name := decl.Name.Name
	sig := obj.Type().(*types.Signature)
	recvKey := ""
	if sig.Recv() != nil {
		if tn := recvTypeName(sig.Recv().Type()); tn != "" {
			name = "(*" + tn + ")." + name
			recvKey = pkg.Path + "." + tn
			fs.methodIndex[decl.Name.Name+"|"+sigString(sig)] = append(fs.methodIndex[decl.Name.Name+"|"+sigString(sig)], id)
			fs.recordMethodSet(recvKey, sig.Recv().Type())
		}
	}
	fn := &FuncFacts{
		ID: id, Name: name, Pkg: pkg, Pos: decl.Pos(),
		Acquires:    make(map[string]token.Pos),
		ReturnsErr:  returnsError(sig),
		DurableSink: hasDirective(decl.Doc, DirectiveDurable),
		recvKey:     recvKey,
	}
	fs.fns[id] = fn
	fs.decls[decl] = fn
	fs.byPkg[pkg] = append(fs.byPkg[pkg], fn)
	b := newBuilder(fs, pkg, fn)
	b.walk(decl.Body)
}

// buildLit summarizes one function literal under a synthetic id.
func (fs *Facts) buildLit(pkg *Package, lit *ast.FuncLit) *FuncFacts {
	if fn := fs.decls[lit]; fn != nil {
		return fn
	}
	pos := pkg.Fset.Position(lit.Pos())
	id := FuncID(fmt.Sprintf("%s.func@%s:%d:%d", pkg.Path, pos.Filename, pos.Line, pos.Column))
	sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
	fn := &FuncFacts{
		ID: id, Name: fmt.Sprintf("func literal (line %d)", pos.Line),
		Pkg: pkg, Pos: lit.Pos(),
		Acquires: make(map[string]token.Pos),
	}
	if sig != nil {
		fn.ReturnsErr = returnsError(sig)
	}
	fs.fns[id] = fn
	fs.decls[lit] = fn
	fs.byPkg[pkg] = append(fs.byPkg[pkg], fn)
	b := newBuilder(fs, pkg, fn)
	b.walk(lit.Body)
	return fn
}

func newBuilder(fs *Facts, pkg *Package, fn *FuncFacts) *factsBuilder {
	return &factsBuilder{
		fs: fs, pkg: pkg, fn: fn,
		discard:     make(map[*ast.CallExpr]bool),
		deferred:    make(map[*ast.CallExpr]bool),
		async:       make(map[*ast.CallExpr]bool),
		nonBlocking: make(map[*ast.SendStmt]bool),
	}
}

// recordMethodSet memoizes the full "name|sig" method set of a
// receiver's defining type (pointer receiver, so value methods and
// promoted methods are all included).
func (fs *Facts) recordMethodSet(recvKey string, recv types.Type) {
	if fs.recvMethods[recvKey] != nil {
		return
	}
	t := types.Unalias(recv)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	set := make(map[string]bool)
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if sig, ok := m.Type().(*types.Signature); ok {
			set[m.Obj().Name()+"|"+sigString(sig)] = true
		}
	}
	fs.recvMethods[recvKey] = set
}

// hasDirective reports whether the comment group carries //lint:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			n, _, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(n) == name {
				return true
			}
		}
	}
	return false
}

// walk traverses the body in source order, maintaining the held-lock set.
func (b *factsBuilder) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			b.fs.buildLit(b.pkg, v)
			return false // its statements run later, not here
		case *ast.DeferStmt:
			b.deferred[v.Call] = true
			b.markDiscards(v.Call, nil)
		case *ast.GoStmt:
			b.async[v.Call] = true
			b.markDiscards(v.Call, nil)
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				b.markDiscards(call, nil)
			}
		case *ast.AssignStmt:
			if len(v.Rhs) == 1 {
				if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
					b.markDiscards(call, v.Lhs)
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			b.fn.CancelWait = true
			if hasDefault {
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							b.nonBlocking[send] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if !b.nonBlocking[v] {
				if b.fn.BlockingSend == 0 {
					b.fn.BlockingSend = v.Pos()
				}
				if len(b.held) > 0 {
					b.fn.SendsHeld = append(b.fn.SendsHeld, sendSite{held: b.heldCopy(), pos: v.Pos()})
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				b.fn.CancelWait = true
			}
		case *ast.RangeStmt:
			if t := b.pkg.Info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					b.fn.CancelWait = true
				}
			}
		case *ast.CallExpr:
			b.call(v)
		}
		return true
	})
}

// markDiscards records which of call's results are dropped: all of them
// (lhs nil — bare statement, defer, go) or the ones assigned to `_`.
// Only the trailing error result matters to the summary.
func (b *factsBuilder) markDiscards(call *ast.CallExpr, lhs []ast.Expr) {
	if lhs == nil {
		b.discard[call] = true
		return
	}
	last := lhs[len(lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		b.discard[call] = true
	}
}

// call classifies one call expression: a mutex operation updates the
// held set; anything else records an edge with the current held set.
func (b *factsBuilder) call(call *ast.CallExpr) {
	if id, kind := b.lockOp(call); kind != lockNone {
		switch kind {
		case lockAcquire, lockAcquireR:
			if _, ok := b.fn.Acquires[id]; !ok {
				b.fn.Acquires[id] = call.Pos()
			}
			if !b.deferred[call] {
				b.held = append(b.held, heldLock{id: id, read: kind == lockAcquireR, pos: call.Pos()})
			}
		case lockRelease, lockReleaseR:
			if !b.deferred[call] { // deferred Unlock pins the lock to function end
				for i := len(b.held) - 1; i >= 0; i-- {
					if b.held[i].id == id {
						b.held = append(b.held[:i], b.held[i+1:]...)
						break
					}
				}
			}
		case lockNone: // unreachable: the kind != lockNone guard above
		}
		return
	}

	callee, iface := b.calleeOf(call)
	if callee == nil {
		return
	}
	// Cancellation-signal and WaitGroup accounting for known callees.
	if pkg := callee.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "context" && (callee.Name() == "Done" || callee.Name() == "Err"):
			b.fn.CancelWait = true
		case pkg.Path() == "sync" && callee.Name() == "Done" && recvIs(callee, "sync", "WaitGroup"):
			b.fn.WGDone = true
		case pkg.Path() == "sync" && callee.Name() == "Wait" && recvIs(callee, "sync", "WaitGroup"):
			b.fn.CancelWait = true
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	site := callSite{
		callee:      funcIDOf(callee),
		iface:       iface,
		name:        callee.Name(),
		held:        b.heldCopy(),
		pos:         call.Pos(),
		async:       b.async[call],
		deferred:    b.deferred[call],
		discardsErr: b.discard[call] && sig != nil && returnsError(sig),
	}
	for _, arg := range call.Args {
		if isContextType(b.pkg.Info.TypeOf(arg)) {
			site.ctxArg = true
			break
		}
	}
	if iface && sig != nil {
		site.sig = sigString(sig)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := b.pkg.Info.Selections[sel]; s != nil {
				if it, ok := s.Recv().Underlying().(*types.Interface); ok {
					for i := 0; i < it.NumMethods(); i++ {
						m := it.Method(i)
						if msig, ok := m.Type().(*types.Signature); ok {
							site.ifaceSet = append(site.ifaceSet, m.Name()+"|"+sigString(msig))
						}
					}
				}
			}
		}
	}
	b.fn.Calls = append(b.fn.Calls, site)
}

func (b *factsBuilder) heldCopy() []heldLock {
	if len(b.held) == 0 {
		return nil
	}
	return append([]heldLock(nil), b.held...)
}

// recvIs reports whether fn is a method on pkg.Type (pointer-stripped).
func recvIs(fn *types.Func, pkgPath, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// calleeOf resolves a call's static target. iface is true when the call
// dispatches through an interface method.
func (b *factsBuilder) calleeOf(call *ast.CallExpr) (fn *types.Func, iface bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := b.pkg.Info.Uses[f].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		if sel := b.pkg.Info.Selections[f]; sel != nil {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			return fn, types.IsInterface(sel.Recv())
		}
		// Package-qualified function (pkg.Fn) or method expression.
		fn, _ := b.pkg.Info.Uses[f.Sel].(*types.Func)
		return fn, false
	}
	return nil, false
}

type lockOpKind uint8

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockAcquireR
	lockRelease
	lockReleaseR
)

// lockOp classifies a call as a sync.Mutex/RWMutex operation and derives
// the lock's identity.
func (b *factsBuilder) lockOp(call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		kind = lockAcquire
	case "RLock", "TryRLock":
		kind = lockAcquireR
	case "Unlock":
		kind = lockRelease
	case "RUnlock":
		kind = lockReleaseR
	default:
		return "", lockNone
	}
	if !isMutexType(b.pkg.Info.TypeOf(sel.X)) {
		// Embedded mutex: s.Lock() where s embeds sync.Mutex.
		s := b.pkg.Info.Selections[sel]
		if s == nil || !isMutexMethod(s.Obj()) {
			return "", lockNone
		}
		return b.lockID(sel.X, "<embedded>"), kind
	}
	// Explicit field or variable: peel the mutex expression into
	// owner + field path.
	path := []string{}
	e := ast.Unparen(sel.X)
	for {
		if inner, ok := e.(*ast.SelectorExpr); ok {
			path = append([]string{inner.Sel.Name}, path...)
			e = ast.Unparen(inner.X)
			continue
		}
		break
	}
	if len(path) == 0 {
		// A bare mutex variable (package-level or local).
		if id, ok := e.(*ast.Ident); ok {
			return b.varLockID(id), kind
		}
		return b.exprLockID(sel.X), kind
	}
	return b.lockID(e, strings.Join(path, ".")), kind
}

// lockID derives a type-scoped lock identity: the named type of owner
// plus the field path to the mutex.
func (b *factsBuilder) lockID(owner ast.Expr, field string) string {
	t := b.pkg.Info.TypeOf(owner)
	if t != nil {
		u := types.Unalias(t)
		if p, ok := u.(*types.Pointer); ok {
			u = types.Unalias(p.Elem())
		}
		if n, ok := u.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + field
		}
	}
	// Ownerless (local struct, etc.): fall back to the expression site.
	return b.exprLockID(owner) + "." + field
}

// varLockID identifies a bare mutex variable: package-scoped vars by
// name (shared across functions), locals by declaration site (private
// to this function — no callee can name them).
func (b *factsBuilder) varLockID(id *ast.Ident) string {
	obj := b.pkg.Info.Uses[id]
	if obj == nil {
		obj = b.pkg.Info.Defs[id]
	}
	if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	if obj != nil {
		return fmt.Sprintf("local.%s@%d", obj.Name(), obj.Pos())
	}
	return fmt.Sprintf("local.%s@%d", id.Name, id.Pos())
}

func (b *factsBuilder) exprLockID(e ast.Expr) string {
	pos := b.pkg.Fset.Position(e.Pos())
	return fmt.Sprintf("expr@%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}

// isMutexType reports whether t (pointer-stripped) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// isMutexMethod reports whether obj is a method of sync.Mutex/RWMutex
// (reached through embedding).
func isMutexMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isMutexType(sig.Recv().Type())
}

// lockShort renders a lock id for diagnostics: the path-trimmed form
// (tune.Manager.mu).
func lockShort(id string) string {
	slash := strings.LastIndexByte(id, '/')
	return id[slash+1:]
}

// collectEnums registers pkg's exhaustiveness domains: every named-type
// constant family automatically, every //lint:enum-marked const block by
// its group word.
func (fs *Facts) collectEnums(pkg *Package) {
	// Named-type families: package-level constants grouped by their
	// named (basic-underlying) type declared in this package.
	byType := make(map[string][]string)
	scope := pkg.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		n, ok := types.Unalias(c.Type()).(*types.Named)
		if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkg.Path {
			continue
		}
		if _, basic := n.Underlying().(*types.Basic); !basic {
			continue
		}
		tkey := n.Obj().Name()
		byType[tkey] = append(byType[tkey], pkg.Path+"."+name)
	}
	typeNames := make([]string, 0, len(byType))
	for t := range byType {
		//lint:detmap-exempt the collected keys are sorted immediately below
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)
	for _, t := range typeNames {
		members := byType[t]
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		fs.addEnum(pkgBase(pkg.Path)+"."+t, members)
	}

	// Marked const blocks, grouped by the first word after //lint:enum.
	marked := make(map[string][]string)
	var order []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			group := enumGroupWord(gd.Doc)
			if group == "" {
				continue
			}
			if _, seen := marked[group]; !seen {
				order = append(order, group)
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					marked[group] = append(marked[group], pkg.Path+"."+name.Name)
				}
			}
		}
	}
	for _, group := range order {
		members := marked[group]
		sort.Strings(members)
		fs.addEnum(group, members)
	}
}

func (fs *Facts) addEnum(name string, members []string) {
	g := &EnumGroup{Name: name, Members: members}
	fs.enums = append(fs.enums, g)
	for _, m := range members {
		if fs.memberOf[m] == nil {
			fs.memberOf[m] = g
		}
	}
}

// enumGroupWord extracts the group word of a //lint:enum directive in a
// const block's doc comment ("" when unmarked).
func enumGroupWord(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, reason, _ := strings.Cut(rest, " ")
		if strings.TrimSpace(name) != DirectiveEnum {
			continue
		}
		word, _, _ := strings.Cut(strings.TrimSpace(reason), " ")
		return word
	}
	return ""
}

func pkgBase(path string) string {
	slash := strings.LastIndexByte(path, '/')
	return path[slash+1:]
}
