package analysis

import (
	"sort"
)

// All returns the robustlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FPUMediation,
		DetMapRange,
		NoTimeInArtifacts,
		AtomicWrite,
		SeededRand,
	}
}

// DirectiveHygieneName labels the framework's own diagnostics about
// malformed //lint: comments. It is not an analyzer and cannot be
// exempted: an exemption without a written reason defeats the audit
// trail the directives exist to provide.
const DirectiveHygieneName = "lintdirective"

// Run loads the packages matching patterns under dir and applies every
// analyzer to every package, returning the surviving (non-exempted)
// diagnostics sorted by position. Directive hygiene — unknown //lint:
// directives and directives with no reason — is always checked.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, RunPackage(pkg, "", analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies analyzers to one loaded package. pathAs, when
// non-empty, overrides the package's import path for analyzer scoping —
// the fixture runner uses it so testdata packages can impersonate the
// real paths an analyzer audits.
func RunPackage(pkg *Package, pathAs string, analyzers []*Analyzer) []Diagnostic {
	path := pkg.Path
	if pathAs != "" {
		path = pathAs
	}
	known := make(map[string]bool)
	for _, a := range All() { // all registered directives stay valid even under -only
		if a.Directive != "" {
			known[a.Directive] = true
		}
	}
	exempt := buildExemptIndex(pkg.Fset, pkg.Files, known)

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	diags = append(diags, checkDirectiveHygiene(pkg, known)...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			exempt:   exempt,
			collect:  collect,
		}
		a.Run(pass)
	}
	return diags
}

// checkDirectiveHygiene reports malformed //lint: comments: unknown
// directive names (usually typos, which would silently exempt nothing)
// and directives missing the mandatory reason.
func checkDirectiveHygiene(pkg *Package, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range parseDirectives(f) {
			switch {
			case !known[d.name]:
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(d.pos),
					Analyzer: DirectiveHygieneName,
					Message:  "unknown //lint: directive " + d.name,
				})
			case d.reason == "":
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(d.pos),
					Analyzer: DirectiveHygieneName,
					Message:  "//lint:" + d.name + " needs a written reason",
				})
			}
		}
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
