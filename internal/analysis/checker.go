package analysis

import (
	"sort"
)

// All returns the robustlint analyzer suite in stable order. The first
// five are single-function AST passes (PR 6); the last four query the
// cross-function facts layer (facts.go) built once per run.
func All() []*Analyzer {
	return []*Analyzer{
		FPUMediation,
		DetMapRange,
		NoTimeInArtifacts,
		AtomicWrite,
		SeededRand,
		LockSafety,
		GoroutineHygiene,
		ErrDurability,
		RegExhaustive,
	}
}

// DirectiveHygieneName labels the framework's own diagnostics about
// malformed //lint: comments. It is not an analyzer and cannot be
// exempted: an exemption without a written reason defeats the audit
// trail the directives exist to provide.
const DirectiveHygieneName = "lintdirective"

// knownDirectives returns the exemption directives of every registered
// analyzer, and separately the full set of valid //lint: names (markers
// included) the hygiene check accepts.
func knownDirectives() (exempts, all map[string]bool) {
	exempts = make(map[string]bool)
	for _, a := range All() { // all registered directives stay valid even under -only
		if a.Directive != "" {
			exempts[a.Directive] = true
		}
	}
	all = map[string]bool{
		DirectiveDurable: true,
		DirectiveEnum:    true,
	}
	for d := range exempts {
		all[d] = true
	}
	return exempts, all
}

// Run loads the packages matching patterns under dir and applies every
// analyzer to every package, returning the surviving (non-exempted)
// diagnostics sorted by position. Directive hygiene — unknown //lint:
// directives and directives with no reason — is always checked.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	diags, err := RunWithExempted(dir, analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	return dropExempted(diags), nil
}

// RunWithExempted is Run, but the result additionally includes the
// findings //lint: directives suppressed, each carrying its Exempted
// flag and the directive's written reason. The JSON output mode uses
// this so the machine-readable report shows the full audit surface; the
// exit status and text output must still count only live findings.
func RunWithExempted(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	facts := BuildFacts(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runPackage(pkg, "", analyzers, facts)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies analyzers to one loaded package, with call-graph
// facts built over that package alone. pathAs, when non-empty, overrides
// the package's import path for analyzer scoping — the fixture runner
// uses it so testdata packages can impersonate the real paths an
// analyzer audits. Exempted findings are dropped, as in Run.
func RunPackage(pkg *Package, pathAs string, analyzers []*Analyzer) []Diagnostic {
	return dropExempted(runPackage(pkg, pathAs, analyzers, BuildFacts([]*Package{pkg})))
}

func runPackage(pkg *Package, pathAs string, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	path := pkg.Path
	if pathAs != "" {
		path = pathAs
	}
	exempts, valid := knownDirectives()
	exempt := buildExemptIndex(pkg.Fset, pkg.Files, exempts)

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	diags = append(diags, checkDirectiveHygiene(pkg, valid)...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Facts:    facts,
			pkg:      pkg,
			exempt:   exempt,
			collect:  collect,
		}
		a.Run(pass)
	}
	return diags
}

// dropExempted filters out suppressed findings, preserving order.
func dropExempted(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !d.Exempted {
			out = append(out, d)
		}
	}
	return out
}

// checkDirectiveHygiene reports malformed //lint: comments: unknown
// directive names (usually typos, which would silently exempt nothing)
// and directives missing the mandatory reason — exemptions and marker
// directives (//lint:durable, //lint:enum) alike.
func checkDirectiveHygiene(pkg *Package, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range parseDirectives(f) {
			switch {
			case !known[d.name]:
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(d.pos),
					Analyzer: DirectiveHygieneName,
					Message:  "unknown //lint: directive " + d.name,
				})
			case d.reason == "":
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(d.pos),
					Analyzer: DirectiveHygieneName,
					Message:  "//lint:" + d.name + " needs a written reason",
				})
			}
		}
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
