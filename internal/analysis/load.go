package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Match      []string
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns (relative to dir, which must
// be inside the module), compiles their dependency graph with
// `go list -export`, and re-type-checks each matched package from source so
// analyzers see full syntax with types. Test files are not loaded: the
// invariants robustlint guards are production-code invariants, and several
// analyzers (seededrand in particular) deliberately permit test-only
// idioms.
//
// The loader needs no network and no dependencies beyond the go toolchain:
// imports are satisfied from the export data the toolchain just produced,
// read back through go/importer's gc lookup mode.
//
// Loads are memoized per process, keyed by the resolved directory and
// pattern list: loaded packages are read-only after Load returns, so one
// invocation of the driver — and every test in a binary that analyzes the
// same tree — pays for `go list -export` and type-checking exactly once,
// no matter how many analyzers or fixture passes consume the result.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	key += "\x00" + strings.Join(patterns, "\x00")
	loadCache.mu.Lock()
	defer loadCache.mu.Unlock()
	if pkgs, ok := loadCache.m[key]; ok {
		return pkgs, nil
	}
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}
	loadCache.m[key] = pkgs
	return pkgs, nil
}

// loadCache memoizes Load results for the life of the process.
var loadCache = struct {
	mu sync.Mutex
	m  map[string][]*Package
}{m: make(map[string][]*Package)}

func load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listedPkg
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if len(lp.Match) > 0 && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` over patterns and decodes the
// package stream. -deps pulls in every transitive dependency (standard
// library included) so export data exists for the importer; the matched
// target packages are distinguished by their Match field.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,Export,Match,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list: %s", msg)
	}
	var out []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		out = append(out, &lp)
	}
	return out, nil
}
