package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Exemption directives
//
// A diagnostic is suppressed by a comment of the form
//
//	//lint:<directive> <reason>
//
// where <directive> is the analyzer's Directive (e.g. "fpu-exempt") and
// <reason> is mandatory free text explaining why the invariant does not
// apply. The directive's scope depends on where the comment sits:
//
//   - in a file's doc comment (above `package`): the whole file;
//   - in a declaration's doc comment (func, type, var, const): that
//     declaration, body included;
//   - trailing a statement, or on its own line: the innermost statement
//     or declaration spanning (for trailing) or immediately following
//     (for standalone) the comment — multi-line statements are covered
//     in full.
//
// A directive with an empty reason, or an unknown //lint: directive, is
// itself reported; the hygiene check lives in checker.go so every run of
// the suite enforces it regardless of which analyzers are selected.

const directivePrefix = "//lint:"

// directive is one parsed //lint: comment.
type directive struct {
	name   string // e.g. "fpu-exempt"
	reason string
	pos    token.Pos
	end    token.Pos
}

// lineRange is an inclusive exempted line span within one file, carrying
// the directive's written reason so suppressed findings can surface it.
type lineRange struct {
	from, to int
	reason   string
}

// exemptIndex answers "is this position covered by a directive for this
// analyzer" across all files of a package.
type exemptIndex struct {
	// byFile is keyed by filename; values map directive name → spans.
	byFile map[string]map[string][]lineRange
}

// coveredBy reports whether a directive for the analyzer spans pos, and
// with which written reason.
func (x *exemptIndex) coveredBy(directiveName string, pos token.Position) (string, bool) {
	if x == nil || directiveName == "" {
		return "", false
	}
	for _, r := range x.byFile[pos.Filename][directiveName] {
		if pos.Line >= r.from && pos.Line <= r.to {
			return r.reason, true
		}
	}
	return "", false
}

// parseDirectives extracts every //lint: comment from f.
func parseDirectives(f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, directive{
				name:   strings.TrimSpace(name),
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				end:    c.End(),
			})
		}
	}
	return out
}

// buildExemptIndex resolves each directive in each file to its exempted
// line span. known maps directive name → true for every registered
// analyzer directive; unknown names are left out of the index (the
// hygiene check reports them separately).
func buildExemptIndex(fset *token.FileSet, files []*ast.File, known map[string]bool) *exemptIndex {
	idx := &exemptIndex{byFile: make(map[string]map[string][]lineRange)}
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		spans := idx.byFile[fileName]
		if spans == nil {
			spans = make(map[string][]lineRange)
			idx.byFile[fileName] = spans
		}
		fileEndLine := fset.Position(f.End()).Line
		for _, d := range parseDirectives(f) {
			if !known[d.name] {
				continue
			}
			r := resolveScope(fset, f, d, fileEndLine)
			r.reason = d.reason
			spans[d.name] = append(spans[d.name], r)
		}
	}
	return idx
}

// resolveScope maps a directive to its exempted line range per the rules
// in the package comment above.
func resolveScope(fset *token.FileSet, f *ast.File, d directive, fileEndLine int) lineRange {
	dLine := fset.Position(d.pos).Line

	// File scope: the directive sits above the package clause.
	if d.end < f.Package {
		return lineRange{from: 1, to: fileEndLine}
	}

	// Declaration scope: the directive is part of a decl's doc comment.
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch v := decl.(type) {
		case *ast.FuncDecl:
			doc = v.Doc
		case *ast.GenDecl:
			doc = v.Doc
		}
		if doc != nil && d.pos >= doc.Pos() && d.end <= doc.End() {
			return lineRange{from: fset.Position(decl.Pos()).Line, to: fset.Position(decl.End()).Line}
		}
	}

	// Statement scope: the innermost statement whose span contains the
	// directive line (trailing comment) or starts just after it
	// (standalone comment above a statement).
	if r, ok := innermostStmtRange(fset, f, dLine); ok {
		return r
	}
	// Fallback: the directive's own line and the next (covers struct
	// fields, composite-literal entries, and other non-statement sites).
	return lineRange{from: dLine, to: dLine + 1}
}

// innermostStmtRange finds the smallest statement or declaration whose
// line span contains line, or — failing that — the smallest one starting
// on the first line after it. ok is false when neither exists.
func innermostStmtRange(fset *token.FileSet, f *ast.File, line int) (lineRange, bool) {
	best := lineRange{}
	bestSize := 1 << 30
	found := false
	consider := func(n ast.Node) {
		from := fset.Position(n.Pos()).Line
		to := fset.Position(n.End()).Line
		if from <= line && line <= to || from == line+1 {
			if size := to - from; !found || size < bestSize {
				best, bestSize, found = lineRange{from: from, to: to}, size, true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
			consider(n)
		}
		return true
	})
	return best, found
}
