package analysis

import (
	"go/token"
)

// LockSafety hunts the PR-9 deadlock class: doing something that can
// block — forever — while holding a mutex. The single-function analyzers
// could never see it, because the blocking operation hides behind one or
// more call frames (tune.Manager.Resume held m.mu and called emit, and
// emit re-locked m.mu two frames down).
//
// For every call made while a sync.Mutex/RWMutex is held, the analyzer
// BFS-walks the call-graph facts (interface calls expanded to every
// loaded implementation by name+signature) and reports when a transitive
// callee:
//
//   - (re)acquires the same lock — identified by owner type and field
//     path, so any instance of the type triggers it (a self-deadlock is
//     instance-blind anyway);
//   - or performs a channel send not guarded by a select-with-default —
//     a rendezvous that can park the goroutine indefinitely while every
//     other user of the lock piles up behind it. Direct sends under a
//     held lock are reported too.
//
// Cross-instance locking of the same type (rare, deliberate) and sends
// on buffered channels that provably never fill are exempted with
// //lint:locksafety-exempt <reason>.
var LockSafety = &Analyzer{
	Name:      "locksafety",
	Directive: "locksafety-exempt",
	Doc:       "no call that can reacquire the held mutex or block on a channel send",
	Run:       runLockSafety,
}

func runLockSafety(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, fn := range pass.Facts.PkgFuncs(pass.pkg) {
		// Direct sends with a lock held.
		for _, s := range fn.SendsHeld {
			pass.Report(s.pos, "channel send while holding %s can block with the lock held (hand the value off outside the critical section, or //lint:locksafety-exempt <reason>)",
				lockShort(s.held[len(s.held)-1].id))
		}
		for _, c := range fn.Calls {
			if c.async || len(c.held) == 0 {
				continue
			}
			checkHeldCall(pass, fn, c)
		}
	}
}

// checkHeldCall reports if the call site c (made with locks held) can
// reach a reacquisition of a held lock or a blocking send.
func checkHeldCall(pass *Pass, fn *FuncFacts, c callSite) {
	held := make(map[string]token.Pos, len(c.held))
	for _, h := range c.held {
		held[h.id] = h.pos
	}
	var deadPos token.Pos
	var deadLock string
	hit := pass.Facts.Reach(c, func(callee *FuncFacts) bool {
		for id := range callee.Acquires {
			if _, ok := held[id]; ok {
				//lint:detmap-exempt at most one held lock can match; which map order finds it first is irrelevant
				deadLock, deadPos = id, callee.Acquires[id]
				return true
			}
		}
		return false
	})
	if hit != nil {
		pass.Report(c.pos, "call to %s while holding %s deadlocks: %s reacquires it at %s (via %s) — release the lock first, or //lint:locksafety-exempt <reason>",
			hit.pathRoot().Name, lockShort(deadLock), hit.fn.Name,
			pass.Fset.Position(deadPos), hit.path())
		return
	}
	// No reacquire; can the callee park on a channel send?
	hit = pass.Facts.Reach(c, func(callee *FuncFacts) bool {
		return callee.BlockingSend != 0
	})
	if hit != nil {
		pass.Report(c.pos, "call to %s while holding %s can block on a channel send in %s at %s (via %s) — move the send outside the critical section, or //lint:locksafety-exempt <reason>",
			hit.pathRoot().Name, lockShort(c.held[len(c.held)-1].id), hit.fn.Name,
			pass.Fset.Position(hit.fn.BlockingSend), hit.path())
	}
}

// pathRoot returns the first frame of the reach chain (the direct
// callee at the reported call site).
func (r *reachStep) pathRoot() *FuncFacts {
	s := r
	for s.via != nil {
		s = s.via
	}
	return s.fn
}
