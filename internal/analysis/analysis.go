// Package analysis is a self-contained static-analysis framework plus the
// repo's analyzer suite ("robustlint"). It enforces invariants the generic
// Go tooling cannot know about:
//
//   - fpumediation: stochastic float math in the numerical packages must
//     flow through fpu.Unit, or carry a written //lint:fpu-exempt reason.
//   - detmaprange: map iteration must not feed order-dependent sinks
//     (appends, writers, string or float accumulation) without a sort.
//   - notimeinartifacts: wall-clock values must not reach resume-identity
//     artifacts (JSONL store records, tune.json) — timestamps belong in
//     meta.json and /metrics only.
//   - atomicwrite: *.json artifacts under a data root are written through
//     fsutil.WriteFileAtomic (temp + fsync + rename), never os.WriteFile.
//   - seededrand: no global math/rand and no time-derived seeds outside
//     _test.go files and examples/.
//
// The framework deliberately mirrors the shape of golang.org/x/tools/
// go/analysis (Analyzer, Pass, Diagnostic) so the suite can migrate to the
// real driver if the module ever takes on the dependency, but it is built
// entirely on the standard library: packages are located and compiled with
// `go list -export`, then re-type-checked from source with go/types and an
// export-data importer. See load.go.
//
// Every analyzer supports a written escape hatch, `//lint:<directive>
// <reason>`; a directive with no reason is itself a diagnostic. See
// exempt.go for directive scoping rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Directive is the exemption directive (without the "//lint:"
	// prefix), e.g. "fpu-exempt". Diagnostics at positions covered by
	// the directive are suppressed; see exempt.go.
	Directive string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path. Analyzers scope themselves by
	// it (e.g. fpumediation only audits the numerical packages). The
	// fixture runner overrides it so testdata packages can stand in for
	// real ones.
	Path string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts is the call-graph database over every package of the run —
	// the cross-function layer the lock-safety, goroutine-hygiene,
	// error-durability, and registry-exhaustiveness analyzers query.
	Facts *Facts

	pkg     *Package
	exempt  *exemptIndex
	collect func(Diagnostic)
}

// Diagnostic is one reported finding. Exempted diagnostics — findings a
// //lint: directive suppressed, together with the directive's written
// reason — are only collected when the run asks for them (the JSON
// output surfaces them; plain text and the exit status never count
// them).
type Diagnostic struct {
	Pos          token.Position
	Analyzer     string
	Message      string
	Exempted     bool
	ExemptReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Report files a diagnostic at pos unless an in-scope exemption directive
// for this analyzer covers it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if reason, covered := p.exempt.coveredBy(p.Analyzer.Directive, position); covered {
		p.collect(Diagnostic{
			Pos:          position,
			Analyzer:     p.Analyzer.Name,
			Message:      fmt.Sprintf(format, args...),
			Exempted:     true,
			ExemptReason: reason,
		})
		return
	}
	p.collect(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// typeOf returns the type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// isFloat reports whether e has floating-point type.
func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression
// (constant folding happens at compile time, not on the FPU).
func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// pkgFunc matches a call to a package-level function: it returns the
// imported package path and function name of e's callee, or "" when the
// callee is not a selector on an imported package.
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// objectOf resolves an identifier to its object (definition or use).
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// rootIdent peels selectors, indexes, and parens down to the base
// identifier of an lvalue-ish expression: x, x.F, x[i].F → x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
