package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoTimeInArtifacts keeps wall-clock values out of resume-identity
// artifacts. Campaign stores (trials.jsonl), specs, and tune traces must
// be byte-identical across kill/resume cycles and across in-process vs
// distributed execution; a timestamp in any of them breaks the identity
// the moment a resumed run re-serializes. Timestamps belong in meta.json
// (lifecycle record, explicitly outside resume identity) and in /metrics.
//
// The check is an intra-function taint pass over the serialization
// packages (internal/campaign, internal/tune, internal/harness): values
// produced by time.Now/time.Since — including values derived from them
// through method calls, arithmetic, and composite literals — must not
// reach a serialization sink: json.Marshal/MarshalIndent, (*json.Encoder)
// .Encode, a Store.Append/Put record, a writeTrace call, or
// fsutil.WriteFileAtomic. Legitimate uses (meta.json fields, durations
// feeding logs or metrics text) never hit those sinks and pass untouched;
// anything intentional is exempted with //lint:artifact-time-exempt
// <reason>.
var NoTimeInArtifacts = &Analyzer{
	Name:      "notimeinartifacts",
	Directive: "artifact-time-exempt",
	Doc:       "wall-clock values must not reach resume-identity artifacts",
	Run:       runNoTimeInArtifacts,
}

var timeArtifactScopes = map[string]bool{
	"robustify/internal/campaign": true,
	"robustify/internal/tune":     true,
	"robustify/internal/harness":  true,
	// The observability layer handles wall-clock values by design — but
	// only on the diagnostics side. Scoping it here is what enforces the
	// split: any flow from a time source into a store write or marshal
	// needs an explicit artifact-time-exempt justification (telemetry.go's
	// sidecar append is the one legitimate case).
	"robustify/internal/obs": true,
}

func runNoTimeInArtifacts(pass *Pass) {
	if !timeArtifactScopes[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkTimeTaint(pass, fn)
		}
	}
}

// checkTimeTaint runs a small fixpoint taint propagation over fn's body:
// seeds are time.Now/time.Since calls, taint flows through assignments
// (including field writes, which coarsely taint the root object), and any
// tainted expression arriving at a serialization sink is reported.
func checkTimeTaint(pass *Pass, fn *ast.FuncDecl) {
	tainted := make(map[types.Object]bool)

	// exprTainted reports whether e's tree contains a time source or a
	// read of a tainted object.
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if isTimeSource(pass, v) {
					found = true
				}
			case *ast.Ident:
				if obj := pass.objectOf(v); obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Propagate to fixpoint: two passes cover the straight-line flows
	// and the common loop-carried case without a full dataflow engine.
	for i := 0; i < 2; i++ {
		changed := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for j, lhs := range as.Lhs {
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[j]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil || !exprTainted(rhs) {
					continue
				}
				if id := rootIdent(lhs); id != nil {
					if obj := pass.objectOf(id); obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink := serializationSink(pass, call)
		if sink == "" {
			return true
		}
		for _, arg := range call.Args {
			if exprTainted(arg) {
				pass.Report(call.Pos(), "wall-clock value reaches %s: timestamps break resume byte-identity and belong in meta.json or /metrics (//lint:artifact-time-exempt <reason> if this artifact is genuinely outside resume identity)", sink)
				return true
			}
		}
		return true
	})
}

// isTimeSource matches time.Now() and time.Since(...).
func isTimeSource(pass *Pass, call *ast.CallExpr) bool {
	pkg, fn := pass.pkgFunc(call)
	return pkg == "time" && (fn == "Now" || fn == "Since")
}

// serializationSink names the artifact sink call matches, or "".
func serializationSink(pass *Pass, call *ast.CallExpr) string {
	if pkg, fn := pass.pkgFunc(call); pkg == "encoding/json" && (fn == "Marshal" || fn == "MarshalIndent") {
		return "json." + fn
	}
	if pkg, fn := pass.pkgFunc(call); strings.HasSuffix(pkg, "internal/fsutil") && fn == "WriteFileAtomic" {
		return "fsutil.WriteFileAtomic"
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "writeTrace" {
		return "writeTrace (tune.json)"
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := pass.Info.Selections[sel]
	if s == nil { // package-qualified call or field access, handled above
		if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == nil && pass.Info.Defs[id] == nil {
			return ""
		}
	}
	recv := ""
	if s != nil {
		recv = s.Recv().String()
	}
	switch {
	case sel.Sel.Name == "Encode" && strings.Contains(recv, "encoding/json.Encoder"):
		return "(*json.Encoder).Encode"
	case (sel.Sel.Name == "Append" || sel.Sel.Name == "Put") && strings.Contains(recv, "campaign.Store"):
		return "(*campaign.Store)." + sel.Sel.Name
	}
	return ""
}
