package analysis

import "testing"

// TestSelfApplication runs the full robustlint suite over the module and
// fails on any surviving diagnostic. This is the enforcement point: a new
// violation anywhere in the tree — or an exemption that loses its written
// reason — fails `go test ./...` without any extra CI wiring.
func TestSelfApplication(t *testing.T) {
	diags, err := Run("../..", All(), "./...")
	if err != nil {
		t.Fatalf("robustlint self-run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the finding or add a //lint:<directive> <written reason>; see internal/analysis doc")
	}
}
