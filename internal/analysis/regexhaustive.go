package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RegExhaustive ("registry-exhaustive") closes the silent-bypass hole
// that bit PR 7 and PR 8: the repo grows by registries — robust losses,
// fault-model families, campaign and tune lifecycle states, penalty
// kinds — and every switch or keyed literal that dispatches over one is
// a place where the *next* registered member can silently fall through
// to the wrong arm. A sixth loss that misses one plumbing switch ships
// with the legacy objective; a seventh lifecycle state that misses a
// metrics map just never appears in /metrics.
//
// Domains ("enum groups") come from the facts layer:
//
//   - automatically, for every named-type constant family (robust.Kind,
//     core.PenaltyKind, fpu.Op, dispatch.shardState, ...);
//   - by declaration, for untyped const blocks carrying //lint:enum
//     <group> <doc> (campaign-state, tune-state, fault-model-family) —
//     blocks in one package sharing the group word merge, so
//     tune.StateCancelled joins the states declared in another file.
//
// A switch statement, map literal, or slice/array literal that mentions
// any member of a group must mention every member. A `default:` clause
// does not count as coverage — the default arm is exactly where an
// unplumbed new member hides. Sites that are genuinely partial by
// design (a terminal-states predicate, an error default) either spell
// out the remaining members or carry //lint:regexhaustive-exempt
// <reason>.
var RegExhaustive = &Analyzer{
	Name:      "regexhaustive",
	Directive: "regexhaustive-exempt",
	Doc:       "dispatch over a registered enum must cover every registered member",
	Run:       runRegExhaustive,
}

func runRegExhaustive(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SwitchStmt:
				if v.Tag == nil {
					return true
				}
				var exprs []ast.Expr
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						exprs = append(exprs, cc.List...)
					}
				}
				checkDispatch(pass, v.Pos(), "switch", exprs)
			case *ast.CompositeLit:
				t := pass.typeOf(v)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Map:
					var keys []ast.Expr
					for _, e := range v.Elts {
						if kv, ok := e.(*ast.KeyValueExpr); ok {
							keys = append(keys, kv.Key)
						}
					}
					checkDispatch(pass, v.Pos(), "map literal", keys)
				case *types.Slice, *types.Array:
					var elts []ast.Expr
					for _, e := range v.Elts {
						if _, ok := e.(*ast.KeyValueExpr); !ok {
							elts = append(elts, e)
						}
					}
					checkDispatch(pass, v.Pos(), "literal", elts)
				}
			}
			return true
		})
	}
}

// checkDispatch resolves the constant members mentioned by the site's
// expressions and, for every enum group touched, reports the members
// the site misses.
func checkDispatch(pass *Pass, pos token.Pos, site string, exprs []ast.Expr) {
	present := make(map[string]bool)
	var groups []*EnumGroup
	seen := make(map[*EnumGroup]bool)
	for _, e := range exprs {
		key := constKey(pass, e)
		if key == "" {
			continue
		}
		g := pass.Facts.MemberGroup(key)
		if g == nil {
			continue
		}
		present[key] = true
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	for _, g := range groups {
		var missing []string
		for _, m := range g.Members {
			if !present[m] {
				missing = append(missing, memberShort(m))
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pass.Report(pos, "%s dispatches over %s but misses %s — a newly registered member would silently bypass this site; cover it or //lint:regexhaustive-exempt <reason>",
			site, g.Name, strings.Join(missing, ", "))
	}
}

// constKey resolves an expression to a registered constant's key
// (pkgpath.Name), or "".
func constKey(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return ""
	}
	c, ok := pass.objectOf(id).(*types.Const)
	if !ok || c.Pkg() == nil {
		return ""
	}
	return c.Pkg().Path() + "." + c.Name()
}
