package analysis

import (
	"go/ast"
	"strings"
)

// SeededRand forbids ambient randomness in production code. Every random
// draw in this repo — fault placement, problem generation, trial seeds —
// must be attributable to an explicit seed so that campaigns, tune
// traces, and distributed shards replay byte-identically. Global
// math/rand state is shared, order-dependent across goroutines, and
// (since Go 1.20) auto-seeded; a time-derived seed is nondeterminism with
// extra steps.
//
// Flagged everywhere except _test.go files (not loaded) and examples/
// (example mains keep fixed seeds by convention, pinned by their
// run-twice determinism tests): calls to math/rand or math/rand/v2
// package-level functions other than the explicit constructors
// (New/NewSource/NewZipf/NewPCG/NewChaCha8), and constructor seed
// arguments derived from time.Now. crypto/rand is fine — it is
// intentional entropy, not simulation state. Deliberate uses are
// exempted with //lint:rand-exempt <reason>.
var SeededRand = &Analyzer{
	Name:      "seededrand",
	Directive: "rand-exempt",
	Doc:       "no global math/rand or time-derived seeds outside tests and examples",
	Run:       runSeededRand,
}

// randConstructors build explicitly-seeded sources; everything else
// exported by math/rand (Intn, Float64, Perm, Shuffle, Seed, Read, …)
// operates on the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(pass *Pass) {
	if strings.Contains(pass.Path, "/examples/") || strings.HasPrefix(pass.Path, "examples/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pass.pkgFunc(call)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			if !randConstructors[fn] {
				pass.Report(call.Pos(), "rand.%s uses the global math/rand source; draw from an explicitly seeded rand.New(rand.NewSource(seed)) (or //lint:rand-exempt <reason>)", fn)
				return true
			}
			for _, arg := range call.Args {
				if containsTimeCall(pass, arg) {
					pass.Report(call.Pos(), "rand.%s seeded from the clock is nondeterministic; use a fixed or configured seed (or //lint:rand-exempt <reason>)", fn)
					return true
				}
			}
			return true
		})
	}
}

// containsTimeCall reports whether e's tree calls into package time
// (time.Now().UnixNano() being the canonical offender).
func containsTimeCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, _ := pass.pkgFunc(call); pkg == "time" {
				found = true
			}
		}
		return !found
	})
	return found
}
