package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// FPUMediation enforces the repo's fault model: in the numerical packages,
// every stochastic floating-point operation must flow through an fpu.Unit
// (u.Add/Sub/Mul/Div/Sqrt, the batched kernels, or the linalg wrappers).
// A raw `a*b` in a workload computes exactly even when the simulated FPU
// is faulty, silently escaping injection and inflating the measured
// robustness of whatever algorithm contains it — the experiment's validity
// rests on this invariant (Sloan et al., DSN 2010).
//
// Flagged: non-constant float +, -, *, / (binary and compound assignment)
// and calls into package math other than the bit-manipulation allowlist
// below. Not flagged: comparisons and negation (reliable control logic and
// sign-wire flips per the paper's fault model — workloads that want faulty
// compares opt in via u.Less), and constant expressions (folded at compile
// time, never issued to the FPU).
//
// Genuinely fault-free code — problem generation, reference solutions,
// error metrics computed outside the simulated machine — is exempted with
// //lint:fpu-exempt <reason>.
var FPUMediation = &Analyzer{
	Name:      "fpumediation",
	Directive: "fpu-exempt",
	Doc:       "raw float math in numerical packages must route through fpu.Unit",
	Run:       runFPUMediation,
}

// fpuScopes are the package paths whose float math models the simulated
// machine. internal/fpu itself is the mediator and internal/figures &
// internal/harness are experiment plumbing; they are deliberately out of
// scope.
var fpuScopes = []string{
	"robustify/internal/apps/",
	"robustify/internal/solver",
	"robustify/internal/linalg",
	"robustify/internal/core",
	"robustify/internal/robust",
	// Fault models sit on the machine side of the boundary, but their float
	// math is mechanism (probabilities, masks, schedules), not simulated
	// workload math: any arithmetic there must be deliberate and carry a
	// written exemption, or it silently escapes injection accounting.
	"robustify/internal/fpu/faultmodel",
}

// mathAllowlist are math functions that read or rewrite bits without
// touching the FPU's timing-critical datapath (sign masks, classification,
// raw bit access) — the same set fpu.Unit itself models as reliable.
var mathAllowlist = map[string]bool{
	"Abs": true, "Signbit": true, "Copysign": true,
	"IsNaN": true, "IsInf": true, "NaN": true, "Inf": true,
	"Float64bits": true, "Float64frombits": true,
	"Float32bits": true, "Float32frombits": true,
}

func inFPUScope(path string) bool {
	for _, s := range fpuScopes {
		if strings.HasPrefix(path, s) || path == strings.TrimSuffix(s, "/") {
			return true
		}
	}
	return false
}

func runFPUMediation(pass *Pass) {
	if !inFPUScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		// reportedUntil collapses nested arithmetic: `a*b + c*d` is one
		// finding at the outermost expression, not three.
		var reportedUntil token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if !isArithOp(v.Op) || pass.isConst(v) || !pass.isFloat(v.X) {
					return true
				}
				if v.Pos() < reportedUntil {
					return true
				}
				reportedUntil = v.End()
				pass.Report(v.OpPos, "raw float %s bypasses fpu.Unit mediation (use the unit's ops/kernels, or //lint:fpu-exempt <reason>)", v.Op)
			case *ast.AssignStmt:
				if isArithAssign(v.Tok) && len(v.Lhs) == 1 && pass.isFloat(v.Lhs[0]) && v.Pos() >= reportedUntil {
					reportedUntil = v.End()
					pass.Report(v.TokPos, "raw float %s bypasses fpu.Unit mediation (use the unit's ops/kernels, or //lint:fpu-exempt <reason>)", v.Tok)
				}
			case *ast.CallExpr:
				if pkg, fn := pass.pkgFunc(v); pkg == "math" && !mathAllowlist[fn] && v.Pos() >= reportedUntil {
					pass.Report(v.Pos(), "math.%s bypasses fpu.Unit mediation (use the unit's ops, or //lint:fpu-exempt <reason>)", fn)
				}
			}
			return true
		})
	}
}

func isArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

func isArithAssign(op token.Token) bool {
	switch op {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}
