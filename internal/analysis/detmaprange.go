package analysis

import (
	"go/ast"
	"go/types"
)

// DetMapRange hunts the classic byte-identity killer: iterating a Go map
// in its randomized order while doing something order-dependent with each
// entry. The repo's durability story (resumable campaigns, distributed
// shards, tune traces) rests on artifacts being byte-identical across
// runs, and a single `for k := range knobs { fmt.Fprintf(w, ...) }`
// silently breaks it on a schedule of its own choosing.
//
// Flagged inside `for ... := range m` over a map:
//   - appends to a slice declared outside the loop, unless that slice is
//     later passed to a sort call in the same function (the canonical
//     collect-keys-then-sort idiom);
//   - string concatenation into a variable declared outside the loop;
//   - float accumulation (+=, -=, *=, /=) into a variable declared
//     outside the loop — float addition is not associative, so map order
//     changes the low bits even when the set of addends is identical;
//   - writes to writers/encoders: fmt.Fprint*/Print*, and methods named
//     Write*, Encode, or Append.
//
// Order-independent bodies (map→map transforms, counting, max/min with
// exact compares) pass untouched. Genuinely order-free sinks are exempted
// with //lint:detmap-exempt <reason>.
var DetMapRange = &Analyzer{
	Name:      "detmaprange",
	Directive: "detmap-exempt",
	Doc:       "map iteration must not feed order-dependent sinks without a sort",
	Run:       runDetMapRange,
}

// orderDependentMethods are method names whose call order is observable in
// the receiver's output.
var orderDependentMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Append": true, "Put": true,
}

// sortFuncs recognize the collect-then-sort idiom that launders map order
// back into determinism.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func runDetMapRange(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			runDetMapRangeFunc(pass, fn)
		}
	}
}

func runDetMapRangeFunc(pass *Pass, fn *ast.FuncDecl) {
	sorted := sortedObjects(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.typeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sorted)
		return true
	})
}

// sortedObjects collects every object passed to a recognized sort call
// anywhere in fn — an append inside a map range is fine when the slice is
// sorted before use, wherever in the function that sort happens.
func sortedObjects(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, name := pass.pkgFunc(call)
		if pkg == "" || !sortFuncs[lastPathElem(pkg)+"."+name] {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := pass.objectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	// declaredOutside reports whether id's definition precedes the range
	// statement — per-iteration locals are order-irrelevant.
	declaredOutside := func(id *ast.Ident) (types.Object, bool) {
		obj := pass.objectOf(id)
		if obj == nil {
			// No object: a package-level or captured target; treat as
			// outside.
			return nil, true
		}
		return obj, obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, v, sorted, declaredOutside)
		case *ast.CallExpr:
			if pkg, name := pass.pkgFunc(v); pkg == "fmt" &&
				(name == "Fprint" || name == "Fprintf" || name == "Fprintln" ||
					name == "Print" || name == "Printf" || name == "Println") {
				pass.Report(v.Pos(), "fmt.%s inside map iteration emits entries in nondeterministic order (sort keys first, or //lint:detmap-exempt <reason>)", name)
				return true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && orderDependentMethods[sel.Sel.Name] {
				if pass.Info.Selections[sel] != nil { // a real method call, not pkg.Func
					pass.Report(v.Pos(), "%s call inside map iteration is order-dependent (sort keys first, or //lint:detmap-exempt <reason>)", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, sorted map[types.Object]bool, declaredOutside func(*ast.Ident) (types.Object, bool)) {
	if len(as.Lhs) != 1 {
		return
	}
	id := rootIdent(as.Lhs[0])
	if id == nil {
		return
	}
	obj, outside := declaredOutside(id)
	if !outside {
		return
	}

	// s = append(s, ...) on an outer slice, without a later sort.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
				if obj == nil || !sorted[obj] {
					pass.Report(as.Pos(), "append to %s inside map iteration records entries in nondeterministic order (sort %s afterwards, or //lint:detmap-exempt <reason>)", id.Name, id.Name)
				}
				return
			}
		}
	}

	// Compound accumulation into an outer string or float.
	if isArithAssign(as.Tok) {
		t := pass.typeOf(as.Lhs[0])
		if t == nil {
			return
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case b.Info()&types.IsString != 0:
			pass.Report(as.Pos(), "string concatenation into %s inside map iteration builds a nondeterministic value (sort keys first, or //lint:detmap-exempt <reason>)", id.Name)
		case b.Info()&types.IsFloat != 0:
			pass.Report(as.Pos(), "float accumulation into %s inside map iteration is order-sensitive (non-associative addition; sort keys first, or //lint:detmap-exempt <reason>)", id.Name)
		}
	}
}
