package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene flags goroutines launched without any visible
// lifecycle bound — the class behind worker and dispatcher leaks: a
// `go` statement whose function (transitively, through the call-graph
// facts) never consumes a cancellation or rendezvous signal and is not
// pinned by a WaitGroup. Such a goroutine can only exit by running to
// completion on its own, which in a long-lived daemon usually means it
// never exits — or worse, keeps writing into a subsystem that has shut
// down.
//
// A launch is considered bounded when the spawned function's transitive
// closure contains any of:
//
//   - a channel receive, a select, or a range over a channel (it parks
//     on a signal somebody controls);
//   - ctx.Done() / ctx.Err() usage (context plumbing reaches it);
//   - (*sync.WaitGroup).Done or Wait (a spawner is accounting for it);
//
// or when the go statement passes a context.Context argument to a
// function the facts layer cannot see into (the benefit of the doubt
// goes to unanalyzable callees that at least accept a context).
//
// Deliberately unbounded goroutines — one-shot servers whose exit is the
// process's exit, bounded-by-construction helpers — carry
// //lint:goroutinehygiene-exempt <reason>.
var GoroutineHygiene = &Analyzer{
	Name:      "goroutinehygiene",
	Directive: "goroutinehygiene-exempt",
	Doc:       "every goroutine needs a cancellation path or a bounding WaitGroup",
	Run:       runGoroutineHygiene,
}

func runGoroutineHygiene(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	var start callSite
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		fn := pass.Facts.FactsOf(fun)
		if fn == nil {
			return
		}
		start = callSite{callee: fn.ID}
	default:
		callee, iface := (&factsBuilder{pkg: pass.pkg}).calleeOf(g.Call)
		if callee == nil {
			pass.Report(g.Pos(), "goroutine launches a function value the analyzer cannot see into; give it a visible cancellation path or //lint:goroutinehygiene-exempt <reason>")
			return
		}
		sig, _ := callee.Type().(*types.Signature)
		start = callSite{callee: funcIDOf(callee), iface: iface, name: callee.Name()}
		if iface && sig != nil {
			start.sig = sigString(sig)
		}
		if pass.Facts.Fn(start.callee) == nil && !iface {
			// No facts (stdlib or unloaded package): a context argument is
			// the only visible sign of a cancellation path.
			if callPassesContext(pass, g.Call) {
				return
			}
			pass.Report(g.Pos(), "goroutine runs %s, which the analyzer cannot see into and which takes no context; bound it or //lint:goroutinehygiene-exempt <reason>", callee.Name())
			return
		}
	}
	hit := pass.Facts.Reach(start, func(fn *FuncFacts) bool {
		if fn.CancelWait || fn.WGDone {
			return true
		}
		// A context handed to an unanalyzable callee counts as a path.
		for _, c := range fn.Calls {
			if !c.async && !c.iface && pass.Facts.Fn(c.callee) == nil && c.ctxArg {
				return true
			}
		}
		return false
	})
	if hit == nil {
		pass.Report(g.Pos(), "goroutine has no cancellation path (no ctx/done signal or bounding WaitGroup in reach); bound its lifetime or //lint:goroutinehygiene-exempt <reason>")
	}
}

// callPassesContext reports whether any argument of the call has type
// context.Context.
func callPassesContext(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(pass.pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
