// Package seededrand exercises the seededrand analyzer: global math/rand
// draws and clock-derived seeds are flagged, explicitly seeded sources
// pass, and written exemptions suppress.
package seededrand

import (
	"math/rand"
	"time"
)

// Global draws from the shared auto-seeded source.
func Global() int {
	return rand.Intn(10) // want "rand.Intn uses the global math/rand source"
}

// ClockSeeded derives its seed from the wall clock; both the constructor
// and the source it wraps are reported.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the clock" "rand.NewSource seeded from the clock"
}

// Seeded draws from an explicitly seeded source and must pass.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// Jitter deliberately wants ambient randomness, with a written reason.
func Jitter() int {
	//lint:rand-exempt fixture: backoff jitter is deliberately nondeterministic and never recorded
	return rand.Intn(100)
}
