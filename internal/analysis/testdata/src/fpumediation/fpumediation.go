// Package fpumediation exercises the fpumediation analyzer: raw float
// arithmetic and math calls are flagged in numerical packages, constants
// and allowlisted bit-level predicates pass, and written exemptions
// suppress. The fixture runner loads it under a numerical import path.
package fpumediation

import "math"

// Step mixes raw float arithmetic into what should be mediated math.
func Step(a, b float64) float64 {
	c := a * b          // want "raw float *"
	c += a              // want "raw float +="
	return math.Sqrt(c) // want "math.Sqrt bypasses"
}

// Classify uses only constant folding, integer math, comparisons, and
// allowlisted bit-level predicates: nothing here touches the simulated
// FPU, so nothing is flagged.
func Classify(a float64, n int) bool {
	const half = 1.0 / 2.0
	m := n*2 + 1
	return math.IsNaN(a) || math.Abs(a) > half || m > 0
}

// RelGap is an error metric computed outside the simulated machine; the
// declaration-scoped exemption covers the whole body.
//
//lint:fpu-exempt fixture: error metrics are measured reliably, outside the simulated machine
func RelGap(a, b float64) float64 {
	return (a - b) / b
}

// Mixed shows statement-scoped exemption: the step-size line is exempted,
// the update right below it is still flagged.
func Mixed(a, b float64) float64 {
	//lint:fpu-exempt fixture: the step-size constant is reliable control, not data-path math
	step := a / 16
	return step * b // want "raw float *"
}
