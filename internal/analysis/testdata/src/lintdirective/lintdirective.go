// Package lintdirective exercises the directive hygiene check: misspelled
// directives exempt nothing and are reported, and a directive with no
// written reason is itself a diagnostic.
package lintdirective

// Typo carries a misspelled directive: it exempts nothing, so both the
// typo and the arithmetic it meant to cover are reported.
func Typo(a, b float64) float64 {
	//lint:fpu-exmept the misspelling means this exempts nothing
	return a * b
}

// NoReason carries a directive with no written reason: the missing reason
// is a non-exemptible diagnostic, so the suite still fails.
func NoReason(a, b float64) float64 {
	//lint:fpu-exempt
	return a / b
}
