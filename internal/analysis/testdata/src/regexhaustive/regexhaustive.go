// Package regexhaustive is the registry-exhaustiveness fixture. Phase is
// an auto-registered named-type family; the job states are an untyped
// string group registered by //lint:enum markers across two const
// blocks (the merge the tune package needs). Any switch, map literal, or
// slice literal that mentions a member must mention them all — a default
// arm does not excuse, because the default is where an unplumbed new
// member hides.
package regexhaustive

// Phase is a named-type constant family: registered automatically.
type Phase string

const (
	PhaseInit Phase = "init"
	PhaseRun  Phase = "run"
	PhaseDone Phase = "done"
)

// Describe has a default arm and still misses PhaseDone: the next phase
// added would silently take the "unknown" path.
func Describe(p Phase) string {
	switch p { // want "misses regexhaustive.PhaseDone"
	case PhaseInit:
		return "starting"
	case PhaseRun:
		return "working"
	default:
		return "unknown"
	}
}

// Complete covers the family: clean.
func Complete(p Phase) string {
	switch p {
	case PhaseInit:
		return "starting"
	case PhaseRun:
		return "working"
	case PhaseDone:
		return "finished"
	}
	return "unknown"
}

// ordered misses PhaseRun.
var ordered = []Phase{PhaseInit, PhaseDone} // want "misses regexhaustive.PhaseRun"

// labels covers every member: clean.
var labels = map[Phase]string{
	PhaseInit: "I",
	PhaseRun:  "R",
	PhaseDone: "D",
}

// The job states are untyped strings — invisible to the automatic
// named-type registration — so the blocks declare their domain.
//
//lint:enum job-state lifecycle states of a fixture job
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// StateCancelled arrived later, in spirit in another file: the shared
// group word merges it into the same domain.
//
//lint:enum job-state cancellation joined the lifecycle after the fact
const StateCancelled = "cancelled"

// Active misses the late-added member.
func Active(state string) bool {
	switch state { // want "misses regexhaustive.StateCancelled"
	case StateQueued, StateRunning:
		return true
	case StateDone:
		return false
	}
	return false
}

// Terminal is deliberately partial and says why.
func Terminal(state string) bool {
	//lint:regexhaustive-exempt predicate deliberately names only the terminal states; additions default to non-terminal on purpose
	switch state {
	case StateDone, StateCancelled:
		return true
	}
	return false
}

// counts covers the whole merged group: clean.
var counts = map[string]int{
	StateQueued:    0,
	StateRunning:   0,
	StateDone:      0,
	StateCancelled: 0,
}

// Unrelated constants never register: no group, no finding.
const other = "other"

func Unrelated(s string) bool {
	switch s {
	case other:
		return true
	}
	return false
}
