// Package errdurability is the error-durability fixture. Append carries
// the //lint:durable marker, making it a sink root; save propagates its
// error and becomes a carrier by the fixpoint. Discarding either — bare
// statement, `_ =`, defer — is a finding; so is dropping Close/Sync on
// an *os.File the function wrote, where the write error may only
// surface. Checked errors, read-only files, and written exemptions stay
// quiet.
package errdurability

import "os"

// Store is the fixture's durable record log.
type Store struct {
	recs []string
}

// Append records one trial result.
//
//lint:durable the record is the resume identity; a failed append means a lost trial
func (s *Store) Append(rec string) error {
	s.recs = append(s.recs, rec)
	return nil
}

// save is a carrier: its error originates from the sink.
func save(s *Store, rec string) error {
	return s.Append(rec)
}

func DiscardDirect(s *Store, recs []string) {
	for _, r := range recs {
		s.Append(r) // want "the error of"
	}
}

func DiscardBlank(s *Store, r string) {
	_ = save(s, r) // want "the error of"
}

func DiscardDefer(s *Store, r string) {
	defer s.Append(r) // want "defers and discards"
}

// Handled propagates: clean.
func Handled(s *Store, r string) error {
	return save(s, r)
}

// Checked inspects: clean.
func Checked(s *Store, r string) bool {
	return s.Append(r) == nil
}

// BestEffort is a sanctioned discard on an already-failing path.
func BestEffort(s *Store, r string, failed bool) {
	if failed {
		//lint:errdurability-exempt best-effort trailer on an already-failing path; the primary error is returned upstream
		s.Append(r)
	}
}

func WriteThenLeakClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "defers and discards f.Close"
	_, err = f.Write(data)
	return err
}

func WriteThenDropSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close() // want "discards f.Close"
		return err
	}
	f.Sync() // want "discards f.Sync"
	return f.Close()
}

// WriteChecked captures the Close error: clean.
func WriteChecked(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// ReadOnlyClose never wrote: its deferred Close is harmless.
func ReadOnlyClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	return buf[:n], err
}
