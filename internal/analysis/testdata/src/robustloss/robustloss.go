// Package robustloss exercises the fpumediation scope extension to
// internal/robust: a loss implementation that computes ρ or ψ with raw
// float arithmetic escapes fault injection — its influence function would
// stay exact while the rest of the datapath is corrupted, silently
// inflating every robustness measurement built on it. The fixture runner
// loads this package under the internal/robust import path.
package robustloss

// unit stands in for fpu.Unit; the fixture only needs the call shape.
type unit struct{}

func (u *unit) Mul(a, b float64) float64 { return a * b } // want "raw float *"
func (u *unit) Div(a, b float64) float64 { return a / b } // want "raw float /"

// RhoMediated is the correct pattern: every op through the unit.
func RhoMediated(u *unit, r float64) float64 {
	return u.Mul(r, r)
}

// RhoRaw is the bug the scope extension exists to catch: a loss evaluated
// with native arithmetic, invisible to the injector.
func RhoRaw(r float64) float64 {
	return r * r // want "raw float *"
}

// WeightRaw compounds it inside an otherwise mediated loss.
func WeightRaw(u *unit, sigma, r float64) float64 {
	den := u.Mul(sigma, sigma)
	den += r * r // want "raw float +="
	return u.Div(u.Mul(sigma, sigma), den)
}

// DefaultShape is reliable registry metadata, not datapath math: constant
// expressions and plain returns are not flagged.
func DefaultShape(kind string) float64 {
	const fallback = 1.0
	if kind == "smooth-l1" {
		return 0.1
	}
	return fallback
}
