// Package obstelemetry exercises the notimeinartifacts analyzer over the
// observability layer's enforcement split. The fixture runner loads it
// under robustify/internal/obs: wall-clock values are the layer's stock
// in trade, but they may only flow into the telemetry sidecar through an
// explicitly exempted append — any other path from a clock to a
// serialization sink is a leak into what could become a resume-identity
// artifact.
package obstelemetry

import (
	"encoding/json"
	"os"
	"time"
)

// envelope mirrors the telemetry sidecar's wire form: a timestamped
// wrapper around an opaque diagnostic record.
type envelope struct {
	TS   string          `json:"ts"`
	Kind string          `json:"kind"`
	Rec  json.RawMessage `json:"rec"`
}

// counters is a purely deterministic record: safe in any artifact.
type counters struct {
	Faults uint64 `json:"faults"`
	Trials uint64 `json:"trials"`
}

// AppendTelemetry is the sanctioned shape: the sidecar is diagnostics
// beside the artifact stream, outside resume identity, and says so.
//
//lint:artifact-time-exempt fixture: telemetry sidecar is diagnostics outside resume identity
func AppendTelemetry(f *os.File, kind string, rec json.RawMessage) error {
	env := envelope{TS: time.Now().UTC().Format(time.RFC3339Nano), Kind: kind, Rec: rec}
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	return err
}

// CleanCounters marshals deterministic counters only; measuring a
// duration beside the record does not taint it.
func CleanCounters(start time.Time, c counters) ([]byte, float64, error) {
	elapsed := time.Since(start).Seconds()
	b, err := json.Marshal(c)
	return b, elapsed, err
}

// LeakedTimestamp lets a wall-clock reading reach a marshaled record
// without the exemption: the true-positive case the scoping exists to
// catch — a "diagnostic" that would silently become part of an artifact.
func LeakedTimestamp(c counters) ([]byte, error) {
	stamped := struct {
		counters
		At string `json:"at"`
	}{counters: c, At: time.Now().UTC().Format(time.RFC3339)}
	return json.Marshal(stamped) // want "wall-clock value reaches json.Marshal"
}
