// Package notimeinartifacts exercises the notimeinartifacts analyzer:
// wall-clock values flowing into JSON serialization are flagged, purely
// deterministic records pass, and lifecycle artifacts explicitly outside
// resume identity are exempted. The fixture runner loads it under
// robustify/internal/campaign.
package notimeinartifacts

import (
	"encoding/json"
	"time"
)

type record struct {
	Elapsed float64 `json:"elapsed"`
	Value   int     `json:"value"`
}

// Tainted lets a wall-clock reading reach a serialized record: the
// duration taints r, and r reaches json.Marshal.
func Tainted(start time.Time) ([]byte, error) {
	r := record{Elapsed: time.Since(start).Seconds(), Value: 1}
	return json.Marshal(r) // want "wall-clock value reaches json.Marshal"
}

// Clean measures a duration but keeps it out of the serialized record;
// only deterministic data reaches the sink.
func Clean(start time.Time, v int) ([]byte, float64, error) {
	elapsed := time.Since(start).Seconds()
	r := record{Value: v}
	b, err := json.Marshal(r)
	return b, elapsed, err
}

// Meta serializes a lifecycle record that is deliberately outside resume
// identity; the declaration-scoped exemption covers it.
//
//lint:artifact-time-exempt fixture: lifecycle record outside resume identity, like meta.json
func Meta() ([]byte, error) {
	m := map[string]string{"finished": time.Now().UTC().Format(time.RFC3339)}
	return json.Marshal(m)
}
