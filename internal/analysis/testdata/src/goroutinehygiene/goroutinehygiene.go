// Package goroutinehygiene is the goroutine-hygiene fixture: every `go`
// statement needs a visible way to stop — a ctx/done signal somewhere in
// the spawned function's reach, a bounding WaitGroup, or a written
// exemption. The positives are the leak shapes the audit found in the
// daemon mains; the negatives are the repo's sanctioned patterns.
package goroutinehygiene

import (
	"context"
	"fmt"
	"sync"
)

// spin is a leak: nothing in its reach can stop it.
func spin(n *int) {
	for {
		*n++
	}
}

func LeakNamed() {
	n := 0
	go spin(&n) // want "no cancellation path"
}

// LeakSend is the daemon shape: a literal that parks forever on a send
// nobody may receive.
func LeakSend(out chan int) {
	go func() { // want "no cancellation path"
		out <- compute()
	}()
}

func compute() int { return 42 }

// LeakOpaque launches something the analyzer cannot see into, with no
// context to suggest a cancellation path.
func LeakOpaque() {
	go fmt.Println("tick") // want "takes no context"
}

// LeakValue launches a function value — invisible by construction.
func LeakValue(fns []func()) {
	go fns[0]() // want "function value"
}

// OKSelectDone stops on the done channel: hygienic.
func OKSelectDone(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// worker honors ctx cancellation two frames down from the go statement.
func worker(ctx context.Context, work chan int) {
	loop(ctx, work)
}

func loop(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case w := <-work:
			_ = w
		}
	}
}

// OKContext reaches a ctx.Done through the named-function chain.
func OKContext(ctx context.Context, work chan int) {
	go worker(ctx, work)
}

// OKWaitGroup is bounded by the waiting spawner.
func OKWaitGroup(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// OKExempt is the process-lifetime pattern: the goroutine is meant to
// die with the process, and says so.
func OKExempt(n *int) {
	//lint:goroutinehygiene-exempt deliberately runs for the life of the process; the kernel reaps it at exit
	go spin(n)
}
