// Package detmaprange exercises the detmaprange analyzer: order-dependent
// sinks inside map iteration are flagged, the collect-then-sort idiom and
// order-independent aggregation pass, and written exemptions suppress.
package detmaprange

import (
	"fmt"
	"sort"
)

// Keys records map keys without sorting: the map's randomized order leaks
// into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out"
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom and must pass.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total accumulates floats in map order: addition is not associative, so
// the low bits depend on iteration order.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation into sum"
	}
	return sum
}

// SumInts is exact, associative aggregation and must pass.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Dump prints entries in map order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

// Shutdown fans out over a map with a written exemption: the order the
// functions run in is not observable in any artifact.
func Shutdown(m map[string]func()) {
	var fns []func()
	for _, f := range m {
		//lint:detmap-exempt fixture: cancellation fan-out order is not observable in any artifact
		fns = append(fns, f)
	}
	for _, f := range fns {
		f()
	}
}
