// Package locksafety is the lock-safety fixture. The first half
// reproduces the PR-9 deadlock shape byte-for-byte in miniature:
// a manager whose state-mutating method holds m.mu and emits an
// observability event, where the emit path reacquires m.mu — directly,
// and through an interface sink. The second half is the shape of the
// fix (a separate event mutex) plus the other negatives the analyzer
// must stay quiet on.
package locksafety

import "sync"

// Sink is the observability fan-out interface (the fixture's EventSink).
type Sink interface {
	Emit(kind string)
}

// Manager mirrors tune.Manager before the PR-9 fix: one mutex guards
// both the state machine and the event path.
type Manager struct {
	mu     sync.Mutex
	events Sink
	state  string
	ch     chan string
}

// Resume is the deadlock: state change under m.mu, then an emit whose
// callee re-locks m.mu one frame down.
func (m *Manager) Resume() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = "running"
	m.emit("resumed") // want "deadlocks"
}

func (m *Manager) emit(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = kind
}

// Fail deadlocks through dynamic dispatch: the loaded Sink
// implementation calls back into a method that re-locks Manager.mu.
func (m *Manager) Fail() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events.Emit("failed") // want "deadlocks"
}

// ChattySink is the loaded Sink implementation the interface expansion
// must find: Emit → Note → Manager.mu.
type ChattySink struct {
	m *Manager
}

func (s *ChattySink) Emit(kind string) {
	s.m.Note(kind)
}

func (m *Manager) Note(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = kind
}

// Publish sends on an unbuffered channel with the lock held: every
// other user of m.mu now waits for a receiver that may never come.
func (m *Manager) Publish(v string) {
	m.mu.Lock()
	m.ch <- v // want "channel send while holding"
	m.mu.Unlock()
}

// Broadcast blocks transitively: the send hides one frame down.
func (m *Manager) Broadcast() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.push("x") // want "can block on a channel send"
}

func (m *Manager) push(v string) {
	m.ch <- v
}

// Fixed is the PR-9 fix shape: events get their own mutex, so emitting
// under evmu while the caller holds... nothing. No finding.
type Fixed struct {
	mu     sync.Mutex
	evmu   sync.Mutex
	events Sink
	state  string
}

func (f *Fixed) Resume() {
	f.mu.Lock()
	f.state = "running"
	f.mu.Unlock()
	f.emit("resumed") // lock released first: clean
}

func (f *Fixed) emit(kind string) {
	f.evmu.Lock()
	defer f.evmu.Unlock()
	f.state = kind
}

// TryNotify sends under the lock, but inside a select with a default:
// it cannot park, so it stays clean.
func (m *Manager) TryNotify(v string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case m.ch <- v:
	default:
	}
}

// Drain deliberately hands off under the lock: the channel is buffered
// by construction and drained by a dedicated goroutine, so the written
// exemption keeps the run green.
func (m *Manager) Drain(v string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:locksafety-exempt the channel is sized to the worker count at construction and always drained
	m.ch <- v
}
