// Package atomicwrite exercises the atomicwrite analyzer: direct
// os.WriteFile/os.Create of *.json artifacts are flagged, non-JSON writes
// pass, and written exemptions suppress. The fixture runner loads it
// under robustify/internal/campaign.
package atomicwrite

import (
	"os"
	"path/filepath"
)

const specFile = "spec.json"

// SaveDirect writes a JSON artifact non-atomically: a crash mid-write
// tears it.
func SaveDirect(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, specFile), data, 0o644) // want "os.WriteFile of a .json artifact"
}

// CreateDirect opens a JSON artifact with a raw file handle.
func CreateDirect(dir string) (*os.File, error) {
	return os.Create(filepath.Join(dir, "meta.json")) // want "os.Create of a .json artifact"
}

// SaveLog writes a non-JSON artifact; out of the analyzer's scope.
func SaveLog(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "run.log"), data, 0o644)
}

// Dump is a one-shot debug artifact that genuinely needs no atomicity.
func Dump(path string, data []byte) error {
	//lint:atomicwrite-exempt fixture: one-shot debug dump, no reader depends on it surviving a crash
	return os.WriteFile(path+".debug.json", data, 0o644)
}
