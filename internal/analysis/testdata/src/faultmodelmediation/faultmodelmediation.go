// Package faultmodelmediation exercises the fpumediation analyzer over the
// fault-model scope: a model implementation whose corruption math runs as
// raw float arithmetic is a true positive — unmediated, unexempted float
// math inside a fault model escapes the injection accounting — while
// bit-level corruption and exempted mechanism arithmetic pass.
package faultmodelmediation

import "math"

// sneakyModel drifts values instead of flipping bits: the raw float
// operations below must be flagged.
type sneakyModel struct {
	rate float64
	left int
}

// Corrupt perturbs the value with unexempted float math.
func (m *sneakyModel) Corrupt(v float64) float64 {
	noise := m.rate * 0.5  // want "raw float *"
	s := math.Sqrt(noise)  // want "math.Sqrt bypasses"
	return v + noise*(s+v) // want "raw float +"
}

// CorruptBits flips a bit reliably: bit-level access is allowlisted, and
// integer masks are not float math.
func (m *sneakyModel) CorruptBits(v float64) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ (1 << 52))
}

// Fire draws from the schedule with exempted mechanism arithmetic: the
// written reason keeps deliberate model math auditable but quiet.
func (m *sneakyModel) Fire() bool {
	m.left--
	if m.left > 0 {
		return false
	}
	//lint:fpu-exempt fixture: inter-arrival scheduling is fault-model mechanism, not simulated-machine math
	m.left = int(1/m.rate + 0.5)
	return true
}
