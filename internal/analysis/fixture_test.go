package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// The fixture runner is a small analysistest: each package under
// testdata/src/<name> is loaded through the same Load path as real
// packages, run through RunPackage with an impersonated import path
// (pathAs) so scoped analyzers fire, and its diagnostics are compared
// against `// want "substr"` comments — every diagnostic must match a
// want on its line, and every want must be hit by a diagnostic.

// loadFixture loads the one package under testdata/src/<name>.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load("testdata/src/"+name, ".")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

var wantRE = regexp.MustCompile(`"([^"]*)"`)

// wantKey addresses one fixture source line.
type wantKey struct {
	file string
	line int
}

// fixtureWants extracts the `// want "substr"` assertions per line.
func fixtureWants(pkg *Package) map[wantKey][]string {
	out := make(map[wantKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					out[k] = append(out[k], m[1])
				}
			}
		}
	}
	return out
}

// runFixture applies analyzers to the fixture under pathAs and checks the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, fixture, pathAs string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	wants := fixtureWants(pkg)
	diags := RunPackage(pkg, pathAs, analyzers)

	matched := make(map[wantKey][]bool)
	for k, subs := range wants {
		matched[k] = make([]bool, len(subs))
	}
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		hit := false
		for i, s := range wants[k] {
			if strings.Contains(d.Message, s) {
				matched[k][i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, subs := range wants {
		for i, s := range subs {
			if !matched[k][i] {
				t.Errorf("%s:%d: want %q: no diagnostic matched", k.file, k.line, s)
			}
		}
	}
}

func TestFPUMediationFixture(t *testing.T) {
	runFixture(t, "fpumediation", "robustify/internal/solver", []*Analyzer{FPUMediation})
}

func TestFPUMediationRobustLossFixture(t *testing.T) {
	// internal/robust is in the analyzer's scope: a loss whose ρ/ψ/weight
	// math bypasses the unit must be flagged (it would silently escape
	// fault injection).
	runFixture(t, "robustloss", "robustify/internal/robust", []*Analyzer{FPUMediation})
}

func TestFPUMediationOutOfScope(t *testing.T) {
	// The same fixture under a non-numerical path produces nothing: the
	// analyzer audits only the packages that model the simulated machine.
	pkg := loadFixture(t, "fpumediation")
	for _, d := range RunPackage(pkg, "robustify/internal/figures", []*Analyzer{FPUMediation}) {
		t.Errorf("out-of-scope diagnostic: %s", d)
	}
}

func TestDetMapRangeFixture(t *testing.T) {
	runFixture(t, "detmaprange", "", []*Analyzer{DetMapRange})
}

func TestNoTimeInArtifactsFixture(t *testing.T) {
	runFixture(t, "notimeinartifacts", "robustify/internal/campaign", []*Analyzer{NoTimeInArtifacts})
}

func TestNoTimeInArtifactsObsFixture(t *testing.T) {
	// The observability layer is inside the analyzer's scope even though
	// wall-clock handling is its job: the exempted telemetry append
	// passes, the unexempted timestamp leak is flagged.
	runFixture(t, "obstelemetry", "robustify/internal/obs", []*Analyzer{NoTimeInArtifacts})
}

func TestNoTimeInArtifactsObsOutOfScope(t *testing.T) {
	// The same fixture outside the serialization scopes produces nothing.
	pkg := loadFixture(t, "obstelemetry")
	for _, d := range RunPackage(pkg, "robustify/internal/figures", []*Analyzer{NoTimeInArtifacts}) {
		t.Errorf("out-of-scope diagnostic: %s", d)
	}
}

func TestAtomicWriteFixture(t *testing.T) {
	runFixture(t, "atomicwrite", "robustify/internal/campaign", []*Analyzer{AtomicWrite})
}

func TestSeededRandFixture(t *testing.T) {
	runFixture(t, "seededrand", "", []*Analyzer{SeededRand})
}

func TestSeededRandSkipsExamples(t *testing.T) {
	// Example mains keep fixed seeds by convention (pinned by their own
	// determinism tests); the analyzer leaves them alone entirely.
	pkg := loadFixture(t, "seededrand")
	for _, d := range RunPackage(pkg, "robustify/examples/demo", []*Analyzer{SeededRand}) {
		t.Errorf("examples-path diagnostic: %s", d)
	}
}

// TestDirectiveHygiene pins the hygiene rules with explicit expectations
// (the reported positions are comment lines, where an inline want comment
// cannot sit).
func TestDirectiveHygiene(t *testing.T) {
	pkg := loadFixture(t, "lintdirective")
	diags := RunPackage(pkg, "robustify/internal/solver", []*Analyzer{FPUMediation})

	expect := []struct {
		analyzer, substr string
	}{
		{DirectiveHygieneName, "unknown //lint: directive fpu-exmept"},
		{DirectiveHygieneName, "needs a written reason"},
		// The misspelled directive exempts nothing: Typo's math is flagged.
		{"fpumediation", "raw float *"},
	}
	for _, e := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == e.analyzer && strings.Contains(d.Message, e.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic containing %q in %v", e.analyzer, e.substr, diags)
		}
	}
	// NoReason's division is suppressed (the directive still scopes), but
	// the missing reason above keeps the run red — exactly one
	// fpumediation diagnostic total.
	nFPU := 0
	for _, d := range diags {
		if d.Analyzer == "fpumediation" {
			nFPU++
		}
	}
	if nFPU != 1 {
		t.Errorf("got %d fpumediation diagnostics, want 1: %v", nFPU, diags)
	}
}

func TestLockSafetyFixture(t *testing.T) {
	// The fixture reproduces the PR-9 deadlock in miniature: an emit
	// under m.mu whose callee — static and through an interface sink —
	// reacquires m.mu, plus channel sends parked inside the critical
	// section. The separate-event-mutex fix shape stays clean.
	runFixture(t, "locksafety", "", []*Analyzer{LockSafety})
}

func TestGoroutineHygieneFixture(t *testing.T) {
	runFixture(t, "goroutinehygiene", "", []*Analyzer{GoroutineHygiene})
}

func TestErrDurabilityFixture(t *testing.T) {
	runFixture(t, "errdurability", "", []*Analyzer{ErrDurability})
}

func TestRegExhaustiveFixture(t *testing.T) {
	runFixture(t, "regexhaustive", "", []*Analyzer{RegExhaustive})
}

func TestFPUMediationFaultModelFixture(t *testing.T) {
	// internal/fpu/faultmodel is in scope: a model whose corruption math is
	// raw float arithmetic must be flagged; bit-level flips and exempted
	// mechanism arithmetic pass.
	runFixture(t, "faultmodelmediation", "robustify/internal/fpu/faultmodel",
		[]*Analyzer{FPUMediation})
}

func TestFPUMediationFPUItselfOutOfScope(t *testing.T) {
	// The mediator package stays out of scope: only the faultmodel
	// subpackage joined the audit.
	pkg := loadFixture(t, "faultmodelmediation")
	for _, d := range RunPackage(pkg, "robustify/internal/fpu", []*Analyzer{FPUMediation}) {
		t.Errorf("out-of-scope diagnostic: %s", d)
	}
}
