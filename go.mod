module robustify

go 1.24
