package robustify_test

// Committed performance trajectory: TestPerfBaseline measures a small set
// of representative workloads, normalizes them against a fixed pure-Go
// calibration loop (so the numbers compare across machines of different
// speeds), and either writes a baseline file or gates against one:
//
//	BENCH_BASELINE_WRITE=BENCH_2026-08-07.json go test -run TestPerfBaseline -count=1 .
//	BENCH_BASELINE_CHECK=BENCH_2026-08-07.json go test -run TestPerfBaseline -count=1 .
//
// With neither variable set the test skips, so ordinary `go test ./...`
// runs never depend on machine speed. CI runs the CHECK form against the
// newest committed BENCH_*.json and fails on a >20% normalized regression
// in any entry — catching, e.g., an accidental per-op allocation in the
// FPU hot path before it lands.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"testing"

	"robustify/internal/figures"
	"robustify/internal/fpu"
)

// regressionLimit is the gate: a workload may be at most this factor
// slower (normalized) than the committed baseline.
const regressionLimit = 1.20

// baselineFile is the committed perf-trajectory format.
type baselineFile struct {
	// CalibrationNs records the calibration loop's absolute time on the
	// writing machine — context for humans reading the file, not used by
	// the gate (only normalized ratios are compared).
	CalibrationNs int64 `json:"calibration_ns"`
	// Entries maps workload name to its runtime as a multiple of the
	// calibration loop's runtime on the same machine.
	Entries map[string]float64 `json:"entries"`
}

// calibrate times the fixed reference loop: integer-and-float scalar work
// with no allocation, no bounds-check eliminations to speculate about,
// and nothing the compiler can fold away. Its runtime tracks single-core
// scalar throughput, the same resource every measured workload below is
// bound by.
func calibrate() time.Duration {
	const iters = 1 << 24
	start := time.Now()
	x, s := uint64(0x9e3779b97f4a7c15), 0.0
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s += float64(x&0xffff) * 1.0000001
	}
	sinkU, sinkF = x, s
	return time.Since(start)
}

// Package-level sinks defeat dead-code elimination of the measured loops.
var (
	sinkU uint64
	sinkF float64
)

// measure runs fn reps times and returns the fastest run — the estimate
// least polluted by scheduler noise.
func measure(reps int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// baselineWorkloads is the measured set: the FPU scalar and kernel hot
// paths and one end-to-end quick figure, covering the layers a perf
// regression is most likely to hide in.
func baselineWorkloads() map[string]func() {
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = 1.0 / float64(i+1)
	}
	return map[string]func(){
		"fpu/scalar-muladd": func() {
			u := fpu.New(fpu.WithFaultRate(1e-4, 7))
			s := 0.0
			for i := 0; i < 2_000_000; i++ {
				s = u.Add(s, u.Mul(1.0000001, 0.999999))
			}
			sinkF = s
		},
		"fpu/dot-kernel": func() {
			u := fpu.New(fpu.WithFaultRate(1e-4, 7))
			s := 0.0
			for i := 0; i < 1000; i++ {
				s += u.Dot(vec, vec)
			}
			sinkF = s
		},
		"figures/6.1-quick": func() {
			figures.Lookup("6.1")(figures.Config{Quick: true, Seed: 1})
		},
	}
}

func TestPerfBaseline(t *testing.T) {
	writePath := os.Getenv("BENCH_BASELINE_WRITE")
	checkPath := os.Getenv("BENCH_BASELINE_CHECK")
	if writePath == "" && checkPath == "" {
		t.Skip("perf baseline: set BENCH_BASELINE_WRITE or BENCH_BASELINE_CHECK to run")
	}

	cal := calibrate()
	for i := 0; i < 2; i++ {
		if d := calibrate(); d < cal {
			cal = d
		}
	}
	if cal <= 0 {
		t.Fatalf("calibration loop measured %v", cal)
	}

	got := make(map[string]float64)
	for name, fn := range baselineWorkloads() {
		fn() // warm up: page in code and data before timing
		d := measure(5, fn)
		got[name] = float64(d) / float64(cal)
		t.Logf("%-20s %10v  normalized %.4f", name, d, got[name])
	}

	if writePath != "" {
		out := baselineFile{CalibrationNs: cal.Nanoseconds(), Entries: got}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(writePath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote baseline %s (calibration %v)", writePath, cal)
	}

	if checkPath != "" {
		b, err := os.ReadFile(checkPath)
		if err != nil {
			t.Fatalf("perf baseline: %v", err)
		}
		var base baselineFile
		if err := json.Unmarshal(b, &base); err != nil {
			t.Fatalf("perf baseline %s: %v", checkPath, err)
		}
		var failures []string
		for name, want := range base.Entries {
			have, ok := got[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: in baseline but no longer measured", name))
				continue
			}
			if have > want*regressionLimit {
				failures = append(failures, fmt.Sprintf(
					"%s: normalized %.4f vs baseline %.4f (+%.0f%%, limit +%.0f%%)",
					name, have, want, 100*(have/want-1), 100*(regressionLimit-1)))
			}
		}
		for _, f := range failures {
			t.Error("perf regression: " + f)
		}
	}
}
