package main

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"robustify/internal/obs"
)

// wstats is the worker's own observability state: monotonic execution
// counters, per-workload trial latency histograms, and the fold of every
// trial's fault-placement recorders. It is purely diagnostic — trial
// values are computed exactly as without it.
type wstats struct {
	trials  atomic.Int64
	shards  atomic.Int64
	reports atomic.Int64

	lat       *obs.HistSet
	collector *obs.Collector

	mu     sync.Mutex
	faults obs.FaultRecorder // merged across all completed trials
}

func newWstats() *wstats {
	return &wstats{lat: obs.NewHistSet(), collector: obs.NewCollector()}
}

// observeTrial records one executed trial: its latency under the
// workload label, the trial counter, and the fault recorders its faulty
// units accumulated.
func (s *wstats) observeTrial(label string, d time.Duration, rate float64, seed uint64) {
	s.trials.Add(1)
	s.lat.Observe(label, d)
	if fr := s.collector.Take(rate, seed); fr != nil {
		s.mu.Lock()
		s.faults.Merge(fr)
		s.mu.Unlock()
	}
}

// metricsHandler serves the worker's GET /metrics in Prometheus text
// exposition format. Stateless like robustd's: counters and histograms
// only, safe under concurrent scrapes.
func (s *wstats) metricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# HELP robustworker_trials_total Trials executed since worker start.\n")
		fmt.Fprintf(w, "# TYPE robustworker_trials_total counter\n")
		fmt.Fprintf(w, "robustworker_trials_total %d\n", s.trials.Load())
		fmt.Fprintf(w, "# HELP robustworker_shards_total Shard leases executed since worker start.\n")
		fmt.Fprintf(w, "# TYPE robustworker_shards_total counter\n")
		fmt.Fprintf(w, "robustworker_shards_total %d\n", s.shards.Load())
		fmt.Fprintf(w, "# HELP robustworker_reports_total Result batches delivered to the coordinator.\n")
		fmt.Fprintf(w, "# TYPE robustworker_reports_total counter\n")
		fmt.Fprintf(w, "robustworker_reports_total %d\n", s.reports.Load())

		s.mu.Lock()
		f := s.faults
		s.mu.Unlock()
		fmt.Fprintf(w, "# HELP robustworker_faults_total Injected faults observed across executed trials, by class.\n")
		fmt.Fprintf(w, "# TYPE robustworker_faults_total counter\n")
		for _, c := range []struct {
			class string
			n     uint64
		}{
			{"value", f.ValueFaults},
			{"compare", f.CompareFaults},
			{"sign", f.Sign},
			{"exponent", f.Exponent},
			{"mantissa", f.Mantissa},
			{"multi_bit", f.MultiBit},
			{"clustered", f.Clustered},
			{"memory", f.MemFaults},
		} {
			fmt.Fprintf(w, "robustworker_faults_total{class=%q} %d\n", c.class, c.n)
		}
		s.lat.WriteProm(w, "robustworker_trial_duration_seconds", "workload")
	}
}
