package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/dispatch"
)

// TestMain doubles the test binary as the worker itself: with
// ROBUSTWORKER_TEST_CHILD set it runs the real worker main loop, so the
// kill-a-worker e2e can SIGKILL an actual OS process mid-shard.
func TestMain(m *testing.M) {
	if os.Getenv("ROBUSTWORKER_TEST_CHILD") == "1" {
		if err := run(os.Args[1:]); err != nil {
			os.Stderr.WriteString("robustworker: " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

var registeredRe = regexp.MustCompile(`registered as (w[0-9a-f]+-\d+)`)

// stderrWatch collects a worker child's stderr and announces its
// assigned worker id once registration is logged.
type stderrWatch struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	idc   chan string
	found bool
}

func (s *stderrWatch) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(p)
	if !s.found {
		if m := registeredRe.FindSubmatch(s.buf.Bytes()); m != nil {
			s.found = true
			s.idc <- string(m[1])
		}
	}
	return len(p), nil
}

func (s *stderrWatch) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// startWorker boots a robustworker child against the coordinator and
// waits until it has registered.
func startWorker(t *testing.T, coordinator string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-coordinator", coordinator, "-poll", "20ms", "-batch", "4"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ROBUSTWORKER_TEST_CHILD=1")
	watch := &stderrWatch{idc: make(chan string, 1)}
	cmd.Stderr = watch
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	select {
	case id := <-watch.idc:
		t.Logf("worker pid %d registered as %s", cmd.Process.Pid, id)
		return cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("worker never registered; stderr:\n%s", watch)
		return nil
	}
}

func renderCampaign(t *testing.T, m *campaign.Manager, id string) (text, csv string) {
	t.Helper()
	table, err := m.Table(id)
	if err != nil {
		t.Fatalf("table %s: %v", id, err)
	}
	var tb, cb strings.Builder
	if err := table.Render(&tb); err != nil {
		t.Fatal(err)
	}
	if err := table.CSV(&cb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), cb.String()
}

func waitCampaign(t *testing.T, m *campaign.Manager, id string) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- m.Wait(id) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("campaign %s: %v", id, err)
		}
	case <-time.After(120 * time.Second):
		st, _ := m.Get(id)
		t.Fatalf("campaign %s stuck: %+v", id, st)
	}
}

// TestKillWorkerE2E is the acceptance criterion end to end: a figure
// campaign sharded across two real robustworker processes, one of which
// is SIGKILLed mid-shard, must complete via lease reassignment and
// produce a results table byte-identical to the same campaign run fully
// in-process.
func TestKillWorkerE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes and runs ~seconds of trials")
	}
	spec := campaign.Spec{
		Custom: &campaign.CustomSweep{
			Workload: "sort/robust", Rates: []float64{0.05, 0.1, 0.2}, Iters: 3000,
		},
		Trials: 8, Seed: 77,
	}
	const total = 24

	// Coordinator: a real manager + dispatcher behind a real HTTP server,
	// with shards of 2 trials and a short TTL so the killed worker's
	// leases come back quickly.
	m, err := campaign.NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetDispatcher(dispatch.New(dispatch.Options{
		LeaseTTL: 2 * time.Second, ShardSize: 2, WorkersExpected: 2,
	}))
	srv := httptest.NewServer(campaign.NewServer(m))
	defer srv.Close()

	victim := startWorker(t, srv.URL, "-name", "victim", "-parallel", "1")
	startWorker(t, srv.URL, "-name", "survivor", "-parallel", "2")

	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the fleet make real progress, then kill the victim the way a
	// crashed machine would: SIGKILL, no shutdown path, mid-shard.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.Done >= 4 {
			break
		}
		if st.Progress.Done >= total || terminalState(st.State) {
			t.Fatalf("campaign reached %s %+v before the kill", st.State, st.Progress)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never made progress: %+v", st.Progress)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	waitCampaign(t, m, id)
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Progress.Done != total {
		t.Fatalf("after kill+reassignment: %s %+v, want done %d/%d", st.State, st.Progress, total, total)
	}
	gotText, gotCSV := renderCampaign(t, m, id)

	// Reference: the same campaign fully in-process (no dispatcher).
	local, err := campaign.NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	lid, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, local, lid)
	wantText, wantCSV := renderCampaign(t, local, lid)

	if gotText != wantText {
		t.Errorf("distributed table differs from in-process run:\n--- want ---\n%s--- got ---\n%s", wantText, gotText)
	}
	if gotCSV != wantCSV {
		t.Errorf("distributed CSV differs from in-process run:\n--- want ---\n%s--- got ---\n%s", wantCSV, gotCSV)
	}
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
