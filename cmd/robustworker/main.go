// Command robustworker executes fault-injection trial shards for a
// robustd coordinator (started with -workers-expected > 0). It is the
// scale-out half of distributed campaigns: register with the
// coordinator, poll for a shard lease, compile the campaign's spec with
// the exact code the coordinator used, execute the shard's trials —
// every value is determined by (spec, unit, rate index, trial index)
// alone, so any worker produces bit-identical results — and stream
// record batches back, which double as lease-renewing heartbeats.
//
// The worker is disposable by design: SIGKILL one mid-shard and the
// coordinator reassigns its lease after the TTL; nothing is lost but the
// unreported trials, which the next worker re-executes to the same
// values. It also survives the coordinator: connection errors back off
// and retry, and an "unknown worker" answer (the signature of a
// coordinator restart) just triggers re-registration.
//
// Usage:
//
//	robustworker -coordinator http://host:8080 [-name NAME] [-poll 250ms]
//	             [-parallel N] [-batch 32] [-debug-addr ADDR]
//
// -debug-addr serves the worker's own /metrics (execution counters,
// per-workload latency histograms, observed fault classes), /healthz,
// and net/http/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/dispatch"
	"robustify/internal/fpu/faultmodel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "robustworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("robustworker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8080", "robustd base URL")
		name        = fs.String("name", "", "worker name reported to the coordinator (default host:pid)")
		poll        = fs.Duration("poll", 250*time.Millisecond, "idle poll interval when the coordinator has no work")
		parallel    = fs.Int("parallel", 0, "trials executed concurrently within a shard (0 = GOMAXPROCS)")
		batch       = fs.Int("batch", 32, "max trial results per report (capped at 4096)")
		debugAddr   = fs.String("debug-addr", "",
			"optional listen address for the worker's /metrics, /healthz, and net/http/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *batch <= 0 {
		*batch = 32
	}
	// Report bodies must stay far inside the coordinator's request-size
	// cap (8 MiB); 4096 results is ~400 KB of JSON.
	if *batch > 4096 {
		*batch = 4096
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stats := newWstats()
	// Every non-reliable FPU the trial functions build gets a fault
	// recorder; runShard folds them into the worker's /metrics counters.
	// Passive taps: trial values stay bit-identical.
	faultmodel.SetUnitObserver(stats.collector.Observer)
	w := &worker{
		cl:       dispatch.NewClient(*coordinator, *name),
		poll:     *poll,
		parallel: *parallel,
		batch:    *batch,
		stats:    stats,
		plans:    make(map[string]*campaign.Campaign),
		bad:      make(map[string]string),
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		dmux := http.NewServeMux()
		dmux.HandleFunc("GET /metrics", stats.metricsHandler())
		dmux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status": "ok"}`)
		})
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//lint:goroutinehygiene-exempt the deferred dln.Close() above ends Serve (net.ErrClosed) when run returns
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("robustworker: debug server: %v", err)
			}
		}()
		log.Printf("robustworker: debug endpoints (metrics, pprof) on %s", dln.Addr())
	}
	log.Printf("robustworker: %s serving coordinator %s (parallel %d, batch %d)",
		*name, *coordinator, *parallel, *batch)
	w.loop(ctx)
	log.Printf("robustworker: shutting down")
	return nil
}

// planCacheMax bounds the worker's compiled-plan and known-bad caches;
// past it the cache is simply reset (campaigns in flight recompile once).
const planCacheMax = 64

type worker struct {
	cl       *dispatch.Client
	poll     time.Duration
	parallel int
	batch    int
	stats    *wstats
	// plans caches compiled campaigns by id+spec, so one compile serves
	// every shard of a campaign; bad remembers specs this build cannot
	// compile, so version skew is detected without recompiling per lease.
	plans map[string]*campaign.Campaign
	bad   map[string]string
}

// loop is the worker's life: register, lease, execute, repeat. Every
// failure path degrades to a backoff-and-retry — the coordinator being
// down, restarted, or out of work must never kill the worker.
func (w *worker) loop(ctx context.Context) {
	const (
		backoffMin = 250 * time.Millisecond
		backoffMax = 5 * time.Second
	)
	backoff := backoffMin
	for ctx.Err() == nil {
		if !w.cl.Registered() {
			if err := w.cl.Register(ctx); err != nil {
				if ctx.Err() == nil {
					log.Printf("robustworker: register: %v (retrying in %s)", err, backoff)
				}
				sleep(ctx, backoff)
				backoff = min(2*backoff, backoffMax)
				continue
			}
			log.Printf("robustworker: registered as %s (lease TTL %s)", w.cl.WorkerID(), w.cl.LeaseTTL())
			backoff = backoffMin
		}
		lease, err := w.cl.Lease(ctx)
		switch {
		case errors.Is(err, dispatch.ErrUnknownWorker):
			// The coordinator restarted and forgot the fleet; start over.
			log.Printf("robustworker: coordinator forgot %s (restart?); re-registering", w.cl.WorkerID())
			w.cl.Forget()
		case err != nil:
			if ctx.Err() == nil {
				log.Printf("robustworker: lease: %v (retrying in %s)", err, backoff)
			}
			sleep(ctx, backoff)
			backoff = min(2*backoff, backoffMax)
		case lease == nil:
			sleep(ctx, w.poll)
		default:
			backoff = backoffMin
			w.runShard(ctx, lease)
		}
	}
}

// planKey identifies a campaign as this worker sees it: the id plus the
// exact spec bytes, so a resubmitted id with a different spec is a
// different cache entry.
func planKey(lr *dispatch.LeaseResponse) string {
	return lr.Campaign + "\x00" + string(lr.Spec)
}

// markBad remembers a campaign this build cannot serve (uncompilable or
// verify-rejected spec); later leases of it are released immediately.
// The compiled plan is evicted too — it must not shadow the verdict.
func (w *worker) markBad(key, msg string) {
	delete(w.plans, key)
	if len(w.bad) >= planCacheMax {
		clear(w.bad)
	}
	w.bad[key] = msg
}

// plan returns the compiled campaign for a lease, cached per (campaign,
// spec) so recompilation never happens per shard; compile failures are
// cached too.
func (w *worker) plan(lr *dispatch.LeaseResponse) (*campaign.Campaign, error) {
	key := planKey(lr)
	if msg, ok := w.bad[key]; ok { // a bad verdict outranks any cached plan
		return nil, errors.New(msg)
	}
	if camp, ok := w.plans[key]; ok {
		return camp, nil
	}
	camp, err := func() (*campaign.Campaign, error) {
		spec, err := campaign.ParseSpec(lr.Spec)
		if err != nil {
			return nil, err
		}
		return campaign.Compile(spec)
	}()
	if err != nil {
		w.markBad(key, err.Error())
		return nil, err
	}
	if len(w.plans) >= planCacheMax {
		clear(w.plans)
	}
	w.plans[key] = camp
	return camp, nil
}

// release hands an unexecutable shard straight back to the pending pool
// (a done report with no results requeues whatever is missing). Leaving
// the lease to expire instead would let a version-skewed worker lease —
// and park for a full TTL — every shard of a campaign it cannot run,
// starving healthy workers; returned shards are re-leasable immediately.
func (w *worker) release(ctx context.Context, lr *dispatch.LeaseResponse) {
	if _, err := w.cl.Report(ctx, lr.Campaign, lr.Lease, nil, true); err != nil && ctx.Err() == nil {
		log.Printf("robustworker: release %s/%s: %v", lr.Campaign, lr.Lease, err)
	}
}

// runShard executes one leased shard: a pool of goroutines runs the
// trials, while this goroutine batches results back to the coordinator —
// flushing on batch size, on a heartbeat tick (TTL/3, so a slow trial
// never lets the lease lapse), and finally with done=true. A lost lease
// or a dead coordinator abandons the shard; whatever was not reported is
// somebody else's work after the TTL.
func (w *worker) runShard(ctx context.Context, lr *dispatch.LeaseResponse) {
	camp, err := w.plan(lr)
	if err != nil {
		// Unexecutable spec — version skew with the coordinator. Hand the
		// shard back (maybe another worker runs a matching build) and
		// throttle before the next lease.
		log.Printf("robustworker: campaign %s: %v; releasing lease %s", lr.Campaign, err, lr.Lease)
		w.release(ctx, lr)
		sleep(ctx, w.poll)
		return
	}
	shard := lr.Shard
	if shard.Unit < 0 || shard.Unit >= len(camp.Plan.Units) {
		log.Printf("robustworker: campaign %s: lease %s names unit %d of %d; releasing",
			lr.Campaign, lr.Lease, shard.Unit, len(camp.Plan.Units))
		w.release(ctx, lr)
		sleep(ctx, w.poll)
		return
	}
	u := camp.Plan.Units[shard.Unit]
	trials := dispatch.TrialsPerCell(u.Sweep.Trials)
	size := len(u.Sweep.Rates) * trials
	if shard.Start < 0 || shard.Count < 0 || shard.Start+shard.Count > size {
		log.Printf("robustworker: campaign %s: lease %s range [%d,%d) exceeds grid %d; releasing",
			lr.Campaign, lr.Lease, shard.Start, shard.Start+shard.Count, size)
		w.release(ctx, lr)
		sleep(ctx, w.poll)
		return
	}
	skip := make(map[int]bool, len(shard.Skip))
	for _, i := range shard.Skip {
		skip[i] = true
	}
	var todo []int
	for i := shard.Start; i < shard.Start+shard.Count; i++ {
		if !skip[i] {
			todo = append(todo, i)
		}
	}
	w.stats.shards.Add(1)
	label := camp.Spec.MetricLabel()

	// Trial executor pool. sctx aborts it when the lease is lost.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	results := make(chan dispatch.TrialResult, w.parallel)
	var wg sync.WaitGroup
	for i := 0; i < w.parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if sctx.Err() != nil {
					continue // drain without executing
				}
				r, t := idx/trials, idx%trials
				res := dispatch.TrialResult{
					Unit: shard.Unit, RateIdx: r, TrialIdx: t,
					Rate: u.Sweep.Rates[r],
					Seed: u.Sweep.TrialSeed(r, t),
				}
				start := time.Now()
				res.Value = u.Fn(res.Rate, res.Seed)
				w.stats.observeTrial(label, time.Since(start), res.Rate, res.Seed)
				select {
				case results <- res:
				case <-sctx.Done():
				}
			}
		}()
	}
	go func() {
		defer close(results)
		defer wg.Wait()
		defer close(jobs)
		for _, idx := range todo {
			select {
			case jobs <- idx:
			case <-sctx.Done():
				return
			}
		}
	}()

	ttl := lr.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	heartbeat := time.NewTicker(ttl / 3)
	defer heartbeat.Stop()
	var pending []dispatch.TrialResult
	flush := func(done bool) bool {
		resp, err := w.report(ctx, lr, pending, done)
		if err != nil {
			log.Printf("robustworker: report %s/%s: %v; abandoning shard", lr.Campaign, lr.Lease, err)
			return false
		}
		if resp.Rejected > 0 {
			// The coordinator verified our results against its grid and
			// refused them: this build computes different seeds or rates —
			// version skew. Re-executing can only reproduce the rejects, so
			// stop serving this campaign entirely (the bad-cache makes every
			// later lease of it release immediately).
			log.Printf("robustworker: coordinator rejected %d result(s) for %s (version skew?); abandoning campaign",
				resp.Rejected, lr.Campaign)
			w.markBad(planKey(lr), fmt.Sprintf("coordinator rejected this build's results (%d in one batch)", resp.Rejected))
			return false
		}
		if resp.Lost && !done {
			log.Printf("robustworker: lease %s/%s lost; abandoning shard", lr.Campaign, lr.Lease)
			return false
		}
		pending = nil
		return true
	}
	abandon := func() {
		cancel()
		for range results {
		} // release the executor pool
	}
	for {
		select {
		case res, ok := <-results:
			if !ok {
				if ctx.Err() != nil {
					// Shutdown mid-shard: best-effort flush of finished trials
					// (without done — the shard is not complete), then leave the
					// lease to expire.
					w.reportDetached(lr, pending)
					return
				}
				flush(true)
				return
			}
			pending = append(pending, res)
			if len(pending) >= w.batch {
				if !flush(false) {
					abandon()
					return
				}
			}
		case <-heartbeat.C:
			if !flush(false) { // empty pending is a pure heartbeat
				abandon()
				return
			}
		case <-ctx.Done():
			// Shutdown: stop the executors and keep trials they already
			// finished (buffered in results) for the best-effort flush —
			// but never wait on a wedged trial: collect only what arrives
			// within the detached-report budget, then exit regardless.
			cancel()
			drainDeadline := time.After(2 * time.Second)
		drain:
			for {
				select {
				case r, ok := <-results:
					if !ok {
						break drain
					}
					pending = append(pending, r)
				case <-drainDeadline:
					break drain
				}
			}
			w.reportDetached(lr, pending)
			return
		}
	}
}

// report delivers one batch with a couple of quick retries: a transient
// hiccup should not cost a whole shard, but a coordinator that stays
// unreachable should — the lease will expire and someone else finishes.
func (w *worker) report(ctx context.Context, lr *dispatch.LeaseResponse, results []dispatch.TrialResult, done bool) (resp dispatch.ReportResponse, err error) {
	for attempt := 0; ; attempt++ {
		resp, err = w.cl.Report(ctx, lr.Campaign, lr.Lease, results, done)
		if err == nil {
			w.stats.reports.Add(1)
		}
		if err == nil || attempt >= 2 || ctx.Err() != nil {
			return resp, err
		}
		sleep(ctx, 250*time.Millisecond)
	}
}

// reportDetached flushes computed-but-unreported trials during shutdown,
// on a short detached deadline so SIGTERM still exits promptly.
func (w *worker) reportDetached(lr *dispatch.LeaseResponse, results []dispatch.TrialResult) {
	if len(results) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.cl.Report(ctx, lr.Campaign, lr.Lease, results, false)
}

// sleep waits d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
