// Command robustd serves fault-injection campaigns over HTTP: submit a
// declarative campaign spec, watch live progress, fetch results as text,
// CSV, or JSON at any point mid-run, cancel, and resume. Every completed
// trial is checkpointed to an append-only JSONL store under the data
// directory, and per-campaign lifecycle state is mirrored to meta.json,
// so campaigns survive cancellation — and the daemon itself being killed:
// on startup every campaign directory under -data is recovered, prior
// campaigns stay listable and queryable, and campaigns a crash orphaned
// are reported as "interrupted" and can be resumed (automatically, with
// -autoresume), re-executing only the trials the crash lost.
//
// Usage:
//
//	robustd [-addr :8080] [-data DIR] [-concurrency N] [-autoresume]
//
// See README.md for the endpoint list, on-disk layout, and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"robustify/internal/campaign"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "robustd:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready, if non-nil, receives the bound listen
// address once the server is accepting connections (used by tests to bind
// port 0 and learn the real port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("robustd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		data        = fs.String("data", "robustd-data", "campaign store directory")
		concurrency = fs.Int("concurrency", 4, "max concurrently running campaigns")
		autoresume  = fs.Bool("autoresume", false, "restart interrupted campaigns on boot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := campaign.NewManager(*data, *concurrency)
	if err != nil {
		return err
	}
	defer m.Close()
	if recovered := m.List(); len(recovered) > 0 {
		byState := map[string]int{}
		for _, s := range recovered {
			byState[s.State]++
		}
		log.Printf("robustd: recovered %d campaign(s) from %s: %v", len(recovered), *data, byState)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Auto-resume only once the listen socket is ours: a bind failure
	// (port taken — often another daemon racing for the same role) should
	// exit without having restarted campaigns just to wind them down.
	if *autoresume {
		if ids := m.ResumeInterrupted(); len(ids) > 0 {
			log.Printf("robustd: auto-resuming interrupted campaign(s): %v", ids)
		}
	}
	srv := &http.Server{Handler: campaign.NewServer(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("robustd: listening on %s, storing campaigns under %s", ln.Addr(), *data)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Printf("robustd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
