// Command robustd serves fault-injection campaigns over HTTP: submit a
// declarative campaign spec, watch live progress, fetch results as text,
// CSV, or JSON at any point mid-run, cancel, and resume. Every completed
// trial is checkpointed to an append-only JSONL store under the data
// directory, and per-campaign lifecycle state is mirrored to meta.json,
// so campaigns survive cancellation — and the daemon itself being killed:
// on startup every campaign directory under -data is recovered, prior
// campaigns stay listable and queryable, and campaigns a crash orphaned
// are reported as "interrupted" and can be resumed (automatically, with
// -autoresume), re-executing only the trials the crash lost.
//
// With -workers-expected > 0 robustd stops executing trials itself and
// becomes the coordinator of a robustworker fleet: campaign grids are
// carved into shard leases that workers pull over HTTP and stream
// results back for; expired leases (a killed worker) are reassigned, and
// the finished table is byte-identical to an in-process run. See
// cmd/robustworker.
//
// robustd also serves the parameter-search API (POST /tune,
// GET /tune/{id}, ...): a tune run searches a workload's declared knob
// grid, evaluating each candidate configuration as an ordinary durable
// campaign — so searches survive restarts (-autoresume finishes them)
// and distribute across the worker fleet like any campaign. See
// internal/tune.
//
// Usage:
//
//	robustd [-addr :8080] [-data DIR] [-concurrency N] [-autoresume]
//	        [-workers-expected N] [-lease-ttl 30s] [-shard-size 16]
//	        [-shutdown-timeout 30s] [-debug-addr ADDR] [-mirror-events]
//
// -debug-addr mounts net/http/pprof and /debug/events on a second
// listener (keep it private; the main API serves /debug/events too).
// -mirror-events additionally appends lifecycle events to each
// campaign's telemetry.jsonl, beside its store.
//
// See README.md for the endpoint list, on-disk layout, and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"robustify/internal/campaign"
	"robustify/internal/dispatch"
	"robustify/internal/fpu/faultmodel"
	"robustify/internal/obs"
	"robustify/internal/tune"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "robustd:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready, if non-nil, receives the bound listen
// address once the server is accepting connections (used by tests to bind
// port 0 and learn the real port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("robustd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		data        = fs.String("data", "robustd-data", "campaign store directory")
		concurrency = fs.Int("concurrency", 4, "max concurrently running campaigns")
		autoresume  = fs.Bool("autoresume", false, "restart interrupted campaigns on boot")
		workers     = fs.Int("workers-expected", 0,
			"size of the robustworker fleet; >0 dispatches trials to workers instead of running them in-process")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second,
			"how long a worker may go between reports before its shard is reassigned")
		shardSize = fs.Int("shard-size", 16, "trials per worker shard lease")
		shutdownT = fs.Duration("shutdown-timeout", 30*time.Second,
			"bound on graceful shutdown (SIGTERM/SIGINT); 0 waits indefinitely on in-flight trials")
		debugAddr = fs.String("debug-addr", "",
			"optional second listen address for net/http/pprof and /debug/events")
		mirrorEvents = fs.Bool("mirror-events", false,
			"mirror lifecycle trace events into each campaign's telemetry.jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := campaign.NewManager(*data, *concurrency)
	if err != nil {
		return err
	}
	defer m.Close()
	// The tune registry lives inside the campaign data root (covered by
	// its flock); evaluation campaigns are ordinary campaigns beside it.
	tm, err := tune.NewManager(filepath.Join(*data, "tunes"), m)
	if err != nil {
		return err
	}
	defer tm.Close()

	// Observability hub: lifecycle trace ring, per-trial telemetry
	// sidecars, latency histograms, and fault-placement recorders. All of
	// it is diagnostics — trial values and stores are bit-identical with
	// the hub on or off.
	hub := obs.NewHub()
	defer hub.Close()
	hub.SetMirrorEvents(*mirrorEvents)
	m.SetHub(hub)
	tm.SetEvents(hub)
	m.AddMetrics(hub.WriteMetrics)
	m.AddMetrics(tm.WriteMetrics)
	// Every non-reliable FPU built from a fault-model spec gets a fault
	// recorder; the campaign engine drains them into telemetry per trial.
	faultmodel.SetUnitObserver(hub.Observer)

	if *workers > 0 {
		m.SetDispatcher(dispatch.New(dispatch.Options{
			LeaseTTL:        *leaseTTL,
			ShardSize:       *shardSize,
			WorkersExpected: *workers,
			Events:          hub,
		}))
		log.Printf("robustd: dispatching trials to a robustworker fleet (expected %d, lease TTL %s, shard size %d)",
			*workers, *leaseTTL, *shardSize)
	}
	if recovered := m.List(); len(recovered) > 0 {
		byState := map[string]int{}
		for _, s := range recovered {
			byState[s.State]++
		}
		log.Printf("robustd: recovered %d campaign(s) from %s: %v", len(recovered), *data, byState)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Auto-resume only once the listen socket is ours: a bind failure
	// (port taken — often another daemon racing for the same role) should
	// exit without having restarted campaigns just to wind them down.
	if *autoresume {
		if ids := m.ResumeInterrupted(); len(ids) > 0 {
			log.Printf("robustd: auto-resuming interrupted campaign(s): %v", ids)
		}
		if ids := tm.ResumeInterrupted(); len(ids) > 0 {
			log.Printf("robustd: auto-resuming interrupted tune run(s): %v", ids)
		}
	}
	mux := http.NewServeMux()
	tuneHandler := tune.NewServer(tm)
	mux.Handle("/tune", tuneHandler)
	mux.Handle("/tune/", tuneHandler)
	mux.Handle("/", campaign.NewServer(m))
	srv := &http.Server{Handler: mux}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.HandleFunc("/debug/events", hub.EventsHandler())
		//lint:goroutinehygiene-exempt the deferred dln.Close() above ends Serve (net.ErrClosed) when run returns
		go func() {
			if err := http.Serve(dln, dmux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("robustd: debug server: %v", err)
			}
		}()
		log.Printf("robustd: debug endpoints (pprof, events) on %s", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	//lint:goroutinehygiene-exempt errc is buffered (size 1) so the send never parks, and Serve returns at Shutdown/Close below
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("robustd: listening on %s, storing campaigns under %s", ln.Addr(), *data)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		log.Printf("robustd: shutting down (timeout %s)", *shutdownT)
		// One deadline covers both halves of the wind-down: stop accepting
		// HTTP, then cancel campaigns and wait for them to persist their
		// interrupted state. A wedged trial cannot hold the process
		// hostage — past the deadline robustd exits anyway, and the next
		// boot recovers the campaign exactly like a crash.
		shutdownCtx := context.Background()
		if *shutdownT > 0 {
			var cancel context.CancelFunc
			shutdownCtx, cancel = context.WithTimeout(shutdownCtx, *shutdownT)
			defer cancel()
		}
		// Stop tune searches from submitting new evaluation campaigns
		// before the campaign manager winds down; their in-flight waits
		// unblock as the campaigns underneath are cancelled.
		tm.Interrupt()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("robustd: http shutdown: %v", err)
		}
		remaining := func() time.Duration {
			if dl, ok := shutdownCtx.Deadline(); ok {
				if r := time.Until(dl); r > 0 {
					return r
				}
				return time.Millisecond // deadline already spent; poll once
			}
			return 0
		}
		if !m.Shutdown(remaining()) {
			log.Printf("robustd: shutdown deadline expired with campaigns still winding down; exiting")
		}
		if !tm.Shutdown(remaining()) {
			log.Printf("robustd: shutdown deadline expired with tune runs still winding down; exiting")
		}
		return nil
	}
}
