package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "not-an-addr", "-data", t.TempDir()}, nil); err == nil {
		t.Error("bad addr accepted")
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the
// submit → status → results flow over real HTTP, and shuts down via
// SIGINT like a deployed process would.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-data", t.TempDir()}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"custom":{"workload":"sort/base","rates":[0.01,0.2]},"trials":2,"seed":1}`
	resp, err = http.Post(base+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var submitResp map[string]string
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &submitResp); err != nil {
		t.Fatalf("submit response %q: %v", body, err)
	}
	id := submitResp["id"]

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var status struct {
			State    string `json:"state"`
			Progress struct{ Done, Total int }
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &status); err != nil {
			t.Fatalf("status body %q: %v", data, err)
		}
		if status.State == "done" {
			if status.Progress.Done != status.Progress.Total {
				t.Fatalf("done with progress %+v", status.Progress)
			}
			break
		}
		if status.State == "failed" || status.State == "cancelled" {
			t.Fatalf("campaign ended %s: %s", status.State, data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(base + "/campaigns/" + id + "/results?format=csv")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "rate,") {
		t.Fatalf("csv results = %d: %q", resp.StatusCode, csv)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sigint: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
