package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles the test binary as the daemon itself: with
// ROBUSTD_TEST_CHILD set it runs robustd's real main loop instead of the
// tests, so the kill-and-restart e2e can SIGKILL an actual OS process
// rather than simulate a crash in-process.
func TestMain(m *testing.M) {
	if os.Getenv("ROBUSTD_TEST_CHILD") == "1" {
		if err := run(os.Args[1:], nil); err != nil {
			fmt.Fprintln(os.Stderr, "robustd:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// listenRe extracts the bound address from robustd's startup log line.
var listenRe = regexp.MustCompile(`listening on ([^,]+),`)

// stderrWatch collects the child's stderr and announces the listen
// address once it appears.
type stderrWatch struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addrc chan string
}

func (s *stderrWatch) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(p)
	if m := listenRe.FindSubmatch(s.buf.Bytes()); m != nil {
		select {
		case s.addrc <- string(m[1]):
		default:
		}
	}
	return len(p), nil
}

func (s *stderrWatch) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// startDaemon boots a robustd child process with the given extra flags on
// an ephemeral port and returns it with its HTTP base URL.
func startDaemon(t *testing.T, data string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", data}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "ROBUSTD_TEST_CHILD=1")
	watch := &stderrWatch{addrc: make(chan string, 1)}
	cmd.Stderr = watch
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	select {
	case addr := <-watch.addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr:\n%s", watch)
		return nil, ""
	}
}

// sigkillDaemon kills the child the way a crash would: no signal handler
// runs, no shutdown path executes.
func sigkillDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill daemon: %v", err)
	}
	cmd.Wait() // exits non-zero ("signal: killed"); only reaping matters
}

type statusJSON struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct{ Done, Total int }
}

func getStatus(t *testing.T, base, id string) statusJSON {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id)
	if err != nil {
		t.Fatalf("status %s: %v", id, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s = %d: %s", id, resp.StatusCode, data)
	}
	var st statusJSON
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status body %q: %v", data, err)
	}
	return st
}

func submitSpec(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var out map[string]string
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("submit response %q: %v", data, err)
	}
	return out["id"]
}

// waitProgress polls until at least n trials are durable, failing if the
// campaign terminates first (there would be nothing left to interrupt).
func waitProgress(t *testing.T, base, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.Progress.Done >= n {
			return
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("campaign %s reached %s before the kill", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %d trials", id, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == "done" {
			return
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("campaign %s ended %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchResults(t *testing.T, base, id, format string) string {
	t.Helper()
	url := base + "/campaigns/" + id + "/results"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("results %s: %v", id, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results %s (%s) = %d: %s", id, format, resp.StatusCode, data)
	}
	return string(data)
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "not-an-addr", "-data", t.TempDir()}, nil); err == nil {
		t.Error("bad addr accepted")
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port, drives the
// submit → status → results flow over real HTTP, and shuts down via
// SIGINT like a deployed process would.
func TestServeEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-data", t.TempDir(), "-shutdown-timeout", "10s"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"custom":{"workload":"sort/base","rates":[0.01,0.2]},"trials":2,"seed":1}`
	resp, err = http.Post(base+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var submitResp map[string]string
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &submitResp); err != nil {
		t.Fatalf("submit response %q: %v", body, err)
	}
	id := submitResp["id"]

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var status struct {
			State    string `json:"state"`
			Progress struct{ Done, Total int }
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &status); err != nil {
			t.Fatalf("status body %q: %v", data, err)
		}
		if status.State == "done" {
			if status.Progress.Done != status.Progress.Total {
				t.Fatalf("done with progress %+v", status.Progress)
			}
			break
		}
		if status.State == "failed" || status.State == "cancelled" {
			t.Fatalf("campaign ended %s: %s", status.State, data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in %s", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(base + "/campaigns/" + id + "/results?format=csv")
	if err != nil {
		t.Fatalf("results: %v", err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "rate,") {
		t.Fatalf("csv results = %d: %q", resp.StatusCode, csv)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, line := range []string{
		`robustd_campaigns{state="done"} 1`,
		"robustd_trials_completed_total 4",
		"robustd_dispatch_enabled 0",
	} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics missing %q:\n%s", line, metrics)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sigint: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestTuneEndToEnd boots the daemon and drives the parameter-search API
// over real HTTP: submit a tune spec, poll to completion, check the
// winning configuration and the durable trace, and confirm the
// evaluation campaigns are ordinary campaigns under /campaigns.
func TestTuneEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-data", t.TempDir(), "-shutdown-timeout", "10s"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	spec := `{"workload":"leastsq/cg","rates":[0.02],"trials":2,"seed":3,"knobs":["budget"],"rounds":1}`
	resp, err := http.Post(base+"/tune", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit tune: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit tune = %d: %s", resp.StatusCode, body)
	}
	var submitResp map[string]string
	if err := json.Unmarshal(body, &submitResp); err != nil {
		t.Fatalf("submit response %q: %v", body, err)
	}
	id := submitResp["id"]

	deadline := time.Now().Add(30 * time.Second)
	var status struct {
		State string             `json:"state"`
		Error string             `json:"error"`
		Final map[string]float64 `json:"final"`
		Evals []struct {
			Campaign string `json:"campaign"`
		} `json:"evals"`
	}
	for {
		resp, err := http.Get(base + "/tune/" + id)
		if err != nil {
			t.Fatalf("tune status: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &status); err != nil {
			t.Fatalf("tune status body %q: %v", data, err)
		}
		if status.State == "done" {
			break
		}
		if status.State == "failed" {
			t.Fatalf("tune failed: %s", status.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("tune stuck in %s", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := status.Final["budget"]; !ok {
		t.Errorf("final config missing the searched knob: %v", status.Final)
	}
	if len(status.Evals) == 0 {
		t.Fatal("no evaluations recorded")
	}

	// The trace endpoint serves the durable search state.
	resp, err = http.Get(base + "/tune/" + id + "/trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	traceBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(traceBody), `"evals"`) {
		t.Fatalf("trace = %d: %s", resp.StatusCode, traceBody)
	}

	// Every evaluation is an ordinary campaign, visible and done.
	resp, err = http.Get(base + "/campaigns/" + status.Evals[0].Campaign)
	if err != nil {
		t.Fatalf("eval campaign: %v", err)
	}
	campBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(campBody), `"done"`) {
		t.Fatalf("eval campaign = %d: %s", resp.StatusCode, campBody)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sigint: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestKillRestartRecovery is the restart-durability acceptance test: a
// robustd process is SIGKILLed (no shutdown path runs) mid-campaign, a
// new daemon on the same data dir must list the campaign as interrupted
// with accurate progress, serve its partial results in all three formats,
// and resume it to a table byte-identical to an uninterrupted run. A
// second kill then checks that -autoresume finishes orphaned work with no
// operator involvement.
func TestKillRestartRecovery(t *testing.T) {
	data := t.TempDir()
	// 24 slow-ish trials on one worker: enough runway that the kill always
	// lands mid-run, small enough to finish three full runs in the test.
	spec := `{"custom":{"workload":"sort/robust","rates":[0.05,0.1,0.2],"iters":3000},"trials":8,"seed":77,"workers":1}`
	const total = 24

	// Boot 1: submit, let a few trials land, then die like a crash.
	cmd1, base1 := startDaemon(t, data)
	id := submitSpec(t, base1, spec)
	waitProgress(t, base1, id, 2)
	sigkillDaemon(t, cmd1)

	// Boot 2: plain restart. The campaign must be recovered as interrupted
	// with its durable progress intact.
	cmd2, base2 := startDaemon(t, data)
	st := getStatus(t, base2, id)
	if st.State != "interrupted" {
		t.Fatalf("state after restart = %s, want interrupted", st.State)
	}
	if st.Progress.Done < 2 || st.Progress.Done >= total || st.Progress.Total != total {
		t.Fatalf("recovered progress = %+v, want 2 <= done < %d", st.Progress, total)
	}
	var list []statusJSON
	resp, err := http.Get(base2 + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list body %q: %v", body, err)
	}
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("restarted list = %+v, want just %s", list, id)
	}
	for _, format := range []string{"", "csv", "json"} {
		fetchResults(t, base2, id, format) // partial results must be servable
	}

	// Resume over HTTP: only the missing trials run; the table must be
	// byte-identical to an uninterrupted run of the same spec (freshly
	// executed below as a second campaign).
	resp, err = http.Post(base2+"/campaigns/"+id+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume = %d", resp.StatusCode)
	}
	waitDone(t, base2, id)
	resumedText := fetchResults(t, base2, id, "")
	resumedCSV := fetchResults(t, base2, id, "csv")

	fresh := submitSpec(t, base2, spec)
	if fresh == id {
		t.Fatalf("fresh submit reused recovered id %s", id)
	}
	waitDone(t, base2, fresh)
	if want := fetchResults(t, base2, fresh, ""); resumedText != want {
		t.Errorf("kill+resume results differ from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			want, resumedText)
	}
	if want := fetchResults(t, base2, fresh, "csv"); resumedCSV != want {
		t.Errorf("kill+resume CSV differs from uninterrupted run")
	}

	// Kill boot 2 mid-campaign as well, then let -autoresume finish the
	// orphan without any resume call.
	third := submitSpec(t, base2, spec)
	waitProgress(t, base2, third, 2)
	sigkillDaemon(t, cmd2)
	_, base3 := startDaemon(t, data, "-autoresume")
	waitDone(t, base3, third)
	if want := fetchResults(t, base3, fresh, ""); fetchResults(t, base3, third, "") != want {
		t.Error("auto-resumed results differ from uninterrupted run")
	}
	resp, err = http.Get(base3 + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	list = nil
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("final list %q: %v", body, err)
	}
	if len(list) != 3 {
		t.Fatalf("final list = %d campaigns, want 3: %s", len(list), body)
	}
	for _, s := range list {
		if s.State != "done" {
			t.Errorf("campaign %s = %s after autoresume boot, want done", s.ID, s.State)
		}
	}
}
