package main

import "testing"

func TestRunModes(t *testing.T) {
	// -n is a raw count in every mode: samples in hist, ops in trace.
	for _, args := range [][]string{
		{"-mode", "hist", "-n", "1000"},
		{"-mode", "hist", "-dist", "measured", "-n", "1000"},
		{"-mode", "hist", "-dist", "uniform", "-n", "1000"},
		{"-mode", "hist", "-dist", "low", "-n", "1000"},
		{"-mode", "voltage"},
		{"-mode", "trace", "-rate", "0.2", "-n", "50"},
		{"-mode", "trace", "-rate", "0.05", "-dist", "measured", "-n", "200"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	for _, mode := range []string{"hist", "trace"} {
		if err := run([]string{"-mode", mode, "-n", "0"}); err == nil {
			t.Errorf("mode %s accepted -n 0", mode)
		}
		if err := run([]string{"-mode", mode, "-n", "-5"}); err == nil {
			t.Errorf("mode %s accepted negative -n", mode)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestPickDistDefaults(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"emulated", "emulated"},
		{"weird-name", "emulated"}, // fallback
		{"measured", "measured"},
	} {
		if d := pickDist(tc.in); d.Name() != tc.want {
			t.Errorf("pickDist(%q).Name() = %q, want %q", tc.in, d.Name(), tc.want)
		}
	}
}

func TestRelErr(t *testing.T) {
	if relErr(2, 1) != 1 {
		t.Error("relErr(2,1)")
	}
	if relErr(3, 0) != 3 {
		t.Error("relErr vs zero should be absolute")
	}
}
